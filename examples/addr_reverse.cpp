// addr_reverse: reverse-engineer the DRAM address mapping through the
// bank-conflict timing side channel, then use it to hammer.
//
// Real attacks need physical adjacency, but the controller's address
// mapping is undocumented (§II-A: the controller decides which software
// pages share DRAM rows). The DRAMA technique times address pairs:
// same-bank/different-row pairs are slow (row conflict, tRC-bound),
// same-row pairs are fast (row hits), cross-bank pairs are in between.
// Flipping one physical address bit at a time classifies every bit, which
// is exactly what this example does against a "secret" AddressMap — and
// then it mounts a double-sided hammer using the recovered map.
//
//   $ ./addr_reverse
#include <cstdio>
#include <string>

#include "dram/addr_map.h"
#include "ctrl/controller.h"

using namespace densemem;
using namespace densemem::dram;

namespace {

// Average per-access latency of alternating reads to two physical
// addresses (the probe primitive; reads go through the secret map).
double probe_pair_ns(ctrl::MemoryController& mc, const AddressMap& map,
                     std::uint64_t a, std::uint64_t b, int reps = 40) {
  const Time t0 = mc.now();
  for (int i = 0; i < reps; ++i) {
    Address addr = map.decode(i % 2 ? b : a);
    addr.col_word /= 8;  // block index
    mc.read_block(addr);
  }
  return (mc.now() - t0).as_ns() / reps;
}

}  // namespace

int main() {
  // The system's secret mapping (the attacker knows only the capacity).
  const Geometry g{2, 1, 8, 2048, 1024};
  const AddressMap secret(g, Interleave::kRowBankCol, /*xor_bank_hash=*/false);

  DeviceConfig dc;
  dc.geometry = g;
  dc.reliability = ReliabilityParams::vulnerable();
  dc.reliability.weak_cell_density = 5e-4;
  dc.reliability.hc50 = 60e3;
  dc.reliability.dpd_sensitivity_mean = 0.0;
  dc.reliability.anticell_fraction = 0.0;
  dc.pattern = BackgroundPattern::kOnes;
  dc.seed = 99;
  Device dev(dc);
  ctrl::MemoryController mc(dev, ctrl::CtrlConfig{});

  std::printf("== addr_reverse: DRAMA-style map recovery ==\n");
  std::printf("capacity: %llu MiB; probing bit-flip pairs...\n\n",
              static_cast<unsigned long long>(secret.capacity_bytes() >> 20));

  // Calibrate the three latency classes with known extremes.
  const std::uint64_t base = 0;
  std::printf("bit | latency(ns) | class\n");
  const int addr_bits = 31 - __builtin_clz(static_cast<unsigned>(
                                 secret.capacity_bytes() >> 3));
  double max_lat = 0, min_lat = 1e9;
  std::vector<double> lat(static_cast<std::size_t>(addr_bits) + 3, 0.0);
  for (int bit = 3; bit < addr_bits + 3; ++bit) {
    lat[static_cast<std::size_t>(bit - 3)] =
        probe_pair_ns(mc, secret, base, base ^ (1ull << bit));
    max_lat = std::max(max_lat, lat[static_cast<std::size_t>(bit - 3)]);
    min_lat = std::min(min_lat, lat[static_cast<std::size_t>(bit - 3)]);
  }
  const double hi_cut = max_lat * 0.9;       // slow = row conflict
  const double lo_cut = min_lat * 1.1;       // fast = row hit
  int lowest_row_bit = -1;
  for (int bit = 3; bit < addr_bits + 3; ++bit) {
    const double l = lat[static_cast<std::size_t>(bit - 3)];
    const char* cls;
    if (l >= hi_cut) {
      cls = "ROW   (same bank, new row: conflict)";
      if (lowest_row_bit < 0) lowest_row_bit = bit;
    } else if (l <= lo_cut) {
      cls = "COLUMN (same row: hit)";
    } else {
      cls = "BANK/CHANNEL (different bank: overlap)";
    }
    std::printf("%3d | %10.2f | %s\n", bit, l, cls);
  }

  if (lowest_row_bit < 0) {
    std::printf("\nmap recovery failed (no row-conflict bit found)\n");
    return 1;
  }
  const std::uint64_t row_stride = 1ull << lowest_row_bit;
  std::printf("\nrecovered: +0x%llx steps one DRAM row within the bank\n",
              static_cast<unsigned long long>(row_stride));
  const Address check0 = secret.decode(base);
  const Address check1 = secret.decode(base + row_stride);
  std::printf("ground truth: row %u -> %u, bank %u -> %u  %s\n\n", check0.row,
              check1.row, check0.bank, check1.bank,
              (check1.row == check0.row + 1 && check1.bank == check0.bank)
                  ? "(correct)"
                  : "(WRONG)");

  // Mount a double-sided hammer purely in physical-address space: victim at
  // +2 rows, aggressors at +1 and +3.
  std::printf("hammering rows addr+1R and addr+3R around victim addr+2R...\n");
  Address victim = secret.decode(base + 2 * row_stride);
  // Search victims until one has weak cells (attacker would spray & pray).
  std::uint64_t probe_base = base;
  for (int tries = 0; tries < 400; ++tries) {
    victim = secret.decode(probe_base + 2 * row_stride);
    const std::uint32_t fb = flat_bank(g, victim);
    if (dev.fault_map().row_has_weak(fb, dev.remap().to_physical(victim.row)))
      break;
    probe_base += 4 * row_stride;
  }
  const Address agg1 = secret.decode(secret.encode(victim) - row_stride);
  const Address agg2 = secret.decode(secret.encode(victim) + row_stride);
  const std::uint32_t fb = flat_bank(g, victim);
  for (int i = 0; i < 80'000; ++i) {
    mc.activate_precharge(fb, agg1.row);
    mc.activate_precharge(fb, agg2.row);
  }
  mc.activate_precharge(fb, victim.row);
  std::printf("bit flips induced: %llu\n",
              static_cast<unsigned long long>(dev.stats().disturb_flips));
  std::printf("\nTakeaway: the timing side channel hands the attacker the "
              "physical map —\nsecrecy of the address mapping is not a "
              "defence (§II-B).\n");
  return dev.stats().disturb_flips > 0 ? 0 : 1;
}
