// softmc_trace: run a SoftMC-style DRAM command trace against the device
// model (cf. the HPCA'17 infrastructure [39] the paper credits for enabling
// its studies).
//
//   $ ./softmc_trace               # runs the built-in RowHammer demo trace
//   $ ./softmc_trace mytrace.smc   # runs a trace file
//
// Trace language: ACT/PRE/RD/WR/REF/WAIT/HAMMER/FILL/CHECK/LOOP..ENDLOOP —
// see src/softmc/trace.h for the grammar.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "softmc/trace.h"

using namespace densemem;

namespace {

// Built-in demo: the canonical RowHammer experiment as a command trace,
// parameterized on a victim row that actually has weak cells.
std::string demo_trace(std::uint32_t victim) {
  const std::string v = std::to_string(victim);
  const std::string lo = std::to_string(victim - 1);
  const std::string hi = std::to_string(victim + 1);
  return
      "# Fill the module, hammer both neighbours of row " + v + " for a\n"
      "# refresh window's worth of activations, then check the victim.\n"
      "FILL ones\n"
      "HAMMER 0 " + lo + " 650000\n"
      "HAMMER 0 " + hi + " 650000\n"
      "CHECK 0 " + v + " ones\n"
      "\n"
      "# Same budget with periodic refresh interleaved: no window ever\n"
      "# accumulates enough activations.\n"
      "FILL ones\n"
      "LOOP 10\n"
      "  HAMMER 0 " + lo + " 65000\n"
      "  HAMMER 0 " + hi + " 65000\n"
      "  REF 512\n"
      "ENDLOOP\n"
      "CHECK 0 " + v + " ones\n";
}

}  // namespace

int main(int argc, char** argv) {
  dram::DeviceConfig cfg;
  cfg.geometry = dram::Geometry::tiny();
  cfg.reliability = dram::ReliabilityParams::vulnerable();
  cfg.reliability.weak_cell_density = 1e-3;
  cfg.reliability.hc50 = 150e3;
  cfg.reliability.dpd_sensitivity_mean = 0.0;
  cfg.reliability.anticell_fraction = 0.0;
  cfg.seed = 2017;
  dram::Device dev(cfg);

  std::string text;
  if (argc > 1) {
    std::ifstream f(argv[1]);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream os;
    os << f.rdbuf();
    text = os.str();
    std::printf("== softmc_trace: %s ==\n", argv[1]);
  } else {
    std::uint32_t victim = 100;
    for (std::uint32_t r : dev.fault_map().weak_rows(0))
      if (r >= 2 && r + 2 < dev.geometry().rows) {
        victim = r;
        break;
      }
    text = demo_trace(victim);
    std::printf("== softmc_trace: built-in RowHammer demo (victim row %u) ==\n",
                victim);
  }

  const auto parsed = softmc::parse_trace(text);
  if (!parsed.ok) {
    std::fprintf(stderr, "parse error at line %d: %s\n", parsed.error.line,
                 parsed.error.message.c_str());
    return 1;
  }
  std::printf("parsed %zu commands\n", parsed.program.size());

  const auto stats = softmc::run_trace(parsed.program, dev);
  std::printf("\nexecuted %llu commands in %.3f ms of DRAM time\n",
              static_cast<unsigned long long>(stats.commands_executed),
              stats.end_time.as_ms());
  std::printf("reads logged: %llu\n",
              static_cast<unsigned long long>(stats.reads));
  std::printf("CHECKs: %llu, corrupted bits found: %llu\n",
              static_cast<unsigned long long>(stats.checks),
              static_cast<unsigned long long>(stats.check_errors));
  std::printf("device: %llu activates, %llu disturbance flips\n",
              static_cast<unsigned long long>(dev.stats().activates),
              static_cast<unsigned long long>(dev.stats().disturb_flips));
  if (argc == 1) {
    std::printf("\nExpected: the first CHECK finds flips (unprotected "
                "window), the second finds none\n(refresh interleaved): "
                "the same physics the paper's FPGA rig measured.\n");
  }
  return 0;
}
