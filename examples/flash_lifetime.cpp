// flash_lifetime: the §III-A2 flash story — wear + retention kill an SSD,
// the controller's recovery ladder (read-retry -> NAC -> RFR) and FCR
// refresh win it back.
//
//   $ ./flash_lifetime
#include <cstdio>

#include "flash/ssd.h"

using namespace densemem;
using namespace densemem::flash;

int main() {
  std::printf("== flash_lifetime: MLC SSD lifetime under retention ==\n\n");

  SsdConfig cfg;
  cfg.flash.geometry = {2, 8, 2048};
  cfg.flash.seed = 99;
  cfg.flash.cell.leak_sigma = 0.6;
  cfg.pe_step = 2000;
  cfg.max_pe = 60000;
  cfg.retention_target_s = 30 * 86400.0;  // 30-day power-off target

  // --- RBER surface -----------------------------------------------------------
  std::printf("raw bit error rate (RBER) vs wear and retention age:\n");
  std::printf("%10s %12s %12s %12s\n", "P/E", "1 day", "30 days", "1 year");
  for (const std::uint32_t pe : {1000u, 6000u, 15000u}) {
    std::printf("%10u", pe);
    for (const double age : {86400.0, 30 * 86400.0, 365 * 86400.0})
      std::printf(" %12.2e", SsdLifetimeSim::rber_at(cfg, pe, age));
    std::printf("\n");
  }

  // --- Lifetime under different controller policies ---------------------------
  struct Policy {
    const char* name;
    SsdConfig cfg;
  };
  std::vector<Policy> policies;
  policies.push_back({"BCH t=8 only", cfg});
  {
    SsdConfig c = cfg;
    c.ctrl.enable_rfr = true;
    policies.push_back({"+ RFR recovery", c});
  }
  {
    SsdConfig c = cfg;
    c.ctrl.enable_rfr = true;
    c.fcr_period_s = 3 * 86400.0;
    policies.push_back({"+ FCR (3-day refresh)", c});
  }
  {
    SsdConfig c = cfg;
    c.ctrl.ecc_t = 12;
    c.ctrl.enable_rfr = true;
    c.fcr_period_s = 3 * 86400.0;
    policies.push_back({"+ stronger ECC (t=12)", c});
  }

  std::printf("\nlifetime (highest P/E surviving the 30-day retention "
              "target):\n");
  std::uint32_t prev = 0;
  for (const auto& p : policies) {
    const auto r = SsdLifetimeSim(p.cfg).run();
    std::printf("  %-24s %6u P/E cycles%s\n", p.name, r.pe_lifetime,
                prev && r.pe_lifetime > prev ? "  (improved)" : "");
    prev = r.pe_lifetime;
  }

  std::printf("\nTakeaway: retention errors dominate (§III-A2); each layer "
              "of the controller's\nmitigation ladder — exactly what modern "
              "SSD controllers ship — buys lifetime.\n");
  return 0;
}
