// attack_demo: the §II-B privilege-escalation story end-to-end.
//
// Sprays synthetic page-table entries over victim rows, runs each hammer
// pattern through the memory controller, and reports which configurations
// let the "attacker" redirect a PTE into its own frames — including the
// many-sided pattern that evicts a TRR tracker (the DDR4-era bypass).
//
//   $ ./attack_demo
#include <cstdio>
#include <vector>

#include "attack/exploit.h"
#include "attack/patterns.h"
#include "core/system.h"

using namespace densemem;
using namespace densemem::attack;
using namespace densemem::core;

namespace {

dram::DeviceConfig target() {
  dram::DeviceConfig cfg;
  cfg.geometry = dram::Geometry::tiny();
  cfg.reliability = dram::ReliabilityParams::vulnerable();
  cfg.reliability.weak_cell_density = 2e-3;
  cfg.reliability.hc50 = 25e3;
  cfg.seed = 1337;
  cfg.record_flip_events = true;
  return cfg;
}

struct Attempt {
  const char* mitigation;
  MitigationSpec spec;
};

}  // namespace

int main() {
  std::printf("== attack_demo: PTE-spray privilege escalation ==\n");
  std::printf("scenario: attacker controls 50%% of physical frames and\n"
              "hammers rows holding page tables (cf. Project Zero [89,90])\n\n");
  std::printf("%-14s %-14s %8s %8s %10s\n", "pattern", "mitigation", "flips",
              "in-PPN", "takeover");

  std::vector<Attempt> attempts;
  attempts.push_back({"none", {}});
  {
    MitigationSpec s;
    s.kind = MitigationKind::kTrr;
    s.trr.tracker_entries = 4;
    attempts.push_back({"TRR(4)", s});
  }
  {
    MitigationSpec s;
    s.kind = MitigationKind::kPara;
    s.para.probability = 0.005;
    attempts.push_back({"PARA p=.005", s});
  }

  for (const auto kind : {PatternKind::kDoubleSided, PatternKind::kManySided}) {
    for (const auto& attempt : attempts) {
      auto sys = make_system(target(), ctrl::CtrlConfig{}, attempt.spec);
      auto& dev = sys.dev();
      std::uint32_t victim = 0;
      for (std::uint32_t r : dev.fault_map().weak_rows(0))
        if (r >= 40 && r + 40 < dev.geometry().rows) {
          victim = r;
          break;
        }

      ExploitConfig ec;
      ec.attacker_frame_fraction = 0.5;
      ExploitModel exploit(ec);
      std::vector<std::uint32_t> sprayed;
      for (std::uint32_t r = victim - 2; r <= victim + 2; ++r) {
        exploit.spray_row(dev, 0, r, sys.mc().now());
        sprayed.push_back(r);
      }

      PatternConfig pc;
      pc.kind = kind;
      pc.victim_row = victim;
      pc.rows_in_bank = dev.geometry().rows;
      pc.n_aggressors = 12;
      HammerPattern pattern(pc);
      std::vector<std::uint32_t> rows;
      for (int i = 0; i < 60'000; ++i) {
        rows.clear();
        pattern.iteration_rows(static_cast<std::uint64_t>(i), rows);
        for (std::uint32_t r : rows) sys.mc().activate_precharge(0, r);
      }
      for (std::uint32_t r : sprayed) sys.mc().activate_precharge(0, r);

      const auto out = exploit.evaluate(dev, 0, sprayed);
      std::printf("%-14s %-14s %8llu %8llu %10s\n", pattern_name(kind),
                  attempt.mitigation,
                  static_cast<unsigned long long>(out.flips_total),
                  static_cast<unsigned long long>(out.flips_in_ppn),
                  out.takeover ? "** YES **" : "no");
    }
  }

  std::printf("\nExpected shape: unmitigated double-sided wins; TRR stops\n"
              "double-sided but not many-sided; PARA stops both.\n");
  return 0;
}
