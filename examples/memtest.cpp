// memtest: a MemTest86-style module screener with a RowHammer stage —
// §II-B: "multiple memory test programs have been augmented to test for
// RowHammer errors [80, 8, 98]". Screens one module from the calibrated
// database (or a custom configuration) and prints a PASS/FAIL verdict per
// stage, like a burn-in tool would.
//
//   $ ./memtest                 # screens a 2013-era module
//   $ ./memtest A-2008-00       # screens a specific database module
#include <cstdio>
#include <bit>
#include <cstring>

#include "common/table.h"
#include "core/module_tester.h"
#include "dram/module_db.h"

using namespace densemem;
using namespace densemem::dram;

namespace {

// Stage 1: classic pattern test (no hammering) — catches stuck-at/retention.
std::uint64_t pattern_stage(Device& dev, BackgroundPattern pat,
                            std::uint32_t rows_to_test) {
  std::uint64_t bad_bits = 0;
  Time t = Time::ms(0);
  std::vector<std::uint64_t> words(dev.geometry().row_words());
  for (std::uint32_t r = 0; r < rows_to_test; ++r) {
    for (std::uint32_t w = 0; w < words.size(); ++w)
      words[w] = pattern_word_value(pat, 1, r, w);
    dev.fill_row(0, r, words, t);
  }
  t += Time::ms(64);
  for (std::uint32_t r = 0; r < rows_to_test; ++r) {
    dev.activate(0, r, t);
    for (std::uint32_t w = 0; w < words.size(); ++w) {
      const std::uint64_t got = dev.read_word(0, w);
      bad_bits += static_cast<std::uint64_t>(
          std::popcount(got ^ pattern_word_value(pat, 1, r, w)));
    }
    dev.precharge(0, t);
  }
  return bad_bits;
}

}  // namespace

int main(int argc, char** argv) {
  ModuleDb db;
  const ModuleInfo* module = nullptr;
  if (argc > 1) {
    for (const auto& m : db.modules())
      if (m.id == argv[1]) module = &m;
    if (module == nullptr) {
      std::fprintf(stderr, "unknown module '%s'; ids look like B-2013-04\n",
                   argv[1]);
      return 2;
    }
  } else {
    for (const auto& m : db.modules())
      if (m.year == 2013 && m.vulnerable) {
        module = &m;
        break;
      }
  }

  const Geometry g{1, 1, 1, 8192, 8192};
  Device dev(db.device_config(*module, g));
  std::printf("== memtest: module %s (%s, %d) ==\n", module->id.c_str(),
              manufacturer_name(module->manufacturer), module->year);
  std::printf("geometry: %u rows x %u KiB; %llu cells under test\n\n",
              g.rows, g.row_bytes / 1024,
              static_cast<unsigned long long>(g.cells_total()));

  // --- Stage 1: data patterns ------------------------------------------------
  bool pass = true;
  for (const auto& [name, pat] :
       {std::pair{"solid ones   ", BackgroundPattern::kOnes},
        std::pair{"solid zeros  ", BackgroundPattern::kZeros},
        std::pair{"checkerboard ", BackgroundPattern::kCheckerboard},
        std::pair{"random       ", BackgroundPattern::kRandom}}) {
    const auto bad = pattern_stage(dev, pat, 1024);
    std::printf("stage 1  pattern %s : %s (%llu bad bits)\n", name,
                bad ? "FAIL" : "pass", static_cast<unsigned long long>(bad));
    pass &= bad == 0;
  }

  // --- Stage 2: RowHammer ------------------------------------------------------
  core::ModuleTestConfig tc;
  tc.sample_rows = 1024;
  tc.seed = 1;
  const auto res = core::ModuleTester(tc).run(dev);
  std::printf("\nstage 2  rowhammer (double-sided, %s activations/window,\n"
              "         %u sampled victims, 3 data patterns):\n",
              format_count(res.hammer_count_used).c_str(), tc.sample_rows);
  std::printf("         failing cells: %llu  (%.3g errors per 1e9 cells)\n",
              static_cast<unsigned long long>(res.failing_cells),
              res.errors_per_1e9_cells);
  std::printf("         rows with errors: %llu / %u\n",
              static_cast<unsigned long long>(res.rows_with_errors),
              tc.sample_rows);
  const bool hammer_pass = res.failing_cells == 0;
  std::printf("stage 2  verdict: %s\n", hammer_pass ? "pass" : "FAIL");
  pass &= hammer_pass;

  std::printf("\n=== MODULE %s: %s ===\n", module->id.c_str(),
              pass ? "PASS" : "FAIL (do not deploy without mitigation)");
  if (!hammer_pass)
    std::printf("hint: a module can pass every classic pattern stage and "
                "still fail stage 2 —\nexactly why RowHammer escaped "
                "standard screening (§II).\n");
  return pass ? 0 : 1;
}
