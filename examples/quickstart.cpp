// Quickstart: build a DRAM system, hammer a row, watch bits flip in rows
// the program never wrote, then turn on PARA and watch the flips stop.
//
//   $ ./quickstart
//
// This is the five-minute tour of the densemem public API:
//   dram::DeviceConfig / ctrl::CtrlConfig  — configuration structs
//   core::make_system                      — device+controller+mitigation
//   MemoryController::activate_precharge   — one hammer iteration
//   Device::stats()                        — ground-truth fault counters
#include <cstdio>

#include "core/system.h"

using namespace densemem;

int main() {
  // A RowHammer-vulnerable module: 2013-era weak-cell density/threshold.
  dram::DeviceConfig dev_cfg;
  dev_cfg.geometry = dram::Geometry::tiny();  // 2 banks x 512 rows x 1 KiB
  dev_cfg.reliability = dram::ReliabilityParams::vulnerable();
  dev_cfg.reliability.hc50 = 50e3;  // median hammer threshold (activations)
  dev_cfg.pattern = dram::BackgroundPattern::kOnes;
  dev_cfg.seed = 42;

  std::printf("== densemem quickstart ==\n");
  std::printf("module: %u banks x %u rows, %llu cells, weak-cell density %g\n",
              dram::total_banks(dev_cfg.geometry), dev_cfg.geometry.rows,
              static_cast<unsigned long long>(dev_cfg.geometry.cells_total()),
              dev_cfg.reliability.weak_cell_density);

  // Pick a victim row that actually has weak (hammerable) cells.
  auto pick_victim = [](dram::Device& dev) -> std::uint32_t {
    for (std::uint32_t r : dev.fault_map().weak_rows(0))
      if (r >= 2 && r + 2 < dev.geometry().rows) return r;
    return 0;
  };

  // --- 1. Unprotected system ------------------------------------------------
  {
    auto sys = core::make_system(dev_cfg, ctrl::CtrlConfig{}, {});
    const std::uint32_t victim = pick_victim(sys.dev());
    std::printf("\n[1] no mitigation: double-sided hammer around row %u\n",
                victim);
    for (int i = 0; i < 150'000; ++i) {
      sys.mc().activate_precharge(0, victim - 1);
      sys.mc().activate_precharge(0, victim + 1);
    }
    sys.mc().activate_precharge(0, victim);  // reading the victim commits
    std::printf("    %llu activates in %.1f ms of DRAM time -> %llu bit "
                "flips in rows we never wrote\n",
                static_cast<unsigned long long>(sys.dev().stats().activates),
                sys.mc().now().as_ms(),
                static_cast<unsigned long long>(
                    sys.dev().stats().disturb_flips));
  }

  // --- 2. Same attack, PARA enabled ------------------------------------------
  {
    core::MitigationSpec spec;
    spec.kind = core::MitigationKind::kPara;
    spec.para.probability = 0.001;  // the paper's low-cost setting
    auto sys = core::make_system(dev_cfg, ctrl::CtrlConfig{}, spec);
    const std::uint32_t victim = pick_victim(sys.dev());
    std::printf("\n[2] PARA p=0.001: same hammer\n");
    for (int i = 0; i < 150'000; ++i) {
      sys.mc().activate_precharge(0, victim - 1);
      sys.mc().activate_precharge(0, victim + 1);
    }
    sys.mc().activate_precharge(0, victim);
    std::printf("    flips: %llu, targeted neighbour refreshes issued: %llu, "
                "time overhead vs [1]: negligible\n",
                static_cast<unsigned long long>(
                    sys.dev().stats().disturb_flips),
                static_cast<unsigned long long>(
                    sys.mc().stats().targeted_refreshes));
  }

  // --- 3. What ECC sees -------------------------------------------------------
  {
    ctrl::CtrlConfig cc;
    cc.ecc = ctrl::EccMode::kSecded;
    auto sys = core::make_system(dev_cfg, cc, {});
    const std::uint32_t victim = pick_victim(sys.dev());
    // Write real data through the ECC path, then hammer.
    dram::Address a{0, 0, 0, victim, 0};
    std::array<std::uint64_t, 8> block;
    block.fill(0xFEEDFACECAFEBEEFull);
    for (std::uint32_t blk = 0; blk < sys.mc().blocks_per_row(); ++blk) {
      a.col_word = blk;
      sys.mc().write_block(a, block);
    }
    sys.mc().close_all_banks();
    for (int i = 0; i < 150'000; ++i) {
      sys.mc().activate_precharge(0, victim - 1);
      sys.mc().activate_precharge(0, victim + 1);
    }
    std::uint64_t wrong_words = 0;
    for (std::uint32_t blk = 0; blk < sys.mc().blocks_per_row(); ++blk) {
      a.col_word = blk;
      const auto r = sys.mc().read_block(a);
      for (const auto w : r.data)
        if (w != 0xFEEDFACECAFEBEEFull) ++wrong_words;
    }
    std::printf("\n[3] SECDED ECC: raw flips %llu, corrected words %llu, "
                "uncorrectable blocks %llu, wrong words returned %llu\n",
                static_cast<unsigned long long>(
                    sys.dev().stats().disturb_flips),
                static_cast<unsigned long long>(
                    sys.mc().stats().ecc_corrected_words),
                static_cast<unsigned long long>(
                    sys.mc().stats().ecc_uncorrectable_blocks),
                static_cast<unsigned long long>(wrong_words));
  }

  std::printf("\nNext: examples/attack_demo, examples/retention_profiler, "
              "examples/flash_lifetime; bench/ regenerates the paper's "
              "figures.\n");
  return 0;
}
