// retention_profiler: the §III-A1 story — why DRAM retention profiling is
// hard (DPD + VRT) and how an AVATAR-style online policy copes.
//
// Phase 1 profiles the module with multiple data patterns and rounds,
// bins rows for multirate refresh, and reports what each extra pattern /
// round discovered. Phase 2 deploys the bins, scrubs with ECC, and
// upgrades rows online when a VRT escape produces a corrected error.
//
//   $ ./retention_profiler
#include <cstdio>
#include <set>

#include "ctrl/controller.h"

using namespace densemem;
using namespace densemem::dram;

namespace {

DeviceConfig module_under_test() {
  DeviceConfig cfg;
  cfg.geometry = Geometry{1, 1, 2, 2048, 2048};
  cfg.reliability = ReliabilityParams::leaky();
  cfg.reliability.leaky_cell_density = 1e-4;
  cfg.reliability.retention_mu_log_ms = 7.5;
  cfg.reliability.retention_sigma = 1.1;
  cfg.reliability.vrt_fraction = 0.2;
  cfg.reliability.vrt_rate_hz = 0.3;
  cfg.reliability.retention_dpd_strength = 0.5;
  cfg.seed = 77;
  cfg.pattern = BackgroundPattern::kOnes;
  cfg.record_flip_events = true;
  return cfg;
}

// One profiling pass: fill with `pattern`, wait `interval_ms`, restore all
// rows, return rows that failed.
std::set<std::uint32_t> profile_pass(Device& dev, BackgroundPattern pattern,
                                     std::int64_t interval_ms, Time& t) {
  dev.fill_all(pattern, t);
  t += Time::ms(interval_ms);
  const std::size_t ev0 = dev.flip_events().size();
  for (std::uint32_t b = 0; b < total_banks(dev.geometry()); ++b)
    for (std::uint32_t r : dev.fault_map().leaky_rows(b))
      dev.refresh_row(b, r, t);
  std::set<std::uint32_t> failing;
  for (std::size_t i = ev0; i < dev.flip_events().size(); ++i)
    failing.insert(dev.flip_events()[i].logical_row);
  return failing;
}

}  // namespace

int main() {
  std::printf("== retention_profiler: DPD + VRT vs profiling ==\n\n");
  DeviceConfig cfg = module_under_test();
  Device dev(cfg);
  Time t = Time::ms(0);

  // --- Phase 1: multi-pattern, multi-round profiling at 512 ms ---------------
  const std::int64_t target_ms = 512;  // rows failing here need bin 0
  std::set<std::uint32_t> weak_rows;
  std::printf("phase 1: profiling at %lld ms target interval\n",
              static_cast<long long>(target_ms));
  for (const auto& [name, pat] :
       {std::pair{"solid ones  ", BackgroundPattern::kOnes},
        std::pair{"solid zeros ", BackgroundPattern::kZeros},
        std::pair{"rowstripe   ", BackgroundPattern::kRowStripe},
        std::pair{"checkerboard", BackgroundPattern::kCheckerboard}}) {
    const auto found = profile_pass(dev, pat, target_ms, t);
    std::size_t fresh = 0;
    for (std::uint32_t r : found)
      if (weak_rows.insert(r).second) ++fresh;
    std::printf("  pattern %s: %4zu failing rows (%zu new)\n", name,
                found.size(), fresh);
  }
  for (int round = 2; round <= 5; ++round) {
    const auto found =
        profile_pass(dev, BackgroundPattern::kRowStripe, target_ms, t);
    std::size_t fresh = 0;
    for (std::uint32_t r : found)
      if (weak_rows.insert(r).second) ++fresh;
    std::printf("  repeat round %d (rowstripe): %zu new rows (VRT churn)\n",
                round, fresh);
  }
  std::printf("  => %zu rows binned fast (every 64 ms window), rest 8x slow\n\n",
              weak_rows.size());

  // --- Phase 2: deploy multirate refresh + AVATAR online upgrades ------------
  ctrl::CtrlConfig cc;
  cc.refresh_mode = ctrl::RefreshMode::kMultirate;
  cc.ecc = ctrl::EccMode::kSecded;
  ctrl::MemoryController mc(dev, cc);
  for (std::uint32_t b = 0; b < total_banks(dev.geometry()); ++b)
    for (std::uint32_t r = 0; r < dev.geometry().rows; ++r)
      mc.set_row_bin(b, r, 3);  // 8x slower by default
  for (std::uint32_t r : weak_rows) {
    mc.set_row_bin(0, r, 0);
    mc.set_row_bin(1, r, 0);  // conservatively in both banks
  }

  // Write data through ECC so scrubbing can see corrected errors; scrub the
  // leaky rows each window and upgrade rows AVATAR-style.
  std::array<std::uint64_t, 8> payload;
  payload.fill(~std::uint64_t{0});
  std::vector<std::pair<std::uint32_t, std::uint32_t>> scrub_targets;
  for (std::uint32_t b = 0; b < total_banks(dev.geometry()); ++b)
    for (std::uint32_t r : dev.fault_map().leaky_rows(b))
      scrub_targets.push_back({b, r});
  for (const auto& [b, r] : scrub_targets) {
    dram::Address a = address_of(dev.geometry(), b, r);
    for (std::uint32_t blk = 0; blk < mc.blocks_per_row(); ++blk) {
      a.col_word = blk;
      mc.write_block(a, payload);
    }
  }
  mc.close_all_banks();

  std::printf("phase 2: 32 windows of multirate refresh + AVATAR scrubbing\n");
  std::uint64_t upgrades = 0, uncorrectable = 0;
  for (int window = 1; window <= 32; ++window) {
    mc.advance_to(Time::ms(64) * window + mc.now());
    for (const auto& [b, r] : scrub_targets) {
      dram::Address a = address_of(dev.geometry(), b, r);
      bool corrected = false, failed = false;
      for (std::uint32_t blk = 0; blk < mc.blocks_per_row(); ++blk) {
        a.col_word = blk;
        const auto res = mc.scrub_block(a);
        corrected |= res.status == ecc::DecodeStatus::kCorrected;
        failed |= res.status == ecc::DecodeStatus::kUncorrectable;
      }
      mc.close_all_banks();
      if (failed) ++uncorrectable;
      if (corrected && mc.row_bin(b, r) != 0) {
        mc.set_row_bin(b, r, 0);  // AVATAR upgrade
        ++upgrades;
      }
    }
  }
  std::printf("  AVATAR upgrades (VRT escapes caught by ECC): %llu\n",
              static_cast<unsigned long long>(upgrades));
  std::printf("  uncorrectable scrub reads: %llu\n",
              static_cast<unsigned long long>(uncorrectable));
  std::printf("  rows refreshed: %llu, skipped by multirate: %llu (%.0f%% "
              "refresh saved)\n",
              static_cast<unsigned long long>(mc.stats().rows_refreshed),
              static_cast<unsigned long long>(
                  mc.stats().rows_skipped_multirate),
              100.0 * static_cast<double>(mc.stats().rows_skipped_multirate) /
                  static_cast<double>(mc.stats().rows_refreshed +
                                      mc.stats().rows_skipped_multirate));
  std::printf("\nTakeaway: profiling alone cannot pin down retention (DPD "
              "needs the right pattern,\nVRT changes over time); an online "
              "ECC-guided policy closes the gap (§III-A1).\n");
  return 0;
}
