#include "core/system.h"

namespace densemem::core {

const char* mitigation_name(MitigationKind k) {
  switch (k) {
    case MitigationKind::kNone: return "none";
    case MitigationKind::kPara: return "PARA";
    case MitigationKind::kCra: return "CRA";
    case MitigationKind::kAnvil: return "ANVIL";
    case MitigationKind::kTrr: return "TRR";
    case MitigationKind::kTrrSampler: return "TRR-sampler";
  }
  return "?";
}

std::unique_ptr<ctrl::Mitigation> make_mitigation(const MitigationSpec& spec,
                                                  ctrl::AdjacencyFn adjacency,
                                                  std::uint64_t rows_total) {
  switch (spec.kind) {
    case MitigationKind::kNone:
      return std::make_unique<ctrl::NoMitigation>();
    case MitigationKind::kPara:
      return std::make_unique<ctrl::Para>(spec.para, std::move(adjacency));
    case MitigationKind::kCra: {
      ctrl::CraConfig cfg = spec.cra;
      if (cfg.rows_total == 0) cfg.rows_total = rows_total;
      return std::make_unique<ctrl::Cra>(cfg, std::move(adjacency));
    }
    case MitigationKind::kAnvil:
      return std::make_unique<ctrl::Anvil>(spec.anvil, std::move(adjacency));
    case MitigationKind::kTrr:
      return std::make_unique<ctrl::Trr>(spec.trr, std::move(adjacency));
    case MitigationKind::kTrrSampler:
      return std::make_unique<ctrl::TrrSampler>(spec.trr_sampler,
                                                std::move(adjacency));
  }
  return std::make_unique<ctrl::NoMitigation>();
}

System make_system(const dram::DeviceConfig& dev_cfg,
                   const ctrl::CtrlConfig& ctrl_cfg,
                   const MitigationSpec& mitigation) {
  System sys;
  sys.device = std::make_unique<dram::Device>(dev_cfg);
  auto adjacency =
      ctrl::make_adjacency(*sys.device, ctrl_cfg.use_spd_adjacency);
  auto mit = make_mitigation(mitigation, std::move(adjacency),
                             sys.device->geometry().rows_total());
  sys.controller = std::make_unique<ctrl::MemoryController>(
      *sys.device, ctrl_cfg, std::move(mit));
  return sys;
}

}  // namespace densemem::core
