#include "core/module_tester.h"

#include <algorithm>

#include "common/check.h"

namespace densemem::core {

ModuleTestResult ModuleTester::run(dram::Device& dev) const {
  const dram::Geometry& g = dev.geometry();
  DM_CHECK_MSG(g.rows >= 8, "module too small to test");

  ModuleTestResult res;
  res.hammer_count_used =
      cfg_.hammer_count
          ? cfg_.hammer_count
          : static_cast<std::uint64_t>(
                dram::Timing::ddr3_1600().max_activations_per_window());

  // Choose victim rows (margin of 2 at the bank edges).
  std::vector<std::uint32_t> victims;
  const std::uint32_t usable = g.rows - 4;
  if (cfg_.sample_rows == 0 || cfg_.sample_rows >= usable) {
    for (std::uint32_t r = 2; r + 2 < g.rows; ++r) victims.push_back(r);
  } else {
    Rng rng(hash_coords(cfg_.seed, 0x4d544553 /* "MTES" */));
    auto idx = rng.sample_indices(usable, cfg_.sample_rows);
    victims.reserve(idx.size());
    for (std::size_t i : idx)
      victims.push_back(static_cast<std::uint32_t>(i) + 2);
    std::sort(victims.begin(), victims.end());
  }

  // Every deterministic pattern's row words depend only on row parity, so
  // two templates per pattern replace the per-victim regeneration of five
  // full rows (kRandom words depend on (row, word) and are still generated
  // per row, into a reused buffer).
  struct PatternRows {
    dram::BackgroundPattern pat;
    bool random;
    std::vector<std::uint64_t> tmpl[2];  ///< by row parity; empty if random
  };
  std::vector<PatternRows> prows;
  prows.reserve(cfg_.patterns.size());
  for (dram::BackgroundPattern pat : cfg_.patterns) {
    PatternRows pr;
    pr.pat = pat;
    pr.random = pat == dram::BackgroundPattern::kRandom;
    if (!pr.random) {
      for (std::uint32_t parity = 0; parity < 2; ++parity) {
        pr.tmpl[parity].resize(g.row_words());
        for (std::uint32_t w = 0; w < g.row_words(); ++w) {
          // fill_row compares against the *device* pattern source, so build
          // the words with the same generator as the check below.
          pr.tmpl[parity][w] =
              dram::pattern_word_value(pat, cfg_.seed, parity, w);
        }
      }
    }
    prows.push_back(std::move(pr));
  }

  Time t = Time::ms(0);
  std::vector<std::uint64_t> rand_row(g.row_words());
  std::vector<std::uint64_t> victim_rand(g.row_words());
  std::vector<std::uint64_t> readback;
  // One allocation reused across victims; duplicates (the same cell failing
  // under several patterns) are collapsed by a sort+unique per victim, which
  // beats a node-based set on the flip counts real sweeps produce.
  std::vector<std::uint32_t> failing_bits;
  for (std::uint32_t v : victims) {
    failing_bits.clear();
    for (const PatternRows& pr : prows) {
      // Re-initialize the 5-row neighbourhood with the pattern: writing a
      // row restores its charge and clears previous flips.
      for (std::uint32_t r = v - 2; r <= v + 2; ++r) {
        if (pr.random) {
          for (std::uint32_t w = 0; w < g.row_words(); ++w)
            rand_row[w] = dram::pattern_word_value(pr.pat, cfg_.seed, r, w);
          if (r == v) victim_rand = rand_row;
          dev.fill_row(cfg_.fbank, r, rand_row, t);
        } else {
          dev.fill_row(cfg_.fbank, r, pr.tmpl[r & 1], t);
        }
      }
      // hammer_count is the total activation budget of one refresh window;
      // the aggressor loop splits it. Double-sided spends all of it on rows
      // adjacent to the victim; single-sided burns half on the far dummy
      // row needed to defeat the row buffer (as the real test program does),
      // which is exactly why double-sided is ~2x as effective.
      const std::uint64_t per_side = res.hammer_count_used / 2;
      if (cfg_.double_sided) {
        dev.hammer(cfg_.fbank, v - 1, per_side, t);
        dev.hammer(cfg_.fbank, v + 1, per_side, t);
      } else {
        dev.hammer(cfg_.fbank, v + 1, per_side, t);
      }
      // Activating the victim commits any flips its stress earned.
      t += Time::ms(64);
      dev.activate(cfg_.fbank, v, t);
      dev.precharge(cfg_.fbank, t);
      dev.snapshot_row(cfg_.fbank, v, readback);
      const std::vector<std::uint64_t>& expected =
          pr.random ? victim_rand : pr.tmpl[v & 1];
      for (std::uint32_t w = 0; w < g.row_words(); ++w) {
        std::uint64_t diff = readback[w] ^ expected[w];
        while (diff) {
          const auto bit = static_cast<std::uint32_t>(__builtin_ctzll(diff));
          failing_bits.push_back(w * 64 + bit);
          diff &= diff - 1;
        }
      }
    }
    std::sort(failing_bits.begin(), failing_bits.end());
    failing_bits.erase(std::unique(failing_bits.begin(), failing_bits.end()),
                       failing_bits.end());
    res.failing_cells += failing_bits.size();
    if (!failing_bits.empty()) ++res.rows_with_errors;
    res.cells_tested += g.row_bits();
  }
  res.errors_per_1e9_cells = res.cells_tested
                                 ? static_cast<double>(res.failing_cells) /
                                       static_cast<double>(res.cells_tested) *
                                       1e9
                                 : 0.0;
  return res;
}

}  // namespace densemem::core
