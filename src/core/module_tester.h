// ModuleTester — the simulator-side equivalent of the released user-level
// RowHammer test program [3] and the FPGA test methodology of ISCA'14:
// fill a region with a data pattern, hammer the rows adjacent to a victim
// for (up to) a full refresh window's worth of activations, read the victim
// back, and count corrupted cells. Run over several data patterns and take
// the union of failing cells, exactly as multi-pattern memory testing does.
//
// Testing every row of a 2 GiB module is unnecessary: fault maps are i.i.d.
// per row (see faultmap.h), so a sampled subset gives an unbiased error
// rate with known (Poisson) uncertainty — the tester reports both.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "dram/device.h"
#include "dram/timing.h"

namespace densemem::core {

struct ModuleTestConfig {
  /// Total activation budget per victim test (one refresh window's worth;
  /// split across the aggressor rows). 0 = the maximum a refresh window
  /// allows under DDR3-1600 timing (the strongest legal hammer).
  std::uint64_t hammer_count = 0;
  std::uint32_t sample_rows = 2048;  ///< victims sampled (0 = every row)
  bool double_sided = true;
  std::vector<dram::BackgroundPattern> patterns{
      dram::BackgroundPattern::kOnes, dram::BackgroundPattern::kZeros,
      dram::BackgroundPattern::kCheckerboard};
  std::uint32_t fbank = 0;
  std::uint64_t seed = 1;
};

struct ModuleTestResult {
  std::uint64_t failing_cells = 0;  ///< unique cells, union over patterns
  std::uint64_t cells_tested = 0;   ///< victims × row bits
  std::uint64_t rows_with_errors = 0;
  double errors_per_1e9_cells = 0.0;
  std::uint64_t hammer_count_used = 0;
};

class ModuleTester {
 public:
  explicit ModuleTester(ModuleTestConfig cfg) : cfg_(cfg) {}

  /// Runs the test on the device (uses the bulk-hammer device path: exact
  /// for an unmitigated controller; mitigation studies go through
  /// attack::Attacker instead).
  ModuleTestResult run(dram::Device& dev) const;

 private:
  ModuleTestConfig cfg_;
};

}  // namespace densemem::core
