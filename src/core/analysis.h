// Closed-form reliability/security models, cross-checked against the
// simulator by the benches (design decision #3 in DESIGN.md: every analytic
// claim is double-booked against Monte Carlo, and vice versa).
#pragma once

#include <cstdint>

#include "dram/reliability.h"
#include "dram/timing.h"

namespace densemem::core {

/// PARA (§II-C): probability that a victim survives exactly `n` aggressor
/// row-closes without any neighbour refresh, with per-close refresh
/// probability p. (The victim is refreshed whenever PARA fires on either
/// adjacent aggressor close.)
double para_survival_probability(double p, std::uint64_t n);

/// Probability that, within `n` aggressor closes, there exists a run of at
/// least `t` consecutive closes with no PARA refresh — i.e. the victim
/// accumulates `t` hammer stress without a restore and flips. Exact DP.
double para_failure_probability(double p, std::uint64_t n, std::uint64_t t);

/// Maximum activations one aggressor can issue inside a refresh window
/// under the given timing (the N of the PARA analysis; §II-C).
std::uint64_t max_hammers_per_window(const dram::Timing& t);

/// Time overhead of refresh: fraction of rank time consumed by REF commands
/// (tRFC per tREFI). Grows linearly with the refresh-rate multiplier — the
/// §II-C objection to refresh-based mitigation.
double refresh_time_overhead(const dram::Timing& t);

/// Expected number of weak cells flipped when every weak cell whose
/// threshold is below `stress` flips: lognormal CDF of the threshold
/// distribution. Used to sanity-check module error rates analytically.
double lognormal_cdf(double x, double mu_log, double sigma);

/// Closed-form expectation of the multi-pattern hammer test's error rate
/// (errors per 1e9 cells) for a module with the given reliability
/// parameters under the standard test (double-sided, solid-ones +
/// solid-zeros + checkerboard union, total activation budget `hammer_count`
/// split across the two aggressors). Integrates over the per-cell DPD
/// sensitivity (clipped normal) and threshold (lognormal) distributions —
/// the analytic twin of core::ModuleTester (DESIGN.md decision #3).
double expected_test_error_rate(const dram::ReliabilityParams& params,
                                std::uint64_t hammer_count);

}  // namespace densemem::core
