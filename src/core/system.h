// System builder: composes a DRAM device, a memory controller, and a
// mitigation from plain configuration values. This is the top of the public
// API — examples and benches construct Systems and drive them.
#pragma once

#include <memory>

#include "ctrl/anvil.h"
#include "ctrl/controller.h"
#include "ctrl/cra.h"
#include "ctrl/para.h"
#include "ctrl/trr.h"
#include "ctrl/trr_sampler.h"
#include "dram/device.h"

namespace densemem::core {

enum class MitigationKind { kNone, kPara, kCra, kAnvil, kTrr, kTrrSampler };

const char* mitigation_name(MitigationKind k);

struct MitigationSpec {
  MitigationKind kind = MitigationKind::kNone;
  ctrl::ParaConfig para;
  ctrl::CraConfig cra;
  ctrl::AnvilConfig anvil;
  ctrl::TrrConfig trr;
  ctrl::TrrSamplerConfig trr_sampler;
};

struct System {
  std::unique_ptr<dram::Device> device;
  std::unique_ptr<ctrl::MemoryController> controller;

  dram::Device& dev() { return *device; }
  ctrl::MemoryController& mc() { return *controller; }
};

/// Builds a device + controller + mitigation stack. The mitigation's
/// adjacency provider honours cfg.use_spd_adjacency.
System make_system(const dram::DeviceConfig& dev_cfg,
                   const ctrl::CtrlConfig& ctrl_cfg,
                   const MitigationSpec& mitigation = {});

/// Builds just the mitigation (for callers managing their own controller).
std::unique_ptr<ctrl::Mitigation> make_mitigation(
    const MitigationSpec& spec, ctrl::AdjacencyFn adjacency,
    std::uint64_t rows_total);

}  // namespace densemem::core
