#include "core/analysis.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace densemem::core {

double para_survival_probability(double p, std::uint64_t n) {
  DM_CHECK_MSG(p >= 0.0 && p <= 1.0, "probability out of range");
  return std::pow(1.0 - p, static_cast<double>(n));
}

double para_failure_probability(double p, std::uint64_t n, std::uint64_t t) {
  DM_CHECK_MSG(p >= 0.0 && p <= 1.0, "probability out of range");
  DM_CHECK_MSG(t >= 1, "run length must be positive");
  if (n < t) return 0.0;
  const double q_t_bound = std::pow(1.0 - p, static_cast<double>(t));
  // Union bound over run start positions: exact to first order and the only
  // representable answer once the probability drops below double epsilon
  // (the DP's 1 - s[n] would round to zero there).
  const double union_bound =
      static_cast<double>(n - t + 1) * p * q_t_bound + q_t_bound;
  if (union_bound < 1e-9) return union_bound;
  // DP over closes: f[i] = P(no miss-run of length t within the first i
  // closes AND close i was a refresh-hit), g[i] = P(no run yet, last j
  // closes were misses). Standard run-length recurrence: let s[i] be the
  // probability that no t-run occurred in the first i trials. Then
  //   s[i] = s[i-1] - p * (1-p)^t * s[i-t-1]   for i > t,
  // with s[i] = 1 for i < t and s[t] = 1 - (1-p)^t.
  const double q_t = std::pow(1.0 - p, static_cast<double>(t));
  std::vector<double> s(n + 1, 1.0);
  s[t] = 1.0 - q_t;
  for (std::uint64_t i = t + 1; i <= n; ++i) {
    const double prev = (i >= t + 1) ? s[i - t - 1] : 1.0;
    s[i] = s[i - 1] - p * q_t * prev;
    if (s[i] < 0.0) s[i] = 0.0;
  }
  return 1.0 - s[n];
}

std::uint64_t max_hammers_per_window(const dram::Timing& t) {
  return static_cast<std::uint64_t>(t.max_activations_per_window());
}

double refresh_time_overhead(const dram::Timing& t) {
  return static_cast<double>(t.tRFC.picoseconds()) /
         static_cast<double>(t.tREFI.picoseconds());
}

double lognormal_cdf(double x, double mu_log, double sigma) {
  if (x <= 0.0) return 0.0;
  return 0.5 * std::erfc(-(std::log(x) - mu_log) / (sigma * std::sqrt(2.0)));
}

double expected_test_error_rate(const dram::ReliabilityParams& params,
                                std::uint64_t hammer_count) {
  // Stress seen by the victim: the budget splits across two adjacent
  // aggressors, and both are adjacent to the victim, so the victim receives
  // the full budget (plus a negligible distance-2 term we ignore here).
  const double stress = static_cast<double>(hammer_count);
  const double mu = std::log(params.hc50);

  // Per-cell flip probability under the three-pattern union. Solid
  // patterns store parallel aggressor data (pattern factor 1 - s) and
  // charge the cell under exactly one of ones/zeros depending on its
  // orientation; checkerboard charges half the cells at full factor 1.
  // A cell fails the test if it flips under ANY pattern, i.e. if
  //   thr < stress * max(factor over patterns that charge it).
  // For a cell charged under checkerboard the max factor is 1; otherwise
  // it is (1 - s) from its solid pattern.
  //
  // Integrate s over the clipped normal N(mean, 0.2) the fault map draws.
  const double s_mean = params.dpd_sensitivity_mean;
  const double s_sigma = 0.2;
  const int steps = 64;
  double p_flip = 0.0;
  double weight_sum = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double z = -3.0 + 6.0 * (static_cast<double>(i) + 0.5) / steps;
    const double w = std::exp(-0.5 * z * z);
    const double s = std::clamp(s_mean + s_sigma * z, 0.0, 1.0);
    // Half the cells sit on a checkerboard-charged bit (factor 1); all
    // cells are charged under their matching solid pattern (factor 1-s).
    const double p_checker = lognormal_cdf(stress, mu, params.hc_sigma);
    const double p_solid =
        lognormal_cdf(stress * (1.0 - s), mu, params.hc_sigma);
    // For the checkerboard-charged half, failing under EITHER pattern is
    // dominated by the larger factor (1 >= 1-s); the other half only has
    // its solid pattern.
    p_flip += w * (0.5 * std::max(p_checker, p_solid) + 0.5 * p_solid);
    weight_sum += w;
  }
  p_flip /= weight_sum;
  return params.weak_cell_density * p_flip * 1e9;
}

}  // namespace densemem::core
