// SoftMC-style DRAM command-trace infrastructure (HPCA'17 [39]).
//
// The paper credits an open FPGA-based infrastructure — which issues raw
// DRAM command sequences with controlled timing — for enabling the
// RowHammer and retention studies. This module is its simulator-side
// equivalent: a small textual command language, a parser with positioned
// error messages, and a runner that executes programs directly against the
// device model (bypassing the memory controller, exactly as SoftMC
// bypasses the platform's controller).
//
// Language (one command per line; '#' starts a comment):
//   ACT <bank> <row>            activate
//   PRE <bank>                  precharge
//   RD <bank> <col_word>        read one 64-bit word (logged)
//   WR <bank> <col_word> <hex>  write one 64-bit word
//   REF <count>                 refresh the next <count> rows in every bank
//   WAIT <duration>             advance time: e.g. 100ns, 5us, 10ms, 2s
//   HAMMER <bank> <row> <n>     n ACT/PRE pairs (bulk extension)
//   FILL <pattern>              zeros|ones|checker|rowstripe|random
//   CHECK <bank> <row> <pattern>  compare a row; mismatches are recorded
//   LOOP <n> ... ENDLOOP        repeat the enclosed block (nestable)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dram/device.h"
#include "dram/timing.h"

namespace densemem::softmc {

enum class Op {
  kAct,
  kPre,
  kRd,
  kWr,
  kRef,
  kWait,
  kHammer,
  kFill,
  kCheck,
  kLoop,
  kEndLoop,
};

struct Instruction {
  Op op;
  std::uint32_t bank = 0;
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  std::uint64_t value = 0;          ///< WR data / REF count / LOOP count /
                                    ///< HAMMER count
  Time wait;                        ///< WAIT duration
  dram::BackgroundPattern pattern = dram::BackgroundPattern::kZeros;
  int line = 0;                     ///< 1-based source line (diagnostics)
};

/// Parse failure with line/column context.
struct ParseError {
  int line = 0;
  std::string message;
};

struct ParseResult {
  bool ok = false;
  std::vector<Instruction> program;
  ParseError error;  ///< valid when !ok
};

/// Parses a trace program. Validates loop nesting and argument counts; bank
/// and row ranges are checked at run time against the target device.
ParseResult parse_trace(std::string_view text);

struct TraceStats {
  std::uint64_t commands_executed = 0;
  std::uint64_t reads = 0;
  std::vector<std::uint64_t> read_log;  ///< data of every RD, in order
  std::uint64_t check_errors = 0;       ///< mismatched bits across CHECKs
  std::uint64_t checks = 0;
  Time end_time;
};

/// Executes a parsed program against a device, advancing a local clock with
/// the given timing (ACT: tRCD, PRE: tRP, RD/WR: tCL, REF: tRFC,
/// HAMMER n: n x tRC). Throws CheckError on protocol violations, exactly as
/// the device would reject an illegal FPGA-issued sequence.
TraceStats run_trace(const std::vector<Instruction>& program,
                     dram::Device& device,
                     const dram::Timing& timing = dram::Timing::ddr3_1600(),
                     Time start = Time{});

/// Convenience: parse + run; throws CheckError with the parse diagnostic on
/// malformed input.
TraceStats run_trace_text(std::string_view text, dram::Device& device,
                          const dram::Timing& timing = dram::Timing::ddr3_1600());

}  // namespace densemem::softmc
