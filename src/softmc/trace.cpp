#include "softmc/trace.h"

#include <bit>
#include <cctype>
#include <charconv>
#include <sstream>

#include "common/check.h"

namespace densemem::softmc {

namespace {

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : line) {
    if (ch == '#') break;  // comment to end of line
    if (ch == ' ' || ch == '\t' || ch == '\r') {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur += ch;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

bool parse_u64(const std::string& tok, std::uint64_t& out, int base = 10) {
  const char* begin = tok.data();
  const char* end = tok.data() + tok.size();
  if (base == 16 && tok.size() > 2 && tok[0] == '0' &&
      (tok[1] == 'x' || tok[1] == 'X'))
    begin += 2;
  const auto [ptr, ec] = std::from_chars(begin, end, out, base);
  return ec == std::errc{} && ptr == end;
}

bool parse_u32(const std::string& tok, std::uint32_t& out) {
  std::uint64_t v;
  if (!parse_u64(tok, v) || v > 0xFFFFFFFFull) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

bool parse_duration(const std::string& tok, Time& out) {
  // <number><unit> with unit in {ns, us, ms, s}.
  std::size_t i = 0;
  while (i < tok.size() && (std::isdigit(static_cast<unsigned char>(tok[i]))))
    ++i;
  if (i == 0 || i == tok.size()) return false;
  std::uint64_t value;
  if (!parse_u64(tok.substr(0, i), value)) return false;
  const std::string unit = tok.substr(i);
  const auto v = static_cast<std::int64_t>(value);
  if (unit == "ns")
    out = Time::ns(v);
  else if (unit == "us")
    out = Time::us(v);
  else if (unit == "ms")
    out = Time::ms(v);
  else if (unit == "s")
    out = Time::s(v);
  else
    return false;
  return true;
}

bool parse_pattern(const std::string& tok, dram::BackgroundPattern& out) {
  if (tok == "zeros")
    out = dram::BackgroundPattern::kZeros;
  else if (tok == "ones")
    out = dram::BackgroundPattern::kOnes;
  else if (tok == "checker")
    out = dram::BackgroundPattern::kCheckerboard;
  else if (tok == "rowstripe")
    out = dram::BackgroundPattern::kRowStripe;
  else if (tok == "random")
    out = dram::BackgroundPattern::kRandom;
  else
    return false;
  return true;
}

ParseResult fail(int line, std::string message) {
  ParseResult r;
  r.ok = false;
  r.error = {line, std::move(message)};
  return r;
}

}  // namespace

ParseResult parse_trace(std::string_view text) {
  ParseResult result;
  std::vector<int> loop_stack;  // source lines of open LOOPs (diagnostics)
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos
                                                      : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    const auto toks = tokenize(line);
    if (toks.empty()) continue;

    Instruction ins;
    ins.line = line_no;
    const std::string& cmd = toks[0];
    auto need = [&](std::size_t n) { return toks.size() == n + 1; };

    if (cmd == "ACT") {
      if (!need(2)) return fail(line_no, "ACT expects: ACT <bank> <row>");
      ins.op = Op::kAct;
      if (!parse_u32(toks[1], ins.bank) || !parse_u32(toks[2], ins.row))
        return fail(line_no, "ACT: bad bank/row");
    } else if (cmd == "PRE") {
      if (!need(1)) return fail(line_no, "PRE expects: PRE <bank>");
      ins.op = Op::kPre;
      if (!parse_u32(toks[1], ins.bank)) return fail(line_no, "PRE: bad bank");
    } else if (cmd == "RD") {
      if (!need(2)) return fail(line_no, "RD expects: RD <bank> <col>");
      ins.op = Op::kRd;
      if (!parse_u32(toks[1], ins.bank) || !parse_u32(toks[2], ins.col))
        return fail(line_no, "RD: bad bank/col");
    } else if (cmd == "WR") {
      if (!need(3)) return fail(line_no, "WR expects: WR <bank> <col> <hex>");
      ins.op = Op::kWr;
      if (!parse_u32(toks[1], ins.bank) || !parse_u32(toks[2], ins.col))
        return fail(line_no, "WR: bad bank/col");
      if (!parse_u64(toks[3], ins.value, 16))
        return fail(line_no, "WR: bad hex data");
    } else if (cmd == "REF") {
      if (!need(1)) return fail(line_no, "REF expects: REF <rows>");
      ins.op = Op::kRef;
      if (!parse_u64(toks[1], ins.value) || ins.value == 0)
        return fail(line_no, "REF: bad row count");
    } else if (cmd == "WAIT") {
      if (!need(1)) return fail(line_no, "WAIT expects: WAIT <duration>");
      ins.op = Op::kWait;
      if (!parse_duration(toks[1], ins.wait))
        return fail(line_no, "WAIT: bad duration (use e.g. 100ns, 5us, 10ms)");
    } else if (cmd == "HAMMER") {
      if (!need(3))
        return fail(line_no, "HAMMER expects: HAMMER <bank> <row> <count>");
      ins.op = Op::kHammer;
      if (!parse_u32(toks[1], ins.bank) || !parse_u32(toks[2], ins.row) ||
          !parse_u64(toks[3], ins.value) || ins.value == 0)
        return fail(line_no, "HAMMER: bad bank/row/count");
    } else if (cmd == "FILL") {
      if (!need(1)) return fail(line_no, "FILL expects: FILL <pattern>");
      ins.op = Op::kFill;
      if (!parse_pattern(toks[1], ins.pattern))
        return fail(line_no,
                    "FILL: pattern must be zeros|ones|checker|rowstripe|random");
    } else if (cmd == "CHECK") {
      if (!need(3))
        return fail(line_no, "CHECK expects: CHECK <bank> <row> <pattern>");
      ins.op = Op::kCheck;
      if (!parse_u32(toks[1], ins.bank) || !parse_u32(toks[2], ins.row))
        return fail(line_no, "CHECK: bad bank/row");
      if (!parse_pattern(toks[3], ins.pattern))
        return fail(line_no, "CHECK: bad pattern");
    } else if (cmd == "LOOP") {
      if (!need(1)) return fail(line_no, "LOOP expects: LOOP <count>");
      ins.op = Op::kLoop;
      if (!parse_u64(toks[1], ins.value) || ins.value == 0)
        return fail(line_no, "LOOP: bad count");
      loop_stack.push_back(line_no);
    } else if (cmd == "ENDLOOP") {
      if (!need(0)) return fail(line_no, "ENDLOOP takes no arguments");
      ins.op = Op::kEndLoop;
      if (loop_stack.empty())
        return fail(line_no, "ENDLOOP without matching LOOP");
      loop_stack.pop_back();
    } else {
      return fail(line_no, "unknown command '" + cmd + "'");
    }
    result.program.push_back(ins);
  }
  if (!loop_stack.empty())
    return fail(loop_stack.back(), "LOOP never closed with ENDLOOP");
  result.ok = true;
  return result;
}

TraceStats run_trace(const std::vector<Instruction>& program,
                     dram::Device& device, const dram::Timing& timing,
                     Time start) {
  TraceStats stats;
  Time now = start;
  const dram::Geometry& g = device.geometry();

  struct LoopFrame {
    std::size_t body_start;   ///< pc of first instruction inside the loop
    std::uint64_t remaining;  ///< iterations left after the current one
  };
  std::vector<LoopFrame> loops;

  std::size_t pc = 0;
  while (pc < program.size()) {
    const Instruction& ins = program[pc];
    ++stats.commands_executed;
    switch (ins.op) {
      case Op::kAct:
        DM_CHECK_MSG(ins.bank < dram::total_banks(g), "trace: bank range");
        DM_CHECK_MSG(ins.row < g.rows, "trace: row range");
        device.activate(ins.bank, ins.row, now);
        now += timing.tRCD;
        break;
      case Op::kPre:
        device.precharge(ins.bank, now);
        now += timing.tRP;
        break;
      case Op::kRd:
        stats.read_log.push_back(device.read_word(ins.bank, ins.col));
        ++stats.reads;
        now += timing.tCL;
        break;
      case Op::kWr:
        device.write_word(ins.bank, ins.col, ins.value);
        now += timing.tCL;
        break;
      case Op::kRef:
        for (std::uint32_t b = 0; b < dram::total_banks(g); ++b)
          device.refresh_next(b, static_cast<std::uint32_t>(ins.value), now);
        now += timing.tRFC;
        break;
      case Op::kWait:
        now += ins.wait;
        break;
      case Op::kHammer:
        device.hammer(ins.bank, ins.row, ins.value, now);
        now += timing.tRC * static_cast<std::int64_t>(ins.value);
        break;
      case Op::kFill:
        device.fill_all(ins.pattern, now);
        break;
      case Op::kCheck: {
        // Realize pending faults through an activate, then compare.
        device.activate(ins.bank, ins.row, now);
        now += timing.tRCD;
        ++stats.checks;
        for (std::uint32_t w = 0; w < g.row_words(); ++w) {
          const std::uint64_t got = device.read_word(ins.bank, w);
          const std::uint64_t want = dram::pattern_word_value(
              ins.pattern, device.config().seed, ins.row, w);
          stats.check_errors +=
              static_cast<std::uint64_t>(std::popcount(got ^ want));
        }
        device.precharge(ins.bank, now);
        now += timing.tRP;
        break;
      }
      case Op::kLoop:
        loops.push_back({pc + 1, ins.value - 1});
        break;
      case Op::kEndLoop: {
        DM_CHECK_MSG(!loops.empty(), "trace: ENDLOOP underflow");
        LoopFrame& f = loops.back();
        if (f.remaining > 0) {
          --f.remaining;
          pc = f.body_start;
          continue;  // skip the pc increment below
        }
        loops.pop_back();
        break;
      }
    }
    ++pc;
  }
  stats.end_time = now;
  return stats;
}

TraceStats run_trace_text(std::string_view text, dram::Device& device,
                          const dram::Timing& timing) {
  const auto parsed = parse_trace(text);
  if (!parsed.ok) {
    std::ostringstream os;
    os << "trace parse error at line " << parsed.error.line << ": "
       << parsed.error.message;
    throw CheckError(os.str());
  }
  return run_trace(parsed.program, device, timing);
}

}  // namespace densemem::softmc
