// MLC NAND flash device: blocks × wordlines × cells with an analog
// threshold-voltage state per cell.
//
// Program/erase mutate stored Vth eagerly (they are rare); retention loss
// and read disturb are applied *functionally* at read time from (elapsed
// time since program, block reads since program) — exact for these
// monotonic accumulations and O(1) per cell, which keeps year-scale
// retention experiments cheap.
//
// Time uses double seconds: flash retention spans months, beyond the
// picosecond Time type's comfortable range, and sub-ns resolution is
// irrelevant at this timescale.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/bitvec.h"
#include "common/check.h"
#include "common/rng.h"
#include "flash/params.h"

namespace densemem::flash {

struct FlashGeometry {
  std::uint32_t blocks = 16;
  std::uint32_t wordlines = 32;   ///< per block; each holds an LSB+MSB page
  std::uint32_t page_bits = 2048; ///< cells per wordline = bits per page

  std::uint64_t cells_total() const {
    return static_cast<std::uint64_t>(blocks) * wordlines * page_bits;
  }
  void validate() const {
    DM_CHECK_MSG(blocks >= 1 && wordlines >= 2 && page_bits >= 64,
                 "degenerate flash geometry");
  }
};

/// Which page of a wordline: LSB is programmed first (two-step method).
enum class PageType { kLsb, kMsb };

struct PageAddress {
  std::uint32_t block;
  std::uint32_t wordline;
  PageType type;
};

struct FlashStats {
  std::uint64_t programs = 0;
  std::uint64_t reads = 0;
  std::uint64_t erases = 0;
  std::uint64_t two_step_lsb_misreads = 0;  ///< intermediate state corrupted
};

struct FlashConfig {
  FlashGeometry geometry;
  CellParams cell;
  std::uint64_t seed = 1;
  /// Mitigation for the two-step vulnerability (§III-B / [24]): the
  /// controller buffers the LSB data and supplies it to the MSB programming
  /// step instead of the chip re-reading the drifted intermediate state.
  bool buffer_lsb_in_controller = false;
};

class FlashDevice {
 public:
  explicit FlashDevice(FlashConfig cfg);

  const FlashGeometry& geometry() const { return cfg_.geometry; }
  const FlashConfig& config() const { return cfg_; }
  const FlashStats& stats() const { return stats_; }
  std::uint32_t pe_cycles(std::uint32_t block) const {
    return pe_[block];
  }

  // --- Operations (now = seconds of model time) ----------------------------
  void erase_block(std::uint32_t block, double now);

  /// Time-compressed wear: account `cycles` erase/program cycles without
  /// simulating each one. Exact for the wear model (wear only enters through
  /// the P/E counter); used by lifetime sweeps to reach high P/E cheaply.
  void age_block(std::uint32_t block, std::uint32_t cycles) {
    DM_CHECK_MSG(block < cfg_.geometry.blocks, "block out of range");
    pe_[block] += cycles;
  }

  /// Program a page. LSB must be programmed before MSB on each wordline
  /// (two-step method); programming disturbs the previously-programmed
  /// adjacent wordline via cell-to-cell interference.
  void program_page(const PageAddress& a, const BitVec& data, double now);

  /// Read a page: applies retention + read-disturb shifts functionally and
  /// thresholds against the read references (optionally offset, for
  /// read-retry / NAC reference tuning). Reading disturbs the other
  /// wordlines of the block (counter-based, realized lazily).
  BitVec read_page(const PageAddress& a, double now,
                   double ref_offset = 0.0) const;

  /// Per-cell read with an individual reference offset (NAC applies a
  /// neighbour-state-dependent offset per cell).
  BitVec read_page_with_offsets(const PageAddress& a, double now,
                                const std::vector<float>& cell_offsets) const;

  bool page_programmed(const PageAddress& a) const;

  /// Effective analog Vth of a cell right now (diagnostic / RFR's repeated-
  /// read leak-speed estimation reduces to this plus reference sweeps).
  double effective_vth(std::uint32_t block, std::uint32_t wl,
                       std::uint32_t cell, double now) const;

  /// Ground-truth per-cell leak factor / read-disturb susceptibility. The
  /// controller may obtain these through measurement (repeated reads over
  /// time); exposing them directly models a completed measurement.
  double leak_factor(std::uint32_t block, std::uint32_t wl,
                     std::uint32_t cell) const;
  double rd_susceptibility(std::uint32_t block, std::uint32_t wl,
                           std::uint32_t cell) const;

  /// The current *intended* stored state of a cell (what an error-free read
  /// would return); used by harnesses to compute raw bit error rates.
  int intended_state(std::uint32_t block, std::uint32_t wl,
                     std::uint32_t cell) const;

  /// Raw stored Vth (diagnostic; the equivalence suite compares the mutated
  /// arrays directly, not just thresholded reads).
  float stored_vth(std::uint32_t block, std::uint32_t wl,
                   std::uint32_t cell) const {
    return vth_[cell_index(block, wl, cell)];
  }

 private:
  struct Wordline {
    bool lsb_programmed = false;
    bool msb_programmed = false;
    double t_prog = 0.0;          ///< time of last programming touch
    std::uint64_t rd_base = 0;    ///< block read counter at last program
  };

  /// Memoized per-cell leak factor / read-disturb susceptibility for one
  /// wordline, plus their maxima (the read screen's shift bounds). These are
  /// pure functions of (seed, coordinates) — never invalidated.
  struct CellCache {
    std::vector<double> leak;
    std::vector<double> susc;
    double max_leak = 0.0;
    double max_susc = 0.0;
  };
  const CellCache& cell_cache(std::uint32_t block, std::uint32_t wl) const;

  std::size_t wl_index(std::uint32_t block, std::uint32_t wl) const {
    return static_cast<std::size_t>(block) * cfg_.geometry.wordlines + wl;
  }
  std::size_t cell_index(std::uint32_t block, std::uint32_t wl,
                         std::uint32_t cell) const {
    return (static_cast<std::size_t>(block) * cfg_.geometry.wordlines + wl) *
               cfg_.geometry.page_bits +
           cell;
  }
  double retention_shift(double vth, double leak, std::uint32_t pe,
                         double dt_s) const;
  double disturb_shift(double vth, double susc, std::uint64_t reads) const;
  /// Program one cell toward a target distribution, returning the coupled
  /// interference applied to the neighbour wordline (done by caller).
  double program_cell(std::size_t ci, double target_mean, double sigma);

  FlashConfig cfg_;
  Rng rng_;
  // Reads are logically const (they return data) but physically disturb the
  // chip and advance counters — modelled as mutable observer state.
  mutable FlashStats stats_;
  std::vector<float> vth_;            ///< stored (post-program) Vth per cell
  std::vector<int8_t> intended_;      ///< intended state per cell (-1 erased)
  std::vector<Wordline> wordlines_;
  std::vector<std::uint32_t> pe_;     ///< per-block program/erase cycles
  mutable std::vector<std::uint64_t> block_reads_;
  /// Lazily built per-wordline caches (only touched wordlines pay memory).
  mutable std::vector<std::unique_ptr<CellCache>> cell_cache_;
};

}  // namespace densemem::flash
