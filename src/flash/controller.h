// Flash controller: BCH ECC, read-retry reference tuning, and the three
// recovery/lifetime mechanisms the paper highlights —
//   FCR  (Flash Correct-and-Refresh, §III-A2 [17, 18]): periodic
//        read-correct-erase-reprogram to cap retention age,
//   RFR  (Retention Failure Recovery, §III-A2 [23, 22]): after an
//        uncorrectable read, exploit per-cell leak-speed variation to guess
//        which borderline cells leaked across the reference and retry,
//   NAC  (Neighbor-cell Assisted Correction, §III-B [21]): compensate
//        program interference using the neighbouring wordline's data.
//
// The same mechanisms that make RFR/NAC work are the privacy hazard the
// paper warns about (recovering data from failed devices); the E10 bench
// reports both readings of the result.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ecc/bch.h"
#include "flash/device.h"

namespace densemem::flash {

struct FlashCtrlConfig {
  int ecc_t = 8;            ///< BCH correction per 512-bit chunk (GF(2^10))
  bool enable_read_retry = true;
  int retry_steps = 4;      ///< offsets tried: ±k·retry_step, k=1..steps
  double retry_step = 0.04;
  bool enable_nac = false;
  bool enable_rfr = false;
  double rfr_band = 0.25;   ///< reference band for suspect identification
  int rfr_max_flips = 160;  ///< suspect bits tried per chunk
};

struct PageReadResult {
  BitVec data;              ///< corrected payload (payload_bits)
  bool uncorrectable = false;
  int corrected_bits = 0;
  double ref_offset = 0.0;  ///< read-retry offset that succeeded
  bool used_rfr = false;
  bool used_nac = false;
};

class FlashController {
 public:
  FlashController(FlashDevice& dev, FlashCtrlConfig cfg);

  const FlashCtrlConfig& config() const { return cfg_; }
  FlashDevice& device() { return dev_; }

  /// User payload bits per page after ECC parity.
  std::uint32_t payload_bits() const { return chunks_ * kChunkBits; }
  std::uint32_t chunks_per_page() const { return chunks_; }
  double ecc_overhead() const;

  /// Encode and program a page (LSB pages must precede MSB per wordline).
  void program_page(const PageAddress& a, const BitVec& payload, double now);

  /// Read with the full recovery ladder: nominal read → read-retry →
  /// NAC → RFR (each tier only if enabled and the previous failed).
  PageReadResult read_page(const PageAddress& a, double now);

  /// Raw (pre-ECC) bit errors of a page against the as-written code word.
  /// Harness utility for RBER curves: re-encodes `payload` and compares.
  std::uint64_t raw_bit_errors(const PageAddress& a, const BitVec& payload,
                               double now);

  /// FCR step: read-correct-buffer every page of the block, erase, and
  /// reprogram. Returns false if any page was unrecoverable (data loss —
  /// the refresh was too late). Costs one P/E cycle.
  bool refresh_block(std::uint32_t block, double now);

 private:
  static constexpr std::uint32_t kChunkBits = 512;
  BitVec encode_page(const BitVec& payload) const;
  /// Decode all chunks of a raw page read; nullopt if any chunk fails.
  struct ChunkDecode {
    BitVec data;
    bool ok;
    int corrected;
  };
  ChunkDecode decode_chunks(const BitVec& raw) const;
  std::optional<PageReadResult> try_plain(const PageAddress& a, double now,
                                          double offset) const;
  std::optional<PageReadResult> try_nac(const PageAddress& a, double now);
  std::optional<PageReadResult> try_rfr(const PageAddress& a, double now);

  FlashDevice& dev_;
  FlashCtrlConfig cfg_;
  ecc::BchCode bch_;
  std::uint32_t chunks_;
};

}  // namespace densemem::flash
