// SSD-level lifetime simulation (§III-A2).
//
// Lifetime is defined the way the flash industry defines it: the highest
// P/E cycle count at which every page still decodes after the retention
// target (e.g. 30 days of power-off data retention). The simulation wears a
// block, programs it, lets the retention clock run (with optional FCR
// refreshes), and reads everything back through the controller's recovery
// ladder.
#pragma once

#include <cstdint>
#include <vector>

#include "flash/controller.h"

namespace densemem::flash {

struct SsdConfig {
  FlashConfig flash;
  FlashCtrlConfig ctrl;
  double retention_target_s = 30.0 * 86400.0;  ///< data must survive this
  double fcr_period_s = 0.0;                   ///< 0 disables FCR
  std::uint32_t pe_step = 500;   ///< wear increment between evaluations
  std::uint32_t max_pe = 50000;  ///< sweep ceiling
  std::uint64_t data_seed = 42;  ///< payload generator
  /// Two-step programming exposure: all LSB pages are programmed first and
  /// sit in the intermediate state for this long before the MSB pass (the
  /// §III-B vulnerability window). 0 = back-to-back programming.
  double two_step_gap_s = 0.0;
};

struct LifetimePoint {
  std::uint32_t pe;
  double mean_rber;               ///< raw BER at the retention target
  std::uint64_t uncorrectable_pages;
  std::uint64_t rfr_recoveries;
  std::uint64_t fcr_refreshes;
};

struct LifetimeResult {
  std::uint32_t pe_lifetime = 0;  ///< last PE with zero uncorrectable pages
  std::vector<LifetimePoint> curve;
};

class SsdLifetimeSim {
 public:
  explicit SsdLifetimeSim(SsdConfig cfg) : cfg_(cfg) {}

  /// Run the sweep on one representative block (blocks are i.i.d.).
  LifetimeResult run();

  /// RBER of a freshly-programmed block after `age_s` seconds at wear `pe`
  /// (single evaluation point; used by the retention-curve bench).
  static double rber_at(const SsdConfig& cfg, std::uint32_t pe, double age_s);

 private:
  SsdConfig cfg_;
};

}  // namespace densemem::flash
