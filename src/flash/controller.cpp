#include "flash/controller.h"

#include <algorithm>

namespace densemem::flash {

FlashController::FlashController(FlashDevice& dev, FlashCtrlConfig cfg)
    : dev_(dev),
      cfg_(cfg),
      bch_(ecc::BchParams{10, cfg.ecc_t, static_cast<int>(kChunkBits)}) {
  const std::uint32_t chunk_total =
      kChunkBits + static_cast<std::uint32_t>(bch_.parity_bits());
  chunks_ = dev_.geometry().page_bits / chunk_total;
  DM_CHECK_MSG(chunks_ >= 1, "page too small for one ECC chunk");
}

double FlashController::ecc_overhead() const {
  return static_cast<double>(bch_.parity_bits()) /
         static_cast<double>(kChunkBits + bch_.parity_bits());
}

BitVec FlashController::encode_page(const BitVec& payload) const {
  DM_CHECK_MSG(payload.size() == payload_bits(), "payload size mismatch");
  const std::uint32_t chunk_total =
      kChunkBits + static_cast<std::uint32_t>(bch_.parity_bits());
  BitVec page(dev_.geometry().page_bits, true);  // unused tail stays erased-1
  for (std::uint32_t ch = 0; ch < chunks_; ++ch) {
    BitVec d(kChunkBits);
    for (std::uint32_t i = 0; i < kChunkBits; ++i)
      d.set(i, payload.get(ch * kChunkBits + i));
    const BitVec cw = bch_.encode(d);
    for (std::uint32_t i = 0; i < chunk_total; ++i)
      page.set(ch * chunk_total + i, cw.get(i));
  }
  return page;
}

FlashController::ChunkDecode FlashController::decode_chunks(
    const BitVec& raw) const {
  const std::uint32_t chunk_total =
      kChunkBits + static_cast<std::uint32_t>(bch_.parity_bits());
  ChunkDecode out{BitVec(payload_bits()), true, 0};
  for (std::uint32_t ch = 0; ch < chunks_; ++ch) {
    BitVec cw(chunk_total);
    for (std::uint32_t i = 0; i < chunk_total; ++i)
      cw.set(i, raw.get(ch * chunk_total + i));
    const auto d = bch_.decode(cw);
    if (d.status == ecc::DecodeStatus::kUncorrectable) out.ok = false;
    out.corrected += d.corrected_bits;
    for (std::uint32_t i = 0; i < kChunkBits; ++i)
      out.data.set(ch * kChunkBits + i, d.data.get(i));
  }
  return out;
}

void FlashController::program_page(const PageAddress& a, const BitVec& payload,
                                   double now) {
  dev_.program_page(a, encode_page(payload), now);
}

std::optional<PageReadResult> FlashController::try_plain(const PageAddress& a,
                                                         double now,
                                                         double offset) const {
  const BitVec raw = dev_.read_page(a, now, offset);
  ChunkDecode d = decode_chunks(raw);
  if (!d.ok) return std::nullopt;
  PageReadResult r;
  r.data = std::move(d.data);
  r.corrected_bits = d.corrected;
  r.ref_offset = offset;
  return r;
}

std::optional<PageReadResult> FlashController::try_nac(const PageAddress& a,
                                                       double now) {
  // The interfering neighbour is the wordline programmed *after* this one
  // (wordline + 1 in our ascending program order).
  const std::uint32_t nwl = a.wordline + 1;
  if (nwl >= dev_.geometry().wordlines) return std::nullopt;
  const PageAddress nl{a.block, nwl, PageType::kLsb};
  const PageAddress nm{a.block, nwl, PageType::kMsb};
  if (!dev_.page_programmed(nl)) return std::nullopt;
  const BitVec lsb = dev_.read_page(nl, now);
  const bool msb_ok = dev_.page_programmed(nm);
  const BitVec msb = msb_ok ? dev_.read_page(nm, now)
                            : BitVec(dev_.geometry().page_bits, true);
  const CellParams& p = dev_.config().cell;
  std::vector<float> offsets(dev_.geometry().page_bits);
  for (std::uint32_t c = 0; c < offsets.size(); ++c) {
    const int s = state_of(lsb.get(c), msb.get(c));
    // Expected coupled shift from the neighbour's programming: raise the
    // read references by the same amount to compensate.
    offsets[c] = static_cast<float>(p.interference_gamma *
                                    (p.state_mean[s] - p.state_mean[0]));
  }
  const BitVec raw = dev_.read_page_with_offsets(a, now, offsets);
  ChunkDecode d = decode_chunks(raw);
  if (!d.ok) return std::nullopt;
  PageReadResult r;
  r.data = std::move(d.data);
  r.corrected_bits = d.corrected;
  r.used_nac = true;
  return r;
}

std::optional<PageReadResult> FlashController::try_rfr(const PageAddress& a,
                                                       double now) {
  // Suspect cells sit within `rfr_band` below a read reference: a read at
  // (ref - band) classifies them differently from the nominal read. A cell
  // with a high leak factor that sits in the band most plausibly *leaked
  // across* the reference, so its pre-leak value is the shifted read's one.
  const BitVec raw = dev_.read_page(a, now, 0.0);
  const BitVec raw_lo = dev_.read_page(a, now, -cfg_.rfr_band);
  const std::uint32_t chunk_total =
      kChunkBits + static_cast<std::uint32_t>(bch_.parity_bits());

  PageReadResult res;
  res.data = BitVec(payload_bits());
  res.used_rfr = true;
  for (std::uint32_t ch = 0; ch < chunks_; ++ch) {
    BitVec cw(chunk_total);
    for (std::uint32_t i = 0; i < chunk_total; ++i)
      cw.set(i, raw.get(ch * chunk_total + i));
    auto d = bch_.decode(cw);
    if (d.status == ecc::DecodeStatus::kUncorrectable) {
      struct Suspect {
        std::uint32_t bit;  // within chunk
        double leak;
      };
      std::vector<Suspect> suspects;
      for (std::uint32_t i = 0; i < chunk_total; ++i) {
        const std::uint32_t cell = ch * chunk_total + i;
        if (raw.get(cell) != raw_lo.get(cell))
          suspects.push_back(
              {i, dev_.leak_factor(a.block, a.wordline, cell)});
      }
      std::sort(suspects.begin(), suspects.end(),
                [](const Suspect& x, const Suspect& y) {
                  return x.leak > y.leak;
                });
      bool recovered = false;
      int flips = 0;
      for (const Suspect& s : suspects) {
        if (flips >= cfg_.rfr_max_flips) break;
        cw.set(s.bit, raw_lo.get(ch * chunk_total + s.bit));
        ++flips;
        d = bch_.decode(cw);
        if (d.status != ecc::DecodeStatus::kUncorrectable) {
          recovered = true;
          break;
        }
      }
      if (!recovered) return std::nullopt;
    }
    res.corrected_bits += d.corrected_bits;
    for (std::uint32_t i = 0; i < kChunkBits; ++i)
      res.data.set(ch * kChunkBits + i, d.data.get(i));
  }
  return res;
}

PageReadResult FlashController::read_page(const PageAddress& a, double now) {
  if (auto r = try_plain(a, now, 0.0)) return *r;
  if (cfg_.enable_read_retry) {
    for (int k = 1; k <= cfg_.retry_steps; ++k) {
      // Retention loss dominates, so try lowered references first.
      if (auto r = try_plain(a, now, -k * cfg_.retry_step)) return *r;
      if (auto r = try_plain(a, now, +k * cfg_.retry_step)) return *r;
    }
  }
  if (cfg_.enable_nac) {
    if (auto r = try_nac(a, now)) return *r;
  }
  if (cfg_.enable_rfr) {
    if (auto r = try_rfr(a, now)) return *r;
  }
  // Unrecoverable: return the best-effort plain decode.
  const BitVec raw = dev_.read_page(a, now, 0.0);
  ChunkDecode d = decode_chunks(raw);
  PageReadResult r;
  r.data = std::move(d.data);
  r.corrected_bits = d.corrected;
  r.uncorrectable = true;
  return r;
}

std::uint64_t FlashController::raw_bit_errors(const PageAddress& a,
                                              const BitVec& payload,
                                              double now) {
  const BitVec golden = encode_page(payload);
  const BitVec raw = dev_.read_page(a, now, 0.0);
  return BitVec::hamming_distance(golden, raw);
}

bool FlashController::refresh_block(std::uint32_t block, double now) {
  struct Saved {
    std::uint32_t wl;
    PageType type;
    BitVec payload;
  };
  std::vector<Saved> saved;
  bool all_ok = true;
  for (std::uint32_t wl = 0; wl < dev_.geometry().wordlines; ++wl) {
    for (PageType t : {PageType::kLsb, PageType::kMsb}) {
      const PageAddress a{block, wl, t};
      if (!dev_.page_programmed(a)) continue;
      PageReadResult r = read_page(a, now);
      if (r.uncorrectable) all_ok = false;
      saved.push_back({wl, t, std::move(r.data)});
    }
  }
  dev_.erase_block(block, now);
  for (const Saved& s : saved)
    program_page({block, s.wl, s.type}, s.payload, now);
  return all_ok;
}

}  // namespace densemem::flash
