#include "flash/ftl.h"

#include <algorithm>
#include <cmath>

namespace densemem::flash {

Ftl::Ftl(FlashController& ctrl, FtlConfig cfg) : ctrl_(ctrl), cfg_(cfg) {
  const FlashGeometry& g = ctrl_.device().geometry();
  pages_per_block_ = 2 * g.wordlines;  // LSB + MSB page per wordline
  const std::uint64_t physical_pages =
      static_cast<std::uint64_t>(g.blocks) * pages_per_block_;
  DM_CHECK_MSG(cfg_.overprovision > 0.0 && cfg_.overprovision < 0.9,
               "overprovision fraction out of range");
  logical_pages_ = static_cast<std::uint32_t>(
      static_cast<double>(physical_pages) * (1.0 - cfg_.overprovision));
  const std::uint64_t spare = physical_pages - logical_pages_;
  DM_CHECK_MSG(
      spare >= static_cast<std::uint64_t>(cfg_.gc_low_watermark + 2) *
                   pages_per_block_,
      "overprovision too small for the GC watermark (need >= watermark + 2 "
      "spare blocks)");

  blocks_.resize(g.blocks);
  for (auto& b : blocks_)
    b.owner.assign(pages_per_block_, kFree);
  l2p_.assign(logical_pages_, kFree);
  // Block 0 starts active; the rest are free.
  active_block_ = 0;
  for (std::uint32_t b = g.blocks; b-- > 1;) free_blocks_.push_back(b);
}

PageAddress Ftl::page_address(std::uint32_t block, std::uint32_t page) const {
  return {block, page / 2, page % 2 == 0 ? PageType::kLsb : PageType::kMsb};
}

void Ftl::open_new_active() {
  DM_CHECK_MSG(!free_blocks_.empty(), "FTL out of free blocks");
  active_block_ = free_blocks_.back();
  free_blocks_.pop_back();
}

void Ftl::append(std::uint32_t lpn, const BitVec& payload, double now) {
  if (blocks_[active_block_].next_page == pages_per_block_) open_new_active();
  BlockMeta& blk = blocks_[active_block_];
  const std::uint32_t page = blk.next_page++;
  ctrl_.program_page(page_address(active_block_, page), payload, now);
  ++stats_.flash_writes;
  blk.owner[page] = lpn;
  ++blk.valid;
  l2p_[lpn] = static_cast<std::int64_t>(active_block_) * pages_per_block_ +
              page;
}

std::uint32_t Ftl::pick_gc_victim() const {
  std::uint32_t best = ~0u;
  std::uint32_t best_invalid = 0;
  double erase_sum = 0;
  for (std::uint32_t b = 0; b < blocks_.size(); ++b)
    erase_sum += blocks_[b].erases;
  const double erase_mean = erase_sum / static_cast<double>(blocks_.size());

  auto is_free = [&](std::uint32_t b) {
    return std::find(free_blocks_.begin(), free_blocks_.end(), b) !=
           free_blocks_.end();
  };
  for (std::uint32_t b = 0; b < blocks_.size(); ++b) {
    if (b == active_block_ || is_free(b)) continue;
    const BlockMeta& blk = blocks_[b];
    const std::uint32_t invalid = blk.next_page - blk.valid;
    if (invalid == 0) continue;
    // Wear leveling: avoid re-burning hot blocks unless nothing else has
    // invalid pages.
    const bool hot =
        cfg_.wear_leveling && blk.erases > 2.0 * (erase_mean + 1.0);
    if (hot && best != ~0u) continue;
    if (best == ~0u || invalid > best_invalid ||
        (invalid == best_invalid && blk.erases < blocks_[best].erases)) {
      best = b;
      best_invalid = invalid;
    }
  }
  DM_CHECK_MSG(best != ~0u, "GC found no victim (logical space full?)");
  return best;
}

void Ftl::ensure_space(double now) {
  // Keep enough free blocks that the active block can always roll over.
  while (free_blocks_.size() < cfg_.gc_low_watermark) {
    const std::uint32_t victim = pick_gc_victim();
    ++stats_.gc_runs;
    BlockMeta& blk = blocks_[victim];
    for (std::uint32_t p = 0; p < blk.next_page; ++p) {
      if (blk.owner[p] == kFree) continue;
      const auto lpn = static_cast<std::uint32_t>(blk.owner[p]);
      // Copy the surviving page through the controller's recovery ladder.
      const auto data = ctrl_.read_page(page_address(victim, p), now);
      append(lpn, data.data, now);
      ++stats_.gc_copies;
      blk.owner[p] = kFree;
    }
    blk.valid = 0;
    blk.next_page = 0;
    ++blk.erases;
    ++stats_.erases;
    ctrl_.device().erase_block(victim, now);
    free_blocks_.push_back(victim);
  }
}

void Ftl::write(std::uint32_t lpn, const BitVec& payload, double now) {
  DM_CHECK_MSG(lpn < logical_pages_, "logical page out of range");
  DM_CHECK_MSG(payload.size() == static_cast<std::size_t>(ctrl_.payload_bits()),
               "payload size mismatch");
  ensure_space(now);
  // Invalidate the previous copy.
  if (l2p_[lpn] != kFree) {
    const auto gp = static_cast<std::uint64_t>(l2p_[lpn]);
    BlockMeta& old = blocks_[gp / pages_per_block_];
    old.owner[gp % pages_per_block_] = kFree;
    --old.valid;
  }
  append(lpn, payload, now);
  ++stats_.host_writes;
}

std::optional<PageReadResult> Ftl::read(std::uint32_t lpn, double now) {
  DM_CHECK_MSG(lpn < logical_pages_, "logical page out of range");
  if (l2p_[lpn] == kFree) return std::nullopt;
  const auto gp = static_cast<std::uint64_t>(l2p_[lpn]);
  return ctrl_.read_page(
      page_address(static_cast<std::uint32_t>(gp / pages_per_block_),
                   static_cast<std::uint32_t>(gp % pages_per_block_)),
      now);
}

double Ftl::wear_imbalance() const {
  std::uint64_t max_e = 0, sum = 0;
  for (const auto& b : blocks_) {
    max_e = std::max<std::uint64_t>(max_e, b.erases);
    sum += b.erases;
  }
  if (sum == 0) return 0.0;
  return static_cast<double>(max_e) /
         (static_cast<double>(sum) / static_cast<double>(blocks_.size()));
}

std::uint32_t Ftl::max_erase_count() const {
  std::uint32_t m = 0;
  for (const auto& b : blocks_) m = std::max(m, b.erases);
  return m;
}

}  // namespace densemem::flash
