// Flash Translation Layer: out-of-place writes, garbage collection, wear
// leveling.
//
// §II-D: "the success of other technologies, e.g., flash memory ... has
// heavily relied on the existence of an intelligent controller" — the FTL
// is that controller's heart. Host pages map to flash pages out-of-place;
// updates invalidate the old copy; garbage collection reclaims blocks by
// copying surviving pages (write amplification), and victim selection
// doubles as wear leveling. The lifetime and refresh mechanisms of §III
// ride on top of exactly this machinery in real SSDs.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "flash/controller.h"

namespace densemem::flash {

struct FtlConfig {
  /// Fraction of physical pages reserved as spare (not host-visible).
  double overprovision = 0.10;
  /// GC runs when the free-block pool drops to this size.
  std::uint32_t gc_low_watermark = 2;
  /// Victim selection: false = pure greedy (most invalid pages);
  /// true = greedy with erase-count tie-breaking + wear cutoff (old blocks
  /// are skipped unless nothing else qualifies).
  bool wear_leveling = true;
};

struct FtlStats {
  std::uint64_t host_writes = 0;
  std::uint64_t flash_writes = 0;  ///< host + GC copy writes
  std::uint64_t gc_runs = 0;
  std::uint64_t gc_copies = 0;
  std::uint64_t erases = 0;

  double write_amplification() const {
    return host_writes ? static_cast<double>(flash_writes) /
                             static_cast<double>(host_writes)
                       : 0.0;
  }
};

class Ftl {
 public:
  Ftl(FlashController& ctrl, FtlConfig cfg);

  /// Host-visible logical pages.
  std::uint32_t logical_pages() const { return logical_pages_; }
  std::uint32_t pages_per_block() const { return pages_per_block_; }
  const FtlStats& stats() const { return stats_; }

  /// Out-of-place write of one logical page. Triggers GC as needed.
  void write(std::uint32_t lpn, const BitVec& payload, double now);

  /// Read a logical page; nullopt if never written.
  std::optional<PageReadResult> read(std::uint32_t lpn, double now);

  /// Wear spread: max / mean block erase count (1.0 = perfectly even).
  double wear_imbalance() const;
  std::uint32_t max_erase_count() const;

 private:
  struct BlockMeta {
    std::uint32_t next_page = 0;            ///< append pointer
    std::uint32_t valid = 0;                ///< live pages in this block
    std::uint32_t erases = 0;
    std::vector<std::int64_t> owner;        ///< page -> lpn (-1 = invalid)
  };

  static constexpr std::int64_t kFree = -1;
  PageAddress page_address(std::uint32_t block, std::uint32_t page) const;
  /// Append `payload` for `lpn` into the active block; assumes space exists.
  void append(std::uint32_t lpn, const BitVec& payload, double now);
  void ensure_space(double now);
  std::uint32_t pick_gc_victim() const;
  void open_new_active();

  FlashController& ctrl_;
  FtlConfig cfg_;
  std::uint32_t pages_per_block_;
  std::uint32_t logical_pages_;
  std::vector<BlockMeta> blocks_;
  std::vector<std::int64_t> l2p_;          ///< lpn -> global flash page (-1)
  std::vector<std::uint32_t> free_blocks_;
  std::uint32_t active_block_;
  FtlStats stats_;
};

}  // namespace densemem::flash
