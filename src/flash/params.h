// MLC NAND flash cell-physics parameters (threshold-voltage model).
//
// Four states per cell (ER, P1, P2, P3) on a normalized Vth axis. The
// parameters model the error mechanisms of §III-A2/§III-B: programming
// noise that widens with P/E wear, retention charge loss with strong
// per-cell leak-speed variation (the basis of Retention Failure Recovery),
// read disturb with per-cell susceptibility variation, cell-to-cell program
// interference (the basis of Neighbor-cell Assisted Correction), and the
// two-step LSB/MSB programming method with its vulnerable intermediate
// state.
#pragma once

#include <array>

namespace densemem::flash {

struct CellParams {
  /// Nominal post-program means of ER, P1, P2, P3 (normalized volts).
  std::array<double, 4> state_mean{0.0, 1.0, 2.0, 3.0};
  double erase_sigma = 0.12;  ///< ER distribution width
  double prog_sigma = 0.07;   ///< programming noise at zero wear
  /// Programming noise grows as sigma * (1 + coef * PE) with wear.
  double sigma_wear_coef = 8e-5;

  // --- Retention (charge loss over time) -----------------------------------
  /// Vth loss = A * (1 + wear_coef*PE) * leak_factor * (vth/3) * log10(1+t/t0)
  double retention_a = 0.037;
  double retention_t0_s = 86400.0;  // onset ~1 day: early retention is mild
  double retention_wear_coef = 4e-4;
  /// Per-cell leak factor ~ lognormal(0, leak_sigma): the wide fast/slow
  /// leaker variation of §III-A2.
  double leak_sigma = 0.5;

  // --- Read disturb ---------------------------------------------------------
  /// Vth gain per disturbing read = rd_step * susceptibility, applied to
  /// cells below rd_ceiling (weak programming of low-Vth cells).
  double rd_step = 4e-6;
  /// Per-cell susceptibility ~ lognormal(0, rd_sigma) (§III-B variation).
  double rd_sigma = 0.6;
  double rd_ceiling = 1.6;

  // --- Program interference -------------------------------------------------
  /// Fraction of an aggressor cell's programming Vth change coupled onto
  /// the same-column cell of the previously-programmed adjacent wordline.
  double interference_gamma = 0.055;

  // --- Two-step programming -------------------------------------------------
  double lm_mean = 1.4;       ///< intermediate (LM) state target
  double lm_sigma = 0.10;
  /// Internal threshold used by the MSB programming step to read back the
  /// partially-programmed LSB (ER vs LM). The margin below the LM state is
  /// inherently tight (the LM distribution sits just above it), which is
  /// why drift across this boundary before the MSB step — the §III-B
  /// two-step vulnerability — is so easy to provoke.
  double lm_read_ref = 1.05;

  // --- Read references -------------------------------------------------------
  std::array<double, 3> read_ref{0.5, 1.5, 2.5};  ///< Va, Vb, Vc
};

/// Gray-coded MLC state map (LSB programmed first):
///   state:        ER   P1   P2   P3
///   (LSB, MSB):  (1,1)(1,0)(0,0)(0,1)
/// LSB = Vth < Vb;  MSB = (Vth < Va) || (Vth > Vc).
inline int state_of(bool lsb, bool msb) {
  if (lsb && msb) return 0;   // ER
  if (lsb && !msb) return 1;  // P1
  if (!lsb && !msb) return 2; // P2
  return 3;                   // P3
}
inline bool lsb_of_state(int s) { return s == 0 || s == 1; }
inline bool msb_of_state(int s) { return s == 0 || s == 3; }

}  // namespace densemem::flash
