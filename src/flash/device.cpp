#include "flash/device.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace densemem::flash {

namespace {
// Deterministic per-cell standard normal from hashed coordinates.
double hashed_normal(std::uint64_t seed, std::uint64_t tag, std::uint64_t a,
                     std::uint64_t b, std::uint64_t c) {
  const std::uint64_t h1 = splitmix64(hash_coords(seed, tag, a, b, c));
  const std::uint64_t h2 = splitmix64(h1);
  double u1 = static_cast<double>(h1 >> 11) * 0x1.0p-53;
  const double u2 = static_cast<double>(h2 >> 11) * 0x1.0p-53;
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}
constexpr std::uint64_t kTagLeak = 0x4c45414b;  // "LEAK"
constexpr std::uint64_t kTagRd = 0x52444953;    // "RDIS"

// Read-screen safety margins. The per-cell shift bounds below are exact
// algebra over the retention/disturb formulas; these absorb every floating-
// point rounding on either side of the comparison (double eps ~2e-16, so the
// margins are ~1e6x rounding yet still ~1e-9 of a read-reference gap —
// screening efficiency is unaffected).
constexpr double kBandInflate = 1.0 + 1e-9;
constexpr double kBandAbsEps = 1e-9;
}  // namespace

FlashDevice::FlashDevice(FlashConfig cfg)
    : cfg_(std::move(cfg)),
      rng_(hash_coords(cfg_.seed, 0x464c5348 /* "FLSH" */)),
      vth_(cfg_.geometry.cells_total(), 0.0f),
      intended_(cfg_.geometry.cells_total(), -1),
      wordlines_(static_cast<std::size_t>(cfg_.geometry.blocks) *
                 cfg_.geometry.wordlines),
      pe_(cfg_.geometry.blocks, 0),
      block_reads_(cfg_.geometry.blocks, 0),
      cell_cache_(wordlines_.size()) {
  cfg_.geometry.validate();
  for (std::uint32_t b = 0; b < cfg_.geometry.blocks; ++b) erase_block(b, 0.0);
  // Factory-fresh: erases above must not count as wear.
  std::fill(pe_.begin(), pe_.end(), 0u);
  stats_ = FlashStats{};
}

const FlashDevice::CellCache& FlashDevice::cell_cache(std::uint32_t block,
                                                      std::uint32_t wl) const {
  auto& slot = cell_cache_[wl_index(block, wl)];
  if (!slot) {
    auto cc = std::make_unique<CellCache>();
    const std::uint32_t n = cfg_.geometry.page_bits;
    cc->leak.resize(n);
    cc->susc.resize(n);
    for (std::uint32_t c = 0; c < n; ++c) {
      const double l = std::exp(
          cfg_.cell.leak_sigma * hashed_normal(cfg_.seed, kTagLeak, block, wl, c));
      const double s = std::exp(
          cfg_.cell.rd_sigma * hashed_normal(cfg_.seed, kTagRd, block, wl, c));
      cc->leak[c] = l;
      cc->susc[c] = s;
      cc->max_leak = std::max(cc->max_leak, l);
      cc->max_susc = std::max(cc->max_susc, s);
    }
    slot = std::move(cc);
  }
  return *slot;
}

double FlashDevice::leak_factor(std::uint32_t block, std::uint32_t wl,
                                std::uint32_t cell) const {
  return cell_cache(block, wl).leak[cell];
}

double FlashDevice::rd_susceptibility(std::uint32_t block, std::uint32_t wl,
                                      std::uint32_t cell) const {
  return cell_cache(block, wl).susc[cell];
}

double FlashDevice::retention_shift(double vth, double leak, std::uint32_t pe,
                                    double dt_s) const {
  const CellParams& p = cfg_.cell;
  if (dt_s <= 0.0 || vth <= p.state_mean[0]) return 0.0;
  const double level = vth / p.state_mean[3];
  return -p.retention_a * (1.0 + p.retention_wear_coef * pe) * leak * level *
         std::log10(1.0 + dt_s / p.retention_t0_s);
}

double FlashDevice::disturb_shift(double vth, double susc,
                                  std::uint64_t reads) const {
  const CellParams& p = cfg_.cell;
  if (vth >= p.rd_ceiling || reads == 0) return 0.0;
  return p.rd_step * susc * static_cast<double>(reads);
}

double FlashDevice::effective_vth(std::uint32_t block, std::uint32_t wl,
                                  std::uint32_t cell, double now) const {
  const Wordline& w = wordlines_[wl_index(block, wl)];
  const CellCache& cc = cell_cache(block, wl);
  const double stored = vth_[cell_index(block, wl, cell)];
  return stored +
         retention_shift(stored, cc.leak[cell], pe_[block], now - w.t_prog) +
         disturb_shift(stored, cc.susc[cell], block_reads_[block] - w.rd_base);
}

void FlashDevice::erase_block(std::uint32_t block, double now) {
  DM_CHECK_MSG(block < cfg_.geometry.blocks, "block out of range");
  for (std::uint32_t wl = 0; wl < cfg_.geometry.wordlines; ++wl) {
    Wordline& w = wordlines_[wl_index(block, wl)];
    w = Wordline{};
    w.t_prog = now;
    w.rd_base = block_reads_[block];
    const std::size_t ci0 = cell_index(block, wl, 0);
    for (std::uint32_t c = 0; c < cfg_.geometry.page_bits; ++c) {
      vth_[ci0 + c] = static_cast<float>(
          rng_.normal(cfg_.cell.state_mean[0], cfg_.cell.erase_sigma));
    }
    std::fill_n(intended_.begin() + static_cast<std::ptrdiff_t>(ci0),
                cfg_.geometry.page_bits, static_cast<int8_t>(-1));
  }
  ++pe_[block];
  ++stats_.erases;
}

double FlashDevice::program_cell(std::size_t ci, double target_mean,
                                 double sigma) {
  const double old = vth_[ci];
  const double pulse = rng_.normal(target_mean, sigma);
  // ISPP can only raise Vth; a cell already above target stays where it is.
  const double next = std::max(old, pulse);
  vth_[ci] = static_cast<float>(next);
  return next - old;
}

void FlashDevice::program_page(const PageAddress& a, const BitVec& data,
                               double now) {
  DM_CHECK_MSG(a.block < cfg_.geometry.blocks &&
                   a.wordline < cfg_.geometry.wordlines,
               "page address out of range");
  DM_CHECK_MSG(data.size() == cfg_.geometry.page_bits, "page size mismatch");
  Wordline& w = wordlines_[wl_index(a.block, a.wordline)];
  const CellParams& p = cfg_.cell;
  const double sigma =
      p.prog_sigma * (1.0 + p.sigma_wear_coef * pe_[a.block]);
  const bool has_lower_neighbor =
      a.wordline > 0 &&
      wordlines_[wl_index(a.block, a.wordline - 1)].lsb_programmed;
  const std::uint32_t nbits = cfg_.geometry.page_bits;
  const std::size_t ci0 = cell_index(a.block, a.wordline, 0);
  const std::size_t ni0 =
      a.wordline > 0 ? cell_index(a.block, a.wordline - 1, 0) : 0;

  if (a.type == PageType::kLsb) {
    DM_CHECK_MSG(!w.lsb_programmed, "LSB page already programmed");
    // Bitplane pass: LSB=1 cells stay erased (intended state ER), so only
    // the complement word drives programming pulses + interference. The RNG
    // draw order (ascending cell among programmed cells) matches the
    // original per-cell loop exactly.
    for (std::size_t w64 = 0; w64 * 64 < nbits; ++w64) {
      const unsigned nb = static_cast<unsigned>(
          std::min<std::size_t>(64, nbits - w64 * 64));
      const std::uint64_t mask =
          nb < 64 ? (std::uint64_t{1} << nb) - 1 : ~std::uint64_t{0};
      const std::uint64_t dw = data.word(w64) & mask;
      std::fill_n(intended_.begin() +
                      static_cast<std::ptrdiff_t>(ci0 + w64 * 64),
                  nb, static_cast<int8_t>(0));
      for (std::uint64_t m = ~dw & mask; m != 0; m &= m - 1) {
        const std::size_t c =
            w64 * 64 + static_cast<unsigned>(std::countr_zero(m));
        // LSB=0: move to the intermediate LM state.
        const double delta = program_cell(ci0 + c, p.lm_mean, p.lm_sigma);
        intended_[ci0 + c] = 4;  // LM
        if (has_lower_neighbor && delta > 0.0) {
          vth_[ni0 + c] += static_cast<float>(p.interference_gamma * delta);
        }
      }
    }
    w.lsb_programmed = true;
    w.t_prog = now;
    w.rd_base = block_reads_[a.block];
  } else {
    DM_CHECK_MSG(w.lsb_programmed, "MSB programmed before LSB (two-step)");
    DM_CHECK_MSG(!w.msb_programmed, "MSB page already programmed");
    // Every cell materializes its drifted Vth; the per-page retention and
    // disturb terms are hoisted (exact left-to-right prefixes of the
    // original expressions) and leak/susc come from the memoized cache. The
    // cache is only consulted when a drift term can actually be nonzero —
    // an immediate MSB step (dt == 0, no intervening reads) must not pay
    // for building per-cell factors it would never read.
    const double dt_s = now - w.t_prog;
    const std::uint64_t reads = block_reads_[a.block] - w.rd_base;
    const CellCache* cc = (dt_s > 0.0 || reads != 0)
                              ? &cell_cache(a.block, a.wordline)
                              : nullptr;
    const double reads_d = static_cast<double>(reads);
    const double c1 =
        -p.retention_a * (1.0 + p.retention_wear_coef * pe_[a.block]);
    const double lg =
        dt_s > 0.0 ? std::log10(1.0 + dt_s / p.retention_t0_s) : 0.0;
    const double s0 = p.state_mean[0];
    const double s3 = p.state_mean[3];
    for (std::uint32_t c = 0; c < nbits; ++c) {
      const std::size_t ci = ci0 + c;
      // Materialize drift accumulated on the intermediate state so far.
      const double stored = vth_[ci];
      const double ret = (dt_s <= 0.0 || stored <= s0)
                             ? 0.0
                             : ((c1 * cc->leak[c]) * (stored / s3)) * lg;
      const double dis = (stored >= p.rd_ceiling || reads == 0)
                             ? 0.0
                             : (p.rd_step * cc->susc[c]) * reads_d;
      const double veff = stored + ret + dis;
      vth_[ci] = static_cast<float>(veff);

      const bool intended_lsb = (intended_[ci] != 4);
      bool lsb_readback;
      if (cfg_.buffer_lsb_in_controller) {
        lsb_readback = intended_lsb;  // mitigation: controller-supplied LSB
      } else {
        // The chip re-reads the drifted intermediate state internally.
        lsb_readback = veff < p.lm_read_ref;
        if (lsb_readback != intended_lsb) ++stats_.two_step_lsb_misreads;
      }
      const int final_state = state_of(lsb_readback, data.get(c));
      double delta = 0.0;
      if (final_state != 0) {
        delta = program_cell(ci, p.state_mean[final_state], sigma);
      }
      intended_[ci] = static_cast<int8_t>(state_of(intended_lsb, data.get(c)));
      if (has_lower_neighbor && delta > 0.0) {
        vth_[ni0 + c] += static_cast<float>(p.interference_gamma * delta);
      }
    }
    w.msb_programmed = true;
    w.t_prog = now;
    w.rd_base = block_reads_[a.block];
  }
  ++stats_.programs;
}

bool FlashDevice::page_programmed(const PageAddress& a) const {
  const Wordline& w = wordlines_[wl_index(a.block, a.wordline)];
  return a.type == PageType::kLsb ? w.lsb_programmed : w.msb_programmed;
}

BitVec FlashDevice::read_page(const PageAddress& a, double now,
                              double ref_offset) const {
  DM_CHECK_MSG(a.block < cfg_.geometry.blocks &&
                   a.wordline < cfg_.geometry.wordlines,
               "page address out of range");
  const CellParams& p = cfg_.cell;
  // A wordline whose MSB page is not yet programmed holds ER/LM only, so an
  // LSB read uses the intermediate reference; after the MSB step the final
  // four-state references apply.
  const Wordline& w = wordlines_[wl_index(a.block, a.wordline)];
  const bool final_states = w.msb_programmed;
  const double lsb_ref = final_states ? p.read_ref[1] : p.lm_read_ref;

  // The cache is only consulted when a drift term can actually be nonzero —
  // a zero-age, zero-disturb read must not pay for building per-cell
  // factors it would never read.
  const double dt_s = now - w.t_prog;
  const std::uint64_t reads = block_reads_[a.block] - w.rd_base;
  const CellCache* cc = (dt_s > 0.0 || reads != 0)
                            ? &cell_cache(a.block, a.wordline)
                            : nullptr;
  const double reads_d = static_cast<double>(reads);
  const double c1 =
      -p.retention_a * (1.0 + p.retention_wear_coef * pe_[a.block]);
  const double lg = dt_s > 0.0 ? std::log10(1.0 + dt_s / p.retention_t0_s) : 0.0;
  const double s0 = p.state_mean[0];
  const double s3 = p.state_mean[3];

  // Screen bound: for any cell, |retention| <= |c1|*max_leak*(|stored|/s3)*lg
  // and |disturb| <= |rd_step|*max_susc*reads, so the effective Vth lies
  // within band(stored) of the stored value. Cells whose stored Vth clears
  // every read reference by more than the band threshold identically to the
  // full computation; only the in-band exceptions re-run the original
  // arithmetic. s3 <= 0 would break the level bound — fall back to all-slow.
  const bool screen_ok = s3 > 0.0;
  const double k_ret =
      (screen_ok && dt_s > 0.0)
          ? (std::fabs(c1) * cc->max_leak / s3) * lg * kBandInflate
          : 0.0;
  const double k_dis =
      reads != 0
          ? (std::fabs(p.rd_step) * cc->max_susc) * reads_d * kBandInflate
          : 0.0;

  const std::uint32_t nbits = cfg_.geometry.page_bits;
  const float* vp = vth_.data() + cell_index(a.block, a.wordline, 0);
  const bool is_lsb = a.type == PageType::kLsb;
  const double rl = lsb_ref + ref_offset;
  const double r0 = p.read_ref[0] + ref_offset;
  const double r2 = p.read_ref[2] + ref_offset;

  BitVec out(nbits);
  for (std::size_t w64 = 0; w64 * 64 < nbits; ++w64) {
    const unsigned nb = static_cast<unsigned>(
        std::min<std::size_t>(64, nbits - w64 * 64));
    const float* vw = vp + w64 * 64;
    std::uint64_t bits = 0;
    std::uint64_t exc = 0;
    if (!screen_ok) {
      exc = nb < 64 ? (std::uint64_t{1} << nb) - 1 : ~std::uint64_t{0};
    } else if (is_lsb) {
      for (unsigned c = 0; c < nb; ++c) {
        const double stored = vw[c];
        const double band = k_ret * std::fabs(stored) + k_dis + kBandAbsEps;
        if (std::fabs(stored - rl) <= band)
          exc |= std::uint64_t{1} << c;
        else
          bits |= static_cast<std::uint64_t>(stored < rl) << c;
      }
    } else {
      for (unsigned c = 0; c < nb; ++c) {
        const double stored = vw[c];
        const double band = k_ret * std::fabs(stored) + k_dis + kBandAbsEps;
        if (std::fabs(stored - r0) <= band || std::fabs(stored - r2) <= band)
          exc |= std::uint64_t{1} << c;
        else
          bits |= static_cast<std::uint64_t>(stored < r0 || stored > r2) << c;
      }
    }
    for (std::uint64_t m = exc; m != 0; m &= m - 1) {
      const unsigned c = static_cast<unsigned>(std::countr_zero(m));
      const auto cell = static_cast<std::uint32_t>(w64 * 64 + c);
      const double stored = vw[c];
      const double ret = (dt_s <= 0.0 || stored <= s0)
                             ? 0.0
                             : ((c1 * cc->leak[cell]) * (stored / s3)) * lg;
      const double dis = (stored >= p.rd_ceiling || reads == 0)
                             ? 0.0
                             : (p.rd_step * cc->susc[cell]) * reads_d;
      const double v = stored + ret + dis;
      const bool bit = is_lsb ? v < rl : (v < r0 || v > r2);
      bits |= static_cast<std::uint64_t>(bit) << c;
    }
    out.set_word(w64, bits);
  }
  // Reading applies pass-through stress to the block (lazily realized via
  // the per-block counter; the selected wordline's own increment is a
  // deliberate small overcount, negligible against aggressor read counts).
  ++block_reads_[a.block];
  ++stats_.reads;
  return out;
}

BitVec FlashDevice::read_page_with_offsets(
    const PageAddress& a, double now,
    const std::vector<float>& cell_offsets) const {
  DM_CHECK_MSG(cell_offsets.size() == cfg_.geometry.page_bits,
               "per-cell offset size mismatch");
  const CellParams& p = cfg_.cell;
  const Wordline& w = wordlines_[wl_index(a.block, a.wordline)];
  const bool final_states = w.msb_programmed;
  const double lsb_ref = final_states ? p.read_ref[1] : p.lm_read_ref;

  // Per-cell references rule out the band screen, but the memoized
  // leak/susc arrays and hoisted per-page terms still apply (the cache is
  // skipped entirely when no drift term can be nonzero).
  const double dt_s = now - w.t_prog;
  const std::uint64_t reads = block_reads_[a.block] - w.rd_base;
  const CellCache* cc = (dt_s > 0.0 || reads != 0)
                            ? &cell_cache(a.block, a.wordline)
                            : nullptr;
  const double reads_d = static_cast<double>(reads);
  const double c1 =
      -p.retention_a * (1.0 + p.retention_wear_coef * pe_[a.block]);
  const double lg = dt_s > 0.0 ? std::log10(1.0 + dt_s / p.retention_t0_s) : 0.0;
  const double s0 = p.state_mean[0];
  const double s3 = p.state_mean[3];

  const std::uint32_t nbits = cfg_.geometry.page_bits;
  const float* vp = vth_.data() + cell_index(a.block, a.wordline, 0);
  const bool is_lsb = a.type == PageType::kLsb;

  BitVec out(nbits);
  for (std::size_t w64 = 0; w64 * 64 < nbits; ++w64) {
    const unsigned nb = static_cast<unsigned>(
        std::min<std::size_t>(64, nbits - w64 * 64));
    std::uint64_t bits = 0;
    for (unsigned c = 0; c < nb; ++c) {
      const auto cell = static_cast<std::uint32_t>(w64 * 64 + c);
      const double stored = vp[cell];
      const double ret = (dt_s <= 0.0 || stored <= s0)
                             ? 0.0
                             : ((c1 * cc->leak[cell]) * (stored / s3)) * lg;
      const double dis = (stored >= p.rd_ceiling || reads == 0)
                             ? 0.0
                             : (p.rd_step * cc->susc[cell]) * reads_d;
      const double v = stored + ret + dis;
      const double off = cell_offsets[cell];
      const bool bit = is_lsb
                           ? v < lsb_ref + off
                           : (v < p.read_ref[0] + off) || (v > p.read_ref[2] + off);
      bits |= static_cast<std::uint64_t>(bit) << c;
    }
    out.set_word(w64, bits);
  }
  ++block_reads_[a.block];
  ++stats_.reads;
  return out;
}

int FlashDevice::intended_state(std::uint32_t block, std::uint32_t wl,
                                std::uint32_t cell) const {
  return intended_[cell_index(block, wl, cell)];
}

}  // namespace densemem::flash
