#include "flash/ssd.h"

#include "common/rng.h"

namespace densemem::flash {

namespace {

BitVec random_payload(Rng& rng, std::uint32_t bits) {
  BitVec v(bits);
  for (std::size_t w = 0; w < v.word_count(); ++w) v.set_word(w, rng.next_u64());
  return v;
}

/// Program every page of `block` with fresh random payloads; returns them
/// indexed as [2*wordline + (0=LSB,1=MSB)]. With a nonzero two-step gap the
/// LSB pass completes first and the intermediate states age for `gap_s`
/// before the MSB pass (the §III-B exposure window).
std::vector<BitVec> program_block(FlashController& ctrl, std::uint32_t block,
                                  Rng& rng, double now, double gap_s = 0.0) {
  const std::uint32_t wls = ctrl.device().geometry().wordlines;
  std::vector<BitVec> payloads(2 * wls);
  for (std::uint32_t wl = 0; wl < wls; ++wl) {
    payloads[2 * wl] = random_payload(rng, ctrl.payload_bits());
    ctrl.program_page({block, wl, PageType::kLsb}, payloads[2 * wl], now);
  }
  const double msb_time = now + gap_s;
  for (std::uint32_t wl = 0; wl < wls; ++wl) {
    payloads[2 * wl + 1] = random_payload(rng, ctrl.payload_bits());
    ctrl.program_page({block, wl, PageType::kMsb}, payloads[2 * wl + 1],
                      msb_time);
  }
  return payloads;
}

}  // namespace

double SsdLifetimeSim::rber_at(const SsdConfig& cfg, std::uint32_t pe,
                               double age_s) {
  FlashDevice dev(cfg.flash);
  FlashController ctrl(dev, cfg.ctrl);
  Rng rng(hash_coords(cfg.data_seed, pe));
  dev.age_block(0, pe);
  dev.erase_block(0, 0.0);
  const auto payloads = program_block(ctrl, 0, rng, 0.0, cfg.two_step_gap_s);
  const std::uint32_t wls = dev.geometry().wordlines;
  std::uint64_t errors = 0, bits = 0;
  std::size_t idx = 0;
  for (std::uint32_t wl = 0; wl < wls; ++wl) {
    for (PageType t : {PageType::kLsb, PageType::kMsb}) {
      errors += ctrl.raw_bit_errors({0, wl, t}, payloads[idx], age_s);
      bits += dev.geometry().page_bits;
      ++idx;
    }
  }
  return static_cast<double>(errors) / static_cast<double>(bits);
}

LifetimeResult SsdLifetimeSim::run() {
  LifetimeResult result;
  Rng rng(hash_coords(cfg_.data_seed, 0x53534454 /* "SSDT" */));
  for (std::uint32_t pe = cfg_.pe_step; pe <= cfg_.max_pe; pe += cfg_.pe_step) {
    // Fresh device per point: points are independent retention trials of a
    // block worn to `pe`.
    FlashDevice dev(cfg_.flash);
    FlashController ctrl(dev, cfg_.ctrl);
    dev.age_block(0, pe);
    double now = 0.0;
    dev.erase_block(0, now);
    auto payloads = program_block(ctrl, 0, rng, now, cfg_.two_step_gap_s);
    now += cfg_.two_step_gap_s;

    LifetimePoint pt{};
    pt.pe = pe;

    // Let the retention clock run, refreshing periodically if FCR is on.
    const double target = now + cfg_.retention_target_s;
    if (cfg_.fcr_period_s > 0.0) {
      while (now + cfg_.fcr_period_s < target) {
        now += cfg_.fcr_period_s;
        ctrl.refresh_block(0, now);
        ++pt.fcr_refreshes;
      }
    }
    now = target;

    // Verify every page through the recovery ladder.
    const std::uint32_t wls = dev.geometry().wordlines;
    std::uint64_t raw_errors = 0, bits = 0;
    std::size_t idx = 0;
    for (std::uint32_t wl = 0; wl < wls; ++wl) {
      for (PageType t : {PageType::kLsb, PageType::kMsb}) {
        const PageAddress a{0, wl, t};
        // RBER bookkeeping only meaningful without FCR re-encoding drift;
        // with FCR the payload should still round-trip, so compare data.
        if (cfg_.fcr_period_s <= 0.0) {
          raw_errors += ctrl.raw_bit_errors(a, payloads[idx], now);
          bits += dev.geometry().page_bits;
        }
        PageReadResult r = ctrl.read_page(a, now);
        if (r.uncorrectable || !(r.data == payloads[idx]))
          ++pt.uncorrectable_pages;
        if (r.used_rfr) ++pt.rfr_recoveries;
        ++idx;
      }
    }
    pt.mean_rber =
        bits ? static_cast<double>(raw_errors) / static_cast<double>(bits) : 0.0;
    result.curve.push_back(pt);
    if (pt.uncorrectable_pages == 0) {
      result.pe_lifetime = pe;
    } else {
      break;  // lifetime reached: later points would only be worse
    }
  }
  return result;
}

}  // namespace densemem::flash
