// Streaming statistics, histograms, and quantile estimation for experiment
// harnesses. Everything is exact (no sketches): experiment sample counts are
// modest and reproducibility beats memory here.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/check.h"

namespace densemem {

/// Welford-style running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// Standard error of the mean.
  double sem() const;
  /// Raw second central moment (for exact cross-process serialization).
  double m2() const { return m2_; }

  void merge(const RunningStats& o);

  /// Exact reconstruction from serialized moments: the inverse of reading
  /// (count, mean, m2, sum, min, max) out of an instance, bit-for-bit, so
  /// a stats object shipped through a sidecar file merges identically to
  /// the original. Raw internal values — pass mean_/min_/max_ as stored
  /// (±inf sentinels when empty), not the n-guarded accessors.
  static RunningStats from_parts(std::uint64_t n, double mean, double m2,
                                 double sum, double min, double max) {
    RunningStats s;
    s.n_ = n;
    s.mean_ = mean;
    s.m2_ = m2;
    s.sum_ = sum;
    s.min_ = min;
    s.max_ = max;
    return s;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin linear histogram over [lo, hi); out-of-range samples land in
/// underflow/overflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);
  std::uint64_t bin_count(std::size_t i) const {
    DM_CHECK(i < bins_.size());
    return bins_[i];
  }
  double bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  double bin_hi(std::size_t i) const { return bin_lo(i) + width_; }
  std::size_t num_bins() const { return bins_.size(); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  /// Adds another histogram's counts into this one. Both must have been
  /// constructed with the same (lo, hi, bins); bin counts are integer sums,
  /// so merging in any order gives the same result.
  void merge(const Histogram& o);

  double lo() const { return lo_; }
  double width() const { return width_; }

  /// Exact reconstruction from serialized geometry + counts (the sidecar
  /// round trip, same contract as RunningStats::from_parts). `width` is
  /// installed verbatim so merge()'s geometry check matches the original
  /// bit-for-bit instead of re-deriving it from a hi bound.
  static Histogram from_parts(double lo, double width,
                              std::vector<std::uint64_t> bins,
                              std::uint64_t underflow, std::uint64_t overflow) {
    Histogram h(lo, lo + width * static_cast<double>(bins.size()),
                bins.size());
    h.width_ = width;
    h.total_ = underflow + overflow;
    for (const std::uint64_t c : bins) h.total_ += c;
    h.bins_ = std::move(bins);
    h.underflow_ = underflow;
    h.overflow_ = overflow;
    return h;
  }

 private:
  double lo_, width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/// Exact quantiles over a retained sample set.
class QuantileSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  std::size_t count() const { return samples_.size(); }
  /// q in [0, 1]; linear interpolation between order statistics.
  double quantile(double q);
  double median() { return quantile(0.5); }

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

/// Sparse integer-count tally (e.g. "flips per cache block" → occurrences).
class CountTally {
 public:
  void add(std::int64_t key, std::uint64_t weight = 1) {
    counts_[key] += weight;
    total_ += weight;
  }
  std::uint64_t total() const { return total_; }
  std::uint64_t at(std::int64_t key) const {
    auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }
  const std::map<std::int64_t, std::uint64_t>& counts() const { return counts_; }
  double fraction_at_least(std::int64_t key) const;

 private:
  std::map<std::int64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Wilson score interval for a binomial proportion — used to report
/// Monte-Carlo failure probabilities with honest uncertainty.
struct ProportionCI {
  double p;
  double lo;
  double hi;
};
ProportionCI wilson_interval(std::uint64_t successes, std::uint64_t trials,
                             double z = 1.96);

}  // namespace densemem
