// Lightweight precondition / invariant checking.
//
// DM_CHECK is always-on (configuration and API-contract errors must not be
// silently ignored in a reliability simulator); DM_DCHECK compiles out in
// release builds and guards hot-path invariants.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace densemem {

/// Thrown when an API precondition or configuration invariant is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "DM_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace densemem

#define DM_CHECK(expr)                                                   \
  do {                                                                   \
    if (!(expr))                                                         \
      ::densemem::detail::check_failed(#expr, __FILE__, __LINE__, "");   \
  } while (0)

#define DM_CHECK_MSG(expr, msg)                                          \
  do {                                                                   \
    if (!(expr))                                                         \
      ::densemem::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifndef NDEBUG
#define DM_DCHECK(expr) DM_CHECK(expr)
#else
#define DM_DCHECK(expr) \
  do {                  \
  } while (0)
#endif
