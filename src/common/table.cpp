#include "common/table.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "common/check.h"

namespace densemem {

Table& Table::add_row(std::vector<Cell> cells) {
  DM_CHECK_MSG(cells.size() == headers_.size(),
               "row width must match header count");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::format_cell(const Cell& c) const {
  std::ostringstream os;
  if (std::holds_alternative<std::string>(c)) {
    os << std::get<std::string>(c);
  } else if (std::holds_alternative<double>(c)) {
    if (scientific_)
      os << std::scientific << std::setprecision(precision_)
         << std::get<double>(c);
    else
      os << std::fixed << std::setprecision(precision_) << std::get<double>(c);
  } else if (std::holds_alternative<std::int64_t>(c)) {
    os << std::get<std::int64_t>(c);
  } else {
    os << std::get<std::uint64_t>(c);
  }
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  auto rule = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  rule();
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
       << headers_[c] << " |";
  os << '\n';
  rule();
  for (const auto& r : rendered) {
    os << '|';
    for (std::size_t c = 0; c < r.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << r[c]
         << " |";
    os << '\n';
  }
  rule();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&os](const std::string& s) {
    if (s.find_first_of(",\"\n\r") != std::string::npos) {
      os << '"';
      for (char ch : s) {
        if (ch == '"') os << '"';
        os << ch;
      }
      os << '"';
    } else {
      os << s;
    }
  };
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    emit(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      emit(format_cell(row[c]));
    }
    os << '\n';
  }
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  print_csv(f);
  return static_cast<bool>(f);
}

namespace {

void emit_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

}  // namespace

void Table::print_json(std::ostream& os) const {
  os << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << "  {";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c) os << ", ";
      emit_json_string(os, headers_[c]);
      os << ": ";
      const Cell& cell = rows_[r][c];
      if (std::holds_alternative<std::string>(cell)) {
        emit_json_string(os, std::get<std::string>(cell));
      } else if (std::holds_alternative<double>(cell)) {
        const double v = std::get<double>(cell);
        // JSON has no NaN/Inf literals; mirror them as strings.
        if (std::isfinite(v))
          os << format_cell(cell);
        else
          emit_json_string(os, format_cell(cell));
      } else {
        os << format_cell(cell);
      }
    }
    os << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  os << "]\n";
}

bool Table::write_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  print_json(f);
  return static_cast<bool>(f);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string format_sci(double v, int digits) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(digits) << v;
  return os.str();
}

std::string format_count(std::uint64_t v) {
  std::string raw = std::to_string(v);
  std::string out;
  out.reserve(raw.size() + raw.size() / 3);
  std::size_t lead = raw.size() % 3;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out += ',';
    out += raw[i];
  }
  return out;
}

}  // namespace densemem
