#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace densemem {

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sem() const {
  return n_ ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

void RunningStats::merge(const RunningStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += o.m2_ + delta * delta * na * nb / n;
  n_ += o.n_;
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), bins_(bins, 0) {
  DM_CHECK_MSG(hi > lo, "histogram range must be non-empty");
  DM_CHECK_MSG(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x, std::uint64_t weight) {
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  const auto i = static_cast<std::size_t>((x - lo_) / width_);
  if (i >= bins_.size()) {
    overflow_ += weight;
    return;
  }
  bins_[i] += weight;
}

void Histogram::merge(const Histogram& o) {
  DM_CHECK_MSG(lo_ == o.lo_ && width_ == o.width_ &&
                   bins_.size() == o.bins_.size(),
               "cannot merge histograms with different geometry");
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += o.bins_[i];
  underflow_ += o.underflow_;
  overflow_ += o.overflow_;
  total_ += o.total_;
}

double QuantileSet::quantile(double q) {
  DM_CHECK_MSG(!samples_.empty(), "quantile of empty sample set");
  DM_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (samples_.size() == 1) return samples_[0];
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= samples_.size()) return samples_.back();
  return samples_[i] * (1.0 - frac) + samples_[i + 1] * frac;
}

double CountTally::fraction_at_least(std::int64_t key) const {
  if (total_ == 0) return 0.0;
  std::uint64_t n = 0;
  for (auto it = counts_.lower_bound(key); it != counts_.end(); ++it)
    n += it->second;
  return static_cast<double>(n) / static_cast<double>(total_);
}

ProportionCI wilson_interval(std::uint64_t successes, std::uint64_t trials,
                             double z) {
  if (trials == 0) return {0.0, 0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {p, std::max(0.0, center - half), std::min(1.0, center + half)};
}

}  // namespace densemem
