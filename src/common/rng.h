// Deterministic pseudo-random number generation and distributions.
//
// The whole framework is seeded: a given (seed, module, row) triple always
// produces the same fault map, so experiments are reproducible bit-for-bit
// across runs and machines. We implement xoshiro256++ (public-domain
// algorithm by Blackman & Vigna) rather than relying on std::mt19937 so the
// stream is stable across standard-library implementations, and SplitMix64
// for seeding / hashing coordinates into independent streams.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace densemem {

/// SplitMix64: fast 64-bit mixer. Used to derive seeds and to hash
/// coordinates (module id, bank, row, ...) into independent RNG streams.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Combine an arbitrary number of 64-bit coordinates into one stream seed.
template <typename... Ts>
constexpr std::uint64_t hash_coords(std::uint64_t first, Ts... rest) {
  std::uint64_t h = splitmix64(first);
  ((h = splitmix64(h ^ static_cast<std::uint64_t>(rest))), ...);
  return h;
}

/// xoshiro256++ PRNG. Satisfies UniformRandomBitGenerator.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256pp(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    // Seed the four state words via SplitMix64 as recommended by the authors.
    std::uint64_t x = seed;
    for (auto& w : s_) {
      x = splitmix64(x);
      w = x;
    }
    // All-zero state is invalid; splitmix64 output of any seed is never all
    // zero across four words, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Long-jump: advance 2^192 steps; partitions the stream for parallel use.
  void long_jump();

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// Convenience wrapper bundling the generator with the distributions the
/// framework needs. All distributions are implemented here (not std::) so
/// streams are identical across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : gen_(seed) {}

  std::uint64_t next_u64() { return gen_(); }

  /// Uniform in [0, 1).
  double uniform() {
    // 53-bit mantissa from the top bits.
    return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0. Uses rejection to be unbiased.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    DM_DCHECK(hi >= lo);
    return lo + static_cast<std::int64_t>(
                    uniform_int(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box–Muller (cached second value).
  double normal();
  double normal(double mean, double sigma) { return mean + sigma * normal(); }

  /// Lognormal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Exponential with the given rate (lambda).
  double exponential(double rate) {
    DM_DCHECK(rate > 0);
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
  }

  /// Poisson-distributed count with the given mean. Uses inversion for small
  /// means and normal approximation (rounded, clamped at 0) for large means.
  std::uint64_t poisson(double mean);

  /// Binomial(n, p) sample. Exact inversion for small n*p, otherwise normal
  /// approximation clamped to [0, n].
  std::uint64_t binomial(std::uint64_t n, double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_int(static_cast<std::uint64_t>(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Pick k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  Xoshiro256pp gen_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace densemem
