#include "common/rng.h"

#include <algorithm>

namespace densemem {

void Xoshiro256pp::long_jump() {
  static constexpr std::uint64_t kJump[] = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  DM_DCHECK(n > 0);
  // Lemire-style rejection with widening multiply.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = gen_();
    const unsigned __int128 m =
        static_cast<unsigned __int128>(r) * static_cast<unsigned __int128>(n);
    const std::uint64_t lo = static_cast<std::uint64_t>(m);
    if (lo >= threshold) return static_cast<std::uint64_t>(m >> 64);
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

std::uint64_t Rng::poisson(double mean) {
  DM_CHECK_MSG(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    double prod = uniform();
    std::uint64_t k = 0;
    while (prod > limit) {
      prod *= uniform();
      ++k;
    }
    return k;
  }
  // Normal approximation with continuity correction.
  const double x = normal(mean, std::sqrt(mean));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  DM_CHECK_MSG(p >= 0.0 && p <= 1.0, "binomial p must be in [0,1]");
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  const double np = static_cast<double>(n) * p;
  if (np < 25.0 || static_cast<double>(n) * (1.0 - p) < 25.0) {
    if (n <= 64) {
      std::uint64_t k = 0;
      for (std::uint64_t i = 0; i < n; ++i) k += bernoulli(p) ? 1 : 0;
      return k;
    }
    // Poisson approximation is adequate in the rare-event regime the
    // framework uses (weak-cell counts), otherwise fall through to normal.
    if (p < 0.05) {
      std::uint64_t k = poisson(np);
      return std::min<std::uint64_t>(k, n);
    }
  }
  const double sigma = std::sqrt(np * (1.0 - p));
  const double x = normal(np, sigma);
  if (x <= 0.0) return 0;
  const auto k = static_cast<std::uint64_t>(x + 0.5);
  return std::min(k, n);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  DM_CHECK_MSG(k <= n, "cannot sample more indices than the population");
  // Floyd's algorithm would avoid the O(n) init, but n here is modest
  // (rows in a bank at most); partial Fisher–Yates keeps it simple.
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + uniform_int(static_cast<std::uint64_t>(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace densemem
