#include "common/bitvec.h"

#include <bit>

namespace densemem {

void BitVec::fill_stripes(std::size_t stride, bool phase) {
  DM_CHECK_MSG(stride > 0, "stripe stride must be positive");
  for (std::size_t i = 0; i < nbits_; ++i) {
    const bool v = ((i / stride) % 2 == 0) != phase;
    set(i, v);
  }
}

std::size_t BitVec::popcount() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

std::size_t BitVec::hamming_distance(const BitVec& a, const BitVec& b) {
  DM_CHECK_MSG(a.size() == b.size(), "hamming_distance requires equal sizes");
  std::size_t n = 0;
  for (std::size_t w = 0; w < a.words_.size(); ++w)
    n += static_cast<std::size_t>(std::popcount(a.words_[w] ^ b.words_[w]));
  return n;
}

std::vector<std::size_t> BitVec::set_bits() const {
  std::vector<std::size_t> out;
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    std::uint64_t w = words_[wi];
    while (w) {
      const int b = std::countr_zero(w);
      out.push_back(wi * 64 + static_cast<std::size_t>(b));
      w &= w - 1;
    }
  }
  return out;
}

BitVec& BitVec::operator^=(const BitVec& o) {
  DM_CHECK(size() == o.size());
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= o.words_[w];
  return *this;
}

BitVec& BitVec::operator&=(const BitVec& o) {
  DM_CHECK(size() == o.size());
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= o.words_[w];
  return *this;
}

BitVec& BitVec::operator|=(const BitVec& o) {
  DM_CHECK(size() == o.size());
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= o.words_[w];
  return *this;
}

}  // namespace densemem
