// Result-table formatting for the benchmark harness: every experiment prints
// an aligned ASCII table to stdout and can optionally mirror it to CSV, so
// the bench binaries regenerate the paper's tables/figures as plain series.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace densemem {

class Table {
 public:
  using Cell = std::variant<std::string, double, std::int64_t, std::uint64_t>;

  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Number formatting for doubles: fixed decimals or scientific.
  void set_precision(int digits) { precision_ = digits; }
  void set_scientific(bool on) { scientific_ = on; }

  Table& add_row(std::vector<Cell> cells);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return headers_.size(); }

  /// Render as an aligned ASCII table.
  void print(std::ostream& os) const;
  /// Render as CSV (RFC-4180 quoting: fields containing commas, quotes, or
  /// CR/LF are quoted, embedded quotes doubled).
  void print_csv(std::ostream& os) const;
  /// Write CSV to a file path; returns false if the file cannot be opened.
  bool write_csv(const std::string& path) const;
  /// Render as a JSON array of objects keyed by the column headers.
  /// Numeric cells stay numbers; strings are escaped per RFC 8259.
  void print_json(std::ostream& os) const;
  /// Write JSON to a file path; returns false if the file cannot be opened.
  bool write_json(const std::string& path) const;

  std::string to_string() const;

 private:
  std::string format_cell(const Cell& c) const;
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
  bool scientific_ = false;
};

/// Format a double like "1.23e+05" compactly (used for error rates).
std::string format_sci(double v, int digits = 3);

/// Format a count with thousands separators ("1,234,567").
std::string format_count(std::uint64_t v);

}  // namespace densemem
