// Strongly-typed simulation time and convenience size/energy constants.
//
// All device and controller timing is kept in integer picoseconds so timing
// arithmetic is exact (DDR parameters are sub-nanosecond multiples of the
// clock period; floating point would accumulate drift over a 64 ms refresh
// window of ~10^8 commands).
#pragma once

#include <compare>
#include <cstdint>

namespace densemem {

/// Absolute simulation time / durations in picoseconds.
class Time {
 public:
  constexpr Time() = default;

  static constexpr Time ps(std::int64_t v) { return Time{v}; }
  static constexpr Time ns(std::int64_t v) { return Time{v * 1'000}; }
  static constexpr Time us(std::int64_t v) { return Time{v * 1'000'000}; }
  static constexpr Time ms(std::int64_t v) { return Time{v * 1'000'000'000}; }
  static constexpr Time s(std::int64_t v) {
    return Time{v * 1'000'000'000'000};
  }
  /// Nearest-picosecond conversion from fractional nanoseconds.
  static constexpr Time ns_f(double v) {
    return Time{static_cast<std::int64_t>(v * 1e3 + (v >= 0 ? 0.5 : -0.5))};
  }

  constexpr std::int64_t picoseconds() const { return ps_; }
  constexpr double as_ns() const { return static_cast<double>(ps_) * 1e-3; }
  constexpr double as_us() const { return static_cast<double>(ps_) * 1e-6; }
  constexpr double as_ms() const { return static_cast<double>(ps_) * 1e-9; }
  constexpr double as_s() const { return static_cast<double>(ps_) * 1e-12; }

  constexpr Time operator+(Time o) const { return Time{ps_ + o.ps_}; }
  constexpr Time operator-(Time o) const { return Time{ps_ - o.ps_}; }
  constexpr Time operator*(std::int64_t k) const { return Time{ps_ * k}; }
  constexpr Time operator/(std::int64_t k) const { return Time{ps_ / k}; }
  constexpr std::int64_t operator/(Time o) const { return ps_ / o.ps_; }
  constexpr Time& operator+=(Time o) {
    ps_ += o.ps_;
    return *this;
  }
  constexpr Time& operator-=(Time o) {
    ps_ -= o.ps_;
    return *this;
  }
  constexpr auto operator<=>(const Time&) const = default;

 private:
  constexpr explicit Time(std::int64_t v) : ps_(v) {}
  std::int64_t ps_ = 0;
};

constexpr Time operator*(std::int64_t k, Time t) { return t * k; }

/// Energy in picojoules; same rationale as Time.
class Energy {
 public:
  constexpr Energy() = default;
  static constexpr Energy pj(double v) { return Energy{v}; }
  static constexpr Energy nj(double v) { return Energy{v * 1e3}; }
  constexpr double as_pj() const { return pj_; }
  constexpr double as_nj() const { return pj_ * 1e-3; }
  constexpr double as_mj() const { return pj_ * 1e-9; }
  constexpr Energy operator+(Energy o) const { return Energy{pj_ + o.pj_}; }
  constexpr Energy operator*(double k) const { return Energy{pj_ * k}; }
  constexpr Energy& operator+=(Energy o) {
    pj_ += o.pj_;
    return *this;
  }
  constexpr auto operator<=>(const Energy&) const = default;

 private:
  constexpr explicit Energy(double v) : pj_(v) {}
  double pj_ = 0.0;
};

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

}  // namespace densemem
