// Dynamic bit vector used for row data, code words, and fault masks.
//
// std::vector<bool> lacks word-level access and popcount; std::bitset is
// fixed-size. BitVec gives word access (needed by the ECC codecs, which work
// on whole 64-bit words) plus set-bit iteration (needed to enumerate flips).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace densemem {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t nbits, bool value = false)
      : nbits_(nbits), words_((nbits + 63) / 64, value ? ~std::uint64_t{0} : 0) {
    trim();
  }

  std::size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }
  std::size_t word_count() const { return words_.size(); }

  bool get(std::size_t i) const {
    DM_DCHECK(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void set(std::size_t i, bool v = true) {
    DM_DCHECK(i < nbits_);
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (v)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }
  void clear(std::size_t i) { set(i, false); }
  void flip(std::size_t i) {
    DM_DCHECK(i < nbits_);
    words_[i >> 6] ^= std::uint64_t{1} << (i & 63);
  }

  std::uint64_t word(std::size_t w) const {
    DM_DCHECK(w < words_.size());
    return words_[w];
  }
  void set_word(std::size_t w, std::uint64_t v) {
    DM_DCHECK(w < words_.size());
    words_[w] = v;
    if (w + 1 == words_.size()) trim();
  }

  /// 64 bits starting at an arbitrary bit offset (zero-padded past the end).
  /// Lets codecs walk byte/word lanes that are not 64-bit aligned.
  std::uint64_t get_word_at(std::size_t off) const {
    const std::size_t w = off >> 6;
    const unsigned sh = static_cast<unsigned>(off & 63);
    if (w >= words_.size()) return 0;
    std::uint64_t v = words_[w] >> sh;
    if (sh != 0 && w + 1 < words_.size()) v |= words_[w + 1] << (64 - sh);
    return v;
  }

  /// OR the low `len` (1..64) bits of `v` into positions [off, off+len).
  /// Intended for scattering into freshly zeroed regions (no clearing).
  void or_bits_at(std::size_t off, std::uint64_t v, unsigned len) {
    DM_DCHECK(len >= 1 && len <= 64 && off + len <= nbits_);
    if (len < 64) v &= (std::uint64_t{1} << len) - 1;
    const std::size_t w = off >> 6;
    const unsigned sh = static_cast<unsigned>(off & 63);
    words_[w] |= v << sh;
    if (sh != 0 && sh + len > 64) words_[w + 1] |= v >> (64 - sh);
  }

  void fill(bool v) {
    for (auto& w : words_) w = v ? ~std::uint64_t{0} : 0;
    trim();
  }

  /// Fill with an alternating pattern at the given bit granularity:
  /// stride=1 → 0101..., stride=8 → byte stripes, etc. `phase` inverts.
  void fill_stripes(std::size_t stride, bool phase = false);

  std::size_t popcount() const;

  /// Number of differing bits between two equal-length vectors.
  static std::size_t hamming_distance(const BitVec& a, const BitVec& b);

  /// Indices of set bits, ascending.
  std::vector<std::size_t> set_bits() const;

  BitVec& operator^=(const BitVec& o);
  BitVec& operator&=(const BitVec& o);
  BitVec& operator|=(const BitVec& o);
  friend BitVec operator^(BitVec a, const BitVec& b) { return a ^= b; }
  friend BitVec operator&(BitVec a, const BitVec& b) { return a &= b; }
  friend BitVec operator|(BitVec a, const BitVec& b) { return a |= b; }
  bool operator==(const BitVec& o) const = default;

 private:
  void trim() {
    if (nbits_ % 64 != 0 && !words_.empty())
      words_.back() &= (std::uint64_t{1} << (nbits_ % 64)) - 1;
  }
  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace densemem
