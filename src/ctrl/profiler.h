// Online DRAM retention profiler (§III-A1 / §IV "enabling effective and
// low-cost online profiling of DRAM in a principled manner").
//
// Wraps the methodology the paper's retention citations converge on
// [69, 46, 84, 48]: test rows at a target retention interval under several
// data patterns (DPD coverage) for several rounds (VRT coverage), assign
// multirate refresh bins from what was observed, and keep profiling online
// so VRT escapes are caught by ECC-guided upgrades (AVATAR [84]).
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "ctrl/controller.h"
#include "dram/device.h"

namespace densemem::ctrl {

struct ProfilerConfig {
  /// Target retention interval: rows failing at this interval need the
  /// fastest refresh bin.
  Time target_interval = Time::ms(512);
  /// Data patterns tested per round (DPD coverage).
  std::vector<dram::BackgroundPattern> patterns{
      dram::BackgroundPattern::kOnes, dram::BackgroundPattern::kZeros,
      dram::BackgroundPattern::kRowStripe,
      dram::BackgroundPattern::kCheckerboard};
  /// Full pattern-sweep rounds (VRT coverage; each round re-tests).
  int rounds = 3;
  /// Bin for rows that never failed (refreshed every 2^bin windows).
  std::uint8_t slow_bin = 3;
};

struct ProfileReport {
  /// (bank, logical row) pairs observed failing at the target interval.
  std::set<std::pair<std::uint32_t, std::uint32_t>> weak_rows;
  /// New weak rows discovered per round (index 0 = first full sweep):
  /// a non-vanishing tail is the VRT signature.
  std::vector<std::size_t> new_rows_per_round;
  std::uint64_t cells_observed_failing = 0;
  Time profiling_time;  ///< device time consumed by the profiling passes
};

/// Offline-style profiling pass over the device (destructive to contents).
/// Returns the report; apply_bins() pushes the result into a controller.
class RetentionProfiler {
 public:
  explicit RetentionProfiler(ProfilerConfig cfg) : cfg_(cfg) {}

  ProfileReport profile(dram::Device& device, Time start = Time{}) const;

  /// Program a controller's multirate bins from a report: weak rows to
  /// bin 0, everything else to cfg.slow_bin.
  void apply_bins(const ProfileReport& report, MemoryController& mc) const;

  /// One AVATAR step: scrub the given rows through the controller's ECC;
  /// any row with a corrected error is upgraded to bin 0. Returns the
  /// number of upgrades (VRT escapes caught).
  std::uint64_t avatar_scrub(
      MemoryController& mc,
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& rows) const;

  const ProfilerConfig& config() const { return cfg_; }

 private:
  ProfilerConfig cfg_;
};

}  // namespace densemem::ctrl
