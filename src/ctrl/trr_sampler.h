// Sampler-based in-DRAM Targeted Row Refresh.
//
// Where `Trr` (trr.h) models the tracker as a deterministic Misra–Gries
// frequent-items table, this models the other family real DDR4 vendors
// shipped: a finite-capacity *probabilistic sampler*. The chip cannot
// afford to inspect every ACT, so it samples a bounded fraction of the
// command stream per tREFI window into a tiny CAM and, on the next REF,
// piggybacks neighbour refreshes for the hottest sampled rows, then starts
// a fresh sampling window.
//
// This is the design the Blacksmith/TRRespass line of work broke: the CAM
// replaces oldest-first when full (a shift-register-like sampler, the
// structure reverse-engineered DDR4 TRR implementations are believed to
// use), so it remembers the *most recent* sampled rows, not the most
// frequent ones. A non-uniform pattern can therefore concentrate its
// activation budget on a victim's neighbours early in the refresh interval
// and flood distinct decoy rows afterwards: by REF time the slots hold
// decoys, the genuine aggressors escape, and their victim's disturbance
// accumulates across consecutive escaped windows. The fuzz/ subsystem
// searches for exactly such patterns; bench_blacksmith measures where the
// arms race tips.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "ctrl/mitigation.h"

namespace densemem::ctrl {

struct TrrSamplerConfig {
  std::uint32_t sampler_entries = 4;    ///< per-bank CAM capacity
  double sample_rate = 0.25;            ///< probability an ACT is inspected
  std::uint32_t neighbors_per_ref = 4;  ///< victim refreshes piggybacked per REF
  std::uint64_t seed = 0xB5;            ///< sampling/eviction stream
};

class TrrSampler final : public Mitigation {
 public:
  TrrSampler(TrrSamplerConfig cfg, AdjacencyFn adjacency)
      : cfg_(cfg), adjacency_(std::move(adjacency)), rng_(cfg.seed) {
    DM_CHECK_MSG(cfg_.sampler_entries >= 1, "sampler needs at least one slot");
    DM_CHECK_MSG(cfg_.sample_rate > 0.0 && cfg_.sample_rate <= 1.0,
                 "sample rate must be in (0, 1]");
  }

  std::string name() const override { return "TRR-sampler"; }

  void on_activate(std::uint32_t fbank, std::uint32_t row,
                   std::vector<RefreshRequest>& out) override {
    (void)out;
    // The sampler inspects a bounded fraction of ACTs; everything else is
    // invisible to it. One bernoulli per ACT, from the mitigation's own
    // stream, so a given command sequence always samples identically.
    if (!rng_.bernoulli(cfg_.sample_rate)) return;
    note(DecisionKind::kSample, fbank, row);
    BankState& st = banks_[fbank];
    for (Entry& e : st.slots) {
      if (e.row == row) {
        ++e.count;
        return;
      }
    }
    if (st.slots.size() < cfg_.sampler_entries) {
      st.slots.push_back({row, 1});
      note(DecisionKind::kTrack, fbank, row);
      return;
    }
    // CAM full: oldest-first (ring) replacement. This — not Misra–Gries
    // eviction — is what a decoy flood exploits: once `sampler_entries`
    // distinct rows are sampled after the genuine aggressors' last ACT,
    // every aggressor entry has been pushed out and the REF refreshes
    // decoy neighbours instead of the victim.
    note(DecisionKind::kEvict, fbank, st.slots[st.next].row);
    st.slots[st.next] = {row, 1};
    note(DecisionKind::kTrack, fbank, row);
    st.next = (st.next + 1) % st.slots.size();
  }

  void on_ref_command(std::vector<RefreshRequest>& out) override {
    // Spend the piggyback budget on the hottest sampled rows, banks in
    // ascending order (deterministic across platforms), then start a fresh
    // sampling window.
    std::uint32_t budget = cfg_.neighbors_per_ref;
    for (auto& [fbank, st] : banks_) {
      std::vector<Entry> ranked = st.slots;
      std::sort(ranked.begin(), ranked.end(),
                [](const Entry& a, const Entry& b) {
                  return a.count != b.count ? a.count > b.count
                                            : a.row < b.row;
                });
      for (const Entry& e : ranked) {
        if (budget == 0) break;
        for (std::uint32_t n : adjacency_(e.row)) {
          if (budget == 0) break;
          out.push_back({fbank, n});
          note_refresh(fbank, n, e.row);
          --budget;
        }
      }
      st.slots.clear();
      st.next = 0;
    }
  }

  void on_window_reset() override {
    for (auto& [fbank, st] : banks_) {
      st.slots.clear();
      st.next = 0;
    }
  }

  std::uint64_t storage_bits() const override {
    // entries × (row address + short saturating counter) per bank seen.
    return static_cast<std::uint64_t>(banks_.size()) * cfg_.sampler_entries *
           (32 + 8);
  }

 private:
  struct Entry {
    std::uint32_t row = 0;
    std::uint32_t count = 0;
  };
  struct BankState {
    std::vector<Entry> slots;  ///< the CAM
    std::size_t next = 0;      ///< ring replacement cursor (oldest entry)
  };

  TrrSamplerConfig cfg_;
  AdjacencyFn adjacency_;
  Rng rng_;
  std::map<std::uint32_t, BankState> banks_;  ///< fbank → sampler state
};

}  // namespace densemem::ctrl
