#include "ctrl/controller.h"

#include <algorithm>

#include "common/check.h"

namespace densemem::ctrl {

using dram::Address;

namespace {
constexpr std::uint32_t kDataWordsPerBlock = 8;
}

MemoryController::MemoryController(dram::Device& device, CtrlConfig cfg,
                                   std::unique_ptr<Mitigation> mitigation)
    : device_(device),
      cfg_(std::move(cfg)),
      mitigation_(mitigation ? std::move(mitigation)
                             : std::make_unique<NoMitigation>()),
      banks_(dram::total_banks(device.geometry())),
      bins_(static_cast<std::size_t>(dram::total_banks(device.geometry())) *
                device.geometry().rows,
            0) {
  const std::uint32_t row_words = device_.geometry().row_words();
  if (cfg_.ecc == EccMode::kNone) {
    words_per_block_stride_ = kDataWordsPerBlock;
  } else {
    // 8 data words + 1 check word per protected block. The check word lives
    // in the same row, so it is hammered and leaks like any other cell.
    words_per_block_stride_ = kDataWordsPerBlock + 1;
    if (cfg_.ecc == EccMode::kBch) {
      DM_CHECK_MSG(cfg_.bch_t >= 1 && 10 * cfg_.bch_t <= 64,
                   "BCH t must fit its parity in the per-block check word");
      bch_.emplace(ecc::BchParams{10, cfg_.bch_t, 512});
    } else if (cfg_.ecc == EccMode::kRs) {
      // RS(72,64): 64 data bytes + 8 parity bytes = t=4 symbol correction,
      // filling the check word exactly.
      rs_.emplace(ecc::RsParams{4, 64});
    }
  }
  blocks_per_row_ = row_words / words_per_block_stride_;
  DM_CHECK_MSG(blocks_per_row_ >= 1, "row too small for one block");

  const auto refs =
      static_cast<std::uint32_t>(cfg_.timing.refs_per_window());
  DM_CHECK_MSG(refs > 0, "refresh window shorter than refresh interval");
  refs_per_window_ = refs;
  next_ref_ = now_ + cfg_.timing.tREFI;
  next_window_ = now_ + cfg_.timing.tREFW;
}

double MemoryController::ecc_capacity_overhead() const {
  if (cfg_.ecc == EccMode::kNone) return 0.0;
  return 1.0 / static_cast<double>(words_per_block_stride_);
}

AdjacencyFn make_adjacency(dram::Device& device, bool use_spd) {
  if (use_spd) {
    dram::Device* dev = &device;
    return [dev](std::uint32_t row) { return dev->spd_neighbors(row); };
  }
  const std::uint32_t rows = device.geometry().rows;
  return [rows](std::uint32_t row) {
    std::vector<std::uint32_t> out;
    if (row > 0) out.push_back(row - 1);
    if (row + 1 < rows) out.push_back(row + 1);
    return out;
  };
}

AdjacencyFn MemoryController::adjacency() const {
  return make_adjacency(device_, cfg_.use_spd_adjacency);
}

void MemoryController::execute_refresh_requests(
    const std::vector<RefreshRequest>& reqs) {
  for (const RefreshRequest& r : reqs) {
    device_.refresh_row(r.fbank, r.row, now_);
    ++stats_.targeted_refreshes;
    stats_.mitigation_busy += cfg_.timing.tRC;
    now_ += cfg_.timing.tRC;
    energy_.targeted_refresh_energy += cfg_.energy.act_pre;
  }
}

void MemoryController::issue_ref_command(Time at) {
  ++stats_.ref_commands;
  const std::uint32_t nbanks = dram::total_banks(device_.geometry());
  const std::uint32_t rows = device_.geometry().rows;
  // REF requires all banks precharged: force-close any open rows (the
  // implicit precharge-all), firing the row-close mitigation hooks.
  scratch_reqs_.clear();
  for (std::uint32_t b = 0; b < nbanks; ++b) {
    BankState& bank = banks_[b];
    if (bank.open_row < 0) continue;
    const auto closed = static_cast<std::uint32_t>(bank.open_row);
    device_.precharge(b, at);
    bank.open_row = -1;
    mitigation_->on_precharge(b, closed, scratch_reqs_);
  }
  execute_refresh_requests(scratch_reqs_);
  // Spread the bank's rows evenly over the window's REF commands so every
  // row is restored exactly once per tREFW (an accumulator handles bank
  // sizes that do not divide the REF count).
  ref_rows_acc_ += rows;
  const std::uint32_t rows_this_ref = ref_rows_acc_ / refs_per_window_;
  ref_rows_acc_ -= rows_this_ref * refs_per_window_;
  for (std::uint32_t b = 0; rows_this_ref > 0 && b < nbanks; ++b) {
    if (cfg_.refresh_mode == RefreshMode::kStandard) {
      device_.refresh_next(b, rows_this_ref, at);
      stats_.rows_refreshed += rows_this_ref;
      energy_.refresh_energy +=
          cfg_.energy.refresh_row * static_cast<double>(rows_this_ref);
    } else {
      BankState& bank = banks_[b];
      for (std::uint32_t i = 0; i < rows_this_ref; ++i) {
        const std::uint32_t row = bank.ref_ptr;
        bank.ref_ptr = (bank.ref_ptr + 1 == rows) ? 0 : bank.ref_ptr + 1;
        const std::uint8_t bin =
            bins_[static_cast<std::size_t>(b) * rows + row];
        if ((window_index_ & ((1u << bin) - 1)) == 0) {
          device_.refresh_row(b, row, at);
          ++stats_.rows_refreshed;
          energy_.refresh_energy += cfg_.energy.refresh_row;
        } else {
          ++stats_.rows_skipped_multirate;
        }
      }
    }
  }
  scratch_reqs_.clear();
  mitigation_->on_ref_command(scratch_reqs_);
  execute_refresh_requests(scratch_reqs_);
}

void MemoryController::catch_up_refresh() {
  while (next_ref_ <= now_ || next_window_ <= now_) {
    if (next_window_ <= next_ref_ && next_window_ <= now_) {
      ++window_index_;
      mitigation_->on_window_reset();
      next_window_ += cfg_.timing.tREFW;
      continue;
    }
    if (next_ref_ > now_) break;
    const Time at = next_ref_;
    issue_ref_command(at);
    stats_.refresh_busy += cfg_.timing.tRFC;
    // The rank is busy during tRFC; push the clock if the access overlaps.
    now_ = std::max(now_, at + cfg_.timing.tRFC);
    next_ref_ += cfg_.timing.tREFI;
  }
}

void MemoryController::open_row_for_access(std::uint32_t fbank,
                                           std::uint32_t row) {
  catch_up_refresh();
  BankState& b = banks_[fbank];
  if (b.open_row == static_cast<std::int64_t>(row)) {
    ++stats_.row_hits;
    return;
  }
  if (b.open_row >= 0) {
    ++stats_.row_misses;
    const auto closed = static_cast<std::uint32_t>(b.open_row);
    now_ = std::max(now_, b.last_act + cfg_.timing.tRAS);
    device_.precharge(fbank, now_);
    b.open_row = -1;
    scratch_reqs_.clear();
    mitigation_->on_precharge(fbank, closed, scratch_reqs_);
    now_ += cfg_.timing.tRP;
    execute_refresh_requests(scratch_reqs_);
  } else {
    ++stats_.row_closed;
  }
  Time t_act = std::max(now_, b.last_act + cfg_.timing.tRC);
  t_act = earliest_act_for_faw(t_act);
  device_.activate(fbank, row, t_act);
  record_act(t_act);
  b.open_row = row;
  b.last_act = t_act;
  energy_.activate_energy += cfg_.energy.act_pre;
  scratch_reqs_.clear();
  mitigation_->on_activate(fbank, row, scratch_reqs_);
  now_ = t_act + cfg_.timing.tRCD;
  execute_refresh_requests(scratch_reqs_);
}

Time MemoryController::earliest_act_for_faw(Time candidate) const {
  // The oldest of the last four ACTs bounds the next one: at most four
  // activates may start within any tFAW window (rank level).
  const Time oldest = recent_acts_[recent_act_idx_];
  return std::max(candidate, oldest + cfg_.timing.tFAW);
}

void MemoryController::record_act(Time at) {
  recent_acts_[recent_act_idx_] = at;
  recent_act_idx_ = (recent_act_idx_ + 1) % recent_acts_.size();
}

void MemoryController::auto_precharge(std::uint32_t fbank) {
  BankState& b = banks_[fbank];
  if (b.open_row < 0) return;
  const auto closed = static_cast<std::uint32_t>(b.open_row);
  now_ = std::max(now_, b.last_act + cfg_.timing.tRAS);
  device_.precharge(fbank, now_);
  b.open_row = -1;
  scratch_reqs_.clear();
  mitigation_->on_precharge(fbank, closed, scratch_reqs_);
  now_ += cfg_.timing.tRP;
  execute_refresh_requests(scratch_reqs_);
}

std::uint32_t MemoryController::device_word_base(std::uint32_t block) const {
  DM_CHECK_MSG(block < blocks_per_row_, "block index out of range");
  return block * words_per_block_stride_;
}

ReadResult MemoryController::read_block(const Address& a) {
  const std::uint32_t fbank = dram::flat_bank(device_.geometry(), a);
  open_row_for_access(fbank, a.row);
  now_ += cfg_.timing.tCL;
  ++stats_.reads;
  energy_.rw_energy += cfg_.energy.read_block;

  const std::uint32_t base = device_word_base(a.col_word);
  ReadResult r;
  std::array<std::uint64_t, 9> raw{};
  for (std::uint32_t w = 0; w < words_per_block_stride_; ++w)
    raw[w] = device_.read_word(fbank, base + w);

  if (cfg_.page_policy == PagePolicy::kClosed) auto_precharge(fbank);

  switch (cfg_.ecc) {
    case EccMode::kNone:
      for (std::uint32_t w = 0; w < 8; ++w) r.data[w] = raw[w];
      ++stats_.ecc_clean;
      break;
    case EccMode::kSecded: {
      bool any_uncorrectable = false;
      for (std::uint32_t w = 0; w < 8; ++w) {
        ecc::SecdedWord cw{raw[w],
                           static_cast<std::uint8_t>((raw[8] >> (8 * w)) & 0xFF)};
        const auto d = ecc::Secded7264::decode(cw);
        r.data[w] = d.data;
        switch (d.status) {
          case ecc::DecodeStatus::kClean:
            break;
          case ecc::DecodeStatus::kCorrected:
            ++stats_.ecc_corrected_words;
            ++r.corrected_bits;
            break;
          case ecc::DecodeStatus::kUncorrectable:
            any_uncorrectable = true;
            break;
        }
      }
      if (any_uncorrectable) {
        r.status = ecc::DecodeStatus::kUncorrectable;
        ++stats_.ecc_uncorrectable_blocks;
      } else if (r.corrected_bits > 0) {
        r.status = ecc::DecodeStatus::kCorrected;
      } else {
        ++stats_.ecc_clean;
      }
      break;
    }
    case EccMode::kRs: {
      std::vector<std::uint8_t> cw(72);
      for (std::uint32_t w = 0; w < 8; ++w)
        for (unsigned byte = 0; byte < 8; ++byte)
          cw[w * 8 + byte] =
              static_cast<std::uint8_t>(raw[w] >> (8 * byte));
      for (unsigned byte = 0; byte < 8; ++byte)
        cw[64 + byte] = static_cast<std::uint8_t>(raw[8] >> (8 * byte));
      const auto d = rs_->decode(cw);
      for (std::uint32_t w = 0; w < 8; ++w) {
        std::uint64_t v = 0;
        for (unsigned byte = 0; byte < 8; ++byte)
          v |= static_cast<std::uint64_t>(d.data[w * 8 + byte]) << (8 * byte);
        r.data[w] = v;
      }
      r.status = d.status;
      r.corrected_bits = d.corrected_symbols;  // symbols, for RS
      switch (d.status) {
        case ecc::DecodeStatus::kClean:
          ++stats_.ecc_clean;
          break;
        case ecc::DecodeStatus::kCorrected:
          stats_.ecc_corrected_words +=
              static_cast<std::uint64_t>(d.corrected_symbols);
          break;
        case ecc::DecodeStatus::kUncorrectable:
          ++stats_.ecc_uncorrectable_blocks;
          break;
      }
      break;
    }
    case EccMode::kBch: {
      // The 512-bit payload is word-aligned in the code word, so the whole
      // pack/unpack is eight word moves plus one parity deposit.
      BitVec cw(static_cast<std::size_t>(bch_->code_bits()));
      for (std::uint32_t w = 0; w < 8; ++w) cw.set_word(w, raw[w]);
      cw.or_bits_at(512, raw[8],
                    static_cast<unsigned>(bch_->parity_bits()));
      auto d = bch_->decode(cw);
      for (std::uint32_t w = 0; w < 8; ++w) r.data[w] = d.data.word(w);
      r.status = d.status;
      r.corrected_bits = d.corrected_bits;
      switch (d.status) {
        case ecc::DecodeStatus::kClean:
          ++stats_.ecc_clean;
          break;
        case ecc::DecodeStatus::kCorrected:
          stats_.ecc_corrected_words += static_cast<std::uint64_t>(d.corrected_bits);
          break;
        case ecc::DecodeStatus::kUncorrectable:
          ++stats_.ecc_uncorrectable_blocks;
          break;
      }
      break;
    }
  }
  return r;
}

void MemoryController::write_block(const Address& a,
                                   const std::array<std::uint64_t, 8>& data) {
  const std::uint32_t fbank = dram::flat_bank(device_.geometry(), a);
  open_row_for_access(fbank, a.row);
  now_ += cfg_.timing.tCL;  // write latency ~ CAS latency for our purposes
  ++stats_.writes;
  energy_.rw_energy += cfg_.energy.write_block;

  const std::uint32_t base = device_word_base(a.col_word);
  for (std::uint32_t w = 0; w < 8; ++w)
    device_.write_word(fbank, base + w, data[w]);

  switch (cfg_.ecc) {
    case EccMode::kNone:
      break;
    case EccMode::kSecded: {
      std::uint64_t check = 0;
      for (std::uint32_t w = 0; w < 8; ++w) {
        const auto cw = ecc::Secded7264::encode(data[w]);
        check |= static_cast<std::uint64_t>(cw.check) << (8 * w);
      }
      device_.write_word(fbank, base + 8, check);
      break;
    }
    case EccMode::kRs: {
      std::vector<std::uint8_t> payload(64);
      for (std::uint32_t w = 0; w < 8; ++w)
        for (unsigned byte = 0; byte < 8; ++byte)
          payload[w * 8 + byte] =
              static_cast<std::uint8_t>(data[w] >> (8 * byte));
      const auto cw = rs_->encode(payload);
      std::uint64_t check = 0;
      for (unsigned byte = 0; byte < 8; ++byte)
        check |= static_cast<std::uint64_t>(cw[64 + byte]) << (8 * byte);
      device_.write_word(fbank, base + 8, check);
      break;
    }
    case EccMode::kBch: {
      BitVec payload(512);
      for (std::uint32_t w = 0; w < 8; ++w) payload.set_word(w, data[w]);
      const BitVec cw = bch_->encode(payload);
      // Parity occupies bits 512..512+r-1; bits past code_bits are zero.
      device_.write_word(fbank, base + 8, cw.get_word_at(512));
      break;
    }
  }
  if (cfg_.page_policy == PagePolicy::kClosed) auto_precharge(fbank);
}

void MemoryController::activate_precharge(std::uint32_t fbank,
                                          std::uint32_t row) {
  open_row_for_access(fbank, row);
  BankState& b = banks_[fbank];
  now_ = std::max(now_, b.last_act + cfg_.timing.tRAS);
  device_.precharge(fbank, now_);
  b.open_row = -1;
  scratch_reqs_.clear();
  mitigation_->on_precharge(fbank, row, scratch_reqs_);
  now_ += cfg_.timing.tRP;
  execute_refresh_requests(scratch_reqs_);
}

std::uint64_t MemoryController::run_stream(const dram::AccessStream& s,
                                           std::uint64_t max_acts) {
  const std::uint32_t fbank = s.fbank();
  DM_CHECK_MSG(fbank < banks_.size(), "stream bank out of range");
  if (s.acts_per_pass() == 0 || max_acts == 0) return 0;

  // Classify each touched row once per pass: no weak and no leaky cells
  // means every restore is provably a pure stress-reset; leaky rows can
  // never skip (retention draws per-cell RNG on every commit); weak rows
  // are screened against the padded whole-pass stress bound.
  const auto& touched = s.touched();
  enum class Cls : std::uint8_t { kAlways, kBound, kNever };
  std::vector<Cls> cls(touched.size());
  const dram::FaultMap& faults = device_.fault_map();
  for (std::size_t u = 0; u < touched.size(); ++u) {
    if (faults.row_has_leaky(fbank, touched[u].prow))
      cls[u] = Cls::kNever;
    else if (faults.row_has_weak(fbank, touched[u].prow))
      cls[u] = Cls::kBound;
    else
      cls[u] = Cls::kAlways;
  }

  // Refreshes (REF from catch-up, or mitigation-issued) restore rows AND
  // deposit neighbour stress the compiled bound did not count, so any
  // refresh invalidates the skip set. The device's refresh counters move
  // on every such restore; re-screen whenever they do. The recomputed
  // bound — live stress (which already includes every deposit so far)
  // plus the full pass total (an over-estimate of what remains) — stays
  // an upper bound for every later slot of the pass.
  std::vector<std::uint8_t> skip(touched.size());
  const auto refresh_epoch = [this] {
    return device_.stats().row_refreshes + device_.stats().targeted_refreshes;
  };
  std::uint64_t epoch = 0;
  const auto compute_skips = [&] {
    epoch = refresh_epoch();
    for (std::size_t u = 0; u < touched.size(); ++u) {
      if (cls[u] != Cls::kBound) {
        skip[u] = cls[u] == Cls::kAlways ? 1 : 0;
        continue;
      }
      const std::uint32_t p = touched[u].prow;
      const float bound = dram::AccessStream::pass_bound(
          static_cast<float>(device_.stress_of_physical(fbank, p)),
          touched[u].pass_stress);
      skip[u] = device_.disturb_provably_clean(fbank, p, bound) ? 1 : 0;
    }
  };
  compute_skips();

  std::uint64_t issued = 0;
  for (const dram::AccessStream::Slot& sl : s.slots()) {
    if (issued == max_acts) return issued;  // checked per slot, idle included
    if (sl.logical == dram::AccessStream::kIdle) {
      advance_to(now_ + cfg_.timing.tRC);
      continue;
    }
    BankState& b = banks_[fbank];
    if (b.open_row >= 0) {
      // Unreachable from this loop (every ACT below ends precharged), but
      // fall back to the per-ACT path rather than assume.
      activate_precharge(fbank, sl.logical);
      ++issued;
      continue;
    }
    // From here on: activate_precharge(fbank, sl.logical) on a precharged
    // bank, statement for statement, with restore_row collapsed to a
    // stress-reset when the pass screen proved it empty.
    catch_up_refresh();
    if (refresh_epoch() != epoch) compute_skips();
    ++stats_.row_closed;
    Time t_act = std::max(now_, b.last_act + cfg_.timing.tRC);
    t_act = earliest_act_for_faw(t_act);
    device_.activate_compiled(fbank, sl.logical, sl.prow, skip[sl.urow] != 0,
                              t_act);
    record_act(t_act);
    b.open_row = sl.logical;
    b.last_act = t_act;
    energy_.activate_energy += cfg_.energy.act_pre;
    scratch_reqs_.clear();
    mitigation_->on_activate(fbank, sl.logical, scratch_reqs_);
    now_ = t_act + cfg_.timing.tRCD;
    execute_refresh_requests(scratch_reqs_);
    now_ = std::max(now_, b.last_act + cfg_.timing.tRAS);
    device_.precharge(fbank, now_);
    b.open_row = -1;
    scratch_reqs_.clear();
    mitigation_->on_precharge(fbank, sl.logical, scratch_reqs_);
    now_ += cfg_.timing.tRP;
    execute_refresh_requests(scratch_reqs_);
    ++issued;
  }
  return issued;
}

void MemoryController::advance_to(Time t) {
  now_ = std::max(now_, t);
  catch_up_refresh();
}

void MemoryController::close_all_banks() {
  for (std::uint32_t b = 0; b < banks_.size(); ++b) {
    BankState& bank = banks_[b];
    if (bank.open_row < 0) continue;
    const auto closed = static_cast<std::uint32_t>(bank.open_row);
    now_ = std::max(now_, bank.last_act + cfg_.timing.tRAS);
    device_.precharge(b, now_);
    bank.open_row = -1;
    scratch_reqs_.clear();
    mitigation_->on_precharge(b, closed, scratch_reqs_);
    now_ += cfg_.timing.tRP;
    execute_refresh_requests(scratch_reqs_);
  }
}

void MemoryController::set_row_bin(std::uint32_t fbank, std::uint32_t row,
                                   std::uint8_t bin) {
  DM_CHECK_MSG(bin < 8, "refresh bin out of range");
  bins_[static_cast<std::size_t>(fbank) * device_.geometry().rows + row] = bin;
}

std::uint8_t MemoryController::row_bin(std::uint32_t fbank,
                                       std::uint32_t row) const {
  return bins_[static_cast<std::size_t>(fbank) * device_.geometry().rows + row];
}

ReadResult MemoryController::scrub_block(const Address& a) {
  ReadResult r = read_block(a);
  if (r.status == ecc::DecodeStatus::kCorrected) write_block(a, r.data);
  return r;
}

EnergyStats MemoryController::energy() const {
  EnergyStats e = energy_;
  // mW × s = mJ; Energy is stored in pJ.
  e.background_energy =
      Energy::pj(cfg_.energy.background_mw * now_.as_s() * 1e9);
  return e;
}

}  // namespace densemem::ctrl
