// In-DRAM Targeted Row Refresh-style tracker.
//
// Models the DDR4-era vendor mitigation the paper alludes to when citing
// reports that "even state-of-the-art DDR4 DRAM chips are vulnerable" [57]:
// the chip tracks a small number of frequently-activated rows per bank
// (Misra–Gries summary, as a small CAM would) and refreshes their
// neighbours opportunistically on REF commands. Patterns with more distinct
// aggressors than tracker entries evict the true aggressors and bypass the
// protection — the TRRespass effect E7 demonstrates.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ctrl/mitigation.h"

namespace densemem::ctrl {

struct TrrConfig {
  std::uint32_t tracker_entries = 4;  ///< per-bank tracked aggressors
  std::uint32_t neighbors_per_ref = 2;///< victim refreshes piggybacked per REF
};

class Trr final : public Mitigation {
 public:
  Trr(TrrConfig cfg, AdjacencyFn adjacency)
      : cfg_(cfg), adjacency_(std::move(adjacency)) {}

  std::string name() const override { return "TRR"; }

  void on_activate(std::uint32_t fbank, std::uint32_t row,
                   std::vector<RefreshRequest>& out) override {
    (void)out;
    auto& table = tables_[fbank];
    // Misra–Gries frequent-items update.
    if (auto it = table.find(row); it != table.end()) {
      ++it->second;
      return;
    }
    if (table.size() < cfg_.tracker_entries) {
      table.emplace(row, 1);
      note(DecisionKind::kTrack, fbank, row);
      return;
    }
    // Decrement all; drop zeros. This is where many-sided patterns evict
    // the genuine aggressors.
    for (auto it = table.begin(); it != table.end();) {
      if (--it->second == 0) {
        note(DecisionKind::kEvict, fbank, it->first);
        it = table.erase(it);
      } else {
        ++it;
      }
    }
  }

  void on_ref_command(std::vector<RefreshRequest>& out) override {
    // Refresh neighbours of the hottest tracked row(s) across banks.
    // Banks are visited in ascending index order: tables_ is an
    // unordered_map, and when the refresh budget is smaller than the number
    // of active banks, hash-iteration order would decide which banks get
    // their victims refreshed — an order that differs across standard
    // library implementations, breaking cross-platform reproducibility of
    // golden outputs.
    std::vector<std::uint32_t> fbanks;
    fbanks.reserve(tables_.size());
    for (const auto& [fbank, table] : tables_) fbanks.push_back(fbank);
    std::sort(fbanks.begin(), fbanks.end());
    std::uint32_t budget = cfg_.neighbors_per_ref;
    for (std::uint32_t fbank : fbanks) {
      auto& table = tables_[fbank];
      std::uint32_t hottest = 0;
      std::uint64_t best = 0;
      for (const auto& [row, cnt] : table) {
        if (cnt > best) {
          best = cnt;
          hottest = row;
        }
      }
      if (best == 0) continue;
      for (std::uint32_t n : adjacency_(hottest)) {
        if (budget == 0) return;
        out.push_back({fbank, n});
        note_refresh(fbank, n, hottest);
        --budget;
      }
      table.erase(hottest);
    }
  }

  void on_window_reset() override { tables_.clear(); }

  std::uint64_t storage_bits() const override {
    // entries × (row address + counter) per bank; count banks seen.
    return static_cast<std::uint64_t>(tables_.size()) * cfg_.tracker_entries *
           (32 + 16);
  }

 private:
  TrrConfig cfg_;
  AdjacencyFn adjacency_;
  std::unordered_map<std::uint32_t, std::unordered_map<std::uint32_t, std::uint64_t>>
      tables_;
};

}  // namespace densemem::ctrl
