// ANVIL-style software detection (§II-C "other immediate solutions";
// Aweke et al., ASPLOS 2016 [10]).
//
// ANVIL samples last-level-cache-miss / row-buffer-miss addresses through
// hardware performance counters and, when a row's sampled activation
// frequency is suspicious, explicitly refreshes that row's neighbours. We
// model the performance-counter sampling as Bernoulli sampling of the
// activate stream: sampling catches concentrated hammering with high
// probability but has intrinsic detection latency, and low sampling rates
// can miss fast or distributed attacks — the behaviour E5/E7 quantify.
#pragma once

#include <unordered_map>

#include "common/rng.h"
#include "ctrl/mitigation.h"

namespace densemem::ctrl {

struct AnvilConfig {
  double sample_rate = 0.01;        ///< fraction of activates observed
  std::uint64_t detect_samples = 64;///< sampled hits before intervention
  std::uint64_t seed = 77;
};

class Anvil final : public Mitigation {
 public:
  Anvil(AnvilConfig cfg, AdjacencyFn adjacency)
      : cfg_(cfg), adjacency_(std::move(adjacency)), rng_(cfg.seed) {}

  std::string name() const override { return "ANVIL"; }

  void on_activate(std::uint32_t fbank, std::uint32_t row,
                   std::vector<RefreshRequest>& out) override {
    if (!rng_.bernoulli(cfg_.sample_rate)) return;
    note(DecisionKind::kSample, fbank, row);
    const std::uint64_t key = (static_cast<std::uint64_t>(fbank) << 32) | row;
    if (++sampled_[key] >= cfg_.detect_samples) {
      sampled_[key] = 0;
      ++interventions_;
      for (std::uint32_t n : adjacency_(row)) {
        out.push_back({fbank, n});
        note_refresh(fbank, n, row);
      }
    }
  }

  void on_window_reset() override { sampled_.clear(); }

  /// Software mechanism: no dedicated hardware tables.
  std::uint64_t storage_bits() const override { return 0; }

  std::uint64_t interventions() const { return interventions_; }

 private:
  AnvilConfig cfg_;
  AdjacencyFn adjacency_;
  Rng rng_;
  std::unordered_map<std::uint64_t, std::uint64_t> sampled_;
  std::uint64_t interventions_ = 0;
};

}  // namespace densemem::ctrl
