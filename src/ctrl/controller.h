// Memory controller: timing, refresh, ECC, energy, and mitigation hooks.
//
// The controller serializes commands per bank with the DDR timing
// constraints that matter for the paper's experiments — tRC bounds the
// hammer rate, tREFI/tRFC determine refresh downtime, tRCD/tCL/tRP set
// access latencies — and owns everything the paper locates in the
// controller: the refresh engine (standard, rate-multiplied, or
// RAIDR-style multirate), the ECC path (none / SECDED / BCH with check
// bits stored in-row and therefore subject to the same fault physics), and
// the RowHammer mitigation hooks.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/units.h"
#include "ctrl/energy.h"
#include "ctrl/mitigation.h"
#include "dram/access_stream.h"
#include "dram/device.h"
#include "dram/timing.h"
#include "ecc/bch.h"
#include "ecc/rs.h"
#include "ecc/hamming.h"

namespace densemem::ctrl {

enum class EccMode {
  kNone,
  kSecded,  ///< (72,64) Hamming per 64-bit word
  kBch,     ///< binary BCH per 512-bit block
  kRs,      ///< RS(72,64) over GF(256): chipkill-class symbol correction
};
enum class PagePolicy {
  kOpen,    ///< rows stay open until a conflicting access (row-buffer reuse)
  kClosed,  ///< auto-precharge after every column access
};
enum class RefreshMode {
  kStandard,   ///< every row once per tREFW, spread over REF commands
  kMultirate,  ///< RAIDR-style bins: row in bin k refreshed every 2^k windows
};

struct CtrlConfig {
  dram::Timing timing = dram::Timing::ddr3_1600();
  PagePolicy page_policy = PagePolicy::kOpen;
  EccMode ecc = EccMode::kNone;
  int bch_t = 4;  ///< BCH correction strength per 512-bit block (GF(2^10))
  RefreshMode refresh_mode = RefreshMode::kStandard;
  /// Whether mitigations may use the device's SPD adjacency disclosure; if
  /// false they fall back to the naive logical ±1 assumption (§II-C).
  bool use_spd_adjacency = true;
  EnergyParams energy;
};

struct CtrlStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;   ///< bank open on a different row
  std::uint64_t row_closed = 0;   ///< bank was precharged
  std::uint64_t ref_commands = 0;
  std::uint64_t rows_refreshed = 0;
  std::uint64_t rows_skipped_multirate = 0;
  std::uint64_t targeted_refreshes = 0;
  std::uint64_t ecc_clean = 0;
  std::uint64_t ecc_corrected_words = 0;
  std::uint64_t ecc_uncorrectable_blocks = 0;
  Time refresh_busy;   ///< time the rank spent executing REF (tRFC each)
  Time mitigation_busy;///< time spent on mitigation-issued row refreshes
};

/// One 64-byte cache-block read, after ECC.
struct ReadResult {
  std::array<std::uint64_t, 8> data{};
  ecc::DecodeStatus status = ecc::DecodeStatus::kClean;
  int corrected_bits = 0;
};

/// Build an adjacency provider for mitigations: SPD-informed (true physical
/// neighbours) or the naive logical ±1 guess. Keeps a pointer to the device,
/// which must outlive the returned function.
AdjacencyFn make_adjacency(dram::Device& device, bool use_spd);

class MemoryController {
 public:
  MemoryController(dram::Device& device, CtrlConfig cfg,
                   std::unique_ptr<Mitigation> mitigation = nullptr);

  const CtrlConfig& config() const { return cfg_; }
  const CtrlStats& stats() const { return stats_; }
  Time now() const { return now_; }
  dram::Device& device() { return device_; }
  Mitigation& mitigation() { return *mitigation_; }

  /// Data blocks addressable per row (ECC check words reduce capacity —
  /// the paper's "DRAM capacity overhead" of stronger ECC, measured).
  std::uint32_t blocks_per_row() const { return blocks_per_row_; }
  /// Fraction of row capacity consumed by ECC check bits.
  double ecc_capacity_overhead() const;

  /// The adjacency function mitigations were constructed with.
  AdjacencyFn adjacency() const;

  // --- Cache-block access (col = block index within row) ------------------
  ReadResult read_block(const dram::Address& a);
  void write_block(const dram::Address& a,
                   const std::array<std::uint64_t, 8>& data);

  /// One hammer iteration: activate `row`, then precharge (row-conflict
  /// forced). Exercises the full mitigation-visible path.
  void activate_precharge(std::uint32_t fbank, std::uint32_t row);

  /// Execute ONE pass of a compiled stream (at most `max_acts` activations;
  /// the budget is checked before every slot, idle slots included, exactly
  /// like the per-slot replay loops). Each ACT slot is bit-identical to
  /// activate_precharge(fbank, slot): same timing evolution, stats, energy,
  /// refresh catch-up, and mitigation hook sequence. The speedup comes from
  /// the per-(row, pass) restore screen — stress deposited by the pass is
  /// precompiled, so one screen consult per touched row proves whole passes
  /// of restores are pure stress-resets — with precompiled physical rows.
  /// REF or mitigation-issued refreshes landing mid-pass deposit stress the
  /// bound did not count; the executor detects them via the device's
  /// refresh stats and re-screens before the next ACT. Returns activations
  /// issued (0 for a stream with no ACT slots — callers own loop
  /// termination). The stream's bank must be precharged.
  std::uint64_t run_stream(const dram::AccessStream& s, std::uint64_t max_acts);

  /// Advance the wall clock, executing any refreshes that fall due.
  void advance_to(Time t);
  /// Precharge all banks (e.g. before measuring module contents).
  void close_all_banks();

  // --- Multirate refresh (RAIDR/AVATAR substrate) --------------------------
  /// Assign a logical row to refresh bin k (refreshed every 2^k windows).
  void set_row_bin(std::uint32_t fbank, std::uint32_t row, std::uint8_t bin);
  std::uint8_t row_bin(std::uint32_t fbank, std::uint32_t row) const;

  /// Read-correct-writeback of one block (scrubbing primitive; AVATAR's
  /// online profiling consumes the returned ECC outcome).
  ReadResult scrub_block(const dram::Address& a);

  /// Total energy so far, including background power up to now().
  EnergyStats energy() const;

 private:
  struct BankState {
    std::int64_t open_row = -1;
    Time last_act;           ///< start time of the last ACT
    std::uint32_t ref_ptr = 0;  ///< multirate refresh row pointer
  };

  void catch_up_refresh();
  /// Rank-level four-activate-window constraint: at most 4 ACTs per tFAW.
  Time earliest_act_for_faw(Time candidate) const;
  void record_act(Time at);
  /// Auto-precharge helper for the closed-page policy.
  void auto_precharge(std::uint32_t fbank);
  void issue_ref_command(Time at);
  void execute_refresh_requests(const std::vector<RefreshRequest>& reqs);
  /// Ensure `row` is open in `fbank`; advances now_ per timing. Fires
  /// mitigation hooks on the precharge/activate edges.
  void open_row_for_access(std::uint32_t fbank, std::uint32_t row);
  std::uint32_t device_word_base(std::uint32_t block) const;

  dram::Device& device_;
  CtrlConfig cfg_;
  std::unique_ptr<Mitigation> mitigation_;
  std::optional<ecc::BchCode> bch_;
  std::optional<ecc::RsCode> rs_;
  std::uint32_t blocks_per_row_;
  std::uint32_t words_per_block_stride_;
  std::uint32_t refs_per_window_;
  std::uint32_t ref_rows_acc_ = 0;  ///< spreads rows evenly across REFs
  Time now_;
  Time next_ref_;
  Time next_window_;
  std::uint64_t window_index_ = 0;
  std::vector<BankState> banks_;
  std::array<Time, 4> recent_acts_{};  ///< ring of the last four ACT times
  std::size_t recent_act_idx_ = 0;
  std::vector<std::uint8_t> bins_;  ///< multirate bin per (bank, row)
  CtrlStats stats_;
  /// Scratch buffer reused across mitigation hook calls; every use site
  /// clears, fills, and drains it before the next hook can fire (the
  /// request-executing paths never re-enter request generation).
  std::vector<RefreshRequest> scratch_reqs_;
  mutable EnergyStats energy_;
};

}  // namespace densemem::ctrl
