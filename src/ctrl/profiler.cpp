#include "ctrl/profiler.h"

#include "common/check.h"

namespace densemem::ctrl {

ProfileReport RetentionProfiler::profile(dram::Device& device,
                                         Time start) const {
  DM_CHECK_MSG(cfg_.rounds >= 1, "profiler needs at least one round");
  DM_CHECK_MSG(!cfg_.patterns.empty(), "profiler needs at least one pattern");
  ProfileReport report;
  Time t = start;
  const dram::Geometry& g = device.geometry();
  const bool had_events = device.config().record_flip_events;
  DM_CHECK_MSG(had_events,
               "profiler needs the device flip-event log "
               "(DeviceConfig::record_flip_events)");

  for (int round = 0; round < cfg_.rounds; ++round) {
    std::size_t new_rows = 0;
    for (const auto pattern : cfg_.patterns) {
      device.fill_all(pattern, t);
      t += cfg_.target_interval;
      const std::size_t ev0 = device.flip_events().size();
      // Restore every row that could have failed; restoring commits the
      // pending retention faults, which land in the event log.
      for (std::uint32_t b = 0; b < dram::total_banks(g); ++b)
        for (std::uint32_t r : device.fault_map().leaky_rows(b))
          device.refresh_row(b, r, t);
      const auto& events = device.flip_events();
      for (std::size_t i = ev0; i < events.size(); ++i) {
        if (events[i].cause != dram::FlipCause::kRetention) continue;
        ++report.cells_observed_failing;
        if (report.weak_rows.insert({events[i].bank, events[i].logical_row})
                .second)
          ++new_rows;
      }
    }
    report.new_rows_per_round.push_back(new_rows);
  }
  report.profiling_time = t - start;
  return report;
}

void RetentionProfiler::apply_bins(const ProfileReport& report,
                                   MemoryController& mc) const {
  const dram::Geometry& g = mc.device().geometry();
  for (std::uint32_t b = 0; b < dram::total_banks(g); ++b)
    for (std::uint32_t r = 0; r < g.rows; ++r)
      mc.set_row_bin(b, r, cfg_.slow_bin);
  for (const auto& [bank, row] : report.weak_rows) mc.set_row_bin(bank, row, 0);
}

std::uint64_t RetentionProfiler::avatar_scrub(
    MemoryController& mc,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& rows) const {
  DM_CHECK_MSG(mc.config().ecc != EccMode::kNone,
               "AVATAR scrubbing needs an ECC-enabled controller");
  std::uint64_t upgrades = 0;
  for (const auto& [bank, row] : rows) {
    dram::Address a = dram::address_of(mc.device().geometry(), bank, row);
    bool corrected = false;
    for (std::uint32_t blk = 0; blk < mc.blocks_per_row(); ++blk) {
      a.col_word = blk;
      corrected |=
          mc.scrub_block(a).status == ecc::DecodeStatus::kCorrected;
    }
    mc.close_all_banks();
    if (corrected && mc.row_bin(bank, row) != 0) {
      mc.set_row_bin(bank, row, 0);
      ++upgrades;
    }
  }
  return upgrades;
}

}  // namespace densemem::ctrl
