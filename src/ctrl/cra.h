// CRA — Counter-based Row Activation tracking (the sixth §II-C long-term
// countermeasure; cf. Kim et al., IEEE CAL 2015 [50]).
//
// The controller keeps an activation counter per row; when a row's count
// within the current refresh window reaches the threshold, its neighbours
// are refreshed and the counter resets. Deterministic protection, but the
// storage cost — a counter for every row in the system — is exactly the
// "very large hardware area and power" objection the paper raises.
#pragma once

#include <unordered_map>

#include "ctrl/mitigation.h"

namespace densemem::ctrl {

struct CraConfig {
  std::uint64_t threshold = 32768;  ///< activations before neighbour refresh
  std::uint32_t counter_bits = 16;  ///< per-row counter width (storage model)
  std::uint64_t rows_total = 0;     ///< total rows tracked (storage model)
};

class Cra final : public Mitigation {
 public:
  Cra(CraConfig cfg, AdjacencyFn adjacency)
      : cfg_(cfg), adjacency_(std::move(adjacency)) {}

  std::string name() const override { return "CRA"; }

  void on_activate(std::uint32_t fbank, std::uint32_t row,
                   std::vector<RefreshRequest>& out) override {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(fbank) << 32) | row;
    auto [it, inserted] = counters_.try_emplace(key, 0);
    if (inserted) note(DecisionKind::kTrack, fbank, row);
    if (++it->second >= cfg_.threshold) {
      it->second = 0;
      for (std::uint32_t n : adjacency_(row)) {
        out.push_back({fbank, n});
        note_refresh(fbank, n, row);
      }
    }
  }

  void on_window_reset() override { counters_.clear(); }

  std::uint64_t storage_bits() const override {
    return cfg_.rows_total * cfg_.counter_bits;
  }

 private:
  CraConfig cfg_;
  AdjacencyFn adjacency_;
  std::unordered_map<std::uint64_t, std::uint64_t> counters_;
};

}  // namespace densemem::ctrl
