// RowHammer mitigation interface.
//
// A mitigation observes the controller's command stream (activates,
// precharges, periodic REF ticks) and requests targeted refreshes of victim
// rows. The controller decides *which rows are neighbours* via an adjacency
// provider — backed either by the device's SPD disclosure or by the naive
// logical ±1 assumption — reproducing the deployment question of §II-C.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace densemem::ctrl {

/// Maps a logical row to the logical rows believed physically adjacent.
using AdjacencyFn =
    std::function<std::vector<std::uint32_t>(std::uint32_t row)>;

/// A mitigation's request to refresh a specific row of a specific bank.
struct RefreshRequest {
  std::uint32_t fbank;
  std::uint32_t row;
};

class Mitigation {
 public:
  virtual ~Mitigation() = default;

  virtual std::string name() const = 0;

  /// Observe an activate. Append any rows to target-refresh to `out`.
  virtual void on_activate(std::uint32_t fbank, std::uint32_t row,
                           std::vector<RefreshRequest>& out) = 0;

  /// Observe the precharge closing `row` (PARA triggers here, per §II-C:
  /// "when the memory controller closes a row ... it, with a very low
  /// probability, refreshes the adjacent rows").
  virtual void on_precharge(std::uint32_t fbank, std::uint32_t row,
                            std::vector<RefreshRequest>& out) {
    (void)fbank;
    (void)row;
    (void)out;
  }

  /// Observe a periodic REF command (in-DRAM TRR piggybacks here).
  virtual void on_ref_command(std::vector<RefreshRequest>& out) { (void)out; }

  /// Refresh window rolled over: per-window state (counters) resets.
  virtual void on_window_reset() {}

  /// Hardware state the mitigation needs, in bits (the paper's §II-C
  /// objection to counter-based tracking is exactly this number).
  virtual std::uint64_t storage_bits() const { return 0; }
};

/// No-op baseline.
class NoMitigation final : public Mitigation {
 public:
  std::string name() const override { return "none"; }
  void on_activate(std::uint32_t, std::uint32_t,
                   std::vector<RefreshRequest>&) override {}
};

}  // namespace densemem::ctrl
