// RowHammer mitigation interface.
//
// A mitigation observes the controller's command stream (activates,
// precharges, periodic REF ticks) and requests targeted refreshes of victim
// rows. The controller decides *which rows are neighbours* via an adjacency
// provider — backed either by the device's SPD disclosure or by the naive
// logical ±1 assumption — reproducing the deployment question of §II-C.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace densemem::ctrl {

/// Maps a logical row to the logical rows believed physically adjacent.
using AdjacencyFn =
    std::function<std::vector<std::uint32_t>(std::uint32_t row)>;

/// A mitigation's request to refresh a specific row of a specific bank.
struct RefreshRequest {
  std::uint32_t fbank;
  std::uint32_t row;
};

/// What a mitigation just decided about a row. These are the observable
/// decision points a post-mortem needs to classify a flip that got through:
/// was the aggressor ever seen (tracked/sampled), was it evicted before the
/// tracker could act, was the victim refreshed but too late?
enum class DecisionKind {
  kTrack,           ///< row entered a tracker table (CAM slot, MG entry, counter)
  kSample,          ///< a sampler inspected this activation of the row
  kEvict,           ///< row was involuntarily dropped from the tracker
  kNeighborRefresh  ///< row is being targeted-refreshed (source_row triggered it)
};

struct DecisionRecord {
  DecisionKind kind = DecisionKind::kTrack;
  std::uint32_t fbank = 0;
  std::uint32_t row = 0;         ///< subject row of the decision
  std::uint32_t source_row = 0;  ///< for kNeighborRefresh: the aggressor whose
                                 ///< neighbourhood triggered it; else == row
};

/// Attach via Mitigation::set_observer. Called synchronously from the
/// controller's command path (mitigations are job-local; no locking implied).
class DecisionObserver {
 public:
  virtual ~DecisionObserver() = default;
  virtual void on_decision(const DecisionRecord& rec) = 0;
};

class Mitigation {
 public:
  virtual ~Mitigation() = default;

  /// Attach a decision sink. Null (the default) keeps the hot path to one
  /// pointer test per decision point.
  void set_observer(DecisionObserver* obs) { observer_ = obs; }

  virtual std::string name() const = 0;

  /// Observe an activate. Append any rows to target-refresh to `out`.
  virtual void on_activate(std::uint32_t fbank, std::uint32_t row,
                           std::vector<RefreshRequest>& out) = 0;

  /// Observe the precharge closing `row` (PARA triggers here, per §II-C:
  /// "when the memory controller closes a row ... it, with a very low
  /// probability, refreshes the adjacent rows").
  virtual void on_precharge(std::uint32_t fbank, std::uint32_t row,
                            std::vector<RefreshRequest>& out) {
    (void)fbank;
    (void)row;
    (void)out;
  }

  /// Observe a periodic REF command (in-DRAM TRR piggybacks here).
  virtual void on_ref_command(std::vector<RefreshRequest>& out) { (void)out; }

  /// Refresh window rolled over: per-window state (counters) resets.
  virtual void on_window_reset() {}

  /// Hardware state the mitigation needs, in bits (the paper's §II-C
  /// objection to counter-based tracking is exactly this number).
  virtual std::uint64_t storage_bits() const { return 0; }

 protected:
  void note(DecisionKind kind, std::uint32_t fbank, std::uint32_t row) {
    if (observer_) observer_->on_decision({kind, fbank, row, row});
  }
  void note_refresh(std::uint32_t fbank, std::uint32_t row,
                    std::uint32_t source_row) {
    if (observer_) {
      observer_->on_decision(
          {DecisionKind::kNeighborRefresh, fbank, row, source_row});
    }
  }

 private:
  DecisionObserver* observer_ = nullptr;
};

/// No-op baseline.
class NoMitigation final : public Mitigation {
 public:
  std::string name() const override { return "none"; }
  void on_activate(std::uint32_t, std::uint32_t,
                   std::vector<RefreshRequest>&) override {}
};

}  // namespace densemem::ctrl
