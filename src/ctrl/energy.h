// DRAM energy accounting (rank level, DDR3-class ballpark figures).
//
// Absolute joules are not the claim — the paper's refresh-overhead argument
// (§II-C) is about *relative* energy cost of mitigations, which these
// per-operation energies reproduce.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace densemem::ctrl {

struct EnergyParams {
  Energy act_pre = Energy::nj(20.0);   ///< one activate/precharge pair
  Energy read_block = Energy::nj(12.0);///< 64-byte read burst
  Energy write_block = Energy::nj(14.0);
  Energy refresh_row = Energy::nj(1.2);///< per row restored by REF
  double background_mw = 120.0;        ///< static + standby power
};

struct EnergyStats {
  Energy activate_energy;
  Energy rw_energy;
  Energy refresh_energy;          ///< periodic REF
  Energy targeted_refresh_energy; ///< mitigation-issued row refreshes
  Energy background_energy;

  Energy total() const {
    return activate_energy + rw_energy + refresh_energy +
           targeted_refresh_energy + background_energy;
  }
};

}  // namespace densemem::ctrl
