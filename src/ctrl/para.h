// PARA — Probabilistic Adjacent Row Activation (§II-C, from ISCA'14 [53]).
//
// On every row close, with probability p the mitigation refreshes the rows
// adjacent to the closed row. Stateless (zero storage), and the failure
// probability of a victim after N aggressor activations decays as
// (1 - p)^N — see analysis::para_failure_probability for the closed form
// the benches cross-check against Monte Carlo.
#pragma once

#include "common/rng.h"
#include "ctrl/mitigation.h"

namespace densemem::ctrl {

struct ParaConfig {
  double probability = 0.001;  ///< p: refresh-neighbours chance per close
  std::uint64_t seed = 99;
};

class Para final : public Mitigation {
 public:
  Para(ParaConfig cfg, AdjacencyFn adjacency)
      : cfg_(cfg), adjacency_(std::move(adjacency)), rng_(cfg.seed) {}

  std::string name() const override { return "PARA"; }

  void on_activate(std::uint32_t, std::uint32_t,
                   std::vector<RefreshRequest>&) override {}

  void on_precharge(std::uint32_t fbank, std::uint32_t row,
                    std::vector<RefreshRequest>& out) override {
    if (!rng_.bernoulli(cfg_.probability)) return;
    for (std::uint32_t n : adjacency_(row)) {
      out.push_back({fbank, n});
      note_refresh(fbank, n, row);
    }
  }

  std::uint64_t storage_bits() const override { return 0; }

 private:
  ParaConfig cfg_;
  AdjacencyFn adjacency_;
  Rng rng_;
};

}  // namespace densemem::ctrl
