// Request queue + FR-FCFS scheduling on top of the memory controller.
//
// The controller itself executes one command stream in order; real
// controllers buffer requests and reorder them — First-Ready FCFS issues
// row-buffer hits before older row misses, which is what makes open rows
// worth keeping open (and, incidentally, what an attacker's access pattern
// must defeat to hammer: hence the dummy-row trick in the single-sided
// pattern). The scheduler drains a request batch against the controller
// and reports the service time and hit statistics under each policy.
#pragma once

#include <cstdint>
#include <vector>

#include "ctrl/controller.h"

namespace densemem::ctrl {

enum class SchedPolicy {
  kFcfs,    ///< strict arrival order
  kFrFcfs,  ///< row hits first, then oldest
};

const char* sched_policy_name(SchedPolicy p);

struct Request {
  dram::Address addr;
  bool is_write = false;
  std::array<std::uint64_t, 8> data{};  ///< payload for writes
  std::uint64_t id = 0;                 ///< arrival order (set by enqueue)
};

struct SchedStats {
  std::uint64_t served = 0;
  std::uint64_t row_hits = 0;
  Time service_time;            ///< controller time consumed by the drain
  double mean_queue_latency_ns = 0.0;  ///< avg (finish - arrival position)
};

/// Batch scheduler: enqueue requests, then drain them through the
/// controller under the chosen policy. Single-channel, in-order issue of
/// the *selected* request (selection is where the policy acts).
class RequestScheduler {
 public:
  RequestScheduler(MemoryController& mc, SchedPolicy policy)
      : mc_(mc), policy_(policy) {}

  void enqueue(Request r);
  std::size_t pending() const { return queue_.size(); }

  /// Issue every queued request; returns drain statistics. Read results are
  /// appended to `read_data` (in service order) if non-null.
  SchedStats drain(std::vector<ReadResult>* read_data = nullptr);

 private:
  /// Index of the next request to issue under the policy.
  std::size_t pick() const;

  MemoryController& mc_;
  SchedPolicy policy_;
  std::vector<Request> queue_;
  std::uint64_t next_id_ = 0;
};

}  // namespace densemem::ctrl
