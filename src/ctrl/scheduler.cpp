#include "ctrl/scheduler.h"

#include <algorithm>

#include "common/check.h"

namespace densemem::ctrl {

const char* sched_policy_name(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kFcfs: return "FCFS";
    case SchedPolicy::kFrFcfs: return "FR-FCFS";
  }
  return "?";
}

void RequestScheduler::enqueue(Request r) {
  r.id = next_id_++;
  queue_.push_back(std::move(r));
}

std::size_t RequestScheduler::pick() const {
  DM_DCHECK(!queue_.empty());
  if (policy_ == SchedPolicy::kFcfs) {
    // Oldest request (queue is append-only; erase keeps order).
    std::size_t best = 0;
    for (std::size_t i = 1; i < queue_.size(); ++i)
      if (queue_[i].id < queue_[best].id) best = i;
    return best;
  }
  // FR-FCFS: oldest *row hit* if any bank has its row open; else oldest.
  std::size_t best_hit = queue_.size();
  std::size_t best_any = 0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const auto& r = queue_[i];
    if (queue_[i].id < queue_[best_any].id) best_any = i;
    const auto open =
        mc_.device().open_row(dram::flat_bank(mc_.device().geometry(), r.addr));
    const bool hit = open.has_value() && *open == r.addr.row;
    if (hit && (best_hit == queue_.size() || r.id < queue_[best_hit].id))
      best_hit = i;
  }
  return best_hit != queue_.size() ? best_hit : best_any;
}

SchedStats RequestScheduler::drain(std::vector<ReadResult>* read_data) {
  SchedStats stats;
  const Time t0 = mc_.now();
  const auto hits0 = mc_.stats().row_hits;
  double latency_sum = 0.0;
  const std::size_t total = queue_.size();
  while (!queue_.empty()) {
    const std::size_t i = pick();
    const Request r = queue_[i];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
    if (r.is_write) {
      mc_.write_block(r.addr, r.data);
    } else {
      const auto res = mc_.read_block(r.addr);
      if (read_data != nullptr) read_data->push_back(res);
    }
    ++stats.served;
    latency_sum += (mc_.now() - t0).as_ns();
  }
  stats.row_hits = mc_.stats().row_hits - hits0;
  stats.service_time = mc_.now() - t0;
  stats.mean_queue_latency_ns =
      total ? latency_sum / static_cast<double>(total) : 0.0;
  return stats;
}

}  // namespace densemem::ctrl
