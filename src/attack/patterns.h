// Hammer access-pattern kernels — the shapes user-level RowHammer code
// actually issues (§II-A/§II-B; cf. the released rowhammer test program [3]
// and its Project-Zero enhancement [4]).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace densemem::attack {

enum class PatternKind {
  kSingleSided,  ///< one aggressor adjacent to the victim + a far dummy row
                 ///< (forces row conflicts, as the original test does)
  kDoubleSided,  ///< aggressors on both sides of the victim
  kOneLocation,  ///< hammer a single row only
  kManySided,    ///< double-sided pair + decoy aggressors (TRR eviction)
  kHalfDouble,   ///< aggressors at distance 2: relies on the mitigation's own
                 ///< targeted refreshes of the distance-1 rows to hammer the
                 ///< victim (the post-TRR attack generation)
  kRandom,       ///< random rows each iteration (background "noise" baseline)
};

const char* pattern_name(PatternKind k);

struct PatternConfig {
  PatternKind kind = PatternKind::kDoubleSided;
  std::uint32_t victim_row = 0;
  std::uint32_t rows_in_bank = 0;    ///< for clamping / random generation
  std::uint32_t n_aggressors = 8;    ///< kManySided total aggressor count
  std::uint32_t decoy_stride = 16;   ///< spacing of kManySided decoy rows
  std::uint64_t seed = 1;            ///< kRandom row selection
};

/// Produces the per-iteration aggressor row sequence for a pattern. One
/// "iteration" touches every aggressor once (so iteration counts are
/// comparable across patterns in per-row activation terms, divide by the
/// aggressor multiplicity where needed).
class HammerPattern {
 public:
  explicit HammerPattern(PatternConfig cfg);

  const PatternConfig& config() const { return cfg_; }
  /// Fixed aggressor set (empty for kRandom, which draws fresh rows).
  const std::vector<std::uint32_t>& aggressors() const { return aggressors_; }
  /// Rows the attacker does NOT control but expects flips in (the victim and
  /// other neighbours of the aggressors).
  std::vector<std::uint32_t> expected_victims() const;

  /// Rows to activate for iteration `i` (appends to `out`).
  void iteration_rows(std::uint64_t i, std::vector<std::uint32_t>& out);

 private:
  PatternConfig cfg_;
  std::vector<std::uint32_t> aggressors_;
  Rng rng_;
};

}  // namespace densemem::attack
