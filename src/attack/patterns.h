// Hammer access-pattern kernels — the shapes user-level RowHammer code
// actually issues (§II-A/§II-B; cf. the released rowhammer test program [3]
// and its Project-Zero enhancement [4]).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace densemem::attack {

enum class PatternKind {
  kSingleSided,  ///< one aggressor adjacent to the victim + a far dummy row
                 ///< (forces row conflicts, as the original test does)
  kDoubleSided,  ///< aggressors on both sides of the victim
  kOneLocation,  ///< hammer a single row only
  kManySided,    ///< double-sided pair + decoy aggressors (TRR eviction)
  kHalfDouble,   ///< aggressors at distance 2: relies on the mitigation's own
                 ///< targeted refreshes of the distance-1 rows to hammer the
                 ///< victim (the post-TRR attack generation)
  kRandom,       ///< random rows each iteration (background "noise" baseline)
};

const char* pattern_name(PatternKind k);

struct PatternConfig {
  PatternKind kind = PatternKind::kDoubleSided;
  std::uint32_t victim_row = 0;
  std::uint32_t rows_in_bank = 0;    ///< for clamping / random generation
  std::uint32_t n_aggressors = 8;    ///< kManySided total aggressor count
  std::uint32_t decoy_stride = 16;   ///< spacing of kManySided decoy rows
  std::uint64_t seed = 1;            ///< kRandom row selection
};

/// Produces the per-iteration aggressor row sequence for a pattern. One
/// "iteration" touches every aggressor once (so iteration counts are
/// comparable across patterns in per-row activation terms, divide by the
/// aggressor multiplicity where needed).
class HammerPattern {
 public:
  explicit HammerPattern(PatternConfig cfg);

  const PatternConfig& config() const { return cfg_; }
  /// Fixed aggressor set. CONTRACT: empty for kRandom, which has no fixed
  /// aggressors — it draws two fresh rows per iteration from a private
  /// stream. Because expected_victims() derives from this set, it is also
  /// empty for kRandom; callers that need a verification sweep for kRandom
  /// must use draw_victims() instead.
  const std::vector<std::uint32_t>& aggressors() const { return aggressors_; }
  /// Rows the attacker does NOT control but expects flips in (the victim and
  /// other neighbours of the aggressors). Empty for kRandom — see
  /// aggressors() for the contract and draw_victims() for the alternative.
  std::vector<std::uint32_t> expected_victims() const;

  /// kRandom's victim set: replays the first `n_draws` rows of the random
  /// draw stream from scratch (a fresh clone of the generator — the
  /// pattern's own iteration state is not consumed) and returns the
  /// distance-1..2 neighbours of those rows, minus the rows themselves.
  /// For every other kind this is exactly expected_victims().
  std::vector<std::uint32_t> draw_victims(std::uint64_t n_draws) const;

  /// Rows to activate for iteration `i` (appends to `out`).
  void iteration_rows(std::uint64_t i, std::vector<std::uint32_t>& out);

 private:
  PatternConfig cfg_;
  std::vector<std::uint32_t> aggressors_;
  Rng rng_;
};

}  // namespace densemem::attack
