#include "attack/attacker.h"

#include <bit>
#include <cstdlib>

namespace densemem::attack {

std::uint64_t Attacker::expected_word(dram::Device& dev, std::uint32_t row,
                                      std::uint32_t block,
                                      std::uint32_t w) const {
  return dev.pattern_word(row, block * 8 + w);
}

std::uint64_t Attacker::check_row(ctrl::MemoryController& mc,
                                  std::uint32_t row) {
  std::uint64_t flipped_bits = 0;
  dram::Address a = dram::address_of(mc.device().geometry(), cfg_.fbank, row);
  for (std::uint32_t blk = 0; blk < mc.blocks_per_row(); ++blk) {
    a.col_word = blk;
    const auto r = mc.read_block(a);
    for (std::uint32_t w = 0; w < 8; ++w) {
      const std::uint64_t diff =
          r.data[w] ^ expected_word(mc.device(), row, blk, w);
      flipped_bits += static_cast<std::uint64_t>(std::popcount(diff));
    }
  }
  return flipped_bits;
}

AttackResult Attacker::run(ctrl::MemoryController& mc) {
  dram::Device& dev = mc.device();
  AttackResult res;

  // Prepare victim data. With ECC enabled the check words must be
  // consistent, so seed the pattern through the controller's write path for
  // all rows the attack will verify; otherwise the background pattern
  // suffices.
  dev.fill_all(cfg_.victim_data, mc.now());
  HammerPattern pattern(cfg_.pattern);
  const auto victims = pattern.expected_victims();
  if (mc.config().ecc != ctrl::EccMode::kNone) {
    dram::Address a = dram::address_of(dev.geometry(), cfg_.fbank, 0);
    for (std::uint32_t row : victims) {
      a.row = row;
      for (std::uint32_t blk = 0; blk < mc.blocks_per_row(); ++blk) {
        a.col_word = blk;
        std::array<std::uint64_t, 8> d{};
        for (std::uint32_t w = 0; w < 8; ++w)
          d[w] = expected_word(dev, row, blk, w);
        mc.write_block(a, d);
      }
    }
    mc.close_all_banks();
  }

  const auto stats0 = dev.stats();
  const auto cstats0 = mc.stats();
  const std::size_t events0 = dev.flip_events().size();
  const Time t0 = mc.now();

  std::vector<std::uint32_t> rows;
  for (std::uint64_t it = 0; it < cfg_.max_iterations; ++it) {
    rows.clear();
    pattern.iteration_rows(it, rows);
    for (std::uint32_t r : rows) mc.activate_precharge(cfg_.fbank, r);
    res.iterations_run = it + 1;

    const bool last = (it + 1 == cfg_.max_iterations);
    if ((cfg_.check_every != 0 && (it + 1) % cfg_.check_every == 0) || last) {
      std::uint64_t found = 0;
      for (std::uint32_t v : victims) found += check_row(mc, v);
      mc.close_all_banks();
      if (found > res.observed_flips) {
        res.observed_flips = found;
        if (!res.first_flip_ms) res.first_flip_ms = mc.now().as_ms();
        if (cfg_.stop_at_first_flip) break;
      }
    }
  }

  const auto& stats1 = dev.stats();
  const auto& cstats1 = mc.stats();
  res.activates = stats1.activates - stats0.activates;
  res.raw_disturb_flips = stats1.disturb_flips - stats0.disturb_flips;
  res.ecc_corrected_words =
      cstats1.ecc_corrected_words - cstats0.ecc_corrected_words;
  res.ecc_uncorrectable_blocks =
      cstats1.ecc_uncorrectable_blocks - cstats0.ecc_uncorrectable_blocks;
  res.flips_1to0 = stats1.flips_1to0 - stats0.flips_1to0;
  res.flips_0to1 = stats1.flips_0to1 - stats0.flips_0to1;
  res.elapsed_ms = (mc.now() - t0).as_ms();

  if (dev.config().record_flip_events && !pattern.aggressors().empty()) {
    const auto& ev = dev.flip_events();
    for (std::size_t i = events0; i < ev.size(); ++i) {
      std::uint32_t best = ~0u;
      for (std::uint32_t a : pattern.aggressors()) {
        const std::uint32_t d =
            ev[i].logical_row > a ? ev[i].logical_row - a : a - ev[i].logical_row;
        best = std::min(best, d);
      }
      ++res.flips_by_distance[best];
    }
  }
  return res;
}

}  // namespace densemem::attack
