// Attack driver: runs a hammer pattern through the memory controller and
// measures what the attacker observes — bit flips in rows it never wrote,
// time to the first flip, and where the flips land (§II-A/§II-B).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "attack/patterns.h"
#include "ctrl/controller.h"

namespace densemem::attack {

struct AttackConfig {
  PatternConfig pattern;
  std::uint32_t fbank = 0;
  std::uint64_t max_iterations = 200000;
  /// Read-and-verify the victim rows every N iterations (0 = only at the
  /// end). Checking activates the victim row, which restores its charge —
  /// the same trade-off a real attack's verification loop faces.
  std::uint64_t check_every = 0;
  bool stop_at_first_flip = false;
  dram::BackgroundPattern victim_data = dram::BackgroundPattern::kOnes;
};

struct AttackResult {
  std::uint64_t iterations_run = 0;
  std::uint64_t activates = 0;
  /// Bit flips the attacker observed by reading victim rows (post-ECC if
  /// the controller has ECC enabled — corrected flips are invisible here).
  std::uint64_t observed_flips = 0;
  /// Raw flips the device committed (ground truth, incl. ECC-hidden ones).
  std::uint64_t raw_disturb_flips = 0;
  std::uint64_t ecc_corrected_words = 0;
  std::uint64_t ecc_uncorrectable_blocks = 0;
  std::optional<double> first_flip_ms;  ///< simulated time of first observation
  double elapsed_ms = 0.0;
  /// Raw flips by distance from the nearest aggressor row (needs the device
  /// flip-event log; 1 = adjacent). Key 0 means "in an aggressor row".
  std::map<std::uint32_t, std::uint64_t> flips_by_distance;
  std::uint64_t flips_1to0 = 0;
  std::uint64_t flips_0to1 = 0;
};

class Attacker {
 public:
  explicit Attacker(AttackConfig cfg) : cfg_(cfg) {}

  /// Prepares victim data, hammers, verifies. The controller (and its
  /// device) are mutated; pass a fresh pair per trial for independence.
  AttackResult run(ctrl::MemoryController& mc);

 private:
  /// Read every block of `row` and count bits differing from the prepared
  /// pattern.
  std::uint64_t check_row(ctrl::MemoryController& mc, std::uint32_t row);
  std::uint64_t expected_word(dram::Device& dev, std::uint32_t row,
                              std::uint32_t block, std::uint32_t w) const;

  AttackConfig cfg_;
};

}  // namespace densemem::attack
