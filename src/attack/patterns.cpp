#include "attack/patterns.h"

#include <algorithm>
#include <set>

#include "common/check.h"

namespace densemem::attack {

const char* pattern_name(PatternKind k) {
  switch (k) {
    case PatternKind::kSingleSided: return "single-sided";
    case PatternKind::kDoubleSided: return "double-sided";
    case PatternKind::kOneLocation: return "one-location";
    case PatternKind::kManySided: return "many-sided";
    case PatternKind::kHalfDouble: return "half-double";
    case PatternKind::kRandom: return "random";
  }
  return "?";
}

HammerPattern::HammerPattern(PatternConfig cfg)
    : cfg_(cfg), rng_(hash_coords(cfg.seed, 0x41545041 /* "ATPA" */)) {
  DM_CHECK_MSG(cfg_.rows_in_bank >= 8, "pattern needs a plausible bank");
  DM_CHECK_MSG(cfg_.victim_row >= 2 && cfg_.victim_row + 2 < cfg_.rows_in_bank,
               "victim must have two rows of margin on each side");
  const std::uint32_t v = cfg_.victim_row;
  switch (cfg_.kind) {
    case PatternKind::kSingleSided: {
      // Aggressor next to the victim plus a far dummy row: alternating
      // between them defeats the row buffer, like the original user-level
      // test's two-address loop.
      const std::uint32_t dummy =
          (v + cfg_.rows_in_bank / 2) % cfg_.rows_in_bank;
      aggressors_ = {v + 1, dummy};
      break;
    }
    case PatternKind::kDoubleSided:
      aggressors_ = {v - 1, v + 1};
      break;
    case PatternKind::kOneLocation:
      aggressors_ = {v + 1};
      break;
    case PatternKind::kManySided: {
      DM_CHECK_MSG(cfg_.n_aggressors >= 2, "many-sided needs >= 2 aggressors");
      aggressors_ = {v - 1, v + 1};
      std::uint32_t r = v + cfg_.decoy_stride;
      while (aggressors_.size() < cfg_.n_aggressors) {
        if (r + 2 >= cfg_.rows_in_bank) r = cfg_.decoy_stride;
        aggressors_.push_back(r);
        r += cfg_.decoy_stride;
      }
      break;
    }
    case PatternKind::kHalfDouble:
      aggressors_ = {v - 2, v + 2};
      break;
    case PatternKind::kRandom:
      break;  // drawn per-iteration
  }
}

std::vector<std::uint32_t> HammerPattern::expected_victims() const {
  // Distance-1 and distance-2 neighbours: adjacent rows dominate, but the
  // distance-2 coupling term can flip rows one further out (ISCA'14 found a
  // non-adjacent tail), so the verification sweep must read them too.
  std::set<std::uint32_t> v;
  for (std::uint32_t a : aggressors_) {
    for (std::uint32_t d = 1; d <= 2; ++d) {
      if (a >= d) v.insert(a - d);
      if (a + d < cfg_.rows_in_bank) v.insert(a + d);
    }
  }
  for (std::uint32_t a : aggressors_) v.erase(a);  // aggressors self-refresh
  return {v.begin(), v.end()};
}

std::vector<std::uint32_t> HammerPattern::draw_victims(
    std::uint64_t n_draws) const {
  if (cfg_.kind != PatternKind::kRandom) return expected_victims();
  // Replay the draw stream on a clone seeded identically to rng_ at
  // construction, so this never perturbs the live iteration sequence.
  Rng rng(hash_coords(cfg_.seed, 0x41545041 /* "ATPA" */));
  std::set<std::uint32_t> drawn;
  for (std::uint64_t i = 0; i < n_draws; ++i)
    drawn.insert(static_cast<std::uint32_t>(
        rng.uniform_int(std::uint64_t{cfg_.rows_in_bank})));
  std::set<std::uint32_t> v;
  for (std::uint32_t a : drawn) {
    for (std::uint32_t d = 1; d <= 2; ++d) {
      if (a >= d) v.insert(a - d);
      if (a + d < cfg_.rows_in_bank) v.insert(a + d);
    }
  }
  for (std::uint32_t a : drawn) v.erase(a);
  return {v.begin(), v.end()};
}

void HammerPattern::iteration_rows(std::uint64_t /*i*/,
                                   std::vector<std::uint32_t>& out) {
  if (cfg_.kind == PatternKind::kRandom) {
    for (int k = 0; k < 2; ++k)
      out.push_back(static_cast<std::uint32_t>(
          rng_.uniform_int(std::uint64_t{cfg_.rows_in_bank})));
    return;
  }
  out.insert(out.end(), aggressors_.begin(), aggressors_.end());
}

}  // namespace densemem::attack
