#include "fuzz/fuzzer.h"

#include <memory>

#include "common/check.h"
#include "dram/access_stream.h"

namespace densemem::fuzz {

namespace {
/// Sub-stream tags: one per derivation purpose, so sampling and mutation
/// never share generator state with anything else.
constexpr std::uint64_t kGenomeTag = 0x47454E4F;   // "GENO"
constexpr std::uint64_t kMutantTag = 0x4D555441;   // "MUTA"
}  // namespace

const char* tracker_name(TrackerKind k) {
  switch (k) {
    case TrackerKind::kNone: return "none";
    case TrackerKind::kMisraGries: return "TRR-MG";
    case TrackerKind::kSampler: return "TRR-sampler";
  }
  return "?";
}

std::unique_ptr<ctrl::Mitigation> make_tracker(const ProbeSetup& setup,
                                               ctrl::AdjacencyFn adjacency) {
  switch (setup.tracker) {
    case TrackerKind::kNone:
      return std::make_unique<ctrl::NoMitigation>();
    case TrackerKind::kMisraGries:
      return std::make_unique<ctrl::Trr>(setup.misra_gries,
                                         std::move(adjacency));
    case TrackerKind::kSampler:
      return std::make_unique<ctrl::TrrSampler>(setup.sampler,
                                                std::move(adjacency));
  }
  return std::make_unique<ctrl::NoMitigation>();
}

namespace {

struct Rig {
  dram::Device dev;
  ctrl::MemoryController mc;

  explicit Rig(const ProbeSetup& setup)
      : dev(setup.device),
        mc(dev, setup.ctrl,
           make_tracker(setup, ctrl::make_adjacency(
                                   dev, setup.ctrl.use_spd_adjacency))) {
    if (setup.decision_observer)
      mc.mitigation().set_observer(setup.decision_observer);
  }
};

/// Advance the clock to just past the next tREFI boundary, firing the REF
/// that falls due — the hammer_sync idiom: the next ACT lands at the start
/// of a fresh sampling window.
void sync_to_ref(ctrl::MemoryController& mc, Time tREFI) {
  const std::int64_t k = mc.now() / tREFI;
  mc.advance_to(tREFI * (k + 1));
}

/// Read every expected victim once through the controller so pending
/// disturbance commits; the flips land in the device's ground-truth stats.
void commit_victims(ctrl::MemoryController& mc, std::uint32_t fbank,
                    const std::vector<std::uint32_t>& victims) {
  for (std::uint32_t v : victims) mc.activate_precharge(fbank, v);
  mc.close_all_banks();
}

ProbeResult finish(const Rig& rig, std::uint64_t acts) {
  ProbeResult res;
  res.flips = rig.dev.stats().disturb_flips;
  res.acts = acts;
  res.elapsed_ms = rig.mc.now().as_ms();
  res.targeted_refreshes = rig.mc.stats().targeted_refreshes;
  return res;
}

}  // namespace

ProbeResult run_genome(const PatternGenome& genome, const ProbeSetup& setup) {
  Rig rig(setup);
  const std::vector<std::uint32_t> seq = genome.compile();
  const std::vector<std::uint32_t> victims =
      genome.expected_victims(setup.device.geometry.rows);
  const Time tREFI = setup.ctrl.timing.tREFI;
  const Time tRC = setup.ctrl.timing.tRC;

  std::uint64_t acts = 0;
  if (setup.use_stream) {
    // kIdleSlot == AccessStream::kIdle, so the compiled genome IS the slot
    // vector; one run_stream call per base period replaces the slot loop.
    const dram::AccessStream stream(rig.dev, setup.fbank, seq);
    while (acts < setup.act_budget) {
      if (setup.sync_to_ref) sync_to_ref(rig.mc, tREFI);
      const std::uint64_t got =
          rig.mc.run_stream(stream, setup.act_budget - acts);
      acts += got;
      if (got == 0) break;  // genome with no ACT slots: budget can't fill
    }
  } else {
    while (acts < setup.act_budget) {
      if (setup.sync_to_ref) sync_to_ref(rig.mc, tREFI);
      for (std::uint32_t slot : seq) {
        if (acts >= setup.act_budget) break;
        if (slot == kIdleSlot) {
          // The slot's issue opportunity passes unused; time still
          // advances, which is what keeps later slots' phase honest.
          rig.mc.advance_to(rig.mc.now() + tRC);
          continue;
        }
        rig.mc.activate_precharge(setup.fbank, slot);
        ++acts;
      }
    }
  }
  commit_victims(rig.mc, setup.fbank, victims);
  return finish(rig, acts);
}

ProbeResult run_kernel(attack::PatternKind kind, const ProbeSetup& setup) {
  Rig rig(setup);
  // Oracle placement: the kernel gets the first weak row with full margin.
  std::uint32_t victim = setup.device.geometry.rows / 2;
  for (std::uint32_t r : rig.dev.fault_map().weak_rows(setup.fbank))
    if (r >= 4 && r + 4 < setup.device.geometry.rows) {
      victim = r;
      break;
    }
  attack::PatternConfig pc;
  pc.kind = kind;
  pc.victim_row = victim;
  pc.rows_in_bank = setup.device.geometry.rows;
  pc.n_aggressors = 12;
  pc.seed = setup.device.seed;
  attack::HammerPattern pattern(pc);

  std::uint64_t acts = 0;
  std::vector<std::uint32_t> rows;
  if (setup.use_stream && kind != attack::PatternKind::kRandom) {
    // Every kernel but kRandom replays the same rows each iteration
    // (iteration_rows ignores `it`), so iteration 0 compiles the whole
    // pattern; kRandom draws fresh rows per iteration and stays per-ACT.
    pattern.iteration_rows(0, rows);
    const dram::AccessStream stream(rig.dev, setup.fbank, rows);
    while (acts < setup.act_budget) {
      const std::uint64_t got =
          rig.mc.run_stream(stream, setup.act_budget - acts);
      acts += got;
      if (got == 0) break;
    }
  } else {
    for (std::uint64_t it = 0; acts < setup.act_budget; ++it) {
      rows.clear();
      pattern.iteration_rows(it, rows);
      for (std::uint32_t r : rows) {
        if (acts >= setup.act_budget) break;
        rig.mc.activate_precharge(setup.fbank, r);
        ++acts;
      }
    }
  }
  // draw_victims == expected_victims for every kind but kRandom, whose
  // victim set must be reconstructed from the draw stream (see patterns.h).
  const std::vector<std::uint32_t> victims = pattern.draw_victims(acts);
  commit_victims(rig.mc, setup.fbank, victims);
  return finish(rig, acts);
}

PatternGenome Fuzzer::genome_for(std::uint64_t stream_seed) const {
  Rng rng(hash_coords(stream_seed, kGenomeTag));
  return params_.sample(rng);
}

PatternGenome Fuzzer::mutant_for(const PatternGenome& parent,
                                 std::uint64_t stream_seed) const {
  Rng rng(hash_coords(stream_seed, kMutantTag));
  return params_.mutate(parent, rng);
}

}  // namespace densemem::fuzz
