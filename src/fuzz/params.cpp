#include "fuzz/params.h"

#include <algorithm>

#include "common/check.h"

namespace densemem::fuzz {

std::uint32_t FuzzingParameterSet::random_victim(Rng& rng) const {
  DM_CHECK_MSG(rows_in_bank > 2 * row_margin, "bank too small for the margin");
  return row_margin +
         static_cast<std::uint32_t>(
             rng.uniform_int(std::uint64_t{rows_in_bank - 2 * row_margin}));
}

AggressorTuple FuzzingParameterSet::sample_tuple(Rng& rng) const {
  AggressorTuple t;
  // Frequency: a power of two in [1, max_frequency].
  std::uint32_t freq = 1;
  while (freq < max_frequency && rng.bernoulli(0.5)) freq *= 2;
  t.frequency = freq;
  t.phase = static_cast<std::uint32_t>(
      rng.uniform_int(std::uint64_t{base_period}));
  t.amplitude = 1 + static_cast<std::uint32_t>(
                        rng.uniform_int(std::uint64_t{max_amplitude}));
  if (rng.bernoulli(pair_probability)) {
    const std::uint32_t v = random_victim(rng);
    t.rows = {v - 1, v + 1};
  } else {
    const std::uint32_t n = 1 + static_cast<std::uint32_t>(rng.uniform_int(
                                    std::uint64_t{max_decoy_rows}));
    for (std::uint32_t i = 0; i < n; ++i) t.rows.push_back(random_victim(rng));
  }
  return t;
}

PatternGenome FuzzingParameterSet::sample(Rng& rng) const {
  PatternGenome g;
  g.base_period = base_period;
  const std::uint32_t n =
      min_tuples + static_cast<std::uint32_t>(rng.uniform_int(
                       std::uint64_t{max_tuples - min_tuples + 1}));
  for (std::uint32_t i = 0; i < n; ++i) g.tuples.push_back(sample_tuple(rng));
  return g;
}

PatternGenome FuzzingParameterSet::mutate(const PatternGenome& g,
                                          Rng& rng) const {
  PatternGenome m = g;
  DM_CHECK_MSG(!m.tuples.empty(), "cannot mutate an empty genome");
  const std::size_t i = rng.uniform_int(std::uint64_t{m.tuples.size()});
  AggressorTuple& t = m.tuples[i];
  switch (rng.uniform_int(std::uint64_t{6})) {
    case 0:  // frequency up/down (stay a power of two in range)
      if (rng.bernoulli(0.5))
        t.frequency = std::min(max_frequency, t.frequency * 2);
      else
        t.frequency = std::max(1u, t.frequency / 2);
      break;
    case 1:  // shift phase
      t.phase = static_cast<std::uint32_t>(
          rng.uniform_int(std::uint64_t{base_period}));
      break;
    case 2:  // amplitude up/down
      if (rng.bernoulli(0.5))
        t.amplitude = std::min(max_amplitude, t.amplitude + 1);
      else
        t.amplitude = std::max(1u, t.amplitude - 1);
      break;
    case 3: {  // relocate: re-draw the tuple's rows, keep its rhythm
      const AggressorTuple fresh = sample_tuple(rng);
      t.rows = fresh.rows;
      break;
    }
    case 4:  // drop a tuple (keep at least one)
      if (m.tuples.size() > 1)
        m.tuples.erase(m.tuples.begin() +
                       static_cast<std::ptrdiff_t>(
                           rng.uniform_int(std::uint64_t{m.tuples.size()})));
      break;
    case 5:  // duplicate a tuple at a fresh phase
      if (m.tuples.size() < max_tuples) {
        AggressorTuple copy =
            m.tuples[rng.uniform_int(std::uint64_t{m.tuples.size()})];
        copy.phase = static_cast<std::uint32_t>(
            rng.uniform_int(std::uint64_t{base_period}));
        m.tuples.push_back(std::move(copy));
      }
      break;
  }
  return m;
}

}  // namespace densemem::fuzz
