// Pattern genome — non-uniform hammering patterns as data.
//
// The attack/ kernels are fixed shapes (single/double/many-sided); the
// genome generalizes them into the Blacksmith/zenhammer representation: a
// base period of activation slots, one slot per ACT issue opportunity
// within a refresh interval, populated by aggressor tuples parameterized
// by frequency (occurrences per period), phase (slot offset of the first
// occurrence), and amplitude (consecutive repeats per occurrence). A slot
// no tuple claims stays idle — timing still passes, which is what makes
// phase meaningful against a REF-synchronized tracker.
//
// Genomes compile down to the flat access sequence the attack layer and
// ctrl::MemoryController already consume, and serialize through the
// journal's PayloadWriter/PayloadReader so probe results (genome included)
// survive checkpoint/resume byte-exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace densemem::fuzz {

/// Slot value for "no ACT this slot" in a compiled sequence: the hammer
/// loop lets one tRC of idle time pass instead of issuing an activation.
inline constexpr std::uint32_t kIdleSlot = ~std::uint32_t{0};

/// One access pattern within a genome: `rows` issued round-robin,
/// `amplitude` full repetitions per occurrence, `frequency` occurrences
/// spread evenly across the base period starting at slot `phase`.
struct AggressorTuple {
  std::uint32_t frequency = 1;  ///< occurrences per base period (>= 1)
  std::uint32_t phase = 0;      ///< slot offset of the first occurrence
  std::uint32_t amplitude = 1;  ///< consecutive repeats of `rows` per occurrence
  std::vector<std::uint32_t> rows;  ///< logical rows, issued in order

  bool operator==(const AggressorTuple&) const = default;
};

struct PatternGenome {
  std::uint32_t base_period = 128;  ///< slots per refresh interval
  std::vector<AggressorTuple> tuples;

  bool operator==(const PatternGenome&) const = default;

  /// Flatten to one base period of slots. Tuples claim slots in declaration
  /// order, first writer wins; unclaimed slots are kIdleSlot. Deterministic:
  /// a genome always compiles to the same sequence.
  std::vector<std::uint32_t> compile() const;

  /// Distinct aggressor rows across all tuples, ascending.
  std::vector<std::uint32_t> aggressor_rows() const;

  /// Rows adjacent (distance 1–2) to any aggressor, minus the aggressors
  /// themselves — the rows a verification sweep must read, mirroring
  /// attack::HammerPattern::expected_victims.
  std::vector<std::uint32_t> expected_victims(std::uint32_t rows_in_bank) const;

  /// ACTs actually issued per base period (non-idle slots).
  std::uint32_t acts_per_period() const;

  /// Exact serialization through the journal payload codec; decode() is the
  /// inverse, so a genome survives checkpoint/resume and the replayer
  /// re-runs exactly what the fuzzer found.
  std::string encode() const;
  static PatternGenome decode(const std::string& payload);
};

}  // namespace densemem::fuzz
