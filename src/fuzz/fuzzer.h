// Fuzzing engine: turns a campaign job's RNG stream into a pattern genome,
// runs it against a mitigated controller, and scores it by committed bit
// flips at a fixed activation budget.
//
// One probe == one sim::Campaign job. A probe's genome is sampled from
// FuzzingParameterSet using the job's hash_coords-derived stream seed, so
// the probe is a pure function of (campaign seed, job index): retries,
// watchdogs, journaling, bit-exact --resume, metrics and spans all apply
// to a fuzz run unchanged, and a million-pattern fuzz is just a big
// resumable campaign.
//
// The probe loop replays the compiled genome REF-synchronized: each base
// period starts right after a REF command, the sim analogue of
// blacksmith's hammer_sync (detecting REF by latency and re-aligning).
// That alignment is what makes a genome's phase structure meaningful —
// aggressors hammered early in the interval, decoys flooding the sampler
// just before the REF that would have caught them.
#pragma once

#include <cstdint>
#include <string>

#include "attack/patterns.h"
#include "ctrl/controller.h"
#include "ctrl/trr.h"
#include "ctrl/trr_sampler.h"
#include "dram/device.h"
#include "fuzz/params.h"
#include "fuzz/pattern.h"

namespace densemem::fuzz {

/// Which in-DRAM tracker the probe hammers against.
enum class TrackerKind { kNone, kMisraGries, kSampler };

const char* tracker_name(TrackerKind k);

/// Everything a probe needs to run, independent of scheduling: device,
/// controller, tracker, and the activation budget every probe and every
/// fixed kernel gets — equal budgets are what make flip counts comparable.
struct ProbeSetup {
  dram::DeviceConfig device;
  ctrl::CtrlConfig ctrl;
  TrackerKind tracker = TrackerKind::kSampler;
  ctrl::TrrConfig misra_gries;
  ctrl::TrrSamplerConfig sampler;
  std::uint32_t fbank = 0;
  std::uint64_t act_budget = 65536;
  /// REF-synchronize the genome replay (see header comment). Fixed kernels
  /// never sync — they have no phase structure to align.
  bool sync_to_ref = true;
  /// Execute via a compiled dram::AccessStream (one compile per probe, one
  /// restore screen per row per pass) instead of per-activation replay. The
  /// two paths are bit-identical — same flips, stats, stored rows, observer
  /// and decision streams (tests/test_stream_equivalence.cpp holds the
  /// proof) — so this is purely a speed knob; false keeps the reference
  /// path for differential testing. kRandom kernels always replay per-ACT
  /// (their row sequence is RNG-fresh each iteration, nothing to compile).
  bool use_stream = true;
  /// Receives the tracker's track/sample/evict/refresh decisions (see
  /// ctrl/mitigation.h). Null = no decision tracing; the flip-side
  /// equivalent lives in device.observer. Probes under event tracing set
  /// both so flips autopsy against what the tracker actually saw.
  ctrl::DecisionObserver* decision_observer = nullptr;
};

struct ProbeResult {
  std::uint64_t flips = 0;   ///< raw disturbance flips (device ground truth)
  std::uint64_t acts = 0;    ///< aggressor activations issued
  double elapsed_ms = 0.0;   ///< simulated time
  std::uint64_t targeted_refreshes = 0;  ///< tracker-issued victim refreshes
};

/// Builds the mitigation `setup` names (tracker seed is part of the setup,
/// so a probe is reproducible bit-for-bit).
std::unique_ptr<ctrl::Mitigation> make_tracker(const ProbeSetup& setup,
                                               ctrl::AdjacencyFn adjacency);

/// Replay `genome` against a freshly built system until the activation
/// budget is spent, then sweep its expected victims to commit pending
/// flips. Pure function of (genome, setup).
ProbeResult run_genome(const PatternGenome& genome, const ProbeSetup& setup);

/// Run a fixed attack:: kernel at the same activation budget, victim placed
/// on the first weak row of the bank (the oracle placement — biased in the
/// kernel's favour, which makes losing to the fuzzer meaningful).
ProbeResult run_kernel(attack::PatternKind kind, const ProbeSetup& setup);

/// The generative layer: deterministic genome derivation for campaign jobs.
class Fuzzer {
 public:
  explicit Fuzzer(FuzzingParameterSet params) : params_(params) {}

  const FuzzingParameterSet& params() const { return params_; }

  /// The genome of the probe whose campaign job stream seed is
  /// `stream_seed` (JobContext::stream_seed). Stateless and repeatable:
  /// the bench re-derives genomes post-merge instead of shipping them
  /// through the journal.
  PatternGenome genome_for(std::uint64_t stream_seed) const;

  /// Mutation/refinement: the mutant of `parent` drawn on `stream_seed`'s
  /// stream. Refinement jobs perturb effective genomes from the fuzz phase.
  PatternGenome mutant_for(const PatternGenome& parent,
                           std::uint64_t stream_seed) const;

 private:
  FuzzingParameterSet params_;
};

}  // namespace densemem::fuzz
