#include "fuzz/replay.h"

#include "common/check.h"

namespace densemem::fuzz {

ReplayReport replay(const PatternGenome& genome, const ProbeSetup& setup,
                    const std::vector<std::uint64_t>& extra_seeds) {
  ReplayReport rep;
  const std::uint64_t first = run_genome(genome, setup).flips;
  const std::uint64_t second = run_genome(genome, setup).flips;
  rep.deterministic = (first == second);
  rep.flips_per_seed.push_back(first);
  for (std::uint64_t s : extra_seeds) {
    ProbeSetup other = setup;
    other.device.seed = s;
    const std::uint64_t flips = run_genome(genome, other).flips;
    rep.flips_per_seed.push_back(flips);
    if (flips > 0) ++rep.seeds_with_flips;
  }
  return rep;
}

MinimizeResult minimize(const PatternGenome& genome, const ProbeSetup& setup) {
  MinimizeResult res;
  res.genome = genome;
  res.flips = run_genome(genome, setup).flips;
  bool progress = true;
  while (progress && res.genome.tuples.size() > 1) {
    progress = false;
    for (std::size_t i = 0; i < res.genome.tuples.size(); ++i) {
      PatternGenome candidate = res.genome;
      candidate.tuples.erase(candidate.tuples.begin() +
                             static_cast<std::ptrdiff_t>(i));
      const std::uint64_t flips = run_genome(candidate, setup).flips;
      if (flips >= res.flips) {
        res.genome = std::move(candidate);
        res.flips = flips;
        ++res.tuples_dropped;
        progress = true;
        break;  // restart the scan on the smaller genome
      }
    }
  }
  return res;
}

}  // namespace densemem::fuzz
