// Replayer and minimizer for effective patterns.
//
// Blacksmith's last mile: a fuzzer-found pattern is only interesting if it
// is (a) reproducible — the same genome flips bits again, on this device
// and on fresh device seeds — and (b) minimal — every aggressor tuple it
// carries actually contributes. replay() answers (a); minimize() answers
// (b) by greedily dropping tuples while the flip count does not degrade.
#pragma once

#include <cstdint>
#include <vector>

#include "fuzz/fuzzer.h"
#include "fuzz/pattern.h"

namespace densemem::fuzz {

struct ReplayReport {
  /// Flip count per replay seed; seed 0 is the original device seed.
  std::vector<std::uint64_t> flips_per_seed;
  /// True when re-running the genome on the ORIGINAL device seed produced
  /// the identical flip count both times — the bit-exactness smoke check.
  bool deterministic = false;
  /// Replay seeds (beyond the original) on which the genome flipped bits.
  std::uint32_t seeds_with_flips = 0;
};

struct MinimizeResult {
  PatternGenome genome;        ///< the minimized genome
  std::uint64_t flips = 0;     ///< its flip count on the probe setup
  std::uint32_t tuples_dropped = 0;
};

/// Re-run `genome` twice on `setup` and once per extra device seed.
/// `extra_seeds` perturb only the device seed (fault map + thresholds);
/// controller and tracker are rebuilt identically each run.
ReplayReport replay(const PatternGenome& genome, const ProbeSetup& setup,
                    const std::vector<std::uint64_t>& extra_seeds);

/// Greedy tuple minimization: repeatedly try dropping each tuple; commit a
/// drop when the flip count does not decrease. Deterministic — candidate
/// order is tuple index order, first committable drop restarts the scan.
MinimizeResult minimize(const PatternGenome& genome, const ProbeSetup& setup);

}  // namespace densemem::fuzz
