#include "fuzz/pattern.h"

#include <set>

#include "common/check.h"
#include "sim/journal.h"

namespace densemem::fuzz {

std::vector<std::uint32_t> PatternGenome::compile() const {
  DM_CHECK_MSG(base_period >= 1, "genome needs a base period");
  std::vector<std::uint32_t> slots(base_period, kIdleSlot);
  for (const AggressorTuple& t : tuples) {
    DM_CHECK_MSG(t.frequency >= 1 && t.amplitude >= 1 && !t.rows.empty(),
                 "degenerate aggressor tuple");
    const std::uint32_t stride = std::max<std::uint32_t>(
        1, base_period / t.frequency);
    const std::uint32_t burst =
        t.amplitude * static_cast<std::uint32_t>(t.rows.size());
    for (std::uint32_t occ = 0; occ < t.frequency; ++occ) {
      const std::uint32_t start = t.phase + occ * stride;
      for (std::uint32_t k = 0; k < burst; ++k) {
        const std::uint32_t slot = start + k;
        if (slot >= base_period) break;
        if (slots[slot] != kIdleSlot) continue;  // first writer wins
        slots[slot] = t.rows[k % t.rows.size()];
      }
    }
  }
  return slots;
}

std::vector<std::uint32_t> PatternGenome::aggressor_rows() const {
  std::set<std::uint32_t> rows;
  for (const AggressorTuple& t : tuples)
    rows.insert(t.rows.begin(), t.rows.end());
  return {rows.begin(), rows.end()};
}

std::vector<std::uint32_t> PatternGenome::expected_victims(
    std::uint32_t rows_in_bank) const {
  const auto aggr = aggressor_rows();
  std::set<std::uint32_t> v;
  for (std::uint32_t a : aggr) {
    for (std::uint32_t d = 1; d <= 2; ++d) {
      if (a >= d) v.insert(a - d);
      if (a + d < rows_in_bank) v.insert(a + d);
    }
  }
  for (std::uint32_t a : aggr) v.erase(a);  // aggressors self-refresh
  return {v.begin(), v.end()};
}

std::uint32_t PatternGenome::acts_per_period() const {
  std::uint32_t acts = 0;
  for (std::uint32_t s : compile())
    if (s != kIdleSlot) ++acts;
  return acts;
}

std::string PatternGenome::encode() const {
  sim::PayloadWriter pw;
  pw.u64(base_period);
  pw.u64(tuples.size());
  for (const AggressorTuple& t : tuples) {
    pw.u64(t.frequency);
    pw.u64(t.phase);
    pw.u64(t.amplitude);
    pw.u64(t.rows.size());
    for (std::uint32_t r : t.rows) pw.u64(r);
  }
  return pw.take();
}

PatternGenome PatternGenome::decode(const std::string& payload) {
  sim::PayloadReader pr(payload);
  PatternGenome g;
  g.base_period = static_cast<std::uint32_t>(pr.u64());
  g.tuples.resize(pr.u64());
  for (AggressorTuple& t : g.tuples) {
    t.frequency = static_cast<std::uint32_t>(pr.u64());
    t.phase = static_cast<std::uint32_t>(pr.u64());
    t.amplitude = static_cast<std::uint32_t>(pr.u64());
    t.rows.resize(pr.u64());
    for (std::uint32_t& r : t.rows) r = static_cast<std::uint32_t>(pr.u64());
  }
  return g;
}

}  // namespace densemem::fuzz
