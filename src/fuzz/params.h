// FuzzingParameterSet — the sampling distribution over pattern genomes,
// and the mutation operators that refine effective ones.
//
// Mirrors zenhammer's Fuzzer/FuzzingParameterSet: every probe draws its
// genome from these ranges using a private hash_coords-derived RNG stream,
// so probe i's genome is a pure function of (campaign seed, i) — the
// property that lets a million-probe fuzz run ride the campaign engine's
// retry/journal/resume machinery unchanged.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "fuzz/pattern.h"

namespace densemem::fuzz {

struct FuzzingParameterSet {
  std::uint32_t rows_in_bank = 512;
  /// Keep aggressors this many rows clear of the bank edges so every
  /// victim has full neighbourhoods.
  std::uint32_t row_margin = 8;

  std::uint32_t base_period = 128;   ///< ACT slots per refresh interval
  std::uint32_t min_tuples = 2;
  std::uint32_t max_tuples = 8;
  std::uint32_t max_amplitude = 8;
  std::uint32_t max_frequency = 8;   ///< occurrences per period, power of two
  /// Probability a sampled tuple is a double-sided pair around a random
  /// victim (the flip-producing shape); otherwise it is a decoy set of
  /// distinct random rows (the sampler-churning shape). The fuzzer does not
  /// know which mix wins — that is what the search discovers.
  double pair_probability = 0.6;
  std::uint32_t max_decoy_rows = 8;

  /// Draw one genome from the distribution. Consumes `rng` deterministically.
  PatternGenome sample(Rng& rng) const;

  /// Perturb one randomly chosen property of `g`: a tuple's frequency,
  /// phase, amplitude or row placement, or drop/duplicate a whole tuple.
  /// Returns the mutant; `g` itself is untouched.
  PatternGenome mutate(const PatternGenome& g, Rng& rng) const;

 private:
  AggressorTuple sample_tuple(Rng& rng) const;
  std::uint32_t random_victim(Rng& rng) const;
};

}  // namespace densemem::fuzz
