#include "ecc/bch.h"

#include <algorithm>
#include <set>

namespace densemem::ecc {
namespace {

// Minimal polynomial (over GF(2)) of alpha^c: product of (x - alpha^j) over
// the cyclotomic coset of c. Returned with bit i = coefficient of x^i.
std::vector<std::uint8_t> minimal_poly(const GF2m& f, std::uint32_t c) {
  // Collect the coset {c, 2c, 4c, ...} mod n.
  std::vector<std::uint32_t> coset;
  std::uint32_t e = c;
  do {
    coset.push_back(e);
    e = (e * 2) % f.n();
  } while (e != c);

  // Multiply out (x - alpha^j) over GF(2^m); the result has GF(2) coeffs.
  std::vector<std::uint32_t> poly{1};  // constant 1
  for (std::uint32_t j : coset) {
    const std::uint32_t root = f.alpha_pow(j);
    std::vector<std::uint32_t> next(poly.size() + 1, 0);
    for (std::size_t i = 0; i < poly.size(); ++i) {
      next[i + 1] = f.add(next[i + 1], poly[i]);          // x * poly
      next[i] = f.add(next[i], f.mul(root, poly[i]));     // root * poly
    }
    poly = std::move(next);
  }
  std::vector<std::uint8_t> out(poly.size());
  for (std::size_t i = 0; i < poly.size(); ++i) {
    DM_CHECK_MSG(poly[i] <= 1, "minimal polynomial has non-binary coefficient");
    out[i] = static_cast<std::uint8_t>(poly[i]);
  }
  return out;
}

// Multiply two GF(2) polynomials (bit i = coeff of x^i).
std::vector<std::uint8_t> poly_mul_gf2(const std::vector<std::uint8_t>& a,
                                       const std::vector<std::uint8_t>& b) {
  std::vector<std::uint8_t> r(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a[i]) continue;
    for (std::size_t j = 0; j < b.size(); ++j) r[i + j] ^= b[j];
  }
  return r;
}

std::vector<std::uint8_t> build_generator(const GF2m& f, int t) {
  std::vector<std::uint8_t> g{1};
  std::set<std::uint32_t> covered;
  for (int c = 1; c <= 2 * t; ++c) {
    const auto cu = static_cast<std::uint32_t>(c);
    if (covered.count(cu)) continue;
    // Mark the whole cyclotomic coset as covered.
    std::uint32_t e = cu;
    do {
      covered.insert(e);
      e = (e * 2) % f.n();
    } while (e != cu);
    g = poly_mul_gf2(g, minimal_poly(f, cu));
  }
  return g;
}

}  // namespace

BchCode::BchCode(BchParams p) : params_(p), field_(p.m) {
  DM_CHECK_MSG(p.t >= 1, "BCH t must be >= 1");
  DM_CHECK_MSG(p.k_data >= 1, "BCH payload must be >= 1 bit");
  gen_ = build_generator(field_, p.t);
  const int r = parity_bits();
  DM_CHECK_MSG(p.k_data + r <= n(),
               "BCH payload does not fit: k_data + parity exceeds 2^m - 1");
  DM_CHECK_MSG(gen_.back() == 1, "generator polynomial must be monic");
}

BitVec BchCode::encode(const BitVec& data) const {
  DM_CHECK_MSG(static_cast<int>(data.size()) == k_data(),
               "encode payload size mismatch");
  const int r = parity_bits();
  // LFSR division of d(x) * x^r by g(x): process data high-degree first.
  std::vector<std::uint8_t> rem(static_cast<std::size_t>(r), 0);
  for (int i = k_data() - 1; i >= 0; --i) {
    const bool fb = data.get(static_cast<std::size_t>(i)) !=
                    static_cast<bool>(rem[static_cast<std::size_t>(r - 1)]);
    for (int j = r - 1; j > 0; --j)
      rem[static_cast<std::size_t>(j)] = rem[static_cast<std::size_t>(j - 1)];
    rem[0] = 0;
    if (fb)
      for (int j = 0; j < r; ++j)
        rem[static_cast<std::size_t>(j)] ^= gen_[static_cast<std::size_t>(j)];
  }
  // Layout: [data bits 0..k-1][parity bits 0..r-1]; poly position of data
  // bit i is r + i, of parity bit j is j.
  BitVec cw(static_cast<std::size_t>(code_bits()));
  for (int i = 0; i < k_data(); ++i)
    cw.set(static_cast<std::size_t>(i), data.get(static_cast<std::size_t>(i)));
  for (int j = 0; j < r; ++j)
    cw.set(static_cast<std::size_t>(k_data() + j),
           static_cast<bool>(rem[static_cast<std::size_t>(j)]));
  return cw;
}

std::vector<std::uint32_t> BchCode::compute_syndromes(const BitVec& cw) const {
  const int r = parity_bits();
  std::vector<std::uint32_t> syn(static_cast<std::size_t>(2 * params_.t), 0);
  for (std::size_t bit : cw.set_bits()) {
    // Polynomial position of this code-word bit (see encode layout).
    const std::int64_t pos =
        bit < static_cast<std::size_t>(k_data())
            ? static_cast<std::int64_t>(r) + static_cast<std::int64_t>(bit)
            : static_cast<std::int64_t>(bit) - k_data();
    for (int j = 1; j <= 2 * params_.t; ++j)
      syn[static_cast<std::size_t>(j - 1)] ^= field_.alpha_pow(pos * j);
  }
  return syn;
}

BchDecodeResult BchCode::decode(const BitVec& codeword) const {
  DM_CHECK_MSG(static_cast<int>(codeword.size()) == code_bits(),
               "decode code word size mismatch");
  auto extract_data = [&](const BitVec& cw) {
    BitVec d(static_cast<std::size_t>(k_data()));
    for (int i = 0; i < k_data(); ++i)
      d.set(static_cast<std::size_t>(i), cw.get(static_cast<std::size_t>(i)));
    return d;
  };

  const auto syn = compute_syndromes(codeword);
  if (std::all_of(syn.begin(), syn.end(), [](std::uint32_t s) { return s == 0; }))
    return {DecodeStatus::kClean, extract_data(codeword), 0};

  // Berlekamp–Massey: find the error-locator polynomial sigma(x).
  const int t2 = 2 * params_.t;
  std::vector<std::uint32_t> sigma{1};  // current locator
  std::vector<std::uint32_t> b{1};      // previous locator copy
  int L = 0;
  std::uint32_t bdisc = 1;  // discrepancy at the last length change
  int shift = 1;            // x^shift multiplier for b
  for (int n_iter = 0; n_iter < t2; ++n_iter) {
    // Discrepancy d = S_n + sum_{i=1..L} sigma_i * S_{n-i}.
    std::uint32_t d = syn[static_cast<std::size_t>(n_iter)];
    for (int i = 1; i <= L && i < static_cast<int>(sigma.size()); ++i) {
      const int idx = n_iter - i;
      if (idx >= 0)
        d = field_.add(d, field_.mul(sigma[static_cast<std::size_t>(i)],
                                     syn[static_cast<std::size_t>(idx)]));
    }
    if (d == 0) {
      ++shift;
      continue;
    }
    // sigma' = sigma - (d / bdisc) * x^shift * b
    const std::uint32_t coef = field_.div(d, bdisc);
    std::vector<std::uint32_t> next = sigma;
    if (next.size() < b.size() + static_cast<std::size_t>(shift))
      next.resize(b.size() + static_cast<std::size_t>(shift), 0);
    for (std::size_t i = 0; i < b.size(); ++i)
      next[i + static_cast<std::size_t>(shift)] = field_.add(
          next[i + static_cast<std::size_t>(shift)], field_.mul(coef, b[i]));
    if (2 * L <= n_iter) {
      b = sigma;
      bdisc = d;
      L = n_iter + 1 - L;
      shift = 1;
    } else {
      ++shift;
    }
    sigma = std::move(next);
  }
  // Trim trailing zero coefficients.
  while (sigma.size() > 1 && sigma.back() == 0) sigma.pop_back();
  const int deg = static_cast<int>(sigma.size()) - 1;
  if (deg == 0 || deg > params_.t || L != deg)
    return {DecodeStatus::kUncorrectable, extract_data(codeword), 0};

  // Chien search restricted to positions that exist in the shortened code.
  BitVec corrected = codeword;
  int found = 0;
  const int max_pos = code_bits();  // poly positions 0 .. max_pos-1
  for (int pos = 0; pos < max_pos; ++pos) {
    // Error at poly position pos <=> sigma(alpha^{-pos}) == 0.
    const std::uint32_t x = field_.alpha_pow(-static_cast<std::int64_t>(pos));
    if (field_.poly_eval(sigma, x) == 0) {
      const std::size_t bit =
          pos >= parity_bits()
              ? static_cast<std::size_t>(pos - parity_bits())
              : static_cast<std::size_t>(k_data() + pos);
      corrected.flip(bit);
      ++found;
    }
  }
  if (found != deg) {
    // Some roots fell outside the shortened code (or were repeated): a
    // >t-error pattern was detected rather than miscorrected.
    return {DecodeStatus::kUncorrectable, extract_data(codeword), 0};
  }
  // Verify: a true correction must zero all syndromes.
  const auto check = compute_syndromes(corrected);
  if (!std::all_of(check.begin(), check.end(),
                   [](std::uint32_t s) { return s == 0; }))
    return {DecodeStatus::kUncorrectable, extract_data(codeword), 0};
  return {DecodeStatus::kCorrected, extract_data(corrected), found};
}

int max_t_for_parity_budget(int m, int k_data, int parity_budget) {
  int best = 0;
  for (int t = 1;; ++t) {
    BchParams p{m, t, k_data};
    // Cheaply bound: parity <= m*t; stop once even the bound exceeds budget.
    if (m * t > parity_budget && best > 0) break;
    try {
      BchCode code(p);
      if (code.parity_bits() > parity_budget) break;
      best = t;
    } catch (const CheckError&) {
      break;
    }
    if (t > 64) break;  // safety stop
  }
  return best;
}

}  // namespace densemem::ecc
