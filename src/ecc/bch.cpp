#include "ecc/bch.h"

#include <algorithm>
#include <bit>
#include <set>

namespace densemem::ecc {
namespace {

// Cap on the packed LFSR width for the byte-at-a-time encoder: 8 words
// covers every code with up to 512 parity bits (m=16, t=32). Larger codes
// fall back to the per-bit LFSR.
constexpr int kMaxRemWords = 8;

// Minimal polynomial (over GF(2)) of alpha^c: product of (x - alpha^j) over
// the cyclotomic coset of c. Returned with bit i = coefficient of x^i.
std::vector<std::uint8_t> minimal_poly(const GF2m& f, std::uint32_t c) {
  // Collect the coset {c, 2c, 4c, ...} mod n.
  std::vector<std::uint32_t> coset;
  std::uint32_t e = c;
  do {
    coset.push_back(e);
    e = (e * 2) % f.n();
  } while (e != c);

  // Multiply out (x - alpha^j) over GF(2^m); the result has GF(2) coeffs.
  std::vector<std::uint32_t> poly{1};  // constant 1
  for (std::uint32_t j : coset) {
    const std::uint32_t root = f.alpha_pow(j);
    std::vector<std::uint32_t> next(poly.size() + 1, 0);
    for (std::size_t i = 0; i < poly.size(); ++i) {
      next[i + 1] = f.add(next[i + 1], poly[i]);          // x * poly
      next[i] = f.add(next[i], f.mul(root, poly[i]));     // root * poly
    }
    poly = std::move(next);
  }
  std::vector<std::uint8_t> out(poly.size());
  for (std::size_t i = 0; i < poly.size(); ++i) {
    DM_CHECK_MSG(poly[i] <= 1, "minimal polynomial has non-binary coefficient");
    out[i] = static_cast<std::uint8_t>(poly[i]);
  }
  return out;
}

// Multiply two GF(2) polynomials (bit i = coeff of x^i).
std::vector<std::uint8_t> poly_mul_gf2(const std::vector<std::uint8_t>& a,
                                       const std::vector<std::uint8_t>& b) {
  std::vector<std::uint8_t> r(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a[i]) continue;
    for (std::size_t j = 0; j < b.size(); ++j) r[i + j] ^= b[j];
  }
  return r;
}

std::vector<std::uint8_t> build_generator(const GF2m& f, int t) {
  std::vector<std::uint8_t> g{1};
  std::set<std::uint32_t> covered;
  for (int c = 1; c <= 2 * t; ++c) {
    const auto cu = static_cast<std::uint32_t>(c);
    if (covered.count(cu)) continue;
    // Mark the whole cyclotomic coset as covered.
    std::uint32_t e = cu;
    do {
      covered.insert(e);
      e = (e * 2) % f.n();
    } while (e != cu);
    g = poly_mul_gf2(g, minimal_poly(f, cu));
  }
  return g;
}

// --- packed-remainder primitives for the word-parallel LFSR ---------------
// The remainder lives in W 64-bit words holding bits 0..r-1 (bit i of the
// polynomial = bit i of the packed array); bits >= r are kept zero.

inline bool top_bit(const std::uint64_t* rem, int r) {
  return (rem[(r - 1) >> 6] >> ((r - 1) & 63)) & 1;
}

inline void shl1_masked(std::uint64_t* rem, int w_count, int r) {
  for (int w = w_count - 1; w > 0; --w)
    rem[w] = (rem[w] << 1) | (rem[w - 1] >> 63);
  rem[0] <<= 1;
  if (r & 63) rem[w_count - 1] &= (std::uint64_t{1} << (r & 63)) - 1;
}

inline void shl8_masked(std::uint64_t* rem, int w_count, int r) {
  for (int w = w_count - 1; w > 0; --w)
    rem[w] = (rem[w] << 8) | (rem[w - 1] >> 56);
  rem[0] <<= 8;
  if (r & 63) rem[w_count - 1] &= (std::uint64_t{1} << (r & 63)) - 1;
}

inline unsigned top_byte(const std::uint64_t* rem, int r) {
  const int off = r - 8;  // bits off..off+7 exist because rem holds r >= 8 bits
  const int w = off >> 6;
  const unsigned sh = static_cast<unsigned>(off & 63);
  std::uint64_t v = rem[w] >> sh;
  if (sh > 56) v |= rem[w + 1] << (64 - sh);
  return static_cast<unsigned>(v & 0xFF);
}

// OR `len` bits of src starting at src_off into buf starting at bit dst_off.
// buf must be zero in the target range.
void gather_bits(std::uint64_t* buf, std::size_t dst_off, const BitVec& src,
                 std::size_t src_off, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const unsigned chunk =
        static_cast<unsigned>(std::min<std::size_t>(64, len - done));
    std::uint64_t v = src.get_word_at(src_off + done);
    if (chunk < 64) v &= (std::uint64_t{1} << chunk) - 1;
    const std::size_t off = dst_off + done;
    const std::size_t w = off >> 6;
    const unsigned sh = static_cast<unsigned>(off & 63);
    buf[w] |= v << sh;
    if (sh != 0 && sh + chunk > 64) buf[w + 1] |= v >> (64 - sh);
    done += chunk;
  }
}

}  // namespace

BchCode::BchCode(BchParams p) : params_(p), field_(p.m) {
  DM_CHECK_MSG(p.t >= 1, "BCH t must be >= 1");
  DM_CHECK_MSG(p.k_data >= 1, "BCH payload must be >= 1 bit");
  gen_ = build_generator(field_, p.t);
  const int r = parity_bits();
  DM_CHECK_MSG(p.k_data + r <= n(),
               "BCH payload does not fit: k_data + parity exceeds 2^m - 1");
  DM_CHECK_MSG(gen_.back() == 1, "generator polynomial must be monic");
  build_kernels();
}

void BchCode::build_kernels() {
  const int r = parity_bits();

  // Byte-at-a-time encoder table (CRC-style). The per-bit step computes
  // rem' = rem*x + b*x^r mod g; eight steps collapse to
  //   rem' = (rem << 8 masked to r bits) ^ enc_tab_[top8(rem) ^ u]
  // where enc_tab_[v] = v(x)*x^r mod g, because rem = low + x^{r-8}*top
  // gives rem*x^8 + u*x^r = low*x^8 + (top + u)*x^r (mod g). Needs r >= 8 so
  // a whole byte fits above the shift; tiny codes keep the per-bit path.
  if (r >= 8 && r <= 64 * kMaxRemWords) {
    rem_words_ = (r + 63) / 64;
    gen_words_.assign(static_cast<std::size_t>(rem_words_), 0);
    for (int j = 0; j < r; ++j)
      if (gen_[static_cast<std::size_t>(j)])
        gen_words_[static_cast<std::size_t>(j >> 6)] |= std::uint64_t{1}
                                                        << (j & 63);
    enc_tab_.assign(256 * static_cast<std::size_t>(rem_words_), 0);
    for (unsigned v = 0; v < 256; ++v) {
      std::uint64_t rem[kMaxRemWords] = {};
      for (int s = 7; s >= 0; --s) {
        const bool fb = (((v >> s) & 1) != 0) != top_bit(rem, r);
        shl1_masked(rem, rem_words_, r);
        if (fb)
          for (int w = 0; w < rem_words_; ++w) rem[w] ^= gen_words_[w];
      }
      std::copy(rem, rem + rem_words_,
                enc_tab_.begin() + static_cast<std::size_t>(v) * rem_words_);
    }
  }

  // Byte-fold syndrome tables for the odd syndromes only; even ones derive
  // as S_2j = S_j^2 (squaring is the Frobenius map, exact over GF(2) data).
  for (int j = 1; j <= 2 * params_.t; j += 2) odd_j_.push_back(j);
  syn_tab_.assign(odd_j_.size() * 256, 0);
  byte_step_log_.assign(odd_j_.size(), 0);
  for (std::size_t oi = 0; oi < odd_j_.size(); ++oi) {
    const int j = odd_j_[oi];
    std::uint32_t ap[8];
    for (int s = 0; s < 8; ++s)
      ap[s] = field_.alpha_pow(static_cast<std::int64_t>(s) * j);
    std::uint32_t* row = &syn_tab_[oi * 256];
    for (unsigned v = 1; v < 256; ++v)
      row[v] = row[v & (v - 1)] ^ ap[std::countr_zero(v)];
    byte_step_log_[oi] =
        static_cast<std::uint32_t>((8u * static_cast<unsigned>(j)) % field_.n());
  }
}

BitVec BchCode::encode(const BitVec& data) const {
  DM_CHECK_MSG(static_cast<int>(data.size()) == k_data(),
               "encode payload size mismatch");
  const int r = parity_bits();
  const int k = k_data();
  // Layout: [data bits 0..k-1][parity bits 0..r-1]; poly position of data
  // bit i is r + i, of parity bit j is j.
  BitVec cw(static_cast<std::size_t>(code_bits()));

  if (rem_words_ == 0) {
    // Per-bit LFSR division of d(x) * x^r by g(x), data high-degree first.
    std::vector<std::uint8_t> rem(static_cast<std::size_t>(r), 0);
    for (int i = k - 1; i >= 0; --i) {
      const bool fb = data.get(static_cast<std::size_t>(i)) !=
                      static_cast<bool>(rem[static_cast<std::size_t>(r - 1)]);
      for (int j = r - 1; j > 0; --j)
        rem[static_cast<std::size_t>(j)] = rem[static_cast<std::size_t>(j - 1)];
      rem[0] = 0;
      if (fb)
        for (int j = 0; j < r; ++j)
          rem[static_cast<std::size_t>(j)] ^= gen_[static_cast<std::size_t>(j)];
    }
    for (int i = 0; i < k; ++i)
      cw.set(static_cast<std::size_t>(i), data.get(static_cast<std::size_t>(i)));
    for (int j = 0; j < r; ++j)
      cw.set(static_cast<std::size_t>(k + j),
             static_cast<bool>(rem[static_cast<std::size_t>(j)]));
    return cw;
  }

  const int w_count = rem_words_;
  std::uint64_t rem[kMaxRemWords] = {};
  // Leading k % 8 bits go through the per-bit step so the rest is whole bytes.
  const int lead = k % 8;
  for (int i = k - 1; i >= k - lead; --i) {
    const bool fb = data.get(static_cast<std::size_t>(i)) != top_bit(rem, r);
    shl1_masked(rem, w_count, r);
    if (fb)
      for (int w = 0; w < w_count; ++w) rem[w] ^= gen_words_[w];
  }
  for (int off = k - lead - 8; off >= 0; off -= 8) {
    const unsigned u = static_cast<unsigned>(
        data.get_word_at(static_cast<std::size_t>(off)) & 0xFF);
    const unsigned idx = top_byte(rem, r) ^ u;
    shl8_masked(rem, w_count, r);
    const std::uint64_t* row = &enc_tab_[static_cast<std::size_t>(idx) * w_count];
    for (int w = 0; w < w_count; ++w) rem[w] ^= row[w];
  }

  for (std::size_t w = 0; w < data.word_count(); ++w)
    cw.set_word(w, data.word(w));
  for (int w = 0; w * 64 < r; ++w)
    cw.or_bits_at(static_cast<std::size_t>(k) + 64u * static_cast<unsigned>(w),
                  rem[w], static_cast<unsigned>(std::min(64, r - w * 64)));
  return cw;
}

std::vector<std::uint32_t> BchCode::compute_syndromes(const BitVec& cw) const {
  const int r = parity_bits();
  const int k = k_data();
  const int nbits = code_bits();
  std::vector<std::uint32_t> syn(static_cast<std::size_t>(2 * params_.t), 0);

  // Gather the code word into polynomial order (parity at positions 0..r-1,
  // data at r..r+k-1) so each syndrome folds byte-at-a-time by Horner:
  //   S_j = sum_B alpha^{8Bj} * P_j(byte_B),  P_j from the 256-entry table.
  constexpr int kStackWords = 64;  // 4096 bits covers every in-tree code
  std::uint64_t stack_buf[kStackWords] = {};
  std::vector<std::uint64_t> heap_buf;
  std::uint64_t* poly = stack_buf;
  const int nwords = (nbits + 63) / 64;
  if (nwords > kStackWords) {
    heap_buf.assign(static_cast<std::size_t>(nwords), 0);
    poly = heap_buf.data();
  }
  gather_bits(poly, 0, cw, static_cast<std::size_t>(k),
              static_cast<std::size_t>(r));
  gather_bits(poly, static_cast<std::size_t>(r), cw, 0,
              static_cast<std::size_t>(k));

  // When the packed LFSR is available, fold c(x) down to R = c(x) mod g(x)
  // first (one table step per byte) and evaluate the syndromes on R's r bits
  // instead of all n: every alpha^j with 1 <= j <= 2t is a root of g, so
  // S_j = c(alpha^j) = (q*g + R)(alpha^j) = R(alpha^j) — the same exact field
  // elements, an identity in GF(2^m), not an approximation. This is also
  // what makes the clean path cheap: R == 0 iff g | c iff every syndrome is
  // zero, so an error-free word costs one division pass plus a short fold.
  const std::uint64_t* fold = poly;
  int nbytes = (nbits + 7) / 8;
  std::uint64_t rem[kMaxRemWords] = {};
  if (rem_words_ > 0) {
    const int w_count = rem_words_;
    // R <- R*x + c_pos, reduced mod g each step; leading nbits % 8 bits
    // per-bit so the remaining stream is whole bytes.
    const int lead = nbits % 8;
    for (int pos = nbits - 1; pos >= nbits - lead; --pos) {
      const bool fb = top_bit(rem, r);
      shl1_masked(rem, w_count, r);
      if (fb)
        for (int w = 0; w < w_count; ++w) rem[w] ^= gen_words_[w];
      rem[0] ^= (poly[pos >> 6] >> (pos & 63)) & 1;
    }
    for (int byte = (nbits - lead) / 8 - 1; byte >= 0; --byte) {
      const unsigned idx = top_byte(rem, r);
      shl8_masked(rem, w_count, r);
      const std::uint64_t* row =
          &enc_tab_[static_cast<std::size_t>(idx) * w_count];
      for (int w = 0; w < w_count; ++w) rem[w] ^= row[w];
      rem[0] ^= (poly[byte >> 3] >> ((byte & 7) * 8)) & 0xFF;
    }
    fold = rem;
    nbytes = (r + 7) / 8;
  }

  for (std::size_t oi = 0; oi < odd_j_.size(); ++oi) {
    const std::uint32_t* tab = &syn_tab_[oi * 256];
    const std::uint32_t step = byte_step_log_[oi];
    std::uint32_t acc = 0;
    for (int byte = nbytes - 1; byte >= 0; --byte) {
      const unsigned v = static_cast<unsigned>(
          (fold[byte >> 3] >> ((byte & 7) * 8)) & 0xFF);
      acc = field_.mul_by_log(acc, step) ^ tab[v];
    }
    syn[static_cast<std::size_t>(odd_j_[oi] - 1)] = acc;
  }
  for (int j = 2; j <= 2 * params_.t; j += 2)
    syn[static_cast<std::size_t>(j - 1)] =
        field_.sqr(syn[static_cast<std::size_t>(j / 2 - 1)]);
  return syn;
}

BchDecodeResult BchCode::decode(const BitVec& codeword) const {
  DM_CHECK_MSG(static_cast<int>(codeword.size()) == code_bits(),
               "decode code word size mismatch");
  auto extract_data = [&](const BitVec& cw) {
    BitVec d(static_cast<std::size_t>(k_data()));
    for (std::size_t w = 0; w < d.word_count(); ++w) d.set_word(w, cw.word(w));
    return d;
  };

  const auto syn = compute_syndromes(codeword);
  if (std::all_of(syn.begin(), syn.end(), [](std::uint32_t s) { return s == 0; }))
    return {DecodeStatus::kClean, extract_data(codeword), 0};

  // Berlekamp–Massey: find the error-locator polynomial sigma(x).
  const int t2 = 2 * params_.t;
  std::vector<std::uint32_t> sigma{1};  // current locator
  std::vector<std::uint32_t> b{1};      // previous locator copy
  int L = 0;
  std::uint32_t bdisc = 1;  // discrepancy at the last length change
  int shift = 1;            // x^shift multiplier for b
  for (int n_iter = 0; n_iter < t2; ++n_iter) {
    // Discrepancy d = S_n + sum_{i=1..L} sigma_i * S_{n-i}.
    std::uint32_t d = syn[static_cast<std::size_t>(n_iter)];
    for (int i = 1; i <= L && i < static_cast<int>(sigma.size()); ++i) {
      const int idx = n_iter - i;
      if (idx >= 0)
        d = field_.add(d, field_.mul(sigma[static_cast<std::size_t>(i)],
                                     syn[static_cast<std::size_t>(idx)]));
    }
    if (d == 0) {
      ++shift;
      continue;
    }
    // sigma' = sigma - (d / bdisc) * x^shift * b
    const std::uint32_t coef = field_.div(d, bdisc);
    std::vector<std::uint32_t> next = sigma;
    if (next.size() < b.size() + static_cast<std::size_t>(shift))
      next.resize(b.size() + static_cast<std::size_t>(shift), 0);
    for (std::size_t i = 0; i < b.size(); ++i)
      next[i + static_cast<std::size_t>(shift)] = field_.add(
          next[i + static_cast<std::size_t>(shift)], field_.mul(coef, b[i]));
    if (2 * L <= n_iter) {
      b = sigma;
      bdisc = d;
      L = n_iter + 1 - L;
      shift = 1;
    } else {
      ++shift;
    }
    sigma = std::move(next);
  }
  // Trim trailing zero coefficients.
  while (sigma.size() > 1 && sigma.back() == 0) sigma.pop_back();
  const int deg = static_cast<int>(sigma.size()) - 1;
  if (deg == 0 || deg > params_.t || L != deg)
    return {DecodeStatus::kUncorrectable, extract_data(codeword), 0};

  // Incremental Chien search over the positions that exist in the shortened
  // code: maintain q_i = sigma_i * alpha^{-pos*i}, advancing each lane by a
  // fixed alpha^{-i} per position. sigma has at most deg roots in the whole
  // field, so once deg distinct roots are found no later position can be one
  // — the early exit is exact, not a heuristic.
  BitVec corrected = codeword;
  int found = 0;
  const int max_pos = code_bits();  // poly positions 0 .. max_pos-1
  const std::uint32_t nf = field_.n();
  std::vector<std::uint32_t> q(sigma);
  std::vector<std::uint32_t> step_lg(sigma.size(), 0);
  for (std::size_t i = 1; i < sigma.size(); ++i)
    step_lg[i] = (nf - static_cast<std::uint32_t>(i % nf)) % nf;  // log a^-i
  for (int pos = 0; pos < max_pos; ++pos) {
    // Error at poly position pos <=> sigma(alpha^{-pos}) == 0.
    std::uint32_t eval = 0;
    for (std::size_t i = 0; i < q.size(); ++i) eval ^= q[i];
    if (eval == 0) {
      const std::size_t bit =
          pos >= parity_bits()
              ? static_cast<std::size_t>(pos - parity_bits())
              : static_cast<std::size_t>(k_data() + pos);
      corrected.flip(bit);
      if (++found == deg) break;
    }
    for (std::size_t i = 1; i < q.size(); ++i)
      q[i] = field_.mul_by_log(q[i], step_lg[i]);
  }
  if (found != deg) {
    // Some roots fell outside the shortened code (or were repeated): a
    // >t-error pattern was detected rather than miscorrected.
    return {DecodeStatus::kUncorrectable, extract_data(codeword), 0};
  }
  // Verify: a true correction must zero all syndromes.
  const auto check = compute_syndromes(corrected);
  if (!std::all_of(check.begin(), check.end(),
                   [](std::uint32_t s) { return s == 0; }))
    return {DecodeStatus::kUncorrectable, extract_data(codeword), 0};
  return {DecodeStatus::kCorrected, extract_data(corrected), found};
}

int max_t_for_parity_budget(int m, int k_data, int parity_budget) {
  int best = 0;
  for (int t = 1;; ++t) {
    BchParams p{m, t, k_data};
    // Cheaply bound: parity <= m*t; stop once even the bound exceeds budget.
    if (m * t > parity_budget && best > 0) break;
    try {
      BchCode code(p);
      if (code.parity_bits() > parity_budget) break;
      best = t;
    } catch (const CheckError&) {
      break;
    }
    if (t > 64) break;  // safety stop
  }
  return best;
}

}  // namespace densemem::ecc
