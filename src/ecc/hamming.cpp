#include "ecc/hamming.h"

#include <array>
#include <bit>

#include "common/check.h"

namespace densemem::ecc {
namespace {

constexpr bool is_pow2(unsigned x) { return x != 0 && (x & (x - 1)) == 0; }

// Hamming position (1..71, skipping powers of two) for each logical data bit.
constexpr std::array<std::uint8_t, 64> make_data_positions() {
  std::array<std::uint8_t, 64> pos{};
  unsigned p = 1, i = 0;
  while (i < 64) {
    if (!is_pow2(p)) pos[i++] = static_cast<std::uint8_t>(p);
    ++p;
  }
  return pos;
}
constexpr auto kDataPos = make_data_positions();

// Word-parallel syndrome kernel: mask j selects the data bits whose Hamming
// position has bit j set, so syndrome bit j = parity(data & mask[j]). One
// popcount per syndrome bit replaces the per-position 0..71 loop.
constexpr std::array<std::uint64_t, 7> make_syndrome_masks() {
  std::array<std::uint64_t, 7> masks{};
  for (unsigned i = 0; i < 64; ++i)
    for (unsigned j = 0; j < 7; ++j)
      if ((kDataPos[i] >> j) & 1) masks[j] |= std::uint64_t{1} << i;
  return masks;
}
constexpr auto kSynMask = make_syndrome_masks();

// Inverse of kDataPos: Hamming position -> logical data bit, 0xFF for the
// check-bit positions (powers of two and the overall-parity position 0).
constexpr std::array<std::uint8_t, 72> make_pos_to_data() {
  std::array<std::uint8_t, 72> inv{};
  for (auto& v : inv) v = 0xFF;
  for (unsigned i = 0; i < 64; ++i) inv[kDataPos[i]] = static_cast<std::uint8_t>(i);
  return inv;
}
constexpr auto kPosToData = make_pos_to_data();

inline unsigned parity64(std::uint64_t x) {
  return static_cast<unsigned>(std::popcount(x)) & 1u;
}

// XOR of the Hamming positions of all set data bits, via the mask kernel.
inline unsigned data_syndrome(std::uint64_t data) {
  unsigned syn = 0;
  for (unsigned j = 0; j < 7; ++j) syn |= parity64(data & kSynMask[j]) << j;
  return syn;
}

}  // namespace

SecdedWord Secded7264::encode(std::uint64_t data) {
  // Syndrome of the data bits determines the Hamming check bits; the overall
  // parity bit makes the full 72-bit word even-parity.
  const unsigned syn = data_syndrome(data);

  SecdedWord w{data, 0};
  w.check = static_cast<std::uint8_t>(syn & 0x7F);
  // Overall parity over positions 1..71 == popcount(data) ^ popcount(check).
  const unsigned ones = static_cast<unsigned>(std::popcount(data)) +
                        static_cast<unsigned>(std::popcount(w.check));
  if (ones & 1) w.check |= 0x80;
  return w;
}

SecdedResult Secded7264::decode(SecdedWord w) {
  // Full-word syndrome: data bits contribute through the parity masks; check
  // bit j sits at position 2^j so it contributes exactly syndrome bit j, and
  // the overall parity bit sits at position 0 (contributes nothing).
  const unsigned syn = data_syndrome(w.data) ^ (w.check & 0x7Fu);
  const unsigned parity = (static_cast<unsigned>(std::popcount(w.data)) +
                           static_cast<unsigned>(std::popcount(w.check))) &
                          1u;
  if (syn == 0 && parity == 0) return {DecodeStatus::kClean, w.data};

  if (parity == 1) {
    // Odd overall parity: a single-bit error (position = syndrome; syndrome 0
    // means the overall parity bit itself flipped).
    if (syn == 0) return {DecodeStatus::kCorrected, w.data};
    if (syn >= 72) {
      // Syndrome names a position outside the code word: only possible for a
      // 3+-bit corruption. Report uncorrectable rather than miscorrect.
      return {DecodeStatus::kUncorrectable, w.data};
    }
    // Flipping a check-bit position leaves the data untouched.
    const unsigned i = kPosToData[syn];
    if (i != 0xFF) return {DecodeStatus::kCorrected, w.data ^ (std::uint64_t{1} << i)};
    return {DecodeStatus::kCorrected, w.data};
  }
  // Even parity with nonzero syndrome: double-bit error detected.
  return {DecodeStatus::kUncorrectable, w.data};
}

SecdedWord Secded7264::flip_bit(SecdedWord w, unsigned bit) {
  DM_CHECK_MSG(bit < kCodeBits, "SECDED bit index out of range");
  if (bit < 64) {
    w.data ^= std::uint64_t{1} << bit;
  } else {
    w.check ^= static_cast<std::uint8_t>(1u << (bit - 64));
  }
  return w;
}

}  // namespace densemem::ecc
