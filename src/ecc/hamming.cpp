#include "ecc/hamming.h"

#include <array>
#include <bit>

#include "common/check.h"

namespace densemem::ecc {
namespace {

constexpr bool is_pow2(unsigned x) { return x != 0 && (x & (x - 1)) == 0; }

// Hamming position (1..71, skipping powers of two) for each logical data bit.
constexpr std::array<std::uint8_t, 64> make_data_positions() {
  std::array<std::uint8_t, 64> pos{};
  unsigned p = 1, i = 0;
  while (i < 64) {
    if (!is_pow2(p)) pos[i++] = static_cast<std::uint8_t>(p);
    ++p;
  }
  return pos;
}
constexpr auto kDataPos = make_data_positions();

struct CodeBits {
  // bits[p] for Hamming position p in 0..71 (0 = overall parity position).
  std::array<bool, 72> bits{};
};

CodeBits unpack(SecdedWord w) {
  CodeBits cb;
  for (unsigned i = 0; i < 64; ++i)
    cb.bits[kDataPos[i]] = (w.data >> i) & 1;
  for (unsigned j = 0; j < 7; ++j)
    cb.bits[1u << j] = (w.check >> j) & 1;
  cb.bits[0] = (w.check >> 7) & 1;
  return cb;
}

SecdedWord pack(const CodeBits& cb) {
  SecdedWord w{0, 0};
  for (unsigned i = 0; i < 64; ++i)
    if (cb.bits[kDataPos[i]]) w.data |= std::uint64_t{1} << i;
  for (unsigned j = 0; j < 7; ++j)
    if (cb.bits[1u << j]) w.check |= static_cast<std::uint8_t>(1u << j);
  if (cb.bits[0]) w.check |= 0x80;
  return w;
}

}  // namespace

SecdedWord Secded7264::encode(std::uint64_t data) {
  // Syndrome of the data bits determines the Hamming check bits; the overall
  // parity bit makes the full 72-bit word even-parity.
  unsigned syn = 0;
  for (unsigned i = 0; i < 64; ++i)
    if ((data >> i) & 1) syn ^= kDataPos[i];

  SecdedWord w{data, 0};
  w.check = static_cast<std::uint8_t>(syn & 0x7F);
  // Overall parity over positions 1..71 == popcount(data) ^ popcount(check).
  const unsigned ones = static_cast<unsigned>(std::popcount(data)) +
                        static_cast<unsigned>(std::popcount(w.check));
  if (ones & 1) w.check |= 0x80;
  return w;
}

SecdedResult Secded7264::decode(SecdedWord w) {
  CodeBits cb = unpack(w);
  unsigned syn = 0;
  unsigned parity = 0;
  for (unsigned p = 0; p < 72; ++p) {
    if (cb.bits[p]) {
      syn ^= p;
      parity ^= 1;
    }
  }
  if (syn == 0 && parity == 0) return {DecodeStatus::kClean, w.data};

  if (parity == 1) {
    // Odd overall parity: a single-bit error (position = syndrome; syndrome 0
    // means the overall parity bit itself flipped).
    if (syn == 0) return {DecodeStatus::kCorrected, w.data};
    if (syn >= 72) {
      // Syndrome names a position outside the code word: only possible for a
      // 3+-bit corruption. Report uncorrectable rather than miscorrect.
      return {DecodeStatus::kUncorrectable, w.data};
    }
    cb.bits[syn] = !cb.bits[syn];
    return {DecodeStatus::kCorrected, pack(cb).data};
  }
  // Even parity with nonzero syndrome: double-bit error detected.
  return {DecodeStatus::kUncorrectable, w.data};
}

SecdedWord Secded7264::flip_bit(SecdedWord w, unsigned bit) {
  DM_CHECK_MSG(bit < kCodeBits, "SECDED bit index out of range");
  if (bit < 64) {
    w.data ^= std::uint64_t{1} << bit;
  } else {
    w.check ^= static_cast<std::uint8_t>(1u << (bit - 64));
  }
  return w;
}

}  // namespace densemem::ecc
