#include "ecc/rs.h"

#include <algorithm>

namespace densemem::ecc {

RsCode::RsCode(RsParams p) : params_(p), field_(8) {
  DM_CHECK_MSG(p.t >= 1, "RS t must be >= 1");
  DM_CHECK_MSG(p.k_data >= 1, "RS payload must be >= 1 symbol");
  DM_CHECK_MSG(p.k_data + 2 * p.t <= 255,
               "RS code word exceeds GF(256) length");
  // g(x) = prod_{i=1}^{2t} (x - alpha^i): roots alpha^1..alpha^2t, matching
  // the syndrome definition S_j = c(alpha^j).
  gen_ = {1};
  for (int i = 1; i <= 2 * p.t; ++i) {
    const std::uint32_t root = field_.alpha_pow(i);
    std::vector<std::uint32_t> next(gen_.size() + 1, 0);
    for (std::size_t j = 0; j < gen_.size(); ++j) {
      next[j + 1] = field_.add(next[j + 1], gen_[j]);
      next[j] = field_.add(next[j], field_.mul(root, gen_[j]));
    }
    gen_ = std::move(next);
  }
}

std::vector<std::uint8_t> RsCode::encode(
    const std::vector<std::uint8_t>& data) const {
  DM_CHECK_MSG(static_cast<int>(data.size()) == k_data(),
               "encode payload size mismatch");
  const int r = parity_symbols();
  // Polynomial division of d(x) * x^r by g(x) (monic): process data symbols
  // from the highest degree down.
  std::vector<std::uint32_t> rem(static_cast<std::size_t>(r), 0);
  for (int i = k_data() - 1; i >= 0; --i) {
    const std::uint32_t fb =
        field_.add(data[static_cast<std::size_t>(i)],
                   rem[static_cast<std::size_t>(r - 1)]);
    for (int j = r - 1; j > 0; --j)
      rem[static_cast<std::size_t>(j)] =
          field_.add(rem[static_cast<std::size_t>(j - 1)],
                     field_.mul(fb, gen_[static_cast<std::size_t>(j)]));
    rem[0] = field_.mul(fb, gen_[0]);
  }
  std::vector<std::uint8_t> cw(static_cast<std::size_t>(code_symbols()));
  std::copy(data.begin(), data.end(), cw.begin());
  for (int j = 0; j < r; ++j)
    cw[static_cast<std::size_t>(k_data() + j)] =
        static_cast<std::uint8_t>(rem[static_cast<std::size_t>(j)]);
  return cw;
}

std::vector<std::uint32_t> RsCode::syndromes(
    const std::vector<std::uint8_t>& cw) const {
  // Polynomial position of code-word symbol i: data i -> 2t + i, parity j ->
  // j (same layout convention as the BCH codec). Each S_j = c(alpha^j) is a
  // Horner fold from the highest position down — one fixed-multiplicand
  // multiply per symbol (log(alpha^j) = j in GF(256), no alpha_pow/mod) —
  // which sums exactly the same field elements as the positional form.
  const int r = parity_symbols();
  const int k = k_data();
  std::vector<std::uint32_t> syn(static_cast<std::size_t>(r), 0);
  for (int j = 1; j <= r; ++j) {
    const auto lg = static_cast<std::uint32_t>(j);
    std::uint32_t acc = 0;
    for (int i = k - 1; i >= 0; --i)
      acc = field_.mul_by_log(acc, lg) ^ cw[static_cast<std::size_t>(i)];
    for (int p = r - 1; p >= 0; --p)
      acc = field_.mul_by_log(acc, lg) ^ cw[static_cast<std::size_t>(k + p)];
    syn[static_cast<std::size_t>(j - 1)] = acc;
  }
  return syn;
}

RsDecodeResult RsCode::decode(const std::vector<std::uint8_t>& codeword) const {
  DM_CHECK_MSG(static_cast<int>(codeword.size()) == code_symbols(),
               "decode code word size mismatch");
  auto extract = [&](const std::vector<std::uint8_t>& cw) {
    return std::vector<std::uint8_t>(cw.begin(),
                                     cw.begin() + k_data());
  };
  const auto syn = syndromes(codeword);
  if (std::all_of(syn.begin(), syn.end(), [](std::uint32_t s) { return s == 0; }))
    return {DecodeStatus::kClean, extract(codeword), 0};

  // Berlekamp–Massey over GF(256).
  const int r = parity_symbols();
  std::vector<std::uint32_t> sigma{1}, b{1};
  int L = 0, shift = 1;
  std::uint32_t bdisc = 1;
  for (int n = 0; n < r; ++n) {
    std::uint32_t d = syn[static_cast<std::size_t>(n)];
    for (int i = 1; i <= L && i < static_cast<int>(sigma.size()); ++i)
      if (n - i >= 0)
        d = field_.add(d, field_.mul(sigma[static_cast<std::size_t>(i)],
                                     syn[static_cast<std::size_t>(n - i)]));
    if (d == 0) {
      ++shift;
      continue;
    }
    const std::uint32_t coef = field_.div(d, bdisc);
    std::vector<std::uint32_t> next = sigma;
    if (next.size() < b.size() + static_cast<std::size_t>(shift))
      next.resize(b.size() + static_cast<std::size_t>(shift), 0);
    for (std::size_t i = 0; i < b.size(); ++i)
      next[i + static_cast<std::size_t>(shift)] = field_.add(
          next[i + static_cast<std::size_t>(shift)], field_.mul(coef, b[i]));
    if (2 * L <= n) {
      b = sigma;
      bdisc = d;
      L = n + 1 - L;
      shift = 1;
    } else {
      ++shift;
    }
    sigma = std::move(next);
  }
  while (sigma.size() > 1 && sigma.back() == 0) sigma.pop_back();
  const int deg = static_cast<int>(sigma.size()) - 1;
  if (deg == 0 || deg > params_.t || L != deg)
    return {DecodeStatus::kUncorrectable, extract(codeword), 0};

  // Omega(x) = S(x) * sigma(x) mod x^r, with S(x) = sum S_{j+1} x^j.
  std::vector<std::uint32_t> omega(static_cast<std::size_t>(r), 0);
  for (int i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < sigma.size(); ++j) {
      const int k = i + static_cast<int>(j);
      if (k >= r) break;
      omega[static_cast<std::size_t>(k)] =
          field_.add(omega[static_cast<std::size_t>(k)],
                     field_.mul(syn[static_cast<std::size_t>(i)], sigma[j]));
    }
  }
  // sigma'(x): formal derivative — only odd-degree terms survive in
  // characteristic 2: dsigma[j-1] = sigma[j] for odd j.
  std::vector<std::uint32_t> dsigma(sigma.size() > 1 ? sigma.size() - 1 : 1, 0);
  for (std::size_t j = 1; j < sigma.size(); j += 2) dsigma[j - 1] = sigma[j];

  // Incremental Chien search + Forney magnitudes: lane i holds
  // sigma_i * alpha^{-pos*i}, advanced by a fixed alpha^{-i} per position.
  // Forney's omega/dsigma evaluations only run at actual roots, and the scan
  // stops once all deg roots are in hand (a degree-deg sigma has no more).
  std::vector<std::uint8_t> corrected = codeword;
  int found = 0;
  const std::uint32_t nf = field_.n();
  std::vector<std::uint32_t> q(sigma);
  std::vector<std::uint32_t> step_lg(sigma.size(), 0);
  for (std::size_t i = 1; i < sigma.size(); ++i)
    step_lg[i] = (nf - static_cast<std::uint32_t>(i % nf)) % nf;  // log a^-i
  for (int pos = 0; pos < code_symbols(); ++pos) {
    std::uint32_t eval = 0;
    for (std::size_t i = 0; i < q.size(); ++i) eval ^= q[i];
    if (eval == 0) {
      const std::uint32_t xinv =
          field_.alpha_pow(-static_cast<std::int64_t>(pos));
      const std::uint32_t num = field_.poly_eval(omega, xinv);
      const std::uint32_t den = field_.poly_eval(dsigma, xinv);
      if (den == 0) return {DecodeStatus::kUncorrectable, extract(codeword), 0};
      const std::uint32_t magnitude = field_.div(num, den);
      const std::size_t idx =
          pos >= parity_symbols()
              ? static_cast<std::size_t>(pos - parity_symbols())
              : static_cast<std::size_t>(k_data() + pos);
      corrected[idx] = static_cast<std::uint8_t>(
          field_.add(corrected[idx], magnitude));
      if (++found == deg) break;
    }
    for (std::size_t i = 1; i < q.size(); ++i)
      q[i] = field_.mul_by_log(q[i], step_lg[i]);
  }
  if (found != deg)
    return {DecodeStatus::kUncorrectable, extract(codeword), 0};
  const auto check = syndromes(corrected);
  if (!std::all_of(check.begin(), check.end(),
                   [](std::uint32_t s) { return s == 0; }))
    return {DecodeStatus::kUncorrectable, extract(codeword), 0};
  return {DecodeStatus::kCorrected, extract(corrected), found};
}

}  // namespace densemem::ecc
