// Finite-field arithmetic GF(2^m) via exp/log tables, m in [2, 16].
//
// Used by the BCH codec (both the flash controller's ECC and the "stronger
// than SECDED" DRAM ECC option the paper discusses in §II-C).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace densemem::ecc {

class GF2m {
 public:
  /// Constructs GF(2^m) with a standard primitive polynomial.
  explicit GF2m(int m);

  int m() const { return m_; }
  /// Field size minus one: the multiplicative group order, 2^m - 1.
  std::uint32_t n() const { return n_; }
  std::uint32_t primitive_poly() const { return poly_; }

  std::uint32_t add(std::uint32_t a, std::uint32_t b) const { return a ^ b; }

  // The exp table is doubled (size 2n) precisely so the summed logs below
  // can index it directly: log a + log b <= 2n - 2 and
  // log a + n - log b <= 2n - 1, so no `% n` reduction is ever needed.
  std::uint32_t mul(std::uint32_t a, std::uint32_t b) const {
    if (a == 0 || b == 0) return 0;
    return exp_[log_[a] + log_[b]];
  }

  std::uint32_t inv(std::uint32_t a) const {
    DM_CHECK_MSG(a != 0, "inverse of zero in GF(2^m)");
    return exp_[n_ - log_[a]];
  }

  std::uint32_t div(std::uint32_t a, std::uint32_t b) const {
    DM_CHECK_MSG(b != 0, "division by zero in GF(2^m)");
    if (a == 0) return 0;
    return exp_[log_[a] + n_ - log_[b]];
  }

  /// a * alpha^lg for a precomputed log lg in [0, n): the fixed-multiplicand
  /// form the Horner syndrome folds and incremental Chien steps use (one
  /// log lookup instead of two).
  std::uint32_t mul_by_log(std::uint32_t a, std::uint32_t lg) const {
    if (a == 0) return 0;
    return exp_[log_[a] + lg];
  }

  /// a^2. In characteristic 2 squaring is linear, which is what lets binary
  /// BCH derive even-indexed syndromes as S_2j = S_j^2.
  std::uint32_t sqr(std::uint32_t a) const {
    if (a == 0) return 0;
    return exp_[2 * log_[a]];
  }

  /// alpha^e for any integer exponent (reduced mod 2^m - 1).
  std::uint32_t alpha_pow(std::int64_t e) const {
    std::int64_t r = e % static_cast<std::int64_t>(n_);
    if (r < 0) r += n_;
    return exp_[static_cast<std::size_t>(r)];
  }

  /// Discrete log base alpha; a must be nonzero.
  std::uint32_t log(std::uint32_t a) const {
    DM_CHECK_MSG(a != 0, "log of zero in GF(2^m)");
    return log_[a];
  }

  std::uint32_t pow(std::uint32_t a, std::uint64_t e) const;

  /// Evaluate a polynomial (coeffs[i] is the coefficient of x^i) at x.
  std::uint32_t poly_eval(const std::vector<std::uint32_t>& coeffs,
                          std::uint32_t x) const;

  /// Default primitive polynomial for a given m (from standard tables).
  static std::uint32_t default_primitive_poly(int m);

 private:
  int m_;
  std::uint32_t n_;
  std::uint32_t poly_;
  std::vector<std::uint32_t> exp_;  // size 2n to avoid a mod in hot paths
  std::vector<std::uint32_t> log_;
};

}  // namespace densemem::ecc
