// Reed–Solomon codec over GF(2^8): symbol-organized ECC.
//
// This is the chipkill-class rung of the §II-C "stronger ECC" ladder:
// where SECDED corrects one bit and BCH t bits, RS corrects t whole
// *symbols* (bytes) per code word — so clustered bit flips inside one byte
// (or one DRAM chip's contribution to the bus) cost a single correction
// unit. Full pipeline: systematic encode, syndrome computation,
// Berlekamp–Massey, Chien search, Forney error magnitudes.
#pragma once

#include <cstdint>
#include <vector>

#include "ecc/gf.h"
#include "ecc/hamming.h"  // DecodeStatus

namespace densemem::ecc {

struct RsParams {
  int t;       ///< symbol-correction capability; parity = 2t symbols
  int k_data;  ///< data symbols per (possibly shortened) code word
};

struct RsDecodeResult {
  DecodeStatus status;
  std::vector<std::uint8_t> data;  ///< corrected payload (k_data symbols)
  int corrected_symbols = 0;
};

class RsCode {
 public:
  explicit RsCode(RsParams p);

  int t() const { return params_.t; }
  int k_data() const { return params_.k_data; }
  int parity_symbols() const { return 2 * params_.t; }
  int code_symbols() const { return k_data() + parity_symbols(); }
  double overhead() const {
    return static_cast<double>(parity_symbols()) /
           static_cast<double>(code_symbols());
  }

  /// Systematic encode: returns [data | parity] of code_symbols() bytes.
  std::vector<std::uint8_t> encode(const std::vector<std::uint8_t>& data) const;

  /// Decode a possibly-corrupted code word: corrects up to t symbol errors.
  RsDecodeResult decode(const std::vector<std::uint8_t>& codeword) const;

 private:
  std::vector<std::uint32_t> syndromes(
      const std::vector<std::uint8_t>& cw) const;

  RsParams params_;
  GF2m field_;
  std::vector<std::uint32_t> gen_;  ///< generator poly coefficients (GF(256))
};

}  // namespace densemem::ecc
