// Binary BCH codec: systematic encoding, Berlekamp–Massey decoding, Chien
// search. Supports shortening so a code over GF(2^m) can protect an
// arbitrary payload length (e.g. a 1 KiB flash sector slice or a 64-byte
// DRAM cache block).
//
// This is the "stronger ECC" of §II-C for DRAM, and the ECC engine of the
// flash controller in §III (modern SSDs rely on exactly this family).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "ecc/gf.h"
#include "ecc/hamming.h"  // for DecodeStatus

namespace densemem::ecc {

struct BchParams {
  int m;       ///< field degree: code length n = 2^m - 1
  int t;       ///< designed error-correction capability (bits per code word)
  int k_data;  ///< payload bits per (possibly shortened) code word
};

struct BchDecodeResult {
  DecodeStatus status;
  BitVec data;              ///< corrected payload (k_data bits)
  int corrected_bits = 0;   ///< number of bit positions flipped back
};

class BchCode {
 public:
  /// Builds the code: computes the generator polynomial as the LCM of the
  /// minimal polynomials of alpha^1..alpha^2t. Throws CheckError if the
  /// requested payload does not fit (k_data > n - deg(g)).
  explicit BchCode(BchParams p);

  int n() const { return static_cast<int>(field_.n()); }      ///< full length
  int t() const { return params_.t; }
  int k_data() const { return params_.k_data; }
  int parity_bits() const { return static_cast<int>(gen_.size()) - 1; }
  int code_bits() const { return k_data() + parity_bits(); }  ///< shortened n
  /// Redundancy as a fraction of the code word.
  double overhead() const {
    return static_cast<double>(parity_bits()) / static_cast<double>(code_bits());
  }

  /// Systematic encode: returns [data | parity] of code_bits() bits.
  BitVec encode(const BitVec& data) const;

  /// Decode a (possibly corrupted) code word of code_bits() bits.
  /// Up to t bit errors are corrected; more may be detected or (rarely)
  /// miscorrected — the real hazard the paper's ECC discussion relies on.
  BchDecodeResult decode(const BitVec& codeword) const;

  const std::vector<std::uint8_t>& generator() const { return gen_; }

 private:
  std::vector<std::uint32_t> compute_syndromes(const BitVec& cw) const;
  void build_kernels();

  BchParams params_;
  GF2m field_;
  std::vector<std::uint8_t> gen_;  ///< generator poly coefficients (GF(2))

  // --- word-parallel kernels (derived from gen_, built once) --------------
  /// Remainder words per LFSR state: ceil(parity_bits / 64). 0 disables the
  /// table paths (tiny codes with < 8 parity bits fall back to per-bit).
  int rem_words_ = 0;
  /// Generator bits 0..r-1, packed.
  std::vector<std::uint64_t> gen_words_;
  /// Byte-at-a-time LFSR step: remainder of v(x)*x^r mod g for each of the
  /// 256 top-byte values, rem_words_ words per entry (CRC-style).
  std::vector<std::uint64_t> enc_tab_;
  /// Odd syndrome indices 1, 3, ..., 2t-1 (evens derive as S_2j = S_j^2).
  std::vector<int> odd_j_;
  /// Per odd syndrome j: 256-entry byte-fold table P_j(v) = sum over set
  /// bits s of v of alpha^(s*j), laid out row-major [odd][256].
  std::vector<std::uint32_t> syn_tab_;
  /// Per odd syndrome j: log(alpha^(8j)), the Horner byte-step multiplier.
  std::vector<std::uint32_t> byte_step_log_;
};

/// Convenience: smallest t such that a BCH code over GF(2^m) with the given
/// payload can correct t errors within a parity budget.
int max_t_for_parity_budget(int m, int k_data, int parity_budget);

}  // namespace densemem::ecc
