#include "ecc/gf.h"

namespace densemem::ecc {

std::uint32_t GF2m::default_primitive_poly(int m) {
  // x^m + ... + 1, encoded with bit i = coefficient of x^i.
  switch (m) {
    case 2:  return 0x7;      // x^2 + x + 1
    case 3:  return 0xB;      // x^3 + x + 1
    case 4:  return 0x13;     // x^4 + x + 1
    case 5:  return 0x25;     // x^5 + x^2 + 1
    case 6:  return 0x43;     // x^6 + x + 1
    case 7:  return 0x89;     // x^7 + x^3 + 1
    case 8:  return 0x11D;    // x^8 + x^4 + x^3 + x^2 + 1
    case 9:  return 0x211;    // x^9 + x^4 + 1
    case 10: return 0x409;    // x^10 + x^3 + 1
    case 11: return 0x805;    // x^11 + x^2 + 1
    case 12: return 0x1053;   // x^12 + x^6 + x^4 + x + 1
    case 13: return 0x201B;   // x^13 + x^4 + x^3 + x + 1
    case 14: return 0x4443;   // x^14 + x^10 + x^6 + x + 1
    case 15: return 0x8003;   // x^15 + x + 1
    case 16: return 0x1100B;  // x^16 + x^12 + x^3 + x + 1
    default:
      DM_CHECK_MSG(false, "GF(2^m) supported only for m in [2,16]");
      return 0;
  }
}

GF2m::GF2m(int m)
    : m_(m),
      n_((1u << m) - 1),
      poly_(default_primitive_poly(m)),
      exp_(2 * ((1u << m) - 1)),
      log_(1u << m) {
  std::uint32_t x = 1;
  for (std::uint32_t i = 0; i < n_; ++i) {
    exp_[i] = x;
    log_[x] = i;
    x <<= 1;
    if (x & (1u << m_)) x ^= poly_;
  }
  for (std::uint32_t i = n_; i < 2 * n_; ++i) exp_[i] = exp_[i - n_];
  log_[0] = 0;  // never read; see DM_CHECK in log()
}

std::uint32_t GF2m::pow(std::uint32_t a, std::uint64_t e) const {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const std::uint64_t le = (static_cast<std::uint64_t>(log_[a]) * e) % n_;
  return exp_[static_cast<std::size_t>(le)];
}

std::uint32_t GF2m::poly_eval(const std::vector<std::uint32_t>& coeffs,
                              std::uint32_t x) const {
  std::uint32_t acc = 0;
  for (std::size_t i = coeffs.size(); i-- > 0;) acc = add(mul(acc, x), coeffs[i]);
  return acc;
}

}  // namespace densemem::ecc
