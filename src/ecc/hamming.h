// (72,64) extended-Hamming SECDED codec — the "simple SECDED ECC, as
// employed in many systems" of §II-C. Operates on real code words so that
// behaviour on 3+ flips (possible miscorrection) emerges from the code
// itself rather than being assumed.
#pragma once

#include <cstdint>

namespace densemem::ecc {

enum class DecodeStatus {
  kClean,          ///< syndrome zero: no error observed
  kCorrected,      ///< single-bit error corrected
  kUncorrectable,  ///< double-bit error detected (SECDED detection)
};

struct SecdedWord {
  std::uint64_t data;    ///< 64 data bits
  std::uint8_t check;    ///< 8 check bits (7 Hamming + overall parity)
};

struct SecdedResult {
  DecodeStatus status;
  std::uint64_t data;  ///< corrected data (valid unless kUncorrectable)
};

/// Stateless (72,64) SECDED codec. The layout places code-word bits in
/// classic 1-indexed Hamming positions 1..71 with check bits at powers of
/// two, plus an overall parity bit at position 0.
class Secded7264 {
 public:
  static SecdedWord encode(std::uint64_t data);

  /// Decodes a possibly-corrupted word. For 3+ raw bit errors, the code can
  /// (and sometimes will) miscorrect — exactly the silent-data-corruption
  /// hazard the paper's ECC discussion turns on.
  static SecdedResult decode(SecdedWord w);

  /// Flip the given bit (0..71) of a code word: bits 0..63 are data bits in
  /// logical order, bits 64..71 the check bits. Used for fault injection.
  static SecdedWord flip_bit(SecdedWord w, unsigned bit);

  static constexpr unsigned kDataBits = 64;
  static constexpr unsigned kCheckBits = 8;
  static constexpr unsigned kCodeBits = 72;
};

}  // namespace densemem::ecc
