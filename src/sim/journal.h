// Append-only checkpoint journal for campaign runs.
//
// One text line per settled job, flushed as it completes, so a campaign
// killed at any instant loses at most the jobs still in flight:
//
//   #densemem-journal v1
//   S <campaign> <seed> <jobs> <tag>          — section header, one per run
//   D <index> <attempts> <digest16> <payload> — job completed
//   Q <index> <attempts> <error>              — job quarantined
//
// The payload is the job's serialized result (see PayloadWriter): resuming
// replays it through the campaign's codec instead of re-running the job,
// which is what makes a resumed run's merged output byte-identical to an
// uninterrupted one. Doubles are stored as bit patterns, never decimal, so
// the round trip is exact. The digest (FNV-1a 64 of the payload text)
// rejects corrupted records; a torn final line (the kill landed mid-write)
// is dropped, a malformed line anywhere else is an error.
//
// A file may hold many sections: a multi-campaign bench writes one section
// per campaign, and resuming appends a fresh section header before the new
// records, so sections with the same name merge on load (later records win
// per index — they are identical anyway, results being deterministic).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace densemem::sim {

/// FNV-1a 64-bit over a byte string; the journal's record checksum.
std::uint64_t fnv1a64(std::string_view s);

/// %-escapes whitespace and '%' so any string fits in one space-separated
/// token on one line. unescape() inverts it exactly.
std::string escape_token(std::string_view s);
std::string unescape_token(std::string_view s);

/// Serializes a job result as space-separated tokens. Numeric fields are
/// exact: f64 is the IEEE-754 bit pattern in hex, so a decoded double is
/// bit-identical to the encoded one (formatting code downstream then emits
/// identical bytes).
class PayloadWriter {
 public:
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void str(std::string_view s);
  std::string take() { return std::move(out_); }

 private:
  void sep();
  std::string out_;
};

/// Reads tokens back in the order they were written. Throws
/// std::runtime_error on malformed input (corrupt journal payloads must
/// not decode silently).
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : rest_(payload) {}
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  std::string str();
  bool done() const { return rest_.empty(); }

 private:
  std::string_view next_token();
  std::string_view rest_;
};

/// A loaded journal: sections keyed by campaign name, records keyed by job
/// index.
struct Journal {
  struct Record {
    std::size_t index = 0;
    unsigned attempts = 0;
    bool quarantined = false;
    std::string payload;  ///< completed jobs: the encoded result
    std::string error;    ///< quarantined jobs: the last failure message
  };
  struct Section {
    std::uint64_t seed = 0;
    std::size_t jobs = 0;
    std::string tag;  ///< opaque run descriptor (e.g. "quick"); must match
    std::map<std::size_t, Record> records;
  };

  std::map<std::string, Section> sections;

  /// Parses a journal file. Throws std::runtime_error on a missing file,
  /// a bad magic line, or a malformed/corrupt record anywhere but the very
  /// last line (a torn tail from a mid-write kill is dropped with a stderr
  /// note).
  static Journal load(const std::string& path);

  const Section* find(const std::string& campaign) const {
    auto it = sections.find(campaign);
    return it == sections.end() ? nullptr : &it->second;
  }
};

/// Streaming, memory-flat view over a set of journal files — the per-shard
/// journals a fleet supervisor merges, or a single file resumed without
/// materializing it. Nothing is loaded up front: validate() and replay()
/// scan the files line by line, so supervisor memory stays flat no matter
/// how many records a fleet run produced.
///
/// Torn-tail semantics are per *file*: each shard journal may end in one
/// torn line (the worker was killed mid-append) which is dropped with a
/// stderr note, but a malformed or digest-failing record anywhere earlier
/// is corruption and throws an error naming the offending shard file and
/// line — a half-eaten journal must never replay silently.
class ShardJournalStream {
 public:
  explicit ShardJournalStream(std::vector<std::string> paths)
      : paths_(std::move(paths)) {}

  const std::vector<std::string>& paths() const { return paths_; }

  /// Full syntactic pass over every file: magic line, record grammar,
  /// payload digests, record indices inside their section's grid. Throws
  /// std::runtime_error naming the file (and line) on the first problem
  /// that is not a torn final line.
  void validate() const;

  /// Streams every record of `campaign`'s sections across all files, in
  /// file order. Each matching section header must carry exactly
  /// (seed, jobs, tag); a mismatch throws — a shard journal recorded for a
  /// different grid must not replay silently. Sections merged across
  /// resumed runs may repeat an index; callers dedup by index (duplicate
  /// records are identical anyway, results being deterministic).
  void replay(const std::string& campaign, std::uint64_t seed,
              std::size_t jobs, const std::string& tag,
              const std::function<void(const Journal::Record&)>& fn) const;

 private:
  std::vector<std::string> paths_;
};

/// Appends records as jobs settle; every record is one fprintf + fflush
/// under a mutex, so concurrent jobs interleave whole lines and a crash
/// tears at most the line being written.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Opens the journal. `append` continues an existing file (resume) —
  /// first truncating away a torn final line left by a mid-append kill, so
  /// new records never fuse onto it — otherwise the file is truncated
  /// whole. The magic line is written when the file starts empty. Returns
  /// false if the file cannot be opened.
  bool open(const std::string& path, bool append);
  bool is_open() const { return f_ != nullptr; }
  const std::string& path() const { return path_; }

  void begin_section(const std::string& campaign, std::uint64_t seed,
                     std::size_t jobs, const std::string& tag);
  void record_done(std::size_t index, unsigned attempts,
                   const std::string& payload);
  void record_quarantined(std::size_t index, unsigned attempts,
                          const std::string& error);

 private:
  std::mutex mu_;
  std::FILE* f_ = nullptr;
  std::string path_;
};

}  // namespace densemem::sim
