#include "sim/telemetry.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/check.h"
#include "sim/thread_pool.h"

namespace densemem::sim {

MetricsRegistry::Shard& MetricsRegistry::my_shard() {
  const unsigned id = ThreadPool::current_worker_id();
  std::lock_guard<std::mutex> lock(shards_mu_);
  while (shards_.size() <= id) shards_.push_back(std::make_unique<Shard>());
  return *shards_[id];
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  Shard& s = my_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.counters.find(name);
  if (it == s.counters.end())
    s.counters.emplace(std::string(name), delta);
  else
    it->second += delta;
}

void MetricsRegistry::set(std::string_view name, double value) {
  Shard& s = my_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.gauges.find(name);
  if (it == s.gauges.end())
    s.gauges.emplace(std::string(name), value);
  else
    it->second = value;
}

void MetricsRegistry::observe(std::string_view name, double value) {
  Shard& s = my_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.stats.find(name);
  if (it == s.stats.end())
    it = s.stats.emplace(std::string(name), RunningStats{}).first;
  it->second.add(value);
}

void MetricsRegistry::observe_hist(std::string_view name, double lo, double hi,
                                   std::size_t bins, double value) {
  Shard& s = my_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.histograms.find(name);
  if (it == s.histograms.end())
    it = s.histograms.emplace(std::string(name), Histogram(lo, hi, bins)).first;
  it->second.add(value);
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  // Copy the shard pointer list under the vector lock, then merge shard by
  // shard in index order (the deterministic merge order the header pins).
  std::vector<Shard*> shards;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    shards.reserve(shards_.size());
    for (const auto& s : shards_) shards.push_back(s.get());
  }
  for (Shard* s : shards) {
    std::lock_guard<std::mutex> lock(s->mu);
    for (const auto& [name, v] : s->counters) snap.counters[name] += v;
    for (const auto& [name, v] : s->gauges) {
      auto it = snap.gauges.find(name);
      if (it == snap.gauges.end())
        snap.gauges.emplace(name, v);
      else
        it->second = std::max(it->second, v);
    }
    for (const auto& [name, v] : s->stats) {
      auto it = snap.stats.find(name);
      if (it == snap.stats.end())
        snap.stats.emplace(name, v);
      else
        it->second.merge(v);
    }
    for (const auto& [name, v] : s->histograms) {
      auto it = snap.histograms.find(name);
      if (it == snap.histograms.end())
        snap.histograms.emplace(name, v);
      else
        it->second.merge(v);
    }
  }
  return snap;
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  std::uint64_t total = 0;
  std::vector<Shard*> shards;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    for (const auto& s : shards_) shards.push_back(s.get());
  }
  for (Shard* s : shards) {
    std::lock_guard<std::mutex> lock(s->mu);
    auto it = s->counters.find(name);
    if (it != s->counters.end()) total += it->second;
  }
  return total;
}

double MetricsRegistry::gauge(std::string_view name) const {
  double value = 0.0;
  bool seen = false;
  std::vector<Shard*> shards;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    for (const auto& s : shards_) shards.push_back(s.get());
  }
  for (Shard* s : shards) {
    std::lock_guard<std::mutex> lock(s->mu);
    auto it = s->gauges.find(name);
    if (it != s->gauges.end()) {
      value = seen ? std::max(value, it->second) : it->second;
      seen = true;
    }
  }
  return value;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan literals
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const Snapshot snap = snapshot();
  const char* sep = "";
  os << "{\n  \"counters\": {";
  for (const auto& [name, v] : snap.counters) {
    os << sep << "\n    \"" << json_escape(name) << "\": " << v;
    sep = ",";
  }
  os << (snap.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  sep = "";
  for (const auto& [name, v] : snap.gauges) {
    os << sep << "\n    \"" << json_escape(name) << "\": " << json_double(v);
    sep = ",";
  }
  os << (snap.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  sep = "";
  for (const auto& [name, h] : snap.histograms) {
    os << sep << "\n    \"" << json_escape(name) << "\": {\"lo\": "
       << json_double(h.bin_lo(0)) << ", \"hi\": "
       << json_double(h.bin_hi(h.num_bins() - 1)) << ", \"underflow\": "
       << h.underflow() << ", \"overflow\": " << h.overflow()
       << ", \"total\": " << h.total() << ", \"bins\": [";
    for (std::size_t i = 0; i < h.num_bins(); ++i)
      os << (i ? ", " : "") << h.bin_count(i);
    os << "]}";
    sep = ",";
  }
  os << (snap.histograms.empty() ? "" : "\n  ") << "},\n  \"timings\": {";
  sep = "";
  for (const auto& [name, st] : snap.stats) {
    os << sep << "\n    \"" << json_escape(name) << "\": {\"count\": "
       << st.count() << ", \"sum\": " << json_double(st.sum())
       << ", \"mean\": " << json_double(st.mean())
       << ", \"stddev\": " << json_double(st.stddev())
       << ", \"min\": " << json_double(st.min())
       << ", \"max\": " << json_double(st.max()) << "}";
    sep = ",";
  }
  os << (snap.stats.empty() ? "" : "\n  ") << "}\n}\n";
}

bool MetricsRegistry::write_json_file(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  write_json(f);
  return static_cast<bool>(f);
}

}  // namespace densemem::sim
