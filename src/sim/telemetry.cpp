#include "sim/telemetry.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include <algorithm>

#include "common/check.h"
#include "sim/journal.h"
#include "sim/thread_pool.h"

namespace densemem::sim {

MetricsRegistry::Shard& MetricsRegistry::my_shard() {
  const unsigned id = ThreadPool::current_worker_id();
  std::lock_guard<std::mutex> lock(shards_mu_);
  while (shards_.size() <= id) shards_.push_back(std::make_unique<Shard>());
  return *shards_[id];
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  Shard& s = my_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.counters.find(name);
  if (it == s.counters.end())
    s.counters.emplace(std::string(name), delta);
  else
    it->second += delta;
}

void MetricsRegistry::set(std::string_view name, double value) {
  Shard& s = my_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.gauges.find(name);
  if (it == s.gauges.end())
    s.gauges.emplace(std::string(name), value);
  else
    it->second = value;
}

void MetricsRegistry::observe(std::string_view name, double value) {
  Shard& s = my_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.stats.find(name);
  if (it == s.stats.end())
    it = s.stats.emplace(std::string(name), RunningStats{}).first;
  it->second.add(value);
}

void MetricsRegistry::observe_hist(std::string_view name, double lo, double hi,
                                   std::size_t bins, double value) {
  Shard& s = my_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.histograms.find(name);
  if (it == s.histograms.end())
    it = s.histograms.emplace(std::string(name), Histogram(lo, hi, bins)).first;
  it->second.add(value);
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  // Copy the shard pointer list under the vector lock, then merge shard by
  // shard in index order (the deterministic merge order the header pins).
  std::vector<Shard*> shards;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    shards.reserve(shards_.size());
    for (const auto& s : shards_) shards.push_back(s.get());
  }
  for (Shard* s : shards) {
    std::lock_guard<std::mutex> lock(s->mu);
    for (const auto& [name, v] : s->counters) snap.counters[name] += v;
    for (const auto& [name, v] : s->gauges) {
      auto it = snap.gauges.find(name);
      if (it == snap.gauges.end())
        snap.gauges.emplace(name, v);
      else
        it->second = std::max(it->second, v);
    }
    for (const auto& [name, v] : s->stats) {
      auto it = snap.stats.find(name);
      if (it == snap.stats.end())
        snap.stats.emplace(name, v);
      else
        it->second.merge(v);
    }
    for (const auto& [name, v] : s->histograms) {
      auto it = snap.histograms.find(name);
      if (it == snap.histograms.end())
        snap.histograms.emplace(name, v);
      else
        it->second.merge(v);
    }
  }
  return snap;
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  std::uint64_t total = 0;
  std::vector<Shard*> shards;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    for (const auto& s : shards_) shards.push_back(s.get());
  }
  for (Shard* s : shards) {
    std::lock_guard<std::mutex> lock(s->mu);
    auto it = s->counters.find(name);
    if (it != s->counters.end()) total += it->second;
  }
  return total;
}

double MetricsRegistry::gauge(std::string_view name) const {
  double value = 0.0;
  bool seen = false;
  std::vector<Shard*> shards;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    for (const auto& s : shards_) shards.push_back(s.get());
  }
  for (Shard* s : shards) {
    std::lock_guard<std::mutex> lock(s->mu);
    auto it = s->gauges.find(name);
    if (it != s->gauges.end()) {
      value = seen ? std::max(value, it->second) : it->second;
      seen = true;
    }
  }
  return value;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan literals
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const Snapshot snap = snapshot();
  const char* sep = "";
  os << "{\n  \"counters\": {";
  for (const auto& [name, v] : snap.counters) {
    os << sep << "\n    \"" << json_escape(name) << "\": " << v;
    sep = ",";
  }
  os << (snap.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  sep = "";
  for (const auto& [name, v] : snap.gauges) {
    os << sep << "\n    \"" << json_escape(name) << "\": " << json_double(v);
    sep = ",";
  }
  os << (snap.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  sep = "";
  for (const auto& [name, h] : snap.histograms) {
    os << sep << "\n    \"" << json_escape(name) << "\": {\"lo\": "
       << json_double(h.bin_lo(0)) << ", \"hi\": "
       << json_double(h.bin_hi(h.num_bins() - 1)) << ", \"underflow\": "
       << h.underflow() << ", \"overflow\": " << h.overflow()
       << ", \"total\": " << h.total() << ", \"bins\": [";
    for (std::size_t i = 0; i < h.num_bins(); ++i)
      os << (i ? ", " : "") << h.bin_count(i);
    os << "]}";
    sep = ",";
  }
  os << (snap.histograms.empty() ? "" : "\n  ") << "},\n  \"timings\": {";
  sep = "";
  for (const auto& [name, st] : snap.stats) {
    os << sep << "\n    \"" << json_escape(name) << "\": {\"count\": "
       << st.count() << ", \"sum\": " << json_double(st.sum())
       << ", \"mean\": " << json_double(st.mean())
       << ", \"stddev\": " << json_double(st.stddev())
       << ", \"min\": " << json_double(st.min())
       << ", \"max\": " << json_double(st.max()) << "}";
    sep = ",";
  }
  os << (snap.stats.empty() ? "" : "\n  ") << "}\n}\n";
}

bool MetricsRegistry::write_json_file(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  write_json(f);
  return static_cast<bool>(f);
}

namespace {
constexpr const char* kRawMagic = "#densemem-metrics-raw v1";
}

bool MetricsRegistry::write_raw_file(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc | std::ios::binary);
  if (!f) return false;
  f << kRawMagic << "\n";
  const Snapshot snap = snapshot();
  for (const auto& [name, v] : snap.counters) {
    PayloadWriter w;
    w.str(name);
    w.u64(v);
    f << "C " << w.take() << "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    PayloadWriter w;
    w.str(name);
    w.f64(v);
    f << "G " << w.take() << "\n";
  }
  for (const auto& [name, st] : snap.stats) {
    PayloadWriter w;
    w.str(name);
    w.u64(st.count());
    w.f64(st.mean());
    w.f64(st.m2());
    w.f64(st.sum());
    w.f64(st.min());
    w.f64(st.max());
    f << "S " << w.take() << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    PayloadWriter w;
    w.str(name);
    w.f64(h.lo());
    w.f64(h.width());
    w.u64(h.num_bins());
    w.u64(h.underflow());
    w.u64(h.overflow());
    for (std::size_t i = 0; i < h.num_bins(); ++i) w.u64(h.bin_count(i));
    f << "H " << w.take() << "\n";
  }
  return static_cast<bool>(f);
}

bool MetricsRegistry::merge_raw_file(const std::string& path,
                                     const std::string& prefix) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line) || line != kRawMagic) return false;
  Shard& s = my_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  while (std::getline(in, line)) {
    if (line.size() < 2 || line[1] != ' ') return false;
    try {
      PayloadReader r(std::string_view(line).substr(2));
      const std::string name = prefix + r.str();
      switch (line[0]) {
        case 'C': {
          s.counters[name] += r.u64();
          break;
        }
        case 'G': {
          const double v = r.f64();
          auto [it, inserted] = s.gauges.emplace(name, v);
          if (!inserted) it->second = std::max(it->second, v);
          break;
        }
        case 'S': {
          const std::uint64_t n = r.u64();
          const double mean = r.f64();
          const double m2 = r.f64();
          const double sum = r.f64();
          const double mn = r.f64();
          const double mx = r.f64();
          s.stats[name].merge(
              RunningStats::from_parts(n, mean, m2, sum, mn, mx));
          break;
        }
        case 'H': {
          const double lo = r.f64();
          const double width = r.f64();
          const std::uint64_t nbins = r.u64();
          const std::uint64_t uf = r.u64();
          const std::uint64_t of = r.u64();
          std::vector<std::uint64_t> bins(nbins);
          for (std::uint64_t i = 0; i < nbins; ++i) bins[i] = r.u64();
          Histogram h = Histogram::from_parts(lo, width, std::move(bins), uf, of);
          auto it = s.histograms.find(name);
          if (it == s.histograms.end())
            s.histograms.emplace(name, std::move(h));
          else
            it->second.merge(h);
          break;
        }
        default:
          return false;
      }
    } catch (...) {
      return false;
    }
  }
  return true;
}

}  // namespace densemem::sim
