// Per-job retry policy and deadline failure for the campaign engine.
//
// A retried job re-runs with the *same* stream_seed (the seed depends only
// on (campaign seed, job index), never on the attempt number), so a job
// that succeeds on attempt 3 produces a result byte-identical to one that
// succeeded on attempt 1. Backoff delays are a pure function of the attempt
// number — no jitter source — so the schedule of a retrying campaign is as
// reproducible as its output.
#pragma once

#include <algorithm>
#include <stdexcept>
#include <string>

namespace densemem::sim {

/// Thrown (and caught by the campaign executor) when a job overruns its
/// deadline: either the watchdog marked it expired mid-run and the job
/// bailed out co-operatively, or its wall time exceeded the budget by the
/// time it returned. Counts as an ordinary attempt failure — retried, then
/// quarantined.
class JobTimeout : public std::runtime_error {
 public:
  explicit JobTimeout(const std::string& what) : std::runtime_error(what) {}
};

struct RetryPolicy {
  /// Total attempts per job (first try included). 1 = no retries, the
  /// pre-fault-tolerance behaviour.
  unsigned max_attempts = 1;
  /// Delay before the first retry (attempt 1, 0-based), in milliseconds.
  /// 0 disables backoff entirely.
  double backoff_ms = 0.0;
  /// Each further retry multiplies the delay by this factor.
  double backoff_multiplier = 2.0;
  /// Upper bound on any single delay.
  double backoff_max_ms = 2000.0;

  /// Deterministic delay (ms) to sleep before 0-based attempt `attempt`.
  /// Attempt 0 (the first try) never waits.
  double backoff_for(unsigned attempt) const {
    if (attempt == 0 || backoff_ms <= 0.0) return 0.0;
    double d = backoff_ms;
    for (unsigned k = 1; k < attempt; ++k) d *= backoff_multiplier;
    return std::min(d, backoff_max_ms);
  }
};

}  // namespace densemem::sim
