// FleetRunner — the multi-process shard supervisor.
//
// A fleet run splits a campaign grid across N worker *processes*: the
// supervisor fork/execs the same bench binary N times with `--shard i/N
// --journal <base>.shard<i>`, and each worker runs only its residue class
// of job indices (index % N == i), checkpointing every settled job to its
// own journal. Process isolation is the point: a worker segfault, OOM
// kill, or stuck syscall costs one shard's in-flight jobs, not the run —
// the in-process retry/watchdog layer (campaign.h) is cooperative and
// cannot survive those.
//
// Supervisor state machine, per shard:
//
//   spawned ──exit 0──────────────────────────▶ done
//      │ ▲                                       │
//      │ └──respawn (incarnations ≤ budget)──┐   │
//      ├──crash (signal / unknown exit) ─────┤   │
//      ├──heartbeat stale ──SIGKILL──────────┘   │
//      │        └─respawn budget exhausted──▶ quarantined
//      ├──exit 75 ──────────────────────────▶ resumable (not respawned:
//      │                                       a deliberate interruption)
//      └──exit 64/70/74/126/127 ────────────▶ fleet failed (config and
//                                              software errors repeat
//                                              identically; respawning
//                                              would loop forever)
//
// A respawned worker is launched in resume mode against its own journal,
// so it replays its settled jobs and continues — crash recovery costs only
// the jobs that were in flight when the worker died. Liveness comes from
// heartbeat files: each worker touches `<journal>.hb` a few times a second
// (HeartbeatWriter); a shard whose heartbeat goes stale is SIGKILLed and
// takes the crash path. Worker stdout/stderr go to `<journal>.out/.err` —
// the supervisor's own stdout stays clean for the merged replay
// (bench_util re-runs the bench body over the merged shard journals, which
// is what makes fleet stdout byte-identical to a single-process run).
//
// Outcomes: kComplete (all shards done), kResumable (a shard exited 75 or
// the supervisor was interrupted — rerun to continue), kPartial (a shard
// exhausted its respawn budget and was quarantined; the merged run reports
// its job range as quarantined and the bench exits 76), kFailed (a shard
// hit a permanent error, or quarantine under fail_fast).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/telemetry.h"

namespace densemem::sim {

/// Thrown by callers (bench_util) when a fleet run ends kResumable: the
/// run_guarded translation to exit 75, mirroring CampaignInterrupted.
class FleetInterrupted : public std::runtime_error {
 public:
  explicit FleetInterrupted(const std::string& why)
      : std::runtime_error("fleet interrupted: " + why +
                           "; rerun the same command to continue") {}
};

enum class FleetOutcome {
  kComplete,   ///< every shard ran to completion
  kResumable,  ///< interrupted (worker exit 75 or supervisor signal)
  kPartial,    ///< ≥1 shard quarantined; surviving results are complete
  kFailed,     ///< permanent worker error, or quarantine under fail_fast
};

struct FleetResult {
  FleetOutcome outcome = FleetOutcome::kComplete;
  /// Shards whose respawn budget ran out; their unsettled job ranges are
  /// what the merged run quarantines.
  std::vector<unsigned> quarantined_shards;
  std::string error;  ///< what went wrong, for kFailed/kResumable
};

struct FleetConfig {
  unsigned shards = 1;
  /// Shard i's journal lives at FleetRunner::shard_path(journal_base, i);
  /// its heartbeat / captured stdout / stderr add .hb / .out / .err.
  std::string journal_base;
  /// A live worker whose heartbeat file is older than this (measured from
  /// the later of the file mtime and the worker's own spawn time, so a
  /// stale file from a previous incarnation never kills a fresh worker) is
  /// presumed hung and SIGKILLed onto the crash path.
  double heartbeat_timeout_s = 30.0;
  double poll_interval_s = 0.05;
  /// Extra incarnations per shard after the first; the budget crash
  /// recovery draws from before quarantining the shard.
  unsigned max_respawns = 2;
  /// true: a quarantined shard fails the whole fleet (abort semantics).
  /// false: the fleet degrades — surviving shards finish, the merged run
  /// reports the lost range, outcome kPartial.
  bool fail_fast = true;
  /// Supervisor metrics land here under "fleet." (shards.respawned,
  /// shards.quarantined, shards.resumable, heartbeat.max_age_s, plus
  /// worker totals summed from their manifests). nullptr = not recorded.
  MetricsRegistry* metrics = nullptr;
  /// Builds a worker's argv. `first` is false for respawns and reruns over
  /// an existing journal — crash injection (--fleet-kill-after) must only
  /// arm on first incarnations or the fleet would kill itself forever.
  std::function<std::vector<std::string>(
      unsigned shard, const std::string& journal_path, bool first)>
      make_worker_argv;
};

class FleetRunner {
 public:
  FleetRunner(std::string name, FleetConfig cfg);

  /// Spawns every shard, supervises to a terminal state, returns the
  /// outcome. Installs SIGINT/SIGTERM handlers for the duration: an
  /// interrupted supervisor SIGTERMs its workers (SIGKILL after a grace
  /// period) and reports kResumable.
  FleetResult run();

  static std::string shard_path(const std::string& base, unsigned shard) {
    return base + ".shard" + std::to_string(shard);
  }
  static std::string heartbeat_path(const std::string& journal_path) {
    return journal_path + ".hb";
  }

 private:
  struct Worker;
  void spawn(Worker& w);
  void handle_exit(Worker& w, int status);
  void fail_fleet(std::vector<Worker>& workers, const std::string& why);

  std::string name_;
  FleetConfig cfg_;
  std::vector<Worker>* workers_ = nullptr;  ///< live only inside run()
  bool failed_ = false;
  bool stopping_ = false;  ///< supervisor interrupt: exits are resumable
  std::string error_;
};

/// Touches `path` every `interval_s` seconds from a background thread; the
/// file's mtime is the worker's liveness signal. Started by sharded
/// workers, stopped (and the file removed) on destruction.
class HeartbeatWriter {
 public:
  explicit HeartbeatWriter(std::string path, double interval_s = 0.25);
  ~HeartbeatWriter();
  HeartbeatWriter(const HeartbeatWriter&) = delete;
  HeartbeatWriter& operator=(const HeartbeatWriter&) = delete;

 private:
  void beat() const;

  std::string path_;
  double interval_s_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace densemem::sim
