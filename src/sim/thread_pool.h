// Fixed-size worker thread pool with a chunked work queue and exception
// propagation — the execution substrate of the campaign engine (campaign.h).
//
// Design constraints (see docs/ARCHITECTURE.md, "The campaign engine"):
//  * Workers are spawned once and reused; a pool is cheap enough to create
//    per campaign run but never per job.
//  * parallel_for() hands out index ranges through an atomic cursor, so the
//    *assignment* of jobs to threads is scheduling-dependent — determinism
//    is the caller's job (every job must depend only on its own index; the
//    campaign layer guarantees this by deriving per-job RNG streams).
//  * The first exception thrown by any task is captured, remaining chunks
//    are abandoned co-operatively, and wait() rethrows it on the calling
//    thread — a worker failure is never swallowed and never deadlocks.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace densemem::sim {

class MetricsRegistry;  // telemetry.h

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware concurrency.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Hardware concurrency with a floor of 1 (hardware_concurrency() may
  /// return 0 on exotic platforms).
  static unsigned default_threads();

  /// The calling thread's worker id: 1..size() inside a pool worker, 0 on
  /// any other thread (main, the serial campaign path, watchdog). Telemetry
  /// uses this as its shard index and spans record it as `worker`.
  static unsigned current_worker_id();

  /// Queue-wait of the task the calling worker is currently running — the
  /// seconds between submit() and the worker popping it. 0 outside a task
  /// (and on the serial path, where nothing queues). Jobs inside a
  /// parallel_for chunk share the chunk's wait.
  static double current_task_queue_wait_s();

  /// Attaches a metrics registry: every task then observes
  /// `<prefix>pool.queue_wait_s` and `<prefix>pool.task_s` (timing
  /// distributions — run-variable by design). Pass nullptr to detach. Not
  /// thread-safe against concurrent submit — set it before dispatching work.
  void set_metrics(MetricsRegistry* metrics, std::string prefix = "");

  /// Enqueues a task. Tasks run in FIFO order across the worker set.
  void submit(std::function<void()> task);

  /// Blocks until the queue is drained and all workers are idle, then
  /// rethrows the first exception any task raised (if any). The pool is
  /// reusable after wait() returns or throws.
  void wait();

  /// Runs body(begin, end) over [0, n) in chunks of `chunk` indices,
  /// distributed across all workers; blocks until done. If a body throws,
  /// outstanding chunks are abandoned and the first exception is rethrown
  /// here. A single-worker pool still goes through the queue, so the code
  /// path (though not the interleaving) is identical at every width.
  void parallel_for(std::size_t n, std::size_t chunk,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// True once a task has thrown and the failure is not yet consumed by
  /// wait(); long-running tasks may poll this to bail out early.
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

 private:
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop(unsigned worker_id);

  std::vector<std::thread> workers_;
  MetricsRegistry* metrics_ = nullptr;
  std::string metrics_prefix_;
  mutable std::mutex mu_;
  std::condition_variable task_cv_;  ///< signals workers: task or stop
  std::condition_variable idle_cv_;  ///< signals wait(): drained and idle
  std::deque<Task> tasks_;
  std::size_t in_flight_ = 0;  ///< tasks popped but not yet finished
  std::exception_ptr first_error_;
  std::atomic<bool> cancelled_{false};
  bool stop_ = false;
};

}  // namespace densemem::sim
