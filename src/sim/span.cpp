#include "sim/span.h"

#include <algorithm>
#include <fstream>
#include <tuple>

#include "sim/telemetry.h"

namespace densemem::sim {

const char* span_outcome_name(SpanOutcome o) {
  switch (o) {
    case SpanOutcome::kOk: return "ok";
    case SpanOutcome::kRetried: return "retried";
    case SpanOutcome::kFailed: return "failed";
    case SpanOutcome::kQuarantined: return "quarantined";
    case SpanOutcome::kExpired: return "expired";
  }
  return "unknown";
}

void SpanTracer::record(Span span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  spans_.push_back(std::move(span));
}

std::size_t SpanTracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::size_t SpanTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<Span> SpanTracer::sorted() const {
  std::vector<Span> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = spans_;
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return std::tie(a.campaign, a.job, a.attempt) <
           std::tie(b.campaign, b.job, b.attempt);
  });
  return out;
}

namespace {

std::string format_span_line(const Span& s) {
  std::string out = "{\"campaign\":\"" + json_escape(s.campaign) +
                    "\",\"job\":" + std::to_string(s.job) +
                    ",\"attempt\":" + std::to_string(s.attempt) +
                    ",\"outcome\":\"" + span_outcome_name(s.outcome) +
                    "\",\"t_start_s\":" + json_double(s.t_start_s) +
                    ",\"duration_s\":" + json_double(s.duration_s) +
                    ",\"queue_wait_s\":" + json_double(s.queue_wait_s) +
                    ",\"worker\":" + std::to_string(s.worker);
  if (!s.error.empty()) out += ",\"error\":\"" + json_escape(s.error) + "\"";
  out += "}";
  return out;
}

/// Sort key scanned out of a serialized span line. Relies on the pinned
/// leading field order of format_span_line — campaign, job, attempt first —
/// so merging never needs a JSON parser. Lines that don't match (foreign
/// files) sort first on an empty key, preserving their input order.
struct SpanLineKey {
  std::string campaign;  ///< still json-escaped; consistent across sources
  std::uint64_t job = 0;
  std::uint64_t attempt = 0;
};

SpanLineKey span_line_key(const std::string& line) {
  SpanLineKey key;
  constexpr std::string_view kHead = "{\"campaign\":\"";
  constexpr std::string_view kJob = "\",\"job\":";
  if (line.rfind(kHead, 0) != 0) return key;
  const std::size_t cend = line.find(kJob, kHead.size());
  if (cend == std::string::npos) return key;
  key.campaign = line.substr(kHead.size(), cend - kHead.size());
  std::size_t p = cend + kJob.size();
  while (p < line.size() && line[p] >= '0' && line[p] <= '9')
    key.job = key.job * 10 + static_cast<std::uint64_t>(line[p++] - '0');
  constexpr std::string_view kAttempt = ",\"attempt\":";
  if (line.compare(p, kAttempt.size(), kAttempt) != 0) return key;
  p += kAttempt.size();
  while (p < line.size() && line[p] >= '0' && line[p] <= '9')
    key.attempt = key.attempt * 10 + static_cast<std::uint64_t>(line[p++] - '0');
  return key;
}

}  // namespace

void SpanTracer::write_jsonl(std::ostream& os) const {
  for (const Span& s : sorted()) os << format_span_line(s) << "\n";
}

bool SpanTracer::write_jsonl_file(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  write_jsonl(f);
  return static_cast<bool>(f);
}

bool SpanTracer::merge_jsonl_files(const std::vector<std::string>& paths,
                                   const std::string& out_path) const {
  std::vector<std::string> lines;
  for (const Span& s : sorted()) lines.push_back(format_span_line(s));
  for (const std::string& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) continue;  // killed incarnation never wrote its sidecar
    std::string line;
    while (std::getline(in, line))
      if (!line.empty()) lines.push_back(line);
  }
  std::vector<std::size_t> order(lines.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<SpanLineKey> keys;
  keys.reserve(lines.size());
  for (const std::string& l : lines) keys.push_back(span_line_key(l));
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return std::tie(keys[a].campaign, keys[a].job,
                                     keys[a].attempt) <
                            std::tie(keys[b].campaign, keys[b].job,
                                     keys[b].attempt);
                   });
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) return false;
  for (const std::size_t i : order) out << lines[i] << "\n";
  return static_cast<bool>(out);
}

}  // namespace densemem::sim
