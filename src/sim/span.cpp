#include "sim/span.h"

#include <algorithm>
#include <fstream>
#include <tuple>

#include "sim/telemetry.h"

namespace densemem::sim {

const char* span_outcome_name(SpanOutcome o) {
  switch (o) {
    case SpanOutcome::kOk: return "ok";
    case SpanOutcome::kRetried: return "retried";
    case SpanOutcome::kFailed: return "failed";
    case SpanOutcome::kQuarantined: return "quarantined";
    case SpanOutcome::kExpired: return "expired";
  }
  return "unknown";
}

void SpanTracer::record(Span span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  spans_.push_back(std::move(span));
}

std::size_t SpanTracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::size_t SpanTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<Span> SpanTracer::sorted() const {
  std::vector<Span> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = spans_;
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return std::tie(a.campaign, a.job, a.attempt) <
           std::tie(b.campaign, b.job, b.attempt);
  });
  return out;
}

void SpanTracer::write_jsonl(std::ostream& os) const {
  for (const Span& s : sorted()) {
    os << "{\"campaign\":\"" << json_escape(s.campaign)
       << "\",\"job\":" << s.job << ",\"attempt\":" << s.attempt
       << ",\"outcome\":\"" << span_outcome_name(s.outcome)
       << "\",\"t_start_s\":" << json_double(s.t_start_s)
       << ",\"duration_s\":" << json_double(s.duration_s)
       << ",\"queue_wait_s\":" << json_double(s.queue_wait_s)
       << ",\"worker\":" << s.worker;
    if (!s.error.empty())
      os << ",\"error\":\"" << json_escape(s.error) << "\"";
    os << "}\n";
  }
}

bool SpanTracer::write_jsonl_file(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  write_jsonl(f);
  return static_cast<bool>(f);
}

}  // namespace densemem::sim
