#include "sim/thread_pool.h"

#include <algorithm>

#include "common/check.h"
#include "sim/telemetry.h"

namespace densemem::sim {

namespace {

// Worker identity and the running task's queue wait are thread-locals so
// telemetry callers (registry sharding, span stamping) never need a handle
// to the pool that owns the current thread.
thread_local unsigned tl_worker_id = 0;
thread_local double tl_queue_wait_s = 0.0;

}  // namespace

unsigned ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

unsigned ThreadPool::current_worker_id() { return tl_worker_id; }

double ThreadPool::current_task_queue_wait_s() { return tl_queue_wait_s; }

void ThreadPool::set_metrics(MetricsRegistry* metrics, std::string prefix) {
  metrics_ = metrics;
  metrics_prefix_ = std::move(prefix);
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = default_threads();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  DM_CHECK_MSG(static_cast<bool>(task), "cannot submit an empty task");
  {
    std::lock_guard<std::mutex> lock(mu_);
    DM_CHECK_MSG(!stop_, "cannot submit to a stopping pool");
    tasks_.push_back(Task{std::move(task), std::chrono::steady_clock::now()});
  }
  task_cv_.notify_one();
}

void ThreadPool::worker_loop(unsigned worker_id) {
  tl_worker_id = worker_id;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++in_flight_;
    }
    const auto popped = std::chrono::steady_clock::now();
    tl_queue_wait_s =
        std::chrono::duration<double>(popped - task.enqueued).count();
    try {
      task.fn();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
      cancelled_.store(true, std::memory_order_relaxed);
    }
    if (metrics_) {
      const double exec_s = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - popped)
                                .count();
      // observe() only: task counts and waits depend on the thread width,
      // so they belong in the run-variable "timings" section, never in the
      // width-stable counters.
      metrics_->observe(metrics_prefix_ + "pool.queue_wait_s",
                        tl_queue_wait_s);
      metrics_->observe(metrics_prefix_ + "pool.task_s", exec_s);
    }
    tl_queue_wait_s = 0.0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait() {
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
    err = first_error_;
    first_error_ = nullptr;
  }
  cancelled_.store(false, std::memory_order_relaxed);
  if (err) std::rethrow_exception(err);
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  chunk = std::max<std::size_t>(chunk, 1);
  // One driver task per worker; each pulls chunk-sized index ranges off a
  // shared atomic cursor until the range (or the run, on failure) is
  // exhausted. The cursor AND a copy of the body live in shared heap state:
  // a driver must never reach through the caller's stack frame, which is
  // already unwinding if wait() rethrows while that driver winds down.
  struct Drive {
    std::atomic<std::size_t> cursor{0};
    std::function<void(std::size_t, std::size_t)> body;
  };
  auto drive = std::make_shared<Drive>();
  drive->body = body;
  const unsigned drivers =
      static_cast<unsigned>(std::min<std::size_t>(size(), (n + chunk - 1) / chunk));
  for (unsigned d = 0; d < drivers; ++d) {
    submit([this, drive, n, chunk] {
      for (;;) {
        if (cancelled()) return;  // a sibling failed; abandon the rest
        const std::size_t begin = drive->cursor.fetch_add(chunk);
        if (begin >= n) return;
        drive->body(begin, std::min(begin + chunk, n));
      }
    });
  }
  wait();
}

}  // namespace densemem::sim
