#include "sim/event_log.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <unordered_set>
#include <utility>

#include "sim/journal.h"
#include "sim/telemetry.h"

namespace densemem::sim {

namespace {

constexpr const char* kMagic = "#densemem-events v1";

const char* kind_name(EventKind k) {
  switch (k) {
    case EventKind::kFlip:
      return "flip";
    case EventKind::kTrack:
      return "track";
    case EventKind::kSample:
      return "sample";
    case EventKind::kEvict:
      return "evict";
    case EventKind::kNeighborRefresh:
      return "neighbor_refresh";
  }
  return "?";
}

const char* mechanism_name(dram::FlipMechanism m) {
  switch (m) {
    case dram::FlipMechanism::kDisturbance:
      return "disturbance";
    case dram::FlipMechanism::kRetention:
      return "retention";
    case dram::FlipMechanism::kVrtRetention:
      return "vrt_retention";
  }
  return "?";
}

std::uint64_t row_key(std::uint32_t bank, std::uint32_t row) {
  return (static_cast<std::uint64_t>(bank) << 32) | row;
}

/// Digits-only u64 parse that cannot throw: a torn raw line must read as
/// "torn tail", never as an exception.
bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

/// Raw-sidecar scan shared by open_raw's torn-tail truncation and
/// merge_raw_files: walks the file, calling `on_batch` for every complete
/// (marker-terminated, count-matching) batch, and returns the byte offset
/// just past the last accepted line. Anything after that offset — a torn
/// line, an unterminated batch, a count-mismatched marker — is the torn
/// tail a kill left behind.
std::size_t scan_raw(
    const std::string& text,
    const std::function<void(std::string&& campaign, std::size_t job,
                             std::vector<std::string>&& lines)>& on_batch) {
  std::size_t pos = 0, accepted = 0;
  bool saw_magic = false;
  std::string batch_campaign;
  std::size_t batch_job = 0;
  std::vector<std::string> batch_lines;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) break;  // torn final line
    const std::string_view line(text.data() + pos, nl - pos);
    pos = nl + 1;
    if (!saw_magic) {
      if (line != kMagic) break;
      saw_magic = true;
      accepted = pos;
      continue;
    }
    if (line.size() < 2 || (line[0] != 'E' && line[0] != 'C') ||
        line[1] != ' ') {
      break;
    }
    // Tokens: <tag> <campaign> <job> then seq+json (E) or count (C).
    std::size_t t1 = line.find(' ', 2);
    if (t1 == std::string_view::npos) break;
    std::size_t t2 = line.find(' ', t1 + 1);
    if (t2 == std::string_view::npos) break;
    const std::string campaign =
        unescape_token(line.substr(2, t1 - 2));
    std::uint64_t job = 0;
    if (!parse_u64(line.substr(t1 + 1, t2 - t1 - 1), job)) break;
    if (line[0] == 'E') {
      if (!batch_lines.empty() &&
          (campaign != batch_campaign || job != batch_job)) {
        break;  // interleaved batches: corruption, stop accepting
      }
      batch_campaign = campaign;
      batch_job = job;
      const std::size_t t3 = line.find(' ', t2 + 1);
      if (t3 == std::string_view::npos) break;
      batch_lines.emplace_back(line.substr(t3 + 1));
    } else {
      std::uint64_t count = 0;
      if (!parse_u64(line.substr(t2 + 1), count)) break;
      if (count != batch_lines.size() ||
          (!batch_lines.empty() &&
           (campaign != batch_campaign || job != batch_job))) {
        break;
      }
      on_batch(std::string(campaign), job, std::move(batch_lines));
      batch_lines.clear();
      accepted = pos;
    }
  }
  return accepted;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return true;
}

}  // namespace

MissAutopsy classify_misses(const std::vector<Event>& events) {
  MissAutopsy a;
  std::unordered_set<std::uint64_t> seen, refreshed;
  for (const Event& e : events) {
    switch (e.kind) {
      case EventKind::kTrack:
      case EventKind::kSample:
        seen.insert(row_key(e.bank, e.row));
        break;
      case EventKind::kNeighborRefresh:
        refreshed.insert(row_key(e.bank, e.row));
        break;
      case EventKind::kEvict:
        break;
      case EventKind::kFlip: {
        if (e.mechanism != dram::FlipMechanism::kDisturbance) break;
        if (refreshed.count(row_key(e.bank, e.row))) {
          ++a.refreshed_too_late;
        } else if ((e.aggr_up != dram::kNoAggressor &&
                    seen.count(row_key(e.bank, e.aggr_up))) ||
                   (e.aggr_down != dram::kNoAggressor &&
                    seen.count(row_key(e.bank, e.aggr_down)))) {
          ++a.evicted_before_ref;
        } else {
          ++a.never_seen;
        }
        break;
      }
    }
  }
  return a;
}

std::string EventLog::format_line(const std::string& campaign, std::size_t job,
                                  std::size_t seq, const Event& e) {
  std::string s = "{\"campaign\":\"" + json_escape(campaign) +
                  "\",\"job\":" + std::to_string(job) +
                  ",\"seq\":" + std::to_string(seq) + ",\"kind\":\"" +
                  kind_name(e.kind) + "\"";
  s += ",\"bank\":" + std::to_string(e.bank);
  s += ",\"row\":" + std::to_string(e.row);
  if (e.kind == EventKind::kFlip) {
    s += ",\"mechanism\":\"";
    s += mechanism_name(e.mechanism);
    s += "\",\"physical_row\":" + std::to_string(e.physical_row);
    s += ",\"bit\":" + std::to_string(e.bit);
    s += ",\"dir\":\"";
    s += e.one_to_zero ? "1to0" : "0to1";
    s += "\"";
    if (e.aggr_up != dram::kNoAggressor)
      s += ",\"aggr_up\":" + std::to_string(e.aggr_up);
    if (e.aggr_down != dram::kNoAggressor)
      s += ",\"aggr_down\":" + std::to_string(e.aggr_down);
    s += ",\"stress\":" + json_double(e.stress);
    s += ",\"dpd\":" + json_double(e.dpd);
    s += ",\"t_ms\":" + json_double(e.t_ms);
  } else if (e.kind == EventKind::kNeighborRefresh) {
    s += ",\"source_row\":" + std::to_string(e.source_row);
  }
  s += "}";
  return s;
}

EventLog::~EventLog() {
  if (raw_) std::fclose(raw_);
}

bool EventLog::open_raw(const std::string& path, bool append) {
  std::lock_guard<std::mutex> lock(mu_);
  if (raw_) {
    std::fclose(raw_);
    raw_ = nullptr;
  }
  std::size_t accepted = 0;
  std::string text;
  if (append && read_file(path, text)) {
    accepted = scan_raw(
        text, [](std::string&&, std::size_t, std::vector<std::string>&&) {});
  }
  raw_ = std::fopen(path.c_str(), "wb");
  if (!raw_) return false;
  if (accepted > 0) {
    // Continue after the last complete batch; everything past it is a torn
    // tail from a mid-write kill and must not fuse onto new records.
    if (std::fwrite(text.data(), 1, accepted, raw_) != accepted) {
      std::fclose(raw_);
      raw_ = nullptr;
      return false;
    }
  } else {
    std::fputs(kMagic, raw_);
    std::fputc('\n', raw_);
  }
  std::fflush(raw_);
  raw_path_ = path;
  return true;
}

void EventLog::commit(const std::string& campaign, std::size_t job,
                      std::vector<Event> events) {
  if (events.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (recorded_ + events.size() > capacity_) {
    dropped_ += events.size();
    return;
  }
  recorded_ += events.size();
  if (raw_) {
    const std::string esc = escape_token(campaign);
    for (std::size_t i = 0; i < events.size(); ++i) {
      std::fprintf(raw_, "E %s %zu %zu %s\n", esc.c_str(), job, i,
                   format_line(campaign, job, i, events[i]).c_str());
    }
    std::fprintf(raw_, "C %s %zu %zu\n", esc.c_str(), job, events.size());
    std::fflush(raw_);
  }
  batches_.push_back(Batch{campaign, job, std::move(events)});
}

std::size_t EventLog::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::size_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void EventLog::write_jsonl(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::pair<std::string, std::size_t>, const Batch*> ordered;
  for (const Batch& b : batches_)
    ordered.emplace(std::make_pair(b.campaign, b.job), &b);  // first wins
  for (const auto& [key, b] : ordered) {
    for (std::size_t i = 0; i < b->events.size(); ++i)
      os << format_line(b->campaign, b->job, i, b->events[i]) << "\n";
  }
}

bool EventLog::write_jsonl_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  write_jsonl(out);
  return static_cast<bool>(out);
}

EventLog::MergeResult EventLog::merge_raw_files(
    const std::vector<std::string>& paths, const std::string& out_path) {
  MergeResult res;
  std::map<std::pair<std::string, std::size_t>, std::vector<std::string>>
      ordered;
  for (const std::string& p : paths) {
    std::string text;
    if (!read_file(p, text)) continue;
    ++res.files;
    scan_raw(text, [&](std::string&& campaign, std::size_t job,
                       std::vector<std::string>&& lines) {
      ordered.emplace(std::make_pair(std::move(campaign), job),
                      std::move(lines));  // first wins
    });
  }
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) return res;
  for (const auto& [key, lines] : ordered) {
    for (const std::string& l : lines) {
      out << l << "\n";
      ++res.events;
    }
  }
  return res;
}

void EventScope::on_flip(const dram::FlipRecord& rec) {
  Event e;
  e.kind = EventKind::kFlip;
  e.bank = rec.fbank;
  e.row = rec.logical_row;
  e.mechanism = rec.mechanism;
  e.one_to_zero = rec.one_to_zero;
  e.physical_row = rec.physical_row;
  e.bit = rec.bit;
  e.aggr_up = rec.aggressor_up;
  e.aggr_down = rec.aggressor_down;
  e.stress = rec.stress;
  e.dpd = rec.dpd_factor;
  e.t_ms = rec.when.as_ms();
  events_.push_back(e);
}

void EventScope::on_decision(const ctrl::DecisionRecord& rec) {
  Event e;
  switch (rec.kind) {
    case ctrl::DecisionKind::kTrack:
      e.kind = EventKind::kTrack;
      break;
    case ctrl::DecisionKind::kSample:
      e.kind = EventKind::kSample;
      break;
    case ctrl::DecisionKind::kEvict:
      e.kind = EventKind::kEvict;
      break;
    case ctrl::DecisionKind::kNeighborRefresh:
      e.kind = EventKind::kNeighborRefresh;
      break;
  }
  e.bank = rec.fbank;
  e.row = rec.row;
  e.source_row = rec.source_row;
  events_.push_back(e);
}

void EventScope::commit() {
  if (committed_) return;
  committed_ = true;
  if (log_) log_->commit(campaign_, job_, events_);
}

}  // namespace densemem::sim
