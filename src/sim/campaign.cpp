#include "sim/campaign.h"

#include <chrono>

#include "sim/progress.h"
#include "sim/thread_pool.h"

namespace densemem::sim {

Campaign::Campaign(std::string name, CampaignConfig cfg)
    : name_(std::move(name)),
      cfg_(cfg),
      threads_(cfg.threads ? cfg.threads : ThreadPool::default_threads()) {}

void Campaign::run_grid(std::size_t n,
                        const std::function<void(const JobContext&)>& job) {
  const auto t0 = std::chrono::steady_clock::now();
  Progress progress(name_, n, cfg_.progress && n > 1,
                    cfg_.progress_interval_s);

  auto run_one = [&](std::size_t i) {
    JobContext ctx;
    ctx.index = i;
    ctx.count = n;
    ctx.stream_seed = hash_coords(cfg_.seed, static_cast<std::uint64_t>(i));
    try {
      job(ctx);
    } catch (...) {
      progress.mark_failed();
      throw;
    }
    progress.mark_done();
  };

  if (threads_ <= 1 || n <= 1) {
    // Serial reference path: no pool, no queue — the behaviour --threads 1
    // pins down, and what every multi-threaded run must reproduce.
    for (std::size_t i = 0; i < n; ++i) run_one(i);
  } else {
    ThreadPool pool(threads_);
    pool.parallel_for(n, cfg_.chunk, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) run_one(i);
    });
  }

  stats_.jobs = n;
  stats_.threads = threads_;
  stats_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  progress.finish();
}

}  // namespace densemem::sim
