#include "sim/campaign.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "sim/progress.h"
#include "sim/thread_pool.h"

namespace densemem::sim {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Deadline enforcement: one slot per in-flight attempt, a scanner thread
/// that flags slots whose attempt has outlived the budget. The flag is all
/// it does — a worker thread cannot be killed, so the job either polls
/// JobContext::expired() and bails out (injected hangs do), or the executor
/// notices the flag when the attempt returns and fails it retroactively.
class Watchdog {
 public:
  struct Slot {
    std::atomic<long long> start_ns{-1};  ///< -1 = free
    std::atomic<bool> expired{false};
  };

  Watchdog(unsigned slots, double timeout_s)
      : slots_(slots), timeout_ns_(static_cast<long long>(timeout_s * 1e9)) {
    const double period_s = std::clamp(timeout_s / 4.0, 0.001, 0.25);
    period_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::duration<double>(period_s));
    scanner_ = std::thread([this] { scan_loop(); });
  }

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    scanner_.join();
  }

  Slot* acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& s : slots_) {
      if (s.start_ns.load(std::memory_order_relaxed) < 0) {
        s.expired.store(false, std::memory_order_relaxed);
        s.start_ns.store(now_ns(), std::memory_order_release);
        return &s;
      }
    }
    return nullptr;  // more in-flight attempts than workers: cannot happen
  }

  void release(Slot* s) {
    if (s) s->start_ns.store(-1, std::memory_order_release);
  }

 private:
  static long long now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
        .count();
  }

  void scan_loop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (cv_.wait_for(lock, period_, [this] { return stop_; })) return;
      const long long now = now_ns();
      for (auto& s : slots_) {
        const long long start = s.start_ns.load(std::memory_order_acquire);
        if (start >= 0 && now - start > timeout_ns_)
          s.expired.store(true, std::memory_order_relaxed);
      }
    }
  }

  std::vector<Slot> slots_;
  const long long timeout_ns_;
  std::chrono::nanoseconds period_{};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread scanner_;
};

struct SlotGuard {
  Watchdog* wd = nullptr;
  Watchdog::Slot* slot = nullptr;
  SlotGuard(Watchdog* w) : wd(w), slot(w ? w->acquire() : nullptr) {}
  ~SlotGuard() {
    if (wd) wd->release(slot);
  }
  SlotGuard(const SlotGuard&) = delete;
  SlotGuard& operator=(const SlotGuard&) = delete;
};

}  // namespace

Campaign::Campaign(std::string name, CampaignConfig cfg)
    : name_(std::move(name)),
      cfg_(std::move(cfg)),
      threads_(cfg_.threads ? cfg_.threads : ThreadPool::default_threads()),
      owned_metrics_(cfg_.metrics ? nullptr
                                  : std::make_unique<MetricsRegistry>()),
      metrics_(cfg_.metrics ? cfg_.metrics : owned_metrics_.get()),
      metric_prefix_("campaign." + name_ + ".") {}

void Campaign::run_grid(std::size_t n, const GridHooks& hooks) {
  const auto t0 = Clock::now();
  stats_ = CampaignStats{};
  quarantine_.clear();

  // Counter names are built once per grid, not per attempt. Everything in
  // the counters section must be a pure function of (config, fault seed) —
  // never of scheduling — so the registry contents match across thread
  // widths; wall-clock quantities go through observe() (the "timings"
  // section) instead.
  const std::string m_completed = metric_prefix_ + "jobs.completed";
  const std::string m_resumed = metric_prefix_ + "jobs.resumed";
  const std::string m_quarantined = metric_prefix_ + "jobs.quarantined";
  const std::string m_retried = metric_prefix_ + "jobs.retried";
  const std::string m_faults = metric_prefix_ + "faults.injected";
  const std::string m_expired = metric_prefix_ + "deadline.expired";
  const std::string m_backoffs = metric_prefix_ + "retry.backoffs";
  const std::string m_journal_records = metric_prefix_ + "journal.records";
  const std::string m_journal_replayed = metric_prefix_ + "journal.replayed";
  const std::string m_job_duration = metric_prefix_ + "job.duration_s";
  const std::size_t retried_before = metrics_->counter(m_retried);

  // --- resume: settle jobs the journal already accounts for --------------
  std::vector<char> settled(n, 0);  // 0 = pending, 1 = completed, 2 = quarantined
  std::size_t resumed = 0;
  auto settle_record = [&](std::size_t i, const Journal::Record& rec) {
    if (settled[i]) return;  // dedup across resumed sections / shard files
    if (rec.quarantined) {
      quarantine_.push_back(JobFailure{i, rec.attempts, rec.error});
      settled[i] = 2;
    } else {
      if (!hooks.replay)
        throw std::runtime_error(
            "campaign '" + name_ + "': resuming completed jobs requires "
            "a result codec (use map_journaled)");
      hooks.replay(i, rec.payload);
      settled[i] = 1;
      ++resumed;
      metrics_->add(m_resumed);
      metrics_->add(m_journal_replayed);
    }
  };
  if (cfg_.resume) {
    if (const Journal::Section* sec = cfg_.resume->find(name_)) {
      if (sec->seed != cfg_.seed || sec->jobs != n ||
          sec->tag != cfg_.journal_tag)
        throw std::runtime_error(
            "campaign '" + name_ + "': resume journal was recorded for a "
            "different grid (seed/jobs/tag mismatch)");
      for (const auto& [i, rec] : sec->records) settle_record(i, rec);
    }
  } else if (cfg_.resume_stream) {
    cfg_.resume_stream->replay(
        name_, cfg_.seed, n, cfg_.journal_tag,
        [&](const Journal::Record& rec) { settle_record(rec.index, rec); });
  }
  // Shards the fleet supervisor quarantined: their still-unsettled indices
  // are lost job ranges, reported like any other quarantined job.
  const unsigned shard_count = std::max(1u, cfg_.shard_count);
  for (const unsigned s : cfg_.quarantined_shards) {
    for (std::size_t i = s; i < n; i += shard_count) {
      if (settled[i]) continue;
      quarantine_.push_back(JobFailure{
          i, 0,
          "shard " + std::to_string(s) + "/" + std::to_string(shard_count) +
              " quarantined by fleet supervisor"});
      settled[i] = 2;
    }
  }
  if (cfg_.journal && n > 0)
    cfg_.journal->begin_section(name_, cfg_.seed, n, cfg_.journal_tag);

  // A sharded worker only claims its own residue class; the other indices
  // stay unsettled here and are run (and journaled) by their own shards.
  std::vector<std::size_t> pending;
  pending.reserve(shard_count > 1 ? n / shard_count + 1 : n);
  for (std::size_t i = 0; i < n; ++i)
    if (!settled[i] && i % shard_count == cfg_.shard_index)
      pending.push_back(i);

  Progress progress(name_, n, cfg_.progress && n > 1,
                    cfg_.progress_interval_s, metrics_, metric_prefix_);
  for (const char s : settled) {
    if (s == 1) progress.mark_done();
    if (s == 2) progress.mark_failed();
  }

  std::unique_ptr<Watchdog> watchdog;
  if (cfg_.job_timeout_s > 0.0)
    watchdog = std::make_unique<Watchdog>(threads_, cfg_.job_timeout_s);
  const FaultInjector injector(cfg_.fault);
  const unsigned attempts_per_job = std::max(1u, cfg_.retry.max_attempts);

  std::atomic<std::size_t> completed{0};
  std::atomic<bool> interrupted{false};
  std::mutex quarantine_mu;

  // One Span per attempt. Outcome names the attempt's fate: ok, expired
  // (deadline), retried (failed but another attempt follows), and for the
  // final failed attempt failed (fail-fast) or quarantined (degrade).
  auto trace = [&](std::size_t i, unsigned attempt, SpanOutcome outcome,
                   Clock::time_point attempt_start, const std::string& error) {
    metrics_->observe(m_job_duration, seconds_since(attempt_start));
    if (!cfg_.tracer) return;
    Span s;
    s.campaign = name_;
    s.job = i;
    s.attempt = attempt;
    s.outcome = outcome;
    s.t_start_s = std::chrono::duration<double>(attempt_start - t0).count();
    s.duration_s = seconds_since(attempt_start);
    s.queue_wait_s = ThreadPool::current_task_queue_wait_s();
    s.worker = ThreadPool::current_worker_id();
    s.error = error;
    cfg_.tracer->record(std::move(s));
  };
  auto fail_outcome = [&](unsigned attempt) {
    if (attempt + 1 < attempts_per_job) return SpanOutcome::kRetried;
    return cfg_.fail_fast ? SpanOutcome::kFailed : SpanOutcome::kQuarantined;
  };

  auto run_one = [&](std::size_t i) {
    if (interrupted.load(std::memory_order_relaxed)) return;
    JobContext ctx;
    ctx.index = i;
    ctx.count = n;
    ctx.stream_seed = hash_coords(cfg_.seed, static_cast<std::uint64_t>(i));
    ctx.time_budget_s = cfg_.job_timeout_s;
    std::exception_ptr last_error;
    std::string last_what = "unknown error";
    for (unsigned attempt = 0; attempt < attempts_per_job; ++attempt) {
      if (interrupted.load(std::memory_order_relaxed)) return;
      if (attempt > 0) {
        progress.mark_retried();
        const double delay_ms = cfg_.retry.backoff_for(attempt);
        if (delay_ms > 0.0) {
          metrics_->add(m_backoffs);
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(delay_ms));
        }
      }
      ctx.attempt = attempt;
      const auto attempt_start = Clock::now();
      try {
        SlotGuard guard(watchdog.get());
        ctx.deadline_flag = guard.slot ? &guard.slot->expired : nullptr;
        injector.inject(ctx);
        std::string payload = hooks.run(ctx);
        const bool over_deadline =
            (guard.slot &&
             guard.slot->expired.load(std::memory_order_relaxed)) ||
            (cfg_.job_timeout_s > 0.0 &&
             seconds_since(attempt_start) > cfg_.job_timeout_s);
        if (over_deadline)
          throw JobTimeout("job " + std::to_string(i) + " attempt " +
                           std::to_string(attempt) + " exceeded " +
                           std::to_string(cfg_.job_timeout_s) + "s deadline");
        // Success: checkpoint before counting, so the journal never claims
        // fewer jobs than the stats do.
        if (cfg_.journal) {
          cfg_.journal->record_done(i, attempt + 1, payload);
          metrics_->add(m_journal_records);
        }
        if (hooks.settled) hooks.settled(i, payload);
        trace(i, attempt, SpanOutcome::kOk, attempt_start, "");
        progress.mark_done();
        metrics_->add(m_completed);
        const std::size_t done_now =
            completed.fetch_add(1, std::memory_order_relaxed) + 1;
        if (cfg_.completion_hook) cfg_.completion_hook(done_now);
        if (cfg_.abort_after && done_now >= cfg_.abort_after) {
          interrupted.store(true, std::memory_order_relaxed);
          throw CampaignInterrupted(name_, done_now);
        }
        return;
      } catch (const CampaignInterrupted&) {
        throw;
      } catch (const JobTimeout& e) {
        metrics_->add(m_expired);
        trace(i, attempt, SpanOutcome::kExpired, attempt_start, e.what());
        last_error = std::current_exception();
        last_what = e.what();
      } catch (const InjectedFault& e) {
        metrics_->add(m_faults);
        trace(i, attempt, fail_outcome(attempt), attempt_start, e.what());
        last_error = std::current_exception();
        last_what = e.what();
      } catch (const std::exception& e) {
        trace(i, attempt, fail_outcome(attempt), attempt_start, e.what());
        last_error = std::current_exception();
        last_what = e.what();
      } catch (...) {
        trace(i, attempt, fail_outcome(attempt), attempt_start,
              "unknown error");
        last_error = std::current_exception();
        last_what = "unknown error";
      }
    }
    // Attempts exhausted.
    if (cfg_.journal) {
      cfg_.journal->record_quarantined(i, attempts_per_job, last_what);
      metrics_->add(m_journal_records);
    }
    progress.mark_failed();
    metrics_->add(m_quarantined);
    {
      std::lock_guard<std::mutex> lock(quarantine_mu);
      quarantine_.push_back(JobFailure{i, attempts_per_job, last_what});
    }
    if (cfg_.fail_fast) std::rethrow_exception(last_error);
  };

  if (threads_ <= 1 || pending.size() <= 1) {
    // Serial reference path: no pool, no queue — the behaviour --threads 1
    // pins down, and what every multi-threaded run must reproduce.
    for (const std::size_t i : pending) run_one(i);
  } else {
    ThreadPool pool(threads_);
    pool.set_metrics(metrics_, metric_prefix_);
    pool.parallel_for(pending.size(), cfg_.chunk,
                      [&](std::size_t begin, std::size_t end) {
                        for (std::size_t k = begin; k < end; ++k)
                          run_one(pending[k]);
                      });
  }

  std::sort(quarantine_.begin(), quarantine_.end(),
            [](const JobFailure& a, const JobFailure& b) {
              return a.index < b.index;
            });
  stats_.jobs = n;
  stats_.threads = threads_;
  stats_.completed = completed.load();
  stats_.resumed = resumed;
  // The registry is the only retry ledger (Progress counts into it too);
  // the delta isolates this run when the registry is shared across runs.
  stats_.retries = metrics_->counter(m_retried) - retried_before;
  stats_.quarantined = quarantine_.size();
  stats_.wall_seconds = seconds_since(t0);
  progress.finish();
}

}  // namespace densemem::sim
