#include "sim/campaign.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "sim/progress.h"
#include "sim/thread_pool.h"

namespace densemem::sim {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Deadline enforcement: one slot per in-flight attempt, a scanner thread
/// that flags slots whose attempt has outlived the budget. The flag is all
/// it does — a worker thread cannot be killed, so the job either polls
/// JobContext::expired() and bails out (injected hangs do), or the executor
/// notices the flag when the attempt returns and fails it retroactively.
class Watchdog {
 public:
  struct Slot {
    std::atomic<long long> start_ns{-1};  ///< -1 = free
    std::atomic<bool> expired{false};
  };

  Watchdog(unsigned slots, double timeout_s)
      : slots_(slots), timeout_ns_(static_cast<long long>(timeout_s * 1e9)) {
    const double period_s = std::clamp(timeout_s / 4.0, 0.001, 0.25);
    period_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::duration<double>(period_s));
    scanner_ = std::thread([this] { scan_loop(); });
  }

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    scanner_.join();
  }

  Slot* acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& s : slots_) {
      if (s.start_ns.load(std::memory_order_relaxed) < 0) {
        s.expired.store(false, std::memory_order_relaxed);
        s.start_ns.store(now_ns(), std::memory_order_release);
        return &s;
      }
    }
    return nullptr;  // more in-flight attempts than workers: cannot happen
  }

  void release(Slot* s) {
    if (s) s->start_ns.store(-1, std::memory_order_release);
  }

 private:
  static long long now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
        .count();
  }

  void scan_loop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (cv_.wait_for(lock, period_, [this] { return stop_; })) return;
      const long long now = now_ns();
      for (auto& s : slots_) {
        const long long start = s.start_ns.load(std::memory_order_acquire);
        if (start >= 0 && now - start > timeout_ns_)
          s.expired.store(true, std::memory_order_relaxed);
      }
    }
  }

  std::vector<Slot> slots_;
  const long long timeout_ns_;
  std::chrono::nanoseconds period_{};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread scanner_;
};

struct SlotGuard {
  Watchdog* wd = nullptr;
  Watchdog::Slot* slot = nullptr;
  SlotGuard(Watchdog* w) : wd(w), slot(w ? w->acquire() : nullptr) {}
  ~SlotGuard() {
    if (wd) wd->release(slot);
  }
  SlotGuard(const SlotGuard&) = delete;
  SlotGuard& operator=(const SlotGuard&) = delete;
};

}  // namespace

Campaign::Campaign(std::string name, CampaignConfig cfg)
    : name_(std::move(name)),
      cfg_(std::move(cfg)),
      threads_(cfg_.threads ? cfg_.threads : ThreadPool::default_threads()) {}

void Campaign::run_grid(std::size_t n, const GridHooks& hooks) {
  const auto t0 = Clock::now();
  stats_ = CampaignStats{};
  quarantine_.clear();

  // --- resume: settle jobs the journal already accounts for --------------
  std::vector<char> settled(n, 0);  // 0 = pending, 1 = completed, 2 = quarantined
  std::size_t resumed = 0;
  if (cfg_.resume) {
    if (const Journal::Section* sec = cfg_.resume->find(name_)) {
      if (sec->seed != cfg_.seed || sec->jobs != n ||
          sec->tag != cfg_.journal_tag)
        throw std::runtime_error(
            "campaign '" + name_ + "': resume journal was recorded for a "
            "different grid (seed/jobs/tag mismatch)");
      for (const auto& [i, rec] : sec->records) {
        if (rec.quarantined) {
          quarantine_.push_back(JobFailure{i, rec.attempts, rec.error});
          settled[i] = 2;
        } else {
          if (!hooks.replay)
            throw std::runtime_error(
                "campaign '" + name_ + "': resuming completed jobs requires "
                "a result codec (use map_journaled)");
          hooks.replay(i, rec.payload);
          settled[i] = 1;
          ++resumed;
        }
      }
    }
  }
  if (cfg_.journal && n > 0)
    cfg_.journal->begin_section(name_, cfg_.seed, n, cfg_.journal_tag);

  std::vector<std::size_t> pending;
  pending.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    if (!settled[i]) pending.push_back(i);

  Progress progress(name_, n, cfg_.progress && n > 1,
                    cfg_.progress_interval_s);
  for (const char s : settled) {
    if (s == 1) progress.mark_done();
    if (s == 2) progress.mark_failed();
  }

  std::unique_ptr<Watchdog> watchdog;
  if (cfg_.job_timeout_s > 0.0)
    watchdog = std::make_unique<Watchdog>(threads_, cfg_.job_timeout_s);
  const FaultInjector injector(cfg_.fault);
  const unsigned attempts_per_job = std::max(1u, cfg_.retry.max_attempts);

  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> retries{0};
  std::atomic<bool> interrupted{false};
  std::mutex quarantine_mu;

  auto run_one = [&](std::size_t i) {
    if (interrupted.load(std::memory_order_relaxed)) return;
    JobContext ctx;
    ctx.index = i;
    ctx.count = n;
    ctx.stream_seed = hash_coords(cfg_.seed, static_cast<std::uint64_t>(i));
    ctx.time_budget_s = cfg_.job_timeout_s;
    std::exception_ptr last_error;
    std::string last_what = "unknown error";
    for (unsigned attempt = 0; attempt < attempts_per_job; ++attempt) {
      if (interrupted.load(std::memory_order_relaxed)) return;
      if (attempt > 0) {
        retries.fetch_add(1, std::memory_order_relaxed);
        progress.mark_retried();
        const double delay_ms = cfg_.retry.backoff_for(attempt);
        if (delay_ms > 0.0)
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(delay_ms));
      }
      ctx.attempt = attempt;
      try {
        SlotGuard guard(watchdog.get());
        ctx.deadline_flag = guard.slot ? &guard.slot->expired : nullptr;
        const auto attempt_start = Clock::now();
        injector.inject(ctx);
        std::string payload = hooks.run(ctx);
        const bool over_deadline =
            (guard.slot &&
             guard.slot->expired.load(std::memory_order_relaxed)) ||
            (cfg_.job_timeout_s > 0.0 &&
             seconds_since(attempt_start) > cfg_.job_timeout_s);
        if (over_deadline)
          throw JobTimeout("job " + std::to_string(i) + " attempt " +
                           std::to_string(attempt) + " exceeded " +
                           std::to_string(cfg_.job_timeout_s) + "s deadline");
        // Success: checkpoint before counting, so the journal never claims
        // fewer jobs than the stats do.
        if (cfg_.journal)
          cfg_.journal->record_done(i, attempt + 1, payload);
        progress.mark_done();
        const std::size_t done_now =
            completed.fetch_add(1, std::memory_order_relaxed) + 1;
        if (cfg_.abort_after && done_now >= cfg_.abort_after) {
          interrupted.store(true, std::memory_order_relaxed);
          throw CampaignInterrupted(name_, done_now);
        }
        return;
      } catch (const CampaignInterrupted&) {
        throw;
      } catch (const std::exception& e) {
        last_error = std::current_exception();
        last_what = e.what();
      } catch (...) {
        last_error = std::current_exception();
        last_what = "unknown error";
      }
    }
    // Attempts exhausted.
    if (cfg_.journal)
      cfg_.journal->record_quarantined(i, attempts_per_job, last_what);
    progress.mark_failed();
    {
      std::lock_guard<std::mutex> lock(quarantine_mu);
      quarantine_.push_back(JobFailure{i, attempts_per_job, last_what});
    }
    if (cfg_.fail_fast) std::rethrow_exception(last_error);
  };

  if (threads_ <= 1 || pending.size() <= 1) {
    // Serial reference path: no pool, no queue — the behaviour --threads 1
    // pins down, and what every multi-threaded run must reproduce.
    for (const std::size_t i : pending) run_one(i);
  } else {
    ThreadPool pool(threads_);
    pool.parallel_for(pending.size(), cfg_.chunk,
                      [&](std::size_t begin, std::size_t end) {
                        for (std::size_t k = begin; k < end; ++k)
                          run_one(pending[k]);
                      });
  }

  std::sort(quarantine_.begin(), quarantine_.end(),
            [](const JobFailure& a, const JobFailure& b) {
              return a.index < b.index;
            });
  stats_.jobs = n;
  stats_.threads = threads_;
  stats_.completed = completed.load();
  stats_.resumed = resumed;
  stats_.retries = retries.load();
  stats_.quarantined = quarantine_.size();
  stats_.wall_seconds = seconds_since(t0);
  progress.finish();
}

}  // namespace densemem::sim
