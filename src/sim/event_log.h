// Structured domain-event tracing for campaign runs.
//
// Where SpanTracer records *that* a job attempt ran, the EventLog records
// what happened *inside* the simulated hardware: every committed bit flip
// with its full provenance (mechanism, aggressor rows, accumulated hammer
// stress, DPD factor — dram::FlipRecord) and every mitigation decision
// (row tracked / sampled / evicted / neighbour-refreshed —
// ctrl::DecisionRecord). Together they let a flip that got past a
// mitigation be autopsied after the fact into three miss classes:
//
//   never-seen          — no track/sample of either aggressor, and the
//                         victim was never refreshed, before the flip;
//   evicted-before-REF  — an aggressor was observed, but the victim never
//                         received a targeted refresh before the flip (the
//                         tracker lost the aggressor, or never acted);
//   refreshed-too-late  — the victim *was* neighbour-refreshed at least
//                         once, yet accumulated enough stress anyway.
//
// Determinism contract (docs/ARCHITECTURE.md, "Event tracing"): events are
// recorded per job into an EventScope and committed as one atomic batch, so
// batch contents depend only on (campaign, job) — never on scheduling. The
// merged stream orders batches by (campaign, job) and events by in-job
// sequence, so the JSONL artifact is byte-identical at any --threads /
// --shards width. Durable raw sidecars (fleet shards, journal runs) append
// batches terminated by a commit marker; merging tolerates a torn tail per
// file (a kill landed mid-batch) and dedups batches by (campaign, job)
// first-wins — a job that committed events but died before journaling
// re-runs on resume and re-commits an identical batch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "ctrl/mitigation.h"
#include "dram/flip_observer.h"

namespace densemem::sim {

enum class EventKind { kFlip, kTrack, kSample, kEvict, kNeighborRefresh };

/// One traced domain event. Flip events fill the provenance block; decision
/// events fill (bank, row[, source_row]). All values derive from the
/// simulation, never from wall clocks, so streams are reproducible.
struct Event {
  EventKind kind = EventKind::kFlip;
  std::uint32_t bank = 0;
  std::uint32_t row = 0;  ///< logical victim/subject row
  // Flip provenance (kind == kFlip).
  dram::FlipMechanism mechanism = dram::FlipMechanism::kDisturbance;
  bool one_to_zero = false;
  std::uint32_t physical_row = 0;
  std::uint32_t bit = 0;
  std::uint32_t aggr_up = dram::kNoAggressor;
  std::uint32_t aggr_down = dram::kNoAggressor;
  double stress = 0.0;
  double dpd = 1.0;
  double t_ms = 0.0;  ///< simulated commit time (flips only)
  // Decision detail (kind == kNeighborRefresh).
  std::uint32_t source_row = 0;
};

/// Flip-miss classification over one job's ordered event stream. Classes
/// are exhaustive and disjoint over disturbance flips, so
/// never_seen + evicted_before_ref + refreshed_too_late == disturbance
/// flips seen by the scope — the reconciliation the autopsy table checks.
struct MissAutopsy {
  std::uint64_t never_seen = 0;
  std::uint64_t evicted_before_ref = 0;
  std::uint64_t refreshed_too_late = 0;
  std::uint64_t total() const {
    return never_seen + evicted_before_ref + refreshed_too_late;
  }
};
MissAutopsy classify_misses(const std::vector<Event>& events);

/// Bounded, batch-committed event store with an optional durable raw
/// sidecar. Thread-safe: commit() is one mutex acquisition per job.
class EventLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  explicit EventLog(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}
  ~EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Opens the durable raw sidecar. `append` continues an existing file
  /// (resume / respawned fleet worker), first truncating away any trailing
  /// incomplete batch a mid-write kill left behind. Returns false if the
  /// file cannot be opened.
  bool open_raw(const std::string& path, bool append);
  const std::string& raw_path() const { return raw_path_; }

  /// Atomically appends one job's event batch (and mirrors it to the raw
  /// sidecar, marker-terminated and flushed). A batch that would exceed
  /// capacity is dropped whole — memory and sidecar stay consistent — and
  /// counted in dropped().
  void commit(const std::string& campaign, std::size_t job,
              std::vector<Event> events);

  std::size_t recorded() const;
  std::size_t dropped() const;

  /// The deterministic merged JSONL artifact from in-memory batches:
  /// batches deduped by (campaign, job) first-wins, ordered by
  /// (campaign, job, seq).
  void write_jsonl(std::ostream& os) const;
  bool write_jsonl_file(const std::string& path) const;

  /// Merges raw sidecar files (shard events, resumed runs) into the same
  /// deterministic artifact write_jsonl produces. Missing files are
  /// skipped; a torn trailing batch per file is dropped; duplicate
  /// (campaign, job) batches dedup first-wins in file order.
  struct MergeResult {
    std::size_t files = 0;   ///< files found and read
    std::size_t events = 0;  ///< events in the merged artifact
  };
  static MergeResult merge_raw_files(const std::vector<std::string>& paths,
                                     const std::string& out_path);

  /// The one formatting path every writer shares (in-memory artifact, raw
  /// sidecar, raw merge) — the reason all routes yield identical bytes.
  static std::string format_line(const std::string& campaign, std::size_t job,
                                 std::size_t seq, const Event& e);

 private:
  struct Batch {
    std::string campaign;
    std::size_t job = 0;
    std::vector<Event> events;
  };

  mutable std::mutex mu_;
  std::vector<Batch> batches_;
  std::size_t recorded_ = 0;
  std::size_t dropped_ = 0;
  std::size_t capacity_;
  std::FILE* raw_ = nullptr;
  std::string raw_path_;
};

/// Per-job recording scope: implements both observer interfaces, buffers
/// events locally (no synchronization until commit), and pushes the batch
/// to the log as the job body's last statement. Works without a log too —
/// benches that always print autopsy/attribution tables record into a
/// scope with log == nullptr and read events() directly; commit() is then
/// a no-op.
class EventScope final : public dram::FlipObserver,
                         public ctrl::DecisionObserver {
 public:
  EventScope(EventLog* log, std::string campaign, std::size_t job)
      : log_(log), campaign_(std::move(campaign)), job_(job) {}

  void on_flip(const dram::FlipRecord& rec) override;
  void on_decision(const ctrl::DecisionRecord& rec) override;

  dram::FlipObserver* flip_observer() { return this; }
  ctrl::DecisionObserver* decision_observer() { return this; }

  const std::vector<Event>& events() const { return events_; }

  /// Hands the batch to the log (no-op without one). Call exactly once,
  /// after the job's simulation work: the campaign engine journals the
  /// job's result only after its body returns, so a crash between commit
  /// and journaling merely re-runs the job — the duplicate batch dedups.
  void commit();

 private:
  EventLog* log_;
  std::string campaign_;
  std::size_t job_;
  std::vector<Event> events_;
  bool committed_ = false;
};

}  // namespace densemem::sim
