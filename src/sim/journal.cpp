#include "sim/journal.h"

#include <unistd.h>

#include <bit>
#include <charconv>
#include <cinttypes>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace densemem::sim {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::runtime_error("journal: " + what);
}

constexpr char kMagic[] = "#densemem-journal v1";

bool is_hex(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
         (c >= 'A' && c <= 'F');
}

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return c - 'A' + 10;
}

template <typename T>
T parse_num(std::string_view tok, const char* what) {
  T v{};
  const auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc{} || ptr != tok.data() + tok.size())
    bad(std::string("bad ") + what + " field '" + std::string(tok) + "'");
  return v;
}

std::uint64_t parse_hex64(std::string_view tok, const char* what) {
  std::uint64_t v{};
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), v, 16);
  if (ec != std::errc{} || ptr != tok.data() + tok.size())
    bad(std::string("bad ") + what + " field '" + std::string(tok) + "'");
  return v;
}

/// Pops the next space-separated token off `rest`; empty when exhausted.
std::string_view pop_token(std::string_view& rest) {
  const auto sp = rest.find(' ');
  std::string_view tok = rest.substr(0, sp);
  rest = sp == std::string_view::npos ? std::string_view{}
                                      : rest.substr(sp + 1);
  return tok;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string escape_token(std::string_view s) {
  // "%-" marks the empty string: '%' is otherwise always followed by two
  // hex digits, so the marker cannot collide with escaped content.
  if (s.empty()) return "%-";
  static constexpr char hex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '%' || c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      const auto b = static_cast<unsigned char>(c);
      out += '%';
      out += hex[b >> 4];
      out += hex[b & 0xF];
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape_token(std::string_view s) {
  if (s == "%-") return "";
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out += s[i];
      continue;
    }
    if (i + 2 >= s.size() || !is_hex(s[i + 1]) || !is_hex(s[i + 2]))
      bad("truncated %-escape in token '" + std::string(s) + "'");
    out += static_cast<char>(hex_val(s[i + 1]) * 16 + hex_val(s[i + 2]));
    i += 2;
  }
  return out;
}

// ---------------------------------------------------------------- payloads

void PayloadWriter::sep() {
  if (!out_.empty()) out_ += ' ';
}

void PayloadWriter::u64(std::uint64_t v) {
  sep();
  out_ += std::to_string(v);
}

void PayloadWriter::i64(std::int64_t v) {
  sep();
  out_ += std::to_string(v);
}

void PayloadWriter::f64(double v) {
  sep();
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, std::bit_cast<std::uint64_t>(v));
  out_ += buf;
}

void PayloadWriter::str(std::string_view s) {
  sep();
  out_ += escape_token(s);
}

std::string_view PayloadReader::next_token() {
  if (rest_.empty()) bad("payload exhausted");
  return pop_token(rest_);
}

std::uint64_t PayloadReader::u64() { return parse_num<std::uint64_t>(next_token(), "u64"); }

std::int64_t PayloadReader::i64() { return parse_num<std::int64_t>(next_token(), "i64"); }

double PayloadReader::f64() {
  return std::bit_cast<double>(parse_hex64(next_token(), "f64"));
}

std::string PayloadReader::str() { return unescape_token(next_token()); }

// ------------------------------------------------------------------ reader

namespace {

/// One parsed section header.
struct SectionHeader {
  std::string name;
  std::uint64_t seed = 0;
  std::size_t jobs = 0;
  std::string tag;
};

/// Streams a journal file line by line, invoking `on_section` per section
/// header and `on_record` per settled-job record, in file order. Nothing is
/// buffered beyond one line of lookahead, so a multi-million-record fleet
/// shard costs O(1) memory to scan.
///
/// Error discipline (the contract ShardJournalStream documents): a line
/// that fails to *parse* — bad grammar, bad digest, index outside the
/// section grid — is tolerated only as the file's final line (the torn tail
/// of a mid-append kill, dropped with a stderr note); anywhere earlier it
/// throws naming the file and line. Exceptions thrown by the callbacks are
/// never mistaken for torn tails: they propagate untouched.
void scan_journal_file(
    const std::string& path,
    const std::function<void(const SectionHeader&)>& on_section,
    const std::function<void(Journal::Record&&)>& on_record) {
  std::ifstream in(path, std::ios::binary);
  if (!in) bad("cannot open '" + path + "'");
  std::string line;
  if (!std::getline(in, line)) bad("'" + path + "' is not a v1 campaign journal");
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line != kMagic) bad("'" + path + "' is not a v1 campaign journal");

  bool have_section = false;
  std::size_t cur_jobs = 0;

  std::size_t ln = 1;  // 1-based; the magic line was 1
  std::string next;
  bool more = static_cast<bool>(std::getline(in, line));
  while (more) {
    const bool has_next = static_cast<bool>(std::getline(in, next));
    ++ln;
    if (!line.empty() && line.back() == '\r') line.pop_back();

    // Parse first (torn-tail-eligible), dispatch after (callback errors
    // must not be dropped as a torn tail).
    bool is_section = false;
    SectionHeader header;
    Journal::Record rec;
    try {
      std::string_view rest = line;
      const std::string_view kind = pop_token(rest);
      if (kind == "S") {
        is_section = true;
        header.name = unescape_token(pop_token(rest));
        header.seed = parse_num<std::uint64_t>(pop_token(rest), "seed");
        header.jobs = parse_num<std::size_t>(pop_token(rest), "jobs");
        header.tag = unescape_token(pop_token(rest));
      } else if (kind == "D" || kind == "Q") {
        if (!have_section) bad("record before any section header");
        rec.index = parse_num<std::size_t>(pop_token(rest), "index");
        rec.attempts = parse_num<unsigned>(pop_token(rest), "attempts");
        if (rec.index >= cur_jobs)
          bad("record index " + std::to_string(rec.index) +
              " outside the section's grid");
        if (kind == "D") {
          const std::uint64_t digest = parse_hex64(pop_token(rest), "digest");
          rec.payload = std::string(rest);
          if (fnv1a64(rec.payload) != digest)
            bad("payload digest mismatch for job " +
                std::to_string(rec.index));
        } else {
          rec.quarantined = true;
          rec.error = unescape_token(rest);
        }
      } else {
        bad("unknown record kind '" + std::string(kind) + "'");
      }
    } catch (const std::runtime_error& e) {
      if (!has_next) {
        // A kill mid-append tears at most the final line; dropping it only
        // costs re-running that one job.
        std::fprintf(stderr,
                     "[journal] dropping torn final line %zu of %s (%s)\n",
                     ln, path.c_str(), e.what());
        return;
      }
      throw std::runtime_error(std::string(e.what()) + " at " + path + ":" +
                               std::to_string(ln));
    }

    if (is_section) {
      have_section = true;
      cur_jobs = header.jobs;
      if (on_section) on_section(header);
    } else {
      if (on_record) on_record(std::move(rec));
    }
    line = std::move(next);
    more = has_next;
  }
}

}  // namespace

Journal Journal::load(const std::string& path) {
  Journal j;
  Section* cur = nullptr;
  scan_journal_file(
      path,
      [&](const SectionHeader& h) {
        Section sec;
        sec.seed = h.seed;
        sec.jobs = h.jobs;
        sec.tag = h.tag;
        auto [it, fresh] = j.sections.try_emplace(h.name, std::move(sec));
        if (!fresh) {
          // Same campaign journaled again (a resumed run appends a new
          // header): the grid must be the same grid.
          if (it->second.seed != h.seed || it->second.jobs != h.jobs ||
              it->second.tag != h.tag)
            bad("section '" + h.name + "' redefined with different parameters");
        }
        cur = &it->second;
      },
      [&](Record&& rec) {
        const std::size_t index = rec.index;
        cur->records[index] = std::move(rec);
      });
  return j;
}

// ------------------------------------------------------- shard journal set

void ShardJournalStream::validate() const {
  for (const std::string& path : paths_)
    scan_journal_file(path, nullptr, nullptr);
}

void ShardJournalStream::replay(
    const std::string& campaign, std::uint64_t seed, std::size_t jobs,
    const std::string& tag,
    const std::function<void(const Journal::Record&)>& fn) const {
  for (const std::string& path : paths_) {
    bool in_target = false;
    scan_journal_file(
        path,
        [&](const SectionHeader& h) {
          in_target = h.name == campaign;
          if (in_target &&
              (h.seed != seed || h.jobs != jobs || h.tag != tag))
            bad("campaign '" + campaign + "': shard journal '" + path +
                "' was recorded for a different grid (seed/jobs/tag "
                "mismatch)");
        },
        [&](Journal::Record&& rec) {
          if (in_target) fn(rec);
        });
  }
}

// ------------------------------------------------------------------ writer

JournalWriter::~JournalWriter() {
  if (f_) std::fclose(f_);
}

bool JournalWriter::open(const std::string& path, bool append) {
  std::lock_guard<std::mutex> lock(mu_);
  if (f_) std::fclose(f_);
  f_ = std::fopen(path.c_str(), append ? "a+b" : "wb");
  if (!f_) return false;
  path_ = path;
  bool need_magic = !append;
  if (append) {
    std::fseek(f_, 0, SEEK_END);
    long size = std::ftell(f_);
    if (size > 0) {
      // A previous incarnation killed mid-append leaves a torn final line
      // with no newline. Appending after it would fuse two records into
      // one mid-file garbage line — which readers rightly reject as
      // corruption — so truncate the torn tail away before writing.
      std::fseek(f_, size - 1, SEEK_SET);
      if (std::fgetc(f_) != '\n') {
        long keep = size - 1;  // bytes to keep: up to and incl. last '\n'
        while (keep > 0) {
          std::fseek(f_, keep - 1, SEEK_SET);
          if (std::fgetc(f_) == '\n') break;
          --keep;
        }
        std::fflush(f_);
        if (::ftruncate(::fileno(f_), keep) != 0) {
          std::fclose(f_);
          f_ = nullptr;
          return false;
        }
        size = keep;
      }
      std::fseek(f_, 0, SEEK_END);
    }
    need_magic = size == 0;
  }
  if (need_magic) {
    std::fprintf(f_, "%s\n", kMagic);
    std::fflush(f_);
  }
  return true;
}

void JournalWriter::begin_section(const std::string& campaign,
                                  std::uint64_t seed, std::size_t jobs,
                                  const std::string& tag) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!f_) return;
  std::fprintf(f_, "S %s %" PRIu64 " %zu %s\n", escape_token(campaign).c_str(),
               seed, jobs, escape_token(tag).c_str());
  std::fflush(f_);
}

void JournalWriter::record_done(std::size_t index, unsigned attempts,
                                const std::string& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!f_) return;
  std::fprintf(f_, "D %zu %u %016" PRIx64 " %s\n", index, attempts,
               fnv1a64(payload), payload.c_str());
  std::fflush(f_);
}

void JournalWriter::record_quarantined(std::size_t index, unsigned attempts,
                                       const std::string& error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!f_) return;
  std::fprintf(f_, "Q %zu %u %s\n", index, attempts,
               escape_token(error).c_str());
  std::fflush(f_);
}

}  // namespace densemem::sim
