#include "sim/journal.h"

#include <bit>
#include <charconv>
#include <cinttypes>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace densemem::sim {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::runtime_error("journal: " + what);
}

constexpr char kMagic[] = "#densemem-journal v1";

bool is_hex(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
         (c >= 'A' && c <= 'F');
}

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return c - 'A' + 10;
}

template <typename T>
T parse_num(std::string_view tok, const char* what) {
  T v{};
  const auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc{} || ptr != tok.data() + tok.size())
    bad(std::string("bad ") + what + " field '" + std::string(tok) + "'");
  return v;
}

std::uint64_t parse_hex64(std::string_view tok, const char* what) {
  std::uint64_t v{};
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), v, 16);
  if (ec != std::errc{} || ptr != tok.data() + tok.size())
    bad(std::string("bad ") + what + " field '" + std::string(tok) + "'");
  return v;
}

/// Pops the next space-separated token off `rest`; empty when exhausted.
std::string_view pop_token(std::string_view& rest) {
  const auto sp = rest.find(' ');
  std::string_view tok = rest.substr(0, sp);
  rest = sp == std::string_view::npos ? std::string_view{}
                                      : rest.substr(sp + 1);
  return tok;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string escape_token(std::string_view s) {
  // "%-" marks the empty string: '%' is otherwise always followed by two
  // hex digits, so the marker cannot collide with escaped content.
  if (s.empty()) return "%-";
  static constexpr char hex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '%' || c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      const auto b = static_cast<unsigned char>(c);
      out += '%';
      out += hex[b >> 4];
      out += hex[b & 0xF];
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape_token(std::string_view s) {
  if (s == "%-") return "";
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out += s[i];
      continue;
    }
    if (i + 2 >= s.size() || !is_hex(s[i + 1]) || !is_hex(s[i + 2]))
      bad("truncated %-escape in token '" + std::string(s) + "'");
    out += static_cast<char>(hex_val(s[i + 1]) * 16 + hex_val(s[i + 2]));
    i += 2;
  }
  return out;
}

// ---------------------------------------------------------------- payloads

void PayloadWriter::sep() {
  if (!out_.empty()) out_ += ' ';
}

void PayloadWriter::u64(std::uint64_t v) {
  sep();
  out_ += std::to_string(v);
}

void PayloadWriter::i64(std::int64_t v) {
  sep();
  out_ += std::to_string(v);
}

void PayloadWriter::f64(double v) {
  sep();
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, std::bit_cast<std::uint64_t>(v));
  out_ += buf;
}

void PayloadWriter::str(std::string_view s) {
  sep();
  out_ += escape_token(s);
}

std::string_view PayloadReader::next_token() {
  if (rest_.empty()) bad("payload exhausted");
  return pop_token(rest_);
}

std::uint64_t PayloadReader::u64() { return parse_num<std::uint64_t>(next_token(), "u64"); }

std::int64_t PayloadReader::i64() { return parse_num<std::int64_t>(next_token(), "i64"); }

double PayloadReader::f64() {
  return std::bit_cast<double>(parse_hex64(next_token(), "f64"));
}

std::string PayloadReader::str() { return unescape_token(next_token()); }

// ------------------------------------------------------------------ reader

Journal Journal::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) bad("cannot open '" + path + "'");
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(std::move(line));
  }
  if (lines.empty() || lines.front() != kMagic)
    bad("'" + path + "' is not a v1 campaign journal");

  Journal j;
  Section* cur = nullptr;
  for (std::size_t ln = 1; ln < lines.size(); ++ln) {
    try {
      std::string_view rest = lines[ln];
      const std::string_view kind = pop_token(rest);
      if (kind == "S") {
        const std::string name = unescape_token(pop_token(rest));
        Section sec;
        sec.seed = parse_num<std::uint64_t>(pop_token(rest), "seed");
        sec.jobs = parse_num<std::size_t>(pop_token(rest), "jobs");
        sec.tag = unescape_token(pop_token(rest));
        auto [it, fresh] = j.sections.try_emplace(name, std::move(sec));
        if (!fresh) {
          // Same campaign journaled again (a resumed run appends a new
          // header): the grid must be the same grid.
          if (it->second.seed != sec.seed || it->second.jobs != sec.jobs ||
              it->second.tag != sec.tag)
            bad("section '" + name + "' redefined with different parameters");
        }
        cur = &it->second;
      } else if (kind == "D" || kind == "Q") {
        if (!cur) bad("record before any section header");
        Record rec;
        rec.index = parse_num<std::size_t>(pop_token(rest), "index");
        rec.attempts = parse_num<unsigned>(pop_token(rest), "attempts");
        if (rec.index >= cur->jobs)
          bad("record index " + std::to_string(rec.index) +
              " outside the section's grid");
        if (kind == "D") {
          const std::uint64_t digest = parse_hex64(pop_token(rest), "digest");
          rec.payload = std::string(rest);
          if (fnv1a64(rec.payload) != digest)
            bad("payload digest mismatch for job " +
                std::to_string(rec.index));
        } else {
          rec.quarantined = true;
          rec.error = unescape_token(rest);
        }
        cur->records[rec.index] = std::move(rec);
      } else {
        bad("unknown record kind '" + std::string(kind) + "'");
      }
    } catch (const std::runtime_error& e) {
      if (ln + 1 == lines.size()) {
        // A kill mid-append tears at most the final line; dropping it only
        // costs re-running that one job.
        std::fprintf(stderr,
                     "[journal] dropping torn final line %zu of %s (%s)\n",
                     ln + 1, path.c_str(), e.what());
        break;
      }
      throw std::runtime_error(std::string(e.what()) + " at " + path +
                               ":" + std::to_string(ln + 1));
    }
  }
  return j;
}

// ------------------------------------------------------------------ writer

JournalWriter::~JournalWriter() {
  if (f_) std::fclose(f_);
}

bool JournalWriter::open(const std::string& path, bool append) {
  std::lock_guard<std::mutex> lock(mu_);
  if (f_) std::fclose(f_);
  f_ = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (!f_) return false;
  path_ = path;
  bool need_magic = !append;
  if (append) {
    std::fseek(f_, 0, SEEK_END);
    need_magic = std::ftell(f_) == 0;
  }
  if (need_magic) {
    std::fprintf(f_, "%s\n", kMagic);
    std::fflush(f_);
  }
  return true;
}

void JournalWriter::begin_section(const std::string& campaign,
                                  std::uint64_t seed, std::size_t jobs,
                                  const std::string& tag) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!f_) return;
  std::fprintf(f_, "S %s %" PRIu64 " %zu %s\n", escape_token(campaign).c_str(),
               seed, jobs, escape_token(tag).c_str());
  std::fflush(f_);
}

void JournalWriter::record_done(std::size_t index, unsigned attempts,
                                const std::string& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!f_) return;
  std::fprintf(f_, "D %zu %u %016" PRIx64 " %s\n", index, attempts,
               fnv1a64(payload), payload.c_str());
  std::fflush(f_);
}

void JournalWriter::record_quarantined(std::size_t index, unsigned attempts,
                                       const std::string& error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!f_) return;
  std::fprintf(f_, "Q %zu %u %s\n", index, attempts,
               escape_token(error).c_str());
  std::fflush(f_);
}

}  // namespace densemem::sim
