// Per-attempt span tracing for campaign runs.
//
// The campaign executor records one Span per job *attempt* — including the
// attempts that failed, retried, expired, or led to quarantine — into a
// bounded in-memory buffer. Flushing writes JSON Lines (one object per
// span), the format log pipelines ingest directly:
//
//   {"campaign":"fig1","job":17,"attempt":0,"outcome":"retried",
//    "t_start_s":0.41,"duration_s":0.003,"queue_wait_s":0.0001,
//    "worker":2,"error":"injected fault: ..."}
//
// Schema contract (tests/test_telemetry.cpp pins it): every span carries
// campaign/job/attempt/outcome, the number of spans for a job equals the
// attempt count the journal records for it, and "error" appears exactly on
// non-ok spans. Timing fields (t_start_s, duration_s, queue_wait_s) and
// worker ids vary run to run; everything else is deterministic for a fixed
// (config, fault seed). The flush sorts spans by (campaign, job, attempt),
// so the *line order* is deterministic too.
//
// The buffer is bounded: past `capacity` spans, record() drops (and
// counts) instead of growing — a runaway grid degrades telemetry, never
// memory. All output goes to a sidecar file; stdout is untouched.
#pragma once

#include <cstddef>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace densemem::sim {

/// What happened to one job attempt.
enum class SpanOutcome {
  kOk,           ///< attempt succeeded
  kRetried,      ///< attempt failed; another attempt follows
  kFailed,       ///< final attempt failed; grid aborts (fail-fast)
  kQuarantined,  ///< final attempt failed; job quarantined (degrade)
  kExpired,      ///< attempt exceeded its deadline (JobTimeout)
};

const char* span_outcome_name(SpanOutcome o);

struct Span {
  std::string campaign;
  std::size_t job = 0;
  unsigned attempt = 0;        ///< 0-based, matches JobContext::attempt
  SpanOutcome outcome = SpanOutcome::kOk;
  double t_start_s = 0.0;      ///< attempt start, seconds since grid start
  double duration_s = 0.0;     ///< attempt wall-clock
  double queue_wait_s = 0.0;   ///< chunk queue wait (0 on the serial path)
  unsigned worker = 0;         ///< ThreadPool worker id (0 = main thread)
  std::string error;           ///< what() for non-ok outcomes, else empty
};

class SpanTracer {
 public:
  explicit SpanTracer(std::size_t capacity = 1 << 20)
      : capacity_(capacity) {}
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  /// Appends one span. Thread-safe. Past capacity the span is dropped and
  /// counted instead.
  void record(Span span);

  std::size_t size() const;
  std::size_t dropped() const;

  /// Spans sorted by (campaign, job, attempt) — the deterministic flush
  /// order. Call after the grid has finished.
  std::vector<Span> sorted() const;

  /// Writes one JSON object per line in sorted() order.
  void write_jsonl(std::ostream& os) const;
  /// write_jsonl to a file; returns false if the file cannot be opened.
  bool write_jsonl_file(const std::string& path) const;

  /// Fleet trace merge: combines this tracer's spans with the span lines
  /// already serialized in `paths` (per-shard worker sidecars; missing
  /// files are skipped), sorted by (campaign, job, attempt) across all
  /// sources, and writes the single deterministic JSONL file the user's
  /// --trace flag names. Returns false if the output cannot be written.
  bool merge_jsonl_files(const std::vector<std::string>& paths,
                         const std::string& out_path) const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::size_t dropped_ = 0;
};

}  // namespace densemem::sim
