#include "sim/result_sink.h"

#include <algorithm>

namespace densemem::sim {

void TableSink::add(std::size_t job_index, std::vector<Table::Cell> row) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(Record{job_index, std::move(row)});
}

std::size_t TableSink::num_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

Table TableSink::merged() const {
  std::vector<Record> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sorted = records_;
  }
  // Stable: rows emitted by one job (a single thread) keep their order.
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Record& a, const Record& b) {
                     return a.job_index < b.job_index;
                   });
  Table t(headers_);
  t.set_precision(precision_);
  t.set_scientific(scientific_);
  for (auto& r : sorted) t.add_row(std::move(r.cells));
  return t;
}

void CounterSink::add(const std::string& name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counts_[name] += delta;
}

std::uint64_t CounterSink::value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counts_.find(name);
  return it == counts_.end() ? 0 : it->second;
}

Table CounterSink::merged() const {
  std::lock_guard<std::mutex> lock(mu_);
  Table t({"counter", "count"});
  for (const auto& [name, count] : counts_) t.add_row({name, count});
  return t;
}

}  // namespace densemem::sim
