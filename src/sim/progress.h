// Campaign progress reporting: periodic "[sim:…]" throughput lines on
// stderr, with the done/failed/retried counts read from a MetricsRegistry
// instead of private atomics — the registry is the single source of truth
// for job accounting (telemetry.h), so the progress line, CampaignStats,
// and the exported metrics file can never disagree.
//
// mark_done()/mark_failed()/mark_retried() increment the registry counters
// `<prefix>jobs.done` / `<prefix>jobs.failed` / `<prefix>jobs.retried`
// from the calling (worker) thread's shard. All output goes to stderr so
// stdout (tables, [shape] lines, CSV mirrors) stays byte-identical
// regardless of thread count or timing.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "sim/telemetry.h"

namespace densemem::sim {

class Progress {
 public:
  /// `label` tags every printed line ("[sim:<label>] ..."). Counters live
  /// in `registry` under `<prefix>jobs.*`; when `registry` is null the
  /// Progress owns a private registry (standalone use in tests). When
  /// `enabled` is false the counters still work but nothing is printed and
  /// no monitor thread is spawned. `interval_s` is the print period.
  Progress(std::string label, std::size_t total, bool enabled,
           double interval_s = 2.0, MetricsRegistry* registry = nullptr,
           std::string prefix = "");
  ~Progress();

  Progress(const Progress&) = delete;
  Progress& operator=(const Progress&) = delete;

  /// Worker-side: mark one job finished (or failed, or retried — a retry
  /// counts the extra attempt, not the job). Thread-safe; increments the
  /// registry counter from the calling thread's shard.
  void mark_done() { registry_->add(done_name_); }
  void mark_failed() { registry_->add(failed_name_); }
  void mark_retried() { registry_->add(retried_name_); }

  /// Merged registry totals (across all worker shards).
  std::size_t done() const { return registry_->counter(done_name_); }
  std::size_t failed() const { return registry_->counter(failed_name_); }
  std::size_t retried() const { return registry_->counter(retried_name_); }
  std::size_t total() const { return total_; }

  /// The registry the counters live in (the shared one, or the private
  /// fallback).
  MetricsRegistry& registry() { return *registry_; }

  /// The status line as printed (failure/retry accounting included when
  /// nonzero) — exposed so tests can assert the line agrees with the
  /// registry totals without capturing stderr.
  std::string line(bool final_line) const;

  /// Stops the monitor (if any) and prints the final summary line. Called
  /// by the destructor if not called explicitly. Returns elapsed seconds.
  double finish();

 private:
  void monitor_loop();
  void print_line(bool final_line) const;
  double elapsed_s() const;

  const std::string label_;
  const std::size_t total_;
  const bool enabled_;
  const std::chrono::milliseconds interval_;
  const std::chrono::steady_clock::time_point start_;

  std::unique_ptr<MetricsRegistry> owned_registry_;  ///< when none is shared
  MetricsRegistry* registry_;
  const std::string done_name_;
  const std::string failed_name_;
  const std::string retried_name_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool finished_ = false;
  std::thread monitor_;
};

}  // namespace densemem::sim
