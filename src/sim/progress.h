// Campaign progress reporting: lock-free done/failed counters incremented
// by worker threads, plus an optional monitor thread that prints a periodic
// throughput line. All output goes to stderr so stdout (tables, [shape]
// lines, CSV mirrors) stays byte-identical regardless of thread count or
// timing.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>
#include <thread>

namespace densemem::sim {

class Progress {
 public:
  /// `label` tags every printed line ("[sim:<label>] ..."). When `enabled`
  /// is false the counters still work but nothing is printed and no monitor
  /// thread is spawned. `interval_s` is the print period.
  Progress(std::string label, std::size_t total, bool enabled,
           double interval_s = 2.0);
  ~Progress();

  Progress(const Progress&) = delete;
  Progress& operator=(const Progress&) = delete;

  /// Worker-side: mark one job finished (or failed, or retried — a retry
  /// counts the extra attempt, not the job). Thread-safe.
  void mark_done() { done_.fetch_add(1, std::memory_order_relaxed); }
  void mark_failed() { failed_.fetch_add(1, std::memory_order_relaxed); }
  void mark_retried() { retried_.fetch_add(1, std::memory_order_relaxed); }

  std::size_t done() const { return done_.load(std::memory_order_relaxed); }
  std::size_t failed() const {
    return failed_.load(std::memory_order_relaxed);
  }
  std::size_t retried() const {
    return retried_.load(std::memory_order_relaxed);
  }
  std::size_t total() const { return total_; }

  /// The status line as printed (failure/retry accounting included when
  /// nonzero) — exposed so tests can assert on the summary without
  /// capturing stderr.
  std::string line(bool final_line) const;

  /// Stops the monitor (if any) and prints the final summary line. Called
  /// by the destructor if not called explicitly. Returns elapsed seconds.
  double finish();

 private:
  void monitor_loop();
  void print_line(bool final_line) const;
  double elapsed_s() const;

  const std::string label_;
  const std::size_t total_;
  const bool enabled_;
  const std::chrono::milliseconds interval_;
  const std::chrono::steady_clock::time_point start_;

  std::atomic<std::size_t> done_{0};
  std::atomic<std::size_t> failed_{0};
  std::atomic<std::size_t> retried_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool finished_ = false;
  std::thread monitor_;
};

}  // namespace densemem::sim
