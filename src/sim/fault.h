// Deterministic fault injection for campaign jobs.
//
// Robustness behaviour (retry, quarantine, deadlines, resume) is only
// trustworthy if it is testable byte-for-byte, so injected faults are a
// pure function of (fault seed, job index, attempt): the injector draws one
// unit uniform per job from hash_coords(seed, index) to decide whether that
// job is fault-prone (and how — throw or hang), and a fault-prone job
// faults on its first `fail_attempts` attempts, then succeeds. The decision
// never consumes the job's RNG stream, so an injected-then-retried job
// produces exactly the bytes an untouched job would.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/rng.h"

namespace densemem::sim {

/// The failure the injector raises for a fault-prone job's failing attempt.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what) : std::runtime_error(what) {}
};

enum class FaultKind { kNone, kFail, kHang };

struct FaultConfig {
  /// Master fault seed. 0 disables injection entirely.
  std::uint64_t seed = 0;
  /// Probability that a given job throws an InjectedFault on its faulting
  /// attempts.
  double fail_probability = 0.0;
  /// Probability that a given job hangs (sleeps) instead of throwing; the
  /// watchdog/deadline machinery is what turns the hang into a failure.
  double hang_probability = 0.0;
  /// Number of leading attempts (0-based attempts [0, fail_attempts)) that
  /// fault; the job succeeds from attempt `fail_attempts` on. Set this at
  /// or above RetryPolicy::max_attempts to make a job persistently failing
  /// (it will be quarantined).
  unsigned fail_attempts = 1;
  /// How long an injected hang naps if nothing stops it. A configured job
  /// deadline interrupts the nap (the hang polls JobContext::expired() and
  /// raises JobTimeout); without a deadline the job resumes normally after
  /// the full nap.
  double hang_seconds = 3600.0;
};

struct JobContext;  // campaign.h

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultConfig& cfg) : cfg_(cfg) {}

  bool enabled() const {
    return cfg_.seed != 0 &&
           (cfg_.fail_probability > 0.0 || cfg_.hang_probability > 0.0);
  }

  /// The fault (if any) this job carries — same answer for every call, on
  /// every thread, in every process with the same config.
  FaultKind plan(std::size_t index) const {
    if (!enabled()) return FaultKind::kNone;
    const std::uint64_t h =
        hash_coords(cfg_.seed, static_cast<std::uint64_t>(index));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u < cfg_.hang_probability) return FaultKind::kHang;
    if (u < cfg_.hang_probability + cfg_.fail_probability)
      return FaultKind::kFail;
    return FaultKind::kNone;
  }

  /// True when attempt `attempt` (0-based) of job `index` faults.
  bool should_fault(std::size_t index, unsigned attempt) const {
    return attempt < cfg_.fail_attempts && plan(index) != FaultKind::kNone;
  }

  /// Called by the campaign executor at the top of every attempt, before
  /// the job body runs (so a faulted attempt has no partial side effects).
  /// Throws InjectedFault, or for a hang naps until the job's deadline
  /// expires (throwing JobTimeout) or hang_seconds elapse (returning
  /// normally, as a stall that recovered).
  void inject(const JobContext& ctx) const;

  const FaultConfig& config() const { return cfg_; }

 private:
  FaultConfig cfg_;
};

}  // namespace densemem::sim
