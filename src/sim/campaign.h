// Campaign — the deterministic parallel experiment driver.
//
// A campaign is a grid of independent jobs (modules × patterns × trials,
// one index per job). Each job gets a JobContext carrying its own RNG
// stream seed, derived as hash_coords(campaign seed, job index) — never a
// shared generator — so the result of job i is a pure function of
// (campaign config, i). That makes the merged result bit-for-bit identical
// whether the grid runs on 1 thread or 64, in whatever order the scheduler
// picks; tests/test_sim.cpp asserts exactly this.
//
// Usage (the pattern the heavy benches follow):
//
//   sim::CampaignConfig cc;
//   cc.threads = args.threads;           // 0 = hardware concurrency
//   sim::Campaign campaign("fig1", cc);
//   auto rows = campaign.map<PerModule>(db.size(), [&](const sim::JobContext& ctx) {
//     dram::Device dev(db.device_config(db.modules()[ctx.index], g));
//     ...                                // seed anything from ctx if needed
//     return PerModule{...};
//   });                                  // rows[i] is job i's result
//
// map() returns results in job-index order (the merge point); streaming
// collectors live in result_sink.h.
//
// Failure semantics (docs/ARCHITECTURE.md, "Failure semantics"): every job
// attempt may be retried (RetryPolicy) — the stream seed does not depend on
// the attempt, so a retried job's result is byte-identical to an untouched
// one — bounded by a deadline (job_timeout_s + a watchdog thread), and, in
// degrade mode, quarantined instead of aborting the grid when it keeps
// failing. map_journaled() additionally checkpoints every settled job to an
// append-only journal so an interrupted campaign resumes without re-running
// (or re-randomizing) completed work. Because a failed attempt is re-run
// from scratch, retryable jobs should return their results through map()
// rather than writing to shared sinks mid-job: assigning out[index] is
// idempotent, a sink add is not.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/fault.h"
#include "sim/journal.h"
#include "sim/retry.h"
#include "sim/span.h"
#include "sim/telemetry.h"

namespace densemem::sim {

/// Thrown when the run stops early because `abort_after` successful
/// completions were journaled — the deterministic stand-in for a mid-grid
/// kill, used to exercise --resume. Everything already settled is on disk.
class CampaignInterrupted : public std::runtime_error {
 public:
  CampaignInterrupted(const std::string& campaign, std::size_t completed)
      : std::runtime_error("campaign '" + campaign + "' interrupted after " +
                           std::to_string(completed) + " completed jobs") {}
};

struct CampaignConfig {
  unsigned threads = 0;     ///< worker count; 0 = hardware concurrency
  std::uint64_t seed = 1;   ///< master seed; every job stream derives from it
  std::size_t chunk = 1;    ///< job indices per work-queue grab
  bool progress = true;     ///< periodic "[sim:…]" line on stderr
  double progress_interval_s = 2.0;

  // --- fault tolerance ----------------------------------------------------
  RetryPolicy retry;        ///< attempts per job; 1 = fail on first error
  FaultConfig fault;        ///< deterministic fault injection; seed 0 = off
  /// Per-attempt wall-clock budget in seconds; 0 = no deadline. When set, a
  /// watchdog thread flags over-deadline attempts (JobContext::expired()
  /// turns true so co-operative jobs can bail out) and the attempt counts
  /// as failed. Deadlines trade determinism for liveness: pick budgets far
  /// above the real job cost so only genuine hangs trip them.
  double job_timeout_s = 0.0;
  /// true (default): a job that exhausts its attempts rethrows and aborts
  /// the grid — the pre-fault-tolerance behaviour. false (degrade mode):
  /// the job is quarantined (skipped, counted, reported via quarantine())
  /// and the rest of the grid completes.
  bool fail_fast = true;
  /// Stop after this many successful completions this run by throwing
  /// CampaignInterrupted (0 = run to the end). Only meaningful with a
  /// journal: it simulates an interruption that --resume recovers from.
  std::size_t abort_after = 0;
  /// Checkpoint sink: every settled job is appended here (owned by the
  /// caller, shared across a bench's campaigns). nullptr = no journal.
  JournalWriter* journal = nullptr;
  /// Previously written journal to resume from (owned by the caller).
  /// Completed jobs are replayed through the codec instead of re-run;
  /// quarantined jobs stay quarantined. nullptr = fresh run.
  const Journal* resume = nullptr;
  /// Streaming alternative to `resume` (owned by the caller): replays the
  /// campaign's records straight off disk — one or many per-shard journal
  /// files — without materializing a Journal, so resuming a fleet-scale
  /// grid costs O(1) memory. Records repeated across resumed sections are
  /// deduplicated by job index (first occurrence wins; duplicates are
  /// identical anyway, results being deterministic). Ignored when `resume`
  /// is set.
  const ShardJournalStream* resume_stream = nullptr;
  /// Opaque run descriptor stored in the journal section header and
  /// validated on resume (e.g. "quick" vs "full" — grids whose job bodies
  /// differ must not share checkpoints).
  std::string journal_tag;

  // --- fleet sharding -----------------------------------------------------
  /// Shard coordinates: with shard_count > 1 this process runs only job
  /// indices where index % shard_count == shard_index; every other index
  /// is left unsettled for its own shard. The supervisor merges per-shard
  /// journals back into one grid via resume_stream, which is what keeps
  /// the merged output byte-identical to a single-process run.
  unsigned shard_index = 0;
  unsigned shard_count = 1;
  /// Shards the fleet supervisor gave up on (crashed past the respawn
  /// budget): every still-unsettled index belonging to one of them is
  /// quarantined up front, so a degraded fleet run reports the lost job
  /// ranges through the normal quarantine() channel.
  std::vector<unsigned> quarantined_shards;
  /// Called after every successful completion with the running completed
  /// count — the fleet crash-injection hook (a worker kills itself after K
  /// completions). Runs on the completing worker thread.
  std::function<void(std::size_t)> completion_hook;

  // --- telemetry ----------------------------------------------------------
  /// Metrics registry (owned by the caller, typically shared across a
  /// bench's campaigns). The campaign publishes its counters under the
  /// prefix "campaign.<name>." — jobs.done/failed/retried (via Progress),
  /// jobs.completed/resumed/quarantined, faults.injected, deadline.expired,
  /// retry.backoffs, journal.records/replayed — plus the job.duration_s and
  /// pool.* timing distributions. nullptr = the campaign owns a private
  /// registry (counters still work; nothing is exported).
  MetricsRegistry* metrics = nullptr;
  /// Span tracer recording one Span per job attempt (owned by the caller).
  /// nullptr = no tracing.
  SpanTracer* tracer = nullptr;
};

/// Per-job view handed to the job function. Everything a job needs to be
/// deterministic independent of scheduling.
struct JobContext {
  std::size_t index = 0;          ///< this job's grid index
  std::size_t count = 0;          ///< total jobs in the grid
  std::uint64_t stream_seed = 0;  ///< hash_coords(campaign seed, index)
  /// 0-based attempt number. Informational only — deriving randomness from
  /// it would break the retry-determinism invariant.
  unsigned attempt = 0;
  /// Wall-clock budget for this attempt (0 = none).
  double time_budget_s = 0.0;

  /// Fresh generator on this job's private stream.
  Rng make_rng() const { return Rng(stream_seed); }

  /// Derive a sub-stream seed for a tagged purpose within the job (e.g.
  /// one stream per data pattern) without consuming generator state.
  std::uint64_t substream(std::uint64_t tag) const {
    return hash_coords(stream_seed, tag);
  }

  /// True once the watchdog has flagged this attempt as over-deadline.
  /// Long-running job bodies may poll this and throw JobTimeout to yield
  /// the worker early; the attempt is marked failed either way.
  bool expired() const {
    return deadline_flag &&
           deadline_flag->load(std::memory_order_relaxed);
  }

  const std::atomic<bool>* deadline_flag = nullptr;  ///< set by the executor
};

struct CampaignStats {
  std::size_t jobs = 0;
  unsigned threads = 1;        ///< resolved worker count actually used
  double wall_seconds = 0.0;   ///< grid wall-clock, excludes merge/emit
  std::size_t completed = 0;   ///< jobs that ran to success this run
  std::size_t resumed = 0;     ///< jobs replayed from the resume journal
  std::size_t retries = 0;     ///< extra attempts beyond each job's first
  std::size_t quarantined = 0; ///< jobs given up on (incl. carried over)
};

/// One quarantined job, reported instead of an abort in degrade mode.
struct JobFailure {
  std::size_t index = 0;
  unsigned attempts = 0;
  std::string error;  ///< what() of the last failed attempt
};

class Campaign {
 public:
  explicit Campaign(std::string name, CampaignConfig cfg = {});

  const std::string& name() const { return name_; }
  std::uint64_t seed() const { return cfg_.seed; }
  /// Worker count after resolving 0 → hardware concurrency.
  unsigned threads() const { return threads_; }
  /// Stats of the most recent map()/for_each() run.
  const CampaignStats& last_stats() const { return stats_; }
  /// Jobs quarantined by the most recent run, sorted by index.
  const std::vector<JobFailure>& quarantine() const { return quarantine_; }
  /// The registry this campaign's counters live in: the shared one from the
  /// config, or the private fallback.
  MetricsRegistry& metrics() { return *metrics_; }
  /// "campaign.<name>." — every metric this campaign records starts with it.
  const std::string& metric_prefix() const { return metric_prefix_; }

  /// Serializer pair for a job result type: encode() must capture every
  /// field that feeds the merged output, bit-exactly (journal.h's
  /// PayloadWriter/PayloadReader do that for doubles), and decode() must be
  /// its exact inverse — a resumed run re-emits whatever encode preserved.
  template <typename R>
  struct JobCodec {
    std::function<std::string(const R&)> encode;
    std::function<R(const std::string&)> decode;
  };

  /// Runs fn(ctx) for every job index in [0, n) and returns the results in
  /// index order. R must be default-constructible. With the default config
  /// a job exception aborts the run and rethrows on the calling thread;
  /// retry/deadline/degrade behaviour follows the config (a quarantined
  /// job's slot keeps its default-constructed value).
  template <typename R, typename Fn>
  std::vector<R> map(std::size_t n, Fn&& fn) {
    std::vector<R> out(n);
    GridHooks hooks;
    hooks.run = [&](const JobContext& ctx) {
      out[ctx.index] = fn(ctx);
      return std::string();
    };
    run_grid(n, hooks);
    return out;
  }

  /// map() plus checkpointing: every completed job's encoded result goes to
  /// cfg.journal, and with cfg.resume set, already-settled jobs are
  /// replayed through the codec instead of re-run — the returned vector is
  /// byte-identical to an uninterrupted run's.
  template <typename R, typename Fn>
  std::vector<R> map_journaled(std::size_t n, Fn&& fn, JobCodec<R> codec) {
    std::vector<R> out(n);
    GridHooks hooks;
    hooks.run = [&](const JobContext& ctx) {
      R r = fn(ctx);
      std::string payload = codec.encode(r);
      out[ctx.index] = std::move(r);
      return payload;
    };
    hooks.replay = [&](std::size_t index, const std::string& payload) {
      out[index] = codec.decode(payload);
    };
    run_grid(n, hooks);
    return out;
  }

  /// Streaming variant of map_journaled(): instead of materializing one R
  /// per job, every settled result is folded into the accumulator — memory
  /// stays flat no matter how many jobs the grid has, which is what lets a
  /// fleet-scale field study hold millions of jobs. The fold runs under an
  /// internal mutex, exactly once per job — after the journal record on a
  /// fresh completion (a retried attempt never folds), or on the replay
  /// path when resuming — in scheduling order, so `fold` must be
  /// commutative and associative for the result to stay identical across
  /// thread and shard widths (integer sums are; naive float accumulation
  /// is not). fold(acc, index, r) receives the *decoded* result even on a
  /// fresh completion, so it always sees exactly what a resumed run would.
  template <typename R, typename A, typename Fn, typename Fold>
  A fold_journaled(std::size_t n, Fn&& fn, JobCodec<R> codec, A acc,
                   Fold&& fold) {
    std::mutex mu;
    auto settle = [&](std::size_t index, const std::string& payload) {
      const R r = codec.decode(payload);
      std::lock_guard<std::mutex> lock(mu);
      fold(acc, index, r);
    };
    GridHooks hooks;
    hooks.run = [&](const JobContext& ctx) { return codec.encode(fn(ctx)); };
    hooks.settled = settle;
    hooks.replay = settle;
    run_grid(n, hooks);
    return acc;
  }

  /// Runs fn(ctx) for every job index in [0, n); results flow through side
  /// channels (a ResultSink, or writes keyed by ctx.index). Side-channel
  /// writes are re-executed on retry — prefer map() when retries are on.
  template <typename Fn>
  void for_each(std::size_t n, Fn&& fn) {
    GridHooks hooks;
    hooks.run = [&](const JobContext& ctx) {
      fn(ctx);
      return std::string();
    };
    run_grid(n, hooks);
  }

 private:
  struct GridHooks {
    /// Runs the job, returns the journal payload ("" when not journaling).
    std::function<std::string(const JobContext&)> run;
    /// Reinstates a completed job from its journal payload; null when the
    /// grid has no codec (then resuming completed jobs is an error).
    std::function<void(std::size_t, const std::string&)> replay;
    /// Optional: called exactly once per job when it settles successfully
    /// this run — after the journal record, before the completion counter —
    /// with the encoded payload. Retried attempts never reach it; resumed
    /// jobs go through `replay` instead. Runs on the completing worker.
    std::function<void(std::size_t, const std::string&)> settled;
  };

  void run_grid(std::size_t n, const GridHooks& hooks);

  std::string name_;
  CampaignConfig cfg_;
  unsigned threads_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;  ///< when none is shared
  MetricsRegistry* metrics_;
  std::string metric_prefix_;
  CampaignStats stats_;
  std::vector<JobFailure> quarantine_;
};

}  // namespace densemem::sim
