// Campaign — the deterministic parallel experiment driver.
//
// A campaign is a grid of independent jobs (modules × patterns × trials,
// one index per job). Each job gets a JobContext carrying its own RNG
// stream seed, derived as hash_coords(campaign seed, job index) — never a
// shared generator — so the result of job i is a pure function of
// (campaign config, i). That makes the merged result bit-for-bit identical
// whether the grid runs on 1 thread or 64, in whatever order the scheduler
// picks; tests/test_sim.cpp asserts exactly this.
//
// Usage (the pattern the heavy benches follow):
//
//   sim::CampaignConfig cc;
//   cc.threads = args.threads;           // 0 = hardware concurrency
//   sim::Campaign campaign("fig1", cc);
//   auto rows = campaign.map<PerModule>(db.size(), [&](const sim::JobContext& ctx) {
//     dram::Device dev(db.device_config(db.modules()[ctx.index], g));
//     ...                                // seed anything from ctx if needed
//     return PerModule{...};
//   });                                  // rows[i] is job i's result
//
// map() returns results in job-index order (the merge point); streaming
// collectors live in result_sink.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"

namespace densemem::sim {

struct CampaignConfig {
  unsigned threads = 0;     ///< worker count; 0 = hardware concurrency
  std::uint64_t seed = 1;   ///< master seed; every job stream derives from it
  std::size_t chunk = 1;    ///< job indices per work-queue grab
  bool progress = true;     ///< periodic "[sim:…]" line on stderr
  double progress_interval_s = 2.0;
};

/// Per-job view handed to the job function. Everything a job needs to be
/// deterministic independent of scheduling.
struct JobContext {
  std::size_t index = 0;          ///< this job's grid index
  std::size_t count = 0;          ///< total jobs in the grid
  std::uint64_t stream_seed = 0;  ///< hash_coords(campaign seed, index)

  /// Fresh generator on this job's private stream.
  Rng make_rng() const { return Rng(stream_seed); }

  /// Derive a sub-stream seed for a tagged purpose within the job (e.g.
  /// one stream per data pattern) without consuming generator state.
  std::uint64_t substream(std::uint64_t tag) const {
    return hash_coords(stream_seed, tag);
  }
};

struct CampaignStats {
  std::size_t jobs = 0;
  unsigned threads = 1;        ///< resolved worker count actually used
  double wall_seconds = 0.0;   ///< grid wall-clock, excludes merge/emit
};

class Campaign {
 public:
  explicit Campaign(std::string name, CampaignConfig cfg = {});

  const std::string& name() const { return name_; }
  std::uint64_t seed() const { return cfg_.seed; }
  /// Worker count after resolving 0 → hardware concurrency.
  unsigned threads() const { return threads_; }
  /// Stats of the most recent map()/for_each() run.
  const CampaignStats& last_stats() const { return stats_; }

  /// Runs fn(ctx) for every job index in [0, n) and returns the results in
  /// index order. R must be default-constructible. A job exception aborts
  /// the run and rethrows on the calling thread.
  template <typename R, typename Fn>
  std::vector<R> map(std::size_t n, Fn&& fn) {
    std::vector<R> out(n);
    run_grid(n, [&](const JobContext& ctx) { out[ctx.index] = fn(ctx); });
    return out;
  }

  /// Runs fn(ctx) for every job index in [0, n); results flow through side
  /// channels (a ResultSink, or writes keyed by ctx.index).
  template <typename Fn>
  void for_each(std::size_t n, Fn&& fn) {
    run_grid(n, [&](const JobContext& ctx) { fn(ctx); });
  }

 private:
  void run_grid(std::size_t n, const std::function<void(const JobContext&)>& job);

  std::string name_;
  CampaignConfig cfg_;
  unsigned threads_;
  CampaignStats stats_;
};

}  // namespace densemem::sim
