#include "sim/fleet.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace densemem::sim {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Signal handlers can only touch a flag; the supervisor polls it. One
// fleet runs at a time per process (bench_util spawns it before any
// campaign), so a single flag is enough.
volatile std::sig_atomic_t g_fleet_stop = 0;

void on_stop_signal(int) { g_fleet_stop = 1; }

/// Age of `path` in seconds per its mtime; a huge value when it does not
/// exist yet (the spawn-time clamp below keeps that from killing a worker
/// that has not written its first beat).
double file_age_s(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return 1e18;
  struct timespec now{};
  clock_gettime(CLOCK_REALTIME, &now);
  const double then = static_cast<double>(st.st_mtim.tv_sec) +
                      static_cast<double>(st.st_mtim.tv_nsec) * 1e-9;
  const double t = static_cast<double>(now.tv_sec) +
                   static_cast<double>(now.tv_nsec) * 1e-9;
  return std::max(0.0, t - then);
}

/// Last ~512 bytes of a worker's captured stderr: enough to surface the
/// fatal message in the supervisor's own error without replaying the file.
std::string err_tail(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  in.seekg(0, std::ios::end);
  const auto size = static_cast<long long>(in.tellg());
  const long long keep = std::min<long long>(size, 512);
  in.seekg(size - keep);
  std::string tail(static_cast<std::size_t>(keep), '\0');
  in.read(tail.data(), keep);
  // Trim to whole lines and strip trailing whitespace.
  const auto nl = tail.find('\n');
  if (nl != std::string::npos && keep == 512) tail.erase(0, nl + 1);
  while (!tail.empty() && (tail.back() == '\n' || tail.back() == '\r'))
    tail.pop_back();
  std::replace(tail.begin(), tail.end(), '\n', ' ');
  return tail;
}

/// Pulls a numeric field out of the "totals" object of each [manifest]
/// line in a worker's captured stderr, summed across the worker's
/// incarnations (a SIGKILLed incarnation prints no manifest; its work is
/// re-counted by the incarnation that resumes it — supervisor-side totals
/// are operational telemetry, not the deterministic record).
double sum_manifest_totals(const std::string& err_path,
                           const std::string& key) {
  std::ifstream in(err_path);
  if (!in) return 0.0;
  double sum = 0.0;
  const std::string prefix = "[manifest] {";
  const std::string needle = "\"" + key + "\":";
  for (std::string line; std::getline(in, line);) {
    if (line.rfind(prefix, 0) != 0) continue;
    const auto totals = line.find("\"totals\":{");
    if (totals == std::string::npos) continue;
    const auto at = line.find(needle, totals);
    if (at == std::string::npos) continue;
    sum += std::strtod(line.c_str() + at + needle.size(), nullptr);
  }
  return sum;
}

}  // namespace

struct FleetRunner::Worker {
  unsigned shard = 0;
  pid_t pid = -1;              ///< -1 = not running
  unsigned incarnations = 0;   ///< spawns so far (1 = never respawned)
  bool done = false;
  bool resumable = false;
  bool quarantined = false;
  Clock::time_point spawned_at;
  std::string journal, hb, out, err;
};

FleetRunner::FleetRunner(std::string name, FleetConfig cfg)
    : name_(std::move(name)), cfg_(std::move(cfg)) {}

void FleetRunner::spawn(Worker& w) {
  const bool first = w.incarnations == 0;
  const std::vector<std::string> argv =
      cfg_.make_worker_argv(w.shard, w.journal, first);
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& s : argv)
    cargv.push_back(const_cast<char*>(s.c_str()));
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("fleet: fork failed");
  if (pid == 0) {
    // Child. Capture files are O_APPEND so a respawn extends, never
    // truncates, the incarnation history.
    const int out =
        ::open(w.out.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    const int err =
        ::open(w.err.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (out >= 0) ::dup2(out, STDOUT_FILENO);
    if (err >= 0) ::dup2(err, STDERR_FILENO);
    ::signal(SIGINT, SIG_DFL);
    ::signal(SIGTERM, SIG_DFL);
    ::execvp(cargv[0], cargv.data());
    std::fprintf(stderr, "fleet worker: exec '%s' failed: %s\n", cargv[0],
                 std::strerror(errno));
    ::_exit(127);
  }
  w.pid = pid;
  ++w.incarnations;
  w.spawned_at = Clock::now();
  std::fprintf(stderr, "[fleet] %s shard %u/%u: spawned pid %d%s\n",
               name_.c_str(), w.shard, cfg_.shards, static_cast<int>(pid),
               first ? "" : " (respawn)");
}

void FleetRunner::fail_fleet(std::vector<Worker>& workers,
                             const std::string& why) {
  if (failed_) return;
  failed_ = true;
  error_ = why;
  for (Worker& w : workers)
    if (w.pid >= 0) ::kill(w.pid, SIGKILL);
}

void FleetRunner::handle_exit(Worker& w, int status) {
  const int pid = static_cast<int>(w.pid);
  w.pid = -1;
  if (failed_) return;  // already tearing down; exits are noise
  if (stopping_) {
    // The supervisor asked workers to stop; whatever way they went down,
    // their journals hold the settled prefix and a rerun continues it.
    w.resumable = true;
    return;
  }
  if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status);
    switch (code) {
      case 0:
        w.done = true;
        std::fprintf(stderr, "[fleet] %s shard %u/%u: completed\n",
                     name_.c_str(), w.shard, cfg_.shards);
        return;
      case 75:  // EX_TEMPFAIL: deliberate interruption, checkpointed
        w.resumable = true;
        if (cfg_.metrics) cfg_.metrics->add("fleet.shards.resumable");
        std::fprintf(stderr,
                     "[fleet] %s shard %u/%u: interrupted (exit 75), "
                     "resumable\n",
                     name_.c_str(), w.shard, cfg_.shards);
        return;
      case 64:   // usage
      case 70:   // software error
      case 74:   // I/O error
      case 126:  // exec permission
      case 127:  // exec not found
        // Deterministic failures: a respawn would fail identically.
        fail_fleet(*workers_, "shard " + std::to_string(w.shard) +
                                  " (pid " + std::to_string(pid) +
                                  ") exited with code " +
                                  std::to_string(code) + ": " +
                                  err_tail(w.err));
        return;
      default:
        break;  // unexpected exit code: treat as a crash
    }
  }
  // Crash: a signal (SIGKILL/SIGSEGV/the heartbeat reaper) or an
  // unrecognized exit code. Respawn against the shard's own journal until
  // the budget runs out, then quarantine the shard.
  const char* how = WIFSIGNALED(status) ? "killed by signal" : "exited";
  const int detail =
      WIFSIGNALED(status) ? WTERMSIG(status) : WEXITSTATUS(status);
  std::fprintf(stderr, "[fleet] %s shard %u/%u: pid %d %s %d\n",
               name_.c_str(), w.shard, cfg_.shards, pid, how, detail);
  if (w.incarnations <= cfg_.max_respawns) {
    if (cfg_.metrics) cfg_.metrics->add("fleet.shards.respawned");
    spawn(w);
    return;
  }
  w.quarantined = true;
  if (cfg_.metrics) cfg_.metrics->add("fleet.shards.quarantined");
  std::fprintf(stderr,
               "[fleet] %s shard %u/%u: respawn budget (%u) exhausted, "
               "quarantining the shard's job range\n",
               name_.c_str(), w.shard, cfg_.shards, cfg_.max_respawns);
  if (cfg_.fail_fast)
    fail_fleet(*workers_,
               "shard " + std::to_string(w.shard) +
                   " exhausted its respawn budget (rerun with "
                   "--on-fail=degrade to quarantine it instead): " +
                   err_tail(w.err));
}

FleetResult FleetRunner::run() {
  if (!cfg_.make_worker_argv)
    throw std::runtime_error("fleet: make_worker_argv not set");
  std::vector<Worker> workers(cfg_.shards);
  workers_ = &workers;
  for (unsigned s = 0; s < cfg_.shards; ++s) {
    Worker& w = workers[s];
    w.shard = s;
    w.journal = shard_path(cfg_.journal_base, s);
    w.hb = heartbeat_path(w.journal);
    w.out = w.journal + ".out";
    w.err = w.journal + ".err";
  }

  // Take over SIGINT/SIGTERM for the supervision window so ^C tears the
  // fleet down to a resumable state instead of orphaning workers.
  g_fleet_stop = 0;
  struct sigaction sa{}, old_int{}, old_term{};
  sa.sa_handler = on_stop_signal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, &old_int);
  ::sigaction(SIGTERM, &sa, &old_term);

  for (Worker& w : workers) spawn(w);

  double max_hb_age = 0.0;
  Clock::time_point stop_at{};
  const auto poll_us = std::chrono::microseconds(
      static_cast<long long>(std::max(0.001, cfg_.poll_interval_s) * 1e6));
  for (;;) {
    if (g_fleet_stop && !stopping_ && !failed_) {
      stopping_ = true;
      stop_at = Clock::now();
      error_ = "supervisor received a stop signal";
      std::fprintf(stderr,
                   "[fleet] %s: stop requested, terminating %u shards\n",
                   name_.c_str(), cfg_.shards);
      for (Worker& w : workers)
        if (w.pid >= 0) ::kill(w.pid, SIGTERM);
    }
    if (stopping_ && seconds_since(stop_at) > 5.0)
      for (Worker& w : workers)
        if (w.pid >= 0) ::kill(w.pid, SIGKILL);

    bool any_live = false;
    for (Worker& w : workers) {
      if (w.pid < 0) continue;
      int status = 0;
      const pid_t r = ::waitpid(w.pid, &status, WNOHANG);
      if (r == w.pid) {
        handle_exit(w, status);
      } else if (r < 0 && errno == ECHILD) {
        // Lost to an outer reaper — should not happen; take the crash
        // path with a synthesized SIGKILL status.
        handle_exit(w, SIGKILL);
      }
      if (w.pid >= 0) any_live = true;
    }
    if (!any_live) break;

    if (!stopping_ && !failed_ && cfg_.heartbeat_timeout_s > 0.0) {
      for (Worker& w : workers) {
        if (w.pid < 0) continue;
        // A heartbeat older than the worker itself belongs to a previous
        // incarnation: age is bounded by time-since-spawn.
        const double age =
            std::min(file_age_s(w.hb), seconds_since(w.spawned_at));
        max_hb_age = std::max(max_hb_age, age);
        if (age > cfg_.heartbeat_timeout_s) {
          std::fprintf(stderr,
                       "[fleet] %s shard %u/%u: heartbeat stale "
                       "(%.1fs > %.1fs), killing pid %d\n",
                       name_.c_str(), w.shard, cfg_.shards, age,
                       cfg_.heartbeat_timeout_s, static_cast<int>(w.pid));
          ::kill(w.pid, SIGKILL);  // reaped above as a crash next poll
        }
      }
    }
    std::this_thread::sleep_for(poll_us);
  }

  ::sigaction(SIGINT, &old_int, nullptr);
  ::sigaction(SIGTERM, &old_term, nullptr);
  workers_ = nullptr;

  FleetResult res;
  for (const Worker& w : workers)
    if (w.quarantined) res.quarantined_shards.push_back(w.shard);
  if (failed_) {
    res.outcome = FleetOutcome::kFailed;
    res.error = error_;
  } else if (stopping_ ||
             std::any_of(workers.begin(), workers.end(),
                         [](const Worker& w) { return w.resumable; })) {
    res.outcome = FleetOutcome::kResumable;
    res.error = stopping_ ? error_ : "a shard was interrupted (exit 75)";
  } else if (!res.quarantined_shards.empty()) {
    res.outcome = FleetOutcome::kPartial;
  }

  if (cfg_.metrics) {
    cfg_.metrics->set("fleet.heartbeat.max_age_s", max_hb_age);
    double retries = 0.0, faults = 0.0, wall = 0.0;
    for (const Worker& w : workers) {
      retries += sum_manifest_totals(w.err, "retries");
      faults += sum_manifest_totals(w.err, "faults_injected");
      wall += sum_manifest_totals(w.err, "wall_s");
    }
    cfg_.metrics->add("fleet.workers.retries",
                      static_cast<std::uint64_t>(retries));
    cfg_.metrics->add("fleet.workers.faults_injected",
                      static_cast<std::uint64_t>(faults));
    cfg_.metrics->set("fleet.workers.wall_s", wall);
    // Peak RSS across every reaped worker incarnation (ru_maxrss of the
    // largest child, KiB on Linux) — the fleet-level memory claim the
    // manifest self-records.
    struct rusage ru {};
    if (::getrusage(RUSAGE_CHILDREN, &ru) == 0) {
      cfg_.metrics->set("fleet.workers.max_rss_kib",
                        static_cast<double>(ru.ru_maxrss));
    }
  }
  return res;
}

// ----------------------------------------------------------- heartbeats

HeartbeatWriter::HeartbeatWriter(std::string path, double interval_s)
    : path_(std::move(path)), interval_s_(std::max(0.01, interval_s)) {
  beat();
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mu_);
    const auto period = std::chrono::duration<double>(interval_s_);
    while (!cv_.wait_for(lock, period, [this] { return stop_; })) beat();
  });
}

HeartbeatWriter::~HeartbeatWriter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::remove(path_.c_str());
}

void HeartbeatWriter::beat() const {
  // A fresh mtime is the whole signal; rewriting one byte provides it.
  if (std::FILE* f = std::fopen(path_.c_str(), "wb")) {
    std::fputc('.', f);
    std::fclose(f);
  }
}

}  // namespace densemem::sim
