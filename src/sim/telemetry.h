// Campaign telemetry: a thread-safe registry of named counters, gauges,
// and value distributions, built for write-heavy worker threads.
//
// Storage is sharded per worker (shard index = the ThreadPool worker id of
// the writing thread, 0 for the main/serial thread), so concurrent writers
// never contend on one map; reads merge every shard on demand. The merge is
// deterministic: shards combine in index order and the merged views are
// name-sorted maps, so two runs that record the same values produce the
// same snapshot — and the same JSON bytes.
//
// Determinism contract (docs/ARCHITECTURE.md, "Telemetry"):
//  * counters are uint64 sums and histogram bins are uint64 counts —
//    addition commutes, so any metric fed width-stable values (event
//    counts derived from (seed, index), post-merge simulation results) is
//    byte-identical at any thread count;
//  * gauges merge by max across shards (order-free);
//  * value stats (RunningStats) merge in shard order, but which shard got
//    which sample is scheduling-dependent — treat stats as timing-class
//    telemetry (means may differ in final bits across widths) and keep
//    simulation results in counters/histograms/gauges.
//
// The same retry caveat as result_sink.h applies to metrics recorded
// *inside* job bodies: a re-run attempt records again. The campaign's own
// counters are attempt-accurate by construction; benches record their
// simulation metrics post-merge from the main thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.h"

namespace densemem::sim {

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `delta` to the named counter (created at zero). Thread-safe;
  /// writes go to the calling thread's shard.
  void add(std::string_view name, std::uint64_t delta = 1);

  /// Sets the named gauge. Merged value across shards is the max, so a
  /// gauge set from exactly one thread (the common case) reads back
  /// exactly; racing setters merge order-free.
  void set(std::string_view name, double value);

  /// Feeds `value` into the named RunningStats (count/mean/min/max/...).
  /// Timing-class: see the determinism contract above.
  void observe(std::string_view name, double value);

  /// Feeds `value` into the named fixed-bin histogram over [lo, hi).
  /// Every caller must use the same (lo, hi, bins) for a given name — the
  /// shard merge checks and aborts on a geometry mismatch.
  void observe_hist(std::string_view name, double lo, double hi,
                    std::size_t bins, double value);

  /// Merged value of one counter (0 if never written).
  std::uint64_t counter(std::string_view name) const;

  /// Merged value of one gauge (0.0 if never written).
  double gauge(std::string_view name) const;

  /// Point-in-time merge of every shard, name-sorted.
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, RunningStats> stats;
    std::map<std::string, Histogram> histograms;
  };
  Snapshot snapshot() const;

  /// Writes the snapshot as a JSON object with "counters" / "gauges" /
  /// "histograms" (width-stable sections) and "timings" (the RunningStats
  /// summaries, allowed to vary run to run).
  void write_json(std::ostream& os) const;
  /// write_json to a file; returns false if the file cannot be opened.
  bool write_json_file(const std::string& path) const;

  /// Exact-bit line-based snapshot for cross-process merge: a fleet worker
  /// serializes its registry here, and the supervisor folds each shard's
  /// file back in with merge_raw_file. Doubles travel as IEEE-754 bit
  /// patterns (PayloadWriter), so a merged registry is bit-identical to
  /// one that recorded the same values locally.
  bool write_raw_file(const std::string& path) const;
  /// Folds a raw snapshot file into this registry (calling thread's shard)
  /// with `prefix` prepended to every metric name: counters add, gauges
  /// max-merge, stats/histograms merge exactly. Returns false on a missing
  /// or malformed file (callers skip — a killed worker incarnation never
  /// wrote one).
  bool merge_raw_file(const std::string& path, const std::string& prefix);

 private:
  struct Shard {
    std::mutex mu;
    std::map<std::string, std::uint64_t, std::less<>> counters;
    std::map<std::string, double, std::less<>> gauges;
    std::map<std::string, RunningStats, std::less<>> stats;
    std::map<std::string, Histogram, std::less<>> histograms;
  };

  /// The calling thread's shard (grown on demand; workers land on their
  /// ThreadPool worker id, everything else on shard 0).
  Shard& my_shard();

  mutable std::mutex shards_mu_;  ///< guards the shard vector, not shard data
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Minimal JSON string escaping (quotes, backslash, control chars) for
/// metric names and span fields — telemetry output must parse even when a
/// series label carries commas or quotes.
std::string json_escape(std::string_view s);

/// Formats a double for JSON: shortest round-trippable-ish decimal, never
/// inf/nan (clamped to 0 with a trailing comment-free fallback, since JSON
/// has no non-finite literals).
std::string json_double(double v);

}  // namespace densemem::sim
