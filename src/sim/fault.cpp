#include "sim/fault.h"

#include <chrono>
#include <thread>

#include "sim/campaign.h"
#include "sim/retry.h"

namespace densemem::sim {

void FaultInjector::inject(const JobContext& ctx) const {
  if (!should_fault(ctx.index, ctx.attempt)) return;
  const std::string where = "job " + std::to_string(ctx.index) + " attempt " +
                            std::to_string(ctx.attempt);
  if (plan(ctx.index) == FaultKind::kFail)
    throw InjectedFault("injected failure: " + where);
  // Injected hang: nap in short slices so a watchdog-tripped deadline is
  // noticed promptly. The slices make wall time approximate, but the only
  // observable outcomes — JobTimeout or a normal return — stay the same.
  const auto t0 = std::chrono::steady_clock::now();
  const auto nap = std::chrono::duration<double>(cfg_.hang_seconds);
  while (std::chrono::steady_clock::now() - t0 < nap) {
    if (ctx.expired())
      throw JobTimeout("injected hang exceeded deadline: " + where);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace densemem::sim
