// Thread-safe result collectors for campaign jobs.
//
// Jobs run in scheduler order, but results must come out in job-index
// order or the merged output would depend on thread count. Two collectors
// cover the campaign benches:
//
//  * TableSink — rows tagged with the producing job's index; merged() sorts
//    by index (stable, so a job's own rows keep their emission order) and
//    yields an ordinary common/table Table, which carries the existing
//    ASCII rendering plus CSV and JSON mirrors.
//  * CounterSink — named uint64 tallies. Addition is associative and
//    commutative, so any accumulation order gives the same totals; the
//    name→value map is emitted in sorted-name order.
//
// Both are safe to call from concurrent jobs; neither allocates per-add
// beyond the stored record.
//
// Caveat under fault tolerance (campaign.h): a retried attempt re-runs the
// whole job body, so sink adds made before the failure are NOT rolled back
// and would duplicate. Campaigns that enable retries (or checkpointing,
// which replays results from the journal rather than sink rows) should
// return results through map()/map_journaled() — slot assignment is
// idempotent — and build tables from the merged vector instead of adding
// rows mid-job. The campaign benches follow that pattern.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/table.h"

namespace densemem::sim {

class TableSink {
 public:
  explicit TableSink(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Formatting applied to the merged Table.
  void set_precision(int digits) { precision_ = digits; }
  void set_scientific(bool on) { scientific_ = on; }

  /// Adds one row produced by job `job_index`. Thread-safe. A job may add
  /// any number of rows; their relative order is preserved in the merge.
  void add(std::size_t job_index, std::vector<Table::Cell> row);

  std::size_t num_rows() const;

  /// Merged table: rows sorted by job index (stable). Safe to call once
  /// the campaign run has returned.
  Table merged() const;

 private:
  struct Record {
    std::size_t job_index;
    std::vector<Table::Cell> cells;
  };
  std::vector<std::string> headers_;
  int precision_ = 4;
  bool scientific_ = false;
  mutable std::mutex mu_;
  std::vector<Record> records_;
};

class CounterSink {
 public:
  /// Adds `delta` to the named counter (creating it at zero). Thread-safe.
  void add(const std::string& name, std::uint64_t delta);

  std::uint64_t value(const std::string& name) const;

  /// Two-column ("counter", "count") table in sorted-name order.
  Table merged() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> counts_;
};

}  // namespace densemem::sim
