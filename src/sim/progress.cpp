#include "sim/progress.h"

#include <cstdio>

namespace densemem::sim {

Progress::Progress(std::string label, std::size_t total, bool enabled,
                   double interval_s, MetricsRegistry* registry,
                   std::string prefix)
    : label_(std::move(label)),
      total_(total),
      enabled_(enabled),
      interval_(static_cast<long>(interval_s * 1000.0)),
      start_(std::chrono::steady_clock::now()),
      owned_registry_(registry ? nullptr : std::make_unique<MetricsRegistry>()),
      registry_(registry ? registry : owned_registry_.get()),
      done_name_(prefix + "jobs.done"),
      failed_name_(prefix + "jobs.failed"),
      retried_name_(prefix + "jobs.retried") {
  if (enabled_) monitor_ = std::thread([this] { monitor_loop(); });
}

Progress::~Progress() { finish(); }

double Progress::elapsed_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

std::string Progress::line(bool final_line) const {
  const std::size_t d = done();
  const std::size_t f = failed();
  const std::size_t r = retried();
  const double el = elapsed_s();
  const double rate = el > 0 ? static_cast<double>(d) / el : 0.0;
  std::string health;
  if (f || r) {
    health = " (";
    if (f) health += std::to_string(f) + " failed";
    if (f && r) health += ", ";
    if (r) health += std::to_string(r) + " retried";
    health += ")";
  }
  char buf[256];
  std::snprintf(buf, sizeof buf, "[sim:%s] %zu/%zu jobs%s | %.1f jobs/s | %.1fs%s",
                label_.c_str(), d, total_, health.c_str(), rate, el,
                final_line ? " total" : " elapsed");
  return buf;
}

void Progress::print_line(bool final_line) const {
  // stderr, one self-contained line: log-friendly and invisible to stdout
  // diffing. fprintf keeps the line atomic (single write) unlike iostreams.
  std::fprintf(stderr, "%s\n", line(final_line).c_str());
}

void Progress::monitor_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, interval_, [this] { return stopping_; })) return;
    print_line(false);
  }
}

double Progress::finish() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (finished_) return elapsed_s();
    finished_ = true;
    stopping_ = true;
  }
  cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
  const double el = elapsed_s();
  if (enabled_) print_line(true);
  return el;
}

}  // namespace densemem::sim
