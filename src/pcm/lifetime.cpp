#include "pcm/lifetime.h"

namespace densemem::pcm {

const char* pcm_workload_name(PcmWorkload w) {
  switch (w) {
    case PcmWorkload::kUniform: return "uniform";
    case PcmWorkload::kSequential: return "sequential";
    case PcmWorkload::kHotLine: return "hot-line attack";
  }
  return "?";
}

PcmLifetimeResult run_pcm_lifetime(const PcmLifetimeConfig& cfg) {
  PcmDevice device(cfg.geometry, cfg.params, cfg.seed);
  WearLeveledPcm pcm(device, cfg.logical_lines, cfg.wear);
  Rng rng(hash_coords(cfg.seed, 0x50434d4c /* "PCML" */));

  const double ideal = static_cast<double>(cfg.logical_lines) *
                       cfg.params.endurance_median;
  const std::uint64_t cap =
      cfg.max_writes ? cfg.max_writes
                     : static_cast<std::uint64_t>(4.0 * ideal);

  std::vector<std::uint8_t> levels(cfg.geometry.cells_per_line);
  std::uint32_t seq = 0;
  PcmLifetimeResult res;
  for (std::uint64_t w = 0; w < cap; ++w) {
    std::uint32_t la = 0;
    switch (cfg.workload) {
      case PcmWorkload::kUniform:
        la = static_cast<std::uint32_t>(
            rng.uniform_int(std::uint64_t{cfg.logical_lines}));
        break;
      case PcmWorkload::kSequential:
        la = seq;
        seq = (seq + 1) % cfg.logical_lines;
        break;
      case PcmWorkload::kHotLine:
        la = 0;
        break;
    }
    for (auto& l : levels)
      l = static_cast<std::uint8_t>(rng.uniform_int(std::uint64_t{4}));
    if (!pcm.write(la, levels, static_cast<double>(w) * 1e-7)) {
      res.demand_writes = w;
      break;
    }
  }
  if (res.demand_writes == 0) {
    res.demand_writes = cap;
    res.survived_cap = true;
  }
  res.normalized_lifetime = static_cast<double>(res.demand_writes) / ideal;
  res.wear_imbalance = pcm.wear_imbalance();
  res.gap_moves = pcm.gap_moves();
  return res;
}

}  // namespace densemem::pcm
