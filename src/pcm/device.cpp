#include "pcm/device.h"

#include <algorithm>
#include <cmath>

namespace densemem::pcm {

namespace {
constexpr std::uint64_t kTagEndurance = 0x50454e44;  // "PEND"
constexpr std::uint64_t kTagDrift = 0x50445249;      // "PDRI"

double hashed_normal(std::uint64_t seed, std::uint64_t tag, std::uint64_t a,
                     std::uint64_t b) {
  const std::uint64_t h1 = splitmix64(hash_coords(seed, tag, a, b));
  const std::uint64_t h2 = splitmix64(h1);
  double u1 = static_cast<double>(h1 >> 11) * 0x1.0p-53;
  const double u2 = static_cast<double>(h2 >> 11) * 0x1.0p-53;
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}
}  // namespace

PcmDevice::PcmDevice(PcmGeometry geometry, PcmParams params,
                     std::uint64_t seed)
    : geometry_(geometry),
      params_(params),
      seed_(seed),
      rng_(hash_coords(seed, 0x50434d44 /* "PCMD" */)),
      wear_(geometry.lines, 0),
      log_r_(static_cast<std::size_t>(geometry.lines) * geometry.cells_per_line,
             static_cast<float>(params.level_log_r[0])),
      level_(static_cast<std::size_t>(geometry.lines) * geometry.cells_per_line,
             0),
      write_time_(geometry.lines, 0.0) {
  geometry_.validate();
}

std::uint64_t PcmDevice::endurance_of(std::uint32_t physical_line) const {
  DM_DCHECK(physical_line < geometry_.lines);
  const double n = hashed_normal(seed_, kTagEndurance, physical_line, 0);
  return static_cast<std::uint64_t>(
      params_.endurance_median * std::exp(params_.endurance_sigma * n));
}

double PcmDevice::drift_nu(std::uint32_t line, std::uint32_t cell) const {
  const double n = hashed_normal(seed_, kTagDrift, line, cell);
  return std::max(0.0, params_.drift_nu_mean + params_.drift_nu_sigma * n);
}

bool PcmDevice::write_line(std::uint32_t physical_line,
                           const std::vector<std::uint8_t>& levels,
                           double now) {
  DM_CHECK_MSG(physical_line < geometry_.lines, "line out of range");
  DM_CHECK_MSG(levels.size() == geometry_.cells_per_line,
               "line size mismatch");
  ++stats_.writes;
  const bool was_failed = line_failed(physical_line);
  ++wear_[physical_line];
  if (!was_failed && line_failed(physical_line)) ++stats_.failed_lines;
  if (line_failed(physical_line)) {
    // Stuck-at: the cells no longer respond to programming.
    return false;
  }
  write_time_[physical_line] = now;
  for (std::uint32_t c = 0; c < geometry_.cells_per_line; ++c) {
    DM_DCHECK(levels[c] < 4);
    const std::size_t ci = cell_index(physical_line, c);
    level_[ci] = levels[c];
    log_r_[ci] = static_cast<float>(
        rng_.normal(params_.level_log_r[levels[c]], params_.program_sigma));
  }
  return true;
}

double PcmDevice::cell_log_r(std::uint32_t physical_line, std::uint32_t cell,
                             double now) const {
  const std::size_t ci = cell_index(physical_line, cell);
  const double dt = std::max(0.0, now - write_time_[physical_line]);
  // The fully-crystalline (lowest) level barely drifts; amorphous levels
  // drift upward as nu*log10(t/t0).
  if (level_[ci] == 0 || dt <= 0.0) return log_r_[ci];
  return log_r_[ci] + drift_nu(physical_line, cell) *
                          std::log10(std::max(1.0, dt / params_.drift_t0_s));
}

std::vector<std::uint8_t> PcmDevice::read_line(std::uint32_t physical_line,
                                               double now) const {
  DM_CHECK_MSG(physical_line < geometry_.lines, "line out of range");
  ++stats_.reads;
  std::vector<std::uint8_t> out(geometry_.cells_per_line);
  for (std::uint32_t c = 0; c < geometry_.cells_per_line; ++c) {
    const double r = cell_log_r(physical_line, c, now);
    std::uint8_t lvl = 0;
    for (int th = 0; th < 3; ++th)
      if (r > params_.read_threshold_log_r[th])
        lvl = static_cast<std::uint8_t>(th + 1);
    if (line_failed(physical_line)) {
      // Stuck cells: deterministic corruption — half the cells read as
      // their crystalline stuck value.
      if (splitmix64(hash_coords(seed_, physical_line, c)) & 1) lvl = 0;
    }
    out[c] = lvl;
  }
  return out;
}

std::uint64_t PcmDevice::min_endurance() const {
  std::uint64_t m = ~std::uint64_t{0};
  for (std::uint32_t l = 0; l < geometry_.lines; ++l)
    m = std::min(m, endurance_of(l));
  return m;
}

}  // namespace densemem::pcm
