// PCM lifetime simulation under benign and adversarial write workloads —
// the §III emerging-memory counterpart of the SSD lifetime harness.
#pragma once

#include <cstdint>

#include "pcm/wear_level.h"

namespace densemem::pcm {

enum class PcmWorkload {
  kUniform,     ///< uniformly random line writes (benign)
  kSequential,  ///< streaming writes (benign, spatially correlated)
  kHotLine,     ///< malicious: every write targets one logical line
};

const char* pcm_workload_name(PcmWorkload w);

struct PcmLifetimeConfig {
  PcmGeometry geometry{4097, 4};  ///< small cells: wear is the object here
  PcmParams params;
  WearConfig wear;
  PcmWorkload workload = PcmWorkload::kUniform;
  std::uint32_t logical_lines = 4096;
  std::uint64_t max_writes = 0;  ///< 0 = 4x the ideal lifetime
  std::uint64_t seed = 1;
};

struct PcmLifetimeResult {
  std::uint64_t demand_writes = 0;  ///< until the first failed write
  /// demand_writes / (logical_lines x median endurance): 1.0 would be the
  /// ideal device that spreads every write perfectly with no overhead.
  double normalized_lifetime = 0.0;
  double wear_imbalance = 0.0;
  std::uint64_t gap_moves = 0;
  bool survived_cap = false;  ///< hit max_writes without failing
};

PcmLifetimeResult run_pcm_lifetime(const PcmLifetimeConfig& cfg);

}  // namespace densemem::pcm
