#include "pcm/wear_level.h"

#include <bit>

namespace densemem::pcm {

const char* wear_policy_name(WearPolicy p) {
  switch (p) {
    case WearPolicy::kNone: return "none";
    case WearPolicy::kStartGap: return "start-gap";
    case WearPolicy::kRandomizedStartGap: return "randomized start-gap";
  }
  return "?";
}

FeistelPermutation::FeistelPermutation(std::uint32_t n, std::uint64_t key)
    : n_(n), key_(key) {
  DM_CHECK_MSG(n >= 2, "permutation domain too small");
  int bits = std::bit_width(n - 1);
  if (bits < 2) bits = 2;
  if (bits % 2) ++bits;  // even split for the Feistel halves
  half_bits_ = bits / 2;
  half_mask_ = (1u << half_bits_) - 1;
}

std::uint32_t FeistelPermutation::round_fn(std::uint32_t half,
                                           int round) const {
  return static_cast<std::uint32_t>(
             splitmix64(hash_coords(key_, static_cast<std::uint64_t>(round),
                                    half))) &
         half_mask_;
}

std::uint32_t FeistelPermutation::permute_once(std::uint32_t x,
                                               bool invert) const {
  std::uint32_t left = (x >> half_bits_) & half_mask_;
  std::uint32_t right = x & half_mask_;
  if (!invert) {
    for (int r = 0; r < 4; ++r) {
      const std::uint32_t next_left = right;
      right = left ^ round_fn(right, r);
      left = next_left;
    }
  } else {
    for (int r = 3; r >= 0; --r) {
      const std::uint32_t prev_right = left;
      left = right ^ round_fn(left, r);
      right = prev_right;
    }
  }
  return (left << half_bits_) | right;
}

std::uint32_t FeistelPermutation::forward(std::uint32_t x) const {
  DM_DCHECK(x < n_);
  // Cycle walking: the Feistel domain is the next power of four; iterate
  // until the image lands back inside [0, n).
  do {
    x = permute_once(x, false);
  } while (x >= n_);
  return x;
}

std::uint32_t FeistelPermutation::inverse(std::uint32_t y) const {
  DM_DCHECK(y < n_);
  do {
    y = permute_once(y, true);
  } while (y >= n_);
  return y;
}

WearLeveledPcm::WearLeveledPcm(PcmDevice& device, std::uint32_t logical_lines,
                               WearConfig cfg)
    : device_(device),
      n_(logical_lines),
      cfg_(cfg),
      scramble_(logical_lines, hash_coords(cfg.seed, 0x53435241 /* "SCRA" */)),
      gap_(logical_lines) {
  DM_CHECK_MSG(cfg_.gap_write_interval >= 1, "gap interval must be >= 1");
  if (cfg_.policy == WearPolicy::kNone) {
    DM_CHECK_MSG(device.geometry().lines >= n_,
                 "device smaller than logical space");
  } else {
    DM_CHECK_MSG(device.geometry().lines >= n_ + 1,
                 "start-gap needs one spare physical line");
  }
}

std::uint32_t WearLeveledPcm::physical_of(std::uint32_t logical) const {
  DM_DCHECK(logical < n_);
  if (cfg_.policy == WearPolicy::kNone) return logical;
  const std::uint32_t la = cfg_.policy == WearPolicy::kRandomizedStartGap
                               ? scramble_.forward(logical)
                               : logical;
  const std::uint32_t m = n_ + 1;
  const std::uint32_t offset = (la + n_ - base_) % n_;
  return (gap_ + 1 + offset) % m;
}

void WearLeveledPcm::move_gap(double now) {
  ++gap_moves_;
  // Copy the line in the slot before the gap into the gap (one extra write
  // of wear), then the gap takes that slot. Decrementing gap mod M together
  // with base mod N preserves the layout invariant everywhere on the ring.
  const std::uint32_t m = n_ + 1;
  const std::uint32_t src = (gap_ + m - 1) % m;
  const auto data = device_.read_line(src, now);
  device_.write_line(gap_, data, now);
  gap_ = src;
  base_ = (base_ + n_ - 1) % n_;
}

bool WearLeveledPcm::write(std::uint32_t logical,
                           const std::vector<std::uint8_t>& levels,
                           double now) {
  const std::uint32_t pa = physical_of(logical);
  const bool ok = device_.write_line(pa, levels, now);
  if (cfg_.policy != WearPolicy::kNone &&
      ++writes_since_move_ >= cfg_.gap_write_interval) {
    writes_since_move_ = 0;
    move_gap(now);
  }
  return ok && !device_.line_failed(pa);
}

std::vector<std::uint8_t> WearLeveledPcm::read(std::uint32_t logical,
                                               double now) const {
  return device_.read_line(physical_of(logical), now);
}

double WearLeveledPcm::wear_imbalance() const {
  std::uint64_t max_wear = 0, total = 0;
  const std::uint32_t lines = device_.geometry().lines;
  for (std::uint32_t l = 0; l < lines; ++l) {
    max_wear = std::max(max_wear, device_.write_count(l));
    total += device_.write_count(l);
  }
  if (total == 0) return 0.0;
  const double mean = static_cast<double>(total) / lines;
  return static_cast<double>(max_wear) / mean;
}

}  // namespace densemem::pcm
