// Phase-Change Memory cell parameters (§III: "Emerging memory technologies
// [such as] Phase-Change Memory ... are likely to exhibit similar and
// perhaps even more exacerbated reliability issues").
//
// The two PCM failure mechanisms the paper's citations revolve around:
//  * finite write endurance (cells fail stuck-at after ~10^7..10^9 writes,
//    with wide lognormal variation) — the basis of wear leveling [82, 106]
//    and of endurance *attacks* (a malicious workload hammers one line),
//  * resistance drift (programmed resistance rises ~ t^nu over time),
//    which erodes multi-level-cell read margins [60, 100].
#pragma once

#include <cstdint>

namespace densemem::pcm {

struct PcmParams {
  /// Median cell write endurance (writes to stuck-at failure).
  double endurance_median = 1e7;
  /// Lognormal sigma of per-line endurance (process variation).
  double endurance_sigma = 0.25;
  /// Resistance-drift exponent nu: R(t) = R0 * (t/t0)^nu for RESET cells.
  double drift_nu_mean = 0.05;
  double drift_nu_sigma = 0.015;
  double drift_t0_s = 1.0;
  /// MLC resistance levels (log10 ohms) and the read thresholds between
  /// them; drift pushes levels upward into the next band.
  double level_log_r[4] = {3.0, 4.0, 5.0, 6.0};
  double read_threshold_log_r[3] = {3.5, 4.5, 5.5};
  /// Programming noise on log10 resistance.
  double program_sigma = 0.08;
};

}  // namespace densemem::pcm
