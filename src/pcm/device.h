// PCM device model: line-granular write endurance + cell-granular
// resistance drift.
//
// Wear is tracked per 64-byte line (the write unit); each physical line has
// a deterministic seeded endurance draw, and the line fails stuck-at when
// its write count crosses it. Drift is evaluated functionally at read time
// (like flash retention), so idle years cost nothing to simulate.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "pcm/params.h"

namespace densemem::pcm {

struct PcmGeometry {
  std::uint32_t lines = 16384;   ///< 64-byte write lines
  std::uint32_t cells_per_line = 256;  ///< 2-bit MLC cells (64 B data)

  void validate() const {
    DM_CHECK_MSG(lines >= 2 && cells_per_line >= 4, "degenerate PCM geometry");
  }
};

struct PcmStats {
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t failed_lines = 0;
};

class PcmDevice {
 public:
  PcmDevice(PcmGeometry geometry, PcmParams params, std::uint64_t seed);

  const PcmGeometry& geometry() const { return geometry_; }
  const PcmParams& params() const { return params_; }
  const PcmStats& stats() const { return stats_; }

  /// Per-line endurance (deterministic draw; the wear-leveling literature's
  /// "weakest line" is simply the minimum of these).
  std::uint64_t endurance_of(std::uint32_t physical_line) const;
  std::uint64_t write_count(std::uint32_t physical_line) const {
    return wear_[physical_line];
  }
  bool line_failed(std::uint32_t physical_line) const {
    return wear_[physical_line] >= endurance_of(physical_line);
  }

  /// Write a 2-bit-per-cell line. Returns false if the line is (or just
  /// became) stuck — the data cannot be trusted afterwards.
  bool write_line(std::uint32_t physical_line,
                  const std::vector<std::uint8_t>& levels, double now);

  /// Read the line's MLC levels at time `now`, with drift applied. A failed
  /// line returns its last data with stuck cells (deterministic corruption).
  std::vector<std::uint8_t> read_line(std::uint32_t physical_line,
                                      double now) const;

  /// Analog read-out (log10 resistance) of one cell — diagnostic.
  double cell_log_r(std::uint32_t physical_line, std::uint32_t cell,
                    double now) const;

  /// The weakest line's endurance: the lifetime bound of a perfectly
  /// levelled device.
  std::uint64_t min_endurance() const;

 private:
  std::size_t cell_index(std::uint32_t line, std::uint32_t cell) const {
    return static_cast<std::size_t>(line) * geometry_.cells_per_line + cell;
  }
  double drift_nu(std::uint32_t line, std::uint32_t cell) const;

  PcmGeometry geometry_;
  PcmParams params_;
  std::uint64_t seed_;
  Rng rng_;
  mutable PcmStats stats_;  // reads are counted (diagnostics)
  std::vector<std::uint64_t> wear_;       ///< writes per physical line
  std::vector<float> log_r_;              ///< programmed log10 resistance
  std::vector<std::uint8_t> level_;       ///< intended level per cell
  std::vector<double> write_time_;        ///< last write time per line
};

}  // namespace densemem::pcm
