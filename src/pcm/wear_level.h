// Start-Gap wear leveling (Qureshi et al., MICRO 2009 [82]: "Enhancing
// lifetime and security of PCM via start-gap wear leveling").
//
// N logical lines map onto M = N+1 physical slots arranged as a ring. A
// gap (empty) slot rotates through the ring: every `gap_write_interval`
// demand writes, the line in the slot before the gap is copied into the
// gap and the gap moves back one slot. The layout invariant is algebraic —
// no table: starting from the slot after the gap, the logical lines appear
// in consecutive (mod N) order beginning at a base register, so
//   slot(LA) = (gap + 1 + (LA - base mod N)) mod M,
// and each gap move decrements both gap (mod M) and base (mod N), which
// keeps the invariant with no wrap-around special case.
//
// Security angle (the reason the paper's §III cites this line of work): an
// attacker who repeatedly writes ONE address kills an unlevelled device in
// `endurance` writes, but under start-gap the target keeps moving, so the
// damage spreads — and the randomized variant additionally hides *which*
// physical line is being worn from an attacker who knows the algorithm.
#pragma once

#include <cstdint>
#include <vector>

#include "pcm/device.h"

namespace densemem::pcm {

enum class WearPolicy {
  kNone,                ///< identity mapping, no rotation
  kStartGap,            ///< plain start-gap
  kRandomizedStartGap,  ///< static random (Feistel) scramble + start-gap
};

const char* wear_policy_name(WearPolicy p);

struct WearConfig {
  WearPolicy policy = WearPolicy::kStartGap;
  /// Demand writes between gap movements (psi; [82] uses 100).
  std::uint32_t gap_write_interval = 100;
  std::uint64_t seed = 1;
};

/// 4-round Feistel permutation over [0, n) via cycle walking: a static,
/// key-dependent, invertible address scramble.
class FeistelPermutation {
 public:
  FeistelPermutation(std::uint32_t n, std::uint64_t key);
  std::uint32_t forward(std::uint32_t x) const;
  std::uint32_t inverse(std::uint32_t y) const;
  std::uint32_t size() const { return n_; }

 private:
  std::uint32_t permute_once(std::uint32_t x, bool invert) const;
  std::uint32_t round_fn(std::uint32_t half, int round) const;

  std::uint32_t n_;
  int half_bits_;
  std::uint32_t half_mask_;
  std::uint64_t key_;
};

class WearLeveledPcm {
 public:
  /// The device must have (logical_lines + 1) physical lines for the
  /// start-gap policies; for kNone it needs exactly logical_lines (extra
  /// lines are simply unused).
  WearLeveledPcm(PcmDevice& device, std::uint32_t logical_lines,
                 WearConfig cfg);

  std::uint32_t logical_lines() const { return n_; }
  /// Base register: the logical line stored in the slot after the gap.
  std::uint32_t base() const { return base_; }
  std::uint32_t gap() const { return gap_; }
  std::uint64_t gap_moves() const { return gap_moves_; }

  /// Physical line currently backing a logical line.
  std::uint32_t physical_of(std::uint32_t logical) const;

  /// Demand write. Returns false once any involved physical line has
  /// failed (device worn out at this address).
  bool write(std::uint32_t logical, const std::vector<std::uint8_t>& levels,
             double now);
  std::vector<std::uint8_t> read(std::uint32_t logical, double now) const;

  /// Wear of the most-worn physical line divided by the mean wear: 1.0 is
  /// perfect levelling; an unlevelled hot line drives it to ~N.
  double wear_imbalance() const;

 private:
  void move_gap(double now);

  PcmDevice& device_;
  std::uint32_t n_;
  WearConfig cfg_;
  FeistelPermutation scramble_;
  std::uint32_t base_ = 0;
  std::uint32_t gap_;  ///< physical slot of the gap
  std::uint32_t writes_since_move_ = 0;
  std::uint64_t gap_moves_ = 0;
};

}  // namespace densemem::pcm
