// DDR timing parameter sets.
//
// Only the parameters that govern the experiments are modelled: the
// activate–precharge cycle (which bounds the achievable hammer rate), the
// refresh cadence (tREFI / tREFW, which bound how many activations fit in a
// refresh window), and the access latencies used for performance accounting.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"

namespace densemem::dram {

struct Timing {
  std::string name;
  Time tCK;    ///< clock period
  Time tRCD;   ///< activate → column command
  Time tCL;    ///< read latency
  Time tRP;    ///< precharge period
  Time tRAS;   ///< activate → precharge minimum
  Time tRC;    ///< activate → activate (same bank)
  Time tWR;    ///< write recovery
  Time tRFC;   ///< refresh command period
  Time tREFI;  ///< average refresh interval (per REF command)
  Time tREFW;  ///< refresh window: every row refreshed once per tREFW
  Time tFAW;   ///< four-activate window (rank level)
  Time tRRD;   ///< activate → activate (different banks)

  /// Maximum single-row activation count achievable within one refresh
  /// window, ignoring refresh downtime (upper bound used by analytic models).
  std::int64_t max_activations_per_window() const {
    return tREFW / tRC;
  }

  /// REF commands issued per refresh window.
  std::int64_t refs_per_window() const { return tREFW / tREFI; }

  static Timing ddr3_1600();
  static Timing ddr4_2400();
  /// Copy with refresh rate multiplied by `factor` (tREFI and tREFW divided):
  /// the paper's "increase the refresh rate" mitigation (§II-C).
  Timing with_refresh_multiplier(double factor) const;
};

}  // namespace densemem::dram
