#include "dram/addr_map.h"

#include <bit>

#include "common/check.h"

namespace densemem::dram {

const char* interleave_name(Interleave i) {
  switch (i) {
    case Interleave::kRowBankCol: return "row:bank:col";
    case Interleave::kBankColInterleave: return "row:col:bank";
  }
  return "?";
}

int AddressMap::log2_exact(std::uint64_t v, const char* what) {
  DM_CHECK_MSG(v != 0 && (v & (v - 1)) == 0,
               std::string("address map requires power-of-two ") + what);
  return std::countr_zero(v);
}

AddressMap::AddressMap(Geometry geometry, Interleave policy,
                       bool xor_bank_hash)
    : geometry_(geometry), policy_(policy), xor_bank_hash_(xor_bank_hash) {
  geometry_.validate();
  col_bits_ = log2_exact(geometry_.row_words(), "words per row") + 3;
  bank_bits_ = log2_exact(geometry_.banks, "banks");
  rank_bits_ = log2_exact(geometry_.ranks, "ranks");
  chan_bits_ = log2_exact(geometry_.channels, "channels");
  row_bits_ = log2_exact(geometry_.rows, "rows");
}

Address AddressMap::decode(std::uint64_t phys_addr) const {
  DM_CHECK_MSG(phys_addr < capacity_bytes(), "address beyond capacity");
  std::uint64_t x = phys_addr;
  auto take = [&x](int bits) {
    const std::uint64_t v = x & ((std::uint64_t{1} << bits) - 1);
    x >>= bits;
    return v;
  };
  Address a;
  std::uint64_t col_bytes = 0;
  switch (policy_) {
    case Interleave::kRowBankCol:
      col_bytes = take(col_bits_);
      a.channel = static_cast<std::uint32_t>(take(chan_bits_));
      a.bank = static_cast<std::uint32_t>(take(bank_bits_));
      a.rank = static_cast<std::uint32_t>(take(rank_bits_));
      a.row = static_cast<std::uint32_t>(take(row_bits_));
      break;
    case Interleave::kBankColInterleave: {
      // Cache-line (64 B) granular striping: low 6 bits stay in-column,
      // then channel/bank/rank, then the rest of the column, then row.
      const std::uint64_t line = take(6);
      a.channel = static_cast<std::uint32_t>(take(chan_bits_));
      a.bank = static_cast<std::uint32_t>(take(bank_bits_));
      a.rank = static_cast<std::uint32_t>(take(rank_bits_));
      col_bytes = (take(col_bits_ - 6) << 6) | line;
      a.row = static_cast<std::uint32_t>(take(row_bits_));
      break;
    }
  }
  a.col_word = static_cast<std::uint32_t>(col_bytes >> 3);
  if (xor_bank_hash_) {
    // Permutation-based interleaving: bank index XOR low row bits.
    a.bank ^= a.row & ((1u << bank_bits_) - 1);
  }
  return a;
}

std::uint64_t AddressMap::encode(const Address& a) const {
  DM_CHECK_MSG(a.channel < geometry_.channels && a.rank < geometry_.ranks &&
                   a.bank < geometry_.banks && a.row < geometry_.rows &&
                   a.col_word < geometry_.row_words(),
               "address component out of range");
  std::uint32_t bank = a.bank;
  if (xor_bank_hash_) bank ^= a.row & ((1u << bank_bits_) - 1);
  const std::uint64_t col_bytes = static_cast<std::uint64_t>(a.col_word) << 3;
  std::uint64_t x = 0;
  int shift = 0;
  auto put = [&x, &shift](std::uint64_t v, int bits) {
    x |= v << shift;
    shift += bits;
  };
  switch (policy_) {
    case Interleave::kRowBankCol:
      put(col_bytes, col_bits_);
      put(a.channel, chan_bits_);
      put(bank, bank_bits_);
      put(a.rank, rank_bits_);
      put(a.row, row_bits_);
      break;
    case Interleave::kBankColInterleave:
      put(col_bytes & 63, 6);
      put(a.channel, chan_bits_);
      put(bank, bank_bits_);
      put(a.rank, rank_bits_);
      put(col_bytes >> 6, col_bits_ - 6);
      put(a.row, row_bits_);
      break;
  }
  return x;
}

}  // namespace densemem::dram
