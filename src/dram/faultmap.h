// Sparse, lazily-generated per-row fault maps.
//
// A 2 Gb chip has ~2^31 cells but only a tiny fraction are weak; modelling
// every cell would be both slow and pointless. Instead each (bank, row)
// deterministically derives its weak/leaky cell set from the device seed, so
// (a) memory stays proportional to the rows actually touched, (b) a module
// is perfectly reproducible, and (c) sampling a subset of rows gives an
// unbiased estimate of whole-module error rates (cell faults are i.i.d.).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "dram/reliability.h"

namespace densemem::dram {

/// A RowHammer-susceptible cell.
struct WeakCell {
  std::uint32_t bit;    ///< bit index within the row
  float threshold;      ///< aggressor activations to flip at full coupling
  float dpd_sens;       ///< data-pattern sensitivity in [0,1]
  bool anti_cell;       ///< charged state stores logical 0
};

/// A retention-weak cell, possibly with Variable Retention Time.
struct LeakyCell {
  std::uint32_t bit;
  float retention_ms;       ///< base (low-state) retention time
  float dpd_sens;
  bool anti_cell;
  bool vrt;                 ///< subject to VRT state toggling
  float retention_high_ms;  ///< retention in the VRT high state
  bool vrt_low = true;      ///< current VRT state (mutable run-time state)
};

class FaultMap {
 public:
  FaultMap(std::uint64_t seed, std::uint32_t banks, std::uint32_t rows,
           std::uint32_t row_bits, const ReliabilityParams& params);

  const ReliabilityParams& params() const { return params_; }

  /// Weak (hammerable) cells of a physical row; empty for most rows.
  const std::vector<WeakCell>& weak_cells(std::uint32_t bank,
                                          std::uint32_t row) const;
  /// Leaky cells of a physical row; the returned reference is mutable
  /// because VRT state lives inside the cells.
  std::vector<LeakyCell>& leaky_cells(std::uint32_t bank, std::uint32_t row);

  /// Fast predicate: does this row have any weak / leaky cells? O(1) after
  /// construction; lets refresh skip fault-free rows.
  bool row_has_weak(std::uint32_t bank, std::uint32_t row) const {
    return weak_count_[idx(bank, row)] != 0;
  }
  bool row_has_leaky(std::uint32_t bank, std::uint32_t row) const {
    return leaky_count_[idx(bank, row)] != 0;
  }

  /// All physical rows in a bank that contain at least one weak cell.
  std::vector<std::uint32_t> weak_rows(std::uint32_t bank) const;
  std::vector<std::uint32_t> leaky_rows(std::uint32_t bank) const;

  std::uint64_t total_weak_cells() const { return total_weak_; }
  std::uint64_t total_leaky_cells() const { return total_leaky_; }

 private:
  std::size_t idx(std::uint32_t bank, std::uint32_t row) const {
    DM_DCHECK(bank < banks_ && row < rows_);
    return static_cast<std::size_t>(bank) * rows_ + row;
  }
  std::vector<WeakCell> generate_weak(std::uint32_t bank,
                                      std::uint32_t row) const;
  std::vector<LeakyCell> generate_leaky(std::uint32_t bank,
                                        std::uint32_t row) const;

  std::uint64_t seed_;
  std::uint32_t banks_, rows_, row_bits_;
  ReliabilityParams params_;
  // Per-row fault counts, fixed at construction (Poisson draws).
  std::vector<std::uint16_t> weak_count_;
  std::vector<std::uint16_t> leaky_count_;
  std::uint64_t total_weak_ = 0, total_leaky_ = 0;
  // Detail caches, filled on demand.
  mutable std::unordered_map<std::size_t, std::vector<WeakCell>> weak_cache_;
  mutable std::unordered_map<std::size_t, std::vector<LeakyCell>> leaky_cache_;
  static const std::vector<WeakCell> kNoWeak;
};

}  // namespace densemem::dram
