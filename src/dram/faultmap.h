// Sparse, lazily-generated per-row fault maps.
//
// A 2 Gb chip has ~2^31 cells but only a tiny fraction are weak; modelling
// every cell would be both slow and pointless. Instead each (bank, row)
// deterministically derives its weak/leaky cell set from the device seed, so
// (a) memory stays proportional to the rows actually touched, (b) a module
// is perfectly reproducible, and (c) sampling a subset of rows gives an
// unbiased estimate of whole-module error rates (cell faults are i.i.d.).
//
// Laziness goes all the way down: the per-row fault *counts* (Poisson draws
// keyed by hash_coords(seed, tag, bank, row)) are also derived on first
// touch, not in an eager construction scan — constructing a map for a
// 32K-row module costs O(1) hashes, and a campaign job only ever pays for
// the rows it actually activates. Because every row's count comes from its
// own coordinate-hashed stream, the values are bit-identical to an eager
// full-array scan in any access order. Aggregates (total_weak_cells,
// weak_rows) force exactly the rows they need and memoize the answer, so
// repeated queries are O(1) / O(occupied rows).
//
// FaultMap is not thread-safe: it memoizes through mutable caches. Devices
// (and therefore their maps) are per-campaign-job objects by design.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.h"
#include "dram/reliability.h"

namespace densemem::dram {

/// A RowHammer-susceptible cell.
struct WeakCell {
  std::uint32_t bit;    ///< bit index within the row
  float threshold;      ///< aggressor activations to flip at full coupling
  float dpd_sens;       ///< data-pattern sensitivity in [0,1]
  bool anti_cell;       ///< charged state stores logical 0
};

/// A retention-weak cell, possibly with Variable Retention Time.
struct LeakyCell {
  std::uint32_t bit;
  float retention_ms;       ///< base (low-state) retention time
  float dpd_sens;
  bool anti_cell;
  bool vrt;                 ///< subject to VRT state toggling
  float retention_high_ms;  ///< retention in the VRT high state
  bool vrt_low = true;      ///< current VRT state (mutable run-time state)
};

class FaultMap {
 public:
  FaultMap(std::uint64_t seed, std::uint32_t banks, std::uint32_t rows,
           std::uint32_t row_bits, const ReliabilityParams& params);

  const ReliabilityParams& params() const { return params_; }

  /// Weak (hammerable) cells of a physical row; empty for most rows.
  const std::vector<WeakCell>& weak_cells(std::uint32_t bank,
                                          std::uint32_t row) const;
  /// Leaky cells of a physical row; the returned reference is mutable
  /// because VRT state lives inside the cells.
  std::vector<LeakyCell>& leaky_cells(std::uint32_t bank, std::uint32_t row);

  /// Fast predicate: does this row have any weak / leaky cells? The first
  /// touch of a row derives its count (one hash + Poisson draw); every
  /// later query is an array read. Lets refresh skip fault-free rows.
  bool row_has_weak(std::uint32_t bank, std::uint32_t row) const {
    const std::uint32_t c = weak_count_[idx(bank, row)];
    return (c != kUnknownCount ? c : weak_row_count(bank, row)) != 0;
  }
  bool row_has_leaky(std::uint32_t bank, std::uint32_t row) const {
    const std::uint32_t c = leaky_count_[idx(bank, row)];
    return (c != kUnknownCount ? c : leaky_row_count(bank, row)) != 0;
  }

  /// Conservative disturbance screen: false only when a commit at `stress`
  /// provably cannot flip any cell of the row — the row's weak cells are
  /// already generated and `stress` is below the smallest threshold among
  /// them (the data-pattern factor never exceeds 1, and the disturbance
  /// commit has no other side effects, so skipping it is bit-exact).
  /// Returns true while the cell set is still ungenerated.
  bool disturb_possible(std::uint32_t bank, std::uint32_t row,
                        float stress) const {
    const float thr = weak_min_thr_[idx(bank, row)];
    return thr == kThrUnknown || stress >= thr;
  }

  /// All physical rows in a bank that contain at least one weak cell.
  /// Built once per bank on first call (forcing that bank's counts) and
  /// memoized; repeated calls are O(occupied rows).
  const std::vector<std::uint32_t>& weak_rows(std::uint32_t bank) const;
  const std::vector<std::uint32_t>& leaky_rows(std::uint32_t bank) const;

  /// Module-wide fault totals; forces every row's count on first call.
  std::uint64_t total_weak_cells() const;
  std::uint64_t total_leaky_cells() const;

 private:
  static constexpr std::uint32_t kUnknownCount = 0xFFFFFFFFu;
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  static constexpr float kThrUnknown = -1.0f;  // thresholds are always > 0

  std::size_t idx(std::uint32_t bank, std::uint32_t row) const {
    DM_DCHECK(bank < banks_ && row < rows_);
    return static_cast<std::size_t>(bank) * rows_ + row;
  }
  /// Per-row fault counts, derived on demand (memoized Poisson draws keyed
  /// by hash_coords(seed, tag, bank, row) — identical to an eager scan).
  std::uint32_t weak_row_count(std::uint32_t bank, std::uint32_t row) const;
  std::uint32_t leaky_row_count(std::uint32_t bank, std::uint32_t row) const;
  void force_totals() const;
  std::vector<WeakCell> generate_weak(std::uint32_t bank,
                                      std::uint32_t row) const;
  std::vector<LeakyCell> generate_leaky(std::uint32_t bank,
                                        std::uint32_t row) const;

  std::uint64_t seed_;
  std::uint32_t banks_, rows_, row_bits_;
  ReliabilityParams params_;
  double weak_mean_ = 0.0, leaky_mean_ = 0.0;
  // Per-row count caches (kUnknownCount = not yet derived).
  mutable std::vector<std::uint32_t> weak_count_;
  mutable std::vector<std::uint32_t> leaky_count_;
  // Per-row minimum weak threshold, recorded when the cell set is
  // generated; backs the disturb_possible() screen.
  mutable std::vector<float> weak_min_thr_;
  // Per-bank occupancy indexes, built on first weak_rows()/leaky_rows().
  mutable std::vector<std::vector<std::uint32_t>> weak_rows_cache_;
  mutable std::vector<std::vector<std::uint32_t>> leaky_rows_cache_;
  mutable std::vector<std::uint8_t> weak_rows_built_, leaky_rows_built_;
  // Module totals, forced on first total_*_cells() query.
  mutable bool totals_built_ = false;
  mutable std::uint64_t total_weak_ = 0, total_leaky_ = 0;
  // Detail caches, filled on demand: a direct-mapped slot index per row
  // (allocated lazily on the first cell query, so fault-free workloads never
  // pay for it) into a pointer-stable arena. The commit path resolves a
  // row's cells with two array reads instead of a hash lookup.
  mutable std::vector<std::uint32_t> weak_slot_;
  mutable std::vector<std::uint32_t> leaky_slot_;
  mutable std::deque<std::vector<WeakCell>> weak_arena_;
  mutable std::deque<std::vector<LeakyCell>> leaky_arena_;
  static const std::vector<WeakCell> kNoWeak;
};

}  // namespace densemem::dram
