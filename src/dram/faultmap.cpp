#include "dram/faultmap.h"

#include <algorithm>
#include <cmath>

namespace densemem::dram {

namespace {
// Stream tags keep the weak/leaky/count streams statistically independent.
constexpr std::uint64_t kTagWeakCount = 0x57434e54;   // "WCNT"
constexpr std::uint64_t kTagLeakCount = 0x4c434e54;   // "LCNT"
constexpr std::uint64_t kTagWeakCells = 0x5743454c;   // "WCEL"
constexpr std::uint64_t kTagLeakCells = 0x4c43454c;   // "LCEL"
}  // namespace

const std::vector<WeakCell> FaultMap::kNoWeak{};

FaultMap::FaultMap(std::uint64_t seed, std::uint32_t banks, std::uint32_t rows,
                   std::uint32_t row_bits, const ReliabilityParams& params)
    : seed_(seed),
      banks_(banks),
      rows_(rows),
      row_bits_(row_bits),
      params_(params),
      weak_mean_(params.weak_cell_density * row_bits),
      leaky_mean_(params.leaky_cell_density * row_bits),
      weak_count_(static_cast<std::size_t>(banks) * rows, kUnknownCount),
      leaky_count_(static_cast<std::size_t>(banks) * rows, kUnknownCount),
      weak_min_thr_(static_cast<std::size_t>(banks) * rows, kThrUnknown),
      weak_rows_cache_(banks),
      leaky_rows_cache_(banks),
      weak_rows_built_(banks, 0),
      leaky_rows_built_(banks, 0) {}

std::uint32_t FaultMap::weak_row_count(std::uint32_t bank,
                                       std::uint32_t row) const {
  std::uint32_t& c = weak_count_[idx(bank, row)];
  if (c == kUnknownCount) {
    if (weak_mean_ > 0) {
      Rng rng(hash_coords(seed_, kTagWeakCount, bank, row));
      c = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(rng.poisson(weak_mean_), 0xFFFF));
    } else {
      c = 0;
    }
  }
  return c;
}

std::uint32_t FaultMap::leaky_row_count(std::uint32_t bank,
                                        std::uint32_t row) const {
  std::uint32_t& c = leaky_count_[idx(bank, row)];
  if (c == kUnknownCount) {
    if (leaky_mean_ > 0) {
      Rng rng(hash_coords(seed_, kTagLeakCount, bank, row));
      c = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(rng.poisson(leaky_mean_), 0xFFFF));
    } else {
      c = 0;
    }
  }
  return c;
}

std::vector<WeakCell> FaultMap::generate_weak(std::uint32_t bank,
                                              std::uint32_t row) const {
  const std::size_t n = weak_row_count(bank, row);
  std::vector<WeakCell> cells;
  cells.reserve(n);
  Rng rng(hash_coords(seed_, kTagWeakCells, bank, row));
  const double mu = std::log(params_.hc50);
  for (std::size_t i = 0; i < n; ++i) {
    WeakCell c;
    c.bit = static_cast<std::uint32_t>(rng.uniform_int(std::uint64_t{row_bits_}));
    c.threshold = static_cast<float>(rng.lognormal(mu, params_.hc_sigma));
    // Beta-ish sensitivity around the configured mean, clamped to [0,1].
    c.dpd_sens = static_cast<float>(std::clamp(
        rng.normal(params_.dpd_sensitivity_mean, 0.2), 0.0, 1.0));
    c.anti_cell = rng.bernoulli(params_.anticell_fraction);
    cells.push_back(c);
  }
  std::sort(cells.begin(), cells.end(),
            [](const WeakCell& a, const WeakCell& b) { return a.bit < b.bit; });
  return cells;
}

std::vector<LeakyCell> FaultMap::generate_leaky(std::uint32_t bank,
                                                std::uint32_t row) const {
  const std::size_t n = leaky_row_count(bank, row);
  std::vector<LeakyCell> cells;
  cells.reserve(n);
  Rng rng(hash_coords(seed_, kTagLeakCells, bank, row));
  for (std::size_t i = 0; i < n; ++i) {
    LeakyCell c;
    c.bit = static_cast<std::uint32_t>(rng.uniform_int(std::uint64_t{row_bits_}));
    c.retention_ms = static_cast<float>(
        rng.lognormal(params_.retention_mu_log_ms, params_.retention_sigma));
    c.dpd_sens = static_cast<float>(std::clamp(
        rng.normal(params_.dpd_sensitivity_mean, 0.2), 0.0, 1.0));
    c.anti_cell = rng.bernoulli(params_.anticell_fraction);
    c.vrt = rng.bernoulli(params_.vrt_fraction);
    c.retention_high_ms =
        c.retention_ms * static_cast<float>(params_.vrt_high_ratio);
    // VRT cells start in a random state; dwell times are long relative to a
    // refresh window, so the initial state matters for profiling escapes.
    c.vrt_low = !c.vrt || rng.bernoulli(0.5);
    cells.push_back(c);
  }
  std::sort(cells.begin(), cells.end(),
            [](const LeakyCell& a, const LeakyCell& b) { return a.bit < b.bit; });
  return cells;
}

const std::vector<WeakCell>& FaultMap::weak_cells(std::uint32_t bank,
                                                  std::uint32_t row) const {
  if (weak_row_count(bank, row) == 0) return kNoWeak;
  const std::size_t i = idx(bank, row);
  if (weak_slot_.empty())
    weak_slot_.assign(static_cast<std::size_t>(banks_) * rows_, kNoSlot);
  std::uint32_t& slot = weak_slot_[i];
  if (slot == kNoSlot) {
    slot = static_cast<std::uint32_t>(weak_arena_.size());
    weak_arena_.push_back(generate_weak(bank, row));
    const std::vector<WeakCell>& cells = weak_arena_.back();
    float min_thr = cells.front().threshold;
    for (const WeakCell& c : cells)
      if (c.threshold < min_thr) min_thr = c.threshold;
    weak_min_thr_[i] = min_thr;
  }
  return weak_arena_[slot];
}

std::vector<LeakyCell>& FaultMap::leaky_cells(std::uint32_t bank,
                                              std::uint32_t row) {
  const std::size_t i = idx(bank, row);
  if (leaky_slot_.empty())
    leaky_slot_.assign(static_cast<std::size_t>(banks_) * rows_, kNoSlot);
  std::uint32_t& slot = leaky_slot_[i];
  if (slot == kNoSlot) {
    slot = static_cast<std::uint32_t>(leaky_arena_.size());
    leaky_arena_.push_back(generate_leaky(bank, row));
  }
  return leaky_arena_[slot];
}

const std::vector<std::uint32_t>& FaultMap::weak_rows(
    std::uint32_t bank) const {
  DM_DCHECK(bank < banks_);
  if (!weak_rows_built_[bank]) {
    auto& out = weak_rows_cache_[bank];
    for (std::uint32_t r = 0; r < rows_; ++r)
      if (weak_row_count(bank, r) != 0) out.push_back(r);
    weak_rows_built_[bank] = 1;
  }
  return weak_rows_cache_[bank];
}

const std::vector<std::uint32_t>& FaultMap::leaky_rows(
    std::uint32_t bank) const {
  DM_DCHECK(bank < banks_);
  if (!leaky_rows_built_[bank]) {
    auto& out = leaky_rows_cache_[bank];
    for (std::uint32_t r = 0; r < rows_; ++r)
      if (leaky_row_count(bank, r) != 0) out.push_back(r);
    leaky_rows_built_[bank] = 1;
  }
  return leaky_rows_cache_[bank];
}

void FaultMap::force_totals() const {
  if (totals_built_) return;
  for (std::uint32_t b = 0; b < banks_; ++b) {
    for (std::uint32_t r = 0; r < rows_; ++r) {
      total_weak_ += weak_row_count(b, r);
      total_leaky_ += leaky_row_count(b, r);
    }
  }
  totals_built_ = true;
}

std::uint64_t FaultMap::total_weak_cells() const {
  force_totals();
  return total_weak_;
}

std::uint64_t FaultMap::total_leaky_cells() const {
  force_totals();
  return total_leaky_;
}

}  // namespace densemem::dram
