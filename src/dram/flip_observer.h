// Flip-provenance observer interface: how the device narrates its physics.
//
// Every committed bit flip carries the full causal context available at the
// commit site — mechanism, aggressor rows, accumulated weighted hammer count,
// data-pattern-dependence factor, cell coordinates — so an attached observer
// (sim::EventScope, a test fixture) can explain the flip after the fact
// instead of re-deriving it from aggregate counters. Header-only: dram does
// not gain a link dependency, and a null observer costs one pointer test on
// the commit path.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace densemem::dram {

/// Why a cell lost its charge. kVrtRetention is a retention flip of a cell
/// whose VRT trap was in the low-retention state — the paper's "variable
/// retention time" failures that defeat one-shot profiling.
enum class FlipMechanism { kDisturbance, kRetention, kVrtRetention };

/// Sentinel aggressor value: the victim row sits at a bank edge and has no
/// neighbour on that side.
inline constexpr std::uint32_t kNoAggressor = 0xFFFFFFFFu;

/// Full provenance of one committed bit flip.
struct FlipRecord {
  std::uint32_t fbank = 0;         ///< flat bank index
  std::uint32_t physical_row = 0;  ///< victim physical row
  std::uint32_t logical_row = 0;   ///< victim logical row
  std::uint32_t bit = 0;           ///< bit index within the row
  FlipMechanism mechanism = FlipMechanism::kDisturbance;
  bool one_to_zero = false;        ///< direction of the flip
  /// Logical rows of the physical neighbours (the candidate aggressors a
  /// victim-adjacent mitigation must have seen), kNoAggressor at bank edges.
  std::uint32_t aggressor_up = kNoAggressor;
  std::uint32_t aggressor_down = kNoAggressor;
  /// Accumulated weighted activation count pending on the victim at commit
  /// time (0 for pure retention flips).
  double stress = 0.0;
  /// Data-pattern-dependence multiplier actually applied to this cell:
  /// the disturbance pattern factor, or the retention DPD factor.
  double dpd_factor = 1.0;
  Time when;                       ///< simulated commit time
};

/// Attach via DeviceConfig::observer. Called synchronously from the commit
/// path under whatever thread runs the device (devices are job-local in the
/// campaign engine, so no locking is implied).
class FlipObserver {
 public:
  virtual ~FlipObserver() = default;
  virtual void on_flip(const FlipRecord& rec) = 0;
};

}  // namespace densemem::dram
