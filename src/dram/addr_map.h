// Physical-address ↔ DRAM-coordinate mapping (the memory controller's
// address decoder).
//
// The interleaving policy decides which physical addresses share a DRAM
// row — the knowledge a RowHammer attacker must reverse-engineer to find
// same-bank adjacent rows from user-space addresses (§II-A: "different
// DRAM rows are mapped (by the memory controller) to different software
// pages"). Two standard policies plus an optional XOR bank hash
// (permutation-based interleaving, which defeats naive bank-conflict
// probing but not timing analysis).
#pragma once

#include <cstdint>

#include "dram/geometry.h"

namespace densemem::dram {

enum class Interleave {
  /// row : rank : bank : channel : column — consecutive cache lines walk
  /// the column space of one row (row locality for streams).
  kRowBankCol,
  /// row : column : rank : bank : channel — consecutive cache lines stripe
  /// across channels/banks (bank-level parallelism for streams).
  kBankColInterleave,
};

const char* interleave_name(Interleave i);

class AddressMap {
 public:
  AddressMap(Geometry geometry, Interleave policy, bool xor_bank_hash = false);

  const Geometry& geometry() const { return geometry_; }
  Interleave policy() const { return policy_; }

  /// Bytes covered by the map (power-of-two geometry dimensions required).
  std::uint64_t capacity_bytes() const { return geometry_.bytes_total(); }

  /// Decode a physical byte address into DRAM coordinates. The low 6 bits
  /// (64-byte cache line) select bytes within the column word group and are
  /// ignored beyond block alignment: col_word indexes the 64-bit word.
  Address decode(std::uint64_t phys_addr) const;
  /// Inverse of decode (word-aligned; low 3 bits must be zero).
  std::uint64_t encode(const Address& a) const;

 private:
  static int log2_exact(std::uint64_t v, const char* what);

  Geometry geometry_;
  Interleave policy_;
  bool xor_bank_hash_;
  int col_bits_, bank_bits_, rank_bits_, chan_bits_, row_bits_;
};

}  // namespace densemem::dram
