#include "dram/device.h"

#include <cmath>

namespace densemem::dram {

Device::Device(DeviceConfig cfg)
    : cfg_(std::move(cfg)),
      nbanks_(total_banks(cfg_.geometry)),
      faults_(cfg_.seed, nbanks_, cfg_.geometry.rows, cfg_.geometry.row_bits(),
              cfg_.reliability),
      remap_(cfg_.remap, cfg_.geometry.rows, cfg_.seed),
      rng_(hash_coords(cfg_.seed, 0x44455649 /* "DEVI" */)),
      open_row_(nbanks_, -1),
      refresh_ptr_(nbanks_, 0),
      stress_(static_cast<std::size_t>(nbanks_) * cfg_.geometry.rows, 0.0f),
      last_restore_(static_cast<std::size_t>(nbanks_) * cfg_.geometry.rows) {
  cfg_.geometry.validate();
}

std::uint64_t pattern_word_value(BackgroundPattern pat, std::uint64_t seed,
                                 std::uint32_t row, std::uint32_t col_word) {
  switch (pat) {
    case BackgroundPattern::kZeros:
      return 0;
    case BackgroundPattern::kOnes:
      return ~std::uint64_t{0};
    case BackgroundPattern::kCheckerboard:
      // Bit b of the row is set iff (row + b) is odd.
      return (row & 1) ? 0x5555555555555555ULL : 0xAAAAAAAAAAAAAAAAULL;
    case BackgroundPattern::kRowStripe:
      return (row & 1) ? ~std::uint64_t{0} : 0;
    case BackgroundPattern::kRandom:
      return splitmix64(
          hash_coords(seed, 0x44415441 /* "DATA" */, row, col_word));
  }
  return 0;
}

bool pattern_bit_value(BackgroundPattern pat, std::uint64_t seed,
                       std::uint32_t row, std::uint32_t bit) {
  return (pattern_word_value(pat, seed, row, bit / 64) >> (bit % 64)) & 1;
}

bool Device::pattern_bit(std::uint32_t logical_row, std::uint32_t bit) const {
  return pattern_bit_value(cfg_.pattern, cfg_.seed, logical_row, bit);
}

std::uint64_t Device::pattern_word(std::uint32_t row,
                                   std::uint32_t col_word) const {
  return pattern_word_value(cfg_.pattern, cfg_.seed, row, col_word);
}

Device::RowCtx Device::make_row_ctx(std::uint32_t fbank,
                                    std::uint32_t prow) const {
  RowCtx ctx;
  ctx.fbank = fbank;
  ctx.prow = prow;
  const bool uniform = cfg_.pattern != BackgroundPattern::kRandom;
  auto resolve = [&](RowView& v, std::uint32_t p) {
    v.present = true;
    v.logical = remap_.to_logical(p);
    const auto it = data_.find(flat_row(fbank, p));
    if (it != data_.end()) {
      v.words = it->second.data();
    } else if (uniform) {
      v.uniform = true;
      v.fill = pattern_word_value(cfg_.pattern, cfg_.seed, v.logical, 0);
    }
  };
  resolve(ctx.self, prow);
  ctx.logical = ctx.self.logical;
  if (prow > 0) resolve(ctx.up, prow - 1);
  if (prow + 1 < cfg_.geometry.rows) resolve(ctx.down, prow + 1);
  return ctx;
}

std::vector<std::uint64_t>& Device::materialize(std::uint32_t fbank,
                                                std::uint32_t prow) {
  const std::size_t key = flat_row(fbank, prow);
  auto it = data_.find(key);
  if (it == data_.end()) {
    const std::uint32_t logical = remap_.to_logical(prow);
    std::vector<std::uint64_t> words(cfg_.geometry.row_words());
    for (std::uint32_t w = 0; w < words.size(); ++w)
      words[w] = pattern_word(logical, w);
    it = data_.emplace(key, std::move(words)).first;
  }
  return it->second;
}

void Device::apply_flip(RowCtx& ctx, std::uint32_t bit,
                        FlipMechanism mechanism, double stress,
                        double dpd_factor, Time now) {
  auto& words = materialize(ctx.fbank, ctx.prow);
  // A pattern-backed row materializes on its first flip; later cells in
  // this same commit pass must read the flipped words, not the pattern.
  ctx.self.words = words.data();
  const std::uint64_t mask = std::uint64_t{1} << (bit % 64);
  const bool was_one = (words[bit / 64] & mask) != 0;
  words[bit / 64] ^= mask;
  const bool disturb = mechanism == FlipMechanism::kDisturbance;
  if (disturb)
    ++stats_.disturb_flips;
  else
    ++stats_.retention_flips;
  if (was_one)
    ++stats_.flips_1to0;
  else
    ++stats_.flips_0to1;
  if (cfg_.record_flip_events) {
    if (events_.size() < kMaxEvents) {
      const FlipCause cause =
          disturb ? FlipCause::kDisturbance : FlipCause::kRetention;
      events_.push_back(FlipEvent{ctx.fbank, ctx.prow, ctx.logical, bit, cause,
                                  was_one, now});
    } else {
      ++stats_.flip_events_dropped;
    }
  }
  if (cfg_.observer) {
    FlipRecord rec;
    rec.fbank = ctx.fbank;
    rec.physical_row = ctx.prow;
    rec.logical_row = ctx.logical;
    rec.bit = bit;
    rec.mechanism = mechanism;
    rec.one_to_zero = was_one;
    if (ctx.up.present) rec.aggressor_up = ctx.up.logical;
    if (ctx.down.present) rec.aggressor_down = ctx.down.logical;
    rec.stress = stress;
    rec.dpd_factor = dpd_factor;
    rec.when = now;
    cfg_.observer->on_flip(rec);
  }
}

void Device::commit_disturbance(RowCtx& ctx, float stress, Time now) {
  for (const WeakCell& c : faults_.weak_cells(ctx.fbank, ctx.prow)) {
    const bool value = view_bit(ctx.self, c.bit);
    // Only a charged cell can lose charge: true cell stores 1 charged,
    // anti-cell stores 0 charged.
    const bool charged = (value != c.anti_cell);
    if (!charged) continue;
    int a = 0;
    if (ctx.up.present && view_bit(ctx.up, c.bit) != value) ++a;
    if (ctx.down.present && view_bit(ctx.down, c.bit) != value) ++a;
    const double pattern_factor =
        (1.0 - c.dpd_sens) + c.dpd_sens * (static_cast<double>(a) / 2.0);
    if (static_cast<double>(stress) * pattern_factor >=
        static_cast<double>(c.threshold)) {
      apply_flip(ctx, c.bit, FlipMechanism::kDisturbance,
                 static_cast<double>(stress), pattern_factor, now);
    }
  }
}

void Device::commit_retention(RowCtx& ctx, double dt_ms, Time now) {
  const double dpd_strength = cfg_.reliability.retention_dpd_strength;
  for (LeakyCell& c : faults_.leaky_cells(ctx.fbank, ctx.prow)) {
    // Evolve the VRT state over the elapsed interval (memoryless process).
    if (c.vrt) {
      const double p_switch =
          1.0 - std::exp(-cfg_.reliability.vrt_rate_hz * dt_ms * 1e-3);
      if (rng_.bernoulli(p_switch)) c.vrt_low = !c.vrt_low;
    }
    const bool value = view_bit(ctx.self, c.bit);
    const bool charged = (value != c.anti_cell);
    if (!charged) continue;
    int a = 0;
    if (ctx.up.present && view_bit(ctx.up, c.bit) != value) ++a;
    if (ctx.down.present && view_bit(ctx.down, c.bit) != value) ++a;
    const double dpd_factor =
        1.0 - dpd_strength * c.dpd_sens * (static_cast<double>(a) / 2.0);
    const double base =
        (c.vrt && !c.vrt_low) ? c.retention_high_ms : c.retention_ms;
    if (dt_ms > base * dpd_factor) {
      apply_flip(ctx, c.bit,
                 c.vrt ? FlipMechanism::kVrtRetention
                       : FlipMechanism::kRetention,
                 0.0, dpd_factor, now);
    }
  }
}

void Device::restore_row(std::uint32_t fbank, std::uint32_t prow, Time now) {
  const std::size_t fr = flat_row(fbank, prow);
  const float stress = stress_[fr];
  const double dt_ms = (now - last_restore_[fr]).as_ms();
  // Same commit gating as always, hoisted: retention runs iff time elapsed
  // and the row has leaky cells, disturbance iff stress is pending and the
  // row has weak cells. The overwhelmingly common case — neither — never
  // resolves row data at all.
  const bool do_ret = faults_.row_has_leaky(fbank, prow) && dt_ms > 0.0;
  const bool do_dist = stress > 0.0f && faults_.row_has_weak(fbank, prow) &&
                       faults_.disturb_possible(fbank, prow, stress);
  if (do_ret || do_dist) {
    RowCtx ctx = make_row_ctx(fbank, prow);
    if (do_ret) commit_retention(ctx, dt_ms, now);
    if (do_dist) commit_disturbance(ctx, stress, now);
  }
  stress_[fr] = 0.0f;
  last_restore_[fr] = now;
}

void Device::disturb_neighbors(std::uint32_t fbank, std::uint32_t prow,
                               float count) {
  const std::uint32_t rows = cfg_.geometry.rows;
  if (prow > 0) stress_[flat_row(fbank, prow - 1)] += count;
  if (prow + 1 < rows) stress_[flat_row(fbank, prow + 1)] += count;
  const auto d2 = static_cast<float>(cfg_.reliability.distance2_weight);
  if (d2 > 0.0f) {
    if (prow > 1) stress_[flat_row(fbank, prow - 2)] += d2 * count;
    if (prow + 2 < rows) stress_[flat_row(fbank, prow + 2)] += d2 * count;
  }
}

void Device::activate(std::uint32_t fbank, std::uint32_t row, Time now) {
  DM_CHECK_MSG(fbank < nbanks_, "bank index out of range");
  DM_CHECK_MSG(row < cfg_.geometry.rows, "row index out of range");
  DM_CHECK_MSG(open_row_[fbank] < 0, "ACT on a bank with an open row");
  const std::uint32_t prow = remap_.to_physical(row);
  // Activation restores the row's own charge (committing anything already
  // lost) ...
  restore_row(fbank, prow, now);
  // ... and disturbs its physical neighbours.
  disturb_neighbors(fbank, prow, 1.0f);
  open_row_[fbank] = row;
  ++stats_.activates;
}

void Device::hammer(std::uint32_t fbank, std::uint32_t row,
                    std::uint64_t count, Time now) {
  DM_CHECK_MSG(fbank < nbanks_, "bank index out of range");
  DM_CHECK_MSG(row < cfg_.geometry.rows, "row index out of range");
  DM_CHECK_MSG(open_row_[fbank] < 0, "hammer on a bank with an open row");
  if (count == 0) return;
  const std::uint32_t prow = remap_.to_physical(row);
  restore_row(fbank, prow, now);
  disturb_neighbors(fbank, prow, static_cast<float>(count));
  stats_.activates += count;
  stats_.precharges += count;
}

void Device::precharge(std::uint32_t fbank, Time) {
  DM_CHECK_MSG(fbank < nbanks_, "bank index out of range");
  open_row_[fbank] = -1;
  ++stats_.precharges;
}

std::optional<std::uint32_t> Device::open_row(std::uint32_t fbank) const {
  DM_CHECK_MSG(fbank < nbanks_, "bank index out of range");
  if (open_row_[fbank] < 0) return std::nullopt;
  return static_cast<std::uint32_t>(open_row_[fbank]);
}

std::uint64_t Device::read_word(std::uint32_t fbank, std::uint32_t col_word) {
  DM_CHECK_MSG(open_row_[fbank] >= 0, "RD on a precharged bank");
  DM_CHECK_MSG(col_word < cfg_.geometry.row_words(), "column out of range");
  const std::uint32_t prow =
      remap_.to_physical(static_cast<std::uint32_t>(open_row_[fbank]));
  ++stats_.reads;
  const auto it = data_.find(flat_row(fbank, prow));
  if (it == data_.end())
    return pattern_word(static_cast<std::uint32_t>(open_row_[fbank]), col_word);
  return it->second[col_word];
}

void Device::write_word(std::uint32_t fbank, std::uint32_t col_word,
                        std::uint64_t value) {
  DM_CHECK_MSG(open_row_[fbank] >= 0, "WR on a precharged bank");
  DM_CHECK_MSG(col_word < cfg_.geometry.row_words(), "column out of range");
  const std::uint32_t prow =
      remap_.to_physical(static_cast<std::uint32_t>(open_row_[fbank]));
  materialize(fbank, prow)[col_word] = value;
  ++stats_.writes;
}

void Device::refresh_next(std::uint32_t fbank, std::uint32_t count, Time now) {
  DM_CHECK_MSG(fbank < nbanks_, "bank index out of range");
  DM_CHECK_MSG(open_row_[fbank] < 0, "REF on a bank with an open row");
  const std::uint32_t rows = cfg_.geometry.rows;
  std::uint32_t p = refresh_ptr_[fbank];
  for (std::uint32_t i = 0; i < count; ++i) {
    // A row refresh is internally an activation: it restores this row and
    // disturbs its neighbours (one unit per window from the sweep — far
    // below any threshold, but the physics is uniform).
    restore_row(fbank, p, now);
    disturb_neighbors(fbank, p, 1.0f);
    p = (p + 1 == rows) ? 0 : p + 1;
  }
  refresh_ptr_[fbank] = p;
  stats_.row_refreshes += count;
}

void Device::refresh_row(std::uint32_t fbank, std::uint32_t row, Time now) {
  DM_CHECK_MSG(fbank < nbanks_, "bank index out of range");
  DM_CHECK_MSG(row < cfg_.geometry.rows, "row index out of range");
  const std::uint32_t prow = remap_.to_physical(row);
  restore_row(fbank, prow, now);
  // Targeted refreshes activate the row too: a mitigation that refreshes
  // victims aggressively becomes an aggressor one row further out — the
  // Half-Double effect the E7 bench demonstrates against TRR.
  disturb_neighbors(fbank, prow, 1.0f);
  ++stats_.targeted_refreshes;
}

void Device::fill_all(BackgroundPattern pattern, Time now) {
  cfg_.pattern = pattern;
  data_.clear();
  std::fill(stress_.begin(), stress_.end(), 0.0f);
  std::fill(last_restore_.begin(), last_restore_.end(), now);
}

void Device::fill_row(std::uint32_t fbank, std::uint32_t row,
                      const std::vector<std::uint64_t>& words, Time now) {
  DM_CHECK_MSG(words.size() == cfg_.geometry.row_words(),
               "fill_row size mismatch");
  const std::uint32_t prow = remap_.to_physical(row);
  restore_row(fbank, prow, now);
  materialize(fbank, prow) = words;
}

std::vector<std::uint64_t> Device::snapshot_row(std::uint32_t fbank,
                                                std::uint32_t row) const {
  std::vector<std::uint64_t> words;
  snapshot_row(fbank, row, words);
  return words;
}

void Device::snapshot_row(std::uint32_t fbank, std::uint32_t row,
                          std::vector<std::uint64_t>& out) const {
  const std::uint32_t prow = remap_.to_physical(row);
  const auto it = data_.find(flat_row(fbank, prow));
  if (it != data_.end()) {
    out = it->second;
    return;
  }
  out.resize(cfg_.geometry.row_words());
  for (std::uint32_t w = 0; w < out.size(); ++w)
    out[w] = pattern_word(row, w);
}

}  // namespace densemem::dram
