#include "dram/device.h"

#include <cmath>

namespace densemem::dram {

Device::Device(DeviceConfig cfg)
    : cfg_(std::move(cfg)),
      nbanks_(total_banks(cfg_.geometry)),
      faults_(cfg_.seed, nbanks_, cfg_.geometry.rows, cfg_.geometry.row_bits(),
              cfg_.reliability),
      remap_(cfg_.remap, cfg_.geometry.rows, cfg_.seed),
      rng_(hash_coords(cfg_.seed, 0x44455649 /* "DEVI" */)),
      open_row_(nbanks_, -1),
      refresh_ptr_(nbanks_, 0),
      stress_(static_cast<std::size_t>(nbanks_) * cfg_.geometry.rows, 0.0f),
      last_restore_(static_cast<std::size_t>(nbanks_) * cfg_.geometry.rows) {
  cfg_.geometry.validate();
}

std::uint64_t pattern_word_value(BackgroundPattern pat, std::uint64_t seed,
                                 std::uint32_t row, std::uint32_t col_word) {
  switch (pat) {
    case BackgroundPattern::kZeros:
      return 0;
    case BackgroundPattern::kOnes:
      return ~std::uint64_t{0};
    case BackgroundPattern::kCheckerboard:
      // Bit b of the row is set iff (row + b) is odd.
      return (row & 1) ? 0x5555555555555555ULL : 0xAAAAAAAAAAAAAAAAULL;
    case BackgroundPattern::kRowStripe:
      return (row & 1) ? ~std::uint64_t{0} : 0;
    case BackgroundPattern::kRandom:
      return splitmix64(
          hash_coords(seed, 0x44415441 /* "DATA" */, row, col_word));
  }
  return 0;
}

bool pattern_bit_value(BackgroundPattern pat, std::uint64_t seed,
                       std::uint32_t row, std::uint32_t bit) {
  return (pattern_word_value(pat, seed, row, bit / 64) >> (bit % 64)) & 1;
}

bool Device::pattern_bit(std::uint32_t logical_row, std::uint32_t bit) const {
  return pattern_bit_value(cfg_.pattern, cfg_.seed, logical_row, bit);
}

std::uint64_t Device::pattern_word(std::uint32_t row,
                                   std::uint32_t col_word) const {
  return pattern_word_value(cfg_.pattern, cfg_.seed, row, col_word);
}

bool Device::stored_bit(std::uint32_t fbank, std::uint32_t prow,
                        std::uint32_t bit) const {
  const auto it = data_.find(flat_row(fbank, prow));
  if (it == data_.end()) return pattern_bit(remap_.to_logical(prow), bit);
  return (it->second[bit / 64] >> (bit % 64)) & 1;
}

std::vector<std::uint64_t>& Device::materialize(std::uint32_t fbank,
                                                std::uint32_t prow) {
  const std::size_t key = flat_row(fbank, prow);
  auto it = data_.find(key);
  if (it == data_.end()) {
    const std::uint32_t logical = remap_.to_logical(prow);
    std::vector<std::uint64_t> words(cfg_.geometry.row_words());
    for (std::uint32_t w = 0; w < words.size(); ++w)
      words[w] = pattern_word(logical, w);
    it = data_.emplace(key, std::move(words)).first;
  }
  return it->second;
}

int Device::antiparallel_neighbors(std::uint32_t fbank, std::uint32_t prow,
                                   std::uint32_t bit) const {
  const bool mine = stored_bit(fbank, prow, bit);
  int n = 0;
  if (prow > 0 && stored_bit(fbank, prow - 1, bit) != mine) ++n;
  if (prow + 1 < cfg_.geometry.rows && stored_bit(fbank, prow + 1, bit) != mine)
    ++n;
  return n;
}

void Device::apply_flip(std::uint32_t fbank, std::uint32_t prow,
                        std::uint32_t bit, FlipCause cause, Time now) {
  auto& words = materialize(fbank, prow);
  const std::uint64_t mask = std::uint64_t{1} << (bit % 64);
  const bool was_one = (words[bit / 64] & mask) != 0;
  words[bit / 64] ^= mask;
  if (cause == FlipCause::kDisturbance)
    ++stats_.disturb_flips;
  else
    ++stats_.retention_flips;
  if (was_one)
    ++stats_.flips_1to0;
  else
    ++stats_.flips_0to1;
  if (cfg_.record_flip_events && events_.size() < kMaxEvents) {
    events_.push_back(FlipEvent{fbank, prow, remap_.to_logical(prow), bit,
                                cause, was_one, now});
  }
}

void Device::commit_disturbance(std::uint32_t fbank, std::uint32_t prow,
                                Time now) {
  const float stress = stress_[flat_row(fbank, prow)];
  if (stress <= 0.0f || !faults_.row_has_weak(fbank, prow)) return;
  for (const WeakCell& c : faults_.weak_cells(fbank, prow)) {
    const bool value = stored_bit(fbank, prow, c.bit);
    // Only a charged cell can lose charge: true cell stores 1 charged,
    // anti-cell stores 0 charged.
    const bool charged = (value != c.anti_cell);
    if (!charged) continue;
    const int a = antiparallel_neighbors(fbank, prow, c.bit);
    const double pattern_factor =
        (1.0 - c.dpd_sens) + c.dpd_sens * (static_cast<double>(a) / 2.0);
    if (static_cast<double>(stress) * pattern_factor >=
        static_cast<double>(c.threshold)) {
      apply_flip(fbank, prow, c.bit, FlipCause::kDisturbance, now);
    }
  }
}

void Device::commit_retention(std::uint32_t fbank, std::uint32_t prow,
                              Time now) {
  if (!faults_.row_has_leaky(fbank, prow)) return;
  const Time last = last_restore_[flat_row(fbank, prow)];
  const double dt_ms = (now - last).as_ms();
  if (dt_ms <= 0.0) return;
  const double dpd_strength = cfg_.reliability.retention_dpd_strength;
  for (LeakyCell& c : faults_.leaky_cells(fbank, prow)) {
    // Evolve the VRT state over the elapsed interval (memoryless process).
    if (c.vrt) {
      const double p_switch =
          1.0 - std::exp(-cfg_.reliability.vrt_rate_hz * dt_ms * 1e-3);
      if (rng_.bernoulli(p_switch)) c.vrt_low = !c.vrt_low;
    }
    const bool value = stored_bit(fbank, prow, c.bit);
    const bool charged = (value != c.anti_cell);
    if (!charged) continue;
    const int a = antiparallel_neighbors(fbank, prow, c.bit);
    const double dpd_factor =
        1.0 - dpd_strength * c.dpd_sens * (static_cast<double>(a) / 2.0);
    const double base =
        (c.vrt && !c.vrt_low) ? c.retention_high_ms : c.retention_ms;
    if (dt_ms > base * dpd_factor)
      apply_flip(fbank, prow, c.bit, FlipCause::kRetention, now);
  }
}

void Device::restore_row(std::uint32_t fbank, std::uint32_t prow, Time now) {
  commit_retention(fbank, prow, now);
  commit_disturbance(fbank, prow, now);
  stress_[flat_row(fbank, prow)] = 0.0f;
  last_restore_[flat_row(fbank, prow)] = now;
}

void Device::disturb_neighbors(std::uint32_t fbank, std::uint32_t prow,
                               float count) {
  const std::uint32_t rows = cfg_.geometry.rows;
  if (prow > 0) stress_[flat_row(fbank, prow - 1)] += count;
  if (prow + 1 < rows) stress_[flat_row(fbank, prow + 1)] += count;
  const auto d2 = static_cast<float>(cfg_.reliability.distance2_weight);
  if (d2 > 0.0f) {
    if (prow > 1) stress_[flat_row(fbank, prow - 2)] += d2 * count;
    if (prow + 2 < rows) stress_[flat_row(fbank, prow + 2)] += d2 * count;
  }
}

void Device::activate(std::uint32_t fbank, std::uint32_t row, Time now) {
  DM_CHECK_MSG(fbank < nbanks_, "bank index out of range");
  DM_CHECK_MSG(row < cfg_.geometry.rows, "row index out of range");
  DM_CHECK_MSG(open_row_[fbank] < 0, "ACT on a bank with an open row");
  const std::uint32_t prow = remap_.to_physical(row);
  // Activation restores the row's own charge (committing anything already
  // lost) ...
  restore_row(fbank, prow, now);
  // ... and disturbs its physical neighbours.
  disturb_neighbors(fbank, prow, 1.0f);
  open_row_[fbank] = row;
  ++stats_.activates;
}

void Device::hammer(std::uint32_t fbank, std::uint32_t row,
                    std::uint64_t count, Time now) {
  DM_CHECK_MSG(fbank < nbanks_, "bank index out of range");
  DM_CHECK_MSG(row < cfg_.geometry.rows, "row index out of range");
  DM_CHECK_MSG(open_row_[fbank] < 0, "hammer on a bank with an open row");
  if (count == 0) return;
  const std::uint32_t prow = remap_.to_physical(row);
  restore_row(fbank, prow, now);
  disturb_neighbors(fbank, prow, static_cast<float>(count));
  stats_.activates += count;
  stats_.precharges += count;
}

void Device::precharge(std::uint32_t fbank, Time) {
  DM_CHECK_MSG(fbank < nbanks_, "bank index out of range");
  open_row_[fbank] = -1;
  ++stats_.precharges;
}

std::optional<std::uint32_t> Device::open_row(std::uint32_t fbank) const {
  DM_CHECK_MSG(fbank < nbanks_, "bank index out of range");
  if (open_row_[fbank] < 0) return std::nullopt;
  return static_cast<std::uint32_t>(open_row_[fbank]);
}

std::uint64_t Device::read_word(std::uint32_t fbank, std::uint32_t col_word) {
  DM_CHECK_MSG(open_row_[fbank] >= 0, "RD on a precharged bank");
  DM_CHECK_MSG(col_word < cfg_.geometry.row_words(), "column out of range");
  const std::uint32_t prow =
      remap_.to_physical(static_cast<std::uint32_t>(open_row_[fbank]));
  ++stats_.reads;
  const auto it = data_.find(flat_row(fbank, prow));
  if (it == data_.end())
    return pattern_word(static_cast<std::uint32_t>(open_row_[fbank]), col_word);
  return it->second[col_word];
}

void Device::write_word(std::uint32_t fbank, std::uint32_t col_word,
                        std::uint64_t value) {
  DM_CHECK_MSG(open_row_[fbank] >= 0, "WR on a precharged bank");
  DM_CHECK_MSG(col_word < cfg_.geometry.row_words(), "column out of range");
  const std::uint32_t prow =
      remap_.to_physical(static_cast<std::uint32_t>(open_row_[fbank]));
  materialize(fbank, prow)[col_word] = value;
  ++stats_.writes;
}

void Device::refresh_next(std::uint32_t fbank, std::uint32_t count, Time now) {
  DM_CHECK_MSG(fbank < nbanks_, "bank index out of range");
  DM_CHECK_MSG(open_row_[fbank] < 0, "REF on a bank with an open row");
  const std::uint32_t rows = cfg_.geometry.rows;
  std::uint32_t p = refresh_ptr_[fbank];
  for (std::uint32_t i = 0; i < count; ++i) {
    // A row refresh is internally an activation: it restores this row and
    // disturbs its neighbours (one unit per window from the sweep — far
    // below any threshold, but the physics is uniform).
    restore_row(fbank, p, now);
    disturb_neighbors(fbank, p, 1.0f);
    p = (p + 1 == rows) ? 0 : p + 1;
  }
  refresh_ptr_[fbank] = p;
  stats_.row_refreshes += count;
}

void Device::refresh_row(std::uint32_t fbank, std::uint32_t row, Time now) {
  DM_CHECK_MSG(fbank < nbanks_, "bank index out of range");
  DM_CHECK_MSG(row < cfg_.geometry.rows, "row index out of range");
  const std::uint32_t prow = remap_.to_physical(row);
  restore_row(fbank, prow, now);
  // Targeted refreshes activate the row too: a mitigation that refreshes
  // victims aggressively becomes an aggressor one row further out — the
  // Half-Double effect the E7 bench demonstrates against TRR.
  disturb_neighbors(fbank, prow, 1.0f);
  ++stats_.targeted_refreshes;
}

void Device::fill_all(BackgroundPattern pattern, Time now) {
  cfg_.pattern = pattern;
  data_.clear();
  std::fill(stress_.begin(), stress_.end(), 0.0f);
  std::fill(last_restore_.begin(), last_restore_.end(), now);
}

void Device::fill_row(std::uint32_t fbank, std::uint32_t row,
                      const std::vector<std::uint64_t>& words, Time now) {
  DM_CHECK_MSG(words.size() == cfg_.geometry.row_words(),
               "fill_row size mismatch");
  const std::uint32_t prow = remap_.to_physical(row);
  restore_row(fbank, prow, now);
  materialize(fbank, prow) = words;
}

std::vector<std::uint64_t> Device::snapshot_row(std::uint32_t fbank,
                                                std::uint32_t row) const {
  const std::uint32_t prow = remap_.to_physical(row);
  const auto it = data_.find(flat_row(fbank, prow));
  if (it != data_.end()) return it->second;
  std::vector<std::uint64_t> words(cfg_.geometry.row_words());
  for (std::uint32_t w = 0; w < words.size(); ++w)
    words[w] = pattern_word(row, w);
  return words;
}

}  // namespace densemem::dram
