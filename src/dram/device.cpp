#include "dram/device.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "dram/access_stream.h"

namespace densemem::dram {

Device::Device(DeviceConfig cfg)
    : cfg_(std::move(cfg)),
      nbanks_(total_banks(cfg_.geometry)),
      faults_(cfg_.seed, nbanks_, cfg_.geometry.rows, cfg_.geometry.row_bits(),
              cfg_.reliability),
      remap_(cfg_.remap, cfg_.geometry.rows, cfg_.seed),
      rng_(hash_coords(cfg_.seed, 0x44455649 /* "DEVI" */)),
      open_row_(nbanks_, -1),
      refresh_ptr_(nbanks_, 0),
      stress_(static_cast<std::size_t>(nbanks_) * cfg_.geometry.rows, 0.0f),
      last_restore_(static_cast<std::size_t>(nbanks_) * cfg_.geometry.rows),
      charged_min_thr_(static_cast<std::size_t>(nbanks_) * cfg_.geometry.rows,
                       0.0f) {
  cfg_.geometry.validate();
}

std::uint64_t pattern_word_value(BackgroundPattern pat, std::uint64_t seed,
                                 std::uint32_t row, std::uint32_t col_word) {
  switch (pat) {
    case BackgroundPattern::kZeros:
      return 0;
    case BackgroundPattern::kOnes:
      return ~std::uint64_t{0};
    case BackgroundPattern::kCheckerboard:
      // Bit b of the row is set iff (row + b) is odd.
      return (row & 1) ? 0x5555555555555555ULL : 0xAAAAAAAAAAAAAAAAULL;
    case BackgroundPattern::kRowStripe:
      return (row & 1) ? ~std::uint64_t{0} : 0;
    case BackgroundPattern::kRandom:
      return splitmix64(
          hash_coords(seed, 0x44415441 /* "DATA" */, row, col_word));
  }
  return 0;
}

bool pattern_bit_value(BackgroundPattern pat, std::uint64_t seed,
                       std::uint32_t row, std::uint32_t bit) {
  return (pattern_word_value(pat, seed, row, bit / 64) >> (bit % 64)) & 1;
}

bool Device::pattern_bit(std::uint32_t logical_row, std::uint32_t bit) const {
  return pattern_bit_value(cfg_.pattern, cfg_.seed, logical_row, bit);
}

std::uint64_t Device::pattern_word(std::uint32_t row,
                                   std::uint32_t col_word) const {
  return pattern_word_value(cfg_.pattern, cfg_.seed, row, col_word);
}

void Device::resolve_row_view(RowView& v, std::uint32_t fbank,
                              std::uint32_t p) const {
  v.present = true;
  v.logical = remap_.to_logical(p);
  const std::size_t fr = flat_row(fbank, p);
  if (row_is_uniform(fr)) {
    v.uniform = true;
    v.fill = uniform_fill_[fr];
    if (!exc_slot_.empty() && exc_slot_[fr] != kNoSlot) {
      const ExcList& exc = exc_arena_[exc_slot_[fr]];
      v.exc = exc.words.data();
      v.exc_n = static_cast<std::uint32_t>(exc.words.size());
      v.exc_mask = exc.word_mask;
    }
  } else if (const std::vector<std::uint64_t>* row = stored_row(fr)) {
    v.words = row->data();
  } else if (cfg_.pattern != BackgroundPattern::kRandom) {
    v.uniform = true;
    v.fill = pattern_word_value(cfg_.pattern, cfg_.seed, v.logical, 0);
  }
}

Device::RowCtx Device::make_row_ctx(std::uint32_t fbank,
                                    std::uint32_t prow) const {
  RowCtx ctx;
  ctx.fbank = fbank;
  ctx.prow = prow;
  resolve_row_view(ctx.self, fbank, prow);
  ctx.logical = ctx.self.logical;
  return ctx;
}

void Device::resolve_neighbors(RowCtx& ctx) const {
  if (ctx.neighbors_resolved) return;
  ctx.neighbors_resolved = true;
  if (ctx.prow > 0) resolve_row_view(ctx.up, ctx.fbank, ctx.prow - 1);
  if (ctx.prow + 1 < cfg_.geometry.rows)
    resolve_row_view(ctx.down, ctx.fbank, ctx.prow + 1);
}

void Device::set_uniform_row(std::size_t fr, std::uint64_t fill_word) {
  if (row_uniform_.empty()) {
    const std::size_t n = static_cast<std::size_t>(nbanks_) * cfg_.geometry.rows;
    row_uniform_.assign(n, 0);
    uniform_fill_.assign(n, 0);
  }
  row_uniform_[fr] = 1;
  uniform_fill_[fr] = fill_word;
  clear_exceptions(fr);
}

void Device::clear_exceptions(std::size_t fr) {
  if (!exc_slot_.empty() && exc_slot_[fr] != kNoSlot) {
    ExcList& exc = exc_arena_[exc_slot_[fr]];
    exc.words.clear();
    exc.word_mask = 0;
  }
}

std::vector<std::uint64_t>& Device::materialize(std::uint32_t fbank,
                                                std::uint32_t prow) {
  const std::size_t key = flat_row(fbank, prow);
  if (data_slot_.empty())
    data_slot_.assign(
        static_cast<std::size_t>(nbanks_) * cfg_.geometry.rows, kNoSlot);
  std::uint32_t& slot = data_slot_[key];
  if (row_is_uniform(key)) {
    // Expand the uniform fill word (then its word exceptions), reusing the
    // row's old arena slot as the buffer when it has one.
    row_uniform_[key] = 0;
    if (slot == kNoSlot) {
      slot = static_cast<std::uint32_t>(data_arena_.size());
      data_arena_.emplace_back();
    }
    auto& words = data_arena_[slot];
    words.assign(cfg_.geometry.row_words(), uniform_fill_[key]);
    if (!exc_slot_.empty() && exc_slot_[key] != kNoSlot) {
      ExcList& exc = exc_arena_[exc_slot_[key]];
      for (const WordExc& e : exc.words) words[e.first] = e.second;
      exc.words.clear();
      exc.word_mask = 0;
    }
    return words;
  }
  if (slot == kNoSlot) {
    slot = static_cast<std::uint32_t>(data_arena_.size());
    const std::uint32_t logical = remap_.to_logical(prow);
    std::vector<std::uint64_t> words(cfg_.geometry.row_words());
    for (std::uint32_t w = 0; w < words.size(); ++w)
      words[w] = pattern_word(logical, w);
    data_arena_.push_back(std::move(words));
  }
  return data_arena_[slot];
}

void Device::flush_flip_batch(RowCtx& ctx, const WordExc* flips,
                              std::uint32_t n) {
  // Sparse path: a row backed by one repeated word (an explicit uniform
  // fill, or a deterministic background pattern) absorbs the flips as
  // per-word exceptions instead of expanding 8 KiB of storage — the common
  // memtest shape, where the victim is refilled (discarding the overlay)
  // every pass. Falls through to full materialization for kRandom-backed
  // rows and once a row exceeds kMaxExceptions flipped words. Entries are
  // merged in arrival (ascending-word) order, so the overlay ends up
  // byte-identical to per-word application.
  if (n == 0) return;
  std::uint32_t i = 0;
  if (!ctx.self.words && ctx.self.uniform) {
    const std::size_t fr = flat_row(ctx.fbank, ctx.prow);
    if (row_uniform_.empty()) {
      const std::size_t nr =
          static_cast<std::size_t>(nbanks_) * cfg_.geometry.rows;
      row_uniform_.assign(nr, 0);
      uniform_fill_.assign(nr, 0);
    }
    if (!row_uniform_[fr]) {
      // Promote a pattern-backed row: record its (uniform) pattern word so
      // the overlay owns the row's contents from here on.
      row_uniform_[fr] = 1;
      uniform_fill_[fr] = ctx.self.fill;
    }
    if (exc_slot_.empty())
      exc_slot_.assign(static_cast<std::size_t>(nbanks_) * cfg_.geometry.rows,
                       kNoSlot);
    std::uint32_t& eslot = exc_slot_[fr];
    if (eslot == kNoSlot) {
      eslot = static_cast<std::uint32_t>(exc_arena_.size());
      exc_arena_.emplace_back();
    }
    ExcList& exc = exc_arena_[eslot];
    for (; i < n; ++i) {
      const std::uint32_t word = flips[i].first;
      bool stored = false;
      for (WordExc& e : exc.words)
        if (e.first == word) {
          e.second ^= flips[i].second;
          stored = true;
          break;
        }
      if (stored) continue;
      if (exc.words.size() >= kMaxExceptions) break;  // overflow: materialize
      exc.words.push_back({word, ctx.self.fill ^ flips[i].second});
      exc.word_mask |= std::uint64_t{1} << (word & 63);
    }
    ctx.self.exc = exc.words.data();
    ctx.self.exc_n = static_cast<std::uint32_t>(exc.words.size());
    ctx.self.exc_mask = exc.word_mask;
    if (i == n) return;
  }
  auto& words = materialize(ctx.fbank, ctx.prow);
  // A pattern-backed row materializes on its first flip; later words in
  // this same commit pass must read the flipped storage, not the pattern.
  ctx.self.words = words.data();
  ctx.self.exc = nullptr;
  ctx.self.exc_n = 0;
  ctx.self.exc_mask = 0;
  for (; i < n; ++i) words[flips[i].first] ^= flips[i].second;
}

void Device::note_flip(RowCtx& ctx, std::uint32_t bit,
                       FlipMechanism mechanism, bool was_one, double stress,
                       double dpd_factor, Time now) {
  const bool disturb = mechanism == FlipMechanism::kDisturbance;
  if (disturb)
    ++stats_.disturb_flips;
  else
    ++stats_.retention_flips;
  if (was_one)
    ++stats_.flips_1to0;
  else
    ++stats_.flips_0to1;
  if (cfg_.record_flip_events) {
    if (events_.size() < kMaxEvents) {
      const FlipCause cause =
          disturb ? FlipCause::kDisturbance : FlipCause::kRetention;
      events_.push_back(FlipEvent{ctx.fbank, ctx.prow, ctx.logical, bit, cause,
                                  was_one, now});
    } else {
      ++stats_.flip_events_dropped;
    }
  }
  if (cfg_.observer) {
    FlipRecord rec;
    rec.fbank = ctx.fbank;
    rec.physical_row = ctx.prow;
    rec.logical_row = ctx.logical;
    rec.bit = bit;
    rec.mechanism = mechanism;
    rec.one_to_zero = was_one;
    if (ctx.up.present) rec.aggressor_up = ctx.up.logical;
    if (ctx.down.present) rec.aggressor_down = ctx.down.logical;
    rec.stress = stress;
    rec.dpd_factor = dpd_factor;
    rec.when = now;
    cfg_.observer->on_flip(rec);
  }
}

void Device::commit_disturbance(RowCtx& ctx, float stress, Time now) {
  // Bitplane kernel: cells are sorted by bit, so the loop walks the row in
  // 64-bit words — the three row views are loaded once per word, per-cell
  // consults become shift/masks, and the word's flips accumulate into one
  // XOR mask applied at word exit. Reading self through (word ^ mask)
  // reproduces the per-cell path exactly, including duplicate-bit cells
  // that must observe earlier flips of their own word; neighbour rows are
  // never modified during a commit, so their loaded words stay valid.
  // Neighbour words are loaded lazily: the pattern factor
  //   pf(a) = (1 - dpd) + dpd * (a / 2)
  // is monotone in the antiparallel-neighbour count a (each step appends a
  // larger addend to the same rounded first term, and rounding is
  // monotone), so stress*pf(0) >= thr proves the flip and
  // stress*pf(2) < thr refutes it without reading either neighbour row.
  // Both bounds are evaluated with the exact expression shapes of the full
  // formula, so the decision is bit-identical to always computing a. The
  // shortcut is only taken when no FlipObserver is attached — the observer
  // records the actual factor, which requires a.
  // Alongside the walk, the kernel rebuilds the row's dynamic disturbance
  // screen: the minimum hammer threshold among cells that END the walk
  // charged. pf <= 1 (+1 ulp), so a later restore with stress below that
  // bound cannot flip anything and skips the walk (see charged_min_thr_).
  // A cell seen discharged stays discharged unless its own bit flips later
  // in the walk — only a duplicate-bit cell can do that, and duplicates are
  // adjacent in the sorted list, so a flip whose neighbours share its bit
  // conservatively voids the screen for this row.
  const bool pf_always = cfg_.observer != nullptr;
  // With no event log and no observer a flip is three counter increments;
  // accumulate them locally and fold into stats_ once at walk exit.
  const bool log_flips = cfg_.record_flip_events || cfg_.observer != nullptr;
  std::uint64_t n10 = 0, n01 = 0;
  std::uint32_t cur = ~std::uint32_t{0};
  std::uint64_t sw = 0, uw = 0, dw = 0, mask = 0;
  bool nb_loaded = false;
  float live_min = std::numeric_limits<float>::max();
  bool screen_valid = true;
  constexpr std::uint32_t kBatch = 32;
  WordExc pending[kBatch];
  std::uint32_t npending = 0;
  const auto& cells = faults_.weak_cells(ctx.fbank, ctx.prow);
  const std::size_t ncells = cells.size();
  for (std::size_t i = 0; i < ncells; ++i) {
    const WeakCell& c = cells[i];
    const std::uint32_t w = c.bit >> 6;
    if (w != cur) {
      if (mask) {
        if (npending == kBatch) {
          flush_flip_batch(ctx, pending, npending);
          npending = 0;
        }
        pending[npending++] = {cur, mask};
      }
      mask = 0;
      cur = w;
      sw = view_word(ctx.self, w);
      nb_loaded = false;
    }
    const std::uint32_t sh = c.bit & 63;
    const bool value = (((sw ^ mask) >> sh) & 1) != 0;
    // Only a charged cell can lose charge: true cell stores 1 charged,
    // anti-cell stores 0 charged.
    const bool charged = (value != c.anti_cell);
    if (!charged) continue;
    const double dpd = c.dpd_sens;
    const double thr = c.threshold;
    const double s = stress;
    if (!pf_always) {
      if (s * ((1.0 - dpd) + dpd) < thr) {  // even pf(2) can't flip
        if (c.threshold < live_min) live_min = c.threshold;
        continue;
      }
      if (s * (1.0 - dpd) >= thr) {
        // Flips for every a; the factor is unobserved (no FlipObserver).
        mask ^= std::uint64_t{1} << sh;
        if (log_flips)
          note_flip(ctx, c.bit, FlipMechanism::kDisturbance, value, s, 0.0,
                    now);
        else
          value ? ++n10 : ++n01;
        if ((i > 0 && cells[i - 1].bit == c.bit) ||
            (i + 1 < ncells && cells[i + 1].bit == c.bit))
          screen_valid = false;
        continue;
      }
    }
    if (!nb_loaded) {
      resolve_neighbors(ctx);
      uw = ctx.up.present ? view_word(ctx.up, cur) : 0;
      dw = ctx.down.present ? view_word(ctx.down, cur) : 0;
      nb_loaded = true;
    }
    int a = 0;
    if (ctx.up.present && (((uw >> sh) & 1) != 0) != value) ++a;
    if (ctx.down.present && (((dw >> sh) & 1) != 0) != value) ++a;
    const double pattern_factor =
        (1.0 - dpd) + dpd * (static_cast<double>(a) / 2.0);
    if (s * pattern_factor >= thr) {
      mask ^= std::uint64_t{1} << sh;
      if (log_flips)
        note_flip(ctx, c.bit, FlipMechanism::kDisturbance, value, s,
                  pattern_factor, now);
      else
        value ? ++n10 : ++n01;
      if ((i > 0 && cells[i - 1].bit == c.bit) ||
          (i + 1 < ncells && cells[i + 1].bit == c.bit))
        screen_valid = false;
    } else if (c.threshold < live_min) {
      live_min = c.threshold;
    }
  }
  if (mask) {
    if (npending == kBatch) {
      flush_flip_batch(ctx, pending, npending);
      npending = 0;
    }
    pending[npending++] = {cur, mask};
  }
  flush_flip_batch(ctx, pending, npending);
  stats_.disturb_flips += n10 + n01;
  stats_.flips_1to0 += n10;
  stats_.flips_0to1 += n01;
  charged_min_thr_[flat_row(ctx.fbank, ctx.prow)] =
      screen_valid ? live_min : 0.0f;
}

void Device::commit_retention(RowCtx& ctx, double dt_ms, Time now) {
  // Same bitplane walk as commit_disturbance (cells sorted by bit). The
  // per-cell VRT evolution must still run for every cell in order — it
  // consumes the device RNG stream — but the storage consults are word
  // loads + shifts and the flips flush per word.
  const double dpd_strength = cfg_.reliability.retention_dpd_strength;
  resolve_neighbors(ctx);  // the retention DPD factor always consults them
  std::uint32_t cur = ~std::uint32_t{0};
  std::uint64_t sw = 0, uw = 0, dw = 0, mask = 0;
  constexpr std::uint32_t kBatch = 32;
  WordExc pending[kBatch];
  std::uint32_t npending = 0;
  for (LeakyCell& c : faults_.leaky_cells(ctx.fbank, ctx.prow)) {
    // Evolve the VRT state over the elapsed interval (memoryless process).
    if (c.vrt) {
      const double p_switch =
          1.0 - std::exp(-cfg_.reliability.vrt_rate_hz * dt_ms * 1e-3);
      if (rng_.bernoulli(p_switch)) c.vrt_low = !c.vrt_low;
    }
    const std::uint32_t w = c.bit >> 6;
    if (w != cur) {
      if (mask) {
        if (npending == kBatch) {
          flush_flip_batch(ctx, pending, npending);
          npending = 0;
        }
        pending[npending++] = {cur, mask};
      }
      mask = 0;
      cur = w;
      sw = view_word(ctx.self, w);
      uw = ctx.up.present ? view_word(ctx.up, w) : 0;
      dw = ctx.down.present ? view_word(ctx.down, w) : 0;
    }
    const std::uint32_t sh = c.bit & 63;
    const bool value = (((sw ^ mask) >> sh) & 1) != 0;
    const bool charged = (value != c.anti_cell);
    if (!charged) continue;
    int a = 0;
    if (ctx.up.present && (((uw >> sh) & 1) != 0) != value) ++a;
    if (ctx.down.present && (((dw >> sh) & 1) != 0) != value) ++a;
    const double dpd_factor =
        1.0 - dpd_strength * c.dpd_sens * (static_cast<double>(a) / 2.0);
    const double base =
        (c.vrt && !c.vrt_low) ? c.retention_high_ms : c.retention_ms;
    if (dt_ms > base * dpd_factor) {
      mask ^= std::uint64_t{1} << sh;
      note_flip(ctx, c.bit,
                c.vrt ? FlipMechanism::kVrtRetention
                      : FlipMechanism::kRetention,
                value, 0.0, dpd_factor, now);
    }
  }
  if (mask) {
    if (npending == kBatch) {
      flush_flip_batch(ctx, pending, npending);
      npending = 0;
    }
    pending[npending++] = {cur, mask};
  }
  flush_flip_batch(ctx, pending, npending);
}

void Device::restore_row(std::uint32_t fbank, std::uint32_t prow, Time now) {
  const std::size_t fr = flat_row(fbank, prow);
  const float stress = stress_[fr];
  const double dt_ms = (now - last_restore_[fr]).as_ms();
  // Same commit gating as always, hoisted: retention runs iff time elapsed
  // and the row has leaky cells, disturbance iff stress is pending and the
  // row has weak cells. The overwhelmingly common case — neither — never
  // resolves row data at all.
  const bool do_ret = faults_.row_has_leaky(fbank, prow) && dt_ms > 0.0;
  const bool dist_candidate = stress > 0.0f && faults_.row_has_weak(fbank, prow);
  // Dynamic screen: the last disturbance walk recorded the minimum hammer
  // threshold among this row's still-charged weak cells; a stress below it
  // (with a 1e-6 margin dominating the <=1-ulp pattern-factor rounding
  // headroom above 1.0) provably flips nothing, so the walk is skipped.
  // Retention flips change the charge set, so the screen is re-read after
  // commit_retention (which voids it when it flipped anything).
  if (do_ret) {
    RowCtx ctx = make_row_ctx(fbank, prow);
    const std::uint64_t ret_before = stats_.retention_flips;
    commit_retention(ctx, dt_ms, now);
    if (stats_.retention_flips != ret_before) charged_min_thr_[fr] = 0.0f;
    if (dist_candidate && !disturb_screened(fr, stress) &&
        faults_.disturb_possible(fbank, prow, stress))
      commit_disturbance(ctx, stress, now);
  } else if (dist_candidate && !disturb_screened(fr, stress) &&
             faults_.disturb_possible(fbank, prow, stress)) {
    RowCtx ctx = make_row_ctx(fbank, prow);
    commit_disturbance(ctx, stress, now);
  }
  stress_[fr] = 0.0f;
  last_restore_[fr] = now;
}

void Device::disturb_neighbors(std::uint32_t fbank, std::uint32_t prow,
                               float count) {
  const std::uint32_t rows = cfg_.geometry.rows;
  if (prow > 0) stress_[flat_row(fbank, prow - 1)] += count;
  if (prow + 1 < rows) stress_[flat_row(fbank, prow + 1)] += count;
  const auto d2 = static_cast<float>(cfg_.reliability.distance2_weight);
  if (d2 > 0.0f) {
    if (prow > 1) stress_[flat_row(fbank, prow - 2)] += d2 * count;
    if (prow + 2 < rows) stress_[flat_row(fbank, prow + 2)] += d2 * count;
  }
}

void Device::activate(std::uint32_t fbank, std::uint32_t row, Time now) {
  DM_CHECK_MSG(fbank < nbanks_, "bank index out of range");
  DM_CHECK_MSG(row < cfg_.geometry.rows, "row index out of range");
  DM_CHECK_MSG(open_row_[fbank] < 0, "ACT on a bank with an open row");
  const std::uint32_t prow = remap_.to_physical(row);
  // Activation restores the row's own charge (committing anything already
  // lost) ...
  restore_row(fbank, prow, now);
  // ... and disturbs its physical neighbours.
  disturb_neighbors(fbank, prow, 1.0f);
  open_row_[fbank] = row;
  ++stats_.activates;
}

void Device::hammer(std::uint32_t fbank, std::uint32_t row,
                    std::uint64_t count, Time now) {
  DM_CHECK_MSG(fbank < nbanks_, "bank index out of range");
  DM_CHECK_MSG(row < cfg_.geometry.rows, "row index out of range");
  DM_CHECK_MSG(open_row_[fbank] < 0, "hammer on a bank with an open row");
  if (count == 0) return;
  const std::uint32_t prow = remap_.to_physical(row);
  restore_row(fbank, prow, now);
  disturb_neighbors(fbank, prow, static_cast<float>(count));
  stats_.activates += count;
  stats_.precharges += count;
}

void Device::precharge(std::uint32_t fbank, Time) {
  DM_CHECK_MSG(fbank < nbanks_, "bank index out of range");
  open_row_[fbank] = -1;
  ++stats_.precharges;
}

std::optional<std::uint32_t> Device::open_row(std::uint32_t fbank) const {
  DM_CHECK_MSG(fbank < nbanks_, "bank index out of range");
  if (open_row_[fbank] < 0) return std::nullopt;
  return static_cast<std::uint32_t>(open_row_[fbank]);
}

std::uint64_t Device::read_word(std::uint32_t fbank, std::uint32_t col_word) {
  DM_CHECK_MSG(open_row_[fbank] >= 0, "RD on a precharged bank");
  DM_CHECK_MSG(col_word < cfg_.geometry.row_words(), "column out of range");
  const std::uint32_t prow =
      remap_.to_physical(static_cast<std::uint32_t>(open_row_[fbank]));
  ++stats_.reads;
  const std::size_t fr = flat_row(fbank, prow);
  if (row_is_uniform(fr)) return uniform_word(fr, col_word);
  if (const std::vector<std::uint64_t>* row = stored_row(fr))
    return (*row)[col_word];
  return pattern_word(static_cast<std::uint32_t>(open_row_[fbank]), col_word);
}

void Device::write_word(std::uint32_t fbank, std::uint32_t col_word,
                        std::uint64_t value) {
  DM_CHECK_MSG(open_row_[fbank] >= 0, "WR on a precharged bank");
  DM_CHECK_MSG(col_word < cfg_.geometry.row_words(), "column out of range");
  const std::uint32_t prow =
      remap_.to_physical(static_cast<std::uint32_t>(open_row_[fbank]));
  materialize(fbank, prow)[col_word] = value;
  charged_min_thr_[flat_row(fbank, prow)] = 0.0f;
  ++stats_.writes;
}

std::uint64_t Device::run_stream(const AccessStream& s, std::uint64_t max_acts,
                                 Time& now, Time slot_dt) {
  const std::uint32_t fbank = s.fbank();
  DM_CHECK_MSG(fbank < nbanks_, "stream bank out of range");
  DM_CHECK_MSG(open_row_[fbank] < 0, "stream on a bank with an open row");
  if (s.acts_per_pass() == 0 || max_acts == 0) return 0;
  const auto& touched = s.touched();
  // Static per-row classification, once per run: rows with neither weak nor
  // leaky cells always skip their restore (it was always a pure
  // stress-reset); leaky rows never skip (retention consumes device RNG);
  // weak rows consult the screens once per pass against the padded bound.
  enum class Cls : std::uint8_t { kAlways, kBound, kNever };
  std::vector<Cls> cls(touched.size());
  for (std::size_t u = 0; u < touched.size(); ++u) {
    const std::uint32_t p = touched[u].prow;
    cls[u] = faults_.row_has_leaky(fbank, p)  ? Cls::kNever
             : faults_.row_has_weak(fbank, p) ? Cls::kBound
                                              : Cls::kAlways;
  }
  std::vector<std::uint8_t> skip(touched.size());
  std::uint64_t issued = 0;
  while (true) {
    // Per-(row, pass) screen. Sound for the whole pass: stress only grows
    // between a row's restores, every in-pass deposit is counted in
    // pass_stress, and a skipped row's contents cannot change during the
    // pass (no commits run on it, and it has no leaky cells), so the
    // dynamic screen's bound stays valid too.
    for (std::size_t u = 0; u < touched.size(); ++u) {
      if (cls[u] == Cls::kAlways) {
        skip[u] = 1;
      } else if (cls[u] == Cls::kNever) {
        skip[u] = 0;
      } else {
        const std::uint32_t p = touched[u].prow;
        const float bound = AccessStream::pass_bound(
            stress_[flat_row(fbank, p)], touched[u].pass_stress);
        skip[u] = disturb_provably_clean(fbank, p, bound) ? 1 : 0;
      }
    }
    for (const AccessStream::Slot& sl : s.slots()) {
      if (issued == max_acts) return issued;
      if (sl.logical == AccessStream::kIdle) {
        now += slot_dt;
        continue;
      }
      activate_compiled(fbank, sl.logical, sl.prow, skip[sl.urow] != 0, now);
      precharge(fbank, now);
      now += slot_dt;
      ++issued;
    }
  }
}

void Device::refresh_next(std::uint32_t fbank, std::uint32_t count, Time now) {
  DM_CHECK_MSG(fbank < nbanks_, "bank index out of range");
  DM_CHECK_MSG(open_row_[fbank] < 0, "REF on a bank with an open row");
  const std::uint32_t rows = cfg_.geometry.rows;
  std::uint32_t p = refresh_ptr_[fbank];
  for (std::uint32_t i = 0; i < count; ++i) {
    // A row refresh is internally an activation: it restores this row and
    // disturbs its neighbours (one unit per window from the sweep — far
    // below any threshold, but the physics is uniform).
    restore_row(fbank, p, now);
    disturb_neighbors(fbank, p, 1.0f);
    p = (p + 1 == rows) ? 0 : p + 1;
  }
  refresh_ptr_[fbank] = p;
  stats_.row_refreshes += count;
}

void Device::refresh_row(std::uint32_t fbank, std::uint32_t row, Time now) {
  DM_CHECK_MSG(fbank < nbanks_, "bank index out of range");
  DM_CHECK_MSG(row < cfg_.geometry.rows, "row index out of range");
  const std::uint32_t prow = remap_.to_physical(row);
  restore_row(fbank, prow, now);
  // Targeted refreshes activate the row too: a mitigation that refreshes
  // victims aggressively becomes an aggressor one row further out — the
  // Half-Double effect the E7 bench demonstrates against TRR.
  disturb_neighbors(fbank, prow, 1.0f);
  ++stats_.targeted_refreshes;
}

void Device::fill_all(BackgroundPattern pattern, Time now) {
  cfg_.pattern = pattern;
  data_slot_.clear();
  data_arena_.clear();
  row_uniform_.clear();
  uniform_fill_.clear();
  exc_slot_.clear();
  exc_arena_.clear();
  std::fill(stress_.begin(), stress_.end(), 0.0f);
  std::fill(last_restore_.begin(), last_restore_.end(), now);
  std::fill(charged_min_thr_.begin(), charged_min_thr_.end(), 0.0f);
}

void Device::fill_row(std::uint32_t fbank, std::uint32_t row,
                      const std::vector<std::uint64_t>& words, Time now) {
  DM_CHECK_MSG(words.size() == cfg_.geometry.row_words(),
               "fill_row size mismatch");
  const std::uint32_t prow = remap_.to_physical(row);
  restore_row(fbank, prow, now);
  const std::size_t key = flat_row(fbank, prow);
  charged_min_thr_[key] = 0.0f;  // refilled content recharges cells
  // Uniform fast path: memtest patterns repeat one word across the row, so
  // store that word instead of copying 8 KiB (the source is hot, the scan
  // is cheap; expansion is deferred to the first flip or word write).
  // Self-overlap compare: the row is uniform iff every word equals its
  // successor, which one libc-vectorized memcmp checks — and which bails
  // within the first few bytes on random data.
  const bool uniform = std::memcmp(words.data(), words.data() + 1,
                                   (words.size() - 1) * sizeof(words[0])) == 0;
  if (uniform) {
    set_uniform_row(key, words[0]);
    return;
  }
  if (!row_uniform_.empty()) row_uniform_[key] = 0;
  clear_exceptions(key);
  // Write straight into the arena: a first-touch row is overwritten whole,
  // so skip materialize()'s pattern fill.
  if (data_slot_.empty())
    data_slot_.assign(
        static_cast<std::size_t>(nbanks_) * cfg_.geometry.rows, kNoSlot);
  std::uint32_t& slot = data_slot_[key];
  if (slot == kNoSlot) {
    slot = static_cast<std::uint32_t>(data_arena_.size());
    data_arena_.push_back(words);
  } else {
    data_arena_[slot] = words;
  }
}

void Device::fill_row(std::uint32_t fbank, std::uint32_t row,
                      std::uint64_t fill_word, Time now) {
  const std::uint32_t prow = remap_.to_physical(row);
  restore_row(fbank, prow, now);
  const std::size_t fr = flat_row(fbank, prow);
  charged_min_thr_[fr] = 0.0f;  // refilled content recharges cells
  set_uniform_row(fr, fill_word);
}

std::vector<std::uint64_t> Device::snapshot_row(std::uint32_t fbank,
                                                std::uint32_t row) const {
  std::vector<std::uint64_t> words;
  snapshot_row(fbank, row, words);
  return words;
}

void Device::snapshot_row(std::uint32_t fbank, std::uint32_t row,
                          std::vector<std::uint64_t>& out) const {
  const std::uint32_t prow = remap_.to_physical(row);
  const std::size_t fr = flat_row(fbank, prow);
  if (row_is_uniform(fr)) {
    out.assign(cfg_.geometry.row_words(), uniform_fill_[fr]);
    if (!exc_slot_.empty() && exc_slot_[fr] != kNoSlot)
      for (const WordExc& e : exc_arena_[exc_slot_[fr]].words)
        out[e.first] = e.second;
    return;
  }
  if (const std::vector<std::uint64_t>* r = stored_row(fr)) {
    out = *r;
    return;
  }
  out.resize(cfg_.geometry.row_words());
  for (std::uint32_t w = 0; w < out.size(); ++w)
    out[w] = pattern_word(row, w);
}

}  // namespace densemem::dram
