#include "dram/access_stream.h"

#include <unordered_map>

#include "common/check.h"
#include "dram/device.h"

namespace densemem::dram {

AccessStream::AccessStream(const Device& dev, std::uint32_t fbank,
                           const std::vector<std::uint32_t>& slots)
    : fbank_(fbank) {
  const Geometry& geo = dev.geometry();
  DM_CHECK_MSG(fbank < total_banks(geo), "stream bank out of range");
  std::unordered_map<std::uint32_t, std::uint32_t> index_of;  // prow -> urow
  slots_.reserve(slots.size());
  for (std::uint32_t lr : slots) {
    if (lr == kIdle) {
      slots_.push_back(Slot{kIdle, kIdle, kIdle});
      continue;
    }
    DM_CHECK_MSG(lr < geo.rows, "stream row out of range");
    const std::uint32_t p = dev.remap().to_physical(lr);
    const auto [it, fresh] = index_of.try_emplace(
        p, static_cast<std::uint32_t>(touched_.size()));
    if (fresh) touched_.push_back(TouchedRow{p, 0, 0.0});
    ++touched_[it->second].acts;
    slots_.push_back(Slot{lr, p, it->second});
    ++acts_per_pass_;
  }
  // Stress one pass deposits on each activated row: the disturb_neighbors
  // weights, scattered from every activated row's per-pass count. Only
  // activated rows need totals — rows the stream never activates are never
  // restored by it, so their stress simply accumulates as it would under
  // the per-ACT path.
  const double d2 = dev.config().reliability.distance2_weight;
  const auto deposit = [&](std::int64_t q, double w) {
    if (q < 0 || q >= static_cast<std::int64_t>(geo.rows)) return;
    const auto it = index_of.find(static_cast<std::uint32_t>(q));
    if (it != index_of.end()) touched_[it->second].pass_stress += w;
  };
  for (std::size_t u = 0; u < touched_.size(); ++u) {
    const std::int64_t p = touched_[u].prow;
    const double n = static_cast<double>(touched_[u].acts);
    deposit(p - 1, n);
    deposit(p + 1, n);
    if (d2 > 0.0) {
      deposit(p - 2, d2 * n);
      deposit(p + 2, d2 * n);
    }
  }
}

}  // namespace densemem::dram
