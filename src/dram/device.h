// Command-level DRAM device model with disturbance (RowHammer) and
// retention fault injection.
//
// The device is the substitution for the paper's FPGA-tested real modules:
// it executes ACT / PRE / RD / WR / REF semantics and lets the configured
// fault models corrupt stored data exactly where real chips would —
// committed at charge-restore events (activation or refresh of the victim
// row), dependent on stored data patterns, and only in the charge-losing
// direction of each cell's orientation.
//
// Timing is *not* enforced here (the memory controller owns inter-command
// timing); the device enforces protocol legality (ACT on a closed bank,
// RD/WR on the open row) and physics.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/units.h"
#include "dram/faultmap.h"
#include "dram/flip_observer.h"
#include "dram/geometry.h"
#include "dram/reliability.h"
#include "dram/remap.h"

namespace densemem::dram {

class AccessStream;

enum class FlipCause { kDisturbance, kRetention };

struct FlipEvent {
  std::uint32_t bank;       ///< flat bank index
  std::uint32_t physical_row;
  std::uint32_t logical_row;
  std::uint32_t bit;        ///< bit index within the row
  FlipCause cause;
  bool one_to_zero;         ///< direction of the flip
  Time when;
};

struct DeviceStats {
  std::uint64_t activates = 0;
  std::uint64_t precharges = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t row_refreshes = 0;     ///< rows restored by REF
  std::uint64_t targeted_refreshes = 0;///< rows restored by targeted refresh
  std::uint64_t disturb_flips = 0;
  std::uint64_t retention_flips = 0;
  std::uint64_t flips_1to0 = 0;
  std::uint64_t flips_0to1 = 0;
  /// Flip events discarded once the capped event log filled. Surfaced so a
  /// truncated flip_events() can never masquerade as a complete record.
  std::uint64_t flip_events_dropped = 0;
};

/// Deterministic background data: what a row reads as before software ever
/// writes it (and the reference pattern for memtest-style experiments).
enum class BackgroundPattern { kZeros, kOnes, kCheckerboard, kRowStripe, kRandom };

/// Deterministic 64-bit word of a background pattern at (row, col_word).
/// Free function so testers can regenerate reference data independently of
/// any particular device instance.
std::uint64_t pattern_word_value(BackgroundPattern pat, std::uint64_t seed,
                                 std::uint32_t row, std::uint32_t col_word);
/// Single-bit variant (bit index within the row).
bool pattern_bit_value(BackgroundPattern pat, std::uint64_t seed,
                       std::uint32_t row, std::uint32_t bit);

struct DeviceConfig {
  Geometry geometry;
  ReliabilityParams reliability;
  RemapScheme remap = RemapScheme::kIdentity;
  std::uint64_t seed = 1;
  BackgroundPattern pattern = BackgroundPattern::kZeros;
  bool record_flip_events = false;  ///< keep a per-flip event log (capped)
  /// Optional provenance sink: every committed flip is reported with its
  /// mechanism, aggressors, stress, and DPD factor. Null (the default) costs
  /// one pointer test per flip — activations that flip nothing never touch it.
  FlipObserver* observer = nullptr;
};

class Device {
 public:
  explicit Device(DeviceConfig cfg);

  const Geometry& geometry() const { return cfg_.geometry; }
  const DeviceConfig& config() const { return cfg_; }
  const DeviceStats& stats() const { return stats_; }
  const std::vector<FlipEvent>& flip_events() const { return events_; }
  FaultMap& fault_map() { return faults_; }
  const FaultMap& fault_map() const { return faults_; }
  const RowRemap& remap() const { return remap_; }

  // --- Command interface (logical rows; called by the controller) ---------
  void activate(std::uint32_t fbank, std::uint32_t row, Time now);
  void precharge(std::uint32_t fbank, Time now);
  std::uint64_t read_word(std::uint32_t fbank, std::uint32_t col_word);
  void write_word(std::uint32_t fbank, std::uint32_t col_word,
                  std::uint64_t value);
  /// Open row of a bank, or nullopt if precharged.
  std::optional<std::uint32_t> open_row(std::uint32_t fbank) const;

  /// Bulk hammer: exactly equivalent to `count` ACT/PRE pairs on `row`
  /// back-to-back starting at `now` (stress accumulation is linear, and the
  /// aggressor's own state does not change after the first restore), but
  /// O(1) instead of O(count). Keeps million-activation refresh windows
  /// tractable; the per-ACT path remains available for mitigation studies
  /// that must observe every activation. Bank must be precharged.
  void hammer(std::uint32_t fbank, std::uint32_t row, std::uint64_t count,
              Time now);

  /// Compiled-stream activation: the stream compiler already resolved the
  /// physical row and proved (or not) that this activation's charge restore
  /// cannot commit anything. With `skip_restore` the restore collapses to
  /// resetting stress and stamping last_restore — exactly what restore_row
  /// does for a row whose disturbance screen rejects and that has no leaky
  /// cells. Callers (AccessStream executors) own that proof; `prow` must be
  /// remap().to_physical(logical).
  void activate_compiled(std::uint32_t fbank, std::uint32_t logical,
                         std::uint32_t prow, bool skip_restore, Time now) {
    DM_DCHECK(fbank < nbanks_ && logical < cfg_.geometry.rows);
    DM_DCHECK(remap_.to_physical(logical) == prow);
    DM_DCHECK(open_row_[fbank] < 0);
    if (skip_restore) {
      const std::size_t fr = flat_row(fbank, prow);
      stress_[fr] = 0.0f;
      last_restore_[fr] = now;
    } else {
      restore_row(fbank, prow, now);
    }
    disturb_neighbors(fbank, prow, 1.0f);
    open_row_[fbank] = logical;
    ++stats_.activates;
  }

  /// Execute up to `max_acts` activations of a compiled stream directly on
  /// the device (no controller): per pass, each non-idle slot is exactly one
  /// activate(fbank, logical, now) + precharge(fbank, now) pair and every
  /// slot (idle or not) advances `now` by `slot_dt`. Bit-identical to that
  /// per-slot loop; the speedup comes from the per-(row, pass) disturbance
  /// screen (one FaultMap::disturb_possible consult instead of one per
  /// activation) and the precompiled physical rows. Returns activations
  /// issued; a stream with no ACT slots returns 0 immediately.
  std::uint64_t run_stream(const AccessStream& s, std::uint64_t max_acts,
                           Time& now, Time slot_dt);

  /// Stream-executor screen: true when a charge restore of the row at
  /// `stress` provably commits no disturbance flip — either the static
  /// fault-map screen (stress below the row's minimum hammer threshold) or
  /// the dynamic charged-cell screen rejects it. Callers pass a stress
  /// UPPER BOUND; both screens are monotone, so clearing the bound clears
  /// every actual value below it.
  bool disturb_provably_clean(std::uint32_t fbank, std::uint32_t prow,
                              float stress) const {
    return !faults_.disturb_possible(fbank, prow, stress) ||
           disturb_screened(flat_row(fbank, prow), stress);
  }

  /// Auto-refresh step: restores the next `count` physical rows of the bank
  /// (device-internal pointer, wrapping), as one REF command would.
  void refresh_next(std::uint32_t fbank, std::uint32_t count, Time now);
  /// Targeted refresh of one logical row (PARA / neighbour-refresh
  /// mitigations; the "targeted refresh command" of §II-C). Bank must be
  /// precharged. Commits pending faults, then restores charge.
  void refresh_row(std::uint32_t fbank, std::uint32_t row, Time now);

  // --- Bulk data helpers ---------------------------------------------------
  /// Reset all stored data to the background pattern and clear fault state
  /// (stress, VRT timers). Restores every row at time `now`.
  void fill_all(BackgroundPattern pattern, Time now);
  /// Write a full row (via an implicit activate/precharge-free path used by
  /// testers; commits pending faults first like a real write burst would).
  void fill_row(std::uint32_t fbank, std::uint32_t row,
                const std::vector<std::uint64_t>& words, Time now);
  /// Uniform-fill variant: equivalent to fill_row() with `fill_word`
  /// repeated across the row, but O(1) — the device stores the word itself.
  /// Memtest kernels refilling victims with ones/zeros/stripe rows use this
  /// to skip both the 8 KiB copy and the uniformity scan.
  void fill_row(std::uint32_t fbank, std::uint32_t row,
                std::uint64_t fill_word, Time now);
  /// Side-effect-free view of the *stored* row contents (pending — not yet
  /// committed — faults are not applied; read via activate() to realize them).
  std::vector<std::uint64_t> snapshot_row(std::uint32_t fbank,
                                          std::uint32_t row) const;
  /// Allocation-free variant: writes the row into `out` (resized to
  /// row_words()). Testers that snapshot thousands of rows per run reuse
  /// one buffer instead of constructing a vector per call.
  void snapshot_row(std::uint32_t fbank, std::uint32_t row,
                    std::vector<std::uint64_t>& out) const;
  /// The value the row would hold if no fault had ever occurred and software
  /// never wrote it (background pattern reference).
  std::uint64_t pattern_word(std::uint32_t row, std::uint32_t col_word) const;

  /// Physically-adjacent logical rows (what the SPD adjacency table would
  /// disclose). Whether a mitigation is *allowed* to use this is controller
  /// policy, mirroring the paper's PARA deployment discussion.
  std::vector<std::uint32_t> spd_neighbors(std::uint32_t row) const {
    return remap_.physical_neighbors(row);
  }

  /// Accumulated hammer stress of a physical row (test/diagnostic hook).
  double stress_of_physical(std::uint32_t fbank, std::uint32_t prow) const {
    return stress_[flat_row(fbank, prow)];
  }

 private:
  /// Resolved view of one physical row for a commit pass: either a pointer
  /// into materialized storage, or — for rows software never wrote — the
  /// background pattern. Every deterministic pattern repeats a single
  /// 64-bit word across the row (only the row's parity matters), so the
  /// view carries that word and a bit read is a shift/mask; kRandom falls
  /// back to the per-(row, word) hash.
  /// One overridden word of a uniform row: (word index, stored value).
  using WordExc = std::pair<std::uint32_t, std::uint64_t>;
  /// Exception overlay of one uniform row. `word_mask` hashes each entry's
  /// word index into bit (word % 64): a cleared bit proves the word is not
  /// overridden, so the common consult never scans the list.
  struct ExcList {
    std::uint64_t word_mask = 0;
    std::vector<WordExc> words;
  };

  struct RowView {
    const std::uint64_t* words = nullptr;  ///< materialized storage
    const WordExc* exc = nullptr;  ///< uniform-row word exceptions
    std::uint32_t exc_n = 0;
    std::uint64_t exc_mask = 0;    ///< word-occupancy hash of `exc`
    std::uint64_t fill = 0;     ///< uniform pattern word when !words
    std::uint32_t logical = 0;  ///< for the kRandom fallback
    bool uniform = false;       ///< deterministic (non-kRandom) pattern
    bool present = false;       ///< row exists (bank-edge neighbours don't)
  };
  /// Views of a row and its two neighbours for one commit pass. The commit
  /// kernels consult stored bits of (row-1, row, row+1) once per 64-bit
  /// word; resolving the three storage lookups here turns each consult into
  /// a pointer or pattern-word read. Arena rows are pointer-stable under
  /// insertion and only the self row is flipped during a commit, so the
  /// neighbour views stay valid across flush_flip_mask(), which refreshes
  /// `self` when it materializes a pattern-backed row.
  struct RowCtx {
    std::uint32_t fbank = 0, prow = 0;
    std::uint32_t logical = 0;
    RowView self, up, down;  ///< up = prow - 1, down = prow + 1
    /// Neighbour views are resolved on demand: a commit pass that never
    /// consults neighbour data (every cell decided by the pattern-factor
    /// bounds, or skipped as discharged) pays nothing for them.
    bool neighbors_resolved = false;
  };

  std::size_t flat_row(std::uint32_t fbank, std::uint32_t prow) const {
    DM_DCHECK(fbank < nbanks_ && prow < cfg_.geometry.rows);
    return static_cast<std::size_t>(fbank) * cfg_.geometry.rows + prow;
  }
  bool pattern_bit(std::uint32_t logical_row, std::uint32_t bit) const;
  /// Stored bit via a resolved row view.
  bool view_bit(const RowView& v, std::uint32_t bit) const {
    if (v.words) return (v.words[bit / 64] >> (bit % 64)) & 1;
    if (v.uniform) return (view_word(v, bit / 64) >> (bit % 64)) & 1;
    return pattern_bit(v.logical, bit);
  }
  /// Whole stored 64-bit word of a resolved row view — the bitplane commit
  /// kernels load the three views once per word and read cells by shift.
  std::uint64_t view_word(const RowView& v, std::uint32_t w) const {
    if (v.words) return v.words[w];
    if (v.uniform) {
      if ((v.exc_mask >> (w & 63)) & 1)
        for (std::uint32_t i = 0; i < v.exc_n; ++i)
          if (v.exc[i].first == w) return v.exc[i].second;
      return v.fill;
    }
    return pattern_word_value(cfg_.pattern, cfg_.seed, v.logical, w);
  }
  RowCtx make_row_ctx(std::uint32_t fbank, std::uint32_t prow) const;
  void resolve_row_view(RowView& v, std::uint32_t fbank,
                        std::uint32_t p) const;
  /// Fill in ctx.up / ctx.down (no-op if already resolved).
  void resolve_neighbors(RowCtx& ctx) const;
  /// Materialized words of a flat row, or nullptr if still pattern-backed.
  /// Callers must check row_is_uniform() first: a uniform flag overrides
  /// whatever the arena slot holds.
  const std::vector<std::uint64_t>* stored_row(std::size_t fr) const {
    if (data_slot_.empty()) return nullptr;
    const std::uint32_t slot = data_slot_[fr];
    return slot == kNoSlot ? nullptr : &data_arena_[slot];
  }
  /// Row currently stored as a single repeated fill word?
  bool row_is_uniform(std::size_t fr) const {
    return !row_uniform_.empty() && row_uniform_[fr] != 0;
  }
  /// Mark a row uniform with `fill_word` (discarding any word exceptions).
  void set_uniform_row(std::size_t fr, std::uint64_t fill_word);
  void clear_exceptions(std::size_t fr);
  /// Stored word of a uniform row, honouring its exception overlay.
  std::uint64_t uniform_word(std::size_t fr, std::uint32_t w) const {
    if (!exc_slot_.empty() && exc_slot_[fr] != kNoSlot)
      for (const WordExc& e : exc_arena_[exc_slot_[fr]].words)
        if (e.first == w) return e.second;
    return uniform_fill_[fr];
  }
  std::vector<std::uint64_t>& materialize(std::uint32_t fbank,
                                          std::uint32_t prow);
  /// Commit pending disturbance + retention faults of a physical row, then
  /// restore its charge (reset stress, stamp last_restore). Builds the row
  /// context only when a commit will actually run (the common case — a row
  /// with no pending stress and no faults — touches nothing but the flat
  /// stress/last_restore arrays).
  void restore_row(std::uint32_t fbank, std::uint32_t prow, Time now);
  /// True when the dynamic per-row screen proves `stress` cannot flip any
  /// still-charged weak cell (see charged_min_thr_). 0 means unknown.
  bool disturb_screened(std::size_t fr, float stress) const {
    const float bound = charged_min_thr_[fr];
    return bound != 0.0f && static_cast<double>(stress) <
                                static_cast<double>(bound) * 0.999999;
  }
  void commit_disturbance(RowCtx& ctx, float stress, Time now);
  void commit_retention(RowCtx& ctx, double dt_ms, Time now);
  /// Record one flip's stats / event / observer output. Storage is NOT
  /// touched here: the commit kernels accumulate flips of a word into one
  /// mask and apply it via flush_flip_mask at word exit.
  void note_flip(RowCtx& ctx, std::uint32_t bit, FlipMechanism mechanism,
                 bool was_one, double stress, double dpd_factor, Time now);
  /// Apply a commit pass's accumulated per-word flip masks to the row in one
  /// batch (materializing a pattern-backed row first and refreshing
  /// ctx.self). Words arrive in ascending order, matching what per-word
  /// application would have produced; later words of the same commit never
  /// re-read earlier words (same-word reads go through the live mask), so
  /// deferring the application to commit exit is exact.
  void flush_flip_batch(RowCtx& ctx, const WordExc* flips, std::uint32_t n);
  /// Add `count` activations' worth of disturbance around a physical row.
  void disturb_neighbors(std::uint32_t fbank, std::uint32_t prow, float count);

  DeviceConfig cfg_;
  std::uint32_t nbanks_;
  FaultMap faults_;
  RowRemap remap_;
  Rng rng_;  ///< device-level randomness (VRT transitions)
  DeviceStats stats_;
  std::vector<FlipEvent> events_;

  // Per-bank open row (-1 = precharged) and auto-refresh pointer.
  std::vector<std::int64_t> open_row_;
  std::vector<std::uint32_t> refresh_ptr_;
  // Flat per-(bank, physical row) state.
  std::vector<float> stress_;       ///< weighted aggressor activations
  std::vector<Time> last_restore_;  ///< last charge restore
  /// Dynamic disturbance screen: after a disturbance commit, the minimum
  /// hammer threshold among the row's still-charged weak cells (FLT_MAX if
  /// none remain charged; 0 = unknown). A later restore whose stress is
  /// below this bound — with a 1e-6 margin covering the <=1-ulp rounding
  /// headroom of the pattern factor above 1.0 — provably commits nothing
  /// and skips the cell walk entirely. Any write to the row's contents
  /// (fill, word write, retention flip) resets the bound to unknown.
  std::vector<float> charged_min_thr_;
  // Materialized row data: a direct-mapped slot index per flat row
  // (allocated lazily on first materialization — pattern-only workloads
  // never pay for it) into a pointer-stable arena. Row lookups on the
  // commit path are two array reads instead of a hash probe.
  std::vector<std::uint32_t> data_slot_;
  std::deque<std::vector<std::uint64_t>> data_arena_;
  // Uniform-row overlay: a fill_row() whose source repeats one 64-bit word
  // (every memtest pattern — ones, zeros, stripes — does) stores just that
  // word instead of copying the whole row. The flag overrides any arena
  // slot, whose stale words are reused as the expansion buffer when the row
  // eventually materializes. Flips on a uniform row (and on rows still
  // backed by a deterministic background pattern) are absorbed as per-word
  // exceptions — a memtest cycle that refills its victim every pass never
  // expands 8 KiB of storage just to hold a handful of flipped bits. A row
  // accumulating more than kMaxExceptions distinct flipped words falls back
  // to full materialization.
  std::vector<std::uint8_t> row_uniform_;
  std::vector<std::uint64_t> uniform_fill_;
  std::vector<std::uint32_t> exc_slot_;
  std::deque<ExcList> exc_arena_;

  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  static constexpr std::size_t kMaxEvents = 1u << 20;
  static constexpr std::size_t kMaxExceptions = 24;
};

}  // namespace densemem::dram
