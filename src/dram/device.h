// Command-level DRAM device model with disturbance (RowHammer) and
// retention fault injection.
//
// The device is the substitution for the paper's FPGA-tested real modules:
// it executes ACT / PRE / RD / WR / REF semantics and lets the configured
// fault models corrupt stored data exactly where real chips would —
// committed at charge-restore events (activation or refresh of the victim
// row), dependent on stored data patterns, and only in the charge-losing
// direction of each cell's orientation.
//
// Timing is *not* enforced here (the memory controller owns inter-command
// timing); the device enforces protocol legality (ACT on a closed bank,
// RD/WR on the open row) and physics.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "dram/faultmap.h"
#include "dram/flip_observer.h"
#include "dram/geometry.h"
#include "dram/reliability.h"
#include "dram/remap.h"

namespace densemem::dram {

enum class FlipCause { kDisturbance, kRetention };

struct FlipEvent {
  std::uint32_t bank;       ///< flat bank index
  std::uint32_t physical_row;
  std::uint32_t logical_row;
  std::uint32_t bit;        ///< bit index within the row
  FlipCause cause;
  bool one_to_zero;         ///< direction of the flip
  Time when;
};

struct DeviceStats {
  std::uint64_t activates = 0;
  std::uint64_t precharges = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t row_refreshes = 0;     ///< rows restored by REF
  std::uint64_t targeted_refreshes = 0;///< rows restored by targeted refresh
  std::uint64_t disturb_flips = 0;
  std::uint64_t retention_flips = 0;
  std::uint64_t flips_1to0 = 0;
  std::uint64_t flips_0to1 = 0;
  /// Flip events discarded once the capped event log filled. Surfaced so a
  /// truncated flip_events() can never masquerade as a complete record.
  std::uint64_t flip_events_dropped = 0;
};

/// Deterministic background data: what a row reads as before software ever
/// writes it (and the reference pattern for memtest-style experiments).
enum class BackgroundPattern { kZeros, kOnes, kCheckerboard, kRowStripe, kRandom };

/// Deterministic 64-bit word of a background pattern at (row, col_word).
/// Free function so testers can regenerate reference data independently of
/// any particular device instance.
std::uint64_t pattern_word_value(BackgroundPattern pat, std::uint64_t seed,
                                 std::uint32_t row, std::uint32_t col_word);
/// Single-bit variant (bit index within the row).
bool pattern_bit_value(BackgroundPattern pat, std::uint64_t seed,
                       std::uint32_t row, std::uint32_t bit);

struct DeviceConfig {
  Geometry geometry;
  ReliabilityParams reliability;
  RemapScheme remap = RemapScheme::kIdentity;
  std::uint64_t seed = 1;
  BackgroundPattern pattern = BackgroundPattern::kZeros;
  bool record_flip_events = false;  ///< keep a per-flip event log (capped)
  /// Optional provenance sink: every committed flip is reported with its
  /// mechanism, aggressors, stress, and DPD factor. Null (the default) costs
  /// one pointer test per flip — activations that flip nothing never touch it.
  FlipObserver* observer = nullptr;
};

class Device {
 public:
  explicit Device(DeviceConfig cfg);

  const Geometry& geometry() const { return cfg_.geometry; }
  const DeviceConfig& config() const { return cfg_; }
  const DeviceStats& stats() const { return stats_; }
  const std::vector<FlipEvent>& flip_events() const { return events_; }
  FaultMap& fault_map() { return faults_; }
  const FaultMap& fault_map() const { return faults_; }
  const RowRemap& remap() const { return remap_; }

  // --- Command interface (logical rows; called by the controller) ---------
  void activate(std::uint32_t fbank, std::uint32_t row, Time now);
  void precharge(std::uint32_t fbank, Time now);
  std::uint64_t read_word(std::uint32_t fbank, std::uint32_t col_word);
  void write_word(std::uint32_t fbank, std::uint32_t col_word,
                  std::uint64_t value);
  /// Open row of a bank, or nullopt if precharged.
  std::optional<std::uint32_t> open_row(std::uint32_t fbank) const;

  /// Bulk hammer: exactly equivalent to `count` ACT/PRE pairs on `row`
  /// back-to-back starting at `now` (stress accumulation is linear, and the
  /// aggressor's own state does not change after the first restore), but
  /// O(1) instead of O(count). Keeps million-activation refresh windows
  /// tractable; the per-ACT path remains available for mitigation studies
  /// that must observe every activation. Bank must be precharged.
  void hammer(std::uint32_t fbank, std::uint32_t row, std::uint64_t count,
              Time now);

  /// Auto-refresh step: restores the next `count` physical rows of the bank
  /// (device-internal pointer, wrapping), as one REF command would.
  void refresh_next(std::uint32_t fbank, std::uint32_t count, Time now);
  /// Targeted refresh of one logical row (PARA / neighbour-refresh
  /// mitigations; the "targeted refresh command" of §II-C). Bank must be
  /// precharged. Commits pending faults, then restores charge.
  void refresh_row(std::uint32_t fbank, std::uint32_t row, Time now);

  // --- Bulk data helpers ---------------------------------------------------
  /// Reset all stored data to the background pattern and clear fault state
  /// (stress, VRT timers). Restores every row at time `now`.
  void fill_all(BackgroundPattern pattern, Time now);
  /// Write a full row (via an implicit activate/precharge-free path used by
  /// testers; commits pending faults first like a real write burst would).
  void fill_row(std::uint32_t fbank, std::uint32_t row,
                const std::vector<std::uint64_t>& words, Time now);
  /// Side-effect-free view of the *stored* row contents (pending — not yet
  /// committed — faults are not applied; read via activate() to realize them).
  std::vector<std::uint64_t> snapshot_row(std::uint32_t fbank,
                                          std::uint32_t row) const;
  /// Allocation-free variant: writes the row into `out` (resized to
  /// row_words()). Testers that snapshot thousands of rows per run reuse
  /// one buffer instead of constructing a vector per call.
  void snapshot_row(std::uint32_t fbank, std::uint32_t row,
                    std::vector<std::uint64_t>& out) const;
  /// The value the row would hold if no fault had ever occurred and software
  /// never wrote it (background pattern reference).
  std::uint64_t pattern_word(std::uint32_t row, std::uint32_t col_word) const;

  /// Physically-adjacent logical rows (what the SPD adjacency table would
  /// disclose). Whether a mitigation is *allowed* to use this is controller
  /// policy, mirroring the paper's PARA deployment discussion.
  std::vector<std::uint32_t> spd_neighbors(std::uint32_t row) const {
    return remap_.physical_neighbors(row);
  }

  /// Accumulated hammer stress of a physical row (test/diagnostic hook).
  double stress_of_physical(std::uint32_t fbank, std::uint32_t prow) const {
    return stress_[flat_row(fbank, prow)];
  }

 private:
  /// Resolved view of one physical row for a commit pass: either a pointer
  /// into materialized storage, or — for rows software never wrote — the
  /// background pattern. Every deterministic pattern repeats a single
  /// 64-bit word across the row (only the row's parity matters), so the
  /// view carries that word and a bit read is a shift/mask; kRandom falls
  /// back to the per-(row, word) hash.
  struct RowView {
    const std::uint64_t* words = nullptr;  ///< materialized storage
    std::uint64_t fill = 0;     ///< uniform pattern word when !words
    std::uint32_t logical = 0;  ///< for the kRandom fallback
    bool uniform = false;       ///< deterministic (non-kRandom) pattern
    bool present = false;       ///< row exists (bank-edge neighbours don't)
  };
  /// Views of a row and its two neighbours for one commit pass. The commit
  /// loops consult stored bits of (row-1, row, row+1) once per weak/leaky
  /// cell; resolving the three data_ lookups here turns each consult into
  /// a pointer or pattern-word read. unordered_map references are stable
  /// under insertion and only the self row is flipped during a commit, so
  /// the neighbour views stay valid across apply_flip(); apply_flip
  /// refreshes `self` when it materializes a pattern-backed row.
  struct RowCtx {
    std::uint32_t fbank = 0, prow = 0;
    std::uint32_t logical = 0;
    RowView self, up, down;  ///< up = prow - 1, down = prow + 1
  };

  std::size_t flat_row(std::uint32_t fbank, std::uint32_t prow) const {
    DM_DCHECK(fbank < nbanks_ && prow < cfg_.geometry.rows);
    return static_cast<std::size_t>(fbank) * cfg_.geometry.rows + prow;
  }
  bool pattern_bit(std::uint32_t logical_row, std::uint32_t bit) const;
  /// Stored bit via a resolved row view.
  bool view_bit(const RowView& v, std::uint32_t bit) const {
    if (v.words) return (v.words[bit / 64] >> (bit % 64)) & 1;
    if (v.uniform) return (v.fill >> (bit % 64)) & 1;
    return pattern_bit(v.logical, bit);
  }
  RowCtx make_row_ctx(std::uint32_t fbank, std::uint32_t prow) const;
  std::vector<std::uint64_t>& materialize(std::uint32_t fbank,
                                          std::uint32_t prow);
  /// Commit pending disturbance + retention faults of a physical row, then
  /// restore its charge (reset stress, stamp last_restore). Builds the row
  /// context only when a commit will actually run (the common case — a row
  /// with no pending stress and no faults — touches nothing but the flat
  /// stress/last_restore arrays).
  void restore_row(std::uint32_t fbank, std::uint32_t prow, Time now);
  void commit_disturbance(RowCtx& ctx, float stress, Time now);
  void commit_retention(RowCtx& ctx, double dt_ms, Time now);
  void apply_flip(RowCtx& ctx, std::uint32_t bit, FlipMechanism mechanism,
                  double stress, double dpd_factor, Time now);
  /// Add `count` activations' worth of disturbance around a physical row.
  void disturb_neighbors(std::uint32_t fbank, std::uint32_t prow, float count);

  DeviceConfig cfg_;
  std::uint32_t nbanks_;
  FaultMap faults_;
  RowRemap remap_;
  Rng rng_;  ///< device-level randomness (VRT transitions)
  DeviceStats stats_;
  std::vector<FlipEvent> events_;

  // Per-bank open row (-1 = precharged) and auto-refresh pointer.
  std::vector<std::int64_t> open_row_;
  std::vector<std::uint32_t> refresh_ptr_;
  // Flat per-(bank, physical row) state.
  std::vector<float> stress_;       ///< weighted aggressor activations
  std::vector<Time> last_restore_;  ///< last charge restore
  // Materialized row data, keyed by flat row index.
  std::unordered_map<std::size_t, std::vector<std::uint64_t>> data_;

  static constexpr std::size_t kMaxEvents = 1u << 20;
};

}  // namespace densemem::dram
