// Logical → physical row remapping and the SPD adjacency interface.
//
// DRAM manufacturers internally remap rows (§II-C: "DRAM manufacturers can
// internally remap rows to other locations"), so the memory controller does
// not know which rows are physically adjacent. The paper's PARA deployment
// discussion hinges on this: either the DRAM discloses adjacency via the
// serial-presence-detect (SPD) ROM, or the controller's notion of
// "neighbour" is wrong and neighbour-refreshing mitigations misfire.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace densemem::dram {

enum class RemapScheme {
  kIdentity,      ///< logical == physical
  kMirrorBlocks,  ///< row order reversed within aligned blocks of 2^k rows
  kScramble,      ///< seeded pseudorandom permutation (worst case for the
                  ///< controller: logical neighbours are physically unrelated)
};

class RowRemap {
 public:
  RowRemap(RemapScheme scheme, std::uint32_t rows, std::uint64_t seed = 0,
           std::uint32_t block_log2 = 3);

  RemapScheme scheme() const { return scheme_; }
  std::uint32_t rows() const { return rows_; }

  std::uint32_t to_physical(std::uint32_t logical) const {
    DM_DCHECK(logical < rows_);
    return fwd_.empty() ? logical : fwd_[logical];
  }
  std::uint32_t to_logical(std::uint32_t physical) const {
    DM_DCHECK(physical < rows_);
    return inv_.empty() ? physical : inv_[physical];
  }

  /// Logical rows physically adjacent (distance 1) to the given logical row.
  /// This is the answer an SPD adjacency table would give.
  std::vector<std::uint32_t> physical_neighbors(std::uint32_t logical) const;

 private:
  RemapScheme scheme_;
  std::uint32_t rows_;
  std::vector<std::uint32_t> fwd_, inv_;  // empty for identity
};

}  // namespace densemem::dram
