// Synthetic database of the 129 DRAM modules behind Figure 1.
//
// The paper (via ISCA'14 [53]) tested 129 modules from three manufacturers
// (anonymized A, B, C) manufactured 2008–2014 and found 110 vulnerable, the
// earliest from 2010, with error rates spanning ~10^0..10^6 per 10^9 cells
// and *every* 2012–2013 module vulnerable. We do not have the physical
// modules, so this database generates 129 module configurations whose
// reliability parameters are calibrated to those published statistics; each
// module is a seeded Device configuration, and the Figure-1 bench measures
// its error rate through the same hammer-test path as any other experiment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dram/device.h"

namespace densemem::dram {

enum class Manufacturer { kA, kB, kC };

inline const char* manufacturer_name(Manufacturer m) {
  switch (m) {
    case Manufacturer::kA: return "A";
    case Manufacturer::kB: return "B";
    case Manufacturer::kC: return "C";
  }
  return "?";
}

struct ModuleInfo {
  std::string id;             ///< e.g. "A-2013-07"
  Manufacturer manufacturer;
  int year;                   ///< manufacture year, 2008..2014
  bool vulnerable;            ///< calibrated: does it exhibit RowHammer at all
  double target_error_rate;   ///< calibration target, errors per 10^9 cells
  ReliabilityParams reliability;
  std::uint64_t seed;
};

class ModuleDb {
 public:
  /// Builds the full 129-module database. `db_seed` varies the per-module
  /// jitter while preserving the published aggregate statistics.
  explicit ModuleDb(std::uint64_t db_seed = 2014);

  /// Draws one synthetic module from the same calibrated distributions as
  /// the 129-module database, without materializing anything: year and
  /// manufacturer weighted by the published population, vulnerability by
  /// the year's vulnerable fraction, error rate / hc50 / process signature
  /// by the same formulas the constructor uses. Pure function of
  /// (db_seed, index) — the fleet-scale field study samples millions of
  /// modules this way, one per campaign job, at O(1) memory.
  static ModuleInfo sample(std::uint64_t db_seed, std::uint64_t index);

  const std::vector<ModuleInfo>& modules() const { return modules_; }
  std::size_t size() const { return modules_.size(); }
  std::size_t vulnerable_count() const;
  int earliest_vulnerable_year() const;

  /// Device configuration for a module. Geometry defaults to a 2 GiB rank;
  /// tests may pass a smaller geometry (fault densities are per-cell, so
  /// statistics scale).
  DeviceConfig device_config(const ModuleInfo& m,
                             const Geometry& geometry) const;
  DeviceConfig device_config(const ModuleInfo& m) const {
    return device_config(m, default_geometry());
  }

  static Geometry default_geometry() {
    return Geometry{1, 1, 8, 32768, 8192};  // 2 GiB rank
  }

 private:
  std::vector<ModuleInfo> modules_;
};

}  // namespace densemem::dram
