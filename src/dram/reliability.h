// Per-module reliability parameters: the knobs that make one DRAM module
// more RowHammer-vulnerable or leakier than another.
//
// These parameters are what the synthetic module database (module_db.h)
// calibrates against the ISCA'14 measurements to reproduce Figure 1.
#pragma once

#include <cstdint>

namespace densemem::dram {

struct ReliabilityParams {
  // --- Disturbance (RowHammer) -------------------------------------------
  /// Probability that any given cell is hammerable at all. 0 disables
  /// disturbance entirely (pre-2010 modules).
  double weak_cell_density = 0.0;
  /// Median hammer threshold: single-aggressor activations within one
  /// refresh window needed to flip a fully-coupled weak cell.
  double hc50 = 150e3;
  /// Lognormal sigma of the per-cell threshold distribution.
  double hc_sigma = 0.45;
  /// Stress contribution of a distance-2 aggressor relative to an adjacent
  /// one (ISCA'14: most victims are adjacent; a small tail is not).
  double distance2_weight = 0.03;
  /// Mean of each cell's data-pattern sensitivity in [0,1]: 1 means the
  /// cell only flips when its aggressor neighbours store antiparallel data.
  double dpd_sensitivity_mean = 0.6;
  /// Fraction of cells in the anti-cell orientation (charged = logical 0,
  /// so hammer/retention flips go 0 -> 1 instead of 1 -> 0).
  double anticell_fraction = 0.25;

  // --- Retention ----------------------------------------------------------
  /// Probability that a cell is in the leaky tail (retention time within
  /// an order of magnitude of the refresh window).
  double leaky_cell_density = 0.0;
  /// Lognormal location (ln ms) of leaky-cell retention times.
  double retention_mu_log_ms = 6.0;  // ~e^6 ≈ 400 ms median
  double retention_sigma = 1.0;
  /// Fraction of leaky cells that additionally exhibit Variable Retention
  /// Time: they toggle between their base retention and a much higher one.
  double vrt_fraction = 0.15;
  /// VRT state-transition rate (per second), modelling the memoryless
  /// trap-assisted process of §III-A1.
  double vrt_rate_hz = 0.02;
  /// Ratio of the VRT high-retention state to the base retention.
  double vrt_high_ratio = 50.0;
  /// Strength of data-pattern dependence of retention (0 = none; 0.5 means
  /// fully antiparallel neighbours halve the effective retention time).
  double retention_dpd_strength = 0.35;

  /// A strongly RowHammer-vulnerable module (2012–2013 era defaults).
  static ReliabilityParams vulnerable() {
    ReliabilityParams p;
    p.weak_cell_density = 2e-5;
    p.hc50 = 120e3;
    p.leaky_cell_density = 1e-7;
    return p;
  }
  /// A module with no disturbance weakness (pre-2010 era).
  static ReliabilityParams robust() {
    ReliabilityParams p;
    p.weak_cell_density = 0.0;
    p.leaky_cell_density = 1e-7;
    return p;
  }
  /// Retention-study module: no hammer weakness, pronounced leaky tail.
  static ReliabilityParams leaky() {
    ReliabilityParams p;
    p.weak_cell_density = 0.0;
    p.leaky_cell_density = 5e-5;
    p.retention_mu_log_ms = 5.5;
    p.retention_sigma = 1.2;
    return p;
  }
};

}  // namespace densemem::dram
