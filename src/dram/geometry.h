// DRAM organization and addressing.
//
// The device model operates at rank granularity: the memory controller sees
// channel → rank → bank → row → column, and one "row" is a full rank-level
// row (all chips in the rank activated together), default 8 KiB.
#pragma once

#include <cstdint>

#include "common/check.h"
#include "common/units.h"

namespace densemem::dram {

struct Geometry {
  std::uint32_t channels = 1;
  std::uint32_t ranks = 1;
  std::uint32_t banks = 8;        ///< banks per rank
  std::uint32_t rows = 32768;     ///< rows per bank
  std::uint32_t row_bytes = 8192; ///< rank-level row size

  std::uint64_t rows_total() const {
    return static_cast<std::uint64_t>(channels) * ranks * banks * rows;
  }
  std::uint64_t bytes_total() const { return rows_total() * row_bytes; }
  std::uint64_t cells_total() const { return bytes_total() * 8; }
  std::uint32_t row_bits() const { return row_bytes * 8; }
  std::uint32_t row_words() const { return row_bytes / 8; }

  void validate() const {
    // A single-row bank is legal (no neighbours to disturb, but retention
    // and refresh still apply) — the commit kernels' edge-case tests use it.
    DM_CHECK_MSG(channels >= 1 && ranks >= 1 && banks >= 1 && rows >= 1,
                 "degenerate DRAM geometry");
    DM_CHECK_MSG(row_bytes >= 64 && row_bytes % 64 == 0,
                 "row size must be a multiple of a 64-byte cache block");
  }

  /// A small geometry for unit tests: 1x1x2 banks, 512 rows of 1 KiB.
  static Geometry tiny() { return {1, 1, 2, 512, 1024}; }
};

/// Fully-decoded DRAM address. `col_word` indexes 64-bit words within a row.
struct Address {
  std::uint32_t channel = 0;
  std::uint32_t rank = 0;
  std::uint32_t bank = 0;
  std::uint32_t row = 0;
  std::uint32_t col_word = 0;

  bool operator==(const Address&) const = default;
};

/// Flat bank index across the whole system (channel-major).
inline std::uint32_t flat_bank(const Geometry& g, const Address& a) {
  DM_DCHECK(a.channel < g.channels && a.rank < g.ranks && a.bank < g.banks);
  return (a.channel * g.ranks + a.rank) * g.banks + a.bank;
}

inline std::uint32_t total_banks(const Geometry& g) {
  return g.channels * g.ranks * g.banks;
}

/// Inverse of flat_bank: reconstruct a full Address from a flat bank index.
inline Address address_of(const Geometry& g, std::uint32_t fbank,
                          std::uint32_t row, std::uint32_t col_word = 0) {
  DM_DCHECK(fbank < total_banks(g));
  Address a;
  a.bank = fbank % g.banks;
  const std::uint32_t cr = fbank / g.banks;
  a.rank = cr % g.ranks;
  a.channel = cr / g.ranks;
  a.row = row;
  a.col_word = col_word;
  return a;
}

}  // namespace densemem::dram
