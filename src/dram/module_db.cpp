#include "dram/module_db.h"

#include <cmath>

#include "common/rng.h"

namespace densemem::dram {
namespace {

// Per-(year) calibration row: module counts per manufacturer, how many are
// vulnerable, the log10 error-rate band of the vulnerable ones, and the
// median hammer threshold (newer process nodes flip with fewer activations).
struct YearCal {
  int year;
  int count_a, count_b, count_c;
  int vulnerable;          ///< of the year's total, summed across A/B/C
  double log10_rate_lo;    ///< vulnerable-module error-rate band (per 1e9)
  double log10_rate_hi;
  double hc50;
};

// Counts sum to 129 with 110 vulnerable; the first vulnerable year is 2010
// and all 2012–2013 modules are vulnerable, matching §II / Figure 1.
constexpr YearCal kCalibration[] = {
    {2008, 2, 2, 1, 0, 0.0, 0.0, 400e3},
    {2009, 2, 2, 2, 0, 0.0, 0.0, 350e3},
    {2010, 3, 2, 2, 4, 0.0, 1.3, 250e3},
    {2011, 6, 5, 5, 14, 0.5, 4.5, 200e3},
    {2012, 10, 10, 8, 28, 2.0, 6.0, 140e3},
    {2013, 12, 12, 12, 36, 2.5, 6.2, 110e3},
    {2014, 10, 11, 10, 28, 1.5, 5.5, 100e3},
};

}  // namespace

ModuleDb::ModuleDb(std::uint64_t db_seed) {
  Rng rng(hash_coords(db_seed, 0x4d4f4442 /* "MODB" */));
  for (const YearCal& cal : kCalibration) {
    // Lay out the year's modules across manufacturers, then decide which are
    // vulnerable (uniformly among the year's modules).
    struct Slot {
      Manufacturer mfr;
      int index;
    };
    std::vector<Slot> slots;
    for (int i = 0; i < cal.count_a; ++i) slots.push_back({Manufacturer::kA, i});
    for (int i = 0; i < cal.count_b; ++i) slots.push_back({Manufacturer::kB, i});
    for (int i = 0; i < cal.count_c; ++i) slots.push_back({Manufacturer::kC, i});
    std::vector<bool> vulnerable(slots.size(), false);
    {
      auto pick = rng.sample_indices(slots.size(),
                                     static_cast<std::size_t>(cal.vulnerable));
      for (std::size_t i : pick) vulnerable[i] = true;
    }
    for (std::size_t s = 0; s < slots.size(); ++s) {
      ModuleInfo m;
      m.manufacturer = slots[s].mfr;
      m.year = cal.year;
      m.id = std::string(manufacturer_name(m.manufacturer)) + "-" +
             std::to_string(cal.year) + "-" +
             (slots[s].index < 10 ? "0" : "") + std::to_string(slots[s].index);
      m.vulnerable = vulnerable[s];
      m.seed = hash_coords(db_seed, static_cast<std::uint64_t>(cal.year),
                           static_cast<std::uint64_t>(slots[s].mfr),
                           static_cast<std::uint64_t>(slots[s].index));

      ReliabilityParams p;
      if (m.vulnerable) {
        const double log10_rate =
            rng.uniform(cal.log10_rate_lo, cal.log10_rate_hi);
        m.target_error_rate = std::pow(10.0, log10_rate);
        // Errors-per-cell ≈ weak-cell density when the test hammers far past
        // the median threshold; a small uplift compensates for cells the
        // multi-pattern test still misses (discharged state under every
        // tested pattern is impossible, but pattern-factor shortfall near
        // the threshold tail is not).
        p.weak_cell_density = m.target_error_rate * 1e-9 * 1.15;
        p.hc50 = cal.hc50 * rng.lognormal(0.0, 0.15);
        // Manufacturer "process signatures": mild systematic differences.
        switch (m.manufacturer) {
          case Manufacturer::kA: p.hc_sigma = 0.40; break;
          case Manufacturer::kB: p.hc_sigma = 0.50; p.hc50 *= 0.9; break;
          case Manufacturer::kC: p.hc_sigma = 0.45; p.distance2_weight = 0.05; break;
        }
      } else {
        m.target_error_rate = 0.0;
        p.weak_cell_density = 0.0;
      }
      // Every module has a mundane leaky tail, but healthy modules have no
      // cells anywhere near the 64 ms refresh window (the real study's
      // pre-2010 modules measured *zero* errors, so hammer-window testing
      // must not pick up ordinary retention failures).
      p.leaky_cell_density = 1e-7;
      p.retention_mu_log_ms = 9.0;  // median ~8 s
      m.reliability = p;
      modules_.push_back(std::move(m));
    }
  }
  DM_CHECK_MSG(modules_.size() == 129, "module database must hold 129 modules");
}

ModuleInfo ModuleDb::sample(std::uint64_t db_seed, std::uint64_t index) {
  Rng rng(hash_coords(db_seed, 0x464c4545 /* "FLEE" */, index));

  // Year and manufacturer weighted by the published population (129 total).
  int total = 0;
  for (const YearCal& c : kCalibration)
    total += c.count_a + c.count_b + c.count_c;
  int pick = static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(total)));
  const YearCal* cal = &kCalibration[0];
  Manufacturer mfr = Manufacturer::kA;
  for (const YearCal& c : kCalibration) {
    const int counts[3] = {c.count_a, c.count_b, c.count_c};
    const Manufacturer mfrs[3] = {Manufacturer::kA, Manufacturer::kB,
                                  Manufacturer::kC};
    bool found = false;
    for (int k = 0; k < 3 && !found; ++k) {
      if (pick < counts[k]) {
        cal = &c;
        mfr = mfrs[k];
        found = true;
      } else {
        pick -= counts[k];
      }
    }
    if (found) break;
  }

  ModuleInfo m;
  m.manufacturer = mfr;
  m.year = cal->year;
  m.id = std::string(manufacturer_name(mfr)) + "-" +
         std::to_string(cal->year) + "-#" + std::to_string(index);
  const int year_total = cal->count_a + cal->count_b + cal->count_c;
  m.vulnerable = rng.bernoulli(static_cast<double>(cal->vulnerable) /
                               static_cast<double>(year_total));
  m.seed = hash_coords(db_seed, 0x464c4545, index, 1);

  // Same reliability formulas as the constructor, drawn per sample.
  ReliabilityParams p;
  if (m.vulnerable) {
    const double log10_rate =
        rng.uniform(cal->log10_rate_lo, cal->log10_rate_hi);
    m.target_error_rate = std::pow(10.0, log10_rate);
    p.weak_cell_density = m.target_error_rate * 1e-9 * 1.15;
    p.hc50 = cal->hc50 * rng.lognormal(0.0, 0.15);
    switch (mfr) {
      case Manufacturer::kA: p.hc_sigma = 0.40; break;
      case Manufacturer::kB: p.hc_sigma = 0.50; p.hc50 *= 0.9; break;
      case Manufacturer::kC: p.hc_sigma = 0.45; p.distance2_weight = 0.05; break;
    }
  } else {
    m.target_error_rate = 0.0;
    p.weak_cell_density = 0.0;
  }
  p.leaky_cell_density = 1e-7;
  p.retention_mu_log_ms = 9.0;
  m.reliability = p;
  return m;
}

std::size_t ModuleDb::vulnerable_count() const {
  std::size_t n = 0;
  for (const auto& m : modules_) n += m.vulnerable ? 1 : 0;
  return n;
}

int ModuleDb::earliest_vulnerable_year() const {
  int year = 9999;
  for (const auto& m : modules_)
    if (m.vulnerable && m.year < year) year = m.year;
  return year;
}

DeviceConfig ModuleDb::device_config(const ModuleInfo& m,
                                     const Geometry& geometry) const {
  DeviceConfig cfg;
  cfg.geometry = geometry;
  cfg.reliability = m.reliability;
  cfg.remap = RemapScheme::kIdentity;
  cfg.seed = m.seed;
  cfg.pattern = BackgroundPattern::kZeros;
  return cfg;
}

}  // namespace densemem::dram
