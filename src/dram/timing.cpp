#include "dram/timing.h"

#include "common/check.h"

namespace densemem::dram {

Timing Timing::ddr3_1600() {
  Timing t;
  t.name = "DDR3-1600 (11-11-11)";
  t.tCK = Time::ps(1250);
  t.tRCD = Time::ns_f(13.75);
  t.tCL = Time::ns_f(13.75);
  t.tRP = Time::ns_f(13.75);
  t.tRAS = Time::ns(35);
  t.tRC = Time::ns_f(48.75);
  t.tWR = Time::ns(15);
  t.tRFC = Time::ns(260);   // 4 Gb density class
  t.tREFI = Time::ns_f(7812.5);
  t.tREFW = Time::ms(64);
  t.tFAW = Time::ns(40);
  t.tRRD = Time::ns(6);
  return t;
}

Timing Timing::ddr4_2400() {
  Timing t;
  t.name = "DDR4-2400 (17-17-17)";
  t.tCK = Time::ps(833);
  t.tRCD = Time::ns_f(14.16);
  t.tCL = Time::ns_f(14.16);
  t.tRP = Time::ns_f(14.16);
  t.tRAS = Time::ns(32);
  t.tRC = Time::ns_f(46.16);
  t.tWR = Time::ns(15);
  t.tRFC = Time::ns(350);   // 8 Gb density class
  t.tREFI = Time::ns_f(7812.5);
  t.tREFW = Time::ms(64);
  t.tFAW = Time::ns(21);
  t.tRRD = Time::ns_f(5.3);
  return t;
}

Timing Timing::with_refresh_multiplier(double factor) const {
  DM_CHECK_MSG(factor >= 1.0, "refresh multiplier must be >= 1");
  Timing t = *this;
  t.tREFI = Time::ps(static_cast<std::int64_t>(
      static_cast<double>(tREFI.picoseconds()) / factor));
  t.tREFW = Time::ps(static_cast<std::int64_t>(
      static_cast<double>(tREFW.picoseconds()) / factor));
  DM_CHECK_MSG(t.tREFI > t.tRFC,
               "refresh multiplier so high that refresh never completes");
  return t;
}

}  // namespace densemem::dram
