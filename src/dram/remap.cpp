#include "dram/remap.h"

namespace densemem::dram {

RowRemap::RowRemap(RemapScheme scheme, std::uint32_t rows, std::uint64_t seed,
                   std::uint32_t block_log2)
    : scheme_(scheme), rows_(rows) {
  DM_CHECK_MSG(rows >= 1, "remap needs at least one row");
  switch (scheme_) {
    case RemapScheme::kIdentity:
      break;  // empty tables mean identity
    case RemapScheme::kMirrorBlocks: {
      const std::uint32_t block = 1u << block_log2;
      fwd_.resize(rows_);
      inv_.resize(rows_);
      for (std::uint32_t r = 0; r < rows_; ++r) {
        const std::uint32_t base = r & ~(block - 1);
        std::uint32_t mirrored = base + (block - 1 - (r & (block - 1)));
        if (mirrored >= rows_) mirrored = r;  // partial tail block: identity
        fwd_[r] = mirrored;
      }
      for (std::uint32_t r = 0; r < rows_; ++r) inv_[fwd_[r]] = r;
      break;
    }
    case RemapScheme::kScramble: {
      fwd_.resize(rows_);
      inv_.resize(rows_);
      for (std::uint32_t r = 0; r < rows_; ++r) fwd_[r] = r;
      Rng rng(hash_coords(seed, 0x52454d41 /* "REMA" */));
      rng.shuffle(fwd_);
      for (std::uint32_t r = 0; r < rows_; ++r) inv_[fwd_[r]] = r;
      break;
    }
  }
}

std::vector<std::uint32_t> RowRemap::physical_neighbors(
    std::uint32_t logical) const {
  const std::uint32_t p = to_physical(logical);
  std::vector<std::uint32_t> out;
  if (p > 0) out.push_back(to_logical(p - 1));
  if (p + 1 < rows_) out.push_back(to_logical(p + 1));
  return out;
}

}  // namespace densemem::dram
