// Compiled access streams: a pattern's per-bank ACT-slot sequence, resolved
// once per job into physical rows plus the per-row aggregate stress one pass
// deposits on each activated row.
//
// The per-activation path pays a restore screen (FaultMap::disturb_possible
// plus the device's dynamic charged-cell screen) on every ACT. A compiled
// stream hoists that work to pass granularity: because every stress
// contribution is non-negative, the stress a row can carry at ANY slot of a
// pass is bounded by its carry-in plus the pass's total deposit, so one
// screen consult per (row, pass) — against that padded bound — proves
// entire passes of restores are no-ops. Executors (Device::run_stream,
// MemoryController::run_stream) then collapse each proven restore to the
// stress-reset it would have been anyway, bit-identical to the per-ACT
// path: every flip event, stat, observer record, and mitigation decision
// is unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "dram/geometry.h"

namespace densemem::dram {

class Device;

class AccessStream {
 public:
  /// Slot value for "no ACT this slot" (matches fuzz::kIdleSlot).
  static constexpr std::uint32_t kIdle = ~std::uint32_t{0};

  struct Slot {
    std::uint32_t logical;  ///< logical row, or kIdle
    std::uint32_t prow;     ///< precompiled physical row (kIdle slots: kIdle)
    std::uint32_t urow;     ///< index into touched() (kIdle slots: kIdle)
  };

  /// One unique activated physical row of the pass.
  struct TouchedRow {
    std::uint32_t prow = 0;
    std::uint64_t acts = 0;    ///< activations of this row per pass
    /// Exact total stress one full pass deposits on this row
    /// (count(prow±1)·1 + count(prow±2)·distance2_weight, in double).
    double pass_stress = 0.0;
  };

  /// Compile `slots` (logical rows, kIdle for idle cycles) for one bank of
  /// `dev`. The stream snapshots the device's remap and distance-2 weight;
  /// it stays valid for the device's lifetime (both are fixed at
  /// construction).
  AccessStream(const Device& dev, std::uint32_t fbank,
               const std::vector<std::uint32_t>& slots);

  std::uint32_t fbank() const { return fbank_; }
  /// Non-idle slots per pass. 0 means executors must not loop on the stream.
  std::uint64_t acts_per_pass() const { return acts_per_pass_; }
  const std::vector<Slot>& slots() const { return slots_; }
  const std::vector<TouchedRow>& touched() const { return touched_; }

  /// Padded stress bound for one pass of a touched row given its carry-in
  /// stress: every float-accumulated runtime value is strictly below it
  /// (the 1.001 factor dominates float rounding over any realistic pass
  /// length; +1.0 keeps degenerate tiny sums safely padded).
  static float pass_bound(float carry_in, double pass_stress) {
    return static_cast<float>(
        (static_cast<double>(carry_in) + pass_stress) * 1.001 + 1.0);
  }

 private:
  std::uint32_t fbank_;
  std::uint64_t acts_per_pass_ = 0;
  std::vector<Slot> slots_;
  std::vector<TouchedRow> touched_;
};

}  // namespace densemem::dram
