#!/usr/bin/env bash
# Golden-output driver: runs one bench at several --threads widths and
# diffs its --quick stdout byte-for-byte against the committed golden.
#
#   golden_diff.sh <bench-exe> <golden-file> <diff-out-dir> <threads>...
#
# On a mismatch the unified diff is left in <diff-out-dir>/<bench>.t<N>.diff
# (CI uploads that directory as an artifact) and the script exits nonzero.
# Regenerate goldens with scripts/update_goldens.sh after an intentional
# output change.
set -u

bench=$1
golden=$2
outdir=$3
shift 3

name=$(basename "$bench")
mkdir -p "$outdir"
status=0

if [ ! -f "$golden" ]; then
  echo "FAIL: no golden at $golden (run scripts/update_goldens.sh)"
  exit 1
fi

for t in "$@"; do
  out="$outdir/$name.t$t.out"
  if ! "$bench" --quick --threads "$t" >"$out" 2>"$out.err"; then
    echo "FAIL: $name --quick --threads $t exited nonzero; stderr:"
    cat "$out.err"
    status=1
    continue
  fi
  if diff -u "$golden" "$out" >"$outdir/$name.t$t.diff"; then
    rm -f "$outdir/$name.t$t.diff" "$out" "$out.err"
    echo "ok: $name --threads $t matches golden"
  else
    echo "FAIL: $name --threads $t stdout differs from golden:"
    head -40 "$outdir/$name.t$t.diff"
    status=1
  fi
done
exit $status
