#!/usr/bin/env bash
# Crash-isolated fleet round trip for a campaign bench: a single-process
# clean run and supervised multi-process runs at several shard widths —
# with a SIGKILL injected into every shard's first incarnation — must all
# produce byte-identical stdout. This is the tentpole contract: worker
# death is recoverable, and sharding never changes results.
#
#   fleet_crash.sh <bench-exe> <workdir> [width...]
set -u

bench=$1
work=$2
shift 2
widths=${*:-"1 2 4"}
name=$(basename "$bench")
mkdir -p "$work"
rm -rf "${work:?}/$name".*

if ! "$bench" --quick >"$work/$name.clean.txt" 2>/dev/null; then
  echo "FAIL: clean single-process run exited nonzero"
  exit 1
fi

for n in $widths; do
  jdir="$work/$name.fleet$n"
  rm -rf "$jdir" && mkdir -p "$jdir"

  # Every shard SIGKILLs itself after a few settled jobs; the supervisor
  # must respawn it in resume mode and still finish with exit 0.
  rc=0
  "$bench" --quick --shards "$n" --journal "$jdir/j" --fleet-kill-after 2 \
    >"$work/$name.fleet$n.txt" 2>"$work/$name.fleet$n.err" || rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "FAIL: fleet run (shards=$n, kill-after=2) expected exit 0, got $rc; stderr:"
    tail -20 "$work/$name.fleet$n.err"
    exit 1
  fi
  if ! grep -q 'respawn' "$work/$name.fleet$n.err"; then
    echo "FAIL: fleet run (shards=$n) never respawned a killed worker"
    exit 1
  fi
  if ! diff -u "$work/$name.clean.txt" "$work/$name.fleet$n.txt" \
      >"$work/$name.fleet$n.diff"; then
    echo "FAIL: fleet stdout (shards=$n) differs from single-process run:"
    head -40 "$work/$name.fleet$n.diff"
    exit 1
  fi
  echo "ok: shards=$n crashed+respawned stdout is byte-identical"
done

# Interrupt + resume across the fleet: --abort-after makes one worker exit
# 75, the supervisor propagates it, and rerunning the same command (minus
# the abort) resumes every shard from its journal.
jdir="$work/$name.fleetresume"
rm -rf "$jdir" && mkdir -p "$jdir"
rc=0
"$bench" --quick --shards 2 --journal "$jdir/j" --abort-after 2 \
  >/dev/null 2>"$work/$name.abort.err" || rc=$?
if [ "$rc" -ne 75 ]; then
  echo "FAIL: aborted fleet run expected exit 75, got $rc; stderr:"
  tail -20 "$work/$name.abort.err"
  exit 1
fi
if ! "$bench" --quick --shards 2 --journal "$jdir/j" \
    >"$work/$name.resumed.txt" 2>"$work/$name.resumed.err"; then
  echo "FAIL: fleet resume exited nonzero; stderr:"
  tail -20 "$work/$name.resumed.err"
  exit 1
fi
if ! diff -u "$work/$name.clean.txt" "$work/$name.resumed.txt" \
    >"$work/$name.resumed.diff"; then
  echo "FAIL: resumed fleet stdout differs from single-process run:"
  head -40 "$work/$name.resumed.diff"
  exit 1
fi
echo "ok: $name fleet interrupt+resume stdout is byte-identical"
