#!/usr/bin/env bash
# Event-stream determinism smoke for a campaign bench: the --events JSONL
# artifact must be byte-identical across thread widths AND across a
# crash-isolated fleet run (a SIGKILL injected into every shard's first
# incarnation, merged from the durable per-shard raw sidecars) — and
# turning event tracing on must not perturb the byte-comparable stdout.
#
#   events_smoke.sh <bench-exe> <workdir>
set -u

bench=$1
work=$2
name=$(basename "$bench")
mkdir -p "$work"
rm -rf "${work:?}/$name".*

if ! "$bench" --quick --threads 1 --events "$work/$name.t1.events.jsonl" \
    >"$work/$name.t1.txt" 2>/dev/null; then
  echo "FAIL: events run (threads=1) exited nonzero"
  exit 1
fi
if [ ! -s "$work/$name.t1.events.jsonl" ]; then
  echo "FAIL: --events produced an empty event stream"
  exit 1
fi
# Every line must be a JSON object with the pinned leading keys.
if grep -qv '^{"campaign":' "$work/$name.t1.events.jsonl"; then
  echo "FAIL: event stream contains a non-event line"
  exit 1
fi

for t in 2 8; do
  if ! "$bench" --quick --threads "$t" \
      --events "$work/$name.t$t.events.jsonl" \
      >"$work/$name.t$t.txt" 2>/dev/null; then
    echo "FAIL: events run (threads=$t) exited nonzero"
    exit 1
  fi
  if ! diff -u "$work/$name.t1.events.jsonl" "$work/$name.t$t.events.jsonl" \
      >"$work/$name.t$t.events.diff"; then
    echo "FAIL: event stream differs between threads=1 and threads=$t:"
    head -20 "$work/$name.t$t.events.diff"
    exit 1
  fi
  if ! diff -u "$work/$name.t1.txt" "$work/$name.t$t.txt" \
      >"$work/$name.t$t.stdout.diff"; then
    echo "FAIL: stdout differs between threads=1 and threads=$t with --events:"
    head -20 "$work/$name.t$t.stdout.diff"
    exit 1
  fi
  echo "ok: threads=$t event stream and stdout are byte-identical"
done

# Fleet: 4 shards, every shard's first incarnation SIGKILLed; the merged
# artifact (from the per-shard raw sidecars, torn tails and re-run
# duplicates included) must still equal the single-process stream.
jdir="$work/$name.fleet"
rm -rf "$jdir" && mkdir -p "$jdir"
rc=0
"$bench" --quick --shards 4 --journal "$jdir/j" --fleet-kill-after 1 \
  --events "$work/$name.fleet.events.jsonl" \
  >"$work/$name.fleet.txt" 2>"$work/$name.fleet.err" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAIL: fleet events run expected exit 0, got $rc; stderr:"
  tail -20 "$work/$name.fleet.err"
  exit 1
fi
if ! grep -q 'respawn' "$work/$name.fleet.err"; then
  echo "FAIL: fleet run never respawned a killed worker"
  exit 1
fi
if ! diff -u "$work/$name.t1.events.jsonl" "$work/$name.fleet.events.jsonl" \
    >"$work/$name.fleet.events.diff"; then
  echo "FAIL: fleet event stream differs from single-process run:"
  head -20 "$work/$name.fleet.events.diff"
  exit 1
fi
if ! diff -u "$work/$name.t1.txt" "$work/$name.fleet.txt" \
    >"$work/$name.fleet.stdout.diff"; then
  echo "FAIL: fleet stdout differs from single-process run with --events:"
  head -20 "$work/$name.fleet.stdout.diff"
  exit 1
fi
echo "ok: crashed+respawned fleet event stream is byte-identical"

# The exporter must accept the stream end to end.
if command -v python3 >/dev/null 2>&1; then
  if ! python3 "$(dirname "$0")/events2trace.py" \
      "$work/$name.t1.events.jsonl" -o "$work/$name.trace.json"; then
    echo "FAIL: events2trace.py rejected the event stream"
    exit 1
  fi
  echo "ok: events2trace.py exported $(wc -c <"$work/$name.trace.json") bytes"
fi
