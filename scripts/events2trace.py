#!/usr/bin/env python3
"""Convert a densemem --events JSONL stream into a Chrome trace-event file.

Usage:
    events2trace.py EVENTS_JSONL [-o OUT_JSON] [--spans TRACE_JSONL]

The output loads in Perfetto (https://ui.perfetto.dev) or chrome://tracing:

  * each campaign becomes a process group (pid), each job a thread (tid);
  * every domain event becomes an instant event at its simulated time
    (t_ms, microsecond resolution; decision events carry no simulated
    timestamp and land at t=0 in their job's row, ordered by seq);
  * with --spans, the harness's --trace span sidecar is added as duration
    events on a separate "attempts" process, so wall-clock scheduling and
    simulated device time can be eyeballed side by side.

Stdlib only; no installs needed.
"""

import argparse
import json
import sys


def load_jsonl(path):
    rows = []
    with open(path, "r", encoding="utf-8") as f:
        for n, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as e:
                raise SystemExit(f"{path}:{n}: not valid JSON: {e}")
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("events", help="--events JSONL artifact")
    ap.add_argument("-o", "--out", default="trace.json",
                    help="output Chrome trace file (default: trace.json)")
    ap.add_argument("--spans", help="optional --trace span JSONL sidecar")
    args = ap.parse_args()

    trace = []
    pids = {}

    def pid_for(campaign):
        if campaign not in pids:
            pids[campaign] = len(pids) + 1
            trace.append({"name": "process_name", "ph": "M",
                          "pid": pids[campaign], "tid": 0,
                          "args": {"name": f"campaign {campaign}"}})
        return pids[campaign]

    required = ("campaign", "job", "seq", "kind", "bank", "row")
    for ev in load_jsonl(args.events):
        missing = [k for k in required if k not in ev]
        if missing:
            raise SystemExit(f"event missing keys {missing}: {ev}")
        meta = {k: v for k, v in ev.items()
                if k not in ("campaign", "job", "kind")}
        name = ev["kind"]
        if name == "flip":
            name = f"flip {ev.get('mechanism', '?')}"
        trace.append({
            "name": name,
            "cat": ev["kind"],
            "ph": "i",
            "s": "t",
            "ts": ev.get("t_ms", 0.0) * 1000.0,
            "pid": pid_for(ev["campaign"]),
            "tid": ev["job"],
            "args": meta,
        })

    if args.spans:
        span_pid = len(pids) + 1
        trace.append({"name": "process_name", "ph": "M", "pid": span_pid,
                      "tid": 0, "args": {"name": "attempts (wall clock)"}})
        for sp in load_jsonl(args.spans):
            trace.append({
                "name": f"{sp['campaign']}/{sp['job']}#{sp['attempt']}",
                "cat": sp.get("outcome", "ok"),
                "ph": "X",
                "ts": sp.get("t_start_s", 0.0) * 1e6,
                "dur": max(sp.get("duration_s", 0.0) * 1e6, 1.0),
                "pid": span_pid,
                "tid": sp.get("worker", 0),
                "args": sp,
            })

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump({"traceEvents": trace,
                   "displayTimeUnit": "ms"}, f)
    print(f"wrote {len(trace)} trace events to {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
