#!/usr/bin/env bash
# A typoed flag (e.g. --thread for --threads) must fail fast with exit 64
# (EX_USAGE) and a usage hint on stderr — not be silently ignored.
#
#   usage_check.sh <bench-exe>
set -u

bench=$1
rc=0
err=$("$bench" --thread 2 2>&1 >/dev/null) || rc=$?

if [ "$rc" -ne 64 ]; then
  echo "FAIL: expected exit 64 for unknown flag, got $rc"
  exit 1
fi
if ! printf '%s\n' "$err" | grep -q "unknown flag '--thread'"; then
  echo "FAIL: stderr does not name the unknown flag:"
  printf '%s\n' "$err"
  exit 1
fi
if ! printf '%s\n' "$err" | grep -q "usage:"; then
  echo "FAIL: stderr has no usage hint:"
  printf '%s\n' "$err"
  exit 1
fi
echo "ok: unknown flag rejected with exit 64 and a usage hint"
