#!/usr/bin/env bash
# Regenerate tests/golden/<bench>.quick.txt from the current bench binaries.
#
#   scripts/update_goldens.sh [build-dir]
#
# Run this ONLY after an intentional output change, then review the golden
# diff like any other code change: every line that moves is a behaviour
# change the PR must explain. bench_micro has no golden (google-benchmark
# prints wall-clock timings, which are inherently nondeterministic).
set -eu

build=${1:-build}
repo=$(cd "$(dirname "$0")/.." && pwd)

found=0
for exe in "$build"/bench/bench_*; do
  [ -f "$exe" ] && [ -x "$exe" ] || continue
  name=$(basename "$exe")
  [ "$name" = bench_micro ] && continue
  echo "golden: $name"
  "$exe" --quick >"$repo/tests/golden/$name.quick.txt"
  found=$((found + 1))
done

if [ "$found" -eq 0 ]; then
  echo "error: no bench binaries under $build/bench (build with -DDENSEMEM_BUILD_BENCH=ON)" >&2
  exit 1
fi
echo "regenerated $found goldens in tests/golden/"
