#!/usr/bin/env bash
# Fault-injection + journal resume round trip for a campaign bench: a clean
# run and an interrupted-then-resumed run (both with injected faults) must
# produce byte-identical stdout.
#
#   resume_roundtrip.sh <bench-exe> <workdir>
set -u

bench=$1
work=$2
name=$(basename "$bench")
mkdir -p "$work"
rm -f "$work/$name".*

if ! "$bench" --quick --threads 2 >"$work/$name.clean.txt" 2>/dev/null; then
  echo "FAIL: clean run exited nonzero"
  exit 1
fi

# Interrupted run: injected faults exercise the retry path, --abort-after
# checkpoints mid-campaign. Exit 75 = interrupted-but-journaled (EX_TEMPFAIL).
rc=0
"$bench" --quick --threads 2 --inject-faults 7 --max-retries 2 \
  --journal "$work/$name.journal" --abort-after 2 \
  >"$work/$name.partial.txt" 2>"$work/$name.partial.err" || rc=$?
if [ "$rc" -ne 75 ]; then
  echo "FAIL: interrupted run expected exit 75, got $rc; stderr:"
  cat "$work/$name.partial.err"
  exit 1
fi

if ! "$bench" --quick --threads 2 --inject-faults 7 --max-retries 2 \
    --resume "$work/$name.journal" \
    >"$work/$name.resumed.txt" 2>"$work/$name.resumed.err"; then
  echo "FAIL: resumed run exited nonzero; stderr:"
  cat "$work/$name.resumed.err"
  exit 1
fi
if ! grep -q 'resumed' "$work/$name.resumed.err"; then
  echo "FAIL: resumed run never replayed journaled jobs"
  exit 1
fi

if ! diff -u "$work/$name.clean.txt" "$work/$name.resumed.txt" \
    >"$work/$name.diff"; then
  echo "FAIL: resumed stdout differs from clean run:"
  head -40 "$work/$name.diff"
  exit 1
fi
echo "ok: $name interrupted+resumed stdout is byte-identical to a clean run"
