// Robustness sweeps for the SoftMC trace front end: malformed input must
// produce positioned diagnostics (never crashes, never a half-parsed
// program), and structured programs must execute equivalently to their
// unrolled forms.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "softmc/trace.h"

namespace densemem::softmc {
namespace {

// Deterministic corpus of valid commands to mutate.
const char* kCorpus[] = {
    "ACT 0 10",  "PRE 0",          "RD 0 3",         "WR 0 3 0xFF",
    "REF 4",     "WAIT 10ms",      "HAMMER 0 5 100", "FILL ones",
    "CHECK 0 10 ones", "LOOP 2",   "ENDLOOP",        "# comment",
};

std::string mutate(const std::string& line, Rng& rng) {
  std::string out = line;
  switch (rng.uniform_int(std::uint64_t{5})) {
    case 0:  // delete a character
      if (!out.empty())
        out.erase(rng.uniform_int(std::uint64_t{out.size()}), 1);
      break;
    case 1:  // duplicate a token separator
      out += " 99zz";
      break;
    case 2:  // flip a character
      if (!out.empty())
        out[rng.uniform_int(std::uint64_t{out.size()})] =
            static_cast<char>('!' + rng.uniform_int(std::uint64_t{90}));
      break;
    case 3:  // truncate
      out = out.substr(0, out.size() / 2);
      break;
    default:  // prepend junk
      out = "Zq" + out;
      break;
  }
  return out;
}

TEST(TraceFuzz, MutatedProgramsNeverCrashAndDiagnosePositions) {
  Rng rng(2024);
  int rejected = 0, accepted = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string program;
    int loop_depth = 0;
    const int lines = 1 + static_cast<int>(rng.uniform_int(std::uint64_t{8}));
    for (int l = 0; l < lines; ++l) {
      std::string line =
          kCorpus[rng.uniform_int(std::uint64_t{std::size(kCorpus)})];
      if (line == "LOOP 2") ++loop_depth;
      if (line == "ENDLOOP") --loop_depth;
      if (rng.bernoulli(0.4)) line = mutate(line, rng);
      program += line + "\n";
    }
    const auto r = parse_trace(program);
    if (r.ok) {
      ++accepted;
      // Accepted programs have balanced loops by construction of the parser.
      int depth = 0;
      for (const auto& ins : r.program) {
        if (ins.op == Op::kLoop) ++depth;
        if (ins.op == Op::kEndLoop) --depth;
        ASSERT_GE(depth, 0);
      }
      ASSERT_EQ(depth, 0);
    } else {
      ++rejected;
      ASSERT_GE(r.error.line, 1);
      ASSERT_LE(r.error.line, lines);
      ASSERT_FALSE(r.error.message.empty());
    }
  }
  // The fuzz must actually exercise both outcomes.
  EXPECT_GT(rejected, 300);
  EXPECT_GT(accepted, 100);
}

TEST(TraceFuzz, LoopedAndUnrolledProgramsAreEquivalent) {
  dram::DeviceConfig dc;
  dc.geometry = dram::Geometry::tiny();
  dc.reliability = dram::ReliabilityParams::vulnerable();
  dc.reliability.weak_cell_density = 1e-3;
  dc.reliability.hc50 = 8e3;
  dc.reliability.dpd_sensitivity_mean = 0.0;
  dc.reliability.anticell_fraction = 0.0;
  dc.seed = 55;

  const std::string looped = R"(
FILL ones
LOOP 3
  HAMMER 0 99 2000
  HAMMER 0 101 2000
  LOOP 2
    ACT 0 10
    PRE 0
  ENDLOOP
ENDLOOP
CHECK 0 100 ones
)";
  std::string unrolled = "FILL ones\n";
  for (int i = 0; i < 3; ++i) {
    unrolled += "HAMMER 0 99 2000\nHAMMER 0 101 2000\n";
    for (int j = 0; j < 2; ++j) unrolled += "ACT 0 10\nPRE 0\n";
  }
  unrolled += "CHECK 0 100 ones\n";

  dram::Device dev_a(dc), dev_b(dc);
  const auto ra = run_trace_text(looped, dev_a);
  const auto rb = run_trace_text(unrolled, dev_b);
  EXPECT_EQ(ra.check_errors, rb.check_errors);
  EXPECT_EQ(dev_a.stats().activates, dev_b.stats().activates);
  EXPECT_EQ(dev_a.snapshot_row(0, 100), dev_b.snapshot_row(0, 100));
  EXPECT_EQ(ra.end_time, rb.end_time);
}

TEST(TraceFuzz, DeepNestingParses) {
  std::string program;
  const int depth = 30;
  for (int i = 0; i < depth; ++i) program += "LOOP 1\n";
  program += "ACT 0 1\nPRE 0\n";
  for (int i = 0; i < depth; ++i) program += "ENDLOOP\n";
  const auto r = parse_trace(program);
  ASSERT_TRUE(r.ok);
  dram::DeviceConfig dc;
  dc.geometry = dram::Geometry::tiny();
  dc.reliability = dram::ReliabilityParams::robust();
  dram::Device dev(dc);
  const auto stats = run_trace(r.program, dev);
  EXPECT_EQ(dev.stats().activates, 1u);
  EXPECT_GT(stats.commands_executed, 60u);
}

TEST(TraceFuzz, LargeLoopCountsExecute) {
  dram::DeviceConfig dc;
  dc.geometry = dram::Geometry::tiny();
  dc.reliability = dram::ReliabilityParams::robust();
  dram::Device dev(dc);
  const auto stats = run_trace_text(
      "LOOP 10000\nACT 0 5\nPRE 0\nENDLOOP\n", dev);
  EXPECT_EQ(dev.stats().activates, 10'000u);
  // 1 LOOP + 10000 x (ACT + PRE + ENDLOOP).
  EXPECT_EQ(stats.commands_executed, 1u + 3u * 10'000u);
}

}  // namespace
}  // namespace densemem::softmc
