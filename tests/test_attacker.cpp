#include "attack/attacker.h"

#include <gtest/gtest.h>

#include "core/system.h"

namespace densemem::attack {
namespace {

dram::DeviceConfig victim_device(std::uint64_t seed = 81) {
  dram::DeviceConfig cfg;
  cfg.geometry = dram::Geometry::tiny();
  cfg.reliability = dram::ReliabilityParams::vulnerable();
  cfg.reliability.weak_cell_density = 1e-3;
  cfg.reliability.hc50 = 10e3;
  cfg.reliability.hc_sigma = 0.3;
  cfg.reliability.dpd_sensitivity_mean = 0.0;
  cfg.reliability.anticell_fraction = 0.0;
  cfg.seed = seed;
  cfg.record_flip_events = true;
  return cfg;
}

std::uint32_t weak_victim(dram::Device& dev) {
  for (std::uint32_t r : dev.fault_map().weak_rows(0))
    if (r >= 3 && r + 3 < dev.geometry().rows) return r;
  return 0;
}

AttackConfig attack_on(std::uint32_t victim, dram::Device& dev) {
  AttackConfig cfg;
  cfg.pattern.kind = PatternKind::kDoubleSided;
  cfg.pattern.victim_row = victim;
  cfg.pattern.rows_in_bank = dev.geometry().rows;
  cfg.max_iterations = 30'000;
  return cfg;
}

TEST(Attacker, DoubleSidedObservesFlips) {
  dram::Device dev(victim_device());
  ctrl::MemoryController mc(dev, ctrl::CtrlConfig{});
  const std::uint32_t victim = weak_victim(dev);
  ASSERT_NE(victim, 0u);
  Attacker atk(attack_on(victim, dev));
  const auto res = atk.run(mc);
  EXPECT_GT(res.raw_disturb_flips, 0u);
  EXPECT_GT(res.observed_flips, 0u);
  EXPECT_EQ(res.iterations_run, 30'000u);
  EXPECT_GT(res.activates, 60'000u - 1);
  EXPECT_GT(res.elapsed_ms, 0.0);
  // Read-hammer only flips victims, never corrupts the aggressor rows
  // themselves: every flip is 1->0 of the all-ones victim data here.
  EXPECT_EQ(res.flips_0to1, 0u);
}

TEST(Attacker, StopAtFirstFlipRecordsTime) {
  dram::Device dev(victim_device());
  ctrl::MemoryController mc(dev, ctrl::CtrlConfig{});
  const std::uint32_t victim = weak_victim(dev);
  ASSERT_NE(victim, 0u);
  AttackConfig cfg = attack_on(victim, dev);
  // Checking reads the victims, which restores their charge: the check
  // cadence must let stress exceed the cell thresholds in between.
  cfg.check_every = 10'000;
  cfg.stop_at_first_flip = true;
  Attacker atk(cfg);
  const auto res = atk.run(mc);
  ASSERT_TRUE(res.first_flip_ms.has_value());
  EXPECT_GT(*res.first_flip_ms, 0.0);
  EXPECT_LT(res.iterations_run, cfg.max_iterations);
}

TEST(Attacker, FlipsAreAdjacentToAggressors) {
  dram::Device dev(victim_device());
  ctrl::MemoryController mc(dev, ctrl::CtrlConfig{});
  const std::uint32_t victim = weak_victim(dev);
  ASSERT_NE(victim, 0u);
  Attacker atk(attack_on(victim, dev));
  const auto res = atk.run(mc);
  ASSERT_GT(res.raw_disturb_flips, 0u);
  std::uint64_t at_d1 = 0, beyond_d2 = 0;
  for (const auto& [dist, n] : res.flips_by_distance) {
    if (dist == 1) at_d1 += n;
    if (dist > 2) beyond_d2 += n;
  }
  EXPECT_GT(at_d1, 0u);
  EXPECT_EQ(beyond_d2, 0u) << "flips farther than distance 2 are impossible";
}

TEST(Attacker, RandomPatternIsHarmless) {
  dram::Device dev(victim_device());
  ctrl::MemoryController mc(dev, ctrl::CtrlConfig{});
  AttackConfig cfg;
  cfg.pattern.kind = PatternKind::kRandom;
  cfg.pattern.victim_row = 100;
  cfg.pattern.rows_in_bank = dev.geometry().rows;
  cfg.max_iterations = 30'000;
  Attacker atk(cfg);
  const auto res = atk.run(mc);
  // Random rows spread stress below every threshold.
  EXPECT_EQ(res.raw_disturb_flips, 0u);
}

TEST(Attacker, EccControllerHidesCorrectableFlips) {
  dram::DeviceConfig dc = victim_device(83);
  dc.reliability.weak_cell_density = 2e-4;  // isolated flips per word
  dram::Device dev(dc);
  ctrl::CtrlConfig cc;
  cc.ecc = ctrl::EccMode::kSecded;
  ctrl::MemoryController mc(dev, cc);
  std::uint32_t victim = weak_victim(dev);
  ASSERT_NE(victim, 0u);
  Attacker atk(attack_on(victim, dev));
  const auto res = atk.run(mc);
  ASSERT_GT(res.raw_disturb_flips, 0u);
  EXPECT_EQ(res.observed_flips, 0u) << "SECDED should hide isolated flips";
  EXPECT_GT(res.ecc_corrected_words, 0u);
}

TEST(Attacker, WriteHammerAlsoInducesFlips) {
  // §II-A invariant (ii): write accesses to aggressor rows corrupt other
  // rows too — activation is what hammers, not the read/write itself.
  dram::Device dev(victim_device());
  ctrl::MemoryController mc(dev, ctrl::CtrlConfig{});
  const std::uint32_t victim = weak_victim(dev);
  ASSERT_NE(victim, 0u);
  // Charge the victim cells (true cells flip only from the 1 state).
  dev.fill_all(dram::BackgroundPattern::kOnes, mc.now());
  std::array<std::uint64_t, 8> junk;
  junk.fill(0x1234567890ABCDEFull);
  for (int i = 0; i < 30'000; ++i) {
    // Alternate writes to the two aggressors: each write re-opens the row.
    mc.write_block({0, 0, 0, victim - 1, 0}, junk);
    mc.write_block({0, 0, 0, victim + 1, 0}, junk);
  }
  mc.activate_precharge(0, victim);
  EXPECT_GT(dev.stats().disturb_flips, 0u);
}

}  // namespace
}  // namespace densemem::attack
