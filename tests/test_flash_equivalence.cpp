// Equivalence tests: the optimized flash device (bitplane program/read
// kernels, memoized leak/susceptibility, hoisted per-page drift terms, and
// the stored-Vth band screen with slow-path word exceptions) must be
// bit-exact with the frozen pre-optimization implementation in
// reference_flash.{h,cpp} — identical read bits, stats, intended states,
// stored Vth and effective Vth for identical program/erase/read scripts
// across every page state, reference offsets and per-cell offsets, with the
// controller LSB-buffering mitigation both on and off, including inside
// campaign jobs at widths 1/2/8.
#include <gtest/gtest.h>

#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "flash/device.h"
#include "reference_flash.h"
#include "sim/campaign.h"

namespace densemem {
namespace {

flash::FlashConfig small_config(std::uint64_t seed, bool buffer_lsb,
                                std::uint32_t page_bits = 128) {
  flash::FlashConfig cfg;
  cfg.geometry.blocks = 2;
  cfg.geometry.wordlines = 4;
  cfg.geometry.page_bits = page_bits;
  cfg.seed = seed;
  cfg.buffer_lsb_in_controller = buffer_lsb;
  return cfg;
}

BitVec random_page(Rng& rng, std::uint32_t bits) {
  BitVec v(bits);
  for (std::size_t w = 0; w < v.word_count(); ++w) v.set_word(w, rng.next_u64());
  return v;
}

void append_bits(std::ostringstream& os, const BitVec& v) {
  os << std::hex;
  for (std::size_t w = 0; w < v.word_count(); ++w) os << v.word(w) << ",";
  os << std::dec << "\n";
}

// Drives one device through a fixed program/erase/read script covering
// erased, LSB-only and fully-programmed wordlines, retention ages, read
// disturb accumulation, reference-offset sweeps and per-cell offsets, and
// returns a digest of every observable (read words, stats, intended states,
// exact stored/effective Vth).
template <typename Device>
std::string run_script(Device& dev, std::uint64_t data_seed) {
  using flash::PageAddress;
  using flash::PageType;
  Rng rng(data_seed);
  const auto& g = dev.geometry();
  std::ostringstream os;
  os << std::hexfloat;

  const auto dump_state = [&](const char* tag) {
    os << tag << " stats " << dev.stats().programs << " " << dev.stats().reads
       << " " << dev.stats().erases << " "
       << dev.stats().two_step_lsb_misreads << "\n";
    for (std::uint32_t b = 0; b < g.blocks; ++b) {
      os << "pe " << dev.pe_cycles(b) << "\n";
      for (std::uint32_t wl = 0; wl < g.wordlines; ++wl)
        for (std::uint32_t c = 0; c < g.page_bits; c += 17)
          os << dev.intended_state(b, wl, c) << " "
             << static_cast<double>(dev.stored_vth(b, wl, c)) << "\n";
    }
  };

  // Erased-state reads (both page types, both early and aged).
  for (double now : {0.0, 3.0e6}) {
    append_bits(os, dev.read_page({0, 0, PageType::kLsb}, now));
    append_bits(os, dev.read_page({0, 0, PageType::kMsb}, now));
  }

  // Two-step programming across wordlines (interference couples wl -> wl-1).
  double t = 1000.0;
  for (std::uint32_t wl = 0; wl < g.wordlines; ++wl) {
    dev.program_page({0, wl, PageType::kLsb}, random_page(rng, g.page_bits), t);
    t += 500.0;
  }
  dump_state("lsb-only");
  // Read the intermediate state before and long after (retention drift).
  append_bits(os, dev.read_page({0, 1, PageType::kLsb}, t));
  append_bits(os, dev.read_page({0, 1, PageType::kLsb}, t + 90.0 * 86400.0));

  // MSB step after a long drift window: the two-step vulnerability.
  t += 30.0 * 86400.0;
  for (std::uint32_t wl = 0; wl + 1 < g.wordlines; ++wl) {
    dev.program_page({0, wl, PageType::kMsb}, random_page(rng, g.page_bits), t);
    t += 500.0;
  }
  dump_state("programmed");

  // Read-disturb accumulation plus periodic observation.
  for (int burst = 0; burst < 4; ++burst) {
    for (int i = 0; i < 250; ++i)
      dev.read_page({0, 2, PageType::kLsb}, t);
    append_bits(os, dev.read_page({0, 0, PageType::kLsb}, t));
    append_bits(os, dev.read_page({0, 0, PageType::kMsb}, t));
  }

  // Reference-offset sweep (read-retry) on every page state.
  for (double off : {-0.35, -0.05, 0.0, 0.05, 0.35}) {
    append_bits(os, dev.read_page({0, 0, PageType::kLsb}, t, off));
    append_bits(os, dev.read_page({0, 0, PageType::kMsb}, t, off));
    append_bits(os, dev.read_page({0, 3, PageType::kLsb}, t, off));  // LSB-only
    append_bits(os, dev.read_page({1, 0, PageType::kLsb}, t, off));  // erased
  }

  // Per-cell offsets (NAC-style).
  std::vector<float> offsets(g.page_bits);
  for (auto& o : offsets)
    o = static_cast<float>(rng.normal(0.0, 0.15));
  append_bits(os, dev.read_page_with_offsets({0, 1, PageType::kLsb}, t, offsets));
  append_bits(os, dev.read_page_with_offsets({0, 1, PageType::kMsb}, t, offsets));

  // Wear: age, erase, reprogram, read far in the future.
  dev.age_block(0, 3000);
  dev.erase_block(0, t);
  dev.program_page({0, 0, PageType::kLsb}, random_page(rng, g.page_bits), t);
  dev.program_page({0, 0, PageType::kMsb}, random_page(rng, g.page_bits),
                   t + 40.0 * 86400.0);
  append_bits(os,
              dev.read_page({0, 0, PageType::kMsb}, t + 300.0 * 86400.0));
  dump_state("reprogrammed");

  // Analog observables: exact effective Vth and ground-truth factors.
  for (std::uint32_t c = 0; c < g.page_bits; c += 11)
    os << dev.effective_vth(0, 0, c, t + 300.0 * 86400.0) << " "
       << dev.leak_factor(0, 0, c) << " " << dev.rd_susceptibility(0, 0, c)
       << "\n";
  return os.str();
}

void expect_equivalent(const flash::FlashConfig& cfg, std::uint64_t data_seed) {
  flash::FlashDevice fast(cfg);
  refimpl::RefFlashDevice ref(cfg);
  const std::string a = run_script(fast, data_seed);
  const std::string b = run_script(ref, data_seed);
  ASSERT_EQ(a, b);
}

TEST(FlashEquivalence, ScriptMatchesReference) {
  expect_equivalent(small_config(11, false), 1);
}

TEST(FlashEquivalence, ScriptMatchesReferenceBufferedLsb) {
  expect_equivalent(small_config(12, true), 2);
}

TEST(FlashEquivalence, ScriptMatchesReferenceUnalignedPageTail) {
  // page_bits not a multiple of 64 exercises the partial-word bitplanes.
  expect_equivalent(small_config(13, false, 96), 3);
}

TEST(FlashEquivalence, ScriptMatchesReferenceAcrossSeeds) {
  for (std::uint64_t seed : {21ull, 22ull, 23ull, 24ull})
    expect_equivalent(small_config(seed, seed % 2 == 0), seed);
}

// The pair must agree inside campaign jobs, and the merged digests must be
// identical at 1, 2 and 8 worker threads.
TEST(FlashEquivalence, IdenticalAcross1And2And8Threads) {
  const auto run_at = [](unsigned threads) {
    sim::CampaignConfig cfg;
    cfg.threads = threads;
    cfg.seed = 99;
    cfg.progress = false;
    sim::Campaign c("flash-equivalence", cfg);
    return c.map<std::string>(8, [](const sim::JobContext& ctx) {
      const auto fc = small_config(ctx.stream_seed | 1, ctx.index % 2 == 1,
                                   ctx.index % 3 == 0 ? 96u : 128u);
      flash::FlashDevice fast(fc);
      refimpl::RefFlashDevice ref(fc);
      const std::string a = run_script(fast, ctx.stream_seed ^ 0x5a5a);
      const std::string b = run_script(ref, ctx.stream_seed ^ 0x5a5a);
      return std::string(a == b ? "match\n" : "MISMATCH\n") + a;
    });
  };
  const auto one = run_at(1);
  const auto two = run_at(2);
  const auto eight = run_at(8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  for (const std::string& d : one)
    EXPECT_EQ(d.substr(0, 6), "match\n");
}

}  // namespace
}  // namespace densemem
