// Unit tests for the fuzzing subsystem: the sampler-based TRR's overwhelm
// threshold, genome compilation/codec round trips, and determinism of
// campaign-driven probes across worker widths.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"
#include "ctrl/trr_sampler.h"
#include "fuzz/fuzzer.h"
#include "fuzz/params.h"
#include "fuzz/pattern.h"
#include "fuzz/replay.h"
#include "sim/campaign.h"

namespace densemem::fuzz {
namespace {

ctrl::AdjacencyFn plus_minus_one() {
  return [](std::uint32_t row) {
    std::vector<std::uint32_t> out;
    if (row > 0) out.push_back(row - 1);
    out.push_back(row + 1);
    return out;
  };
}

// --- TrrSampler ------------------------------------------------------------

// With sample_rate 1 the sampler is a deterministic ring of the last
// `entries` distinct rows: hammering a pair then touching D distinct decoys
// catches the pair for D < entries and misses it for D >= entries — the
// overwhelm threshold IS the CAM capacity.
TEST(TrrSampler, OverwhelmThresholdIsCamCapacity) {
  for (std::uint32_t entries : {1u, 2u, 4u, 8u}) {
    for (std::uint32_t decoys : {0u, 1u, 3u, 7u, 8u, 12u}) {
      ctrl::TrrSamplerConfig cfg;
      cfg.sampler_entries = entries;
      cfg.sample_rate = 1.0;
      cfg.neighbors_per_ref = 2 * (entries + decoys);  // budget never binds
      ctrl::TrrSampler sampler(cfg, plus_minus_one());
      std::vector<ctrl::RefreshRequest> reqs;
      // Hammer the pair around victim 100, then flood distinct decoys.
      for (int i = 0; i < 8; ++i) {
        sampler.on_activate(0, 99, reqs);
        sampler.on_activate(0, 101, reqs);
      }
      for (std::uint32_t d = 0; d < decoys; ++d)
        sampler.on_activate(0, 200 + 2 * d, reqs);
      sampler.on_ref_command(reqs);
      bool victim_refreshed = false;
      for (const auto& r : reqs) victim_refreshed |= (r.row == 100);
      // The pair occupies 2 CAM slots; decoys push them out oldest-first,
      // so the second pair entry dies on the `entries`-th distinct decoy.
      const bool expect_caught = decoys < entries;
      EXPECT_EQ(victim_refreshed, expect_caught)
          << "entries=" << entries << " decoys=" << decoys;
    }
  }
}

TEST(TrrSampler, SamplingIsDeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    ctrl::TrrSamplerConfig cfg;
    cfg.sample_rate = 0.25;
    cfg.seed = seed;
    ctrl::TrrSampler sampler(cfg, plus_minus_one());
    std::vector<ctrl::RefreshRequest> reqs;
    for (std::uint32_t i = 0; i < 500; ++i)
      sampler.on_activate(0, 50 + (i * 7) % 100, reqs);
    sampler.on_ref_command(reqs);
    std::vector<std::uint32_t> rows;
    for (const auto& r : reqs) rows.push_back(r.row);
    return rows;
  };
  EXPECT_EQ(run(7), run(7));        // same seed, same refreshes
  EXPECT_NE(run(7), run(8));        // the stream is actually seeded
}

TEST(TrrSampler, RefClearsTheWindow) {
  ctrl::TrrSamplerConfig cfg;
  cfg.sample_rate = 1.0;
  ctrl::TrrSampler sampler(cfg, plus_minus_one());
  std::vector<ctrl::RefreshRequest> reqs;
  sampler.on_activate(0, 99, reqs);
  sampler.on_ref_command(reqs);
  const std::size_t after_first = reqs.size();
  EXPECT_GT(after_first, 0u);
  // Nothing sampled since the REF: the next REF has nothing to refresh.
  sampler.on_ref_command(reqs);
  EXPECT_EQ(reqs.size(), after_first);
}

TEST(TrrSampler, BanksAreIndependentAndOrdered) {
  ctrl::TrrSamplerConfig cfg;
  cfg.sample_rate = 1.0;
  cfg.neighbors_per_ref = 4;
  ctrl::TrrSampler sampler(cfg, plus_minus_one());
  std::vector<ctrl::RefreshRequest> reqs;
  // Touch banks in descending order; refreshes must come back ascending.
  sampler.on_activate(3, 300, reqs);
  sampler.on_activate(1, 100, reqs);
  sampler.on_ref_command(reqs);
  ASSERT_EQ(reqs.size(), 4u);
  EXPECT_EQ(reqs[0].fbank, 1u);
  EXPECT_EQ(reqs[1].fbank, 1u);
  EXPECT_EQ(reqs[2].fbank, 3u);
  EXPECT_EQ(reqs[3].fbank, 3u);
}

// --- Pattern genome --------------------------------------------------------

TEST(PatternGenome, CompileRespectsPeriodAndPlacesTuples) {
  PatternGenome g;
  g.base_period = 16;
  g.tuples.push_back({/*frequency=*/2, /*phase=*/0, /*amplitude=*/2,
                      /*rows=*/{10, 12}});
  const auto slots = g.compile();
  ASSERT_EQ(slots.size(), 16u);
  // Occurrence 0 at slot 0, occurrence 1 at slot 8 (stride = 16/2), each a
  // burst of amplitude*rows = 4 slots alternating the tuple's rows.
  const std::vector<std::uint32_t> expect_burst = {10, 12, 10, 12};
  for (std::uint32_t occ : {0u, 8u})
    for (std::uint32_t k = 0; k < 4; ++k)
      EXPECT_EQ(slots[occ + k], expect_burst[k]) << "slot " << occ + k;
  EXPECT_EQ(slots[5], kIdleSlot);
  EXPECT_EQ(g.acts_per_period(), 8u);
}

TEST(PatternGenome, FirstWriterWinsOnOverlap) {
  PatternGenome g;
  g.base_period = 8;
  g.tuples.push_back({1, 0, 2, {20}});  // slots 0,1
  g.tuples.push_back({1, 1, 2, {30}});  // wants 1,2; slot 1 taken
  const auto slots = g.compile();
  EXPECT_EQ(slots[0], 20u);
  EXPECT_EQ(slots[1], 20u);
  EXPECT_EQ(slots[2], 30u);
}

TEST(PatternGenome, ExpectedVictimsExcludeAggressorsAndClampToBank) {
  PatternGenome g;
  g.base_period = 8;
  g.tuples.push_back({1, 0, 1, {1, 510}});
  const auto victims = g.expected_victims(/*rows_in_bank=*/512);
  const std::set<std::uint32_t> vset(victims.begin(), victims.end());
  EXPECT_TRUE(vset.count(0));
  EXPECT_TRUE(vset.count(2));
  EXPECT_TRUE(vset.count(511));
  EXPECT_FALSE(vset.count(1));    // aggressor
  EXPECT_FALSE(vset.count(510));  // aggressor
  for (std::uint32_t v : victims) EXPECT_LT(v, 512u);
}

TEST(PatternGenome, CodecRoundTripsExactly) {
  Rng rng(42);
  FuzzingParameterSet params;
  for (int i = 0; i < 50; ++i) {
    const PatternGenome g = params.sample(rng);
    const PatternGenome back = PatternGenome::decode(g.encode());
    EXPECT_EQ(back.base_period, g.base_period);
    ASSERT_EQ(back.tuples.size(), g.tuples.size());
    for (std::size_t t = 0; t < g.tuples.size(); ++t)
      EXPECT_TRUE(back.tuples[t] == g.tuples[t]);
    EXPECT_EQ(back.compile(), g.compile());
  }
}

TEST(FuzzingParameterSet, SampleAndMutateStayInBounds) {
  Rng rng(7);
  FuzzingParameterSet params;
  PatternGenome g = params.sample(rng);
  for (int i = 0; i < 200; ++i) {
    g = params.mutate(g, rng);
    EXPECT_GE(g.tuples.size(), 1u);
    EXPECT_LE(g.tuples.size(), params.max_tuples);
    for (const AggressorTuple& t : g.tuples) {
      EXPECT_GE(t.frequency, 1u);
      EXPECT_LE(t.frequency, params.max_frequency);
      EXPECT_GE(t.amplitude, 1u);
      EXPECT_LE(t.amplitude, params.max_amplitude);
      EXPECT_LT(t.phase, params.base_period);
      ASSERT_FALSE(t.rows.empty());
      for (std::uint32_t r : t.rows) {
        EXPECT_GE(r, params.row_margin - 1);
        EXPECT_LT(r, params.rows_in_bank - params.row_margin + 1);
      }
    }
  }
}

// --- Probes under the campaign engine --------------------------------------

ProbeSetup small_setup() {
  ProbeSetup s;
  s.device.geometry = dram::Geometry::tiny();
  s.device.reliability = dram::ReliabilityParams::vulnerable();
  s.device.reliability.weak_cell_density = 3e-3;
  s.device.reliability.hc50 = 4e3;
  s.device.reliability.dpd_sensitivity_mean = 0.0;
  s.device.reliability.anticell_fraction = 0.0;
  s.device.seed = 1106;
  s.device.pattern = dram::BackgroundPattern::kOnes;
  s.act_budget = 4096;
  return s;
}

// One fuzz probe is a pure function of its stream seed: the same campaign
// run at worker widths 1, 2, and 8 merges identical flip counts.
TEST(FuzzCampaign, ProbeResultsIdenticalAcrossThreadWidths) {
  const ProbeSetup setup = small_setup();
  const Fuzzer fuzzer{[] {
    FuzzingParameterSet p;
    p.rows_in_bank = 512;
    return p;
  }()};
  const auto run_width = [&](unsigned threads) {
    sim::CampaignConfig cc;
    cc.threads = threads;
    cc.seed = 99;
    cc.progress = false;
    sim::Campaign campaign("fuzz_width", cc);
    return campaign.map<std::uint64_t>(8, [&](const sim::JobContext& ctx) {
      const PatternGenome g = fuzzer.genome_for(ctx.stream_seed);
      return run_genome(g, setup).flips;
    });
  };
  const auto w1 = run_width(1);
  EXPECT_EQ(w1, run_width(2));
  EXPECT_EQ(w1, run_width(8));
}

TEST(FuzzProbe, RunGenomeIsDeterministic) {
  const ProbeSetup setup = small_setup();
  Rng rng(3);
  FuzzingParameterSet params;
  const PatternGenome g = params.sample(rng);
  const ProbeResult a = run_genome(g, setup);
  const ProbeResult b = run_genome(g, setup);
  EXPECT_EQ(a.flips, b.flips);
  EXPECT_EQ(a.acts, b.acts);
  EXPECT_EQ(a.targeted_refreshes, b.targeted_refreshes);
  EXPECT_EQ(a.acts, setup.act_budget);
}

TEST(FuzzProbe, KernelsRunAtTheSameBudget) {
  const ProbeSetup setup = small_setup();
  const ProbeResult r = run_kernel(attack::PatternKind::kDoubleSided, setup);
  EXPECT_EQ(r.acts, setup.act_budget);
}

TEST(FuzzReplay, MinimizeNeverLosesFlips) {
  const ProbeSetup setup = small_setup();
  Rng rng(11);
  FuzzingParameterSet params;
  const PatternGenome g = params.sample(rng);
  const std::uint64_t original = run_genome(g, setup).flips;
  const MinimizeResult m = minimize(g, setup);
  EXPECT_GE(m.flips, original);
  EXPECT_GE(m.genome.tuples.size(), 1u);
  EXPECT_LE(m.genome.tuples.size(), g.tuples.size());
}

TEST(FuzzReplay, ReplayReportsDeterminism) {
  const ProbeSetup setup = small_setup();
  Rng rng(13);
  FuzzingParameterSet params;
  const PatternGenome g = params.sample(rng);
  const ReplayReport rep = replay(g, setup, {5, 6});
  EXPECT_TRUE(rep.deterministic);
  EXPECT_EQ(rep.flips_per_seed.size(), 3u);
}

}  // namespace
}  // namespace densemem::fuzz
