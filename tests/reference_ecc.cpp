// Frozen pre-optimization ECC implementations; see reference_ecc.h.
#include "reference_ecc.h"

#include <algorithm>
#include <array>
#include <bit>
#include <set>

namespace densemem::refimpl {
namespace {

constexpr bool is_pow2(unsigned x) { return x != 0 && (x & (x - 1)) == 0; }

constexpr std::array<std::uint8_t, 64> make_data_positions() {
  std::array<std::uint8_t, 64> pos{};
  unsigned p = 1, i = 0;
  while (i < 64) {
    if (!is_pow2(p)) pos[i++] = static_cast<std::uint8_t>(p);
    ++p;
  }
  return pos;
}
constexpr auto kDataPos = make_data_positions();

struct CodeBits {
  std::array<bool, 72> bits{};
};

CodeBits unpack(ecc::SecdedWord w) {
  CodeBits cb;
  for (unsigned i = 0; i < 64; ++i)
    cb.bits[kDataPos[i]] = (w.data >> i) & 1;
  for (unsigned j = 0; j < 7; ++j)
    cb.bits[1u << j] = (w.check >> j) & 1;
  cb.bits[0] = (w.check >> 7) & 1;
  return cb;
}

ecc::SecdedWord pack(const CodeBits& cb) {
  ecc::SecdedWord w{0, 0};
  for (unsigned i = 0; i < 64; ++i)
    if (cb.bits[kDataPos[i]]) w.data |= std::uint64_t{1} << i;
  for (unsigned j = 0; j < 7; ++j)
    if (cb.bits[1u << j]) w.check |= static_cast<std::uint8_t>(1u << j);
  if (cb.bits[0]) w.check |= 0x80;
  return w;
}

}  // namespace

ecc::SecdedWord RefSecded7264::encode(std::uint64_t data) {
  unsigned syn = 0;
  for (unsigned i = 0; i < 64; ++i)
    if ((data >> i) & 1) syn ^= kDataPos[i];

  ecc::SecdedWord w{data, 0};
  w.check = static_cast<std::uint8_t>(syn & 0x7F);
  const unsigned ones = static_cast<unsigned>(std::popcount(data)) +
                        static_cast<unsigned>(std::popcount(w.check));
  if (ones & 1) w.check |= 0x80;
  return w;
}

ecc::SecdedResult RefSecded7264::decode(ecc::SecdedWord w) {
  CodeBits cb = unpack(w);
  unsigned syn = 0;
  unsigned parity = 0;
  for (unsigned p = 0; p < 72; ++p) {
    if (cb.bits[p]) {
      syn ^= p;
      parity ^= 1;
    }
  }
  if (syn == 0 && parity == 0) return {ecc::DecodeStatus::kClean, w.data};

  if (parity == 1) {
    if (syn == 0) return {ecc::DecodeStatus::kCorrected, w.data};
    if (syn >= 72) return {ecc::DecodeStatus::kUncorrectable, w.data};
    cb.bits[syn] = !cb.bits[syn];
    return {ecc::DecodeStatus::kCorrected, pack(cb).data};
  }
  return {ecc::DecodeStatus::kUncorrectable, w.data};
}

RefGF2m::RefGF2m(int m)
    : m_(m),
      n_((1u << m) - 1),
      poly_(ecc::GF2m::default_primitive_poly(m)),
      exp_(2 * ((1u << m) - 1)),
      log_(1u << m) {
  std::uint32_t x = 1;
  for (std::uint32_t i = 0; i < n_; ++i) {
    exp_[i] = x;
    log_[x] = i;
    x <<= 1;
    if (x & (1u << m_)) x ^= poly_;
  }
  for (std::uint32_t i = n_; i < 2 * n_; ++i) exp_[i] = exp_[i - n_];
  log_[0] = 0;
}

namespace {

std::vector<std::uint8_t> minimal_poly(const RefGF2m& f, std::uint32_t c) {
  std::vector<std::uint32_t> coset;
  std::uint32_t e = c;
  do {
    coset.push_back(e);
    e = (e * 2) % f.n();
  } while (e != c);

  std::vector<std::uint32_t> poly{1};
  for (std::uint32_t j : coset) {
    const std::uint32_t root = f.alpha_pow(j);
    std::vector<std::uint32_t> next(poly.size() + 1, 0);
    for (std::size_t i = 0; i < poly.size(); ++i) {
      next[i + 1] = f.add(next[i + 1], poly[i]);
      next[i] = f.add(next[i], f.mul(root, poly[i]));
    }
    poly = std::move(next);
  }
  std::vector<std::uint8_t> out(poly.size());
  for (std::size_t i = 0; i < poly.size(); ++i) {
    DM_CHECK_MSG(poly[i] <= 1, "minimal polynomial has non-binary coefficient");
    out[i] = static_cast<std::uint8_t>(poly[i]);
  }
  return out;
}

std::vector<std::uint8_t> poly_mul_gf2(const std::vector<std::uint8_t>& a,
                                       const std::vector<std::uint8_t>& b) {
  std::vector<std::uint8_t> r(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a[i]) continue;
    for (std::size_t j = 0; j < b.size(); ++j) r[i + j] ^= b[j];
  }
  return r;
}

std::vector<std::uint8_t> build_generator(const RefGF2m& f, int t) {
  std::vector<std::uint8_t> g{1};
  std::set<std::uint32_t> covered;
  for (int c = 1; c <= 2 * t; ++c) {
    const auto cu = static_cast<std::uint32_t>(c);
    if (covered.count(cu)) continue;
    std::uint32_t e = cu;
    do {
      covered.insert(e);
      e = (e * 2) % f.n();
    } while (e != cu);
    g = poly_mul_gf2(g, minimal_poly(f, cu));
  }
  return g;
}

}  // namespace

RefBchCode::RefBchCode(ecc::BchParams p) : params_(p), field_(p.m) {
  DM_CHECK_MSG(p.t >= 1, "BCH t must be >= 1");
  DM_CHECK_MSG(p.k_data >= 1, "BCH payload must be >= 1 bit");
  gen_ = build_generator(field_, p.t);
  const int r = parity_bits();
  DM_CHECK_MSG(p.k_data + r <= n(),
               "BCH payload does not fit: k_data + parity exceeds 2^m - 1");
  DM_CHECK_MSG(gen_.back() == 1, "generator polynomial must be monic");
}

BitVec RefBchCode::encode(const BitVec& data) const {
  DM_CHECK_MSG(static_cast<int>(data.size()) == k_data(),
               "encode payload size mismatch");
  const int r = parity_bits();
  std::vector<std::uint8_t> rem(static_cast<std::size_t>(r), 0);
  for (int i = k_data() - 1; i >= 0; --i) {
    const bool fb = data.get(static_cast<std::size_t>(i)) !=
                    static_cast<bool>(rem[static_cast<std::size_t>(r - 1)]);
    for (int j = r - 1; j > 0; --j)
      rem[static_cast<std::size_t>(j)] = rem[static_cast<std::size_t>(j - 1)];
    rem[0] = 0;
    if (fb)
      for (int j = 0; j < r; ++j)
        rem[static_cast<std::size_t>(j)] ^= gen_[static_cast<std::size_t>(j)];
  }
  BitVec cw(static_cast<std::size_t>(code_bits()));
  for (int i = 0; i < k_data(); ++i)
    cw.set(static_cast<std::size_t>(i), data.get(static_cast<std::size_t>(i)));
  for (int j = 0; j < r; ++j)
    cw.set(static_cast<std::size_t>(k_data() + j),
           static_cast<bool>(rem[static_cast<std::size_t>(j)]));
  return cw;
}

std::vector<std::uint32_t> RefBchCode::compute_syndromes(
    const BitVec& cw) const {
  const int r = parity_bits();
  std::vector<std::uint32_t> syn(static_cast<std::size_t>(2 * params_.t), 0);
  for (std::size_t bit : cw.set_bits()) {
    const std::int64_t pos =
        bit < static_cast<std::size_t>(k_data())
            ? static_cast<std::int64_t>(r) + static_cast<std::int64_t>(bit)
            : static_cast<std::int64_t>(bit) - k_data();
    for (int j = 1; j <= 2 * params_.t; ++j)
      syn[static_cast<std::size_t>(j - 1)] ^= field_.alpha_pow(pos * j);
  }
  return syn;
}

ecc::BchDecodeResult RefBchCode::decode(const BitVec& codeword) const {
  DM_CHECK_MSG(static_cast<int>(codeword.size()) == code_bits(),
               "decode code word size mismatch");
  auto extract_data = [&](const BitVec& cw) {
    BitVec d(static_cast<std::size_t>(k_data()));
    for (int i = 0; i < k_data(); ++i)
      d.set(static_cast<std::size_t>(i), cw.get(static_cast<std::size_t>(i)));
    return d;
  };

  const auto syn = compute_syndromes(codeword);
  if (std::all_of(syn.begin(), syn.end(), [](std::uint32_t s) { return s == 0; }))
    return {ecc::DecodeStatus::kClean, extract_data(codeword), 0};

  const int t2 = 2 * params_.t;
  std::vector<std::uint32_t> sigma{1};
  std::vector<std::uint32_t> b{1};
  int L = 0;
  std::uint32_t bdisc = 1;
  int shift = 1;
  for (int n_iter = 0; n_iter < t2; ++n_iter) {
    std::uint32_t d = syn[static_cast<std::size_t>(n_iter)];
    for (int i = 1; i <= L && i < static_cast<int>(sigma.size()); ++i) {
      const int idx = n_iter - i;
      if (idx >= 0)
        d = field_.add(d, field_.mul(sigma[static_cast<std::size_t>(i)],
                                     syn[static_cast<std::size_t>(idx)]));
    }
    if (d == 0) {
      ++shift;
      continue;
    }
    const std::uint32_t coef = field_.div(d, bdisc);
    std::vector<std::uint32_t> next = sigma;
    if (next.size() < b.size() + static_cast<std::size_t>(shift))
      next.resize(b.size() + static_cast<std::size_t>(shift), 0);
    for (std::size_t i = 0; i < b.size(); ++i)
      next[i + static_cast<std::size_t>(shift)] = field_.add(
          next[i + static_cast<std::size_t>(shift)], field_.mul(coef, b[i]));
    if (2 * L <= n_iter) {
      b = sigma;
      bdisc = d;
      L = n_iter + 1 - L;
      shift = 1;
    } else {
      ++shift;
    }
    sigma = std::move(next);
  }
  while (sigma.size() > 1 && sigma.back() == 0) sigma.pop_back();
  const int deg = static_cast<int>(sigma.size()) - 1;
  if (deg == 0 || deg > params_.t || L != deg)
    return {ecc::DecodeStatus::kUncorrectable, extract_data(codeword), 0};

  BitVec corrected = codeword;
  int found = 0;
  const int max_pos = code_bits();
  for (int pos = 0; pos < max_pos; ++pos) {
    const std::uint32_t x = field_.alpha_pow(-static_cast<std::int64_t>(pos));
    if (field_.poly_eval(sigma, x) == 0) {
      const std::size_t bit =
          pos >= parity_bits()
              ? static_cast<std::size_t>(pos - parity_bits())
              : static_cast<std::size_t>(k_data() + pos);
      corrected.flip(bit);
      ++found;
    }
  }
  if (found != deg)
    return {ecc::DecodeStatus::kUncorrectable, extract_data(codeword), 0};
  const auto check = compute_syndromes(corrected);
  if (!std::all_of(check.begin(), check.end(),
                   [](std::uint32_t s) { return s == 0; }))
    return {ecc::DecodeStatus::kUncorrectable, extract_data(codeword), 0};
  return {ecc::DecodeStatus::kCorrected, extract_data(corrected), found};
}

RefRsCode::RefRsCode(ecc::RsParams p) : params_(p), field_(8) {
  DM_CHECK_MSG(p.t >= 1, "RS t must be >= 1");
  DM_CHECK_MSG(p.k_data >= 1, "RS payload must be >= 1 symbol");
  DM_CHECK_MSG(p.k_data + 2 * p.t <= 255,
               "RS code word exceeds GF(256) length");
  gen_ = {1};
  for (int i = 1; i <= 2 * p.t; ++i) {
    const std::uint32_t root = field_.alpha_pow(i);
    std::vector<std::uint32_t> next(gen_.size() + 1, 0);
    for (std::size_t j = 0; j < gen_.size(); ++j) {
      next[j + 1] = field_.add(next[j + 1], gen_[j]);
      next[j] = field_.add(next[j], field_.mul(root, gen_[j]));
    }
    gen_ = std::move(next);
  }
}

std::vector<std::uint8_t> RefRsCode::encode(
    const std::vector<std::uint8_t>& data) const {
  DM_CHECK_MSG(static_cast<int>(data.size()) == k_data(),
               "encode payload size mismatch");
  const int r = parity_symbols();
  std::vector<std::uint32_t> rem(static_cast<std::size_t>(r), 0);
  for (int i = k_data() - 1; i >= 0; --i) {
    const std::uint32_t fb =
        field_.add(data[static_cast<std::size_t>(i)],
                   rem[static_cast<std::size_t>(r - 1)]);
    for (int j = r - 1; j > 0; --j)
      rem[static_cast<std::size_t>(j)] =
          field_.add(rem[static_cast<std::size_t>(j - 1)],
                     field_.mul(fb, gen_[static_cast<std::size_t>(j)]));
    rem[0] = field_.mul(fb, gen_[0]);
  }
  std::vector<std::uint8_t> cw(static_cast<std::size_t>(code_symbols()));
  std::copy(data.begin(), data.end(), cw.begin());
  for (int j = 0; j < r; ++j)
    cw[static_cast<std::size_t>(k_data() + j)] =
        static_cast<std::uint8_t>(rem[static_cast<std::size_t>(j)]);
  return cw;
}

std::vector<std::uint32_t> RefRsCode::syndromes(
    const std::vector<std::uint8_t>& cw) const {
  const int r = parity_symbols();
  std::vector<std::uint32_t> syn(static_cast<std::size_t>(r), 0);
  for (int i = 0; i < code_symbols(); ++i) {
    const std::uint32_t v = cw[static_cast<std::size_t>(i)];
    if (v == 0) continue;
    const int pos = i < k_data() ? r + i : i - k_data();
    for (int j = 1; j <= r; ++j)
      syn[static_cast<std::size_t>(j - 1)] = field_.add(
          syn[static_cast<std::size_t>(j - 1)],
          field_.mul(v, field_.alpha_pow(static_cast<std::int64_t>(pos) * j)));
  }
  return syn;
}

ecc::RsDecodeResult RefRsCode::decode(
    const std::vector<std::uint8_t>& codeword) const {
  DM_CHECK_MSG(static_cast<int>(codeword.size()) == code_symbols(),
               "decode code word size mismatch");
  auto extract = [&](const std::vector<std::uint8_t>& cw) {
    return std::vector<std::uint8_t>(cw.begin(), cw.begin() + k_data());
  };
  const auto syn = syndromes(codeword);
  if (std::all_of(syn.begin(), syn.end(), [](std::uint32_t s) { return s == 0; }))
    return {ecc::DecodeStatus::kClean, extract(codeword), 0};

  const int r = parity_symbols();
  std::vector<std::uint32_t> sigma{1}, b{1};
  int L = 0, shift = 1;
  std::uint32_t bdisc = 1;
  for (int n = 0; n < r; ++n) {
    std::uint32_t d = syn[static_cast<std::size_t>(n)];
    for (int i = 1; i <= L && i < static_cast<int>(sigma.size()); ++i)
      if (n - i >= 0)
        d = field_.add(d, field_.mul(sigma[static_cast<std::size_t>(i)],
                                     syn[static_cast<std::size_t>(n - i)]));
    if (d == 0) {
      ++shift;
      continue;
    }
    const std::uint32_t coef = field_.div(d, bdisc);
    std::vector<std::uint32_t> next = sigma;
    if (next.size() < b.size() + static_cast<std::size_t>(shift))
      next.resize(b.size() + static_cast<std::size_t>(shift), 0);
    for (std::size_t i = 0; i < b.size(); ++i)
      next[i + static_cast<std::size_t>(shift)] = field_.add(
          next[i + static_cast<std::size_t>(shift)], field_.mul(coef, b[i]));
    if (2 * L <= n) {
      b = sigma;
      bdisc = d;
      L = n + 1 - L;
      shift = 1;
    } else {
      ++shift;
    }
    sigma = std::move(next);
  }
  while (sigma.size() > 1 && sigma.back() == 0) sigma.pop_back();
  const int deg = static_cast<int>(sigma.size()) - 1;
  if (deg == 0 || deg > params_.t || L != deg)
    return {ecc::DecodeStatus::kUncorrectable, extract(codeword), 0};

  std::vector<std::uint32_t> omega(static_cast<std::size_t>(r), 0);
  for (int i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < sigma.size(); ++j) {
      const int k = i + static_cast<int>(j);
      if (k >= r) break;
      omega[static_cast<std::size_t>(k)] =
          field_.add(omega[static_cast<std::size_t>(k)],
                     field_.mul(syn[static_cast<std::size_t>(i)], sigma[j]));
    }
  }
  std::vector<std::uint32_t> dsigma(sigma.size() > 1 ? sigma.size() - 1 : 1, 0);
  for (std::size_t j = 1; j < sigma.size(); j += 2) dsigma[j - 1] = sigma[j];

  std::vector<std::uint8_t> corrected = codeword;
  int found = 0;
  for (int pos = 0; pos < code_symbols(); ++pos) {
    const std::uint32_t xinv =
        field_.alpha_pow(-static_cast<std::int64_t>(pos));
    if (field_.poly_eval(sigma, xinv) != 0) continue;
    const std::uint32_t num = field_.poly_eval(omega, xinv);
    const std::uint32_t den = field_.poly_eval(dsigma, xinv);
    if (den == 0)
      return {ecc::DecodeStatus::kUncorrectable, extract(codeword), 0};
    const std::uint32_t magnitude = field_.div(num, den);
    const std::size_t idx = pos >= parity_symbols()
                                ? static_cast<std::size_t>(pos - parity_symbols())
                                : static_cast<std::size_t>(k_data() + pos);
    corrected[idx] = static_cast<std::uint8_t>(
        field_.add(corrected[idx], magnitude));
    ++found;
  }
  if (found != deg)
    return {ecc::DecodeStatus::kUncorrectable, extract(codeword), 0};
  const auto check = syndromes(corrected);
  if (!std::all_of(check.begin(), check.end(),
                   [](std::uint32_t s) { return s == 0; }))
    return {ecc::DecodeStatus::kUncorrectable, extract(codeword), 0};
  return {ecc::DecodeStatus::kCorrected, extract(corrected), found};
}

}  // namespace densemem::refimpl
