// Reference (pre-optimization) slow-path model, kept verbatim from the
// original implementation as an executable specification.
//
// The production FaultMap derives per-row fault counts lazily and the
// production Device resolves row views once per commit pass; both are
// *claimed* to be bit-exact with the original eager-scan / per-bit-lookup
// code. This header preserves that original code (eager FaultMap
// construction scan, per-bit stored_bit() map lookups, per-pattern row
// regeneration in the module tester) so the equivalence tests can assert
// the claim directly: identical flip events, stats counters and
// ModuleTestResult for identical command streams.
//
// Deliberately NOT kept in sync with src/dram — this is the frozen
// baseline. It reuses the public value types (WeakCell, DeviceConfig,
// FlipEvent, ...) so results compare field-for-field.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/module_tester.h"
#include "dram/device.h"
#include "dram/faultmap.h"
#include "dram/geometry.h"
#include "dram/reliability.h"
#include "dram/remap.h"

namespace densemem::refimpl {

/// Original FaultMap: per-row Poisson counts drawn for *every* row in an
/// eager construction scan (O(banks x rows) hashes), totals accumulated
/// during the scan, weak_rows() rescanning the count array per call.
class RefFaultMap {
 public:
  RefFaultMap(std::uint64_t seed, std::uint32_t banks, std::uint32_t rows,
              std::uint32_t row_bits, const dram::ReliabilityParams& params);

  const dram::ReliabilityParams& params() const { return params_; }

  const std::vector<dram::WeakCell>& weak_cells(std::uint32_t bank,
                                                std::uint32_t row) const;
  std::vector<dram::LeakyCell>& leaky_cells(std::uint32_t bank,
                                            std::uint32_t row);

  bool row_has_weak(std::uint32_t bank, std::uint32_t row) const {
    return weak_count_[idx(bank, row)] != 0;
  }
  bool row_has_leaky(std::uint32_t bank, std::uint32_t row) const {
    return leaky_count_[idx(bank, row)] != 0;
  }

  std::vector<std::uint32_t> weak_rows(std::uint32_t bank) const;
  std::vector<std::uint32_t> leaky_rows(std::uint32_t bank) const;

  std::uint64_t total_weak_cells() const { return total_weak_; }
  std::uint64_t total_leaky_cells() const { return total_leaky_; }

 private:
  std::size_t idx(std::uint32_t bank, std::uint32_t row) const {
    return static_cast<std::size_t>(bank) * rows_ + row;
  }
  std::vector<dram::WeakCell> generate_weak(std::uint32_t bank,
                                            std::uint32_t row) const;
  std::vector<dram::LeakyCell> generate_leaky(std::uint32_t bank,
                                              std::uint32_t row) const;

  std::uint64_t seed_;
  std::uint32_t banks_, rows_, row_bits_;
  dram::ReliabilityParams params_;
  std::vector<std::uint16_t> weak_count_;
  std::vector<std::uint16_t> leaky_count_;
  std::uint64_t total_weak_ = 0, total_leaky_ = 0;
  mutable std::unordered_map<std::size_t, std::vector<dram::WeakCell>>
      weak_cache_;
  mutable std::unordered_map<std::size_t, std::vector<dram::LeakyCell>>
      leaky_cache_;
  static const std::vector<dram::WeakCell> kNoWeak;
};

/// Original Device commit path: every stored-bit consult is a data_.find()
/// plus a pattern_bit() fallback, with no row-view caching, no
/// minimum-threshold screen and an unconditional restore_row context.
/// Command semantics are identical to dram::Device so the equivalence
/// tests can drive both with one templated script.
class RefDevice {
 public:
  explicit RefDevice(dram::DeviceConfig cfg);

  const dram::Geometry& geometry() const { return cfg_.geometry; }
  const dram::DeviceStats& stats() const { return stats_; }
  const std::vector<dram::FlipEvent>& flip_events() const { return events_; }
  RefFaultMap& fault_map() { return faults_; }

  void activate(std::uint32_t fbank, std::uint32_t row, Time now);
  void precharge(std::uint32_t fbank, Time now);
  std::uint64_t read_word(std::uint32_t fbank, std::uint32_t col_word);
  void write_word(std::uint32_t fbank, std::uint32_t col_word,
                  std::uint64_t value);
  void hammer(std::uint32_t fbank, std::uint32_t row, std::uint64_t count,
              Time now);
  void refresh_next(std::uint32_t fbank, std::uint32_t count, Time now);
  void refresh_row(std::uint32_t fbank, std::uint32_t row, Time now);
  void fill_row(std::uint32_t fbank, std::uint32_t row,
                const std::vector<std::uint64_t>& words, Time now);
  std::vector<std::uint64_t> snapshot_row(std::uint32_t fbank,
                                          std::uint32_t row) const;
  /// Buffer-reuse overload matching the production signature so templated
  /// test scripts compile against both devices; delegates to the copy.
  void snapshot_row(std::uint32_t fbank, std::uint32_t row,
                    std::vector<std::uint64_t>& out) const {
    out = snapshot_row(fbank, row);
  }
  std::uint64_t pattern_word(std::uint32_t row, std::uint32_t col_word) const;

 private:
  std::size_t flat_row(std::uint32_t fbank, std::uint32_t prow) const {
    return static_cast<std::size_t>(fbank) * cfg_.geometry.rows + prow;
  }
  bool stored_bit(std::uint32_t fbank, std::uint32_t prow,
                  std::uint32_t bit) const;
  bool pattern_bit(std::uint32_t logical_row, std::uint32_t bit) const;
  std::vector<std::uint64_t>& materialize(std::uint32_t fbank,
                                          std::uint32_t prow);
  void restore_row(std::uint32_t fbank, std::uint32_t prow, Time now);
  void commit_disturbance(std::uint32_t fbank, std::uint32_t prow, Time now);
  void commit_retention(std::uint32_t fbank, std::uint32_t prow, Time now);
  void apply_flip(std::uint32_t fbank, std::uint32_t prow, std::uint32_t bit,
                  dram::FlipCause cause, Time now);
  void disturb_neighbors(std::uint32_t fbank, std::uint32_t prow, float count);
  int antiparallel_neighbors(std::uint32_t fbank, std::uint32_t prow,
                             std::uint32_t bit) const;

  dram::DeviceConfig cfg_;
  std::uint32_t nbanks_;
  RefFaultMap faults_;
  dram::RowRemap remap_;
  Rng rng_;
  dram::DeviceStats stats_;
  std::vector<dram::FlipEvent> events_;

  std::vector<std::int64_t> open_row_;
  std::vector<std::uint32_t> refresh_ptr_;
  std::vector<float> stress_;
  std::vector<Time> last_restore_;
  std::unordered_map<std::size_t, std::vector<std::uint64_t>> data_;

  static constexpr std::size_t kMaxEvents = 1u << 20;
};

/// Original ModuleTester::run: regenerates every pattern row word-by-word
/// through pattern_word_value() for each victim neighbourhood and
/// snapshots by value (no buffer reuse).
core::ModuleTestResult ref_module_test(const core::ModuleTestConfig& cfg,
                                       RefDevice& dev);

}  // namespace densemem::refimpl
