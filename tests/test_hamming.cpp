#include "ecc/hamming.h"

#include <gtest/gtest.h>

#include "common/check.h"

#include "common/rng.h"

namespace densemem::ecc {
namespace {

TEST(Secded, CleanRoundTrip) {
  for (std::uint64_t d :
       {0ull, ~0ull, 0xDEADBEEFCAFEF00Dull, 0x0123456789ABCDEFull}) {
    const auto w = Secded7264::encode(d);
    const auto r = Secded7264::decode(w);
    EXPECT_EQ(r.status, DecodeStatus::kClean);
    EXPECT_EQ(r.data, d);
  }
}

// Property: every single-bit error (any of the 72 code bits) is corrected.
class SecdedSingleBit : public ::testing::TestWithParam<unsigned> {};

TEST_P(SecdedSingleBit, Corrected) {
  const std::uint64_t d = 0xA5A5DEAD1234BEEFull;
  const auto w = Secded7264::encode(d);
  const auto r = Secded7264::decode(Secded7264::flip_bit(w, GetParam()));
  EXPECT_EQ(r.status, DecodeStatus::kCorrected);
  EXPECT_EQ(r.data, d);
}

INSTANTIATE_TEST_SUITE_P(AllPositions, SecdedSingleBit,
                         ::testing::Range(0u, 72u));

TEST(Secded, AllDoubleBitErrorsDetected) {
  const std::uint64_t d = 0x7777123400FFCC11ull;
  const auto w = Secded7264::encode(d);
  // Exhaustive over all C(72,2) pairs: SECDED must flag every one.
  for (unsigned i = 0; i < 72; ++i) {
    for (unsigned j = i + 1; j < 72; ++j) {
      const auto r =
          Secded7264::decode(Secded7264::flip_bit(Secded7264::flip_bit(w, i), j));
      ASSERT_EQ(r.status, DecodeStatus::kUncorrectable)
          << "bits " << i << "," << j;
    }
  }
}

TEST(Secded, DoubleBitErrorsNeverMiscorrected) {
  // Aliasing regression for the mask-kernel decoder: beyond being *detected*,
  // no 2-bit error may be turned into a miscorrection — the decoder must
  // return the word's data untouched (flips still in place, nothing "fixed").
  densemem::Rng rng(4242);
  for (int trial = 0; trial < 4; ++trial) {
    const std::uint64_t d = rng.next_u64();
    const auto w = Secded7264::encode(d);
    for (unsigned i = 0; i < 72; ++i) {
      for (unsigned j = i + 1; j < 72; ++j) {
        const auto corrupted =
            Secded7264::flip_bit(Secded7264::flip_bit(w, i), j);
        const auto r = Secded7264::decode(corrupted);
        ASSERT_EQ(r.status, DecodeStatus::kUncorrectable)
            << "bits " << i << "," << j;
        ASSERT_EQ(r.data, corrupted.data) << "bits " << i << "," << j;
      }
    }
  }
}

TEST(Secded, TripleBitErrorsNeverReportedClean) {
  // 3 flips have odd parity: the decoder must report *something* (usually a
  // miscorrection, never "clean"). This is the silent-corruption hazard the
  // paper's ECC discussion (§II-C) relies on: SECDED cannot handle the 3+
  // flips RowHammer can put in one word.
  densemem::Rng rng(99);
  int miscorrected = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t d = rng.next_u64();
    auto w = Secded7264::encode(d);
    unsigned b1 = static_cast<unsigned>(rng.uniform_int(std::uint64_t{72}));
    unsigned b2, b3;
    do {
      b2 = static_cast<unsigned>(rng.uniform_int(std::uint64_t{72}));
    } while (b2 == b1);
    do {
      b3 = static_cast<unsigned>(rng.uniform_int(std::uint64_t{72}));
    } while (b3 == b1 || b3 == b2);
    w = Secded7264::flip_bit(Secded7264::flip_bit(Secded7264::flip_bit(w, b1), b2), b3);
    const auto r = Secded7264::decode(w);
    ASSERT_NE(r.status, DecodeStatus::kClean);
    if (r.status == DecodeStatus::kCorrected && r.data != d) ++miscorrected;
  }
  // Miscorrection on 3-bit errors must actually occur (it is the norm).
  EXPECT_GT(miscorrected, 0);
}

TEST(Secded, CheckBitsDifferForDifferentData) {
  EXPECT_NE(Secded7264::encode(1).check, Secded7264::encode(2).check);
}

TEST(Secded, FlipBitOutOfRangeThrows) {
  const auto w = Secded7264::encode(5);
  EXPECT_THROW(Secded7264::flip_bit(w, 72), densemem::CheckError);
}

TEST(Secded, EncodeIsDeterministic) {
  const auto a = Secded7264::encode(0x123456789ull);
  const auto b = Secded7264::encode(0x123456789ull);
  EXPECT_EQ(a.data, b.data);
  EXPECT_EQ(a.check, b.check);
}

}  // namespace
}  // namespace densemem::ecc
