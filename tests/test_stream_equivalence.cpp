// Differential property tests for the compiled-stream fast path: a pattern
// executed through dram::AccessStream + {Device,MemoryController}::run_stream
// must be bit-exact with the per-activation replay it compiles away —
// identical flip events (with full provenance), DeviceStats, stored rows,
// FlipObserver and DecisionObserver streams — across randomized genomes and
// slot vectors, every fixed kernel, REF interleavings (sync and free-run),
// every remap scheme, every tracker, and campaign widths 1/2/8.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "attack/patterns.h"
#include "common/rng.h"
#include "ctrl/mitigation.h"
#include "dram/access_stream.h"
#include "dram/device.h"
#include "fuzz/fuzzer.h"
#include "fuzz/params.h"
#include "sim/campaign.h"

namespace densemem {
namespace {

dram::Geometry small_geometry() {
  dram::Geometry g;
  g.channels = 1;
  g.ranks = 1;
  g.banks = 2;
  g.rows = 256;
  g.row_bytes = 512;  // 4096 bits per row
  return g;
}

// Dense faults so every class of touched row (clean / weak / leaky) occurs
// and the differential comparison is not vacuous. hc50 scales to the act
// budget of the scenario: probe budgets are small (4096 ACTs split across a
// genome's aggressors), so cells must flip within a few hundred weighted
// activations for the comparison to see any commits at all.
dram::ReliabilityParams hot_params(double hc50) {
  auto p = dram::ReliabilityParams::vulnerable();
  p.weak_cell_density = 2e-3;    // ~8 weak cells per 4096-bit row
  p.leaky_cell_density = 5e-4;   // ~2 leaky cells per row
  p.hc50 = hc50;
  p.retention_mu_log_ms = 4.0;
  return p;
}

/// Serializes every FlipRecord field — mechanism, aggressors, stress and
/// DPD factor included, so a restore that committed at a different time or
/// with different accumulated stress cannot hide behind equal flip counts.
class FlipLog final : public dram::FlipObserver {
 public:
  FlipLog() { os_.precision(17); }
  void on_flip(const dram::FlipRecord& r) override {
    os_ << r.fbank << ',' << r.physical_row << ',' << r.logical_row << ','
        << r.bit << ',' << static_cast<int>(r.mechanism) << ','
        << r.one_to_zero << ',' << r.aggressor_up << ',' << r.aggressor_down
        << ',' << r.stress << ',' << r.dpd_factor << ',' << r.when.as_ms()
        << '\n';
  }
  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

class DecisionLog final : public ctrl::DecisionObserver {
 public:
  void on_decision(const ctrl::DecisionRecord& r) override {
    os_ << static_cast<int>(r.kind) << ',' << r.fbank << ',' << r.row << ','
        << r.source_row << '\n';
  }
  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

/// Stats, the complete flip-event log, and an FNV-1a hash of every stored
/// row of every bank.
std::string device_digest(dram::Device& dev) {
  std::ostringstream os;
  os.precision(17);
  const dram::DeviceStats& s = dev.stats();
  os << s.activates << ' ' << s.precharges << ' ' << s.reads << ' '
     << s.writes << ' ' << s.row_refreshes << ' ' << s.targeted_refreshes
     << ' ' << s.disturb_flips << ' ' << s.retention_flips << ' '
     << s.flips_1to0 << ' ' << s.flips_0to1 << ' ' << s.flip_events_dropped
     << '\n';
  for (const dram::FlipEvent& e : dev.flip_events())
    os << e.bank << ',' << e.physical_row << ',' << e.logical_row << ','
       << e.bit << ',' << static_cast<int>(e.cause) << ',' << e.one_to_zero
       << ',' << e.when.as_ms() << '\n';
  std::vector<std::uint64_t> row;
  const dram::Geometry& g = dev.geometry();
  for (std::uint32_t b = 0; b < dram::total_banks(g); ++b) {
    for (std::uint32_t r = 0; r < g.rows; ++r) {
      dev.snapshot_row(b, r, row);
      std::uint64_t h = 1469598103934665603ULL;
      for (std::uint64_t w : row) {
        h ^= w;
        h *= 1099511628211ULL;
      }
      os << h << '\n';
    }
  }
  return os.str();
}

fuzz::ProbeSetup make_setup(fuzz::TrackerKind tracker, bool sync,
                            bool use_stream, dram::RemapScheme remap,
                            std::uint64_t seed, FlipLog* flips,
                            DecisionLog* decisions) {
  fuzz::ProbeSetup setup;
  setup.device.geometry = small_geometry();
  setup.device.reliability = hot_params(300.0);
  setup.device.seed = seed;
  setup.device.remap = remap;
  setup.device.pattern = dram::BackgroundPattern::kRowStripe;
  setup.device.record_flip_events = true;
  setup.device.observer = flips;
  setup.decision_observer = decisions;
  setup.tracker = tracker;
  setup.act_budget = 4096;
  setup.sync_to_ref = sync;
  setup.use_stream = use_stream;
  return setup;
}

fuzz::PatternGenome genome_for(std::uint64_t seed) {
  fuzz::FuzzingParameterSet params;
  params.rows_in_bank = small_geometry().rows;
  Rng rng(seed);
  return params.sample(rng);
}

struct ProbeDigest {
  std::string text;
  std::uint64_t flips = 0;
  std::uint64_t decisions = 0;
};

ProbeDigest genome_digest(const fuzz::PatternGenome& genome,
                          fuzz::TrackerKind tracker, bool sync,
                          bool use_stream, dram::RemapScheme remap,
                          std::uint64_t seed) {
  FlipLog flips;
  DecisionLog decisions;
  const auto setup =
      make_setup(tracker, sync, use_stream, remap, seed, &flips, &decisions);
  const fuzz::ProbeResult r = fuzz::run_genome(genome, setup);
  std::ostringstream os;
  os.precision(17);
  os << r.flips << ' ' << r.acts << ' ' << r.elapsed_ms << ' '
     << r.targeted_refreshes << "\n--flips--\n"
     << flips.str() << "--decisions--\n" << decisions.str();
  return {os.str(), r.flips,
          static_cast<std::uint64_t>(decisions.str().size())};
}

ProbeDigest kernel_digest(attack::PatternKind kind, fuzz::TrackerKind tracker,
                          bool use_stream, std::uint64_t seed) {
  FlipLog flips;
  DecisionLog decisions;
  const auto setup =
      make_setup(tracker, /*sync=*/false, use_stream,
                 dram::RemapScheme::kIdentity, seed, &flips, &decisions);
  const fuzz::ProbeResult r = fuzz::run_kernel(kind, setup);
  std::ostringstream os;
  os.precision(17);
  os << r.flips << ' ' << r.acts << ' ' << r.elapsed_ms << ' '
     << r.targeted_refreshes << "\n--flips--\n"
     << flips.str() << "--decisions--\n" << decisions.str();
  return {os.str(), r.flips,
          static_cast<std::uint64_t>(decisions.str().size())};
}

// ------------------------------------------------- fuzz / controller level

TEST(StreamEquivalence, GenomeProbesMatchAcrossTrackersAndRefInterleavings) {
  std::uint64_t total_flips = 0;
  std::uint64_t total_decisions = 0;
  for (fuzz::TrackerKind tracker :
       {fuzz::TrackerKind::kNone, fuzz::TrackerKind::kMisraGries,
        fuzz::TrackerKind::kSampler}) {
    for (bool sync : {true, false}) {
      for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        const auto genome = genome_for(seed * 1000 + 17);
        const ProbeDigest stream = genome_digest(
            genome, tracker, sync, true, dram::RemapScheme::kIdentity, seed);
        const ProbeDigest replay = genome_digest(
            genome, tracker, sync, false, dram::RemapScheme::kIdentity, seed);
        EXPECT_EQ(stream.text, replay.text)
            << "tracker=" << fuzz::tracker_name(tracker) << " sync=" << sync
            << " seed=" << seed;
        total_flips += stream.flips;
        total_decisions += stream.decisions;
      }
    }
  }
  // The equivalence must not be vacuous: flips occurred, trackers decided.
  EXPECT_GT(total_flips, 0u);
  EXPECT_GT(total_decisions, 0u);
}

TEST(StreamEquivalence, GenomeProbesMatchUnderEveryRemapScheme) {
  std::uint64_t total_flips = 0;
  for (dram::RemapScheme remap :
       {dram::RemapScheme::kIdentity, dram::RemapScheme::kMirrorBlocks,
        dram::RemapScheme::kScramble}) {
    for (std::uint64_t seed : {5ull, 6ull}) {
      const auto genome = genome_for(seed * 1000 + 29);
      const ProbeDigest stream = genome_digest(
          genome, fuzz::TrackerKind::kSampler, true, true, remap, seed);
      const ProbeDigest replay = genome_digest(
          genome, fuzz::TrackerKind::kSampler, true, false, remap, seed);
      EXPECT_EQ(stream.text, replay.text)
          << "remap=" << static_cast<int>(remap) << " seed=" << seed;
      total_flips += stream.flips;
    }
  }
  EXPECT_GT(total_flips, 0u);
}

TEST(StreamEquivalence, FixedKernelsMatchAcrossEveryPatternKind) {
  std::uint64_t total_flips = 0;
  for (attack::PatternKind kind :
       {attack::PatternKind::kSingleSided, attack::PatternKind::kDoubleSided,
        attack::PatternKind::kOneLocation, attack::PatternKind::kManySided,
        attack::PatternKind::kHalfDouble, attack::PatternKind::kRandom}) {
    for (fuzz::TrackerKind tracker :
         {fuzz::TrackerKind::kMisraGries, fuzz::TrackerKind::kSampler}) {
      const ProbeDigest stream = kernel_digest(kind, tracker, true, 11);
      const ProbeDigest replay = kernel_digest(kind, tracker, false, 11);
      EXPECT_EQ(stream.text, replay.text)
          << "kind=" << static_cast<int>(kind)
          << " tracker=" << fuzz::tracker_name(tracker);
      total_flips += stream.flips;
    }
  }
  EXPECT_GT(total_flips, 0u);
}

// --------------------------------------------------------- device level

/// The loop Device::run_stream compiles away, stated directly: ACT+PRE per
/// non-idle slot at fixed slot spacing, budget checked before every slot.
std::uint64_t replay_per_act(dram::Device& dev, std::uint32_t fbank,
                             const std::vector<std::uint32_t>& slots,
                             std::uint64_t max_acts, Time& now, Time dt) {
  bool any_act = false;
  for (std::uint32_t lr : slots) any_act |= lr != dram::AccessStream::kIdle;
  if (!any_act || max_acts == 0) return 0;
  std::uint64_t issued = 0;
  while (true) {
    for (std::uint32_t lr : slots) {
      if (issued == max_acts) return issued;
      if (lr == dram::AccessStream::kIdle) {
        now += dt;
        continue;
      }
      dev.activate(fbank, lr, now);
      dev.precharge(fbank, now);
      now += dt;
      ++issued;
    }
  }
}

std::vector<std::uint32_t> random_slots(Rng& rng, std::uint32_t rows) {
  const auto center =
      8 + static_cast<std::uint32_t>(rng.next_u64() % (rows - 16));
  const auto nslots = 24 + static_cast<std::uint32_t>(rng.next_u64() % 40);
  std::vector<std::uint32_t> slots;
  slots.reserve(nslots);
  for (std::uint32_t i = 0; i < nslots; ++i) {
    if (rng.next_u64() % 8 == 0) {
      slots.push_back(dram::AccessStream::kIdle);
    } else {
      // A tight band around a random center: aggressors overlap as victims
      // and neighbours of each other, the shape that stresses pass_stress
      // accounting and the per-pass screens hardest.
      slots.push_back(center - 4 +
                      static_cast<std::uint32_t>(rng.next_u64() % 9));
    }
  }
  return slots;
}

TEST(StreamEquivalence, DeviceRunStreamMatchesPerActivationOnRandomStreams) {
  std::uint64_t total_disturb = 0;
  std::uint64_t total_retention = 0;
  for (dram::BackgroundPattern pat :
       {dram::BackgroundPattern::kRowStripe,
        dram::BackgroundPattern::kCheckerboard,
        dram::BackgroundPattern::kRandom}) {
    for (std::uint64_t seed : {1ull, 7ull}) {
      dram::DeviceConfig cfg;
      cfg.geometry = small_geometry();
      cfg.reliability = hot_params(2e3);
      cfg.remap = seed % 2 ? dram::RemapScheme::kScramble
                           : dram::RemapScheme::kIdentity;
      cfg.seed = seed;
      cfg.pattern = pat;
      cfg.record_flip_events = true;
      dram::Device fast(cfg);
      dram::Device ref(cfg);

      Rng rng(seed * 7919 + static_cast<std::uint64_t>(pat));
      Time t_fast = Time::ms(0);
      Time t_ref = Time::ms(0);
      const Time dt = Time::ns(50);
      for (int round = 0; round < 3; ++round) {
        const std::uint32_t fbank = rng.next_u64() % 2;
        const auto slots = random_slots(rng, cfg.geometry.rows);
        // A budget that usually cuts the last pass short, so mid-pass
        // termination is compared too.
        const std::uint64_t budget = 5000 + rng.next_u64() % 20000;
        const dram::AccessStream stream(fast, fbank, slots);
        const std::uint64_t a = fast.run_stream(stream, budget, t_fast, dt);
        const std::uint64_t b =
            replay_per_act(ref, fbank, slots, budget, t_ref, dt);
        ASSERT_EQ(a, b);
        // A long pause between streams lets leaky cells act, covering the
        // retention (never-skip) arm of the stream executor.
        t_fast += Time::ms(40);
        t_ref += Time::ms(40);
      }
      // Commit pending state everywhere before comparing storage.
      fast.refresh_next(0, cfg.geometry.rows, t_fast);
      fast.refresh_next(1, cfg.geometry.rows, t_fast);
      ref.refresh_next(0, cfg.geometry.rows, t_ref);
      ref.refresh_next(1, cfg.geometry.rows, t_ref);
      EXPECT_EQ(device_digest(fast), device_digest(ref))
          << "pattern=" << static_cast<int>(pat) << " seed=" << seed;
      total_disturb += fast.stats().disturb_flips;
      total_retention += fast.stats().retention_flips;
    }
  }
  EXPECT_GT(total_disturb, 0u);
  EXPECT_GT(total_retention, 0u);
}

// ------------------------------------------------------- campaign widths

TEST(StreamEquivalence, IdenticalAcross1And2And8Threads) {
  const auto run_at = [](unsigned threads) {
    sim::CampaignConfig cfg;
    cfg.threads = threads;
    cfg.seed = 99;
    cfg.progress = false;
    sim::Campaign c("stream-equivalence", cfg);
    return c.map<std::string>(10, [](const sim::JobContext& ctx) {
      const std::uint64_t seed = ctx.stream_seed | 1;
      const auto genome = genome_for(seed);
      const auto tracker = ctx.index % 2 ? fuzz::TrackerKind::kSampler
                                         : fuzz::TrackerKind::kMisraGries;
      const ProbeDigest stream = genome_digest(
          genome, tracker, true, true, dram::RemapScheme::kIdentity, seed);
      const ProbeDigest replay = genome_digest(
          genome, tracker, true, false, dram::RemapScheme::kIdentity, seed);
      return std::string(stream.text == replay.text ? "match\n"
                                                    : "MISMATCH\n") +
             stream.text;
    });
  };
  const auto one = run_at(1);
  const auto two = run_at(2);
  const auto eight = run_at(8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  for (const std::string& d : one) EXPECT_EQ(d.substr(0, 6), "match\n");
}

}  // namespace
}  // namespace densemem
