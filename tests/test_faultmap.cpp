#include "dram/faultmap.h"

#include <gtest/gtest.h>

namespace densemem::dram {
namespace {

ReliabilityParams dense_params() {
  ReliabilityParams p = ReliabilityParams::vulnerable();
  p.weak_cell_density = 1e-3;
  p.leaky_cell_density = 1e-3;
  return p;
}

TEST(FaultMap, DeterministicAcrossInstances) {
  const auto p = dense_params();
  FaultMap a(42, 2, 256, 8192, p);
  FaultMap b(42, 2, 256, 8192, p);
  EXPECT_EQ(a.total_weak_cells(), b.total_weak_cells());
  for (std::uint32_t r = 0; r < 256; ++r) {
    const auto& wa = a.weak_cells(0, r);
    const auto& wb = b.weak_cells(0, r);
    ASSERT_EQ(wa.size(), wb.size());
    for (std::size_t i = 0; i < wa.size(); ++i) {
      EXPECT_EQ(wa[i].bit, wb[i].bit);
      EXPECT_EQ(wa[i].threshold, wb[i].threshold);
    }
  }
}

TEST(FaultMap, DifferentSeedsDiffer) {
  const auto p = dense_params();
  FaultMap a(1, 1, 512, 8192, p);
  FaultMap b(2, 1, 512, 8192, p);
  // Total counts are random; identical layouts across seeds would be a bug.
  bool any_diff = a.total_weak_cells() != b.total_weak_cells();
  for (std::uint32_t r = 0; r < 512 && !any_diff; ++r)
    any_diff = a.weak_cells(0, r).size() != b.weak_cells(0, r).size();
  EXPECT_TRUE(any_diff);
}

TEST(FaultMap, DensityMatchesExpectation) {
  ReliabilityParams p;
  p.weak_cell_density = 5e-4;
  p.hc50 = 100e3;
  FaultMap m(7, 4, 1024, 8192, p);
  const double expected = 5e-4 * 4 * 1024 * 8192;
  EXPECT_NEAR(static_cast<double>(m.total_weak_cells()), expected,
              4.0 * std::sqrt(expected));  // 4-sigma Poisson band
}

TEST(FaultMap, ZeroDensityMeansNoFaults) {
  ReliabilityParams p = ReliabilityParams::robust();
  p.leaky_cell_density = 0.0;
  FaultMap m(7, 2, 256, 8192, p);
  EXPECT_EQ(m.total_weak_cells(), 0u);
  EXPECT_EQ(m.total_leaky_cells(), 0u);
  EXPECT_TRUE(m.weak_rows(0).empty());
  for (std::uint32_t r = 0; r < 256; ++r) {
    EXPECT_FALSE(m.row_has_weak(0, r));
    EXPECT_TRUE(m.weak_cells(0, r).empty());
  }
}

TEST(FaultMap, CellFieldsWithinBounds) {
  const auto p = dense_params();
  FaultMap m(11, 1, 512, 4096, p);
  for (std::uint32_t r = 0; r < 512; ++r) {
    for (const WeakCell& c : m.weak_cells(0, r)) {
      EXPECT_LT(c.bit, 4096u);
      EXPECT_GT(c.threshold, 0.0f);
      EXPECT_GE(c.dpd_sens, 0.0f);
      EXPECT_LE(c.dpd_sens, 1.0f);
    }
    for (const LeakyCell& c : m.leaky_cells(0, r)) {
      EXPECT_LT(c.bit, 4096u);
      EXPECT_GT(c.retention_ms, 0.0f);
      EXPECT_GE(c.retention_high_ms, c.retention_ms);
    }
  }
}

TEST(FaultMap, CellsSortedByBit) {
  const auto p = dense_params();
  FaultMap m(13, 1, 512, 65536, p);
  for (std::uint32_t r = 0; r < 512; ++r) {
    const auto& cells = m.weak_cells(0, r);
    for (std::size_t i = 1; i < cells.size(); ++i)
      EXPECT_LE(cells[i - 1].bit, cells[i].bit);
  }
}

TEST(FaultMap, ThresholdMedianNearHc50) {
  ReliabilityParams p;
  p.weak_cell_density = 2e-3;
  p.hc50 = 150e3;
  p.hc_sigma = 0.4;
  FaultMap m(17, 1, 2048, 8192, p);
  std::vector<float> thresholds;
  for (std::uint32_t r = 0; r < 2048; ++r)
    for (const auto& c : m.weak_cells(0, r)) thresholds.push_back(c.threshold);
  ASSERT_GT(thresholds.size(), 1000u);
  std::sort(thresholds.begin(), thresholds.end());
  const double median = thresholds[thresholds.size() / 2];
  EXPECT_NEAR(median, 150e3, 15e3);
}

TEST(FaultMap, WeakRowsListMatchesPredicate) {
  const auto p = dense_params();
  FaultMap m(19, 2, 512, 8192, p);
  for (std::uint32_t b = 0; b < 2; ++b) {
    const auto rows = m.weak_rows(b);
    std::size_t count = 0;
    for (std::uint32_t r = 0; r < 512; ++r)
      if (m.row_has_weak(b, r)) ++count;
    EXPECT_EQ(rows.size(), count);
    for (std::uint32_t r : rows) EXPECT_TRUE(m.row_has_weak(b, r));
  }
}

TEST(FaultMap, VrtFractionRespected) {
  ReliabilityParams p;
  p.leaky_cell_density = 2e-3;
  p.vrt_fraction = 0.5;
  FaultMap m(23, 1, 2048, 8192, p);
  std::size_t vrt = 0, total = 0;
  for (std::uint32_t r = 0; r < 2048; ++r)
    for (const auto& c : m.leaky_cells(0, r)) {
      ++total;
      if (c.vrt) ++vrt;
    }
  ASSERT_GT(total, 1000u);
  EXPECT_NEAR(static_cast<double>(vrt) / static_cast<double>(total), 0.5, 0.05);
}

TEST(FaultMap, BanksAreIndependent) {
  const auto p = dense_params();
  FaultMap m(29, 2, 512, 8192, p);
  bool differs = false;
  for (std::uint32_t r = 0; r < 512 && !differs; ++r)
    differs = m.weak_cells(0, r).size() != m.weak_cells(1, r).size();
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace densemem::dram
