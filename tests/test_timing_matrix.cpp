// Controller behaviour across timing parameter sets (DDR3 vs DDR4) and
// refresh multipliers: the framework must hold its invariants under every
// supported timing, not just the default.
#include <gtest/gtest.h>

#include "core/system.h"

namespace densemem {
namespace {

struct TimingCase {
  const char* name;
  dram::Timing timing;
};

class TimingMatrix : public ::testing::TestWithParam<int> {
 protected:
  static dram::Timing timing_for(int idx) {
    switch (idx) {
      case 0: return dram::Timing::ddr3_1600();
      case 1: return dram::Timing::ddr4_2400();
      case 2: return dram::Timing::ddr3_1600().with_refresh_multiplier(2.0);
      default: return dram::Timing::ddr4_2400().with_refresh_multiplier(4.0);
    }
  }
};

TEST_P(TimingMatrix, ControllerRoundTripAndRefresh) {
  dram::DeviceConfig dc;
  dc.geometry = dram::Geometry::tiny();
  dc.reliability = dram::ReliabilityParams::robust();
  dc.reliability.leaky_cell_density = 0.0;
  dc.seed = 5;
  dram::Device dev(dc);
  ctrl::CtrlConfig cc;
  cc.timing = timing_for(GetParam());
  ctrl::MemoryController mc(dev, cc);

  std::array<std::uint64_t, 8> d{1, 2, 3, 4, 5, 6, 7, 8};
  mc.write_block({0, 0, 0, 9, 0}, d);
  EXPECT_EQ(mc.read_block({0, 0, 0, 9, 0}).data, d);

  // One refresh window refreshes every row once (within one REF batch).
  const Time w = cc.timing.tREFW;
  mc.advance_to(w);
  const double expected_rows =
      static_cast<double>(dev.geometry().rows_total());
  EXPECT_NEAR(static_cast<double>(mc.stats().rows_refreshed), expected_rows,
              expected_rows * 0.02);
}

TEST_P(TimingMatrix, HammerRateScalesWithTrc) {
  dram::DeviceConfig dc;
  dc.geometry = dram::Geometry::tiny();
  dc.reliability = dram::ReliabilityParams::robust();
  dc.seed = 5;
  dram::Device dev(dc);
  ctrl::CtrlConfig cc;
  cc.timing = timing_for(GetParam());
  ctrl::MemoryController mc(dev, cc);
  const Time t0 = mc.now();
  const int n = 2000;
  for (int i = 0; i < n; ++i) mc.activate_precharge(0, 100);
  const double per_act = (mc.now() - t0).as_ns() / n;
  EXPECT_GE(per_act, (cc.timing.tRAS + cc.timing.tRP).as_ns() - 1e-9);
  EXPECT_LE(per_act, cc.timing.tRC.as_ns() * 1.25);
}

TEST_P(TimingMatrix, ParaProtectsUnderEveryTiming) {
  dram::DeviceConfig dc;
  dc.geometry = dram::Geometry::tiny();
  dc.reliability = dram::ReliabilityParams::vulnerable();
  dc.reliability.weak_cell_density = 1e-3;
  dc.reliability.hc50 = 15e3;
  dc.reliability.dpd_sensitivity_mean = 0.0;
  dc.reliability.anticell_fraction = 0.0;
  dc.pattern = dram::BackgroundPattern::kOnes;
  dc.seed = 7;
  ctrl::CtrlConfig cc;
  cc.timing = timing_for(GetParam());
  core::MitigationSpec spec;
  spec.kind = core::MitigationKind::kPara;
  spec.para.probability = 0.01;
  auto sys = core::make_system(dc, cc, spec);
  std::uint32_t victim = 0;
  for (std::uint32_t r : sys.dev().fault_map().weak_rows(0))
    if (r >= 2 && r + 2 < sys.dev().geometry().rows) {
      victim = r;
      break;
    }
  ASSERT_NE(victim, 0u);
  for (int i = 0; i < 30'000; ++i) {
    sys.mc().activate_precharge(0, victim - 1);
    sys.mc().activate_precharge(0, victim + 1);
  }
  sys.mc().activate_precharge(0, victim);
  EXPECT_EQ(sys.dev().stats().disturb_flips, 0u);
}

INSTANTIATE_TEST_SUITE_P(Timings, TimingMatrix, ::testing::Range(0, 4));

}  // namespace
}  // namespace densemem
