// End-to-end ECC behaviour through the controller against *real* device
// faults — the mechanism behind the paper's §II-C claim that SECDED is not
// enough for RowHammer while stronger ECC is (at a cost).
#include <gtest/gtest.h>

#include <bit>
#include <map>

#include "ctrl/controller.h"

namespace densemem::ctrl {
namespace {

using dram::Address;

// A device whose weak cells are dense and hair-triggered so a short hammer
// reliably puts multiple flips into rows.
dram::DeviceConfig fragile_device(double density, std::uint64_t seed) {
  dram::DeviceConfig cfg;
  cfg.geometry = dram::Geometry::tiny();
  cfg.reliability = dram::ReliabilityParams::vulnerable();
  cfg.reliability.weak_cell_density = density;
  cfg.reliability.hc50 = 5e3;
  cfg.reliability.hc_sigma = 0.2;
  cfg.reliability.dpd_sensitivity_mean = 0.0;  // pattern-independent here
  cfg.reliability.anticell_fraction = 0.0;
  cfg.seed = seed;
  cfg.pattern = dram::BackgroundPattern::kOnes;
  return cfg;
}

// Writes ones to the victim row, hammers both neighbours, reads it back.
struct HammerOutcome {
  std::uint64_t visible_flip_bits = 0;
  std::uint64_t corrected_words = 0;
  std::uint64_t uncorrectable_blocks = 0;
  std::uint64_t raw_flips = 0;
};
HammerOutcome hammer_row_through(MemoryController& mc, std::uint32_t victim,
                                 std::uint64_t strength) {
  auto& dev = mc.device();
  Address a{0, 0, 0, victim, 0};
  std::array<std::uint64_t, 8> ones;
  ones.fill(~std::uint64_t{0});
  for (std::uint32_t blk = 0; blk < mc.blocks_per_row(); ++blk) {
    a.col_word = blk;
    mc.write_block(a, ones);
  }
  mc.close_all_banks();
  const auto raw0 = dev.stats().disturb_flips;
  dev.hammer(0, victim - 1, strength, mc.now());
  dev.hammer(0, victim + 1, strength, mc.now());
  HammerOutcome out;
  const auto c0 = mc.stats();
  for (std::uint32_t blk = 0; blk < mc.blocks_per_row(); ++blk) {
    a.col_word = blk;
    const auto r = mc.read_block(a);
    for (std::uint32_t w = 0; w < 8; ++w)
      out.visible_flip_bits +=
          static_cast<std::uint64_t>(std::popcount(~r.data[w]));
  }
  const auto c1 = mc.stats();
  out.corrected_words = c1.ecc_corrected_words - c0.ecc_corrected_words;
  out.uncorrectable_blocks =
      c1.ecc_uncorrectable_blocks - c0.ecc_uncorrectable_blocks;
  out.raw_flips = dev.stats().disturb_flips - raw0;
  mc.close_all_banks();
  return out;
}

std::uint32_t pick_weak_victim(dram::Device& dev, std::size_t min_cells) {
  for (std::uint32_t r : dev.fault_map().weak_rows(0)) {
    if (r < 2 || r + 2 >= dev.geometry().rows) continue;
    if (dev.fault_map().weak_cells(0, r).size() >= min_cells) return r;
  }
  return 0;
}

TEST(EccPath, NoEccExposesAllFlips) {
  dram::Device dev(fragile_device(2e-3, 41));
  MemoryController mc(dev, CtrlConfig{});
  const std::uint32_t victim = pick_weak_victim(dev, 1);
  ASSERT_NE(victim, 0u);
  const auto out = hammer_row_through(mc, victim, 100'000);
  EXPECT_GT(out.raw_flips, 0u);
  EXPECT_EQ(out.visible_flip_bits, out.raw_flips);
}

TEST(EccPath, SecdedHidesIsolatedFlips) {
  // Sparse weak cells: at most one flip per 64-bit word -> SECDED corrects
  // everything and the attacker sees clean data.
  dram::DeviceConfig dc = fragile_device(1.5e-4, 43);
  dram::Device dev(dc);
  CtrlConfig cfg;
  cfg.ecc = EccMode::kSecded;
  MemoryController mc(dev, cfg);
  const std::uint32_t victim = pick_weak_victim(dev, 1);
  ASSERT_NE(victim, 0u);
  const auto out = hammer_row_through(mc, victim, 100'000);
  ASSERT_GT(out.raw_flips, 0u);
  EXPECT_EQ(out.visible_flip_bits, 0u);
  EXPECT_GE(out.corrected_words, 1u);
}

TEST(EccPath, SecdedFailsOnMultiFlipWords) {
  // Dense weak cells: some 64-bit words take 2+ flips. SECDED must report
  // uncorrectable blocks (or, worse, miscorrect) — the §II-C claim.
  dram::DeviceConfig dc = fragile_device(8e-3, 47);
  dram::Device dev(dc);
  CtrlConfig cfg;
  cfg.ecc = EccMode::kSecded;
  MemoryController mc(dev, cfg);
  // Find a victim row where one word holds >= 2 weak cells.
  std::uint32_t victim = 0;
  for (std::uint32_t r : dev.fault_map().weak_rows(0)) {
    if (r < 2 || r + 2 >= dev.geometry().rows) continue;
    std::map<std::uint32_t, int> per_word;
    for (const auto& c : dev.fault_map().weak_cells(0, r))
      if (++per_word[c.bit / 64] >= 2) victim = r;
    if (victim) break;
  }
  ASSERT_NE(victim, 0u);
  const auto out = hammer_row_through(mc, victim, 100'000);
  EXPECT_GT(out.uncorrectable_blocks + out.visible_flip_bits, 0u)
      << "2+ flips per word must defeat SECDED";
}

TEST(EccPath, BchSurvivesWhatSecdedCannot) {
  // Same dense device; BCH t=6 per 512-bit block corrects the multi-flip
  // words SECDED could not.
  dram::DeviceConfig dc = fragile_device(8e-3, 47);
  dram::Device dev(dc);
  CtrlConfig cfg;
  cfg.ecc = EccMode::kBch;
  cfg.bch_t = 6;
  MemoryController mc(dev, cfg);
  // Victim: a row with >= 2 weak cells where no 9-word ECC stride (8 data
  // words + check word) holds more than 6 cells, so BCH t=6 can always win.
  std::uint32_t victim = 0;
  for (std::uint32_t r : dev.fault_map().weak_rows(0)) {
    if (r < 2 || r + 2 >= dev.geometry().rows) continue;
    const auto& cells = dev.fault_map().weak_cells(0, r);
    if (cells.size() < 2) continue;
    std::map<std::uint32_t, int> per_stride;
    bool ok = true;
    for (const auto& c : cells)
      if (++per_stride[c.bit / (64 * 9)] > 6) ok = false;
    if (ok) {
      victim = r;
      break;
    }
  }
  ASSERT_NE(victim, 0u);
  const auto out = hammer_row_through(mc, victim, 100'000);
  ASSERT_GT(out.raw_flips, 1u);
  EXPECT_EQ(out.visible_flip_bits, 0u);
  EXPECT_EQ(out.uncorrectable_blocks, 0u);
}

TEST(EccPath, ScrubRestoresCorrectData) {
  dram::DeviceConfig dc = fragile_device(1.5e-4, 53);
  dram::Device dev(dc);
  CtrlConfig cfg;
  cfg.ecc = EccMode::kSecded;
  MemoryController mc(dev, cfg);
  const std::uint32_t victim = pick_weak_victim(dev, 1);
  ASSERT_NE(victim, 0u);
  // Write, hammer, scrub every block, then hammer *again* with the same
  // strength: without the scrub's writeback the second read would still
  // correct the same cell; after it, the cell was rewritten to full charge.
  Address a{0, 0, 0, victim, 0};
  std::array<std::uint64_t, 8> ones;
  ones.fill(~std::uint64_t{0});
  for (std::uint32_t blk = 0; blk < mc.blocks_per_row(); ++blk) {
    a.col_word = blk;
    mc.write_block(a, ones);
  }
  mc.close_all_banks();
  dev.hammer(0, victim - 1, 100'000, mc.now());
  dev.hammer(0, victim + 1, 100'000, mc.now());
  std::uint64_t corrected = 0;
  for (std::uint32_t blk = 0; blk < mc.blocks_per_row(); ++blk) {
    a.col_word = blk;
    const auto r = mc.scrub_block(a);
    corrected += static_cast<std::uint64_t>(r.corrected_bits);
  }
  ASSERT_GT(corrected, 0u);
  mc.close_all_banks();
  // Immediately re-read: everything must now be clean in storage.
  for (std::uint32_t blk = 0; blk < mc.blocks_per_row(); ++blk) {
    a.col_word = blk;
    const auto r = mc.read_block(a);
    EXPECT_EQ(r.status, ecc::DecodeStatus::kClean);
    for (const auto w : r.data) EXPECT_EQ(w, ~std::uint64_t{0});
  }
}

}  // namespace
}  // namespace densemem::ctrl
