// Multirate (RAIDR-style) refresh and AVATAR-style online upgrade through
// the controller (§III-A1 substrate).
#include <gtest/gtest.h>

#include "common/check.h"

#include "ctrl/controller.h"

namespace densemem::ctrl {
namespace {

using dram::Address;

dram::DeviceConfig leaky_device(std::uint64_t seed = 71) {
  dram::DeviceConfig cfg;
  cfg.geometry = dram::Geometry::tiny();
  cfg.reliability = dram::ReliabilityParams::leaky();
  cfg.reliability.leaky_cell_density = 1e-3;
  cfg.reliability.vrt_fraction = 0.0;
  cfg.reliability.retention_dpd_strength = 0.0;
  cfg.seed = seed;
  cfg.pattern = dram::BackgroundPattern::kOnes;
  return cfg;
}

TEST(Refresh, MultirateSkipsSlowBins) {
  dram::Device dev(leaky_device());
  CtrlConfig cfg;
  cfg.refresh_mode = RefreshMode::kMultirate;
  MemoryController mc(dev, cfg);
  // Put every row of bank 0 in bin 2 (refresh every 4 windows).
  for (std::uint32_t r = 0; r < dev.geometry().rows; ++r)
    mc.set_row_bin(0, r, 2);
  mc.advance_to(Time::ms(64 * 8));  // 8 windows
  const auto& st = mc.stats();
  EXPECT_GT(st.rows_skipped_multirate, 0u);
  // Bank 0 skips 3 of 4 passes; bank 1 (bin 0) skips none. So skipped ≈
  // 3/4 × refreshed-in-bank-0 ≈ 3/8 of all row slots.
  const double frac = static_cast<double>(st.rows_skipped_multirate) /
                      static_cast<double>(st.rows_refreshed +
                                          st.rows_skipped_multirate);
  EXPECT_NEAR(frac, 3.0 / 8.0, 0.05);
}

TEST(Refresh, MultirateEnergySavings) {
  auto energy_with_bin = [](std::uint8_t bin) {
    dram::Device dev(leaky_device());
    CtrlConfig cfg;
    cfg.refresh_mode = RefreshMode::kMultirate;
    MemoryController mc(dev, cfg);
    for (std::uint32_t b = 0; b < dram::total_banks(dev.geometry()); ++b)
      for (std::uint32_t r = 0; r < dev.geometry().rows; ++r)
        mc.set_row_bin(b, r, bin);
    mc.advance_to(Time::ms(64 * 8));
    return mc.energy().refresh_energy.as_nj();
  };
  const double e0 = energy_with_bin(0);
  const double e2 = energy_with_bin(2);
  EXPECT_NEAR(e2 / e0, 0.25, 0.08);
}

TEST(Refresh, SlowBinOnLeakyRowCausesErrors) {
  // RAIDR's risk: a leaky row placed in a slow bin accumulates retention
  // failures the standard rate would have prevented.
  dram::Device dev(leaky_device());
  CtrlConfig cfg;
  cfg.refresh_mode = RefreshMode::kMultirate;
  MemoryController mc(dev, cfg);
  // Find a row with a cell whose retention is between 1 and 4 windows.
  std::uint32_t bad_row = 0;
  for (std::uint32_t r : dev.fault_map().leaky_rows(0)) {
    for (const auto& c : dev.fault_map().leaky_cells(0, r))
      if (!c.anti_cell && c.retention_ms > 80.0f && c.retention_ms < 250.0f)
        bad_row = r;
    if (bad_row) break;
  }
  ASSERT_NE(bad_row, 0u);
  mc.set_row_bin(0, bad_row, 2);  // refreshed every 256 ms only
  mc.advance_to(Time::ms(64 * 16));
  EXPECT_GT(dev.stats().retention_flips, 0u);
}

TEST(Refresh, AvatarUpgradeStopsRepeatedErrors) {
  // AVATAR: when scrubbing sees an ECC-corrected retention error, upgrade
  // the row to the fastest bin; afterwards the error must not recur.
  dram::DeviceConfig dc = leaky_device(73);
  dram::Device dev(dc);
  CtrlConfig cfg;
  cfg.refresh_mode = RefreshMode::kMultirate;
  cfg.ecc = EccMode::kSecded;
  MemoryController mc(dev, cfg);

  std::uint32_t bad_row = 0;
  for (std::uint32_t r : dev.fault_map().leaky_rows(0)) {
    if (r == 0) continue;
    for (const auto& c : dev.fault_map().leaky_cells(0, r))
      if (!c.anti_cell && c.retention_ms > 80.0f && c.retention_ms < 250.0f &&
          c.bit / 64 % 9 != 8)  // land in a data word, not the check word
        bad_row = r;
    if (bad_row) break;
  }
  ASSERT_NE(bad_row, 0u);
  // Write known data through the ECC path, park the row in a slow bin.
  Address a{0, 0, 0, bad_row, 0};
  std::array<std::uint64_t, 8> ones;
  ones.fill(~std::uint64_t{0});
  for (std::uint32_t blk = 0; blk < mc.blocks_per_row(); ++blk) {
    a.col_word = blk;
    mc.write_block(a, ones);
  }
  mc.close_all_banks();
  mc.set_row_bin(0, bad_row, 3);

  // AVATAR loop: scrub each window; on corrected error, upgrade to bin 0.
  bool upgraded = false;
  std::uint64_t corrected_after_upgrade = 0;
  // Scrub every 4 windows (256 ms): scrubbing itself restores the row, so
  // a faster cadence would mask the slow-bin failure it is meant to detect.
  for (int window = 4; window <= 96; window += 4) {
    mc.advance_to(Time::ms(64) * window);
    const auto before = mc.stats().ecc_corrected_words;
    for (std::uint32_t blk = 0; blk < mc.blocks_per_row(); ++blk) {
      a.col_word = blk;
      mc.scrub_block(a);
    }
    mc.close_all_banks();
    const auto corrected = mc.stats().ecc_corrected_words - before;
    if (corrected > 0) {
      if (!upgraded) {
        mc.set_row_bin(0, bad_row, 0);
        upgraded = true;
      } else {
        corrected_after_upgrade += corrected;
      }
    }
  }
  EXPECT_TRUE(upgraded) << "slow bin never produced a correctable error";
  // The scrub itself rewrites the cell each window, and with bin 0 the row
  // is also refreshed every window, so the error must not recur often.
  EXPECT_LE(corrected_after_upgrade, 1u);
}

TEST(Refresh, StandardModeIgnoresBins) {
  dram::Device dev(leaky_device());
  CtrlConfig cfg;  // kStandard
  MemoryController mc(dev, cfg);
  for (std::uint32_t r = 0; r < dev.geometry().rows; ++r)
    mc.set_row_bin(0, r, 3);
  mc.advance_to(Time::ms(128));
  EXPECT_EQ(mc.stats().rows_skipped_multirate, 0u);
}

TEST(Refresh, BinOutOfRangeRejected) {
  dram::Device dev(leaky_device());
  MemoryController mc(dev, CtrlConfig{});
  EXPECT_THROW(mc.set_row_bin(0, 0, 8), CheckError);
  mc.set_row_bin(0, 0, 7);
  EXPECT_EQ(mc.row_bin(0, 0), 7);
}

}  // namespace
}  // namespace densemem::ctrl
