#include "ctrl/scheduler.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace densemem::ctrl {
namespace {

dram::DeviceConfig quiet() {
  dram::DeviceConfig cfg;
  cfg.geometry = dram::Geometry::tiny();
  cfg.reliability = dram::ReliabilityParams::robust();
  cfg.reliability.leaky_cell_density = 0.0;
  cfg.seed = 4;
  return cfg;
}

// Interleaved rows in one bank: FCFS ping-pongs (all misses); FR-FCFS
// groups by row and converts most to hits.
std::vector<Request> pingpong_batch(int n) {
  std::vector<Request> reqs;
  for (int i = 0; i < n; ++i) {
    Request r;
    r.addr = {0, 0, 0, static_cast<std::uint32_t>(i % 2 ? 10 : 20),
              static_cast<std::uint32_t>(i / 2 % 8)};
    reqs.push_back(r);
  }
  return reqs;
}

TEST(Scheduler, FcfsPreservesArrivalOrder) {
  dram::Device dev(quiet());
  MemoryController mc(dev, CtrlConfig{});
  RequestScheduler sched(mc, SchedPolicy::kFcfs);
  // Tag each row's word 0 so the read results identify service order.
  for (std::uint32_t row : {5u, 6u, 7u}) {
    dev.activate(0, row, mc.now());
    dev.write_word(0, 0, 1000 + row);
    dev.precharge(0, mc.now());
  }
  for (std::uint32_t row : {7u, 5u, 6u}) {
    Request r;
    r.addr = {0, 0, 0, row, 0};
    sched.enqueue(r);
  }
  std::vector<ReadResult> out;
  const auto stats = sched.drain(&out);
  EXPECT_EQ(stats.served, 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].data[0], 1007u);
  EXPECT_EQ(out[1].data[0], 1005u);
  EXPECT_EQ(out[2].data[0], 1006u);
}

TEST(Scheduler, FrFcfsBeatsFcfsOnRowLocality) {
  auto run = [](SchedPolicy policy) {
    dram::Device dev(quiet());
    MemoryController mc(dev, CtrlConfig{});
    RequestScheduler sched(mc, policy);
    for (auto& r : pingpong_batch(64)) sched.enqueue(r);
    return sched.drain();
  };
  const auto fcfs = run(SchedPolicy::kFcfs);
  const auto frfcfs = run(SchedPolicy::kFrFcfs);
  EXPECT_EQ(fcfs.served, frfcfs.served);
  EXPECT_GT(frfcfs.row_hits, fcfs.row_hits);
  EXPECT_LT(frfcfs.service_time, fcfs.service_time);
}

TEST(Scheduler, FrFcfsNeverStarvesToCompletion) {
  // Every enqueued request is served exactly once regardless of policy.
  dram::Device dev(quiet());
  MemoryController mc(dev, CtrlConfig{});
  RequestScheduler sched(mc, SchedPolicy::kFrFcfs);
  Rng rng(5);
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    Request r;
    r.addr = {0, 0, static_cast<std::uint32_t>(rng.uniform_int(std::uint64_t{2})),
              static_cast<std::uint32_t>(rng.uniform_int(std::uint64_t{100})),
              static_cast<std::uint32_t>(rng.uniform_int(std::uint64_t{8}))};
    r.is_write = rng.bernoulli(0.3);
    sched.enqueue(r);
  }
  EXPECT_EQ(sched.pending(), static_cast<std::size_t>(n));
  const auto stats = sched.drain();
  EXPECT_EQ(stats.served, static_cast<std::uint64_t>(n));
  EXPECT_EQ(sched.pending(), 0u);
  EXPECT_GT(stats.mean_queue_latency_ns, 0.0);
}

TEST(Scheduler, WritesLandThroughTheQueue) {
  dram::Device dev(quiet());
  MemoryController mc(dev, CtrlConfig{});
  RequestScheduler sched(mc, SchedPolicy::kFrFcfs);
  Request w;
  w.addr = {0, 0, 1, 42, 3};
  w.is_write = true;
  w.data.fill(0xABCDull);
  sched.enqueue(w);
  Request rd;
  rd.addr = w.addr;
  sched.enqueue(rd);
  std::vector<ReadResult> out;
  sched.drain(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].data[0], 0xABCDull);
}

TEST(Scheduler, ClosedPagePolicyNeutralizesFrFcfs) {
  // Under closed-page the row is gone after every access, so FR-FCFS finds
  // no hits and degenerates to FCFS timing.
  auto run = [](SchedPolicy policy) {
    dram::Device dev(quiet());
    CtrlConfig cc;
    cc.page_policy = PagePolicy::kClosed;
    MemoryController mc(dev, cc);
    RequestScheduler sched(mc, policy);
    for (auto& r : pingpong_batch(64)) sched.enqueue(r);
    return sched.drain();
  };
  const auto fcfs = run(SchedPolicy::kFcfs);
  const auto frfcfs = run(SchedPolicy::kFrFcfs);
  EXPECT_EQ(frfcfs.row_hits, 0u);
  EXPECT_EQ(frfcfs.service_time, fcfs.service_time);
}

}  // namespace
}  // namespace densemem::ctrl
