#include "common/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace densemem {
namespace {

TEST(Table, AsciiRendering) {
  Table t({"name", "value"});
  t.set_precision(2);
  t.add_row({std::string("alpha"), 1.5});
  t.add_row({std::string("b"), std::int64_t{-7}});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("-7"), std::string::npos);
  EXPECT_NE(s.find("+"), std::string::npos);
}

TEST(Table, RowWidthEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), CheckError);
}

TEST(Table, CsvQuoting) {
  Table t({"x"});
  t.add_row({std::string("has,comma")});
  t.add_row({std::string("has\"quote")});
  std::ostringstream os;
  t.print_csv(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, CsvQuotesCommaBearingSeriesLabelsAndCrLf) {
  // RFC-4180: commas, quotes, and CR/LF all force quoting; embedded quotes
  // double. "PARA, p=0.001"-style labels must survive a round trip.
  Table t({"mitigation", "note"});
  t.add_row({std::string("PARA, p=0.001"), std::string("line1\r\nline2")});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(),
            "mitigation,note\n\"PARA, p=0.001\",\"line1\r\nline2\"\n");
}

TEST(Table, CsvQuotesHeadersToo) {
  Table t({"rate, per 1e9", "plain"});
  t.add_row({1.0, 2.0});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str().substr(0, os.str().find('\n')),
            "\"rate, per 1e9\",plain");
}

TEST(Table, JsonMirror) {
  Table t({"name", "rate", "count"});
  t.set_precision(2);
  t.add_row({std::string("a\"b"), 1.5, std::uint64_t{7}});
  t.add_row({std::string("plain"), -2.0, std::uint64_t{0}});
  std::ostringstream os;
  t.print_json(os);
  EXPECT_EQ(os.str(),
            "[\n"
            "  {\"name\": \"a\\\"b\", \"rate\": 1.50, \"count\": 7},\n"
            "  {\"name\": \"plain\", \"rate\": -2.00, \"count\": 0}\n"
            "]\n");
}

TEST(Table, JsonEscapesControlCharacters) {
  Table t({"s"});
  t.add_row({std::string("tab\there\nnew\x01")});
  std::ostringstream os;
  t.print_json(os);
  EXPECT_NE(os.str().find("tab\\there\\nnew\\u0001"), std::string::npos);
}

TEST(Table, WriteJsonRoundTrip) {
  Table t({"a"});
  t.add_row({std::int64_t{-3}});
  const std::string path = ::testing::TempDir() + "/densemem_table_test.json";
  ASSERT_TRUE(t.write_json(path));
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_EQ(ss.str(), "[\n  {\"a\": -3}\n]\n");
  std::remove(path.c_str());
  EXPECT_FALSE(t.write_json("/nonexistent-dir-xyz/file.json"));
}

TEST(Table, ScientificMode) {
  Table t({"v"});
  t.set_scientific(true);
  t.set_precision(2);
  t.add_row({123456.0});
  EXPECT_NE(t.to_string().find("1.23e+05"), std::string::npos);
}

TEST(Table, WriteCsvRoundTrip) {
  Table t({"a", "b"});
  t.add_row({std::uint64_t{3}, std::string("x")});
  const std::string path = ::testing::TempDir() + "/densemem_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "3,x");
  std::remove(path.c_str());
}

TEST(Table, WriteCsvBadPathFails) {
  Table t({"a"});
  EXPECT_FALSE(t.write_csv("/nonexistent-dir-xyz/file.csv"));
}

TEST(FormatHelpers, Sci) {
  EXPECT_EQ(format_sci(12345.0, 2), "1.23e+04");
  EXPECT_EQ(format_sci(0.0, 1), "0.0e+00");
}

TEST(FormatHelpers, CountSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(12), "12");
}

}  // namespace
}  // namespace densemem
