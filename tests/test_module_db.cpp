#include "dram/module_db.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace densemem::dram {
namespace {

TEST(ModuleDb, PublishedAggregateStatistics) {
  ModuleDb db;
  // The paper: 129 modules tested, 110 vulnerable, earliest 2010.
  EXPECT_EQ(db.size(), 129u);
  EXPECT_EQ(db.vulnerable_count(), 110u);
  EXPECT_EQ(db.earliest_vulnerable_year(), 2010);
}

TEST(ModuleDb, All2012And2013ModulesVulnerable) {
  ModuleDb db;
  for (const auto& m : db.modules()) {
    if (m.year == 2012 || m.year == 2013) {
      EXPECT_TRUE(m.vulnerable) << m.id;
    }
  }
}

TEST(ModuleDb, PreRowHammerEraClean) {
  ModuleDb db;
  for (const auto& m : db.modules()) {
    if (m.year <= 2009) {
      EXPECT_FALSE(m.vulnerable) << m.id;
      EXPECT_EQ(m.reliability.weak_cell_density, 0.0) << m.id;
    }
  }
}

TEST(ModuleDb, AllThreeManufacturersPresentEveryYear) {
  ModuleDb db;
  std::map<int, std::set<Manufacturer>> mfrs;
  for (const auto& m : db.modules()) mfrs[m.year].insert(m.manufacturer);
  for (int year = 2008; year <= 2014; ++year) {
    EXPECT_EQ(mfrs[year].size(), 3u) << "year " << year;
  }
}

TEST(ModuleDb, VulnerableModulesHaveConsistentParams) {
  ModuleDb db;
  for (const auto& m : db.modules()) {
    if (!m.vulnerable) continue;
    EXPECT_GT(m.target_error_rate, 0.0) << m.id;
    EXPECT_GT(m.reliability.weak_cell_density, 0.0) << m.id;
    EXPECT_GT(m.reliability.hc50, 10e3) << m.id;
    EXPECT_LT(m.reliability.hc50, 1e6) << m.id;
  }
}

TEST(ModuleDb, NewerModulesHaveLowerThresholds) {
  // Median hc50 by year must decline: newer process nodes flip easier.
  ModuleDb db;
  std::map<int, std::vector<double>> by_year;
  for (const auto& m : db.modules())
    if (m.vulnerable) by_year[m.year].push_back(m.reliability.hc50);
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  EXPECT_GT(median(by_year[2010]), median(by_year[2012]));
  EXPECT_GT(median(by_year[2012]), median(by_year[2014]));
}

TEST(ModuleDb, DeterministicForSameSeed) {
  ModuleDb a(99), b(99);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.modules()[i].id, b.modules()[i].id);
    EXPECT_EQ(a.modules()[i].vulnerable, b.modules()[i].vulnerable);
    EXPECT_DOUBLE_EQ(a.modules()[i].target_error_rate,
                     b.modules()[i].target_error_rate);
  }
}

TEST(ModuleDb, SeedVariesJitterNotAggregates) {
  ModuleDb a(1), b(2);
  EXPECT_EQ(a.vulnerable_count(), b.vulnerable_count());
  EXPECT_EQ(a.earliest_vulnerable_year(), b.earliest_vulnerable_year());
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i)
    differs = a.modules()[i].target_error_rate != b.modules()[i].target_error_rate;
  EXPECT_TRUE(differs);
}

TEST(ModuleDb, UniqueIds) {
  ModuleDb db;
  std::set<std::string> ids;
  for (const auto& m : db.modules()) ids.insert(m.id);
  EXPECT_EQ(ids.size(), db.size());
}

TEST(ModuleDb, DeviceConfigUsesModuleSeedAndParams) {
  ModuleDb db;
  const auto& m = db.modules().front();
  const auto cfg = db.device_config(m, Geometry::tiny());
  EXPECT_EQ(cfg.seed, m.seed);
  EXPECT_EQ(cfg.reliability.weak_cell_density,
            m.reliability.weak_cell_density);
  EXPECT_EQ(cfg.geometry.rows, Geometry::tiny().rows);
}

}  // namespace
}  // namespace densemem::dram
