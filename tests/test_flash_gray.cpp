// MLC state-mapping and read-reference property sweeps.
#include <gtest/gtest.h>

#include "flash/device.h"

#include <set>

namespace densemem::flash {
namespace {

// Every (lsb, msb) combination maps to exactly one state and back.
TEST(GrayCode, BijectionOverBitPairs) {
  std::set<int> states;
  for (const bool lsb : {false, true}) {
    for (const bool msb : {false, true}) {
      const int s = state_of(lsb, msb);
      ASSERT_GE(s, 0);
      ASSERT_LE(s, 3);
      EXPECT_TRUE(states.insert(s).second);
      EXPECT_EQ(lsb_of_state(s), lsb);
      EXPECT_EQ(msb_of_state(s), msb);
    }
  }
  EXPECT_EQ(states.size(), 4u);
}

TEST(GrayCode, AdjacentStatesDifferInOneBit) {
  // The point of Gray coding: a one-level misread corrupts one bit, not two.
  for (int s = 0; s < 3; ++s) {
    const int diff = (lsb_of_state(s) != lsb_of_state(s + 1)) +
                     (msb_of_state(s) != msb_of_state(s + 1));
    EXPECT_EQ(diff, 1) << "states " << s << " and " << s + 1;
  }
}

// Programming every state and reading at nominal references returns the
// written bits for every cell — swept across seeds.
class StateRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StateRoundTrip, AllFourStatesReadBack) {
  FlashConfig cfg;
  cfg.geometry = {1, 2, 256};
  cfg.seed = GetParam();
  FlashDevice dev(cfg);
  // Cell c gets state c % 4.
  BitVec lsb(256), msb(256);
  for (std::uint32_t c = 0; c < 256; ++c) {
    lsb.set(c, lsb_of_state(static_cast<int>(c % 4)));
    msb.set(c, msb_of_state(static_cast<int>(c % 4)));
  }
  dev.program_page({0, 0, PageType::kLsb}, lsb, 0.0);
  dev.program_page({0, 0, PageType::kMsb}, msb, 0.0);
  EXPECT_EQ(dev.read_page({0, 0, PageType::kLsb}, 0.0), lsb);
  EXPECT_EQ(dev.read_page({0, 0, PageType::kMsb}, 0.0), msb);
  for (std::uint32_t c = 0; c < 256; ++c)
    ASSERT_EQ(dev.intended_state(0, 0, c), static_cast<int>(c % 4));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StateRoundTrip,
                         ::testing::Values(1u, 17u, 333u, 4096u));

TEST(ReadReference, OffsetsShiftDecisionsMonotonically) {
  // Raising the LSB reference can only turn 0-bits into 1-bits (cells sit
  // below a higher threshold), never the reverse.
  FlashConfig cfg;
  cfg.geometry = {1, 2, 512};
  cfg.seed = 9;
  FlashDevice dev(cfg);
  BitVec lsb(512);
  for (std::uint32_t c = 0; c < 512; c += 2) lsb.set(c);
  dev.program_page({0, 0, PageType::kLsb}, lsb, 0.0);
  const BitVec lo = dev.read_page({0, 0, PageType::kLsb}, 0.0, -0.3);
  const BitVec mid = dev.read_page({0, 0, PageType::kLsb}, 0.0, 0.0);
  const BitVec hi = dev.read_page({0, 0, PageType::kLsb}, 0.0, +0.3);
  for (std::uint32_t c = 0; c < 512; ++c) {
    // lo <= mid <= hi as predicates (1 means "below reference").
    EXPECT_LE(lo.get(c), mid.get(c)) << c;
    EXPECT_LE(mid.get(c), hi.get(c)) << c;
  }
}

TEST(ReadReference, PerCellOffsetsMatchGlobalWhenUniform) {
  FlashConfig cfg;
  cfg.geometry = {1, 2, 512};
  cfg.seed = 11;
  FlashDevice dev(cfg);
  BitVec data(512);
  for (std::uint32_t c = 0; c < 512; c += 3) data.set(c);
  dev.program_page({0, 0, PageType::kLsb}, data, 0.0);
  dev.program_page({0, 0, PageType::kMsb}, data, 0.0);
  const double off = -0.12;
  const BitVec global = dev.read_page({0, 0, PageType::kMsb}, 50.0, off);
  std::vector<float> offsets(512, static_cast<float>(off));
  const BitVec per_cell =
      dev.read_page_with_offsets({0, 0, PageType::kMsb}, 50.0, offsets);
  EXPECT_EQ(global, per_cell);
}

}  // namespace
}  // namespace densemem::flash
