#include "flash/device.h"

#include <gtest/gtest.h>

#include "common/check.h"

#include "common/rng.h"

namespace densemem::flash {
namespace {

FlashConfig small_flash(std::uint64_t seed = 7) {
  FlashConfig cfg;
  cfg.geometry = {4, 8, 512};
  cfg.seed = seed;
  return cfg;
}

BitVec random_page(Rng& rng, std::uint32_t bits) {
  BitVec v(bits);
  for (std::size_t w = 0; w < v.word_count(); ++w) v.set_word(w, rng.next_u64());
  return v;
}

TEST(FlashDevice, ErasedPagesReadAllOnes) {
  FlashDevice dev(small_flash());
  const auto lsb = dev.read_page({0, 0, PageType::kLsb}, 0.0);
  const auto msb = dev.read_page({0, 0, PageType::kMsb}, 0.0);
  EXPECT_EQ(lsb.popcount(), lsb.size());
  EXPECT_EQ(msb.popcount(), msb.size());
}

TEST(FlashDevice, FreshProgramRoundTrip) {
  FlashDevice dev(small_flash());
  Rng rng(1);
  const auto lsb = random_page(rng, 512);
  const auto msb = random_page(rng, 512);
  dev.program_page({0, 3, PageType::kLsb}, lsb, 0.0);
  dev.program_page({0, 3, PageType::kMsb}, msb, 0.0);
  // Immediately after programming, raw error rate must be ~0 at these
  // margins (the fresh-chip regime).
  const auto rl = dev.read_page({0, 3, PageType::kLsb}, 0.0);
  const auto rm = dev.read_page({0, 3, PageType::kMsb}, 0.0);
  EXPECT_LE(BitVec::hamming_distance(rl, lsb), 1u);
  EXPECT_LE(BitVec::hamming_distance(rm, msb), 1u);
}

TEST(FlashDevice, TwoStepOrderEnforced) {
  FlashDevice dev(small_flash());
  BitVec data(512, true);
  EXPECT_THROW(dev.program_page({0, 0, PageType::kMsb}, data, 0.0),
               CheckError);
  dev.program_page({0, 0, PageType::kLsb}, data, 0.0);
  EXPECT_THROW(dev.program_page({0, 0, PageType::kLsb}, data, 0.0),
               CheckError);
  dev.program_page({0, 0, PageType::kMsb}, data, 0.0);
  EXPECT_THROW(dev.program_page({0, 0, PageType::kMsb}, data, 0.0),
               CheckError);
  EXPECT_TRUE(dev.page_programmed({0, 0, PageType::kLsb}));
  EXPECT_TRUE(dev.page_programmed({0, 0, PageType::kMsb}));
}

TEST(FlashDevice, EraseResetsPages) {
  FlashDevice dev(small_flash());
  BitVec data(512);
  dev.program_page({1, 0, PageType::kLsb}, data, 0.0);
  EXPECT_TRUE(dev.page_programmed({1, 0, PageType::kLsb}));
  const auto pe0 = dev.pe_cycles(1);
  dev.erase_block(1, 1.0);
  EXPECT_FALSE(dev.page_programmed({1, 0, PageType::kLsb}));
  EXPECT_EQ(dev.pe_cycles(1), pe0 + 1);
  const auto r = dev.read_page({1, 0, PageType::kLsb}, 1.0);
  EXPECT_EQ(r.popcount(), r.size());
}

TEST(FlashDevice, RetentionLossGrowsWithTime) {
  FlashConfig cfg = small_flash();
  FlashDevice dev(cfg);
  Rng rng(3);
  dev.age_block(0, 5000);
  for (std::uint32_t wl = 0; wl < 8; ++wl) {
    dev.program_page({0, wl, PageType::kLsb}, random_page(rng, 512), 0.0);
    dev.program_page({0, wl, PageType::kMsb}, random_page(rng, 512), 0.0);
  }
  // Average Vth of programmed cells must fall monotonically with age.
  auto mean_vth = [&](double t) {
    double sum = 0;
    int n = 0;
    for (std::uint32_t wl = 0; wl < 8; ++wl)
      for (std::uint32_t c = 0; c < 512; c += 7) {
        if (dev.intended_state(0, wl, c) >= 1) {  // programmed states only
          sum += dev.effective_vth(0, wl, c, t);
          ++n;
        }
      }
    return sum / n;
  };
  const double v0 = mean_vth(0.0);
  const double v30 = mean_vth(30 * 86400.0);
  const double v365 = mean_vth(365 * 86400.0);
  EXPECT_GT(v0, v30);
  EXPECT_GT(v30, v365);
}

TEST(FlashDevice, WearAmplifiesRetentionLoss) {
  auto loss_at = [](std::uint32_t pe) {
    FlashConfig cfg = small_flash(11);
    FlashDevice dev(cfg);
    dev.age_block(0, pe);
    BitVec zeros(512);  // LSB=0 everywhere -> all cells leave ER
    dev.program_page({0, 0, PageType::kLsb}, zeros, 0.0);
    dev.program_page({0, 0, PageType::kMsb}, zeros, 0.0);  // P2 state
    double sum = 0;
    for (std::uint32_t c = 0; c < 512; ++c)
      sum += dev.effective_vth(0, 0, c, 0.0) -
             dev.effective_vth(0, 0, c, 365 * 86400.0);
    return sum / 512.0;
  };
  EXPECT_GT(loss_at(10000), loss_at(100));
}

TEST(FlashDevice, ReadDisturbPushesErCellsUp) {
  FlashConfig cfg = small_flash(13);
  cfg.cell.rd_step = 1e-4;  // exaggerated for the test
  FlashDevice dev(cfg);
  BitVec ones(512, true);  // stay in ER
  dev.program_page({0, 0, PageType::kLsb}, ones, 0.0);
  dev.program_page({0, 0, PageType::kMsb}, ones, 0.0);
  const double before = dev.effective_vth(0, 0, 10, 1.0);
  // Hammer reads on a different wordline of the same block.
  BitVec junk(512, true);
  dev.program_page({0, 5, PageType::kLsb}, junk, 0.0);
  for (int i = 0; i < 5000; ++i)
    dev.read_page({0, 5, PageType::kLsb}, 1.0);
  const double after = dev.effective_vth(0, 0, 10, 1.0);
  EXPECT_GT(after, before);
}

TEST(FlashDevice, ReadDisturbDoesNotAffectHighStates) {
  FlashConfig cfg = small_flash(17);
  cfg.cell.rd_step = 1e-4;
  FlashDevice dev(cfg);
  BitVec zeros(512);
  dev.program_page({0, 0, PageType::kLsb}, zeros, 0.0);
  dev.program_page({0, 0, PageType::kMsb}, zeros, 0.0);  // P2 ~ 2.0 V
  const double before = dev.effective_vth(0, 0, 10, 1.0);
  BitVec junk(512, true);
  dev.program_page({0, 5, PageType::kLsb}, junk, 0.0);
  for (int i = 0; i < 5000; ++i)
    dev.read_page({0, 5, PageType::kLsb}, 1.0);
  EXPECT_DOUBLE_EQ(dev.effective_vth(0, 0, 10, 1.0), before);
}

TEST(FlashDevice, ProgramInterferenceShiftsLowerNeighbor) {
  FlashConfig cfg = small_flash(19);
  FlashDevice dev(cfg);
  BitVec ones(512, true);
  dev.program_page({0, 2, PageType::kLsb}, ones, 0.0);  // stays ER
  const double before = dev.effective_vth(0, 2, 10, 0.0);
  // Programming wordline 3 hard (LSB=0 -> LM for every cell) couples up.
  BitVec zeros(512);
  dev.program_page({0, 3, PageType::kLsb}, zeros, 0.0);
  const double after = dev.effective_vth(0, 2, 10, 0.0);
  EXPECT_GT(after, before);
  EXPECT_NEAR(after - before, cfg.cell.interference_gamma * cfg.cell.lm_mean,
              0.1);
}

TEST(FlashDevice, PerCellVariationIsDeterministicAndWide) {
  FlashDevice a(small_flash(23)), b(small_flash(23));
  double min_leak = 1e9, max_leak = 0;
  for (std::uint32_t c = 0; c < 512; ++c) {
    EXPECT_DOUBLE_EQ(a.leak_factor(0, 0, c), b.leak_factor(0, 0, c));
    EXPECT_DOUBLE_EQ(a.rd_susceptibility(1, 2, c), b.rd_susceptibility(1, 2, c));
    min_leak = std::min(min_leak, a.leak_factor(0, 0, c));
    max_leak = std::max(max_leak, a.leak_factor(0, 0, c));
  }
  // §III-A2: "wide variation in the leakiness of different flash cells".
  EXPECT_GT(max_leak / min_leak, 5.0);
}

TEST(FlashDevice, TwoStepMisreadsOccurUnderDrift) {
  // Program LSB, age the intermediate state heavily, then program MSB: the
  // internal LSB readback must misinterpret some drifted LM cells.
  FlashConfig cfg = small_flash(29);
  cfg.cell.leak_sigma = 0.8;
  FlashDevice dev(cfg);
  dev.age_block(0, 20000);
  dev.erase_block(0, 0.0);
  BitVec zeros(512);  // all cells to LM
  dev.program_page({0, 0, PageType::kLsb}, zeros, 0.0);
  const double much_later = 200.0 * 86400.0;
  BitVec msb(512, true);
  dev.program_page({0, 0, PageType::kMsb}, msb, much_later);
  EXPECT_GT(dev.stats().two_step_lsb_misreads, 0u);
}

TEST(FlashDevice, LsbBufferingMitigationPreventsMisreads) {
  FlashConfig cfg = small_flash(29);
  cfg.cell.leak_sigma = 0.8;
  cfg.buffer_lsb_in_controller = true;  // the [24] mitigation
  FlashDevice dev(cfg);
  dev.age_block(0, 20000);
  dev.erase_block(0, 0.0);
  BitVec zeros(512);
  dev.program_page({0, 0, PageType::kLsb}, zeros, 0.0);
  BitVec msb(512, true);
  dev.program_page({0, 0, PageType::kMsb}, msb, 200.0 * 86400.0);
  EXPECT_EQ(dev.stats().two_step_lsb_misreads, 0u);
}

TEST(FlashDevice, GrayCodeMappingConsistent) {
  for (int s = 0; s < 4; ++s)
    EXPECT_EQ(state_of(lsb_of_state(s), msb_of_state(s)), s);
}

}  // namespace
}  // namespace densemem::flash
