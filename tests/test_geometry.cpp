#include "dram/geometry.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace densemem::dram {
namespace {

TEST(Geometry, Totals) {
  Geometry g{2, 2, 8, 32768, 8192};
  EXPECT_EQ(g.rows_total(), 2ull * 2 * 8 * 32768);
  EXPECT_EQ(g.bytes_total(), g.rows_total() * 8192);
  EXPECT_EQ(g.cells_total(), g.bytes_total() * 8);
  EXPECT_EQ(g.row_bits(), 8192u * 8);
  EXPECT_EQ(g.row_words(), 1024u);
}

TEST(Geometry, ValidateRejectsDegenerate) {
  Geometry g = Geometry::tiny();
  EXPECT_NO_THROW(g.validate());
  g.rows = 1;  // single-row banks are legal (no neighbours, but refresh
  EXPECT_NO_THROW(g.validate());  // and retention still apply)
  g.rows = 0;
  EXPECT_THROW(g.validate(), CheckError);
  g = Geometry::tiny();
  g.row_bytes = 100;  // not a multiple of 64
  EXPECT_THROW(g.validate(), CheckError);
}

TEST(Geometry, FlatBankRoundTrip) {
  Geometry g{2, 2, 4, 64, 1024};
  for (std::uint32_t ch = 0; ch < g.channels; ++ch)
    for (std::uint32_t rk = 0; rk < g.ranks; ++rk)
      for (std::uint32_t b = 0; b < g.banks; ++b) {
        Address a{ch, rk, b, 7, 3};
        const std::uint32_t f = flat_bank(g, a);
        ASSERT_LT(f, total_banks(g));
        const Address back = address_of(g, f, 7, 3);
        EXPECT_EQ(back, a);
      }
}

TEST(Geometry, FlatBankIsBijective) {
  Geometry g{2, 3, 4, 64, 1024};
  std::vector<bool> seen(total_banks(g), false);
  for (std::uint32_t ch = 0; ch < g.channels; ++ch)
    for (std::uint32_t rk = 0; rk < g.ranks; ++rk)
      for (std::uint32_t b = 0; b < g.banks; ++b) {
        const std::uint32_t f = flat_bank(g, Address{ch, rk, b, 0, 0});
        EXPECT_FALSE(seen[f]);
        seen[f] = true;
      }
}

TEST(Geometry, TinyIsValid) {
  EXPECT_NO_THROW(Geometry::tiny().validate());
  EXPECT_EQ(Geometry::tiny().rows, 512u);
}

}  // namespace
}  // namespace densemem::dram
