#include "attack/patterns.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.h"

#include <set>

namespace densemem::attack {
namespace {

PatternConfig base_config(PatternKind kind) {
  PatternConfig cfg;
  cfg.kind = kind;
  cfg.victim_row = 100;
  cfg.rows_in_bank = 512;
  return cfg;
}

TEST(Patterns, DoubleSidedAggressors) {
  HammerPattern p(base_config(PatternKind::kDoubleSided));
  EXPECT_EQ(p.aggressors(), (std::vector<std::uint32_t>{99, 101}));
  const auto victims = p.expected_victims();
  // Victims: rows within distance 2 of an aggressor minus the aggressors:
  // 97, 98, 100, 102, 103.
  EXPECT_EQ(victims, (std::vector<std::uint32_t>{97, 98, 100, 102, 103}));
}

TEST(Patterns, SingleSidedHasAdjacentPlusDummy) {
  HammerPattern p(base_config(PatternKind::kSingleSided));
  ASSERT_EQ(p.aggressors().size(), 2u);
  EXPECT_EQ(p.aggressors()[0], 101u);
  // Dummy is far from the victim.
  const std::uint32_t dummy = p.aggressors()[1];
  EXPECT_GT(dummy > 100u ? dummy - 100u : 100u - dummy, 50u);
}

TEST(Patterns, OneLocationSingleAggressor) {
  HammerPattern p(base_config(PatternKind::kOneLocation));
  EXPECT_EQ(p.aggressors(), (std::vector<std::uint32_t>{101}));
}

class ManySidedTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ManySidedTest, AggressorCountAndSandwich) {
  PatternConfig cfg = base_config(PatternKind::kManySided);
  cfg.n_aggressors = GetParam();
  HammerPattern p(cfg);
  EXPECT_EQ(p.aggressors().size(), GetParam());
  // Always contains the double-sided sandwich.
  const auto& a = p.aggressors();
  EXPECT_NE(std::find(a.begin(), a.end(), 99u), a.end());
  EXPECT_NE(std::find(a.begin(), a.end(), 101u), a.end());
  // All aggressors within the bank.
  for (std::uint32_t r : a) EXPECT_LT(r, cfg.rows_in_bank);
}

INSTANTIATE_TEST_SUITE_P(Counts, ManySidedTest,
                         ::testing::Values(2u, 4u, 8u, 16u, 24u));

TEST(Patterns, RandomDrawsFreshRows) {
  PatternConfig cfg = base_config(PatternKind::kRandom);
  HammerPattern p(cfg);
  EXPECT_TRUE(p.aggressors().empty());
  std::set<std::uint32_t> seen;
  std::vector<std::uint32_t> rows;
  for (int i = 0; i < 50; ++i) {
    rows.clear();
    p.iteration_rows(i, rows);
    EXPECT_EQ(rows.size(), 2u);
    for (std::uint32_t r : rows) {
      EXPECT_LT(r, cfg.rows_in_bank);
      seen.insert(r);
    }
  }
  EXPECT_GT(seen.size(), 20u);  // actually random, not repeating one pair
}

// The kRandom contract (see patterns.h): no fixed aggressor set, therefore
// no fixed victim set either — expected_victims() derives from aggressors()
// and both are empty. Verification sweeps must use draw_victims().
TEST(Patterns, RandomContractEmptyAggressorsAndVictims) {
  HammerPattern p(base_config(PatternKind::kRandom));
  EXPECT_TRUE(p.aggressors().empty());
  EXPECT_TRUE(p.expected_victims().empty());
}

TEST(Patterns, RandomDrawVictimsReplaysStreamWithoutConsumingIt) {
  PatternConfig cfg = base_config(PatternKind::kRandom);
  HammerPattern p(cfg);
  // draw_victims is a pure function of the config: calling it repeatedly,
  // before or after iterating, returns the same set.
  const auto before = p.draw_victims(10);
  std::vector<std::uint32_t> rows;
  p.iteration_rows(0, rows);
  p.iteration_rows(1, rows);
  EXPECT_EQ(p.draw_victims(10), before);
  // And it covers the live draw stream: the two iterations consumed the
  // first four draws, so draw_victims(4) is exactly the neighbours of
  // `rows` minus `rows` itself.
  const auto victims = p.draw_victims(4);
  for (std::uint32_t r : rows) {
    for (std::uint32_t d = 1; d <= 2; ++d) {
      const std::uint32_t n = r + d;
      if (n >= cfg.rows_in_bank) continue;
      const bool drawn_itself =
          std::find(rows.begin(), rows.end(), n) != rows.end();
      if (!drawn_itself) {
        EXPECT_TRUE(std::binary_search(victims.begin(), victims.end(), n))
            << "neighbour " << n << " of drawn row " << r << " missing";
      }
    }
  }
}

TEST(Patterns, DrawVictimsMatchesExpectedForFixedKinds) {
  HammerPattern p(base_config(PatternKind::kDoubleSided));
  EXPECT_EQ(p.draw_victims(1000), p.expected_victims());
}

TEST(Patterns, IterationRowsAppends) {
  HammerPattern p(base_config(PatternKind::kDoubleSided));
  std::vector<std::uint32_t> rows{7};
  p.iteration_rows(0, rows);
  EXPECT_EQ(rows, (std::vector<std::uint32_t>{7, 99, 101}));
}

TEST(Patterns, VictimMarginEnforced) {
  PatternConfig cfg = base_config(PatternKind::kDoubleSided);
  cfg.victim_row = 1;
  EXPECT_THROW(HammerPattern{cfg}, CheckError);
  cfg.victim_row = 510;
  EXPECT_THROW(HammerPattern{cfg}, CheckError);
}

TEST(Patterns, NamesAreStable) {
  EXPECT_STREQ(pattern_name(PatternKind::kDoubleSided), "double-sided");
  EXPECT_STREQ(pattern_name(PatternKind::kManySided), "many-sided");
}

TEST(Patterns, ExpectedVictimsExcludeAggressors) {
  PatternConfig cfg = base_config(PatternKind::kManySided);
  cfg.n_aggressors = 8;
  HammerPattern p(cfg);
  const auto victims = p.expected_victims();
  for (std::uint32_t v : victims) {
    const auto& a = p.aggressors();
    EXPECT_EQ(std::find(a.begin(), a.end(), v), a.end());
  }
  EXPECT_FALSE(victims.empty());
}

}  // namespace
}  // namespace densemem::attack
