// Tests for the event-tracing layer (sim/event_log.h): deterministic
// merge/dedup of per-job batches, the durable raw sidecar (torn tails,
// resume-append, duplicate batches from crash re-runs), capacity bounds,
// flip provenance from dram::Device, mitigation decision events from the
// ctrl:: trackers, and the miss-autopsy classification the benches print.
// Sim-prefixed so CI's ThreadSanitizer job picks these up.
#include "sim/event_log.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/system.h"
#include "dram/device.h"
#include "sim/campaign.h"

namespace densemem::sim {
namespace {

std::string tmp_path(const std::string& stem) {
  return ::testing::TempDir() + "densemem_" + stem + "_" +
         std::to_string(::getpid());
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

Event flip_event(std::uint32_t row, std::uint32_t aggr_up,
                 std::uint32_t aggr_down,
                 dram::FlipMechanism mech = dram::FlipMechanism::kDisturbance) {
  Event e;
  e.kind = EventKind::kFlip;
  e.row = row;
  e.mechanism = mech;
  e.aggr_up = aggr_up;
  e.aggr_down = aggr_down;
  return e;
}

Event decision_event(EventKind kind, std::uint32_t row,
                     std::uint32_t source_row = 0) {
  Event e;
  e.kind = kind;
  e.row = row;
  e.source_row = source_row;
  return e;
}

std::string jsonl_of(const EventLog& log) {
  std::ostringstream os;
  log.write_jsonl(os);
  return os.str();
}

// ---------------------------------------------------------------- EventLog

TEST(SimEvents, WriteJsonlOrdersByCampaignJobAndDedupsFirstWins) {
  EventLog log;
  log.commit("b", 0, {flip_event(7, 6, 8)});
  log.commit("a", 2, {decision_event(EventKind::kTrack, 11)});
  log.commit("a", 1, {decision_event(EventKind::kTrack, 3),
                      decision_event(EventKind::kEvict, 3)});
  // Duplicate (campaign, job): a crash between event commit and journal
  // record re-runs the job — the second batch must lose.
  log.commit("a", 1, {decision_event(EventKind::kTrack, 999)});
  EXPECT_EQ(log.recorded(), 5u);

  const std::string out = jsonl_of(log);
  std::vector<std::string> lines;
  std::istringstream is(out);
  for (std::string l; std::getline(is, l);) lines.push_back(l);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[0].find("\"campaign\":\"a\",\"job\":1,\"seq\":0"),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"row\":3"), std::string::npos);  // not 999
  EXPECT_NE(lines[1].find("\"seq\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\":\"evict\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"campaign\":\"a\",\"job\":2"), std::string::npos);
  EXPECT_NE(lines[3].find("\"campaign\":\"b\",\"job\":0"), std::string::npos);
  EXPECT_NE(lines[3].find("\"kind\":\"flip\""), std::string::npos);
}

TEST(SimEvents, CommitOrderDoesNotChangeTheArtifact) {
  EventLog fwd, rev;
  const std::vector<std::pair<std::string, std::size_t>> keys = {
      {"x", 0}, {"x", 1}, {"y", 0}};
  for (const auto& [c, j] : keys)
    fwd.commit(c, j, {flip_event(static_cast<std::uint32_t>(j), 1, 3)});
  for (auto it = keys.rbegin(); it != keys.rend(); ++it)
    rev.commit(it->first, it->second,
               {flip_event(static_cast<std::uint32_t>(it->second), 1, 3)});
  EXPECT_EQ(jsonl_of(fwd), jsonl_of(rev));
}

TEST(SimEvents, CapacityDropsWholeBatchesAndCounts) {
  EventLog log(3);
  log.commit("c", 0, {flip_event(1, 0, 2), flip_event(2, 1, 3)});
  log.commit("c", 1, {flip_event(4, 3, 5), flip_event(5, 4, 6)});  // over cap
  EXPECT_EQ(log.recorded(), 2u);
  EXPECT_EQ(log.dropped(), 2u);
  const std::string out = jsonl_of(log);
  EXPECT_NE(out.find("\"job\":0"), std::string::npos);
  EXPECT_EQ(out.find("\"job\":1"), std::string::npos);
}

// ------------------------------------------------------------- raw sidecar

TEST(SimEvents, RawSidecarMergeReproducesInMemoryArtifact) {
  const std::string raw = tmp_path("raw.events");
  const std::string out = tmp_path("raw.jsonl");
  EventLog log;
  ASSERT_TRUE(log.open_raw(raw, /*append=*/false));
  log.commit("m", 1, {flip_event(9, 8, 10), decision_event(
                                                EventKind::kNeighborRefresh,
                                                9, 8)});
  log.commit("m", 0, {decision_event(EventKind::kSample, 4)});
  const EventLog::MergeResult res = EventLog::merge_raw_files({raw}, out);
  EXPECT_EQ(res.files, 1u);
  EXPECT_EQ(res.events, 3u);
  EXPECT_EQ(slurp(out), jsonl_of(log));
  std::remove(raw.c_str());
  std::remove(out.c_str());
}

TEST(SimEvents, MergeDropsTornTailAndDedupsAcrossFiles) {
  const std::string raw1 = tmp_path("torn1.events");
  const std::string raw2 = tmp_path("torn2.events");
  const std::string out = tmp_path("torn.jsonl");
  {
    EventLog log;
    ASSERT_TRUE(log.open_raw(raw1, false));
    log.commit("t", 0, {flip_event(5, 4, 6)});
  }
  {
    // A mid-write kill: batch lines present but no commit marker, plus a
    // torn final line.
    std::ofstream f(raw1, std::ios::binary | std::ios::app);
    f << "E t 1 0 {\"campaign\":\"t\",\"job\":1,...}\n";
    f << "E t 1 1 {\"campai";
  }
  {
    // Second shard re-ran job 0 after a crash (duplicate batch, different
    // payload would be a bug elsewhere — dedup must keep the first file's).
    EventLog log;
    ASSERT_TRUE(log.open_raw(raw2, false));
    log.commit("t", 0, {flip_event(500, 499, 501)});
    log.commit("t", 2, {decision_event(EventKind::kTrack, 12)});
  }
  const EventLog::MergeResult res =
      EventLog::merge_raw_files({raw1, raw2, "/nonexistent/x"}, out);
  EXPECT_EQ(res.files, 2u);  // missing file skipped
  EXPECT_EQ(res.events, 2u);  // torn batch dropped, duplicate deduped
  const std::string merged = slurp(out);
  EXPECT_NE(merged.find("\"row\":5"), std::string::npos);
  EXPECT_EQ(merged.find("\"row\":500"), std::string::npos);
  EXPECT_EQ(merged.find("\"job\":1"), std::string::npos);
  EXPECT_NE(merged.find("\"job\":2"), std::string::npos);
  std::remove(raw1.c_str());
  std::remove(raw2.c_str());
  std::remove(out.c_str());
}

TEST(SimEvents, AppendReopenTruncatesTornTailThenContinues) {
  const std::string raw = tmp_path("resume.events");
  const std::string out = tmp_path("resume.jsonl");
  {
    EventLog log;
    ASSERT_TRUE(log.open_raw(raw, false));
    log.commit("r", 0, {flip_event(3, 2, 4)});
  }
  {
    std::ofstream f(raw, std::ios::binary | std::ios::app);
    f << "E r 1 0 {\"half";  // torn mid-line
  }
  {
    EventLog log;
    ASSERT_TRUE(log.open_raw(raw, /*append=*/true));
    log.commit("r", 1, {decision_event(EventKind::kEvict, 8)});
  }
  const EventLog::MergeResult res = EventLog::merge_raw_files({raw}, out);
  EXPECT_EQ(res.events, 2u);
  const std::string merged = slurp(out);
  EXPECT_NE(merged.find("\"job\":0"), std::string::npos);
  EXPECT_NE(merged.find("\"kind\":\"evict\""), std::string::npos);
  EXPECT_EQ(merged.find("half"), std::string::npos);
  std::remove(raw.c_str());
  std::remove(out.c_str());
}

// ---------------------------------------------------------- classify_misses

TEST(SimEvents, ClassifyNeverSeenWhenNoTrackerActivity) {
  const MissAutopsy a = classify_misses({flip_event(10, 9, 11)});
  EXPECT_EQ(a.never_seen, 1u);
  EXPECT_EQ(a.total(), 1u);
}

TEST(SimEvents, ClassifyEvictedWhenAggressorWasTrackedOrSampled) {
  const MissAutopsy tracked = classify_misses(
      {decision_event(EventKind::kTrack, 9), flip_event(10, 9, 11)});
  EXPECT_EQ(tracked.evicted_before_ref, 1u);
  const MissAutopsy sampled = classify_misses(
      {decision_event(EventKind::kSample, 11), flip_event(10, 9, 11)});
  EXPECT_EQ(sampled.evicted_before_ref, 1u);
}

TEST(SimEvents, ClassifyRefreshedTooLateTakesPrecedence) {
  const MissAutopsy a = classify_misses(
      {decision_event(EventKind::kTrack, 9),
       decision_event(EventKind::kNeighborRefresh, 10, 9),
       flip_event(10, 9, 11)});
  EXPECT_EQ(a.refreshed_too_late, 1u);
  EXPECT_EQ(a.evicted_before_ref, 0u);
}

TEST(SimEvents, ClassifyIgnoresRetentionFlipsAndPartitionsTheRest) {
  std::vector<Event> ev = {
      flip_event(2, 1, 3),                                        // never seen
      flip_event(50, 49, 51, dram::FlipMechanism::kRetention),    // ignored
      flip_event(60, 59, 61, dram::FlipMechanism::kVrtRetention), // ignored
      decision_event(EventKind::kTrack, 21),
      flip_event(20, 21, dram::kNoAggressor),  // evicted (aggr_up tracked)
      decision_event(EventKind::kNeighborRefresh, 30, 29),
      flip_event(30, 29, 31),                  // refreshed too late
  };
  const MissAutopsy a = classify_misses(ev);
  EXPECT_EQ(a.never_seen, 1u);
  EXPECT_EQ(a.evicted_before_ref, 1u);
  EXPECT_EQ(a.refreshed_too_late, 1u);
  std::uint64_t disturbance = 0;
  for (const Event& e : ev)
    if (e.kind == EventKind::kFlip &&
        e.mechanism == dram::FlipMechanism::kDisturbance)
      ++disturbance;
  EXPECT_EQ(a.total(), disturbance);
}

// ------------------------------------------------------ device flip events

dram::DeviceConfig observed_device(std::uint64_t seed = 7) {
  dram::DeviceConfig cfg;
  cfg.geometry = dram::Geometry::tiny();
  cfg.reliability = dram::ReliabilityParams::vulnerable();
  cfg.reliability.weak_cell_density = 2e-3;
  cfg.reliability.leaky_cell_density = 0.0;
  cfg.reliability.dpd_sensitivity_mean = 0.0;
  cfg.reliability.anticell_fraction = 0.0;
  // No distance-2 coupling: hammering victim±1 must stress only the victim,
  // so every committed flip's provenance is exactly checkable below.
  cfg.reliability.distance2_weight = 0.0;
  cfg.seed = seed;
  cfg.pattern = dram::BackgroundPattern::kOnes;
  return cfg;
}

TEST(SimEvents, DeviceFlipEventsCarryFullProvenance) {
  EventScope scope(nullptr, "dev", 0);
  dram::DeviceConfig cfg = observed_device();
  cfg.observer = scope.flip_observer();
  dram::Device dev(cfg);
  // First interior weak row: hammer one neighbour far past any threshold.
  std::uint32_t victim = 0;
  for (std::uint32_t r : dev.fault_map().weak_rows(0))
    if (r >= 2 && r + 2 < dev.geometry().rows) {
      victim = r;
      break;
    }
  ASSERT_NE(victim, 0u);
  dev.hammer(0, victim - 1, 2'000'000, Time::ms(1));
  dev.hammer(0, victim + 1, 2'000'000, Time::ms(2));
  dev.activate(0, victim, Time::ms(50));  // commit pending disturbance
  dev.precharge(0, Time::ms(50));
  ASSERT_GE(dev.stats().disturb_flips, 1u);

  std::uint64_t disturbance_events = 0;
  for (const Event& e : scope.events()) {
    ASSERT_EQ(e.kind, EventKind::kFlip);
    if (e.mechanism != dram::FlipMechanism::kDisturbance) continue;
    ++disturbance_events;
    EXPECT_EQ(e.bank, 0u);
    EXPECT_EQ(e.row, victim);
    EXPECT_TRUE(e.aggr_up == victim - 1 || e.aggr_down == victim - 1 ||
                e.aggr_up == victim + 1 || e.aggr_down == victim + 1);
    EXPECT_GT(e.stress, 0.0);
    EXPECT_GT(e.dpd, 0.0);
    EXPECT_DOUBLE_EQ(e.t_ms, 50.0);
    EXPECT_LT(e.bit, dev.geometry().row_words() * 64);
  }
  // Every ground-truth flip surfaced through the observer — the invariant
  // the benches' reconciliation shape checks rest on.
  EXPECT_EQ(disturbance_events, dev.stats().disturb_flips);
}

// --------------------------------------------------- tracker decision events

TEST(SimEvents, TrrEmitsTrackEvictAndNeighborRefreshDecisions) {
  EventScope scope(nullptr, "trr", 0);
  dram::DeviceConfig dc = observed_device(61);
  ctrl::CtrlConfig cc;
  core::MitigationSpec spec;
  spec.kind = core::MitigationKind::kTrr;
  spec.trr.tracker_entries = 2;  // tiny CAM: rotation forces evictions
  auto sys = core::make_system(dc, cc, spec);
  sys.mc().mitigation().set_observer(scope.decision_observer());
  const std::uint32_t base = 10;
  for (int round = 0; round < 3000; ++round)
    for (std::uint32_t k = 0; k < 6; ++k)
      sys.mc().activate_precharge(0, base + 2 * k);
  std::uint64_t tracks = 0, evicts = 0, refreshes = 0;
  for (const Event& e : scope.events()) {
    if (e.kind == EventKind::kTrack) ++tracks;
    if (e.kind == EventKind::kEvict) ++evicts;
    if (e.kind == EventKind::kNeighborRefresh) {
      ++refreshes;
      // A neighbour refresh names both the refreshed row and the tracked
      // aggressor it protects against.
      EXPECT_LE(e.row >= e.source_row ? e.row - e.source_row
                                      : e.source_row - e.row,
                2u);
    }
  }
  EXPECT_GT(tracks, 0u);
  EXPECT_GT(evicts, 0u);  // 6 aggressors through a 2-entry Misra–Gries table
  EXPECT_GT(refreshes, 0u);
}

// ------------------------------------------------------------ EventScope

TEST(SimEvents, ScopeWithoutLogRecordsLocallyAndCommitIsNoop) {
  EventScope scope(nullptr, "solo", 3);
  dram::FlipRecord rec;
  rec.fbank = 1;
  rec.logical_row = 42;
  rec.mechanism = dram::FlipMechanism::kDisturbance;
  scope.on_flip(rec);
  ctrl::DecisionRecord dec;
  dec.kind = ctrl::DecisionKind::kSample;
  dec.fbank = 1;
  dec.row = 42;
  scope.on_decision(dec);
  ASSERT_EQ(scope.events().size(), 2u);
  EXPECT_EQ(scope.events()[0].kind, EventKind::kFlip);
  EXPECT_EQ(scope.events()[1].kind, EventKind::kSample);
  scope.commit();  // must not crash
}

TEST(SimEvents, ScopeCommitsOnceIntoTheLog) {
  EventLog log;
  EventScope scope(&log, "once", 0);
  dram::FlipRecord rec;
  rec.logical_row = 5;
  scope.on_flip(rec);
  scope.commit();
  scope.commit();  // idempotent
  EXPECT_EQ(log.recorded(), 1u);
}

// ------------------------------------------------- width determinism (E2E)

std::string run_event_campaign(unsigned threads) {
  EventLog log;
  CampaignConfig cfg;
  cfg.threads = threads;
  cfg.seed = 77;
  cfg.progress = false;
  Campaign c("width", cfg);
  c.map<int>(24, [&](const JobContext& ctx) {
    EventScope scope(&log, "width", ctx.index);
    // Deterministic per-job payload: a small synthetic decision/flip mix
    // derived from the job's own stream.
    Rng rng = ctx.make_rng();
    const std::uint32_t row = static_cast<std::uint32_t>(rng.next_u64() % 64);
    ctrl::DecisionRecord dec;
    dec.kind = ctrl::DecisionKind::kTrack;
    dec.row = row;
    scope.on_decision(dec);
    dram::FlipRecord rec;
    rec.logical_row = row + 1;
    rec.aggressor_up = row;
    scope.on_flip(rec);
    scope.commit();
    return 0;
  });
  return jsonl_of(log);
}

TEST(SimEvents, EventStreamIsByteIdenticalAcross1And2And8Threads) {
  const std::string one = run_event_campaign(1);
  EXPECT_EQ(one, run_event_campaign(2));
  EXPECT_EQ(one, run_event_campaign(8));
  EXPECT_FALSE(one.empty());
}

}  // namespace
}  // namespace densemem::sim
