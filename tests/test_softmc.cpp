#include "softmc/trace.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace densemem::softmc {
namespace {

dram::DeviceConfig trace_device(std::uint64_t seed = 7) {
  dram::DeviceConfig cfg;
  cfg.geometry = dram::Geometry::tiny();
  cfg.reliability = dram::ReliabilityParams::vulnerable();
  cfg.reliability.weak_cell_density = 1e-3;
  cfg.reliability.hc50 = 20e3;
  cfg.reliability.hc_sigma = 0.3;
  cfg.reliability.dpd_sensitivity_mean = 0.0;
  cfg.reliability.anticell_fraction = 0.0;
  cfg.seed = seed;
  return cfg;
}

TEST(TraceParser, ParsesEveryCommand) {
  const auto r = parse_trace(R"(
# full command coverage
FILL ones
ACT 0 10
WR 0 3 0xDEADBEEF
RD 0 3
PRE 0
REF 4
WAIT 10ms
HAMMER 0 11 5000
CHECK 0 10 ones
LOOP 3
  ACT 1 2
  PRE 1
ENDLOOP
)");
  ASSERT_TRUE(r.ok) << r.error.message;
  EXPECT_EQ(r.program.size(), 13u);
  EXPECT_EQ(r.program[0].op, Op::kFill);
  EXPECT_EQ(r.program[2].value, 0xDEADBEEFull);
  EXPECT_EQ(r.program[6].wait, Time::ms(10));
  EXPECT_EQ(r.program[9].value, 3u);  // LOOP count
}

struct BadCase {
  const char* text;
  int line;
};
class TraceParseErrors : public ::testing::TestWithParam<BadCase> {};

TEST_P(TraceParseErrors, ReportsLineAndFails) {
  const auto r = parse_trace(GetParam().text);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error.line, GetParam().line);
  EXPECT_FALSE(r.error.message.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TraceParseErrors,
    ::testing::Values(BadCase{"BOGUS 1 2", 1},
                      BadCase{"ACT 0", 1},
                      BadCase{"\nACT x y", 2},
                      BadCase{"WR 0 1 nothex", 1},
                      BadCase{"WAIT 5parsecs", 1},
                      BadCase{"FILL plaid", 1},
                      BadCase{"LOOP 0", 1},
                      BadCase{"ENDLOOP", 1},
                      BadCase{"LOOP 2\nACT 0 1\nPRE 0", 1},
                      BadCase{"REF 0", 1}));

TEST(TraceParser, CommentsAndBlankLinesIgnored) {
  const auto r = parse_trace("# nothing\n\n   \nACT 0 1 # trailing\n");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.program.size(), 1u);
}

TEST(TraceRunner, ReadWriteRoundTrip) {
  dram::Device dev(trace_device());
  const auto stats = run_trace_text(R"(
ACT 0 7
WR 0 2 0x123456789ABCDEF0
RD 0 2
PRE 0
)", dev);
  ASSERT_EQ(stats.read_log.size(), 1u);
  EXPECT_EQ(stats.read_log[0], 0x123456789ABCDEF0ull);
  EXPECT_EQ(stats.commands_executed, 4u);
  EXPECT_GT(stats.end_time, Time{});
}

TEST(TraceRunner, LoopRepeats) {
  dram::Device dev(trace_device());
  const auto stats = run_trace_text(R"(
LOOP 10
ACT 0 1
RD 0 0
PRE 0
ENDLOOP
)", dev);
  EXPECT_EQ(stats.read_log.size(), 10u);
  EXPECT_EQ(dev.stats().activates, 10u);
}

TEST(TraceRunner, NestedLoops) {
  dram::Device dev(trace_device());
  const auto stats = run_trace_text(R"(
LOOP 4
  LOOP 3
    ACT 0 1
    PRE 0
  ENDLOOP
ENDLOOP
)", dev);
  EXPECT_EQ(dev.stats().activates, 12u);
  (void)stats;
}

TEST(TraceRunner, RowHammerTraceReproducesFlips) {
  // The canonical SoftMC experiment, as a trace: fill, double-sided hammer
  // past the threshold, check the victim.
  dram::Device probe(trace_device());
  std::uint32_t victim = 0;
  for (std::uint32_t r : probe.fault_map().weak_rows(0))
    if (r >= 2 && r + 2 < probe.geometry().rows) {
      victim = r;
      break;
    }
  ASSERT_NE(victim, 0u);
  dram::Device dev(trace_device());
  const std::string trace =
      "FILL ones\n"
      "HAMMER 0 " + std::to_string(victim - 1) + " 100000\n" +
      "HAMMER 0 " + std::to_string(victim + 1) + " 100000\n" +
      "CHECK 0 " + std::to_string(victim) + " ones\n";
  const auto stats = run_trace_text(trace, dev);
  EXPECT_EQ(stats.checks, 1u);
  EXPECT_GT(stats.check_errors, 0u);
  EXPECT_EQ(stats.check_errors, dev.stats().disturb_flips);
}

TEST(TraceRunner, RefreshTracePreventsFlips) {
  dram::Device probe(trace_device(9));
  std::uint32_t victim = 0;
  for (std::uint32_t r : probe.fault_map().weak_rows(0))
    if (r >= 2 && r + 2 < probe.geometry().rows) {
      victim = r;
      break;
    }
  ASSERT_NE(victim, 0u);
  dram::Device dev(trace_device(9));
  // Split the hammer into sub-threshold bursts separated by full refresh
  // sweeps (REF 512 covers the whole tiny bank).
  const std::string v1 = std::to_string(victim - 1);
  const std::string v2 = std::to_string(victim + 1);
  const auto stats = run_trace_text(
      "FILL ones\n"
      "LOOP 10\n"
      "HAMMER 0 " + v1 + " 4000\n" +
      "HAMMER 0 " + v2 + " 4000\n" +
      "REF 512\n"
      "ENDLOOP\n"
      "CHECK 0 " + std::to_string(victim) + " ones\n",
      dev);
  EXPECT_EQ(stats.check_errors, 0u);
}

TEST(TraceRunner, ProtocolViolationSurfacesAsCheckError) {
  dram::Device dev(trace_device());
  EXPECT_THROW(run_trace_text("RD 0 0\n", dev), CheckError);   // no open row
  EXPECT_THROW(run_trace_text("ACT 0 1\nACT 0 2\n", dev), CheckError);
}

TEST(TraceRunner, ParseErrorSurfacesWithLine) {
  dram::Device dev(trace_device());
  try {
    run_trace_text("ACT 0 1\nWOBBLE\n", dev);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TraceRunner, TimingAdvancesClock) {
  dram::Device dev(trace_device());
  const auto t = dram::Timing::ddr3_1600();
  const auto stats = run_trace_text("ACT 0 1\nPRE 0\nWAIT 1ms\n", dev, t);
  EXPECT_EQ(stats.end_time, t.tRCD + t.tRP + Time::ms(1));
}

}  // namespace
}  // namespace densemem::softmc
