// Energy-model accounting tests: the §II-C overhead arguments rest on
// these numbers being internally consistent.
#include <gtest/gtest.h>

#include "ctrl/controller.h"
#include "ctrl/para.h"

namespace densemem::ctrl {
namespace {

dram::DeviceConfig quiet() {
  dram::DeviceConfig cfg;
  cfg.geometry = dram::Geometry::tiny();
  cfg.reliability = dram::ReliabilityParams::robust();
  cfg.reliability.leaky_cell_density = 0.0;
  cfg.seed = 2;
  return cfg;
}

TEST(Energy, ActivationEnergyCountsActPairs) {
  dram::Device dev(quiet());
  CtrlConfig cc;
  MemoryController mc(dev, cc);
  const int n = 1000;
  for (int i = 0; i < n; ++i) mc.activate_precharge(0, 10 + (i & 1));
  const double expected = cc.energy.act_pre.as_nj() * n;
  EXPECT_NEAR(mc.energy().activate_energy.as_nj(), expected, expected * 0.01);
}

TEST(Energy, ReadWriteEnergySplit) {
  dram::Device dev(quiet());
  CtrlConfig cc;
  MemoryController mc(dev, cc);
  std::array<std::uint64_t, 8> d{};
  for (int i = 0; i < 100; ++i) mc.read_block({0, 0, 0, 1, 0});
  for (int i = 0; i < 50; ++i) mc.write_block({0, 0, 0, 1, 1}, d);
  const double expected = cc.energy.read_block.as_nj() * 100 +
                          cc.energy.write_block.as_nj() * 50;
  EXPECT_NEAR(mc.energy().rw_energy.as_nj(), expected, 1e-9);
}

TEST(Energy, BackgroundScalesWithTime) {
  dram::Device dev(quiet());
  CtrlConfig cc;
  MemoryController mc(dev, cc);
  mc.advance_to(Time::ms(10));
  const double e10 = mc.energy().background_energy.as_nj();
  mc.advance_to(Time::ms(20));
  const double e20 = mc.energy().background_energy.as_nj();
  EXPECT_NEAR(e20 / e10, 2.0, 0.01);
  // mW x ms = uJ: 120 mW for 10 ms = 1200 uJ = 1.2e6 nJ.
  EXPECT_NEAR(e10, 120.0 * 10.0 * 1000.0, e10 * 0.01);
}

TEST(Energy, RefreshEnergyCountsRows) {
  dram::Device dev(quiet());
  CtrlConfig cc;
  MemoryController mc(dev, cc);
  mc.advance_to(Time::ms(64));
  // One full window refreshes every row of every bank once.
  const double expected =
      cc.energy.refresh_row.as_nj() *
      static_cast<double>(dev.geometry().rows_total());
  EXPECT_NEAR(mc.energy().refresh_energy.as_nj(), expected, expected * 0.02);
}

TEST(Energy, TargetedRefreshAccountedSeparately) {
  dram::Device dev(quiet());
  CtrlConfig cc;
  auto adjacency = make_adjacency(dev, true);
  auto para = std::make_unique<Para>(ParaConfig{1.0, 5}, adjacency);
  MemoryController mc(dev, cc, std::move(para));
  // p = 1: every close refreshes both neighbours.
  for (int i = 0; i < 100; ++i) mc.activate_precharge(0, 100);
  const auto e = mc.energy();
  EXPECT_NEAR(e.targeted_refresh_energy.as_nj(),
              cc.energy.act_pre.as_nj() * 200, cc.energy.act_pre.as_nj() * 8);
  EXPECT_GT(mc.stats().mitigation_busy, Time{});
}

TEST(Energy, TotalIsSumOfParts) {
  dram::Device dev(quiet());
  CtrlConfig cc;
  MemoryController mc(dev, cc);
  for (int i = 0; i < 500; ++i)
    mc.read_block({0, 0, 0, static_cast<std::uint32_t>(i % 100), 0});
  mc.advance_to(Time::ms(5));
  const auto e = mc.energy();
  EXPECT_NEAR(e.total().as_nj(),
              e.activate_energy.as_nj() + e.rw_energy.as_nj() +
                  e.refresh_energy.as_nj() +
                  e.targeted_refresh_energy.as_nj() +
                  e.background_energy.as_nj(),
              1e-6);
}

TEST(Energy, UnitsRoundTrip) {
  const Energy e = Energy::nj(2.5);
  EXPECT_DOUBLE_EQ(e.as_pj(), 2500.0);
  EXPECT_DOUBLE_EQ(e.as_mj(), 2.5e-6);
}

}  // namespace
}  // namespace densemem::ctrl
