// Tests for the bench harness argument parser (bench/bench_util.cpp is
// compiled into the test binary; see tests/CMakeLists.txt). Sim-prefixed so
// the TSan CI job picks these up alongside the engine tests.
#include "bench_util.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

namespace densemem::bench {
namespace {

BenchArgs parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "bench_test");
  return parse_args(static_cast<int>(argv.size()),
                    const_cast<char**>(argv.data()));
}

TEST(SimBenchArgs, DefaultsAreSerialCompatible) {
  const BenchArgs args = parse({});
  EXPECT_TRUE(args.csv_path.empty());
  EXPECT_TRUE(args.json_path.empty());
  EXPECT_FALSE(args.quick);
  EXPECT_EQ(args.threads, 0u);  // 0 = hardware concurrency
  EXPECT_EQ(args.seed, 0u);     // 0 = bench default seed
}

TEST(SimBenchArgs, ParsesThreadsAndSeed) {
  const BenchArgs args = parse({"--threads", "8", "--seed", "12345"});
  EXPECT_EQ(args.threads, 8u);
  EXPECT_EQ(args.seed, 12345u);
}

TEST(SimBenchArgs, ParsesMirrorsAndQuickTogether) {
  const BenchArgs args = parse({"--csv", "/tmp/out.csv", "--json",
                                "/tmp/out.json", "--quick", "--threads", "2"});
  EXPECT_EQ(args.csv_path, "/tmp/out.csv");
  EXPECT_EQ(args.json_path, "/tmp/out.json");
  EXPECT_TRUE(args.quick);
  EXPECT_EQ(args.threads, 2u);
}

TEST(SimBenchArgs, LargeSeedFitsIn64Bits) {
  const BenchArgs args = parse({"--seed", "18446744073709551615"});
  EXPECT_EQ(args.seed, ~std::uint64_t{0});
}

TEST(SimBenchArgs, RobustnessFlagsDefaultToHistoricalBehaviour) {
  const BenchArgs args = parse({});
  EXPECT_EQ(args.max_retries, 0u);
  EXPECT_EQ(args.job_timeout_s, 0.0);
  EXPECT_FALSE(args.degrade);
  EXPECT_TRUE(args.journal_path.empty());
  EXPECT_FALSE(args.resume);
  EXPECT_EQ(args.fault_seed, 0u);
  EXPECT_EQ(args.abort_after, 0u);
  EXPECT_TRUE(args.metrics_path.empty());
  EXPECT_TRUE(args.trace_path.empty());
}

TEST(SimBenchArgs, ParsesTelemetryFlagsInBothForms) {
  const BenchArgs spaced = parse({"--metrics", "/tmp/m.json", "--trace",
                                  "/tmp/t.jsonl", "--events", "/tmp/e.jsonl"});
  EXPECT_EQ(spaced.metrics_path, "/tmp/m.json");
  EXPECT_EQ(spaced.trace_path, "/tmp/t.jsonl");
  EXPECT_EQ(spaced.events_path, "/tmp/e.jsonl");
  const BenchArgs eq = parse({"--metrics=/tmp/m2.json", "--trace=/tmp/t2.jsonl",
                              "--events=/tmp/e2.jsonl"});
  EXPECT_EQ(eq.metrics_path, "/tmp/m2.json");
  EXPECT_EQ(eq.trace_path, "/tmp/t2.jsonl");
  EXPECT_EQ(eq.events_path, "/tmp/e2.jsonl");
}

TEST(SimBenchArgs, EventSidecarFlagsDefaultOffAndParse) {
  const BenchArgs off = parse({});
  EXPECT_TRUE(off.events_path.empty());
  EXPECT_TRUE(off.events_raw_path.empty());
  EXPECT_TRUE(off.metrics_raw_path.empty());
  // Internal worker-side flags the fleet supervisor appends.
  const BenchArgs on = parse({"--events-raw", "/tmp/s0.events",
                              "--metrics-raw", "/tmp/s0.metrics.raw"});
  EXPECT_EQ(on.events_raw_path, "/tmp/s0.events");
  EXPECT_EQ(on.metrics_raw_path, "/tmp/s0.metrics.raw");
}

TEST(SimBenchArgs, HarnessOwnsAnEventLogExactlyWhenEventsRequested) {
  BenchArgs plain;
  const CampaignHarness bare(plain, 1);
  EXPECT_EQ(bare.events(), nullptr);

  BenchArgs traced;
  traced.events_path = "/tmp/densemem_unused_events.jsonl";
  {
    const CampaignHarness harness(traced, 1);
    ASSERT_NE(harness.events(), nullptr);
    // No journal, no fleet: in-memory only, no raw sidecar.
    EXPECT_TRUE(harness.events()->raw_path().empty());
  }
  std::remove(traced.events_path.c_str());
}

TEST(SimBenchArgs, HarnessWiresTelemetrySinksIntoCampaignConfig) {
  BenchArgs args;
  args.trace_path = "/tmp/densemem_unused_trace.jsonl";
  const CampaignHarness harness(args, /*default_seed=*/1);
  const sim::CampaignConfig cc = harness.config();
  EXPECT_EQ(cc.metrics, &harness.metrics());
  EXPECT_EQ(cc.tracer, &harness.tracer());
  std::remove(args.trace_path.c_str());

  // Without --trace the tracer stays detached; the registry is always on
  // (the manifest needs it).
  BenchArgs plain;
  const CampaignHarness bare(plain, 1);
  EXPECT_EQ(bare.config().tracer, nullptr);
  EXPECT_NE(bare.config().metrics, nullptr);
}

TEST(SimBenchArgs, ManifestJsonCarriesRunParameters) {
  BenchArgs args;
  args.seed = 42;
  args.threads = 3;
  args.quick = true;
  const CampaignHarness harness(args, /*default_seed=*/1);
  const std::string m = harness.manifest_json();
  EXPECT_EQ(m.front(), '{');
  EXPECT_EQ(m.back(), '}');
  EXPECT_NE(m.find("\"git\":\""), std::string::npos) << m;
  EXPECT_NE(m.find("\"seed\":42"), std::string::npos) << m;
  EXPECT_NE(m.find("\"threads\":3"), std::string::npos) << m;
  EXPECT_NE(m.find("\"hardware_concurrency\":"), std::string::npos) << m;
  EXPECT_NE(m.find("\"quick\":true"), std::string::npos) << m;
  EXPECT_NE(m.find("\"phases\":["), std::string::npos) << m;
  EXPECT_NE(m.find("\"totals\":{"), std::string::npos) << m;
  // Peak RSS is always reported; any live process has touched some memory.
  const std::string key = "\"max_rss_kib\":";
  const std::size_t rss = m.find(key);
  ASSERT_NE(rss, std::string::npos) << m;
  EXPECT_NE(m[rss + key.size()], '0') << m;
}

TEST(SimBenchArgs, ParsesRetryTimeoutAndFaultFlags) {
  const BenchArgs args = parse({"--max-retries", "3", "--job-timeout", "2.5",
                                "--inject-faults", "424242", "--abort-after",
                                "17"});
  EXPECT_EQ(args.max_retries, 3u);
  EXPECT_DOUBLE_EQ(args.job_timeout_s, 2.5);
  EXPECT_EQ(args.fault_seed, 424242u);
  EXPECT_EQ(args.abort_after, 17u);
}

TEST(SimBenchArgs, ParsesFuzzerFlags) {
  const BenchArgs args = parse({"--probes", "500", "--trr-entries", "16",
                                "--sampler-rate", "0.5"});
  EXPECT_EQ(args.probes, 500u);
  EXPECT_EQ(args.trr_entries, 16u);
  EXPECT_DOUBLE_EQ(args.sampler_rate, 0.5);
  // The boundary rate 1.0 (sample every ACT) is legal.
  EXPECT_DOUBLE_EQ(parse({"--sampler-rate", "1.0"}).sampler_rate, 1.0);
}

TEST(SimBenchArgs, FuzzerFlagsDefaultToBenchChoices) {
  // 0 / 0.0 mean "bench picks": probe count from --quick, tracker geometry
  // from the bench's base setup.
  const BenchArgs args = parse({});
  EXPECT_EQ(args.probes, 0u);
  EXPECT_EQ(args.trr_entries, 0u);
  EXPECT_DOUBLE_EQ(args.sampler_rate, 0.0);
}

TEST(SimBenchArgs, SamplerRateMustBeAProbability) {
  for (const char* bad : {"0", "-0.5", "1.5", "nan"}) {
    std::vector<const char*> argv = {"bench_test", "--sampler-rate", bad};
    BenchArgs args;
    std::string error;
    EXPECT_FALSE(try_parse_args(static_cast<int>(argv.size()),
                                const_cast<char**>(argv.data()), args, error))
        << bad;
    EXPECT_NE(error.find("--sampler-rate"), std::string::npos) << error;
  }
}

TEST(SimBenchArgs, RejectsUnknownFlags) {
  // A typo like `--thread` must fail the parse, not silently run the bench
  // with default settings (parse_args turns this into exit 64 + usage).
  std::vector<const char*> argv = {"bench_test", "--thread", "2"};
  BenchArgs args;
  std::string error;
  EXPECT_FALSE(try_parse_args(static_cast<int>(argv.size()),
                              const_cast<char**>(argv.data()), args, error));
  EXPECT_NE(error.find("--thread"), std::string::npos) << error;
  EXPECT_NE(error.find("unknown flag"), std::string::npos) << error;
}

TEST(SimBenchArgs, RejectsFlagsMissingTheirValue) {
  for (const char* flag :
       {"--csv", "--json", "--threads", "--seed", "--max-retries",
        "--job-timeout", "--on-fail", "--journal", "--resume",
        "--inject-faults", "--abort-after", "--metrics", "--trace",
        "--events", "--events-raw", "--metrics-raw",
        "--probes", "--trr-entries", "--sampler-rate"}) {
    std::vector<const char*> argv = {"bench_test", flag};
    BenchArgs args;
    std::string error;
    EXPECT_FALSE(try_parse_args(static_cast<int>(argv.size()),
                                const_cast<char**>(argv.data()), args, error))
        << flag;
    EXPECT_NE(error.find(flag), std::string::npos) << error;
    EXPECT_NE(error.find("expects a value"), std::string::npos) << error;
  }
}

TEST(SimBenchArgs, RejectsUnknownOnFailMode) {
  std::vector<const char*> argv = {"bench_test", "--on-fail=retry"};
  BenchArgs args;
  std::string error;
  EXPECT_FALSE(try_parse_args(static_cast<int>(argv.size()),
                              const_cast<char**>(argv.data()), args, error));
  EXPECT_NE(error.find("retry"), std::string::npos) << error;
}

TEST(SimBenchArgs, TryParseAcceptsEveryDocumentedFlag) {
  std::vector<const char*> argv = {
      "bench_test",      "--csv",          "/tmp/c", "--json",
      "/tmp/j",          "--threads",      "4",      "--seed",
      "7",               "--quick",        "--max-retries",
      "1",               "--job-timeout",  "0.5",    "--on-fail=degrade",
      "--journal",       "/tmp/jr",        "--inject-faults",
      "3",               "--abort-after",  "2",      "--metrics=/tmp/m",
      "--trace=/tmp/t"};
  BenchArgs args;
  std::string error;
  EXPECT_TRUE(try_parse_args(static_cast<int>(argv.size()),
                             const_cast<char**>(argv.data()), args, error))
      << error;
  EXPECT_EQ(args.threads, 4u);
  EXPECT_TRUE(args.degrade);
  EXPECT_EQ(args.metrics_path, "/tmp/m");
}

TEST(SimBenchArgs, GridCodecRoundTripsBothChannelsBitExactly) {
  GridResult r;
  r.u64s = {0, 1, ~std::uint64_t{0}, 42};
  r.f64s = {0.0, -1.5, 3.14159265358979, 1e-300};
  const auto codec = grid_codec();
  const GridResult back = codec.decode(codec.encode(r));
  EXPECT_EQ(back.u64s, r.u64s);
  ASSERT_EQ(back.f64s.size(), r.f64s.size());
  for (std::size_t i = 0; i < r.f64s.size(); ++i)
    EXPECT_EQ(back.f64s[i], r.f64s[i]);  // bit-exact, not approximately

  const GridResult empty = codec.decode(codec.encode(GridResult{}));
  EXPECT_TRUE(empty.u64s.empty());
  EXPECT_TRUE(empty.f64s.empty());
}

TEST(SimBenchArgs, ParsesOnFailInBothForms) {
  EXPECT_TRUE(parse({"--on-fail=degrade"}).degrade);
  EXPECT_TRUE(parse({"--on-fail", "degrade"}).degrade);
  EXPECT_FALSE(parse({"--on-fail=abort"}).degrade);
  EXPECT_FALSE(parse({"--on-fail", "abort"}).degrade);
  EXPECT_FALSE(parse({"--on-fail=degrade", "--on-fail=abort"}).degrade);
}

TEST(SimBenchArgs, JournalAndResumeAreMutuallyOverriding) {
  const BenchArgs fresh = parse({"--journal", "/tmp/a.journal"});
  EXPECT_EQ(fresh.journal_path, "/tmp/a.journal");
  EXPECT_FALSE(fresh.resume);

  const BenchArgs resumed = parse({"--resume", "/tmp/a.journal"});
  EXPECT_EQ(resumed.journal_path, "/tmp/a.journal");
  EXPECT_TRUE(resumed.resume);

  // Last flag wins, like every other repeated flag.
  const BenchArgs last =
      parse({"--resume", "/tmp/a.journal", "--journal", "/tmp/b.journal"});
  EXPECT_EQ(last.journal_path, "/tmp/b.journal");
  EXPECT_FALSE(last.resume);
}

TEST(SimBenchArgs, HarnessConfigWiresRobustnessKnobsIntoCampaignConfig) {
  BenchArgs args;
  args.seed = 0;
  args.threads = 2;
  args.max_retries = 2;
  args.job_timeout_s = 1.5;
  args.degrade = true;
  args.fault_seed = 77;
  args.quick = true;
  const CampaignHarness harness(args, /*default_seed=*/123);
  EXPECT_EQ(harness.seed(), 123u);  // bench default used when --seed absent
  const sim::CampaignConfig cc = harness.config();
  EXPECT_EQ(cc.threads, 2u);
  EXPECT_EQ(cc.seed, 123u);
  EXPECT_EQ(cc.retry.max_attempts, 3u);  // 1 first try + 2 retries
  EXPECT_GT(cc.retry.backoff_ms, 0.0);
  EXPECT_DOUBLE_EQ(cc.job_timeout_s, 1.5);
  EXPECT_FALSE(cc.fail_fast);
  EXPECT_EQ(cc.fault.seed, 77u);
  EXPECT_GT(cc.fault.fail_probability, 0.0);
  EXPECT_EQ(cc.journal, nullptr);  // no --journal: no checkpoint sink
  EXPECT_EQ(cc.resume, nullptr);
  EXPECT_EQ(cc.journal_tag, "quick");

  BenchArgs plain;
  plain.seed = 9;
  const CampaignHarness direct(plain, 123);
  EXPECT_EQ(direct.seed(), 9u);  // explicit --seed wins
  EXPECT_TRUE(direct.config().fail_fast);
  EXPECT_EQ(direct.config().retry.max_attempts, 1u);
  EXPECT_EQ(direct.config().journal_tag, "full");
}

TEST(SimBenchArgs, ParsesFleetFlags) {
  const BenchArgs args = parse({"--shards", "4", "--fleet-heartbeat-timeout",
                                "2.5", "--fleet-max-respawns", "1",
                                "--fleet-kill-after", "10", "--modules",
                                "100000"});
  EXPECT_EQ(args.shards, 4u);
  EXPECT_DOUBLE_EQ(args.fleet_heartbeat_timeout_s, 2.5);
  EXPECT_EQ(args.fleet_max_respawns, 1u);
  EXPECT_EQ(args.fleet_kill_after, 10u);
  EXPECT_EQ(args.modules, 100000u);
  EXPECT_EQ(args.shard_count, 0u);  // supervisor mode, not a worker
}

TEST(SimBenchArgs, FleetFlagsDefaultToSingleProcess) {
  const BenchArgs args = parse({});
  EXPECT_EQ(args.shards, 0u);
  EXPECT_EQ(args.shard_index, 0u);
  EXPECT_EQ(args.shard_count, 0u);
  EXPECT_TRUE(args.heartbeat_path.empty());
  EXPECT_EQ(args.modules, 0u);
}

TEST(SimBenchArgs, ParsesWorkerShardCoordinates) {
  const BenchArgs args =
      parse({"--shard", "2/4", "--heartbeat", "/tmp/hb"});
  EXPECT_EQ(args.shard_index, 2u);
  EXPECT_EQ(args.shard_count, 4u);
  EXPECT_EQ(args.heartbeat_path, "/tmp/hb");
  // Raw argv is preserved so a supervisor can rebuild worker command lines.
  EXPECT_EQ(args.argv0, "bench_test");
  ASSERT_GE(args.raw_args.size(), 2u);
  EXPECT_EQ(args.raw_args[0], "--shard");
}

TEST(SimBenchArgs, RejectsMalformedShardCoordinates) {
  // i/N with i >= N, zero width, or junk must exit 64, never launch a
  // worker on a bogus residue class (it would silently skip jobs).
  for (const char* bad : {"3", "4/4", "5/4", "a/b", "1/0", "1/", "/4"}) {
    std::vector<const char*> argv = {"bench_test", "--shard", bad};
    BenchArgs args;
    std::string error;
    EXPECT_FALSE(try_parse_args(static_cast<int>(argv.size()),
                                const_cast<char**>(argv.data()), args, error))
        << bad;
    EXPECT_NE(error.find("--shard"), std::string::npos) << error;
  }
}

TEST(SimBenchArgs, RejectsZeroShardsAndZeroModules) {
  const std::vector<std::pair<const char*, const char*>> cases = {
      {"--shards", "0"},
      {"--modules", "0"},
      {"--fleet-heartbeat-timeout", "0"},
      {"--fleet-heartbeat-timeout", "-1"}};
  for (const auto& [flag, value] : cases) {
    std::vector<const char*> argv = {"bench_test", flag, value};
    BenchArgs args;
    std::string error;
    EXPECT_FALSE(try_parse_args(static_cast<int>(argv.size()),
                                const_cast<char**>(argv.data()), args, error))
        << flag << " " << value;
    EXPECT_NE(error.find(flag), std::string::npos) << error;
  }
}

TEST(SimBenchArgs, SupervisorAndWorkerFlagsAreMutuallyExclusive) {
  std::vector<const char*> argv = {"bench_test", "--shards", "2", "--shard",
                                   "0/2"};
  BenchArgs args;
  std::string error;
  EXPECT_FALSE(try_parse_args(static_cast<int>(argv.size()),
                              const_cast<char**>(argv.data()), args, error));
  EXPECT_NE(error.find("mutually exclusive"), std::string::npos) << error;
}

TEST(SimBenchArgs, FleetFlagsRejectMissingValues) {
  for (const char* flag : {"--shards", "--shard", "--heartbeat",
                           "--fleet-kill-after", "--fleet-heartbeat-timeout",
                           "--fleet-max-respawns", "--modules"}) {
    std::vector<const char*> argv = {"bench_test", flag};
    BenchArgs args;
    std::string error;
    EXPECT_FALSE(try_parse_args(static_cast<int>(argv.size()),
                                const_cast<char**>(argv.data()), args, error))
        << flag;
    EXPECT_NE(error.find(flag), std::string::npos) << error;
    EXPECT_NE(error.find("expects a value"), std::string::npos) << error;
  }
}

TEST(SimBenchArgs, WorkerConfigCarriesShardCoordinates) {
  BenchArgs args;
  args.shard_index = 1;
  args.shard_count = 3;
  const CampaignHarness harness(args, /*default_seed=*/1);
  const sim::CampaignConfig cc = harness.config();
  EXPECT_EQ(cc.shard_index, 1u);
  EXPECT_EQ(cc.shard_count, 3u);
}

TEST(SimBenchArgs, EmitSanitizesSeriesNamesInMirrorPaths) {
  // A series label with spaces/commas/slashes must not splinter the mirror
  // path: the written file lives at <base>.<sanitized>.csv.
  Table t({"mitigation", "flips"});
  t.add_row({std::string("PARA, p=0.001"), std::uint64_t{0}});
  BenchArgs args;
  const std::string base = ::testing::TempDir() + "/densemem_emit_test";
  args.csv_path = base;
  args.json_path = base;
  ::testing::internal::CaptureStdout();
  emit(t, args, "PARA, p/0.001");
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("[csv] " + base + ".PARA__p_0.001.csv"),
            std::string::npos);
  EXPECT_NE(out.find("[json] " + base + ".PARA__p_0.001.json"),
            std::string::npos);
  EXPECT_EQ(out.find("FAILED"), std::string::npos);
  // And the CSV payload carries the comma-bearing label RFC-4180-quoted.
  std::ifstream f(base + ".PARA__p_0.001.csv");
  std::string csv((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(csv.find("\"PARA, p=0.001\""), std::string::npos);
  std::remove((base + ".PARA__p_0.001.csv").c_str());
  std::remove((base + ".PARA__p_0.001.json").c_str());
}

}  // namespace
}  // namespace densemem::bench
