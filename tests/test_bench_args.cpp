// Tests for the bench harness argument parser (bench/bench_util.cpp is
// compiled into the test binary; see tests/CMakeLists.txt). Sim-prefixed so
// the TSan CI job picks these up alongside the engine tests.
#include "bench_util.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

namespace densemem::bench {
namespace {

BenchArgs parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "bench_test");
  return parse_args(static_cast<int>(argv.size()),
                    const_cast<char**>(argv.data()));
}

TEST(SimBenchArgs, DefaultsAreSerialCompatible) {
  const BenchArgs args = parse({});
  EXPECT_TRUE(args.csv_path.empty());
  EXPECT_TRUE(args.json_path.empty());
  EXPECT_FALSE(args.quick);
  EXPECT_EQ(args.threads, 0u);  // 0 = hardware concurrency
  EXPECT_EQ(args.seed, 0u);     // 0 = bench default seed
}

TEST(SimBenchArgs, ParsesThreadsAndSeed) {
  const BenchArgs args = parse({"--threads", "8", "--seed", "12345"});
  EXPECT_EQ(args.threads, 8u);
  EXPECT_EQ(args.seed, 12345u);
}

TEST(SimBenchArgs, ParsesMirrorsAndQuickTogether) {
  const BenchArgs args = parse({"--csv", "/tmp/out.csv", "--json",
                                "/tmp/out.json", "--quick", "--threads", "2"});
  EXPECT_EQ(args.csv_path, "/tmp/out.csv");
  EXPECT_EQ(args.json_path, "/tmp/out.json");
  EXPECT_TRUE(args.quick);
  EXPECT_EQ(args.threads, 2u);
}

TEST(SimBenchArgs, LargeSeedFitsIn64Bits) {
  const BenchArgs args = parse({"--seed", "18446744073709551615"});
  EXPECT_EQ(args.seed, ~std::uint64_t{0});
}

TEST(SimBenchArgs, EmitSanitizesSeriesNamesInMirrorPaths) {
  // A series label with spaces/commas/slashes must not splinter the mirror
  // path: the written file lives at <base>.<sanitized>.csv.
  Table t({"mitigation", "flips"});
  t.add_row({std::string("PARA, p=0.001"), std::uint64_t{0}});
  BenchArgs args;
  const std::string base = ::testing::TempDir() + "/densemem_emit_test";
  args.csv_path = base;
  args.json_path = base;
  ::testing::internal::CaptureStdout();
  emit(t, args, "PARA, p/0.001");
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("[csv] " + base + ".PARA__p_0.001.csv"),
            std::string::npos);
  EXPECT_NE(out.find("[json] " + base + ".PARA__p_0.001.json"),
            std::string::npos);
  EXPECT_EQ(out.find("FAILED"), std::string::npos);
  // And the CSV payload carries the comma-bearing label RFC-4180-quoted.
  std::ifstream f(base + ".PARA__p_0.001.csv");
  std::string csv((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(csv.find("\"PARA, p=0.001\""), std::string::npos);
  std::remove((base + ".PARA__p_0.001.csv").c_str());
  std::remove((base + ".PARA__p_0.001.json").c_str());
}

}  // namespace
}  // namespace densemem::bench
