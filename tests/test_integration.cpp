// Cross-module integration scenarios: the paper's headline stories executed
// end-to-end through the full stack (device + controller + mitigation +
// attack + exploit).
#include <gtest/gtest.h>

#include <map>

#include "attack/attacker.h"
#include "attack/exploit.h"
#include "core/analysis.h"
#include "core/system.h"

namespace densemem {
namespace {

using attack::AttackConfig;
using attack::Attacker;
using attack::PatternKind;
using core::MitigationKind;
using core::MitigationSpec;
using core::make_system;

dram::DeviceConfig demo_device(std::uint64_t seed) {
  dram::DeviceConfig cfg;
  cfg.geometry = dram::Geometry::tiny();
  cfg.reliability = dram::ReliabilityParams::vulnerable();
  cfg.reliability.weak_cell_density = 3e-3;
  cfg.reliability.hc50 = 12e3;
  cfg.reliability.hc_sigma = 0.3;
  cfg.reliability.dpd_sensitivity_mean = 0.0;
  cfg.reliability.anticell_fraction = 0.0;
  cfg.seed = seed;
  cfg.pattern = dram::BackgroundPattern::kOnes;
  cfg.record_flip_events = true;
  return cfg;
}

std::uint32_t weak_victim(dram::Device& dev) {
  for (std::uint32_t r : dev.fault_map().weak_rows(0))
    if (r >= 3 && r + 3 < dev.geometry().rows) return r;
  return 0;
}

TEST(Integration, RefreshRateMultiplierEliminatesFlips) {
  // §II-C story: the refresh window bounds accumulable stress, so a high
  // enough multiplier makes the achievable hammer count sub-threshold.
  // Here the controller's periodic REF actually restores the victim.
  std::uint64_t flips_at_1x = 0;
  for (const double mult : {1.0, 8.0}) {
    dram::DeviceConfig dc = demo_device(101);
    dc.reliability.hc50 = 250e3;  // reachable at 1x, not at 8x
    dc.reliability.hc_sigma = 0.2;
    dc.reliability.hc_sigma = 0.2;
    ctrl::CtrlConfig cc;
    if (mult > 1.0)
      cc.timing = dram::Timing::ddr3_1600().with_refresh_multiplier(mult);
    auto sys = make_system(dc, cc, {});
    const std::uint32_t victim = weak_victim(sys.dev());
    ASSERT_NE(victim, 0u);
    // Hammer through the controller for 128 ms of simulated time.
    while (sys.mc().now() < Time::ms(128)) {
      sys.mc().activate_precharge(0, victim - 1);
      sys.mc().activate_precharge(0, victim + 1);
    }
    sys.mc().activate_precharge(0, victim);
    if (mult == 1.0) {
      flips_at_1x = sys.dev().stats().disturb_flips;
      EXPECT_GT(flips_at_1x, 0u) << "baseline must be vulnerable";
    } else {
      EXPECT_EQ(sys.dev().stats().disturb_flips, 0u)
          << "8x refresh must prevent all flips for hc50=300k";
    }
  }
}

TEST(Integration, KernelPrivilegeEscalationStory) {
  // Project-Zero style: spray PTEs, double-sided hammer, check takeover.
  dram::DeviceConfig dc = demo_device(103);
  auto sys = make_system(dc, ctrl::CtrlConfig{}, {});
  const std::uint32_t victim = weak_victim(sys.dev());
  ASSERT_NE(victim, 0u);

  attack::ExploitConfig ec;
  ec.attacker_frame_fraction = 1.0;  // maximal spray
  attack::ExploitModel exploit(ec);
  exploit.spray_row(sys.dev(), 0, victim, sys.mc().now());
  const std::size_t ev0 = sys.dev().flip_events().size();

  for (int i = 0; i < 40'000; ++i) {
    sys.mc().activate_precharge(0, victim - 1);
    sys.mc().activate_precharge(0, victim + 1);
  }
  sys.mc().activate_precharge(0, victim);
  const auto outcome = exploit.evaluate(sys.dev(), ev0, {victim});
  EXPECT_GT(outcome.flips_total, 0u);
  // With full spray, takeover follows iff some flip hit a PPN field.
  EXPECT_EQ(outcome.takeover, outcome.flips_in_ppn > 0);
}

TEST(Integration, ParaStopsTheExploit) {
  dram::DeviceConfig dc = demo_device(103);
  MitigationSpec spec;
  spec.kind = MitigationKind::kPara;
  spec.para.probability = 0.02;
  auto sys = make_system(dc, ctrl::CtrlConfig{}, spec);
  const std::uint32_t victim = weak_victim(sys.dev());
  ASSERT_NE(victim, 0u);
  attack::ExploitModel exploit(attack::ExploitConfig{});
  exploit.spray_row(sys.dev(), 0, victim, sys.mc().now());
  const std::size_t ev0 = sys.dev().flip_events().size();
  for (int i = 0; i < 40'000; ++i) {
    sys.mc().activate_precharge(0, victim - 1);
    sys.mc().activate_precharge(0, victim + 1);
  }
  sys.mc().activate_precharge(0, victim);
  const auto outcome = exploit.evaluate(sys.dev(), ev0, {victim});
  EXPECT_FALSE(outcome.takeover);
  EXPECT_EQ(outcome.flips_total, 0u);
}

TEST(Integration, AttackerThroughEveryMitigation) {
  // Smoke matrix: the attack driver composes with each mitigation without
  // protocol violations, and the unprotected run dominates the protected.
  std::map<MitigationKind, std::uint64_t> flips;
  for (const auto kind :
       {MitigationKind::kNone, MitigationKind::kPara, MitigationKind::kCra,
        MitigationKind::kAnvil, MitigationKind::kTrr}) {
    MitigationSpec spec;
    spec.kind = kind;
    spec.para.probability = 0.02;
    spec.cra.threshold = 1024;
    spec.anvil.sample_rate = 0.05;
    auto sys = make_system(demo_device(107), ctrl::CtrlConfig{}, spec);
    const std::uint32_t victim = weak_victim(sys.dev());
    ASSERT_NE(victim, 0u);
    AttackConfig ac;
    ac.pattern.kind = PatternKind::kDoubleSided;
    ac.pattern.victim_row = victim;
    ac.pattern.rows_in_bank = sys.dev().geometry().rows;
    ac.max_iterations = 30'000;
    Attacker atk(ac);
    const auto res = atk.run(sys.mc());
    flips[kind] = res.raw_disturb_flips;
  }
  EXPECT_GT(flips[MitigationKind::kNone], 0u);
  for (const auto kind : {MitigationKind::kPara, MitigationKind::kCra,
                          MitigationKind::kAnvil, MitigationKind::kTrr}) {
    EXPECT_LE(flips[kind], flips[MitigationKind::kNone]);
    EXPECT_EQ(flips[kind], 0u) << core::mitigation_name(kind);
  }
}

TEST(Integration, ParaMonteCarloTracksAnalyticModel) {
  // Cross-check PARA's simulated protection against the closed form at a
  // scale where failures are observable: threshold cells ~600 hammers,
  // p = 0.01, 3000 double-sided iterations.
  dram::DeviceConfig dc = demo_device(113);
  dc.reliability.hc50 = 600;
  dc.reliability.hc_sigma = 0.01;  // nearly deterministic threshold
  dc.reliability.weak_cell_density = 5e-4;

  const double p = 0.01;
  const std::uint64_t iters = 3000;
  int trials = 0, failures = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    MitigationSpec spec;
    spec.kind = MitigationKind::kPara;
    spec.para.probability = p;
    spec.para.seed = seed;
    auto sys = make_system(dc, ctrl::CtrlConfig{}, spec);
    const std::uint32_t victim = weak_victim(sys.dev());
    if (victim == 0) continue;
    for (std::uint64_t i = 0; i < iters; ++i) {
      sys.mc().activate_precharge(0, victim - 1);
      sys.mc().activate_precharge(0, victim + 1);
    }
    sys.mc().activate_precharge(0, victim);
    ++trials;
    failures += sys.dev().stats().disturb_flips > 0 ? 1 : 0;
  }
  ASSERT_GT(trials, 30);
  // Victim sees ~2 stress/iteration; a PARA hit on either close restores.
  // Analytic: runs of >= hc50/2 iteration-pairs with no refresh among
  // 2*iters closes.
  const double analytic = core::para_failure_probability(p, 2 * iters, 600);
  const double mc = static_cast<double>(failures) / trials;
  EXPECT_NEAR(mc, analytic,
              4.0 * std::sqrt(std::max(analytic, 0.05) / trials) + 0.1);
}

}  // namespace
}  // namespace densemem
