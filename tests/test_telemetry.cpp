// Tests for the telemetry layer (sim/telemetry.h, sim/span.h) and its
// campaign wiring: sharded registry merges, the width-determinism contract
// (counters/gauges/histograms byte-identical across thread counts), the
// span-per-attempt trace schema against the journal's attempt ledger, and
// the Progress-line-vs-registry agreement. Sim-prefixed so CI's
// ThreadSanitizer job picks these up (ctest -R '^Sim').
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "sim/campaign.h"
#include "sim/journal.h"
#include "sim/progress.h"
#include "sim/span.h"
#include "sim/telemetry.h"
#include "sim/thread_pool.h"

namespace densemem::sim {
namespace {

// ------------------------------------------------------------ MetricsRegistry

TEST(SimTelemetry, CountersAndGaugesReadBackMerged) {
  MetricsRegistry reg;
  reg.add("jobs", 3);
  reg.add("jobs");
  reg.set("threshold", 2.5);
  EXPECT_EQ(reg.counter("jobs"), 4u);
  EXPECT_EQ(reg.counter("never-written"), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("threshold"), 2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("never-written"), 0.0);
}

TEST(SimTelemetry, ConcurrentShardedWritesMergeExactly) {
  MetricsRegistry reg;
  ThreadPool pool(8);
  pool.parallel_for(1000, 7, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      reg.add("events");
      reg.observe("value", static_cast<double>(i));
      reg.observe_hist("dist", 0.0, 1000.0, 10, static_cast<double>(i));
    }
  });
  pool.wait();
  EXPECT_EQ(reg.counter("events"), 1000u);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.stats.count("value"), 1u);
  EXPECT_EQ(snap.stats.at("value").count(), 1000u);
  EXPECT_DOUBLE_EQ(snap.stats.at("value").min(), 0.0);
  EXPECT_DOUBLE_EQ(snap.stats.at("value").max(), 999.0);
  ASSERT_EQ(snap.histograms.count("dist"), 1u);
  EXPECT_EQ(snap.histograms.at("dist").total(), 1000u);
  for (std::size_t b = 0; b < 10; ++b)
    EXPECT_EQ(snap.histograms.at("dist").bin_count(b), 100u);
}

TEST(SimTelemetry, GaugesMergeByMaxAcrossShards) {
  MetricsRegistry reg;
  ThreadPool pool(4);
  pool.parallel_for(4, 1, [&](std::size_t b, std::size_t) {
    reg.set("peak", static_cast<double>(b));
  });
  pool.wait();
  EXPECT_DOUBLE_EQ(reg.gauge("peak"), 3.0);
}

TEST(SimTelemetry, JsonSnapshotParsesAndEscapes) {
  MetricsRegistry reg;
  reg.add("with \"quote\"", 1);
  reg.set("g", 0.5);
  reg.observe("t", 1.0);
  reg.observe_hist("h", 0.0, 1.0, 2, 0.25);
  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"timings\""), std::string::npos);
  EXPECT_NE(json.find("with \\\"quote\\\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
}

// ------------------------------------------------- width-determinism contract

double telemetry_job(const JobContext& ctx) {
  Rng rng = ctx.make_rng();
  double acc = 0.0;
  for (int k = 0; k < 32; ++k) acc += rng.uniform();
  return acc;
}

/// Runs a fault-injected degrade campaign against a fresh registry and
/// returns the registry's width-stable sections.
MetricsRegistry::Snapshot run_width(unsigned threads, SpanTracer* tracer) {
  MetricsRegistry reg;
  CampaignConfig cfg;
  cfg.threads = threads;
  cfg.seed = 99;
  cfg.progress = false;
  cfg.fault.seed = 13;
  cfg.fault.fail_probability = 0.3;
  cfg.fault.fail_attempts = 1;  // fail once, then recover
  cfg.retry.max_attempts = 3;
  cfg.fail_fast = false;
  cfg.metrics = &reg;
  cfg.tracer = tracer;
  Campaign c("width", cfg);
  c.map<double>(40, telemetry_job);
  return c.metrics().snapshot();
}

void expect_width_stable_equal(const MetricsRegistry::Snapshot& a,
                               const MetricsRegistry::Snapshot& b,
                               unsigned threads) {
  EXPECT_EQ(a.counters, b.counters) << "threads=" << threads;
  EXPECT_EQ(a.gauges, b.gauges) << "threads=" << threads;
  ASSERT_EQ(a.histograms.size(), b.histograms.size()) << "threads=" << threads;
  for (const auto& [name, ha] : a.histograms) {
    ASSERT_EQ(b.histograms.count(name), 1u) << name;
    const Histogram& hb = b.histograms.at(name);
    ASSERT_EQ(ha.num_bins(), hb.num_bins()) << name;
    EXPECT_EQ(ha.total(), hb.total()) << name;
    EXPECT_EQ(ha.underflow(), hb.underflow()) << name;
    EXPECT_EQ(ha.overflow(), hb.overflow()) << name;
    for (std::size_t i = 0; i < ha.num_bins(); ++i)
      EXPECT_EQ(ha.bin_count(i), hb.bin_count(i)) << name << " bin " << i;
  }
}

TEST(SimTelemetry, MetricValuesAreByteIdenticalAcross1And2And8Threads) {
  const auto ref = run_width(1, nullptr);
  // The fault profile must actually fire, or the test proves nothing.
  ASSERT_GT(ref.counters.at("campaign.width.faults.injected"), 0u);
  EXPECT_EQ(ref.counters.at("campaign.width.jobs.done"), 40u);
  EXPECT_EQ(ref.counters.at("campaign.width.jobs.retried"),
            ref.counters.at("campaign.width.faults.injected"));
  for (unsigned threads : {2u, 8u})
    expect_width_stable_equal(ref, run_width(threads, nullptr), threads);
}

// ----------------------------------------------------------------- SpanTracer

TEST(SimSpanTracer, BoundedBufferDropsPastCapacity) {
  SpanTracer tracer(/*capacity=*/2);
  for (unsigned k = 0; k < 5; ++k)
    tracer.record(Span{"c", k, 0, SpanOutcome::kOk, 0, 0, 0, 0, ""});
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.dropped(), 3u);
}

TEST(SimSpanTracer, SortsByCampaignJobAttemptAndEmitsOneJsonObjectPerLine) {
  SpanTracer tracer;
  tracer.record(Span{"b", 1, 1, SpanOutcome::kOk, 0, 0, 0, 0, ""});
  tracer.record(Span{"b", 1, 0, SpanOutcome::kRetried, 0, 0, 0, 0, "x\"y"});
  tracer.record(Span{"a", 2, 0, SpanOutcome::kOk, 0, 0, 0, 0, ""});
  const auto spans = tracer.sorted();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].campaign, "a");
  EXPECT_EQ(spans[1].attempt, 0u);
  EXPECT_EQ(spans[2].attempt, 1u);

  std::ostringstream os;
  tracer.write_jsonl(os);
  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    EXPECT_EQ(line.find("{\"campaign\":\""), 0u) << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"job\":"), std::string::npos);
    EXPECT_NE(line.find("\"attempt\":"), std::string::npos);
    EXPECT_NE(line.find("\"outcome\":\""), std::string::npos);
  }
  EXPECT_EQ(lines, 3u);
  // The error field is escaped and present only on the non-ok span.
  EXPECT_NE(os.str().find("\"error\":\"x\\\"y\""), std::string::npos);
}

TEST(SimSpanTracer, RecordsOneSpanPerAttemptMatchingTheJournal) {
  const std::string path =
      "/tmp/densemem_telemetry_test_" + std::to_string(::getpid()) + ".journal";
  SpanTracer tracer;
  MetricsRegistry reg;
  JournalWriter writer;
  ASSERT_TRUE(writer.open(path, /*append=*/false));

  CampaignConfig cfg;
  cfg.threads = 4;
  cfg.seed = 99;
  cfg.progress = false;
  cfg.fault.seed = 41;
  cfg.fault.fail_probability = 0.25;
  cfg.fault.fail_attempts = 99;  // persistently failing -> quarantined
  cfg.retry.max_attempts = 3;
  cfg.fail_fast = false;
  cfg.journal = &writer;
  cfg.metrics = &reg;
  cfg.tracer = &tracer;
  Campaign c("trace", cfg);
  c.map<double>(32, telemetry_job);
  // JournalWriter fflushes every record, so the file is loadable while the
  // writer is still open (same idiom as the resume path).
  ASSERT_GT(c.last_stats().quarantined, 0u);
  ASSERT_LT(c.last_stats().quarantined, 32u);

  // Spans per job must equal the attempt count the journal recorded.
  std::map<std::size_t, std::vector<Span>> by_job;
  for (const Span& s : tracer.sorted()) {
    EXPECT_EQ(s.campaign, "trace");
    by_job[s.job].push_back(s);
  }
  EXPECT_EQ(by_job.size(), 32u);
  const Journal journal = Journal::load(path);
  const Journal::Section* sec = journal.find("trace");
  ASSERT_NE(sec, nullptr);
  ASSERT_EQ(sec->records.size(), 32u);
  for (const auto& [i, rec] : sec->records) {
    ASSERT_EQ(by_job.count(i), 1u) << "job " << i;
    const auto& spans = by_job.at(i);
    EXPECT_EQ(spans.size(), rec.attempts) << "job " << i;
    for (unsigned a = 0; a < spans.size(); ++a) {
      EXPECT_EQ(spans[a].attempt, a) << "job " << i;
      // "error" is non-empty exactly on non-ok spans.
      EXPECT_EQ(spans[a].error.empty(),
                spans[a].outcome == SpanOutcome::kOk)
          << "job " << i << " attempt " << a;
    }
    const SpanOutcome last = spans.back().outcome;
    if (rec.quarantined)
      EXPECT_EQ(last, SpanOutcome::kQuarantined) << "job " << i;
    else
      EXPECT_EQ(last, SpanOutcome::kOk) << "job " << i;
    for (std::size_t a = 0; a + 1 < spans.size(); ++a)
      EXPECT_EQ(spans[a].outcome, SpanOutcome::kRetried) << "job " << i;
  }
  std::remove(path.c_str());
}

// ------------------------------------------------------------------- Progress

TEST(SimProgress, LineReportsRegistryTotalsFromSharedRegistry) {
  MetricsRegistry reg;
  Progress p("shared", 10, /*enabled=*/false, 2.0, &reg, "campaign.shared.");
  reg.add("campaign.shared.jobs.done", 4);
  p.mark_done();
  p.mark_failed();
  p.mark_retried();
  // Progress and direct registry writes land in the same counters.
  EXPECT_EQ(p.done(), 5u);
  EXPECT_EQ(reg.counter("campaign.shared.jobs.failed"), 1u);
  const std::string line = p.line(/*final_line=*/true);
  EXPECT_NE(line.find("5/10 jobs"), std::string::npos) << line;
  EXPECT_NE(line.find("(1 failed, 1 retried)"), std::string::npos) << line;
}

TEST(SimProgress, LineAgreesWithRegistryAfterFaultInjectedDegradeRun) {
  // Satellite regression: the progress line and the registry must be the
  // same ledger — a degrade run with retries and quarantines may not leave
  // them disagreeing (the pre-telemetry design had parallel atomics).
  MetricsRegistry reg;
  CampaignConfig cfg;
  cfg.threads = 4;
  cfg.seed = 5;
  cfg.progress = false;
  cfg.fault.seed = 23;
  cfg.fault.fail_probability = 0.4;
  cfg.fault.fail_attempts = 99;
  cfg.retry.max_attempts = 2;
  cfg.fail_fast = false;
  cfg.metrics = &reg;
  Campaign c("agree", cfg);
  c.map<double>(30, telemetry_job);
  const CampaignStats& st = c.last_stats();
  ASSERT_GT(st.quarantined, 0u);
  ASSERT_GT(st.retries, 0u);
  EXPECT_EQ(reg.counter("campaign.agree.jobs.done"), st.completed);
  EXPECT_EQ(reg.counter("campaign.agree.jobs.failed"), st.quarantined);
  EXPECT_EQ(reg.counter("campaign.agree.jobs.retried"), st.retries);
  EXPECT_EQ(reg.counter("campaign.agree.jobs.quarantined"), st.quarantined);

  // Reconstruct the line a Progress over this registry would print; the
  // counts must match the stats-derived expectations exactly.
  Progress p("agree", 30, /*enabled=*/false, 2.0, &reg, "campaign.agree.");
  const std::string line = p.line(/*final_line=*/true);
  const std::string want = std::to_string(st.completed) + "/30 jobs (" +
                           std::to_string(st.quarantined) + " failed, " +
                           std::to_string(st.retries) + " retried)";
  EXPECT_NE(line.find(want), std::string::npos) << line;
}

}  // namespace
}  // namespace densemem::sim
