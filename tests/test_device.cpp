#include "dram/device.h"

#include <gtest/gtest.h>

#include "common/check.h"

#include <optional>

namespace densemem::dram {
namespace {

DeviceConfig vulnerable_config(std::uint64_t seed = 7) {
  DeviceConfig cfg;
  cfg.geometry = Geometry::tiny();
  cfg.reliability = ReliabilityParams::vulnerable();
  cfg.reliability.weak_cell_density = 2e-3;  // dense so tests find cells
  cfg.reliability.leaky_cell_density = 0.0;
  cfg.seed = seed;
  cfg.pattern = BackgroundPattern::kOnes;
  cfg.record_flip_events = true;
  return cfg;
}

/// First row (with margin) holding a non-anti weak cell; also returns it.
struct FoundCell {
  std::uint32_t row;
  WeakCell cell;
};
std::optional<FoundCell> find_true_weak_cell(Device& dev,
                                             double max_dpd_sens = 1.1) {
  const auto rows = dev.fault_map().weak_rows(0);
  for (std::uint32_t r : rows) {
    if (r < 2 || r + 2 >= dev.geometry().rows) continue;
    for (const WeakCell& c : dev.fault_map().weak_cells(0, r)) {
      if (!c.anti_cell && c.dpd_sens <= max_dpd_sens) return FoundCell{r, c};
    }
  }
  return std::nullopt;
}

TEST(Device, ProtocolChecks) {
  Device dev(vulnerable_config());
  const Time t;
  EXPECT_THROW(dev.read_word(0, 0), CheckError);   // no open row
  EXPECT_THROW(dev.write_word(0, 0, 1), CheckError);
  dev.activate(0, 5, t);
  EXPECT_THROW(dev.activate(0, 6, t), CheckError);  // bank already open
  EXPECT_THROW(dev.hammer(0, 6, 10, t), CheckError);
  EXPECT_EQ(dev.open_row(0), std::optional<std::uint32_t>{5});
  dev.precharge(0, t);
  EXPECT_EQ(dev.open_row(0), std::nullopt);
  EXPECT_THROW(dev.activate(0, dev.geometry().rows, t), CheckError);
  EXPECT_THROW(dev.activate(99, 0, t), CheckError);
}

TEST(Device, ReadWriteRoundTrip) {
  Device dev(vulnerable_config());
  const Time t;
  dev.activate(0, 10, t);
  dev.write_word(0, 3, 0xABCDULL);
  EXPECT_EQ(dev.read_word(0, 3), 0xABCDULL);
  // Unwritten words read as the background pattern (all ones here).
  EXPECT_EQ(dev.read_word(0, 4), ~std::uint64_t{0});
  dev.precharge(0, t);
}

class BackgroundPatternTest
    : public ::testing::TestWithParam<BackgroundPattern> {};

TEST_P(BackgroundPatternTest, SnapshotMatchesPatternWord) {
  DeviceConfig cfg = vulnerable_config();
  cfg.pattern = GetParam();
  cfg.reliability.weak_cell_density = 0.0;
  Device dev(cfg);
  for (std::uint32_t row : {0u, 1u, 17u}) {
    const auto snap = dev.snapshot_row(0, row);
    for (std::uint32_t w = 0; w < dev.geometry().row_words(); ++w)
      ASSERT_EQ(snap[w], dev.pattern_word(row, w));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, BackgroundPatternTest,
    ::testing::Values(BackgroundPattern::kZeros, BackgroundPattern::kOnes,
                      BackgroundPattern::kCheckerboard,
                      BackgroundPattern::kRowStripe,
                      BackgroundPattern::kRandom));

TEST(Device, PatternBitMatchesPatternWord) {
  for (const auto pat :
       {BackgroundPattern::kCheckerboard, BackgroundPattern::kRandom,
        BackgroundPattern::kRowStripe}) {
    for (std::uint32_t row : {0u, 1u, 2u}) {
      for (std::uint32_t bit : {0u, 1u, 63u, 64u, 100u}) {
        EXPECT_EQ(pattern_bit_value(pat, 5, row, bit),
                  (pattern_word_value(pat, 5, row, bit / 64) >> (bit % 64)) & 1)
            << "row " << row << " bit " << bit;
      }
    }
  }
}

// Make the aggressor rows antiparallel to the all-ones victim so the
// data-pattern factor is 1 and the cell's nominal threshold applies exactly.
void make_aggressors_antiparallel(Device& dev, std::uint32_t victim) {
  std::vector<std::uint64_t> zeros(dev.geometry().row_words(), 0);
  dev.fill_row(0, victim - 1, zeros, Time::ms(0));
  dev.fill_row(0, victim + 1, zeros, Time::ms(0));
}

TEST(Device, HammerAboveThresholdFlips) {
  Device dev(vulnerable_config());
  const auto found = find_true_weak_cell(dev);
  ASSERT_TRUE(found.has_value());
  const auto [victim, cell] = *found;
  make_aggressors_antiparallel(dev, victim);
  const auto count = static_cast<std::uint64_t>(cell.threshold) + 1000;
  dev.hammer(0, victim - 1, count, Time::ms(1));
  // Commit by activating the victim.
  dev.activate(0, victim, Time::ms(50));
  dev.precharge(0, Time::ms(50));
  const auto snap = dev.snapshot_row(0, victim);
  EXPECT_EQ((snap[cell.bit / 64] >> (cell.bit % 64)) & 1, 0u)
      << "cell should have flipped 1 -> 0";
  EXPECT_GE(dev.stats().disturb_flips, 1u);
  EXPECT_GE(dev.stats().flips_1to0, 1u);
}

TEST(Device, HammerBelowThresholdDoesNotFlip) {
  Device dev(vulnerable_config());
  // Find the row's minimum threshold so we can stay under all of them.
  const auto found = find_true_weak_cell(dev);
  ASSERT_TRUE(found.has_value());
  const std::uint32_t victim = found->row;
  float min_thr = 1e30f;
  for (const auto& c : dev.fault_map().weak_cells(0, victim))
    min_thr = std::min(min_thr, c.threshold);
  const auto count = static_cast<std::uint64_t>(min_thr * 0.4);
  dev.hammer(0, victim - 1, count, Time::ms(1));
  dev.activate(0, victim, Time::ms(50));
  dev.precharge(0, Time::ms(50));
  EXPECT_EQ(dev.stats().disturb_flips, 0u);
}

TEST(Device, BulkHammerEquivalentToActPreLoop) {
  const auto cfg = vulnerable_config(123);
  Device a(cfg), b(cfg);
  const auto found = find_true_weak_cell(a);
  ASSERT_TRUE(found.has_value());
  const std::uint32_t victim = found->row;
  const std::uint64_t n = static_cast<std::uint64_t>(found->cell.threshold) + 500;

  a.hammer(0, victim - 1, n, Time::ms(0));
  for (std::uint64_t i = 0; i < n; ++i) {
    b.activate(0, victim - 1, Time::ms(0));
    b.precharge(0, Time::ms(0));
  }
  EXPECT_FLOAT_EQ(
      static_cast<float>(a.stress_of_physical(0, a.remap().to_physical(victim))),
      static_cast<float>(b.stress_of_physical(0, b.remap().to_physical(victim))));
  a.activate(0, victim, Time::ms(40));
  b.activate(0, victim, Time::ms(40));
  EXPECT_EQ(a.stats().disturb_flips, b.stats().disturb_flips);
  EXPECT_EQ(a.snapshot_row(0, victim), b.snapshot_row(0, victim));
}

TEST(Device, VictimActivationResetsStress) {
  Device dev(vulnerable_config());
  const auto found = find_true_weak_cell(dev);
  ASSERT_TRUE(found.has_value());
  const std::uint32_t victim = found->row;
  const auto half = static_cast<std::uint64_t>(found->cell.threshold * 0.6);
  dev.hammer(0, victim - 1, half, Time::ms(0));
  // Victim refresh (here: activation) between two sub-threshold bursts.
  dev.activate(0, victim, Time::ms(10));
  dev.precharge(0, Time::ms(10));
  dev.hammer(0, victim - 1, half, Time::ms(20));
  dev.activate(0, victim, Time::ms(40));
  dev.precharge(0, Time::ms(40));
  EXPECT_EQ(dev.stats().disturb_flips, 0u)
      << "two sub-threshold bursts split by a restore must not flip";
}

TEST(Device, TargetedRefreshPreventsFlip) {
  Device dev(vulnerable_config());
  const auto found = find_true_weak_cell(dev);
  ASSERT_TRUE(found.has_value());
  const std::uint32_t victim = found->row;
  const auto half = static_cast<std::uint64_t>(found->cell.threshold * 0.6);
  dev.hammer(0, victim - 1, half, Time::ms(0));
  dev.refresh_row(0, victim, Time::ms(10));  // PARA-style neighbour refresh
  dev.hammer(0, victim - 1, half, Time::ms(20));
  dev.activate(0, victim, Time::ms(40));
  EXPECT_EQ(dev.stats().disturb_flips, 0u);
  EXPECT_EQ(dev.stats().targeted_refreshes, 1u);
}

TEST(Device, DischargedCellCannotFlip) {
  // With all-zeros data, true cells (charged = stores 1) are discharged and
  // must not flip no matter how hard we hammer.
  DeviceConfig cfg = vulnerable_config();
  cfg.pattern = BackgroundPattern::kZeros;
  cfg.reliability.anticell_fraction = 0.0;  // only true cells exist
  Device dev(cfg);
  const auto rows = dev.fault_map().weak_rows(0);
  ASSERT_FALSE(rows.empty());
  for (std::uint32_t victim : rows) {
    if (victim < 2 || victim + 2 >= dev.geometry().rows) continue;
    dev.hammer(0, victim - 1, 10'000'000, Time::ms(0));
    dev.hammer(0, victim + 1, 10'000'000, Time::ms(0));
    dev.activate(0, victim, Time::ms(50));
    dev.precharge(0, Time::ms(50));
  }
  EXPECT_EQ(dev.stats().disturb_flips, 0u);
}

TEST(Device, AntiCellsFlipZeroToOne) {
  DeviceConfig cfg = vulnerable_config();
  cfg.pattern = BackgroundPattern::kZeros;
  cfg.reliability.anticell_fraction = 1.0;  // only anti-cells
  cfg.reliability.hc50 = 20e3;
  Device dev(cfg);
  const auto rows = dev.fault_map().weak_rows(0);
  ASSERT_FALSE(rows.empty());
  std::uint64_t hammered = 0;
  for (std::uint32_t victim : rows) {
    if (victim < 2 || victim + 2 >= dev.geometry().rows) continue;
    dev.hammer(0, victim - 1, 1'000'000, Time::ms(0));
    dev.hammer(0, victim + 1, 1'000'000, Time::ms(0));
    dev.activate(0, victim, Time::ms(50));
    dev.precharge(0, Time::ms(50));
    ++hammered;
  }
  ASSERT_GT(hammered, 0u);
  EXPECT_GT(dev.stats().flips_0to1, 0u);
  EXPECT_EQ(dev.stats().flips_1to0, 0u);
}

TEST(Device, DoubleSidedStrongerThanSingleSided) {
  // Same budget of total activations: double-sided splits it across both
  // neighbours and doubles the victim's stress rate -> more flips.
  const auto cfg = vulnerable_config(31);
  std::uint64_t flips_single = 0, flips_double = 0;
  {
    Device dev(cfg);
    for (std::uint32_t v = 2; v + 2 < dev.geometry().rows; v += 5) {
      dev.hammer(0, v + 1, 200'000, Time::ms(0));
      dev.activate(0, v, Time::ms(50));
      dev.precharge(0, Time::ms(50));
    }
    flips_single = dev.stats().disturb_flips;
  }
  {
    Device dev(cfg);
    for (std::uint32_t v = 2; v + 2 < dev.geometry().rows; v += 5) {
      dev.hammer(0, v - 1, 200'000, Time::ms(0));
      dev.hammer(0, v + 1, 200'000, Time::ms(0));
      dev.activate(0, v, Time::ms(50));
      dev.precharge(0, Time::ms(50));
    }
    flips_double = dev.stats().disturb_flips;
  }
  EXPECT_GT(flips_double, flips_single);
}

TEST(Device, DataPatternDependence) {
  // A cell with nonzero DPD sensitivity flips at lower stress when its
  // aggressor neighbours store antiparallel data.
  DeviceConfig cfg = vulnerable_config(17);
  cfg.reliability.dpd_sensitivity_mean = 0.8;
  Device probe(cfg);
  // Find a true cell with strong sensitivity.
  std::optional<FoundCell> strong;
  for (std::uint32_t r : probe.fault_map().weak_rows(0)) {
    if (r < 2 || r + 2 >= probe.geometry().rows) continue;
    for (const WeakCell& c : probe.fault_map().weak_cells(0, r))
      if (!c.anti_cell && c.dpd_sens > 0.6) strong = FoundCell{r, c};
  }
  ASSERT_TRUE(strong.has_value());
  const auto [victim, cell] = *strong;
  // Stress 1.2x threshold: flips with antiparallel neighbours (factor 1)
  // but not with parallel ones (factor 1 - dpd_sens <= 0.4).
  const auto stress = static_cast<std::uint64_t>(cell.threshold * 1.2);

  auto run = [&](bool antiparallel) {
    Device dev(cfg);  // pattern ones: victim stores 1
    if (antiparallel) {
      std::vector<std::uint64_t> zeros(dev.geometry().row_words(), 0);
      dev.fill_row(0, victim - 1, zeros, Time::ms(0));
      dev.fill_row(0, victim + 1, zeros, Time::ms(0));
    }
    dev.hammer(0, victim - 1, stress / 2, Time::ms(0));
    dev.hammer(0, victim + 1, stress / 2, Time::ms(0));
    dev.activate(0, victim, Time::ms(50));
    const auto snap = dev.snapshot_row(0, victim);
    return ((snap[cell.bit / 64] >> (cell.bit % 64)) & 1) == 0;  // flipped?
  };
  EXPECT_TRUE(run(/*antiparallel=*/true));
  EXPECT_FALSE(run(/*antiparallel=*/false));
}

TEST(Device, Distance2CouplingIsWeak) {
  DeviceConfig cfg = vulnerable_config(19);
  cfg.reliability.distance2_weight = 0.05;
  Device dev(cfg);
  const auto found = find_true_weak_cell(dev);
  ASSERT_TRUE(found.has_value());
  const std::uint32_t victim = found->row;
  // Hammer at distance 2 with stress that would flip at distance 1.
  const auto n = static_cast<std::uint64_t>(found->cell.threshold * 2);
  ASSERT_GE(victim, 2u);
  dev.hammer(0, victim - 2, n, Time::ms(0));
  const std::uint32_t prow = dev.remap().to_physical(victim);
  EXPECT_NEAR(dev.stress_of_physical(0, prow), 0.05 * static_cast<double>(n),
              1.0);
}

TEST(Device, FlipEventsRecorded) {
  Device dev(vulnerable_config());
  const auto found = find_true_weak_cell(dev);
  ASSERT_TRUE(found.has_value());
  make_aggressors_antiparallel(dev, found->row);
  dev.hammer(0, found->row - 1,
             static_cast<std::uint64_t>(found->cell.threshold) + 1000,
             Time::ms(0));
  dev.activate(0, found->row, Time::ms(50));
  ASSERT_FALSE(dev.flip_events().empty());
  const auto& ev = dev.flip_events().front();
  EXPECT_EQ(ev.logical_row, found->row);
  EXPECT_EQ(ev.cause, FlipCause::kDisturbance);
  EXPECT_EQ(ev.when, Time::ms(50));
}

TEST(Device, RemapMovesPhysicalVictims) {
  // Under a scramble remap, hammering logical rows v±1 does not stress the
  // logical victim v: the attacker's logical-adjacency assumption breaks.
  DeviceConfig cfg = vulnerable_config(23);
  cfg.remap = RemapScheme::kScramble;
  Device dev(cfg);
  const std::uint32_t v = 100;
  dev.hammer(0, v - 1, 100'000, Time::ms(0));
  dev.hammer(0, v + 1, 100'000, Time::ms(0));
  const std::uint32_t pv = dev.remap().to_physical(v);
  EXPECT_EQ(dev.stress_of_physical(0, pv), 0.0);
  // The SPD disclosure names the rows that DID get stressed.
  for (std::uint32_t n : dev.spd_neighbors(v - 1)) {
    const std::uint32_t pn = dev.remap().to_physical(n);
    EXPECT_GT(dev.stress_of_physical(0, pn), 0.0);
  }
}

TEST(Device, WriteClearsFlippedCell) {
  Device dev(vulnerable_config());
  const auto found = find_true_weak_cell(dev);
  ASSERT_TRUE(found.has_value());
  const auto [victim, cell] = *found;
  make_aggressors_antiparallel(dev, victim);
  dev.hammer(0, victim - 1,
             static_cast<std::uint64_t>(cell.threshold) + 1000, Time::ms(0));
  dev.activate(0, victim, Time::ms(40));
  dev.write_word(0, cell.bit / 64, ~std::uint64_t{0});
  EXPECT_EQ(dev.read_word(0, cell.bit / 64), ~std::uint64_t{0});
  dev.precharge(0, Time::ms(40));
}

TEST(Device, RefreshNextWrapsAround) {
  DeviceConfig cfg = vulnerable_config();
  cfg.reliability.weak_cell_density = 0.0;
  Device dev(cfg);
  const std::uint32_t rows = dev.geometry().rows;
  dev.refresh_next(0, rows + 10, Time::ms(1));
  EXPECT_EQ(dev.stats().row_refreshes, rows + 10);
}

TEST(Device, FillAllResetsState) {
  Device dev(vulnerable_config());
  dev.hammer(0, 100, 500'000, Time::ms(0));
  dev.fill_all(BackgroundPattern::kZeros, Time::ms(1));
  EXPECT_EQ(dev.stress_of_physical(0, dev.remap().to_physical(99)), 0.0);
  EXPECT_EQ(dev.snapshot_row(0, 5)[0], 0u);
}

}  // namespace
}  // namespace densemem::dram
