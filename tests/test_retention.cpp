// Retention-failure model tests (§III-A1: DPD, VRT, refresh-rate coupling).
#include <gtest/gtest.h>

#include <optional>

#include "dram/device.h"

namespace densemem::dram {
namespace {

DeviceConfig leaky_config(std::uint64_t seed = 5) {
  DeviceConfig cfg;
  cfg.geometry = Geometry::tiny();
  cfg.reliability = ReliabilityParams::leaky();
  cfg.reliability.leaky_cell_density = 2e-3;
  cfg.reliability.vrt_fraction = 0.0;
  cfg.reliability.retention_dpd_strength = 0.0;
  cfg.seed = seed;
  cfg.pattern = BackgroundPattern::kOnes;
  cfg.record_flip_events = true;
  return cfg;
}

struct FoundLeaky {
  std::uint32_t row;
  LeakyCell cell;
};
std::optional<FoundLeaky> find_true_leaky(Device& dev, float max_ms,
                                          float min_ms = 0.0f) {
  for (std::uint32_t r : dev.fault_map().leaky_rows(0)) {
    if (r < 2 || r + 2 >= dev.geometry().rows) continue;
    for (const LeakyCell& c : dev.fault_map().leaky_cells(0, r))
      if (!c.anti_cell && !c.vrt && c.retention_ms < max_ms &&
          c.retention_ms > min_ms)
        return FoundLeaky{r, c};
  }
  return std::nullopt;
}

TEST(Retention, CellFlipsAfterItsRetentionTime) {
  Device dev(leaky_config());
  const auto found = find_true_leaky(dev, 500.0f);
  ASSERT_TRUE(found.has_value());
  const auto [row, cell] = *found;
  // Restore at t=0 (fill), then wait past the retention time.
  const Time expiry =
      Time::ms(static_cast<std::int64_t>(cell.retention_ms) + 10);
  dev.activate(0, row, expiry);
  dev.precharge(0, expiry);
  const auto snap = dev.snapshot_row(0, row);
  EXPECT_EQ((snap[cell.bit / 64] >> (cell.bit % 64)) & 1, 0u);
  EXPECT_GE(dev.stats().retention_flips, 1u);
}

TEST(Retention, NoFlipBeforeRetentionTime) {
  Device dev(leaky_config());
  const auto found = find_true_leaky(dev, 10'000.0f, 100.0f);
  ASSERT_TRUE(found.has_value());
  const auto [row, cell] = *found;
  const Time early = Time::ms(static_cast<std::int64_t>(cell.retention_ms / 2));
  dev.activate(0, row, early);
  dev.precharge(0, early);
  const auto snap = dev.snapshot_row(0, row);
  EXPECT_EQ((snap[cell.bit / 64] >> (cell.bit % 64)) & 1, 1u);
}

TEST(Retention, RefreshPreventsDecay) {
  Device dev(leaky_config());
  const auto found = find_true_leaky(dev, 1000.0f, 64.0f);
  ASSERT_TRUE(found.has_value());
  const auto [row, cell] = *found;
  // Refresh every 64 ms (standard window) until well past the retention
  // time: the cell must survive because each refresh restores charge.
  const auto horizon =
      static_cast<std::int64_t>(cell.retention_ms * 3.0) + 128;
  for (std::int64_t t = 0; t < horizon; t += 32) {
    dev.refresh_row(0, row, Time::ms(t));
  }
  dev.activate(0, row, Time::ms(horizon));
  dev.precharge(0, Time::ms(horizon));
  const auto snap = dev.snapshot_row(0, row);
  EXPECT_EQ((snap[cell.bit / 64] >> (cell.bit % 64)) & 1, 1u)
      << "the refreshed cell must survive (other, leakier cells of the row "
         "may still fail — only this cell's retention exceeds the cadence)";
}

TEST(Retention, DischargedOrientationDoesNotDecay) {
  // All-zeros data: true cells are discharged, so without anti-cells no
  // retention flip is possible regardless of elapsed time.
  DeviceConfig cfg = leaky_config();
  cfg.pattern = BackgroundPattern::kZeros;
  cfg.reliability.anticell_fraction = 0.0;
  Device dev(cfg);
  for (std::uint32_t r : dev.fault_map().leaky_rows(0)) {
    dev.refresh_row(0, r, Time::s(100));  // commits any pending decay
  }
  EXPECT_EQ(dev.stats().retention_flips, 0u);
}

TEST(Retention, DpdShortensEffectiveRetention) {
  DeviceConfig cfg = leaky_config(11);
  cfg.reliability.retention_dpd_strength = 0.5;
  Device probe(cfg);
  // Find a strongly pattern-sensitive leaky cell.
  std::optional<FoundLeaky> strong;
  for (std::uint32_t r : probe.fault_map().leaky_rows(0)) {
    if (r < 2 || r + 2 >= probe.geometry().rows) continue;
    for (const LeakyCell& c : probe.fault_map().leaky_cells(0, r))
      if (!c.anti_cell && !c.vrt && c.dpd_sens > 0.7 &&
          c.retention_ms > 50.0f && c.retention_ms < 5000.0f)
        strong = FoundLeaky{r, c};
  }
  ASSERT_TRUE(strong.has_value());
  const auto [row, cell] = *strong;
  // Evaluate at a time between the DPD-shortened retention and the nominal
  // one: flips only when neighbours are antiparallel.
  const double shortened =
      cell.retention_ms * (1.0 - 0.5 * cell.dpd_sens);
  const Time probe_t =
      Time::ms(static_cast<std::int64_t>((shortened + cell.retention_ms) / 2));

  auto run = [&](bool antiparallel) {
    Device dev(cfg);
    if (antiparallel) {
      std::vector<std::uint64_t> zeros(dev.geometry().row_words(), 0);
      dev.fill_row(0, row - 1, zeros, Time::ms(0));
      dev.fill_row(0, row + 1, zeros, Time::ms(0));
    }
    dev.activate(0, row, probe_t);
    const auto snap = dev.snapshot_row(0, row);
    return ((snap[cell.bit / 64] >> (cell.bit % 64)) & 1) == 0;
  };
  EXPECT_TRUE(run(true));
  EXPECT_FALSE(run(false));
}

TEST(Retention, VrtCellsToggleBehaviour) {
  // A VRT cell whose low state is leaky and high state safe must fail in
  // some profiling windows and pass in others — the "no way to determine a
  // cell exhibits VRT" phenomenon. Track one row so aggregate noise from
  // other cells cannot mask the toggling.
  DeviceConfig cfg = leaky_config(13);
  cfg.reliability.leaky_cell_density = 1e-4;  // sparse: single-cell rows exist
  cfg.reliability.vrt_fraction = 1.0;
  cfg.reliability.vrt_rate_hz = 2.0;  // fast toggling for the test
  cfg.reliability.retention_mu_log_ms = 4.0;  // leaky: ~55 ms median
  cfg.reliability.retention_sigma = 0.3;
  Device dev(cfg);
  // Find a row whose VRT cells are all leaky within the 256 ms window when
  // in the low state (and safe in the 50x high state).
  // A row with exactly one such cell: with several VRT cells, the chance
  // that all of them sit in the safe state simultaneously vanishes and the
  // row would fail every window.
  std::uint32_t row = 0;
  for (std::uint32_t r : dev.fault_map().leaky_rows(0)) {
    if (r < 2 || r + 2 >= dev.geometry().rows) continue;
    const auto& cells = dev.fault_map().leaky_cells(0, r);
    if (cells.size() == 1 && !cells[0].anti_cell &&
        cells[0].retention_ms < 200.0f) {
      row = r;
      break;
    }
  }
  ASSERT_NE(row, 0u);
  int windows_with_flip = 0, windows_without = 0;
  Time t = Time::ms(0);
  std::vector<std::uint64_t> ones(dev.geometry().row_words(), ~std::uint64_t{0});
  dev.fill_row(0, row, ones, t);
  for (int w = 0; w < 80; ++w) {
    const std::uint64_t before = dev.stats().retention_flips;
    t += Time::ms(256);
    dev.refresh_row(0, row, t);
    dev.fill_row(0, row, ones, t);  // recharge for the next window
    if (dev.stats().retention_flips > before)
      ++windows_with_flip;
    else
      ++windows_without;
  }
  EXPECT_GT(windows_with_flip, 0) << "VRT cells never failed";
  EXPECT_GT(windows_without, 0) << "VRT cells failed every window (no VRT)";
}

TEST(Retention, LongerWaitsNeverReduceFlips) {
  // Monotonicity property: strictly longer refresh intervals can only add
  // retention failures, never remove them.
  std::uint64_t prev = 0;
  for (const std::int64_t wait_ms : {64, 256, 1024, 4096, 16384}) {
    DeviceConfig cfg = leaky_config(21);
    Device dev(cfg);
    for (std::uint32_t r : dev.fault_map().leaky_rows(0))
      dev.refresh_row(0, r, Time::ms(wait_ms));
    EXPECT_GE(dev.stats().retention_flips, prev) << "wait " << wait_ms;
    prev = dev.stats().retention_flips;
  }
}

}  // namespace
}  // namespace densemem::dram
