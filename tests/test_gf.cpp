#include "ecc/gf.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace densemem::ecc {
namespace {

class GfFieldTest : public ::testing::TestWithParam<int> {};

TEST_P(GfFieldTest, MultiplicativeGroupOrder) {
  GF2m f(GetParam());
  // alpha generates the full multiplicative group: alpha^n == 1 and no
  // smaller positive power is 1 for a primitive polynomial.
  EXPECT_EQ(f.alpha_pow(f.n()), 1u);
  EXPECT_EQ(f.alpha_pow(0), 1u);
  EXPECT_NE(f.alpha_pow(1), 1u);
}

TEST_P(GfFieldTest, InverseRoundTrip) {
  GF2m f(GetParam());
  for (std::uint32_t a = 1; a <= std::min<std::uint32_t>(f.n(), 200); ++a) {
    EXPECT_EQ(f.mul(a, f.inv(a)), 1u) << "a=" << a;
  }
}

TEST_P(GfFieldTest, DistributiveLaw) {
  GF2m f(GetParam());
  const std::uint32_t n = f.n();
  for (std::uint32_t a = 1; a < 20 && a <= n; ++a)
    for (std::uint32_t b = 1; b < 20 && b <= n; ++b)
      for (std::uint32_t c = 1; c < 20 && c <= n; ++c)
        EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
}

TEST_P(GfFieldTest, FrobeniusSquaring) {
  GF2m f(GetParam());
  // (a + b)^2 == a^2 + b^2 in characteristic 2.
  for (std::uint32_t a = 1; a < 50 && a <= f.n(); a += 3)
    for (std::uint32_t b = 1; b < 50 && b <= f.n(); b += 7)
      EXPECT_EQ(f.pow(f.add(a, b), 2), f.add(f.pow(a, 2), f.pow(b, 2)));
}

INSTANTIATE_TEST_SUITE_P(Fields, GfFieldTest,
                         ::testing::Values(3, 4, 8, 10, 12, 16));

TEST(Gf, MulByZero) {
  GF2m f(8);
  EXPECT_EQ(f.mul(0, 17), 0u);
  EXPECT_EQ(f.mul(17, 0), 0u);
}

TEST(Gf, DivAndInvRejectZero) {
  GF2m f(8);
  EXPECT_THROW(f.inv(0), CheckError);
  EXPECT_THROW(f.div(1, 0), CheckError);
  EXPECT_EQ(f.div(0, 5), 0u);
}

TEST(Gf, LogExpConsistency) {
  GF2m f(10);
  for (std::uint32_t a = 1; a < 100; ++a)
    EXPECT_EQ(f.alpha_pow(f.log(a)), a);
}

TEST(Gf, NegativeExponent) {
  GF2m f(6);
  EXPECT_EQ(f.mul(f.alpha_pow(-5), f.alpha_pow(5)), 1u);
}

TEST(Gf, PolyEvalHorner) {
  GF2m f(4);
  // p(x) = x^2 + x + 1 at x = alpha: alpha^2 ^ alpha ^ 1
  const std::vector<std::uint32_t> p{1, 1, 1};
  const std::uint32_t alpha = f.alpha_pow(1);
  EXPECT_EQ(f.poly_eval(p, alpha),
            f.add(f.add(f.pow(alpha, 2), alpha), 1u));
  EXPECT_EQ(f.poly_eval(p, 0), 1u);
}

TEST(Gf, UnsupportedDegreeThrows) {
  EXPECT_THROW(GF2m(1), CheckError);
  EXPECT_THROW(GF2m(17), CheckError);
}

}  // namespace
}  // namespace densemem::ecc
