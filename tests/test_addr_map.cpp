#include "dram/addr_map.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace densemem::dram {
namespace {

Geometry pow2_geometry() { return Geometry{2, 1, 8, 1024, 1024}; }

struct MapCase {
  Interleave policy;
  bool hash;
};
class AddrMapRoundTrip : public ::testing::TestWithParam<MapCase> {};

TEST_P(AddrMapRoundTrip, EncodeDecodeAreInverse) {
  const auto [policy, hash] = GetParam();
  AddressMap map(pow2_geometry(), policy, hash);
  Rng rng(hash_coords(static_cast<std::uint64_t>(policy), hash));
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t addr =
        rng.uniform_int(map.capacity_bytes() / 8) * 8;  // word aligned
    const Address a = map.decode(addr);
    ASSERT_EQ(map.encode(a), addr);
    ASSERT_LT(a.channel, map.geometry().channels);
    ASSERT_LT(a.bank, map.geometry().banks);
    ASSERT_LT(a.row, map.geometry().rows);
    ASSERT_LT(a.col_word, map.geometry().row_words());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, AddrMapRoundTrip,
    ::testing::Values(MapCase{Interleave::kRowBankCol, false},
                      MapCase{Interleave::kRowBankCol, true},
                      MapCase{Interleave::kBankColInterleave, false},
                      MapCase{Interleave::kBankColInterleave, true}));

TEST(AddrMap, RowBankColKeepsStreamsInOneRow) {
  AddressMap map(pow2_geometry(), Interleave::kRowBankCol);
  // 1 KiB row: 1024 consecutive bytes share (channel,bank,row).
  const Address first = map.decode(0);
  for (std::uint64_t b = 8; b < 1024; b += 8) {
    const Address a = map.decode(b);
    EXPECT_EQ(a.row, first.row);
    EXPECT_EQ(a.bank, first.bank);
    EXPECT_EQ(a.channel, first.channel);
  }
  // The next kilobyte moves somewhere else.
  EXPECT_NE(map.decode(1024), first);
}

TEST(AddrMap, InterleavePolicyStripesCacheLines) {
  AddressMap map(pow2_geometry(), Interleave::kBankColInterleave);
  // Consecutive 64-byte lines alternate channels, then banks.
  const Address l0 = map.decode(0);
  const Address l1 = map.decode(64);
  EXPECT_NE(l0.channel, l1.channel);
  std::set<std::uint32_t> banks;
  for (std::uint64_t line = 0; line < 16; ++line)
    banks.insert(map.decode(line * 64).bank);
  EXPECT_EQ(banks.size(), 8u) << "16 lines must touch every bank";
}

TEST(AddrMap, AdjacentRowsAreFarApartInPhysicalSpace) {
  // The §II-A point: two DRAM-adjacent rows of one bank are many pages
  // apart in the physical address space (attacker needs the map to find
  // them).
  AddressMap map(pow2_geometry(), Interleave::kRowBankCol);
  Address a = map.decode(0);
  Address b = a;
  b.row = a.row + 1;
  const std::uint64_t dist = map.encode(b) - map.encode(a);
  EXPECT_GE(dist, 16u * 1024u);  // >= banks x channels x row size
}

TEST(AddrMap, XorHashDecorrelatesBankFromRow) {
  // Without the hash, bit flips in the row leave the bank unchanged; with
  // it, stepping the row permutes the bank (defeating naive probing).
  // Decode the SAME physical addresses (fixed bank field, stepped row
  // field) under both maps: the plain map pins the bank, the hashed map
  // spreads it across all banks.
  AddressMap plain(pow2_geometry(), Interleave::kRowBankCol, false);
  AddressMap hashed(pow2_geometry(), Interleave::kRowBankCol, true);
  std::set<std::uint32_t> plain_banks, hashed_banks;
  for (std::uint32_t row = 0; row < 8; ++row) {
    const std::uint64_t addr = plain.encode({0, 0, 3, row, 0});
    plain_banks.insert(plain.decode(addr).bank);
    hashed_banks.insert(hashed.decode(addr).bank);
  }
  EXPECT_EQ(plain_banks.size(), 1u);
  EXPECT_EQ(hashed_banks.size(), 8u);
}

TEST(AddrMap, RejectsNonPowerOfTwo) {
  Geometry g = pow2_geometry();
  g.rows = 1000;
  EXPECT_THROW(AddressMap(g, Interleave::kRowBankCol), CheckError);
}

TEST(AddrMap, RejectsOutOfRange) {
  AddressMap map(pow2_geometry(), Interleave::kRowBankCol);
  EXPECT_THROW(map.decode(map.capacity_bytes()), CheckError);
  Address a{0, 0, 0, pow2_geometry().rows, 0};
  EXPECT_THROW(map.encode(a), CheckError);
}

TEST(AddrMap, FullBijectionOnSmallGeometry) {
  const Geometry g{1, 1, 2, 16, 128};
  for (const auto policy :
       {Interleave::kRowBankCol, Interleave::kBankColInterleave}) {
    AddressMap map(g, policy, true);
    std::set<std::uint64_t> seen;
    for (std::uint32_t bank = 0; bank < g.banks; ++bank)
      for (std::uint32_t row = 0; row < g.rows; ++row)
        for (std::uint32_t w = 0; w < g.row_words(); ++w) {
          const std::uint64_t addr = map.encode({0, 0, bank, row, w});
          ASSERT_TRUE(seen.insert(addr).second) << "address collision";
          ASSERT_LT(addr, map.capacity_bytes());
        }
    EXPECT_EQ(seen.size(), g.bytes_total() / 8);
  }
}

}  // namespace
}  // namespace densemem::dram
