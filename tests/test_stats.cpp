#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/check.h"

#include <cmath>

#include "common/rng.h"

namespace densemem {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  Rng rng(3);
  RunningStats a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, BinningAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(0.99);
  h.add(5.0);
  h.add(9.999);
  h.add(10.0);
  h.add(100.0, 3);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 9u);
  EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(5), 6.0);
}

TEST(Histogram, RejectsDegenerate) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), CheckError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), CheckError);
}

TEST(QuantileSet, MedianAndInterpolation) {
  QuantileSet q;
  for (double x : {1.0, 2.0, 3.0, 4.0}) q.add(x);
  EXPECT_DOUBLE_EQ(q.median(), 2.5);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0 / 3.0), 2.0);
}

TEST(QuantileSet, SingleSample) {
  QuantileSet q;
  q.add(7.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.3), 7.0);
}

TEST(QuantileSet, EmptyThrows) {
  QuantileSet q;
  EXPECT_THROW(q.median(), CheckError);
}

TEST(CountTally, FractionAtLeast) {
  CountTally t;
  t.add(0, 90);
  t.add(1, 8);
  t.add(2, 1);
  t.add(5, 1);
  EXPECT_EQ(t.total(), 100u);
  EXPECT_DOUBLE_EQ(t.fraction_at_least(1), 0.10);
  EXPECT_DOUBLE_EQ(t.fraction_at_least(2), 0.02);
  EXPECT_DOUBLE_EQ(t.fraction_at_least(6), 0.0);
  EXPECT_EQ(t.at(5), 1u);
  EXPECT_EQ(t.at(3), 0u);
}

TEST(WilsonInterval, BracketsTrueProportion) {
  // 50 successes of 100: interval must contain 0.5 and be inside [0,1].
  const auto ci = wilson_interval(50, 100);
  EXPECT_NEAR(ci.p, 0.5, 1e-12);
  EXPECT_LT(ci.lo, 0.5);
  EXPECT_GT(ci.hi, 0.5);
  EXPECT_GE(ci.lo, 0.0);
  EXPECT_LE(ci.hi, 1.0);
}

TEST(WilsonInterval, ZeroSuccessesStillPositiveWidth) {
  const auto ci = wilson_interval(0, 1000);
  EXPECT_DOUBLE_EQ(ci.p, 0.0);
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);
  EXPECT_GT(ci.hi, 0.0);
  EXPECT_LT(ci.hi, 0.01);
}

TEST(WilsonInterval, NoTrials) {
  const auto ci = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);
  EXPECT_DOUBLE_EQ(ci.hi, 1.0);
}

}  // namespace
}  // namespace densemem
