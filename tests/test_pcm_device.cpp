#include "pcm/device.h"

#include <gtest/gtest.h>

namespace densemem::pcm {
namespace {

PcmDevice small_device(std::uint64_t seed = 3, double endurance = 1000.0) {
  PcmParams p;
  p.endurance_median = endurance;
  return PcmDevice({64, 16}, p, seed);
}

std::vector<std::uint8_t> pattern_line(std::uint32_t cells, int phase = 0) {
  std::vector<std::uint8_t> v(cells);
  for (std::uint32_t c = 0; c < cells; ++c)
    v[c] = static_cast<std::uint8_t>((c + phase) % 4);
  return v;
}

TEST(PcmDevice, FreshReadBackMatches) {
  auto dev = small_device();
  const auto data = pattern_line(16);
  ASSERT_TRUE(dev.write_line(5, data, 0.0));
  EXPECT_EQ(dev.read_line(5, 0.0), data);
}

TEST(PcmDevice, EnduranceIsDeterministicAndVaried) {
  auto a = small_device(7), b = small_device(7);
  std::uint64_t lo = ~0ull, hi = 0;
  for (std::uint32_t l = 0; l < 64; ++l) {
    EXPECT_EQ(a.endurance_of(l), b.endurance_of(l));
    lo = std::min(lo, a.endurance_of(l));
    hi = std::max(hi, a.endurance_of(l));
  }
  EXPECT_LT(lo, 1000u);
  EXPECT_GT(hi, 1000u);
  EXPECT_EQ(a.min_endurance(), lo);
}

TEST(PcmDevice, LineFailsAtItsEndurance) {
  auto dev = small_device(9);
  const std::uint32_t line = 3;
  const auto e = dev.endurance_of(line);
  const auto data = pattern_line(16);
  for (std::uint64_t w = 0; w + 1 < e; ++w)
    ASSERT_TRUE(dev.write_line(line, data, 0.0)) << "write " << w;
  EXPECT_FALSE(dev.line_failed(line));
  EXPECT_FALSE(dev.write_line(line, data, 0.0));  // crosses the endurance
  EXPECT_TRUE(dev.line_failed(line));
  EXPECT_EQ(dev.stats().failed_lines, 1u);
}

TEST(PcmDevice, FailedLineCorruptsReads) {
  auto dev = small_device(11, 50.0);
  const std::uint32_t line = 0;
  const auto data = pattern_line(16, 1);
  std::uint64_t w = 0;
  while (dev.write_line(line, data, 0.0)) ++w;
  const auto readback = dev.read_line(line, 0.0);
  EXPECT_NE(readback, data) << "stuck line must corrupt data";
}

TEST(PcmDevice, DriftRaisesResistanceOverTime) {
  auto dev = small_device(13);
  std::vector<std::uint8_t> levels(16, 2);  // amorphous-ish mid level
  dev.write_line(1, levels, 0.0);
  const double r0 = dev.cell_log_r(1, 4, 1.0);
  const double r1 = dev.cell_log_r(1, 4, 1e5);
  const double r2 = dev.cell_log_r(1, 4, 1e8);
  EXPECT_LE(r0, r1);
  EXPECT_LT(r1, r2);
}

TEST(PcmDevice, CrystallineLevelDoesNotDrift) {
  auto dev = small_device(13);
  std::vector<std::uint8_t> levels(16, 0);
  dev.write_line(2, levels, 0.0);
  EXPECT_DOUBLE_EQ(dev.cell_log_r(2, 0, 1e9), dev.cell_log_r(2, 0, 0.0));
}

TEST(PcmDevice, DriftEventuallyCausesMlcReadErrors) {
  // Level-2 cells drift into the level-3 band after long enough: the MLC
  // margin erosion of §III's emerging-memory discussion.
  PcmParams p;
  p.endurance_median = 1e9;
  p.drift_nu_mean = 0.1;  // aggressive drifters
  PcmDevice dev({8, 256}, p, 17);
  std::vector<std::uint8_t> levels(256, 2);
  dev.write_line(0, levels, 0.0);
  const auto fresh = dev.read_line(0, 1.0);
  std::size_t fresh_errors = 0, aged_errors = 0;
  const auto aged = dev.read_line(0, 3.0e8);  // ~10 years
  for (std::uint32_t c = 0; c < 256; ++c) {
    fresh_errors += fresh[c] != 2;
    aged_errors += aged[c] != 2;
  }
  EXPECT_EQ(fresh_errors, 0u);
  EXPECT_GT(aged_errors, 0u);
  // Drift only raises levels: misreads land at 3, never below 2.
  for (std::uint32_t c = 0; c < 256; ++c) EXPECT_GE(aged[c], 2);
}

TEST(PcmDevice, RewriteResetsDriftClock) {
  PcmParams p;
  p.drift_nu_mean = 0.1;
  PcmDevice dev({8, 16}, p, 19);
  std::vector<std::uint8_t> levels(16, 2);
  dev.write_line(0, levels, 0.0);
  const double aged = dev.cell_log_r(0, 3, 1e8);
  dev.write_line(0, levels, 1e8);  // scrub-style rewrite at t = 1e8
  const double refreshed = dev.cell_log_r(0, 3, 1e8 + 1.0);
  EXPECT_LT(refreshed, aged);
}

TEST(PcmDevice, BoundsChecked) {
  auto dev = small_device();
  const auto data = pattern_line(16);
  EXPECT_THROW(dev.write_line(64, data, 0.0), CheckError);
  EXPECT_THROW(dev.write_line(0, pattern_line(15), 0.0), CheckError);
  EXPECT_THROW(dev.read_line(64, 0.0), CheckError);
}

}  // namespace
}  // namespace densemem::pcm
