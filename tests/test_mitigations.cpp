#include <gtest/gtest.h>

#include "core/system.h"

namespace densemem::core {
namespace {

using ctrl::CtrlConfig;
using ctrl::EccMode;
using dram::BackgroundPattern;
using dram::DeviceConfig;
using dram::Geometry;
using dram::ReliabilityParams;

DeviceConfig hammerable_device(std::uint64_t seed = 61) {
  DeviceConfig cfg;
  cfg.geometry = Geometry::tiny();
  cfg.reliability = ReliabilityParams::vulnerable();
  cfg.reliability.weak_cell_density = 1e-3;
  cfg.reliability.hc50 = 15e3;
  cfg.reliability.hc_sigma = 0.3;
  cfg.reliability.dpd_sensitivity_mean = 0.0;
  cfg.reliability.anticell_fraction = 0.0;
  cfg.seed = seed;
  cfg.pattern = BackgroundPattern::kOnes;
  return cfg;
}

// Double-sided hammer through the controller so the mitigation sees every
// activate/precharge; returns raw flips.
std::uint64_t run_double_sided(System& sys, std::uint32_t victim,
                               std::uint64_t iterations) {
  for (std::uint64_t i = 0; i < iterations; ++i) {
    sys.mc().activate_precharge(0, victim - 1);
    sys.mc().activate_precharge(0, victim + 1);
  }
  sys.mc().activate_precharge(0, victim);  // commit
  return sys.dev().stats().disturb_flips;
}

std::uint32_t weak_victim(dram::Device& dev) {
  for (std::uint32_t r : dev.fault_map().weak_rows(0))
    if (r >= 2 && r + 2 < dev.geometry().rows) return r;
  return 0;
}

TEST(Mitigations, BaselineFlips) {
  auto sys = make_system(hammerable_device(), CtrlConfig{}, {});
  const std::uint32_t victim = weak_victim(sys.dev());
  ASSERT_NE(victim, 0u);
  EXPECT_GT(run_double_sided(sys, victim, 40'000), 0u);
}

class ParaProbabilityTest : public ::testing::TestWithParam<double> {};

TEST_P(ParaProbabilityTest, SufficientProbabilityPreventsFlips) {
  MitigationSpec spec;
  spec.kind = MitigationKind::kPara;
  spec.para.probability = GetParam();
  auto sys = make_system(hammerable_device(), CtrlConfig{}, spec);
  const std::uint32_t victim = weak_victim(sys.dev());
  ASSERT_NE(victim, 0u);
  // p=0.01 over 15k-threshold cells: expected unbroken run needed is ~100x
  // shorter than the threshold — protection should be total.
  EXPECT_EQ(run_double_sided(sys, victim, 40'000), 0u);
  EXPECT_GT(sys.mc().stats().targeted_refreshes, 0u);
}

// Note the cap: PARA's own targeted refreshes are activations, so an
// absurdly high p would itself hammer rows at distance 2-3 from the
// aggressors (the Half-Double effect). Realistic p stays tiny.
INSTANTIATE_TEST_SUITE_P(Probabilities, ParaProbabilityTest,
                         ::testing::Values(0.005, 0.02, 0.05));

TEST(Mitigations, ParaWithNegligibleProbabilityFails) {
  MitigationSpec spec;
  spec.kind = MitigationKind::kPara;
  spec.para.probability = 1e-6;  // effectively no protection at this scale
  auto sys = make_system(hammerable_device(), CtrlConfig{}, spec);
  const std::uint32_t victim = weak_victim(sys.dev());
  ASSERT_NE(victim, 0u);
  EXPECT_GT(run_double_sided(sys, victim, 40'000), 0u);
}

TEST(Mitigations, ParaOverheadScalesWithP) {
  for (const double p : {0.001, 0.01}) {
    MitigationSpec spec;
    spec.kind = MitigationKind::kPara;
    spec.para.probability = p;
    auto sys = make_system(hammerable_device(), CtrlConfig{}, spec);
    run_double_sided(sys, 100, 20'000);
    const double expected = 2.0 * 20'000 * p * 2.0;  // closes × p × 2 rows
    EXPECT_NEAR(static_cast<double>(sys.mc().stats().targeted_refreshes),
                expected, expected * 0.35 + 10);
  }
}

TEST(Mitigations, CraDeterministicProtection) {
  MitigationSpec spec;
  spec.kind = MitigationKind::kCra;
  spec.cra.threshold = 4096;  // well below the 15k cell threshold
  auto sys = make_system(hammerable_device(), CtrlConfig{}, spec);
  const std::uint32_t victim = weak_victim(sys.dev());
  ASSERT_NE(victim, 0u);
  EXPECT_EQ(run_double_sided(sys, victim, 40'000), 0u);
  // Counter-based: refreshes fire exactly every `threshold` activations.
  EXPECT_NEAR(static_cast<double>(sys.mc().stats().targeted_refreshes),
              2.0 * (40'000.0 / 4096.0) * 2.0, 8.0);
}

TEST(Mitigations, CraStorageCostIsPerRow) {
  MitigationSpec spec;
  spec.kind = MitigationKind::kCra;
  spec.cra.counter_bits = 16;
  auto sys = make_system(hammerable_device(), CtrlConfig{}, spec);
  // tiny: 2 banks x 512 rows = 1024 rows x 16 bits.
  EXPECT_EQ(sys.mc().mitigation().storage_bits(), 1024u * 16u);
}

TEST(Mitigations, ParaHasZeroStorage) {
  MitigationSpec spec;
  spec.kind = MitigationKind::kPara;
  auto sys = make_system(hammerable_device(), CtrlConfig{}, spec);
  EXPECT_EQ(sys.mc().mitigation().storage_bits(), 0u);
}

TEST(Mitigations, AnvilDetectsConcentratedHammer) {
  MitigationSpec spec;
  spec.kind = MitigationKind::kAnvil;
  spec.anvil.sample_rate = 0.05;
  spec.anvil.detect_samples = 32;
  auto sys = make_system(hammerable_device(), CtrlConfig{}, spec);
  const std::uint32_t victim = weak_victim(sys.dev());
  ASSERT_NE(victim, 0u);
  EXPECT_EQ(run_double_sided(sys, victim, 40'000), 0u);
  auto& anvil = dynamic_cast<ctrl::Anvil&>(sys.mc().mitigation());
  EXPECT_GT(anvil.interventions(), 0u);
}

TEST(Mitigations, AnvilLowSamplingMisses) {
  MitigationSpec spec;
  spec.kind = MitigationKind::kAnvil;
  spec.anvil.sample_rate = 0.0001;  // detection latency exceeds threshold
  spec.anvil.detect_samples = 64;
  auto sys = make_system(hammerable_device(), CtrlConfig{}, spec);
  const std::uint32_t victim = weak_victim(sys.dev());
  ASSERT_NE(victim, 0u);
  EXPECT_GT(run_double_sided(sys, victim, 40'000), 0u);
}

TEST(Mitigations, TrrStopsDoubleSided) {
  MitigationSpec spec;
  spec.kind = MitigationKind::kTrr;
  spec.trr.tracker_entries = 4;
  auto sys = make_system(hammerable_device(), CtrlConfig{}, spec);
  const std::uint32_t victim = weak_victim(sys.dev());
  ASSERT_NE(victim, 0u);
  // Two aggressors fit comfortably in a 4-entry tracker.
  EXPECT_EQ(run_double_sided(sys, victim, 40'000), 0u);
}

TEST(Mitigations, TrrBypassedByManySided) {
  // More distinct aggressors than tracker entries evict the true pair:
  // the TRRespass effect behind the paper's DDR4 vulnerability claim.
  MitigationSpec spec;
  spec.kind = MitigationKind::kTrr;
  spec.trr.tracker_entries = 4;
  auto sys = make_system(hammerable_device(), CtrlConfig{}, spec);
  const std::uint32_t victim = weak_victim(sys.dev());
  ASSERT_NE(victim, 0u);
  // 12 aggressors: the double-sided pair plus 10 decoys.
  std::vector<std::uint32_t> rows{victim - 1, victim + 1};
  for (std::uint32_t d = 1; d <= 10; ++d)
    rows.push_back((victim + 13 * d) % (sys.dev().geometry().rows - 4) + 2);
  for (int i = 0; i < 40'000; ++i)
    for (std::uint32_t r : rows) sys.mc().activate_precharge(0, r);
  sys.mc().activate_precharge(0, victim);
  EXPECT_GT(sys.dev().stats().disturb_flips, 0u);
}

TEST(Mitigations, NaiveAdjacencyFailsUnderScramble) {
  // PARA refreshing logical +/-1 under a scrambled remap protects the wrong
  // physical rows — the SPD deployment question of §II-C.
  DeviceConfig dc = hammerable_device();
  dc.remap = dram::RemapScheme::kScramble;

  MitigationSpec spec;
  spec.kind = MitigationKind::kPara;
  spec.para.probability = 0.05;

  CtrlConfig naive;
  naive.use_spd_adjacency = false;
  auto sys_naive = make_system(dc, naive, spec);
  CtrlConfig spd;
  spd.use_spd_adjacency = true;
  auto sys_spd = make_system(dc, spd, spec);

  // Pick an aggressor whose *physical* neighbour actually has weak cells
  // (so an unprotected run demonstrably flips) — locate it via SPD.
  std::uint32_t aggressor = 0;
  {
    dram::Device probe(dc);
    for (std::uint32_t r = 2; r + 2 < probe.geometry().rows; ++r) {
      for (std::uint32_t v : probe.spd_neighbors(r)) {
        const std::uint32_t pv = probe.remap().to_physical(v);
        if (probe.fault_map().row_has_weak(0, pv)) aggressor = r;
      }
      if (aggressor) break;
    }
  }
  ASSERT_NE(aggressor, 0u);
  auto run = [&](System& sys) {
    for (int i = 0; i < 60'000; ++i) {
      sys.mc().activate_precharge(0, aggressor);
      sys.mc().activate_precharge(0, 200);
    }
    // Commit every physical victim of the aggressor.
    for (std::uint32_t v : sys.dev().spd_neighbors(aggressor))
      sys.mc().activate_precharge(0, v);
    return sys.dev().stats().disturb_flips;
  };
  const auto flips_spd = run(sys_spd);
  const auto flips_naive = run(sys_naive);
  EXPECT_EQ(flips_spd, 0u);
  EXPECT_GE(flips_naive, flips_spd);
}


TEST(Mitigations, TrrEnablesHalfDouble) {
  // Half-Double: hammer rows at distance 2 from the victim with the
  // distance-2 coupling DISABLED, so the only path to the victim is the
  // mitigation itself — TRR's targeted refreshes of the distance-1 rows are
  // activations that hammer the victim. Without TRR: zero flips. With TRR:
  // flips. The mitigation is the aggressor.
  dram::DeviceConfig dc = hammerable_device(67);
  dc.reliability.distance2_weight = 0.0;
  dc.reliability.hc50 = 3e3;
  dc.reliability.hc_sigma = 0.25;
  dc.record_flip_events = true;

  // Count flips in the centre victim only: the distance-1 rows flip under
  // either configuration (they are directly adjacent to the aggressors).
  auto run = [&](MitigationSpec spec) {
    auto sys = make_system(dc, CtrlConfig{}, spec);
    std::uint32_t victim = 0;
    for (std::uint32_t r : sys.dev().fault_map().weak_rows(0))
      if (r >= 4 && r + 4 < sys.dev().geometry().rows) {
        victim = r;
        break;
      }
    EXPECT_NE(victim, 0u);
    for (int i = 0; i < 600'000; ++i) {
      sys.mc().activate_precharge(0, victim - 2);
      sys.mc().activate_precharge(0, victim + 2);
    }
    sys.mc().activate_precharge(0, victim);
    std::uint64_t victim_flips = 0;
    for (const auto& ev : sys.dev().flip_events())
      victim_flips += ev.logical_row == victim;
    return victim_flips;
  };
  EXPECT_EQ(run({}), 0u) << "no distance-2 coupling, no mitigation: clean";
  MitigationSpec trr;
  trr.kind = MitigationKind::kTrr;
  trr.trr.tracker_entries = 4;
  EXPECT_GT(run(trr), 0u) << "TRR's own refreshes must hammer the victim";
}

TEST(Mitigations, NamesAreStable) {
  EXPECT_STREQ(mitigation_name(MitigationKind::kPara), "PARA");
  EXPECT_STREQ(mitigation_name(MitigationKind::kNone), "none");
  auto sys = make_system(hammerable_device(), CtrlConfig{}, {});
  EXPECT_EQ(sys.mc().mitigation().name(), "none");
}

}  // namespace
}  // namespace densemem::core
