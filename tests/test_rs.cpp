#include "ecc/rs.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "ctrl/controller.h"

namespace densemem::ecc {
namespace {

std::vector<std::uint8_t> random_symbols(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_u64());
  return v;
}

TEST(Rs, Layout7264) {
  RsCode rs({4, 64});
  EXPECT_EQ(rs.code_symbols(), 72);
  EXPECT_EQ(rs.parity_symbols(), 8);
  EXPECT_NEAR(rs.overhead(), 8.0 / 72.0, 1e-12);
}

TEST(Rs, CleanRoundTrip) {
  RsCode rs({4, 64});
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto d = random_symbols(rng, 64);
    const auto r = rs.decode(rs.encode(d));
    ASSERT_EQ(r.status, DecodeStatus::kClean);
    ASSERT_EQ(r.data, d);
  }
}

struct RsCase {
  int t, k;
};
class RsCorrection : public ::testing::TestWithParam<RsCase> {};

TEST_P(RsCorrection, CorrectsUpToTSymbols) {
  const auto [t, k] = GetParam();
  RsCode rs({t, k});
  Rng rng(hash_coords(t, k));
  for (int nerr = 1; nerr <= t; ++nerr) {
    for (int trial = 0; trial < 15; ++trial) {
      const auto d = random_symbols(rng, static_cast<std::size_t>(k));
      auto cw = rs.encode(d);
      const auto pos = rng.sample_indices(
          static_cast<std::size_t>(rs.code_symbols()),
          static_cast<std::size_t>(nerr));
      for (std::size_t p : pos)
        cw[p] ^= static_cast<std::uint8_t>(1 + (rng.next_u64() % 255));
      const auto r = rs.decode(cw);
      ASSERT_EQ(r.status, DecodeStatus::kCorrected)
          << "t=" << t << " errors=" << nerr;
      ASSERT_EQ(r.data, d);
      ASSERT_EQ(r.corrected_symbols, nerr);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Codes, RsCorrection,
                         ::testing::Values(RsCase{1, 32}, RsCase{2, 64},
                                           RsCase{4, 64}, RsCase{8, 128},
                                           RsCase{16, 200}));

TEST(Rs, WholeByteBurstIsOneSymbol) {
  // The chipkill property: 8 flipped bits inside one byte cost a single
  // correction unit; SECDED would have failed at 2.
  RsCode rs({1, 64});  // can correct exactly ONE symbol
  Rng rng(5);
  const auto d = random_symbols(rng, 64);
  auto cw = rs.encode(d);
  cw[13] ^= 0xFF;  // all 8 bits of one byte
  const auto r = rs.decode(cw);
  EXPECT_EQ(r.status, DecodeStatus::kCorrected);
  EXPECT_EQ(r.data, d);
  EXPECT_EQ(r.corrected_symbols, 1);
}

TEST(Rs, TwoScatteredBitsBeyondTOneDetected) {
  RsCode rs({1, 64});
  Rng rng(7);
  const auto d = random_symbols(rng, 64);
  auto cw = rs.encode(d);
  cw[3] ^= 0x01;
  cw[40] ^= 0x80;  // two symbols corrupted > t=1
  const auto r = rs.decode(cw);
  EXPECT_NE(r.status, DecodeStatus::kClean);
}

TEST(Rs, BeyondTNeverClean) {
  RsCode rs({4, 64});
  Rng rng(9);
  int uncorrectable = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const auto d = random_symbols(rng, 64);
    auto cw = rs.encode(d);
    const auto pos = rng.sample_indices(72, 6);
    for (std::size_t p : pos)
      cw[p] ^= static_cast<std::uint8_t>(1 + (rng.next_u64() % 255));
    const auto r = rs.decode(cw);
    ASSERT_NE(r.status, DecodeStatus::kClean);
    uncorrectable += r.status == DecodeStatus::kUncorrectable;
  }
  EXPECT_GT(uncorrectable, 80);
}

TEST(Rs, ErrorsInParityRegionCorrected) {
  RsCode rs({4, 64});
  Rng rng(11);
  const auto d = random_symbols(rng, 64);
  auto cw = rs.encode(d);
  cw[64] ^= 0xA5;
  cw[71] ^= 0x5A;
  const auto r = rs.decode(cw);
  EXPECT_EQ(r.status, DecodeStatus::kCorrected);
  EXPECT_EQ(r.data, d);
}

TEST(Rs, RejectsOversizedCode) {
  EXPECT_THROW(RsCode({16, 250}), densemem::CheckError);
  EXPECT_NO_THROW(RsCode({16, 223}));
}

TEST(RsControllerPath, RoundTripAndChipFailure) {
  // Through the memory controller: a clustered corruption confined to one
  // byte lane (a failing x8 chip's contribution) is corrected by RS but
  // not by SECDED.
  dram::DeviceConfig dc;
  dc.geometry = dram::Geometry::tiny();
  dc.reliability = dram::ReliabilityParams::robust();
  dc.reliability.leaky_cell_density = 0.0;
  dc.seed = 3;
  dram::Device dev(dc);
  ctrl::CtrlConfig cc;
  cc.ecc = ctrl::EccMode::kRs;
  ctrl::MemoryController mc(dev, cc);
  EXPECT_EQ(mc.blocks_per_row(), 14u);  // same 9-word stride as SECDED

  dram::Address a{0, 0, 0, 9, 1};
  std::array<std::uint64_t, 8> d{1, 2, 3, 4, 5, 6, 7, 8};
  mc.write_block(a, d);
  EXPECT_EQ(mc.read_block(a).status, ecc::DecodeStatus::kClean);

  // Corrupt 6 bits inside ONE byte of word 2 directly in the device (a
  // chip-lane failure): 6 bit flips, 1 symbol.
  mc.close_all_banks();
  dev.activate(0, 9, mc.now());
  const std::uint32_t word_idx = 1 * 9 + 2;  // block 1, data word 2
  dev.write_word(0, word_idx, dev.read_word(0, word_idx) ^ 0x00FD000000000000ull);
  dev.precharge(0, mc.now());

  const auto r = mc.read_block(a);
  EXPECT_EQ(r.status, ecc::DecodeStatus::kCorrected);
  EXPECT_EQ(r.data, d);
  EXPECT_EQ(r.corrected_bits, 1);  // one symbol
}

TEST(RsControllerPath, FourScatteredSymbolsCorrected) {
  dram::DeviceConfig dc;
  dc.geometry = dram::Geometry::tiny();
  dc.reliability = dram::ReliabilityParams::robust();
  dc.seed = 5;
  dram::Device dev(dc);
  ctrl::CtrlConfig cc;
  cc.ecc = ctrl::EccMode::kRs;
  ctrl::MemoryController mc(dev, cc);
  dram::Address a{0, 0, 0, 4, 0};
  std::array<std::uint64_t, 8> d{};
  d.fill(0xDEADBEEFCAFED00Dull);
  mc.write_block(a, d);
  mc.close_all_banks();
  dev.activate(0, 4, mc.now());
  dev.write_word(0, 0, dev.read_word(0, 0) ^ 0xFF);           // symbol 0
  dev.write_word(0, 3, dev.read_word(0, 3) ^ 0xFF00);         // symbol 25
  dev.write_word(0, 7, dev.read_word(0, 7) ^ 0x7F0000000000); // symbol 61
  dev.write_word(0, 8, dev.read_word(0, 8) ^ 0x01);           // parity symbol
  dev.precharge(0, mc.now());
  const auto r = mc.read_block(a);
  EXPECT_EQ(r.status, ecc::DecodeStatus::kCorrected);
  EXPECT_EQ(r.data, d);
  EXPECT_EQ(r.corrected_bits, 4);
}

}  // namespace
}  // namespace densemem::ecc
