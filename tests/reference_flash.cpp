// Frozen pre-optimization flash device; see reference_flash.h.
#include "reference_flash.h"

#include <algorithm>
#include <cmath>

namespace densemem::refimpl {

namespace {
double hashed_normal(std::uint64_t seed, std::uint64_t tag, std::uint64_t a,
                     std::uint64_t b, std::uint64_t c) {
  const std::uint64_t h1 = splitmix64(hash_coords(seed, tag, a, b, c));
  const std::uint64_t h2 = splitmix64(h1);
  double u1 = static_cast<double>(h1 >> 11) * 0x1.0p-53;
  const double u2 = static_cast<double>(h2 >> 11) * 0x1.0p-53;
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}
constexpr std::uint64_t kTagLeak = 0x4c45414b;  // "LEAK"
constexpr std::uint64_t kTagRd = 0x52444953;    // "RDIS"
}  // namespace

RefFlashDevice::RefFlashDevice(flash::FlashConfig cfg)
    : cfg_(std::move(cfg)),
      rng_(hash_coords(cfg_.seed, 0x464c5348 /* "FLSH" */)),
      vth_(cfg_.geometry.cells_total(), 0.0f),
      intended_(cfg_.geometry.cells_total(), -1),
      wordlines_(static_cast<std::size_t>(cfg_.geometry.blocks) *
                 cfg_.geometry.wordlines),
      pe_(cfg_.geometry.blocks, 0),
      block_reads_(cfg_.geometry.blocks, 0) {
  cfg_.geometry.validate();
  for (std::uint32_t b = 0; b < cfg_.geometry.blocks; ++b) erase_block(b, 0.0);
  std::fill(pe_.begin(), pe_.end(), 0u);
  stats_ = flash::FlashStats{};
}

double RefFlashDevice::leak_factor(std::uint32_t block, std::uint32_t wl,
                                   std::uint32_t cell) const {
  return std::exp(cfg_.cell.leak_sigma *
                  hashed_normal(cfg_.seed, kTagLeak, block, wl, cell));
}

double RefFlashDevice::rd_susceptibility(std::uint32_t block, std::uint32_t wl,
                                         std::uint32_t cell) const {
  return std::exp(cfg_.cell.rd_sigma *
                  hashed_normal(cfg_.seed, kTagRd, block, wl, cell));
}

double RefFlashDevice::retention_shift(double vth, double leak,
                                       std::uint32_t pe, double dt_s) const {
  const flash::CellParams& p = cfg_.cell;
  if (dt_s <= 0.0 || vth <= p.state_mean[0]) return 0.0;
  const double level = vth / p.state_mean[3];
  return -p.retention_a * (1.0 + p.retention_wear_coef * pe) * leak * level *
         std::log10(1.0 + dt_s / p.retention_t0_s);
}

double RefFlashDevice::disturb_shift(double vth, double susc,
                                     std::uint64_t reads) const {
  const flash::CellParams& p = cfg_.cell;
  if (vth >= p.rd_ceiling || reads == 0) return 0.0;
  return p.rd_step * susc * static_cast<double>(reads);
}

double RefFlashDevice::effective_vth(std::uint32_t block, std::uint32_t wl,
                                     std::uint32_t cell, double now) const {
  const Wordline& w = wordlines_[wl_index(block, wl)];
  const double stored = vth_[cell_index(block, wl, cell)];
  const double leak = leak_factor(block, wl, cell);
  const double susc = rd_susceptibility(block, wl, cell);
  return stored + retention_shift(stored, leak, pe_[block], now - w.t_prog) +
         disturb_shift(stored, susc, block_reads_[block] - w.rd_base);
}

void RefFlashDevice::erase_block(std::uint32_t block, double now) {
  DM_CHECK_MSG(block < cfg_.geometry.blocks, "block out of range");
  for (std::uint32_t wl = 0; wl < cfg_.geometry.wordlines; ++wl) {
    Wordline& w = wordlines_[wl_index(block, wl)];
    w = Wordline{};
    w.t_prog = now;
    w.rd_base = block_reads_[block];
    for (std::uint32_t c = 0; c < cfg_.geometry.page_bits; ++c) {
      const std::size_t ci = cell_index(block, wl, c);
      vth_[ci] = static_cast<float>(
          rng_.normal(cfg_.cell.state_mean[0], cfg_.cell.erase_sigma));
      intended_[ci] = -1;
    }
  }
  ++pe_[block];
  ++stats_.erases;
}

double RefFlashDevice::program_cell(std::size_t ci, double target_mean,
                                    double sigma) {
  const double old = vth_[ci];
  const double pulse = rng_.normal(target_mean, sigma);
  const double next = std::max(old, pulse);
  vth_[ci] = static_cast<float>(next);
  return next - old;
}

void RefFlashDevice::program_page(const flash::PageAddress& a,
                                  const BitVec& data, double now) {
  DM_CHECK_MSG(a.block < cfg_.geometry.blocks &&
                   a.wordline < cfg_.geometry.wordlines,
               "page address out of range");
  DM_CHECK_MSG(data.size() == cfg_.geometry.page_bits, "page size mismatch");
  Wordline& w = wordlines_[wl_index(a.block, a.wordline)];
  const flash::CellParams& p = cfg_.cell;
  const double sigma = p.prog_sigma * (1.0 + p.sigma_wear_coef * pe_[a.block]);
  const bool has_lower_neighbor =
      a.wordline > 0 &&
      wordlines_[wl_index(a.block, a.wordline - 1)].lsb_programmed;

  if (a.type == flash::PageType::kLsb) {
    DM_CHECK_MSG(!w.lsb_programmed, "LSB page already programmed");
    for (std::uint32_t c = 0; c < cfg_.geometry.page_bits; ++c) {
      const std::size_t ci = cell_index(a.block, a.wordline, c);
      double delta = 0.0;
      if (!data.get(c)) {
        delta = program_cell(ci, p.lm_mean, p.lm_sigma);
        intended_[ci] = 4;  // LM
      } else {
        intended_[ci] = 0;  // remains ER
      }
      if (has_lower_neighbor && delta > 0.0) {
        vth_[cell_index(a.block, a.wordline - 1, c)] +=
            static_cast<float>(p.interference_gamma * delta);
      }
    }
    w.lsb_programmed = true;
    w.t_prog = now;
    w.rd_base = block_reads_[a.block];
  } else {
    DM_CHECK_MSG(w.lsb_programmed, "MSB programmed before LSB (two-step)");
    DM_CHECK_MSG(!w.msb_programmed, "MSB page already programmed");
    for (std::uint32_t c = 0; c < cfg_.geometry.page_bits; ++c) {
      const std::size_t ci = cell_index(a.block, a.wordline, c);
      const double veff = effective_vth(a.block, a.wordline, c, now);
      vth_[ci] = static_cast<float>(veff);

      const bool intended_lsb = (intended_[ci] != 4);
      bool lsb_readback;
      if (cfg_.buffer_lsb_in_controller) {
        lsb_readback = intended_lsb;
      } else {
        lsb_readback = veff < p.lm_read_ref;
        if (lsb_readback != intended_lsb) ++stats_.two_step_lsb_misreads;
      }
      const int final_state = flash::state_of(lsb_readback, data.get(c));
      double delta = 0.0;
      if (final_state != 0) {
        delta = program_cell(ci, p.state_mean[final_state], sigma);
      }
      intended_[ci] =
          static_cast<int8_t>(flash::state_of(intended_lsb, data.get(c)));
      if (has_lower_neighbor && delta > 0.0) {
        vth_[cell_index(a.block, a.wordline - 1, c)] +=
            static_cast<float>(p.interference_gamma * delta);
      }
    }
    w.msb_programmed = true;
    w.t_prog = now;
    w.rd_base = block_reads_[a.block];
  }
  ++stats_.programs;
}

bool RefFlashDevice::page_programmed(const flash::PageAddress& a) const {
  const Wordline& w = wordlines_[wl_index(a.block, a.wordline)];
  return a.type == flash::PageType::kLsb ? w.lsb_programmed : w.msb_programmed;
}

BitVec RefFlashDevice::read_page(const flash::PageAddress& a, double now,
                                 double ref_offset) const {
  DM_CHECK_MSG(a.block < cfg_.geometry.blocks &&
                   a.wordline < cfg_.geometry.wordlines,
               "page address out of range");
  const flash::CellParams& p = cfg_.cell;
  const bool final_states =
      wordlines_[wl_index(a.block, a.wordline)].msb_programmed;
  const double lsb_ref = final_states ? p.read_ref[1] : p.lm_read_ref;
  BitVec out(cfg_.geometry.page_bits);
  for (std::uint32_t c = 0; c < cfg_.geometry.page_bits; ++c) {
    const double v = effective_vth(a.block, a.wordline, c, now);
    bool bit;
    if (a.type == flash::PageType::kLsb) {
      bit = v < lsb_ref + ref_offset;
    } else {
      bit = (v < p.read_ref[0] + ref_offset) || (v > p.read_ref[2] + ref_offset);
    }
    out.set(c, bit);
  }
  ++block_reads_[a.block];
  ++stats_.reads;
  return out;
}

BitVec RefFlashDevice::read_page_with_offsets(
    const flash::PageAddress& a, double now,
    const std::vector<float>& cell_offsets) const {
  DM_CHECK_MSG(cell_offsets.size() == cfg_.geometry.page_bits,
               "per-cell offset size mismatch");
  const flash::CellParams& p = cfg_.cell;
  const bool final_states =
      wordlines_[wl_index(a.block, a.wordline)].msb_programmed;
  const double lsb_ref = final_states ? p.read_ref[1] : p.lm_read_ref;
  BitVec out(cfg_.geometry.page_bits);
  for (std::uint32_t c = 0; c < cfg_.geometry.page_bits; ++c) {
    const double v = effective_vth(a.block, a.wordline, c, now);
    const double off = cell_offsets[c];
    bool bit;
    if (a.type == flash::PageType::kLsb) {
      bit = v < lsb_ref + off;
    } else {
      bit = (v < p.read_ref[0] + off) || (v > p.read_ref[2] + off);
    }
    out.set(c, bit);
  }
  ++block_reads_[a.block];
  ++stats_.reads;
  return out;
}

int RefFlashDevice::intended_state(std::uint32_t block, std::uint32_t wl,
                                   std::uint32_t cell) const {
  return intended_[cell_index(block, wl, cell)];
}

}  // namespace densemem::refimpl
