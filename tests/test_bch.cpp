#include "ecc/bch.h"

#include <gtest/gtest.h>

#include "common/check.h"

#include "common/rng.h"

namespace densemem::ecc {
namespace {

densemem::BitVec random_bits(densemem::Rng& rng, std::size_t n) {
  densemem::BitVec v(n);
  for (std::size_t w = 0; w < v.word_count(); ++w) v.set_word(w, rng.next_u64());
  return v;
}

TEST(Bch, GeneratorIsMonicWithParityMultipleConstraints) {
  BchCode code({10, 4, 512});
  EXPECT_EQ(code.generator().back(), 1);
  EXPECT_EQ(code.parity_bits(), 40);  // t*m for t=4, m=10 (no coset overlap)
  EXPECT_EQ(code.code_bits(), 552);
  EXPECT_NEAR(code.overhead(), 40.0 / 552.0, 1e-12);
}

TEST(Bch, CleanRoundTrip) {
  densemem::Rng rng(1);
  BchCode code({10, 4, 512});
  for (int trial = 0; trial < 20; ++trial) {
    const auto d = random_bits(rng, 512);
    const auto cw = code.encode(d);
    const auto r = code.decode(cw);
    EXPECT_EQ(r.status, DecodeStatus::kClean);
    EXPECT_EQ(r.data, d);
    EXPECT_EQ(r.corrected_bits, 0);
  }
}

// Property sweep: every error count up to t is corrected, for several codes.
struct BchCase {
  int m, t, k;
};
class BchCorrection : public ::testing::TestWithParam<BchCase> {};

TEST_P(BchCorrection, CorrectsUpToT) {
  const auto [m, t, k] = GetParam();
  BchCode code({m, t, k});
  densemem::Rng rng(densemem::hash_coords(m, t, k));
  for (int nerr = 1; nerr <= t; ++nerr) {
    for (int trial = 0; trial < 10; ++trial) {
      const auto d = random_bits(rng, static_cast<std::size_t>(k));
      auto cw = code.encode(d);
      const auto pos = rng.sample_indices(
          static_cast<std::size_t>(code.code_bits()),
          static_cast<std::size_t>(nerr));
      for (std::size_t p : pos) cw.flip(p);
      const auto r = code.decode(cw);
      ASSERT_EQ(r.status, DecodeStatus::kCorrected)
          << "m=" << m << " t=" << t << " errors=" << nerr;
      ASSERT_EQ(r.data, d);
      ASSERT_EQ(r.corrected_bits, nerr);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Codes, BchCorrection,
                         ::testing::Values(BchCase{8, 2, 128},
                                           BchCase{10, 4, 512},
                                           BchCase{10, 8, 512},
                                           BchCase{12, 6, 1024},
                                           BchCase{10, 1, 64}));

TEST(Bch, BeyondTNeverClean) {
  BchCode code({10, 4, 512});
  densemem::Rng rng(7);
  int uncorrectable = 0, miscorrected = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto d = random_bits(rng, 512);
    auto cw = code.encode(d);
    const auto pos = rng.sample_indices(
        static_cast<std::size_t>(code.code_bits()), 6);  // t+2 errors
    for (std::size_t p : pos) cw.flip(p);
    const auto r = code.decode(cw);
    ASSERT_NE(r.status, DecodeStatus::kClean);
    if (r.status == DecodeStatus::kUncorrectable)
      ++uncorrectable;
    else if (r.data != d)
      ++miscorrected;
  }
  // Overwhelmingly detected (miscorrection is possible but rare).
  EXPECT_GT(uncorrectable, 150);
  EXPECT_EQ(uncorrectable + miscorrected, 200);
}

TEST(Bch, ErrorsInParityRegionCorrected) {
  BchCode code({10, 4, 512});
  densemem::BitVec d(512);
  d.set(0);
  d.set(511);
  auto cw = code.encode(d);
  cw.flip(513);  // parity bit
  cw.flip(551);  // last parity bit
  const auto r = code.decode(cw);
  EXPECT_EQ(r.status, DecodeStatus::kCorrected);
  EXPECT_EQ(r.data, d);
}

TEST(Bch, ShorteningRejectsOversizedPayload) {
  // n = 2^6 - 1 = 63; with t=2 parity is 12, so max payload is 51.
  EXPECT_NO_THROW(BchCode({6, 2, 51}));
  EXPECT_THROW(BchCode({6, 2, 52}), densemem::CheckError);
}

TEST(Bch, SizeMismatchThrows) {
  BchCode code({8, 2, 100});
  EXPECT_THROW(code.encode(densemem::BitVec(99)), densemem::CheckError);
  EXPECT_THROW(code.decode(densemem::BitVec(100)), densemem::CheckError);
}

TEST(Bch, MaxTForParityBudget) {
  // With m=10, each unit of t costs 10 parity bits here.
  EXPECT_EQ(max_t_for_parity_budget(10, 512, 40), 4);
  EXPECT_EQ(max_t_for_parity_budget(10, 512, 45), 4);
  EXPECT_EQ(max_t_for_parity_budget(10, 512, 80), 8);
  EXPECT_EQ(max_t_for_parity_budget(10, 512, 5), 0);
}

TEST(Bch, SingleErrorAtEveryChunkBoundary) {
  BchCode code({10, 2, 512});
  densemem::BitVec d(512);
  for (int i = 0; i < 512; i += 5) d.set(i);
  const auto clean = code.encode(d);
  for (std::size_t p :
       {std::size_t{0}, std::size_t{511}, std::size_t{512},
        static_cast<std::size_t>(code.code_bits() - 1)}) {
    auto cw = clean;
    cw.flip(p);
    const auto r = code.decode(cw);
    EXPECT_EQ(r.status, DecodeStatus::kCorrected) << "pos=" << p;
    EXPECT_EQ(r.data, d);
  }
}

}  // namespace
}  // namespace densemem::ecc
