#include "flash/ssd.h"

#include <gtest/gtest.h>

namespace densemem::flash {
namespace {

SsdConfig quick_config() {
  SsdConfig cfg;
  cfg.flash.geometry = {2, 8, 2048};
  cfg.flash.seed = 61;
  cfg.pe_step = 3000;
  cfg.max_pe = 36000;
  return cfg;
}

TEST(Ssd, RberGrowsWithAge) {
  const SsdConfig cfg = quick_config();
  const double fresh = SsdLifetimeSim::rber_at(cfg, 3000, 3600.0);
  const double month = SsdLifetimeSim::rber_at(cfg, 3000, 30 * 86400.0);
  const double year = SsdLifetimeSim::rber_at(cfg, 3000, 365 * 86400.0);
  EXPECT_LT(fresh, month);
  EXPECT_LT(month, year);
}

TEST(Ssd, RberGrowsWithWear) {
  const SsdConfig cfg = quick_config();
  const double age = 30 * 86400.0;
  EXPECT_LT(SsdLifetimeSim::rber_at(cfg, 100, age),
            SsdLifetimeSim::rber_at(cfg, 8000, age));
  EXPECT_LT(SsdLifetimeSim::rber_at(cfg, 8000, age),
            SsdLifetimeSim::rber_at(cfg, 20000, age));
}

TEST(Ssd, RetentionDominatesFreshReadErrors) {
  // §III-A2: "the dominant source of errors in flash memory are data
  // retention errors": at equal wear, a year of retention produces far more
  // raw errors than the fresh programming noise.
  const SsdConfig cfg = quick_config();
  const double fresh = SsdLifetimeSim::rber_at(cfg, 6000, 60.0);
  const double aged = SsdLifetimeSim::rber_at(cfg, 6000, 365 * 86400.0);
  EXPECT_GT(aged, 5.0 * std::max(fresh, 1e-7));
}

TEST(Ssd, LifetimeFiniteAndOrdered) {
  SsdConfig cfg = quick_config();
  const auto base = SsdLifetimeSim(cfg).run();
  EXPECT_GT(base.pe_lifetime, 0u);
  EXPECT_LT(base.pe_lifetime, cfg.max_pe);
  ASSERT_FALSE(base.curve.empty());
  // The curve ends at the first failing point.
  EXPECT_GT(base.curve.back().uncorrectable_pages, 0u);
}

TEST(Ssd, FcrExtendsLifetime) {
  SsdConfig cfg = quick_config();
  const auto base = SsdLifetimeSim(cfg).run();
  cfg.fcr_period_s = 2 * 86400.0;  // refresh every 2 days
  const auto fcr = SsdLifetimeSim(cfg).run();
  EXPECT_GT(fcr.pe_lifetime, base.pe_lifetime);
  ASSERT_FALSE(fcr.curve.empty());
  EXPECT_GT(fcr.curve.front().fcr_refreshes, 0u);
}

TEST(Ssd, StrongerEccExtendsLifetime) {
  SsdConfig weak = quick_config();
  weak.ctrl.ecc_t = 4;
  SsdConfig strong = quick_config();
  strong.ctrl.ecc_t = 12;
  const auto lw = SsdLifetimeSim(weak).run();
  const auto ls = SsdLifetimeSim(strong).run();
  EXPECT_GT(ls.pe_lifetime, lw.pe_lifetime);
}

TEST(Ssd, RfrExtendsLifetime) {
  SsdConfig base = quick_config();
  base.flash.cell.leak_sigma = 0.7;
  SsdConfig rfr = base;
  rfr.ctrl.enable_rfr = true;
  const auto lb = SsdLifetimeSim(base).run();
  const auto lr = SsdLifetimeSim(rfr).run();
  EXPECT_GE(lr.pe_lifetime, lb.pe_lifetime);
}

TEST(Ssd, DeterministicAcrossRuns) {
  const SsdConfig cfg = quick_config();
  const auto a = SsdLifetimeSim(cfg).run();
  const auto b = SsdLifetimeSim(cfg).run();
  EXPECT_EQ(a.pe_lifetime, b.pe_lifetime);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i)
    EXPECT_DOUBLE_EQ(a.curve[i].mean_rber, b.curve[i].mean_rber);
}

}  // namespace
}  // namespace densemem::flash
