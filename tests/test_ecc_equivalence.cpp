// Equivalence tests: the optimized ECC kernels (mask-based SECDED, table-
// driven BCH encode + byte-folded syndromes + incremental Chien, Horner RS
// syndromes) must be bit-exact with the frozen pre-optimization codecs in
// reference_ecc.{h,cpp} — identical status, corrected payload and corrected
// counts for random code words crossed with exhaustive 1/2-bit SECDED error
// positions and random <=t and >t BCH/RS error patterns, including inside
// campaign jobs at widths 1/2/8.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ecc/bch.h"
#include "ecc/hamming.h"
#include "ecc/rs.h"
#include "reference_ecc.h"
#include "sim/campaign.h"

namespace densemem {
namespace {

// ---------------------------------------------------------------------------
// SECDED

TEST(EccEquivalence, SecdedEncodeMatchesReference) {
  Rng rng(101);
  for (int trial = 0; trial < 5000; ++trial) {
    const std::uint64_t d = rng.next_u64();
    const auto a = ecc::Secded7264::encode(d);
    const auto b = refimpl::RefSecded7264::encode(d);
    ASSERT_EQ(a.data, b.data);
    ASSERT_EQ(a.check, b.check) << "data=" << std::hex << d;
  }
}

TEST(EccEquivalence, SecdedDecodeExhaustiveOneAndTwoBit) {
  Rng rng(102);
  for (int trial = 0; trial < 12; ++trial) {
    const std::uint64_t d = rng.next_u64();
    const auto w = ecc::Secded7264::encode(d);
    // Clean word.
    {
      const auto a = ecc::Secded7264::decode(w);
      const auto b = refimpl::RefSecded7264::decode(w);
      ASSERT_EQ(a.status, b.status);
      ASSERT_EQ(a.data, b.data);
    }
    // Every single-bit error and every 2-bit pair.
    for (unsigned i = 0; i < 72; ++i) {
      const auto w1 = ecc::Secded7264::flip_bit(w, i);
      const auto a1 = ecc::Secded7264::decode(w1);
      const auto b1 = refimpl::RefSecded7264::decode(w1);
      ASSERT_EQ(a1.status, b1.status) << "bit " << i;
      ASSERT_EQ(a1.data, b1.data) << "bit " << i;
      for (unsigned j = i + 1; j < 72; ++j) {
        const auto w2 = ecc::Secded7264::flip_bit(w1, j);
        const auto a2 = ecc::Secded7264::decode(w2);
        const auto b2 = refimpl::RefSecded7264::decode(w2);
        ASSERT_EQ(a2.status, b2.status) << "bits " << i << "," << j;
        ASSERT_EQ(a2.data, b2.data) << "bits " << i << "," << j;
      }
    }
  }
}

TEST(EccEquivalence, SecdedDecodeRandomMultiBit) {
  Rng rng(103);
  for (int trial = 0; trial < 20000; ++trial) {
    auto w = ecc::Secded7264::encode(rng.next_u64());
    const int flips = 3 + static_cast<int>(rng.uniform_int(std::uint64_t{5}));
    for (int f = 0; f < flips; ++f)
      w = ecc::Secded7264::flip_bit(
          w, static_cast<unsigned>(rng.uniform_int(std::uint64_t{72})));
    const auto a = ecc::Secded7264::decode(w);
    const auto b = refimpl::RefSecded7264::decode(w);
    ASSERT_EQ(a.status, b.status);
    ASSERT_EQ(a.data, b.data);
  }
}

// ---------------------------------------------------------------------------
// BCH

BitVec random_bits(Rng& rng, int n) {
  BitVec v(static_cast<std::size_t>(n));
  for (std::size_t w = 0; w < v.word_count(); ++w) v.set_word(w, rng.next_u64());
  return v;
}

void check_bch_pair(const ecc::BchCode& opt, const refimpl::RefBchCode& ref,
                    Rng& rng, int trials) {
  ASSERT_EQ(opt.parity_bits(), ref.parity_bits());
  ASSERT_EQ(opt.generator(), ref.generator());
  const int nbits = opt.code_bits();
  for (int trial = 0; trial < trials; ++trial) {
    const BitVec data = random_bits(rng, opt.k_data());
    const BitVec cw_opt = opt.encode(data);
    const BitVec cw_ref = ref.encode(data);
    ASSERT_EQ(cw_opt, cw_ref) << "encode mismatch, trial " << trial;

    // Error counts sweeping clean, correctable (<=t) and beyond-t.
    for (int e : {0, 1, opt.t() / 2, opt.t(), opt.t() + 1, opt.t() + 4}) {
      if (e > nbits) continue;
      BitVec corrupted = cw_opt;
      for (int f = 0; f < e; ++f)
        corrupted.flip(rng.uniform_int(static_cast<std::uint64_t>(nbits)));
      const auto a = opt.decode(corrupted);
      const auto b = ref.decode(corrupted);
      ASSERT_EQ(a.status, b.status) << "e=" << e << " trial " << trial;
      ASSERT_EQ(a.data, b.data) << "e=" << e << " trial " << trial;
      ASSERT_EQ(a.corrected_bits, b.corrected_bits)
          << "e=" << e << " trial " << trial;
    }
  }
}

TEST(EccEquivalence, BchT8M10MatchesReference) {
  const ecc::BchParams p{10, 8, 512};
  ecc::BchCode opt(p);
  refimpl::RefBchCode ref(p);
  Rng rng(201);
  check_bch_pair(opt, ref, rng, 40);
}

TEST(EccEquivalence, BchT4M10MatchesReference) {
  const ecc::BchParams p{10, 4, 512};
  ecc::BchCode opt(p);
  refimpl::RefBchCode ref(p);
  Rng rng(202);
  check_bch_pair(opt, ref, rng, 40);
}

TEST(EccEquivalence, BchSmallFieldMatchesReference) {
  // m=8: 16-bit payload, byte-table path with a k%8 != 0 prologue.
  const ecc::BchParams p{8, 2, 37};
  ecc::BchCode opt(p);
  refimpl::RefBchCode ref(p);
  Rng rng(203);
  check_bch_pair(opt, ref, rng, 60);
}

TEST(EccEquivalence, BchTinyParityFallbackMatchesReference) {
  // m=4, t=1: 4 parity bits — below the byte-table threshold, exercising the
  // per-bit fallback encoder against the same reference.
  const ecc::BchParams p{4, 1, 8};
  ecc::BchCode opt(p);
  refimpl::RefBchCode ref(p);
  Rng rng(204);
  check_bch_pair(opt, ref, rng, 200);
}

// ---------------------------------------------------------------------------
// Reed–Solomon

void check_rs_pair(const ecc::RsCode& opt, const refimpl::RefRsCode& ref,
                   Rng& rng, int trials) {
  const int nsym = opt.code_symbols();
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<std::uint8_t> data(static_cast<std::size_t>(opt.k_data()));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto cw_opt = opt.encode(data);
    const auto cw_ref = ref.encode(data);
    ASSERT_EQ(cw_opt, cw_ref) << "encode mismatch, trial " << trial;

    for (int e : {0, 1, opt.t(), opt.t() + 1, opt.t() + 3}) {
      if (e > nsym) continue;
      auto corrupted = cw_opt;
      for (int f = 0; f < e; ++f) {
        const auto pos = rng.uniform_int(static_cast<std::uint64_t>(nsym));
        corrupted[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_int(
                              std::uint64_t{255}));
      }
      const auto a = opt.decode(corrupted);
      const auto b = ref.decode(corrupted);
      ASSERT_EQ(a.status, b.status) << "e=" << e << " trial " << trial;
      ASSERT_EQ(a.data, b.data) << "e=" << e << " trial " << trial;
      ASSERT_EQ(a.corrected_symbols, b.corrected_symbols)
          << "e=" << e << " trial " << trial;
    }
  }
}

TEST(EccEquivalence, RsT4K64MatchesReference) {
  const ecc::RsParams p{4, 64};  // the controller's chipkill configuration
  ecc::RsCode opt(p);
  refimpl::RefRsCode ref(p);
  Rng rng(301);
  check_rs_pair(opt, ref, rng, 150);
}

TEST(EccEquivalence, RsT16MatchesReference) {
  const ecc::RsParams p{16, 128};
  ecc::RsCode opt(p);
  refimpl::RefRsCode ref(p);
  Rng rng(302);
  check_rs_pair(opt, ref, rng, 40);
}

// ---------------------------------------------------------------------------
// GF arithmetic (the table-indexing change underneath everything above)

TEST(EccEquivalence, GfMulDivMatchReferenceExhaustiveM8) {
  const ecc::GF2m f(8);
  const refimpl::RefGF2m r(8);
  for (std::uint32_t a = 0; a < 256; ++a) {
    for (std::uint32_t b = 0; b < 256; ++b) {
      ASSERT_EQ(f.mul(a, b), r.mul(a, b)) << a << "*" << b;
      if (b != 0) ASSERT_EQ(f.div(a, b), r.div(a, b)) << a << "/" << b;
    }
  }
}

// ---------------------------------------------------------------------------
// Campaign: the codec pair must agree inside parallel jobs, and the merged
// results must be identical at 1, 2 and 8 worker threads.

TEST(EccEquivalence, IdenticalAcross1And2And8Threads) {
  const auto run_at = [](unsigned threads) {
    sim::CampaignConfig cfg;
    cfg.threads = threads;
    cfg.seed = 88;
    cfg.progress = false;
    sim::Campaign c("ecc-equivalence", cfg);
    return c.map<std::string>(8, [](const sim::JobContext& ctx) {
      Rng rng(ctx.stream_seed | 1);
      const ecc::BchParams p{10, 1 + static_cast<int>(ctx.index % 8), 512};
      ecc::BchCode opt(p);
      refimpl::RefBchCode ref(p);
      std::ostringstream os;
      for (int trial = 0; trial < 4; ++trial) {
        BitVec cw = opt.encode(random_bits(rng, p.k_data));
        const int e = static_cast<int>(rng.uniform_int(
            static_cast<std::uint64_t>(p.t + 3)));
        for (int f = 0; f < e; ++f)
          cw.flip(rng.uniform_int(static_cast<std::uint64_t>(opt.code_bits())));
        const auto a = opt.decode(cw);
        const auto b = ref.decode(cw);
        os << (a.status == b.status && a.data == b.data &&
                       a.corrected_bits == b.corrected_bits
                   ? "match"
                   : "MISMATCH")
           << " e=" << e << " corrected=" << a.corrected_bits << "\n";
      }
      return os.str();
    });
  };
  const auto one = run_at(1);
  const auto two = run_at(2);
  const auto eight = run_at(8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  for (const std::string& d : one)
    EXPECT_EQ(d.find("MISMATCH"), std::string::npos) << d;
}

}  // namespace
}  // namespace densemem
