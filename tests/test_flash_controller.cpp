#include "flash/controller.h"

#include <gtest/gtest.h>

#include "common/check.h"

#include "common/rng.h"

namespace densemem::flash {
namespace {

FlashConfig ctrl_flash(std::uint64_t seed = 31) {
  FlashConfig cfg;
  cfg.geometry = {4, 8, 2048};
  cfg.seed = seed;
  return cfg;
}

BitVec random_payload(Rng& rng, std::uint32_t bits) {
  BitVec v(bits);
  for (std::size_t w = 0; w < v.word_count(); ++w) v.set_word(w, rng.next_u64());
  return v;
}

TEST(FlashController, LayoutAndOverhead) {
  FlashDevice dev(ctrl_flash());
  FlashController ctrl(dev, FlashCtrlConfig{});  // t=8: chunk 512+80=592
  EXPECT_EQ(ctrl.chunks_per_page(), 3u);         // 3*592 = 1776 <= 2048
  EXPECT_EQ(ctrl.payload_bits(), 1536u);
  EXPECT_NEAR(ctrl.ecc_overhead(), 80.0 / 592.0, 1e-12);
}

TEST(FlashController, FreshRoundTripClean) {
  FlashDevice dev(ctrl_flash());
  FlashController ctrl(dev, FlashCtrlConfig{});
  Rng rng(1);
  for (std::uint32_t wl = 0; wl < 4; ++wl) {
    const auto lsb = random_payload(rng, ctrl.payload_bits());
    const auto msb = random_payload(rng, ctrl.payload_bits());
    ctrl.program_page({0, wl, PageType::kLsb}, lsb, 0.0);
    ctrl.program_page({0, wl, PageType::kMsb}, msb, 0.0);
    const auto rl = ctrl.read_page({0, wl, PageType::kLsb}, 0.0);
    const auto rm = ctrl.read_page({0, wl, PageType::kMsb}, 0.0);
    EXPECT_FALSE(rl.uncorrectable);
    EXPECT_FALSE(rm.uncorrectable);
    EXPECT_EQ(rl.data, lsb);
    EXPECT_EQ(rm.data, msb);
  }
}

TEST(FlashController, EccCorrectsAgedPage) {
  FlashDevice dev(ctrl_flash(37));
  FlashController ctrl(dev, FlashCtrlConfig{});
  Rng rng(2);
  dev.age_block(0, 4000);
  dev.erase_block(0, 0.0);
  // Distinct payloads: identical LSB/MSB data would only populate the ER
  // and P2 states (never P3), starving the MSB read of error mechanisms.
  const auto lsb_payload = random_payload(rng, ctrl.payload_bits());
  const auto payload = random_payload(rng, ctrl.payload_bits());
  ctrl.program_page({0, 0, PageType::kLsb}, lsb_payload, 0.0);
  ctrl.program_page({0, 0, PageType::kMsb}, payload, 0.0);
  const double month = 60 * 86400.0;
  const auto raw = ctrl.raw_bit_errors({0, 0, PageType::kMsb}, payload, month);
  const auto r = ctrl.read_page({0, 0, PageType::kMsb}, month);
  EXPECT_GT(raw, 0u) << "aged page should have raw errors";
  EXPECT_FALSE(r.uncorrectable);
  EXPECT_EQ(r.data, payload);
  EXPECT_GT(r.corrected_bits, 0);
}

TEST(FlashController, ReadRetryRecoversShiftedPage) {
  // Age far enough that the nominal references fail but shifted ones work.
  FlashConfig fc = ctrl_flash(41);
  fc.cell.leak_sigma = 0.1;  // uniform shift: ideal for reference tuning
  FlashDevice dev(fc);
  Rng rng(3);
  dev.age_block(0, 12000);
  dev.erase_block(0, 0.0);
  const auto lsb_payload = random_payload(rng, 1536);
  const auto payload = random_payload(rng, 1536);

  FlashCtrlConfig with_retry;
  with_retry.retry_steps = 6;  // offsets to -0.24: covers the drift window
  FlashCtrlConfig without_retry;
  without_retry.enable_read_retry = false;
  FlashController ctrl_a(dev, with_retry);
  ctrl_a.program_page({0, 0, PageType::kLsb}, lsb_payload, 0.0);
  ctrl_a.program_page({0, 0, PageType::kMsb}, payload, 0.0);

  // Find an age where the plain read fails but retry succeeds.
  bool demonstrated = false;
  for (double days = 1; days <= 4000; days *= 1.3) {
    const double t = days * 86400.0;
    FlashController plain(dev, without_retry);
    FlashController retry(dev, with_retry);
    const auto rp = plain.read_page({0, 0, PageType::kMsb}, t);
    const auto rr = retry.read_page({0, 0, PageType::kMsb}, t);
    if (rp.uncorrectable && !rr.uncorrectable && rr.data == payload) {
      EXPECT_LT(rr.ref_offset, 0.0) << "retention shift is downward";
      demonstrated = true;
      break;
    }
  }
  EXPECT_TRUE(demonstrated)
      << "no age separated plain failure from retry success";
}

TEST(FlashController, RefreshBlockResetsRetentionClock) {
  FlashDevice dev(ctrl_flash(43));
  FlashController ctrl(dev, FlashCtrlConfig{});
  Rng rng(4);
  dev.age_block(0, 4000);
  dev.erase_block(0, 0.0);
  std::vector<BitVec> payloads;
  for (std::uint32_t wl = 0; wl < dev.geometry().wordlines; ++wl) {
    for (PageType t : {PageType::kLsb, PageType::kMsb}) {
      payloads.push_back(random_payload(rng, ctrl.payload_bits()));
      ctrl.program_page({0, wl, t}, payloads.back(), 0.0);
    }
  }
  const double month = 30 * 86400.0;
  EXPECT_TRUE(ctrl.refresh_block(0, month));
  // Immediately after refresh the raw error count at +1 month is the same
  // as a fresh page's, not a 2-month-old page's; data still round-trips.
  std::size_t idx = 0;
  for (std::uint32_t wl = 0; wl < dev.geometry().wordlines; ++wl) {
    for (PageType t : {PageType::kLsb, PageType::kMsb}) {
      const auto r = ctrl.read_page({0, wl, t}, month + 60.0);
      ASSERT_FALSE(r.uncorrectable);
      ASSERT_EQ(r.data, payloads[idx]) << "wl " << wl;
      ++idx;
    }
  }
  EXPECT_EQ(dev.pe_cycles(0), 4002u);  // initial + explicit + refresh erase
}

TEST(FlashController, PageTooSmallForChunkRejected) {
  FlashConfig fc = ctrl_flash();
  fc.geometry.page_bits = 256;  // < 592-bit chunk
  FlashDevice dev(fc);
  EXPECT_THROW(FlashController(dev, FlashCtrlConfig{}), CheckError);
}

TEST(FlashController, PayloadSizeMismatchRejected) {
  FlashDevice dev(ctrl_flash());
  FlashController ctrl(dev, FlashCtrlConfig{});
  EXPECT_THROW(ctrl.program_page({0, 0, PageType::kLsb}, BitVec(100), 0.0),
               CheckError);
}

TEST(FlashController, StrongerEccSurvivesLonger) {
  // Same device state, t=4 vs t=12: the stronger code tolerates an age the
  // weaker one cannot.
  Rng rng(5);
  const auto make = [&](int t, double age_days) {
    FlashConfig fc = ctrl_flash(47);
    FlashDevice dev(fc);
    dev.age_block(0, 9000);
    dev.erase_block(0, 0.0);
    FlashCtrlConfig cc;
    cc.ecc_t = t;
    cc.enable_read_retry = false;
    FlashController ctrl(dev, cc);
    Rng prng(6);
    const auto lsb_payload = random_payload(prng, ctrl.payload_bits());
    const auto payload = random_payload(prng, ctrl.payload_bits());
    ctrl.program_page({0, 0, PageType::kLsb}, lsb_payload, 0.0);
    ctrl.program_page({0, 0, PageType::kMsb}, payload, 0.0);
    const auto r = ctrl.read_page({0, 0, PageType::kMsb}, age_days * 86400.0);
    return !r.uncorrectable;
  };
  // Find an age where t=4 fails; t=12 must still succeed there.
  bool separated = false;
  for (double days = 5; days <= 3000; days *= 1.25) {
    if (!make(4, days)) {
      EXPECT_TRUE(make(12, days)) << "t=12 failed where t=4 first failed";
      separated = true;
      break;
    }
  }
  EXPECT_TRUE(separated) << "t=4 never failed in the sweep";
}

}  // namespace
}  // namespace densemem::flash
