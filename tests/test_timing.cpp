#include "dram/timing.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace densemem::dram {
namespace {

TEST(Timing, Ddr3Defaults) {
  const Timing t = Timing::ddr3_1600();
  EXPECT_EQ(t.tREFW, Time::ms(64));
  EXPECT_EQ(t.refs_per_window(), 8192);
  // ~64 ms / 48.75 ns ≈ 1.31 M activations: the ISCA'14 "maximum hammers in
  // one refresh window" figure.
  EXPECT_NEAR(static_cast<double>(t.max_activations_per_window()), 1.31e6,
              0.03e6);
  EXPECT_GT(t.tRC, t.tRAS);
  EXPECT_GT(t.tRAS, t.tRP);
}

TEST(Timing, Ddr4FasterClock) {
  const Timing d3 = Timing::ddr3_1600();
  const Timing d4 = Timing::ddr4_2400();
  EXPECT_LT(d4.tCK, d3.tCK);
  EXPECT_EQ(d4.refs_per_window(), 8192);
}

class RefreshMultiplierTest : public ::testing::TestWithParam<double> {};

TEST_P(RefreshMultiplierTest, ScalesWindowAndInterval) {
  const double k = GetParam();
  const Timing base = Timing::ddr3_1600();
  const Timing t = base.with_refresh_multiplier(k);
  EXPECT_NEAR(static_cast<double>(t.tREFI.picoseconds()),
              static_cast<double>(base.tREFI.picoseconds()) / k, 2.0);
  EXPECT_NEAR(static_cast<double>(t.tREFW.picoseconds()),
              static_cast<double>(base.tREFW.picoseconds()) / k, 2.0);
  // Fewer activations fit in the shortened window (equal at k = 1).
  if (k > 1.0) {
    EXPECT_LT(t.max_activations_per_window(),
              base.max_activations_per_window());
  }
  // tRC unchanged: the multiplier only touches refresh cadence.
  EXPECT_EQ(t.tRC, base.tRC);
}

INSTANTIATE_TEST_SUITE_P(Factors, RefreshMultiplierTest,
                         ::testing::Values(1.0, 2.0, 4.0, 7.0, 16.0));

TEST(Timing, MultiplierBelowOneRejected) {
  EXPECT_THROW(Timing::ddr3_1600().with_refresh_multiplier(0.5), CheckError);
}

TEST(Timing, AbsurdMultiplierRejected) {
  // tREFI must stay above tRFC or refresh starves the rank.
  EXPECT_THROW(Timing::ddr3_1600().with_refresh_multiplier(50.0), CheckError);
}

}  // namespace
}  // namespace densemem::dram
