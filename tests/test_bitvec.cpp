#include "common/bitvec.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace densemem {
namespace {

TEST(BitVec, DefaultIsEmpty) {
  BitVec v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, ConstructFilled) {
  BitVec v(130, true);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.popcount(), 130u);
  // The partial last word must be trimmed so popcount stays exact.
  EXPECT_EQ(v.word_count(), 3u);
}

TEST(BitVec, SetGetFlip) {
  BitVec v(100);
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(99);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(99));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.popcount(), 4u);
  v.flip(0);
  EXPECT_FALSE(v.get(0));
  v.clear(63);
  EXPECT_FALSE(v.get(63));
  EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVec, SetBitsAscending) {
  BitVec v(200);
  v.set(5);
  v.set(64);
  v.set(190);
  const auto bits = v.set_bits();
  ASSERT_EQ(bits.size(), 3u);
  EXPECT_EQ(bits[0], 5u);
  EXPECT_EQ(bits[1], 64u);
  EXPECT_EQ(bits[2], 190u);
}

TEST(BitVec, XorAndHamming) {
  BitVec a(128), b(128);
  a.set(3);
  a.set(70);
  b.set(70);
  b.set(100);
  EXPECT_EQ(BitVec::hamming_distance(a, b), 2u);
  const BitVec c = a ^ b;
  EXPECT_TRUE(c.get(3));
  EXPECT_FALSE(c.get(70));
  EXPECT_TRUE(c.get(100));
}

TEST(BitVec, AndOr) {
  BitVec a(64), b(64);
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  EXPECT_EQ((a & b).set_bits(), (std::vector<std::size_t>{2}));
  EXPECT_EQ((a | b).set_bits(), (std::vector<std::size_t>{1, 2, 3}));
}

TEST(BitVec, SizeMismatchThrows) {
  BitVec a(64), b(65);
  EXPECT_THROW(a ^= b, CheckError);
  EXPECT_THROW(BitVec::hamming_distance(a, b), CheckError);
}

TEST(BitVec, WordAccessTrimsTail) {
  BitVec v(70);
  v.set_word(1, ~std::uint64_t{0});
  // Only bits 64..69 exist in word 1.
  EXPECT_EQ(v.popcount(), 6u);
  EXPECT_EQ(v.word(1), 0x3Fu);
}

TEST(BitVec, FillStripes) {
  BitVec v(16);
  v.fill_stripes(1);
  // stride 1: bit i set iff i even.
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(v.get(i), i % 2 == 0);
  v.fill_stripes(4, true);
  // stride 4, inverted phase: groups of four, first group clear.
  EXPECT_FALSE(v.get(0));
  EXPECT_FALSE(v.get(3));
  EXPECT_TRUE(v.get(4));
  EXPECT_TRUE(v.get(7));
  EXPECT_FALSE(v.get(8));
}

TEST(BitVec, EqualityIncludesLength) {
  BitVec a(10), b(10), c(11);
  EXPECT_EQ(a, b);
  a.set(3);
  EXPECT_NE(a, b);
  b.set(3);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

// --- Word-boundary edge cases: tail words and cross-word bit ranges -------

TEST(BitVec, TailWordStaysTrimmedThroughEveryMutator) {
  for (std::size_t n : {1ul, 63ul, 65ul, 127ul, 130ul}) {
    BitVec v(n);
    v.fill(true);
    EXPECT_EQ(v.popcount(), n) << "n=" << n;
    // The physical tail word must hold no bits beyond size().
    if (n % 64 != 0)
      EXPECT_EQ(v.word(v.word_count() - 1),
                (std::uint64_t{1} << (n % 64)) - 1)
          << "n=" << n;
    // set/flip/clear of the last valid bit never touches ghost bits.
    v.flip(n - 1);
    v.set(n - 1);
    v.clear(n - 1);
    EXPECT_EQ(v.popcount(), n - 1) << "n=" << n;
    // set_word on the tail word trims the ghost range: bit n-1 (cleared
    // above, and always inside the tail word since n % 64 != 0 here) comes
    // back, and nothing beyond size() is counted.
    v.set_word(v.word_count() - 1, ~std::uint64_t{0});
    EXPECT_EQ(v.popcount(), n) << "n=" << n;
  }
}

TEST(BitVec, TailWordSurvivesBitwiseOperators) {
  const std::size_t n = 70;  // one full word + 6-bit tail
  BitVec a(n, true), b(n);
  b.set(69);
  b.set(64);
  b.set(63);
  const BitVec x = a ^ b;
  EXPECT_EQ(x.popcount(), n - 3);
  EXPECT_FALSE(x.get(69));
  EXPECT_FALSE(x.get(64));
  EXPECT_FALSE(x.get(63));
  EXPECT_EQ((a & b).popcount(), 3u);
  EXPECT_EQ((a | b).popcount(), n);
  EXPECT_EQ(BitVec::hamming_distance(a, b), n - 3);
  // The last set bit reported must be a real one, not a ghost.
  EXPECT_EQ((a | b).set_bits().back(), n - 1);
}

TEST(BitVec, CrossWordBitRangesEnumerateInOrder) {
  // Set bits straddling every word boundary of a 4-word vector, plus both
  // ends; set_bits() must report them ascending with none lost at seams.
  BitVec v(256);
  const std::vector<std::size_t> picks = {0,   62,  63,  64,  65,  126, 127,
                                          128, 129, 190, 191, 192, 193, 255};
  for (std::size_t i : picks) v.set(i);
  EXPECT_EQ(v.set_bits(), picks);
  EXPECT_EQ(v.popcount(), picks.size());
  // Clearing exactly the boundary-straddling pairs keeps neighbours intact.
  for (std::size_t i : {63ul, 64ul, 127ul, 128ul, 191ul, 192ul}) v.clear(i);
  EXPECT_EQ(v.popcount(), picks.size() - 6);
  EXPECT_TRUE(v.get(62));
  EXPECT_TRUE(v.get(65));
  EXPECT_TRUE(v.get(129));
}

TEST(BitVec, StripesAcrossWordBoundaries) {
  // Stride 63 on a 130-bit vector: group edges land mid-word, at a word
  // boundary, and inside the tail word.
  BitVec v(130);
  v.fill_stripes(63);
  for (std::size_t i = 0; i < 130; ++i)
    EXPECT_EQ(v.get(i), (i / 63) % 2 == 0) << "i=" << i;
  // Word-width stride: word 0 set, word 1 clear, tail follows word parity.
  v.fill_stripes(64);
  EXPECT_EQ(v.word(0), ~std::uint64_t{0});
  EXPECT_EQ(v.word(1), 0u);
  EXPECT_TRUE(v.get(128));
  EXPECT_TRUE(v.get(129));
  EXPECT_EQ(v.popcount(), 66u);
}

class PopcountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PopcountSweep, EverySetBitCounted) {
  const std::size_t n = GetParam();
  BitVec v(n);
  std::size_t expected = 0;
  for (std::size_t i = 0; i < n; i += 7) {
    v.set(i);
    ++expected;
  }
  EXPECT_EQ(v.popcount(), expected);
  EXPECT_EQ(v.set_bits().size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PopcountSweep,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 129, 513,
                                           2048));

}  // namespace
}  // namespace densemem
