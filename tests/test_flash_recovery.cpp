// RFR (Retention Failure Recovery) and NAC (Neighbor-cell Assisted
// Correction) behaviour (§III-A2 / §III-B).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "flash/controller.h"

namespace densemem::flash {
namespace {

BitVec random_payload(Rng& rng, std::uint32_t bits) {
  BitVec v(bits);
  for (std::size_t w = 0; w < v.word_count(); ++w) v.set_word(w, rng.next_u64());
  return v;
}

TEST(Rfr, RecoversUncorrectablePage) {
  // High leak variation (the phenomenon RFR exploits) + heavy age: plain
  // ECC and read-retry fail, RFR pulls the page back.
  FlashConfig fc;
  fc.geometry = {2, 8, 2048};
  fc.seed = 51;
  fc.cell.leak_sigma = 0.8;
  FlashDevice dev(fc);
  dev.age_block(0, 8000);
  dev.erase_block(0, 0.0);

  FlashCtrlConfig no_rfr;
  no_rfr.enable_read_retry = true;
  FlashCtrlConfig with_rfr = no_rfr;
  with_rfr.enable_rfr = true;

  FlashController writer(dev, no_rfr);
  Rng rng(7);
  const auto payload = random_payload(rng, writer.payload_bits());
  const auto msb_payload = random_payload(rng, writer.payload_bits());
  writer.program_page({0, 0, PageType::kLsb}, payload, 0.0);
  writer.program_page({0, 0, PageType::kMsb}, msb_payload, 0.0);

  bool demonstrated = false;
  for (double days = 20; days <= 20000; days *= 1.25) {
    const double t = days * 86400.0;
    FlashController plain(dev, no_rfr);
    FlashController rfr(dev, with_rfr);
    const auto rp = plain.read_page({0, 0, PageType::kLsb}, t);
    if (!rp.uncorrectable) continue;
    const auto rr = rfr.read_page({0, 0, PageType::kLsb}, t);
    if (!rr.uncorrectable) {
      EXPECT_TRUE(rr.used_rfr);
      EXPECT_EQ(rr.data, payload) << "RFR recovered wrong data";
      demonstrated = true;
    }
    break;
  }
  EXPECT_TRUE(demonstrated)
      << "found no age where plain ECC failed and RFR succeeded";
}

TEST(Rfr, DisabledMeansUncorrectableStaysUncorrectable) {
  FlashConfig fc;
  fc.geometry = {2, 8, 2048};
  fc.seed = 51;
  fc.cell.leak_sigma = 0.8;
  FlashDevice dev(fc);
  dev.age_block(0, 8000);
  dev.erase_block(0, 0.0);
  FlashCtrlConfig cc;
  cc.enable_read_retry = false;
  FlashController ctrl(dev, cc);
  Rng rng(7);
  const auto payload = random_payload(rng, ctrl.payload_bits());
  const auto msb_payload = random_payload(rng, ctrl.payload_bits());
  ctrl.program_page({0, 0, PageType::kLsb}, payload, 0.0);
  ctrl.program_page({0, 0, PageType::kMsb}, msb_payload, 0.0);
  const auto r = ctrl.read_page({0, 0, PageType::kLsb}, 50000.0 * 86400.0);
  EXPECT_TRUE(r.uncorrectable);
  EXPECT_FALSE(r.used_rfr);
}

TEST(Nac, CompensatesProgramInterference) {
  // Strong interference from the later-programmed neighbour wordline: NAC
  // reads the neighbour and adjusts references per cell.
  FlashConfig fc;
  fc.geometry = {2, 8, 2048};
  fc.seed = 53;
  fc.cell.interference_gamma = 0.22;  // exaggerated coupling
  fc.cell.prog_sigma = 0.09;
  FlashDevice dev(fc);
  Rng rng(8);

  FlashCtrlConfig base;
  base.ecc_t = 4;
  base.enable_read_retry = false;
  FlashCtrlConfig nac = base;
  nac.enable_nac = true;

  FlashController writer(dev, base);
  const auto victim_payload = random_payload(rng, writer.payload_bits());
  writer.program_page({0, 2, PageType::kLsb}, victim_payload, 0.0);
  writer.program_page({0, 2, PageType::kMsb}, victim_payload, 0.0);
  // Program the interfering neighbour afterwards (in-order programming).
  const auto aggressor_payload = random_payload(rng, writer.payload_bits());
  writer.program_page({0, 3, PageType::kLsb}, aggressor_payload, 0.0);
  writer.program_page({0, 3, PageType::kMsb}, aggressor_payload, 0.0);

  FlashController plain(dev, base);
  FlashController assisted(dev, nac);
  const auto rp = plain.read_page({0, 2, PageType::kMsb}, 10.0);
  const auto rn = assisted.read_page({0, 2, PageType::kMsb}, 10.0);
  ASSERT_TRUE(rp.uncorrectable)
      << "interference too weak to defeat plain ECC; test needs retuning";
  EXPECT_FALSE(rn.uncorrectable);
  EXPECT_TRUE(rn.used_nac);
  EXPECT_EQ(rn.data, victim_payload);
}

TEST(Nac, NoNeighborMeansNoNac) {
  FlashConfig fc;
  fc.geometry = {2, 4, 2048};
  fc.seed = 55;
  FlashDevice dev(fc);
  FlashCtrlConfig cc;
  cc.enable_nac = true;
  cc.enable_read_retry = false;
  FlashController ctrl(dev, cc);
  Rng rng(9);
  const auto payload = random_payload(rng, ctrl.payload_bits());
  // Last wordline: no later-programmed neighbour exists.
  ctrl.program_page({0, 3, PageType::kLsb}, payload, 0.0);
  const auto r = ctrl.read_page({0, 3, PageType::kLsb}, 1.0);
  EXPECT_FALSE(r.used_nac);
  EXPECT_FALSE(r.uncorrectable);
}

TEST(Rfr, ReducesUncorrectablePageCount) {
  // Sweep retention ages over a whole worn block: with high leak-speed
  // variation, enabling RFR strictly reduces the number of uncorrectable
  // page reads (the §III-A2 "significant reductions in bit error rate").
  auto uncorrectable_with = [](bool enable_rfr) {
    FlashConfig fc;
    fc.geometry = {2, 8, 2048};
    fc.seed = 57;
    fc.cell.leak_sigma = 0.8;
    FlashDevice dev(fc);
    dev.age_block(0, 8000);
    dev.erase_block(0, 0.0);
    FlashCtrlConfig cc;
    cc.enable_read_retry = false;
    cc.enable_rfr = enable_rfr;
    FlashController ctrl(dev, cc);
    Rng rng(10);
    for (std::uint32_t wl = 0; wl < 8; ++wl) {
      ctrl.program_page({0, wl, PageType::kLsb},
                        random_payload(rng, ctrl.payload_bits()), 0.0);
      ctrl.program_page({0, wl, PageType::kMsb},
                        random_payload(rng, ctrl.payload_bits()), 0.0);
    }
    int uncorrectable = 0;
    // Sweep the regime where pages are failing but not yet obliterated --
    // past ~1 year at this wear even RFR's band cannot reach the cells.
    for (double days = 5; days <= 640; days *= 2.0) {
      for (std::uint32_t wl = 0; wl < 8; ++wl) {
        for (PageType t : {PageType::kLsb, PageType::kMsb}) {
          const auto r = ctrl.read_page({0, wl, t}, days * 86400.0);
          if (r.uncorrectable) ++uncorrectable;
        }
      }
    }
    return uncorrectable;
  };
  const int plain = uncorrectable_with(false);
  const int rfr = uncorrectable_with(true);
  ASSERT_GT(plain, 0) << "sweep never produced uncorrectable pages";
  EXPECT_LT(rfr, plain);
}

}  // namespace
}  // namespace densemem::flash
