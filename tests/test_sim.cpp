// Tests for the sim/ campaign engine. Every test name is prefixed "Sim"
// so CI's ThreadSanitizer job can select exactly this suite
// (ctest -R '^Sim').
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/rng.h"
#include "sim/campaign.h"
#include "sim/fault.h"
#include "sim/fleet.h"
#include "sim/journal.h"
#include "sim/progress.h"
#include "sim/result_sink.h"
#include "sim/retry.h"
#include "sim/thread_pool.h"

namespace densemem::sim {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(SimThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(SimThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 5u}) {
    for (std::size_t chunk : {std::size_t{1}, std::size_t{7}}) {
      ThreadPool pool(threads);
      std::vector<std::atomic<int>> hits(83);
      pool.parallel_for(hits.size(), chunk, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
      });
      for (auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
  }
}

TEST(SimThreadPool, ParallelForZeroJobsIsANoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, 4, [](std::size_t, std::size_t) { FAIL(); });
}

TEST(SimThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64, 1,
                        [](std::size_t b, std::size_t) {
                          if (b == 13) throw std::runtime_error("job 13 died");
                        }),
      std::runtime_error);
}

TEST(SimThreadPool, SubmitExceptionSurfacesInWait) {
  ThreadPool pool(2);
  pool.submit([] { throw std::logic_error("boom"); });
  EXPECT_THROW(pool.wait(), std::logic_error);
}

TEST(SimThreadPool, PoolIsReusableAfterAnException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(8, 1,
                                 [](std::size_t, std::size_t) {
                                   throw std::runtime_error("first run");
                                 }),
               std::runtime_error);
  std::atomic<int> count{0};
  pool.parallel_for(8, 1,
                    [&](std::size_t b, std::size_t e) {
                      count.fetch_add(static_cast<int>(e - b));
                    });
  pool.wait();  // second wait must not re-throw the consumed error
  EXPECT_EQ(count.load(), 8);
}

TEST(SimThreadPool, ParallelForBodyIsSafeUnderRepeatedShortGrids) {
  // Regression: the drivers used to capture the caller's `body` argument by
  // reference; a chunk task still draining the queue after parallel_for
  // returned would then touch a dead stack frame. Hammering many short
  // grids through one pool (each with its own short-lived body closure)
  // makes TSan/ASan flag any such lifetime escape.
  ThreadPool pool(4);
  std::atomic<long long> total{0};
  for (int round = 0; round < 200; ++round) {
    std::vector<int> scratch(17, round);
    pool.parallel_for(scratch.size(), 1, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) total.fetch_add(scratch[i]);
    });
  }
  EXPECT_EQ(total.load(), 17LL * 199 * 200 / 2);
}

TEST(SimThreadPool, FailureCancelsOutstandingChunks) {
  // With 1 worker and 1-index chunks the failing chunk runs first and every
  // later chunk must be abandoned — exception handling may not hang or run
  // the full grid to completion.
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(1000, 1,
                                 [&](std::size_t b, std::size_t) {
                                   if (b == 0) throw std::runtime_error("die");
                                   ran.fetch_add(1);
                                 }),
               std::runtime_error);
  EXPECT_LT(ran.load(), 1000);
}

// ------------------------------------------------------------------ Campaign

TEST(SimCampaign, StreamSeedsAreHashCoordsOfSeedAndIndex) {
  CampaignConfig cfg;
  cfg.threads = 1;
  cfg.seed = 42;
  cfg.progress = false;
  Campaign c("seeds", cfg);
  const auto seeds =
      c.map<std::uint64_t>(16, [](const JobContext& ctx) {
        EXPECT_EQ(ctx.count, 16u);
        return ctx.stream_seed;
      });
  for (std::size_t i = 0; i < seeds.size(); ++i)
    EXPECT_EQ(seeds[i], hash_coords(42, static_cast<std::uint64_t>(i)));
}

// A miniature campaign: per-job Monte Carlo from the job's own stream,
// emitting both a map() result and TableSink rows. The merged output must
// be byte-identical at 1, 2, and 8 threads.
std::pair<std::string, std::vector<double>> run_mini_campaign(unsigned threads) {
  CampaignConfig cfg;
  cfg.threads = threads;
  cfg.seed = 2014;
  cfg.progress = false;
  Campaign c("mini", cfg);
  TableSink sink({"job", "sum", "coin"});
  sink.set_precision(6);
  auto means = c.map<double>(37, [&](const JobContext& ctx) {
    Rng rng = ctx.make_rng();
    double sum = 0;
    for (int k = 0; k < 500; ++k) sum += rng.uniform();
    Rng sub(ctx.substream(1));
    sink.add(ctx.index, {std::uint64_t{ctx.index}, sum,
                         std::uint64_t{sub.next_u64() & 1}});
    return sum / 500.0;
  });
  std::ostringstream os;
  sink.merged().print_csv(os);
  return {os.str(), means};
}

TEST(SimCampaign, MergedResultsAreIdenticalAcross1And2And8Threads) {
  const auto serial = run_mini_campaign(1);
  const auto two = run_mini_campaign(2);
  const auto eight = run_mini_campaign(8);
  EXPECT_EQ(serial.first, two.first);    // byte-identical CSV merge
  EXPECT_EQ(serial.first, eight.first);
  EXPECT_EQ(serial.second, two.second);  // bit-identical doubles
  EXPECT_EQ(serial.second, eight.second);
}

TEST(SimCampaign, WorkerExceptionPropagatesNotSwallowed) {
  for (unsigned threads : {1u, 4u}) {
    CampaignConfig cfg;
    cfg.threads = threads;
    cfg.progress = false;
    Campaign c("failing", cfg);
    EXPECT_THROW(c.for_each(32,
                            [](const JobContext& ctx) {
                              if (ctx.index == 7)
                                throw std::runtime_error("job 7 failed");
                            }),
                 std::runtime_error);
  }
}

TEST(SimCampaign, StatsReportGridAndResolvedThreads) {
  CampaignConfig cfg;
  cfg.threads = 3;
  cfg.progress = false;
  Campaign c("stats", cfg);
  c.for_each(12, [](const JobContext&) {});
  EXPECT_EQ(c.last_stats().jobs, 12u);
  EXPECT_EQ(c.last_stats().threads, 3u);
  EXPECT_GE(c.last_stats().wall_seconds, 0.0);
  EXPECT_EQ(c.threads(), 3u);
}

TEST(SimCampaign, ZeroThreadsResolvesToHardwareConcurrency) {
  Campaign c("auto", {});
  EXPECT_EQ(c.threads(), ThreadPool::default_threads());
  EXPECT_GE(c.threads(), 1u);
}

// --------------------------------------------------------------- RetryPolicy

TEST(SimRetryPolicy, BackoffScheduleIsDeterministicAndCapped) {
  RetryPolicy p;
  p.max_attempts = 5;
  p.backoff_ms = 10.0;
  p.backoff_multiplier = 2.0;
  p.backoff_max_ms = 35.0;
  EXPECT_EQ(p.backoff_for(0), 0.0);  // first try never waits
  EXPECT_EQ(p.backoff_for(1), 10.0);
  EXPECT_EQ(p.backoff_for(2), 20.0);
  EXPECT_EQ(p.backoff_for(3), 35.0);  // 40 capped
  EXPECT_EQ(p.backoff_for(4), 35.0);

  RetryPolicy off;
  off.backoff_ms = 0.0;
  for (unsigned a = 0; a < 4; ++a) EXPECT_EQ(off.backoff_for(a), 0.0);
}

// ------------------------------------------------------------- FaultInjector

TEST(SimFaultInjector, PlanIsPureAndSeedZeroDisables) {
  FaultConfig fc;
  fc.seed = 12345;
  fc.fail_probability = 0.3;
  fc.hang_probability = 0.1;
  const FaultInjector inj(fc);
  EXPECT_TRUE(inj.enabled());
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_EQ(inj.plan(i), inj.plan(i));  // same answer on every call

  FaultConfig off = fc;
  off.seed = 0;
  const FaultInjector disabled(off);
  EXPECT_FALSE(disabled.enabled());
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_EQ(disabled.plan(i), FaultKind::kNone);
}

TEST(SimFaultInjector, DistributionTracksConfiguredProbabilities) {
  FaultConfig fc;
  fc.seed = 99;
  fc.fail_probability = 0.2;
  fc.hang_probability = 0.1;
  const FaultInjector inj(fc);
  std::size_t fails = 0, hangs = 0;
  const std::size_t n = 20000;
  for (std::size_t i = 0; i < n; ++i) {
    const FaultKind k = inj.plan(i);
    fails += k == FaultKind::kFail;
    hangs += k == FaultKind::kHang;
  }
  EXPECT_NEAR(static_cast<double>(fails) / n, 0.2, 0.02);
  EXPECT_NEAR(static_cast<double>(hangs) / n, 0.1, 0.02);
}

TEST(SimFaultInjector, ShouldFaultOnlyOnLeadingAttempts) {
  FaultConfig fc;
  fc.seed = 7;
  fc.fail_probability = 1.0;  // every job is fault-prone
  fc.fail_attempts = 2;
  const FaultInjector inj(fc);
  EXPECT_TRUE(inj.should_fault(0, 0));
  EXPECT_TRUE(inj.should_fault(0, 1));
  EXPECT_FALSE(inj.should_fault(0, 2));  // recovers from attempt 2 on
  EXPECT_FALSE(inj.should_fault(0, 3));
}

// ----------------------------------------------- Campaign / fault tolerance

// The reference workload for the determinism-under-failure tests: per-job
// Monte Carlo from the job's own stream, so any scheduling or retry
// difference that leaked into the RNG would change the bits.
double ft_job(const JobContext& ctx) {
  Rng rng = ctx.make_rng();
  double sum = 0;
  for (int k = 0; k < 200; ++k) sum += rng.uniform();
  return sum;
}

struct FtRun {
  std::vector<double> results;
  std::vector<std::size_t> quarantined;
  CampaignStats stats;
};

FtRun run_ft(unsigned threads, CampaignConfig cfg, std::size_t n = 24) {
  cfg.threads = threads;
  cfg.seed = 77;
  cfg.progress = false;
  Campaign c("ft", cfg);
  FtRun out;
  out.results = c.map<double>(n, ft_job);
  for (const JobFailure& q : c.quarantine()) out.quarantined.push_back(q.index);
  out.stats = c.last_stats();
  return out;
}

TEST(SimCampaignFT, RetriedRunIsByteIdenticalToCleanRunAt1And2And8Threads) {
  const FtRun clean = run_ft(1, CampaignConfig{});

  CampaignConfig faulty;
  faulty.fault.seed = 9;
  faulty.fault.fail_probability = 0.4;
  faulty.fault.fail_attempts = 1;  // fail once, then recover
  faulty.retry.max_attempts = 2;
  // The profile must actually exercise the retry path.
  std::size_t prone = 0;
  const FaultInjector inj(faulty.fault);
  for (std::size_t i = 0; i < 24; ++i) prone += inj.plan(i) != FaultKind::kNone;
  ASSERT_GT(prone, 0u);

  for (unsigned threads : {1u, 2u, 8u}) {
    const FtRun r = run_ft(threads, faulty);
    EXPECT_EQ(r.results, clean.results) << "threads=" << threads;
    EXPECT_EQ(r.stats.retries, prone) << "threads=" << threads;
    EXPECT_TRUE(r.quarantined.empty()) << "threads=" << threads;
    EXPECT_EQ(r.stats.completed, 24u) << "threads=" << threads;
  }
}

TEST(SimCampaignFT, PersistentFailuresQuarantineIdenticallyAcrossWidths) {
  const FtRun clean = run_ft(1, CampaignConfig{});

  CampaignConfig cfg;
  cfg.fault.seed = 31;
  cfg.fault.fail_probability = 0.25;
  cfg.fault.fail_attempts = 100;  // beyond max_attempts: never recovers
  cfg.retry.max_attempts = 2;
  cfg.fail_fast = false;  // degrade mode

  std::vector<std::size_t> expected;
  const FaultInjector inj(cfg.fault);
  for (std::size_t i = 0; i < 24; ++i)
    if (inj.plan(i) != FaultKind::kNone) expected.push_back(i);
  ASSERT_FALSE(expected.empty());

  for (unsigned threads : {1u, 2u, 8u}) {
    const FtRun r = run_ft(threads, cfg);
    EXPECT_EQ(r.quarantined, expected) << "threads=" << threads;
    EXPECT_EQ(r.stats.quarantined, expected.size()) << "threads=" << threads;
    EXPECT_EQ(r.stats.retries, expected.size()) << "threads=" << threads;
    // Output = clean output minus the quarantined slots (which keep their
    // default value).
    const std::set<std::size_t> skip(r.quarantined.begin(),
                                     r.quarantined.end());
    for (std::size_t i = 0; i < 24; ++i) {
      if (skip.count(i))
        EXPECT_EQ(r.results[i], 0.0) << "slot " << i;
      else
        EXPECT_EQ(r.results[i], clean.results[i]) << "slot " << i;
    }
  }
}

TEST(SimCampaignFT, FailFastRethrowsTheInjectedFault) {
  for (unsigned threads : {1u, 4u}) {
    CampaignConfig cfg;
    cfg.fault.seed = 5;
    cfg.fault.fail_probability = 1.0;
    cfg.fault.fail_attempts = 100;
    EXPECT_THROW(run_ft(threads, cfg), InjectedFault) << "threads=" << threads;
  }
}

TEST(SimCampaignFT, WatchdogTimesOutInjectedHangsAndRetrySucceeds) {
  const FtRun clean = run_ft(1, CampaignConfig{}, 4);

  CampaignConfig cfg;
  cfg.fault.seed = 3;
  cfg.fault.hang_probability = 1.0;  // every job hangs on its first attempt
  cfg.fault.hang_seconds = 60.0;     // far beyond the deadline: watchdog only
  cfg.fault.fail_attempts = 1;
  cfg.job_timeout_s = 0.05;
  cfg.retry.max_attempts = 2;
  const FtRun r = run_ft(2, cfg, 4);
  EXPECT_EQ(r.results, clean.results);
  EXPECT_EQ(r.stats.retries, 4u);  // each hang became a JobTimeout + retry
  EXPECT_TRUE(r.quarantined.empty());
}

TEST(SimCampaignFT, AbortAfterThrowsCampaignInterrupted) {
  CampaignConfig cfg;
  cfg.abort_after = 3;
  EXPECT_THROW(run_ft(1, cfg, 10), CampaignInterrupted);
}

// ------------------------------------------------------------------- Journal

std::string temp_journal_path(const char* name) {
  return testing::TempDir() + "densemem_" + name + "_" +
         std::to_string(::getpid()) + ".journal";
}

TEST(SimJournal, PayloadRoundTripIsBitExact) {
  PayloadWriter pw;
  pw.u64(~std::uint64_t{0});
  pw.i64(-42);
  pw.f64(0.1);
  pw.f64(-0.0);
  pw.f64(5e-324);  // denormal
  pw.f64(1.0 / 3.0);
  pw.str("has space % and\ttabs");
  pw.str("");
  const std::string payload = pw.take();

  PayloadReader pr(payload);
  EXPECT_EQ(pr.u64(), ~std::uint64_t{0});
  EXPECT_EQ(pr.i64(), -42);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(pr.f64()),
            std::bit_cast<std::uint64_t>(0.1));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(pr.f64()),
            std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(pr.f64()),
            std::bit_cast<std::uint64_t>(5e-324));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(pr.f64()),
            std::bit_cast<std::uint64_t>(1.0 / 3.0));
  EXPECT_EQ(pr.str(), "has space % and\ttabs");
  EXPECT_EQ(pr.str(), "");
  EXPECT_TRUE(pr.done());
  EXPECT_THROW(PayloadReader("not-a-number").u64(), std::runtime_error);
}

TEST(SimJournal, EscapeTokenRoundTripsAndNeverContainsWhitespace) {
  for (const std::string s :
       {std::string(""), std::string("plain"), std::string("a b\tc\nd%e"),
        std::string("%%  %")}) {
    const std::string esc = escape_token(s);
    EXPECT_EQ(esc.find(' '), std::string::npos);
    EXPECT_EQ(esc.find('\t'), std::string::npos);
    EXPECT_EQ(esc.find('\n'), std::string::npos);
    EXPECT_FALSE(esc.empty());
    EXPECT_EQ(unescape_token(esc), s);
  }
}

TEST(SimJournal, WriterReaderRoundTripWithQuarantineAndSections) {
  const std::string path = temp_journal_path("roundtrip");
  {
    JournalWriter w;
    ASSERT_TRUE(w.open(path, /*append=*/false));
    w.begin_section("alpha", 11, 3, "quick");
    w.record_done(0, 1, "10 20");
    w.record_quarantined(2, 3, "boom went the job");
    w.begin_section("beta", 12, 1, "");
    w.record_done(0, 2, "30");
  }
  const Journal j = Journal::load(path);
  ASSERT_NE(j.find("alpha"), nullptr);
  ASSERT_NE(j.find("beta"), nullptr);
  const Journal::Section& a = *j.find("alpha");
  EXPECT_EQ(a.seed, 11u);
  EXPECT_EQ(a.jobs, 3u);
  EXPECT_EQ(a.tag, "quick");
  ASSERT_EQ(a.records.size(), 2u);
  EXPECT_EQ(a.records.at(0).payload, "10 20");
  EXPECT_EQ(a.records.at(0).attempts, 1u);
  EXPECT_FALSE(a.records.at(0).quarantined);
  EXPECT_TRUE(a.records.at(2).quarantined);
  EXPECT_EQ(a.records.at(2).error, "boom went the job");
  EXPECT_EQ(a.records.at(2).attempts, 3u);
  const Journal::Section& b = *j.find("beta");
  EXPECT_EQ(b.tag, "");
  EXPECT_EQ(b.records.at(0).payload, "30");
  std::remove(path.c_str());
}

TEST(SimJournal, TornFinalLineIsDroppedButCorruptMiddleThrows) {
  const std::string path = temp_journal_path("torn");
  {
    JournalWriter w;
    ASSERT_TRUE(w.open(path, /*append=*/false));
    w.begin_section("g", 1, 8, "t");
    w.record_done(0, 1, "100");
    w.record_done(1, 1, "101");
  }
  {  // a kill mid-append leaves a truncated record as the last line
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "D 2 1 00ffee";  // digest truncated, no payload
  }
  const Journal j = Journal::load(path);
  ASSERT_NE(j.find("g"), nullptr);
  EXPECT_EQ(j.find("g")->records.size(), 2u);  // torn job 2 dropped

  {  // the same garbage NOT at the tail is corruption, not a torn write
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "\nD 3 1 " << std::string(16, '0') << " 103\n";
  }
  EXPECT_THROW(Journal::load(path), std::runtime_error);

  // A digest mismatch in the middle is also fatal.
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << "#densemem-journal v1\nS g 1 8 t\n"
        << "D 0 1 " << std::string(16, '0') << " tampered\n"
        << "D 1 1 " << std::string(16, '0') << " tampered\n";
  }
  EXPECT_THROW(Journal::load(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(Journal::load(path), std::runtime_error);  // missing file
}

// Journaled campaign helper: runs `n` ft_jobs with a journal writer at
// `path`, optionally resuming, and counts how many jobs actually executed.
struct JournaledRun {
  std::vector<double> results;
  std::size_t executed = 0;
  CampaignStats stats;
  std::vector<std::size_t> quarantined;
};

Campaign::JobCodec<double> double_codec() {
  return {[](const double& v) {
            PayloadWriter pw;
            pw.f64(v);
            return pw.take();
          },
          [](const std::string& payload) {
            return PayloadReader(payload).f64();
          }};
}

JournaledRun run_journaled(unsigned threads, const std::string& path,
                           bool resume, std::size_t n, CampaignConfig cfg = {}) {
  JournalWriter writer;
  EXPECT_TRUE(writer.open(path, /*append=*/resume));
  Journal loaded;
  if (resume) loaded = Journal::load(path);
  cfg.threads = threads;
  cfg.seed = 77;
  cfg.progress = false;
  cfg.journal = &writer;
  if (resume) cfg.resume = &loaded;
  cfg.journal_tag = "t";
  Campaign c("jrnl", cfg);
  JournaledRun out;
  std::atomic<std::size_t> executed{0};
  out.results = c.map_journaled<double>(
      n,
      [&](const JobContext& ctx) {
        executed.fetch_add(1);
        return ft_job(ctx);
      },
      double_codec());
  out.executed = executed.load();
  out.stats = c.last_stats();
  for (const JobFailure& q : c.quarantine()) out.quarantined.push_back(q.index);
  return out;
}

TEST(SimJournal, ResumeSkipsCompletedJobsAndReproducesResultsAtAllWidths) {
  const FtRun clean = run_ft(1, CampaignConfig{}, 12);

  for (unsigned threads : {1u, 2u, 8u}) {
    const std::string path = temp_journal_path("resume");
    // Interrupted first run: serial so the abort point is exact — 5 jobs
    // land in the journal.
    CampaignConfig abort_cfg;
    abort_cfg.abort_after = 5;
    EXPECT_THROW(run_journaled(1, path, /*resume=*/false, 12, abort_cfg),
                 CampaignInterrupted);

    const JournaledRun resumed = run_journaled(threads, path, /*resume=*/true, 12);
    EXPECT_EQ(resumed.executed, 7u) << "threads=" << threads;
    EXPECT_EQ(resumed.stats.resumed, 5u) << "threads=" << threads;
    EXPECT_EQ(resumed.stats.completed, 7u) << "threads=" << threads;
    EXPECT_EQ(resumed.results, clean.results) << "threads=" << threads;

    // Resuming the now-complete journal re-runs nothing at all.
    const JournaledRun again = run_journaled(threads, path, /*resume=*/true, 12);
    EXPECT_EQ(again.executed, 0u) << "threads=" << threads;
    EXPECT_EQ(again.stats.resumed, 12u) << "threads=" << threads;
    EXPECT_EQ(again.results, clean.results) << "threads=" << threads;
    std::remove(path.c_str());
  }
}

TEST(SimJournal, ResumeRejectsAJournalFromADifferentGrid) {
  const std::string path = temp_journal_path("mismatch");
  {
    JournalWriter w;
    ASSERT_TRUE(w.open(path, /*append=*/false));
    w.begin_section("jrnl", /*seed=*/1234, /*jobs=*/12, "t");  // wrong seed
    w.record_done(0, 1, "00");
  }
  EXPECT_THROW(run_journaled(1, path, /*resume=*/true, 12),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(SimJournal, QuarantineIsCarriedAcrossResume) {
  const std::string path = temp_journal_path("quarantine");
  CampaignConfig cfg;
  cfg.fault.seed = 31;
  cfg.fault.fail_probability = 0.25;
  cfg.fault.fail_attempts = 100;
  cfg.fail_fast = false;
  const JournaledRun first = run_journaled(1, path, /*resume=*/false, 24, cfg);
  ASSERT_FALSE(first.quarantined.empty());

  // Resume with injection off: quarantined jobs stay settled (not retried),
  // completed jobs replay, nothing executes.
  const JournaledRun resumed = run_journaled(2, path, /*resume=*/true, 24);
  EXPECT_EQ(resumed.executed, 0u);
  EXPECT_EQ(resumed.quarantined, first.quarantined);
  EXPECT_EQ(resumed.stats.resumed, 24u - first.quarantined.size());
  EXPECT_EQ(resumed.results, first.results);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- ResultSink

TEST(SimTableSink, MergesRowsInJobIndexOrder) {
  TableSink sink({"job", "row"});
  // Insert out of order, as a racing schedule would.
  sink.add(2, {std::uint64_t{2}, std::string("a")});
  sink.add(0, {std::uint64_t{0}, std::string("a")});
  sink.add(2, {std::uint64_t{2}, std::string("b")});  // same job: keeps order
  sink.add(1, {std::uint64_t{1}, std::string("a")});
  std::ostringstream os;
  sink.merged().print_csv(os);
  EXPECT_EQ(os.str(), "job,row\n0,a\n1,a\n2,a\n2,b\n");
  EXPECT_EQ(sink.num_rows(), 4u);
}

TEST(SimCounterSink, TotalsAreOrderIndependent) {
  CounterSink sink;
  ThreadPool pool(4);
  pool.parallel_for(100, 3, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) sink.add("total", i);
  });
  EXPECT_EQ(sink.value("total"), 99u * 100u / 2);
  EXPECT_EQ(sink.value("missing"), 0u);
  std::ostringstream os;
  sink.merged().print_csv(os);
  EXPECT_EQ(os.str(), "counter,count\ntotal,4950\n");
}

// ------------------------------------------------------------------ Progress

TEST(SimProgress, CountersTrackDoneAndFailed) {
  Progress p("test", 10, /*enabled=*/false);
  ThreadPool pool(4);
  pool.parallel_for(10, 1, [&](std::size_t b, std::size_t) {
    if (b % 3 == 0)
      p.mark_failed();
    else
      p.mark_done();
  });
  EXPECT_EQ(p.done(), 6u);
  EXPECT_EQ(p.failed(), 4u);
  EXPECT_EQ(p.total(), 10u);
  EXPECT_GE(p.finish(), 0.0);
}

TEST(SimProgress, EnabledMonitorShutsDownCleanly) {
  // Fast interval so the monitor actually fires at least once.
  Progress p("monitor", 4, /*enabled=*/true, /*interval_s=*/0.01);
  p.mark_done();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  p.mark_done();
  EXPECT_GE(p.finish(), 0.0);
  EXPECT_GE(p.finish(), 0.0);  // idempotent
}

TEST(SimProgress, LineReportsFailureAndRetryAccounting) {
  Progress p("acct", 5, /*enabled=*/false);
  p.mark_done();
  p.mark_done();
  p.mark_failed();
  p.mark_retried();
  const std::string line = p.line(/*final_line=*/true);
  EXPECT_NE(line.find("[sim:acct]"), std::string::npos) << line;
  EXPECT_NE(line.find("2/5 jobs"), std::string::npos) << line;
  EXPECT_NE(line.find("(1 failed, 1 retried)"), std::string::npos) << line;
  EXPECT_NE(line.find("total"), std::string::npos) << line;

  // The accounting clause disappears when there is nothing to account for.
  Progress quiet("quiet", 5, /*enabled=*/false);
  quiet.mark_done();
  EXPECT_EQ(quiet.line(false).find("failed"), std::string::npos);
}

TEST(SimProgress, MonitorShutsDownWhenEveryJobFails) {
  Progress p("allfail", 3, /*enabled=*/true, /*interval_s=*/0.01);
  p.mark_failed();
  p.mark_failed();
  p.mark_failed();
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EXPECT_GE(p.finish(), 0.0);  // must not hang waiting for done == total
  EXPECT_EQ(p.failed(), 3u);
  EXPECT_EQ(p.done(), 0u);
}

// --------------------------------------------------------- ShardJournalStream

// Writes one shard journal per (shard_index, shard_count) worker config by
// running the ft grid in-process — the same records a fleet worker process
// would produce — and returns the shard paths.
std::vector<std::string> write_shard_journals(unsigned shard_count,
                                              std::size_t n,
                                              const char* name) {
  std::vector<std::string> paths;
  for (unsigned s = 0; s < shard_count; ++s) {
    const std::string path =
        temp_journal_path((std::string(name) + "_s" + std::to_string(s)).c_str());
    JournalWriter writer;
    EXPECT_TRUE(writer.open(path, /*append=*/false));
    CampaignConfig cfg;
    cfg.threads = 2;
    cfg.seed = 77;
    cfg.progress = false;
    cfg.journal = &writer;
    cfg.journal_tag = "t";
    cfg.shard_index = s;
    cfg.shard_count = shard_count;
    Campaign c("jrnl", cfg);
    c.map_journaled<double>(n, ft_job, double_codec());
    paths.push_back(path);
  }
  return paths;
}

// The tentpole's merge contract: a supervisor replaying N shard journals
// through resume_stream must reproduce the single-process results exactly,
// at any shard width, without re-running a single job.
TEST(SimShardJournal, MergedShardReplayIsByteIdenticalAcrossWidths) {
  const FtRun clean = run_ft(1, CampaignConfig{}, 12);

  for (unsigned width : {1u, 2u, 8u}) {
    const auto paths = write_shard_journals(width, 12, "merge");
    const ShardJournalStream stream(paths);
    stream.validate();

    CampaignConfig cfg;
    cfg.threads = 2;
    cfg.seed = 77;
    cfg.progress = false;
    cfg.resume_stream = &stream;
    cfg.journal_tag = "t";
    cfg.shard_count = width;  // supervisor replay: nothing pending anyway
    Campaign c("jrnl", cfg);
    std::atomic<std::size_t> executed{0};
    const auto results = c.map_journaled<double>(
        12,
        [&](const JobContext& ctx) {
          executed.fetch_add(1);
          return ft_job(ctx);
        },
        double_codec());
    EXPECT_EQ(executed.load(), 0u) << "width=" << width;
    EXPECT_EQ(c.last_stats().resumed, 12u) << "width=" << width;
    EXPECT_EQ(results, clean.results) << "width=" << width;
    for (const auto& p : paths) std::remove(p.c_str());
  }
}

// Satellite 1: corruption in the *middle* of a shard journal must abort the
// merge with an error naming the offending shard file — a half-eaten shard
// journal silently replaying would poison the merged output.
TEST(SimShardJournal, MidFileCorruptionNamesTheOffendingShardFile) {
  const auto paths = write_shard_journals(2, 12, "corrupt");
  {  // corrupt shard 1 mid-file: flip a payload without fixing the digest
    std::ifstream in(paths[1], std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    const auto at = text.find_last_of('\n', text.size() - 2);
    ASSERT_NE(at, std::string::npos);
    text.insert(at, "\nD 3 1 0123456789abcdef tampered");
    std::ofstream out(paths[1], std::ios::trunc | std::ios::binary);
    out << text;
  }
  const ShardJournalStream stream(paths);
  try {
    stream.validate();
    FAIL() << "validate() accepted a corrupt shard journal";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(paths[1]), std::string::npos)
        << e.what();  // the error names the shard file
  }
  for (const auto& p : paths) std::remove(p.c_str());
}

// Per-file torn-tail tolerance: each shard journal may end in one torn line
// (its worker was SIGKILLed mid-append) and the merge must still proceed,
// dropping only the torn record of each file.
TEST(SimShardJournal, TornFinalLinesAreDroppedPerShardFile) {
  const auto paths = write_shard_journals(2, 8, "torn");
  for (const auto& p : paths) {
    std::ofstream out(p, std::ios::app | std::ios::binary);
    out << "D 6 1 00ffe";  // torn: no digest, no payload, no newline
  }
  const ShardJournalStream stream(paths);
  stream.validate();  // must not throw
  std::size_t replayed = 0;
  stream.replay("jrnl", 77, 8, "t",
                [&](const Journal::Record&) { ++replayed; });
  EXPECT_EQ(replayed, 8u);  // the 8 intact records; torn tails dropped
  for (const auto& p : paths) std::remove(p.c_str());
}

TEST(SimShardJournal, ReplayRejectsAShardRecordedForADifferentGrid) {
  const std::string path = temp_journal_path("shard_mismatch");
  {
    JournalWriter w;
    ASSERT_TRUE(w.open(path, /*append=*/false));
    w.begin_section("jrnl", /*seed=*/1234, /*jobs=*/12, "t");  // wrong seed
    w.record_done(0, 1, "00");
  }
  const ShardJournalStream stream({path});
  EXPECT_THROW(
      stream.replay("jrnl", 77, 12, "t", [](const Journal::Record&) {}),
      std::runtime_error);
  std::remove(path.c_str());
}

// Regression: JournalWriter::open(append) used to append straight after a
// torn final line, fusing the next record onto it and turning a benign torn
// tail into mid-file corruption that readers reject. open() must truncate
// the torn line first.
TEST(SimShardJournal, AppendAfterATornTailTruncatesItInsteadOfFusing) {
  const std::string path = temp_journal_path("truncate");
  {
    JournalWriter w;
    ASSERT_TRUE(w.open(path, /*append=*/false));
    w.begin_section("g", 1, 8, "t");
    w.record_done(0, 1, "100");
  }
  {  // SIGKILL mid-append: half a record, no trailing newline
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "D 1 1 00ff";
  }
  {
    JournalWriter w;
    ASSERT_TRUE(w.open(path, /*append=*/true));
    w.begin_section("g", 1, 8, "t");
    w.record_done(2, 1, "102");
  }
  const Journal j = Journal::load(path);  // would throw on a fused record
  ASSERT_NE(j.find("g"), nullptr);
  EXPECT_EQ(j.find("g")->records.size(), 2u);  // jobs 0 and 2; torn 1 gone
  EXPECT_EQ(j.find("g")->records.at(2).payload, "102");
  std::remove(path.c_str());
}

// ------------------------------------------------------------ Sharded grids

// Shard filtering: a worker config runs exactly its residue class, and the
// classes of all shards partition the grid.
TEST(SimShardedCampaign, ShardsPartitionTheGridByResidueClass) {
  std::set<std::size_t> seen;
  for (unsigned s = 0; s < 3; ++s) {
    CampaignConfig cfg;
    cfg.threads = 1;
    cfg.seed = 77;
    cfg.progress = false;
    cfg.shard_index = s;
    cfg.shard_count = 3;
    Campaign c("shard", cfg);
    c.for_each(14, [&](const JobContext& ctx) {
      EXPECT_EQ(ctx.index % 3, s);
      seen.insert(ctx.index);
    });
  }
  EXPECT_EQ(seen.size(), 14u);
}

// A quarantined shard's unsettled residue class is reported as quarantined
// by the merged run; every other job replays normally.
TEST(SimShardedCampaign, QuarantinedShardsReportTheirJobRange) {
  const auto paths = write_shard_journals(3, 15, "qshard");
  // Drop shard 1's journal entirely — as if it never produced usable data.
  std::remove(paths[1].c_str());
  const ShardJournalStream stream({paths[0], paths[2]});

  CampaignConfig cfg;
  cfg.threads = 1;
  cfg.seed = 77;
  cfg.progress = false;
  cfg.resume_stream = &stream;
  cfg.journal_tag = "t";
  cfg.shard_count = 3;
  cfg.quarantined_shards = {1};
  cfg.fail_fast = false;
  Campaign c("jrnl", cfg);
  const auto results = c.map_journaled<double>(15, ft_job, double_codec());
  std::vector<std::size_t> quarantined;
  for (const JobFailure& q : c.quarantine()) quarantined.push_back(q.index);
  EXPECT_EQ(quarantined, (std::vector<std::size_t>{1, 4, 7, 10, 13}));
  EXPECT_NE(c.quarantine()[0].error.find("shard 1/3"), std::string::npos);
  const FtRun clean = run_ft(1, CampaignConfig{}, 15);
  for (std::size_t i = 0; i < 15; ++i) {
    if (i % 3 == 1)
      EXPECT_EQ(results[i], 0.0) << "slot " << i;
    else
      EXPECT_EQ(results[i], clean.results[i]) << "slot " << i;
  }
  for (const auto& p : paths) std::remove(p.c_str());
}

// --------------------------------------------------------------- Fold (sinks)

// fold_journaled is the streaming aggregation path fleet-scale benches use:
// the fold must see every job exactly once — fresh completions and journal
// replays alike — even under retries and across an interrupt/resume cycle.
TEST(SimFoldJournaled, FoldsEveryJobExactlyOnceUnderRetries) {
  CampaignConfig cfg;
  cfg.threads = 4;
  cfg.seed = 77;
  cfg.progress = false;
  cfg.fault.seed = 9;
  cfg.fault.fail_probability = 0.4;
  cfg.fault.fail_attempts = 1;  // fail once, then recover
  cfg.retry.max_attempts = 2;
  Campaign c("fold", cfg);
  std::vector<unsigned> hits(24, 0);
  // Fold into an index-keyed slot vector: exactly-once shows up as every
  // slot hit once, and value correctness is bit-exact per slot (a plain
  // running sum would depend on completion order — fp addition is not
  // associative, which is exactly why fold callers must be commutative).
  const auto folded = c.fold_journaled<double, std::vector<double>>(
      24, ft_job, double_codec(), std::vector<double>(24, 0.0),
      [&](std::vector<double>& acc, std::size_t index, const double& v) {
        ++hits[index];
        acc[index] = v;
      });
  for (unsigned h : hits) EXPECT_EQ(h, 1u);
  const FtRun clean = run_ft(1, CampaignConfig{}, 24);
  EXPECT_EQ(folded, clean.results);
}

TEST(SimFoldJournaled, FoldResumesAcrossAnInterruptWithoutDoubleCounting) {
  const std::string path = temp_journal_path("fold_resume");
  {  // interrupted first run: 5 jobs land in the journal, then abort
    JournalWriter writer;
    ASSERT_TRUE(writer.open(path, /*append=*/false));
    CampaignConfig cfg;
    cfg.threads = 1;
    cfg.seed = 77;
    cfg.progress = false;
    cfg.journal = &writer;
    cfg.journal_tag = "t";
    cfg.abort_after = 5;
    Campaign c("jrnl", cfg);
    const auto interrupted = [&] {
      c.fold_journaled<double, double>(
          12, ft_job, double_codec(), 0.0,
          [](double& acc, std::size_t, const double& v) { acc += v; });
    };
    EXPECT_THROW(interrupted(), CampaignInterrupted);
  }
  const ShardJournalStream stream({path});
  CampaignConfig cfg;
  cfg.threads = 1;
  cfg.seed = 77;
  cfg.progress = false;
  cfg.resume_stream = &stream;
  cfg.journal_tag = "t";
  Campaign c("jrnl", cfg);
  std::vector<unsigned> hits(12, 0);
  c.fold_journaled<double, double>(
      12, ft_job, double_codec(), 0.0,
      [&](double& acc, std::size_t index, const double& v) {
        ++hits[index];
        acc += v;
      });
  for (unsigned h : hits) EXPECT_EQ(h, 1u);  // 5 replayed + 7 fresh, no dupes
  EXPECT_EQ(c.last_stats().resumed, 5u);
  std::remove(path.c_str());
}

// --------------------------------------------------------------- FleetRunner

// Process-level supervisor tests drive FleetRunner with /bin/sh workers —
// tiny scripts that crash, hang, or exit with contract codes on cue.
struct FleetFixture {
  std::string base;
  FleetConfig cfg;

  explicit FleetFixture(const char* name, unsigned shards) {
    base = testing::TempDir() + "densemem_fleet_" + name + "_" +
           std::to_string(::getpid());
    cfg.shards = shards;
    cfg.journal_base = base;
    cfg.poll_interval_s = 0.01;
    cfg.heartbeat_timeout_s = 0.0;  // off unless a test opts in
  }

  void script(const std::string& body) {
    cfg.make_worker_argv = [body](unsigned shard, const std::string& jpath,
                                  bool first) {
      return std::vector<std::string>{
          "/bin/sh", "-c",
          "S=" + std::to_string(shard) + "; J=" + jpath +
              "; FIRST=" + (first ? "1" : "0") + "; " + body};
    };
  }

  ~FleetFixture() {
    for (unsigned s = 0; s < cfg.shards; ++s) {
      const std::string j = FleetRunner::shard_path(base, s);
      for (const char* ext : {"", ".hb", ".out", ".err"})
        std::remove((j + ext).c_str());
    }
  }
};

TEST(SimFleetRunner, AllShardsExitingZeroIsComplete) {
  FleetFixture f("ok", 2);
  f.script("exit 0");
  FleetRunner runner("t", f.cfg);
  const FleetResult r = runner.run();
  EXPECT_EQ(r.outcome, FleetOutcome::kComplete);
  EXPECT_TRUE(r.quarantined_shards.empty());
}

TEST(SimFleetRunner, CrashedWorkerIsRespawnedAndTheFleetCompletes) {
  FleetFixture f("respawn", 1);
  MetricsRegistry metrics;
  f.cfg.metrics = &metrics;
  f.cfg.max_respawns = 2;
  // First incarnation SIGKILLs itself; the respawn (FIRST=0) exits clean.
  f.script("if [ \"$FIRST\" = 1 ]; then kill -9 $$; fi; exit 0");
  FleetRunner runner("t", f.cfg);
  const FleetResult r = runner.run();
  EXPECT_EQ(r.outcome, FleetOutcome::kComplete);
  EXPECT_EQ(metrics.counter("fleet.shards.respawned"), 1u);
}

TEST(SimFleetRunner, RespawnBudgetExhaustionQuarantinesOrFailsPerPolicy) {
  {  // degrade: the shard is quarantined, the fleet reports kPartial
    FleetFixture f("quarantine", 2);
    f.cfg.max_respawns = 1;
    f.cfg.fail_fast = false;
    f.script("if [ \"$S\" = 1 ]; then kill -9 $$; fi; exit 0");
    FleetRunner runner("t", f.cfg);
    const FleetResult r = runner.run();
    EXPECT_EQ(r.outcome, FleetOutcome::kPartial);
    EXPECT_EQ(r.quarantined_shards, (std::vector<unsigned>{1}));
  }
  {  // fail_fast: the same exhaustion aborts the whole fleet
    FleetFixture f("failfast", 1);
    f.cfg.max_respawns = 0;
    f.cfg.fail_fast = true;
    f.script("kill -9 $$");
    FleetRunner runner("t", f.cfg);
    const FleetResult r = runner.run();
    EXPECT_EQ(r.outcome, FleetOutcome::kFailed);
    EXPECT_FALSE(r.error.empty());
  }
}

TEST(SimFleetRunner, WorkerExit75PropagatesAsResumable) {
  FleetFixture f("resumable", 2);
  f.script("if [ \"$S\" = 0 ]; then exit 75; fi; exit 0");
  FleetRunner runner("t", f.cfg);
  const FleetResult r = runner.run();
  EXPECT_EQ(r.outcome, FleetOutcome::kResumable);
  EXPECT_TRUE(r.quarantined_shards.empty());  // resumable, not lost
}

TEST(SimFleetRunner, PermanentExitCodesFailWithoutRespawnAndCaptureStderr) {
  FleetFixture f("permanent", 1);
  MetricsRegistry metrics;
  f.cfg.metrics = &metrics;
  f.cfg.max_respawns = 5;  // must NOT be drawn on: 64 repeats identically
  f.script("echo 'unknown flag --bogus' >&2; exit 64");
  FleetRunner runner("t", f.cfg);
  const FleetResult r = runner.run();
  EXPECT_EQ(r.outcome, FleetOutcome::kFailed);
  EXPECT_EQ(metrics.counter("fleet.shards.respawned"), 0u);
  EXPECT_NE(r.error.find("exited with code 64"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("unknown flag --bogus"), std::string::npos)
      << r.error;  // the worker's stderr tail reaches the error message
}

TEST(SimFleetRunner, StaleHeartbeatIsKilledOntoTheCrashPath) {
  FleetFixture f("hung", 1);
  f.cfg.heartbeat_timeout_s = 0.25;  // worker writes no heartbeat: hangs
  f.cfg.max_respawns = 0;
  f.cfg.fail_fast = false;
  f.script("sleep 30");
  FleetRunner runner("t", f.cfg);
  const auto t0 = std::chrono::steady_clock::now();
  const FleetResult r = runner.run();
  const double took =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(r.outcome, FleetOutcome::kPartial);
  EXPECT_EQ(r.quarantined_shards, (std::vector<unsigned>{0}));
  EXPECT_LT(took, 10.0);  // killed by the watchdog, not by sleep finishing
}

TEST(SimFleetHeartbeat, WriterTouchesTheFileAndRemovesItOnShutdown) {
  const std::string path = temp_journal_path("hb");
  {
    HeartbeatWriter hb(path, /*interval_s=*/0.01);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::ifstream in(path);
    EXPECT_TRUE(in.good());  // beating
  }
  std::ifstream in(path);
  EXPECT_FALSE(in.good());  // removed on destruction
}

}  // namespace
}  // namespace densemem::sim
