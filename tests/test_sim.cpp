// Tests for the sim/ campaign engine. Every test name is prefixed "Sim"
// so CI's ThreadSanitizer job can select exactly this suite
// (ctest -R '^Sim').
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "sim/campaign.h"
#include "sim/progress.h"
#include "sim/result_sink.h"
#include "sim/thread_pool.h"

namespace densemem::sim {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(SimThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(SimThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 5u}) {
    for (std::size_t chunk : {std::size_t{1}, std::size_t{7}}) {
      ThreadPool pool(threads);
      std::vector<std::atomic<int>> hits(83);
      pool.parallel_for(hits.size(), chunk, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
      });
      for (auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
  }
}

TEST(SimThreadPool, ParallelForZeroJobsIsANoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, 4, [](std::size_t, std::size_t) { FAIL(); });
}

TEST(SimThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64, 1,
                        [](std::size_t b, std::size_t) {
                          if (b == 13) throw std::runtime_error("job 13 died");
                        }),
      std::runtime_error);
}

TEST(SimThreadPool, SubmitExceptionSurfacesInWait) {
  ThreadPool pool(2);
  pool.submit([] { throw std::logic_error("boom"); });
  EXPECT_THROW(pool.wait(), std::logic_error);
}

TEST(SimThreadPool, PoolIsReusableAfterAnException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(8, 1,
                                 [](std::size_t, std::size_t) {
                                   throw std::runtime_error("first run");
                                 }),
               std::runtime_error);
  std::atomic<int> count{0};
  pool.parallel_for(8, 1,
                    [&](std::size_t b, std::size_t e) {
                      count.fetch_add(static_cast<int>(e - b));
                    });
  pool.wait();  // second wait must not re-throw the consumed error
  EXPECT_EQ(count.load(), 8);
}

TEST(SimThreadPool, FailureCancelsOutstandingChunks) {
  // With 1 worker and 1-index chunks the failing chunk runs first and every
  // later chunk must be abandoned — exception handling may not hang or run
  // the full grid to completion.
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(1000, 1,
                                 [&](std::size_t b, std::size_t) {
                                   if (b == 0) throw std::runtime_error("die");
                                   ran.fetch_add(1);
                                 }),
               std::runtime_error);
  EXPECT_LT(ran.load(), 1000);
}

// ------------------------------------------------------------------ Campaign

TEST(SimCampaign, StreamSeedsAreHashCoordsOfSeedAndIndex) {
  CampaignConfig cfg;
  cfg.threads = 1;
  cfg.seed = 42;
  cfg.progress = false;
  Campaign c("seeds", cfg);
  const auto seeds =
      c.map<std::uint64_t>(16, [](const JobContext& ctx) {
        EXPECT_EQ(ctx.count, 16u);
        return ctx.stream_seed;
      });
  for (std::size_t i = 0; i < seeds.size(); ++i)
    EXPECT_EQ(seeds[i], hash_coords(42, static_cast<std::uint64_t>(i)));
}

// A miniature campaign: per-job Monte Carlo from the job's own stream,
// emitting both a map() result and TableSink rows. The merged output must
// be byte-identical at 1, 2, and 8 threads.
std::pair<std::string, std::vector<double>> run_mini_campaign(unsigned threads) {
  CampaignConfig cfg;
  cfg.threads = threads;
  cfg.seed = 2014;
  cfg.progress = false;
  Campaign c("mini", cfg);
  TableSink sink({"job", "sum", "coin"});
  sink.set_precision(6);
  auto means = c.map<double>(37, [&](const JobContext& ctx) {
    Rng rng = ctx.make_rng();
    double sum = 0;
    for (int k = 0; k < 500; ++k) sum += rng.uniform();
    Rng sub(ctx.substream(1));
    sink.add(ctx.index, {std::uint64_t{ctx.index}, sum,
                         std::uint64_t{sub.next_u64() & 1}});
    return sum / 500.0;
  });
  std::ostringstream os;
  sink.merged().print_csv(os);
  return {os.str(), means};
}

TEST(SimCampaign, MergedResultsAreIdenticalAcross1And2And8Threads) {
  const auto serial = run_mini_campaign(1);
  const auto two = run_mini_campaign(2);
  const auto eight = run_mini_campaign(8);
  EXPECT_EQ(serial.first, two.first);    // byte-identical CSV merge
  EXPECT_EQ(serial.first, eight.first);
  EXPECT_EQ(serial.second, two.second);  // bit-identical doubles
  EXPECT_EQ(serial.second, eight.second);
}

TEST(SimCampaign, WorkerExceptionPropagatesNotSwallowed) {
  for (unsigned threads : {1u, 4u}) {
    CampaignConfig cfg;
    cfg.threads = threads;
    cfg.progress = false;
    Campaign c("failing", cfg);
    EXPECT_THROW(c.for_each(32,
                            [](const JobContext& ctx) {
                              if (ctx.index == 7)
                                throw std::runtime_error("job 7 failed");
                            }),
                 std::runtime_error);
  }
}

TEST(SimCampaign, StatsReportGridAndResolvedThreads) {
  CampaignConfig cfg;
  cfg.threads = 3;
  cfg.progress = false;
  Campaign c("stats", cfg);
  c.for_each(12, [](const JobContext&) {});
  EXPECT_EQ(c.last_stats().jobs, 12u);
  EXPECT_EQ(c.last_stats().threads, 3u);
  EXPECT_GE(c.last_stats().wall_seconds, 0.0);
  EXPECT_EQ(c.threads(), 3u);
}

TEST(SimCampaign, ZeroThreadsResolvesToHardwareConcurrency) {
  Campaign c("auto", {});
  EXPECT_EQ(c.threads(), ThreadPool::default_threads());
  EXPECT_GE(c.threads(), 1u);
}

// ---------------------------------------------------------------- ResultSink

TEST(SimTableSink, MergesRowsInJobIndexOrder) {
  TableSink sink({"job", "row"});
  // Insert out of order, as a racing schedule would.
  sink.add(2, {std::uint64_t{2}, std::string("a")});
  sink.add(0, {std::uint64_t{0}, std::string("a")});
  sink.add(2, {std::uint64_t{2}, std::string("b")});  // same job: keeps order
  sink.add(1, {std::uint64_t{1}, std::string("a")});
  std::ostringstream os;
  sink.merged().print_csv(os);
  EXPECT_EQ(os.str(), "job,row\n0,a\n1,a\n2,a\n2,b\n");
  EXPECT_EQ(sink.num_rows(), 4u);
}

TEST(SimCounterSink, TotalsAreOrderIndependent) {
  CounterSink sink;
  ThreadPool pool(4);
  pool.parallel_for(100, 3, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) sink.add("total", i);
  });
  EXPECT_EQ(sink.value("total"), 99u * 100u / 2);
  EXPECT_EQ(sink.value("missing"), 0u);
  std::ostringstream os;
  sink.merged().print_csv(os);
  EXPECT_EQ(os.str(), "counter,count\ntotal,4950\n");
}

// ------------------------------------------------------------------ Progress

TEST(SimProgress, CountersTrackDoneAndFailed) {
  Progress p("test", 10, /*enabled=*/false);
  ThreadPool pool(4);
  pool.parallel_for(10, 1, [&](std::size_t b, std::size_t) {
    if (b % 3 == 0)
      p.mark_failed();
    else
      p.mark_done();
  });
  EXPECT_EQ(p.done(), 6u);
  EXPECT_EQ(p.failed(), 4u);
  EXPECT_EQ(p.total(), 10u);
  EXPECT_GE(p.finish(), 0.0);
}

TEST(SimProgress, EnabledMonitorShutsDownCleanly) {
  // Fast interval so the monitor actually fires at least once.
  Progress p("monitor", 4, /*enabled=*/true, /*interval_s=*/0.01);
  p.mark_done();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  p.mark_done();
  EXPECT_GE(p.finish(), 0.0);
  EXPECT_GE(p.finish(), 0.0);  // idempotent
}

}  // namespace
}  // namespace densemem::sim
